package rtoffload_test

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesRun smoke-tests every example program: `go run` must exit
// zero and print something. The examples double as documentation, so a
// compile error or panic in any of them is a regression even though no
// package imports them.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build and run full programs; skipped in -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	dirs := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dirs++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+filepath.Join("examples", name))
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("go run failed: %v\nstderr:\n%s", err, stderr.String())
			}
			if stdout.Len() == 0 {
				t.Error("example printed nothing on stdout")
			}
		})
	}
	if dirs == 0 {
		t.Fatal("no example directories found")
	}
}
