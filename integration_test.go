// Integration tests exercising the full public pipeline the README
// promises, end to end: estimate → decide → verify → simulate →
// validate traces, across the uniprocessor, multicore, adaptive and
// multi-component configurations.
package rtoffload_test

import (
	"bytes"
	"testing"

	"rtoffload/internal/core"
	"rtoffload/internal/exp"
	"rtoffload/internal/partition"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// TestREADMEPipeline follows the README quickstart: a task set is
// decided by DP, the exact Theorem-3 total stays within capacity, the
// schedule survives an adversarial server without misses, and the
// recorded trace passes the independent invariant checkers.
func TestREADMEPipeline(t *testing.T) {
	ms := rtime.FromMillis
	set := task.Set{
		{
			ID: 1, Name: "recognition",
			Period: ms(1000), Deadline: ms(1000),
			LocalWCET: ms(278), Setup: ms(12), Compensation: ms(278),
			LocalBenefit: 22.5,
			Levels: []task.Level{
				{Response: ms(150), Benefit: 30.6, PayloadBytes: 120_000},
				{Response: ms(400), Benefit: 99, PayloadBytes: 480_000},
			},
		},
		{
			ID: 2, Name: "tracking",
			Period: ms(500), Deadline: ms(500),
			LocalWCET: ms(120), Setup: ms(8), Compensation: ms(120),
			LocalBenefit: 25,
			Levels: []task.Level{
				{Response: ms(100), Benefit: 34, PayloadBytes: 80_000},
				{Response: ms(250), Benefit: 41, PayloadBytes: 200_000},
			},
		},
	}
	dec, err := core.Decide(set, core.Options{Solver: core.SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	if dec.CmpTheorem3() > 0 {
		t.Fatalf("decision over capacity: %v", dec.Theorem3Total)
	}
	res, err := sched.Run(sched.Config{
		Assignments: dec.Assignments(),
		Server:      server.Fixed{Lost: true},
		Horizon:     rtime.FromSeconds(10),
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("%d misses", res.Misses)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("trace: %v", err)
	}

	// The decision survives a JSON round trip and replays identically.
	var buf bytes.Buffer
	if err := dec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	dec2, err := core.ReadDecisionJSON(&buf, set)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sched.Run(sched.Config{
		Assignments: dec2.Assignments(),
		Server:      server.Fixed{Lost: true},
		Horizon:     rtime.FromSeconds(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalBenefit != res.TotalBenefit || res2.Misses != 0 {
		t.Fatalf("replayed decision diverged: %g vs %g", res2.TotalBenefit, res.TotalBenefit)
	}
}

// TestFullStackScenario chains every major component once: probing a
// queueing server, deciding, upgrading with the exact test, and
// simulating under the busy scenario with latency collection and
// energy accounting.
func TestFullStackScenario(t *testing.T) {
	rng := stats.NewRNG(99)
	set, err := task.GenerateRandomSet(rng.Fork(), task.DefaultRandomSetParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range set {
		for j := range tk.Levels {
			tk.Levels[j].PayloadBytes = 30_000 * int64(j+1)
		}
	}
	probeSrv, err := server.NewScenario(rng.Fork(), server.NotBusy)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.EstimateBudgets(probeSrv, set, core.EstimatorConfig{
		Probes: 60, Spacing: rtime.FromMillis(40), Quantile: 0.8, Margin: 0.1,
	}); err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decide(set, core.Options{Solver: core.SolverHEU})
	if err != nil {
		t.Fatal(err)
	}
	improved, err := core.ImproveWithExact(dec, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyExact(improved); err != nil {
		t.Fatal(err)
	}
	runSrv, err := server.NewScenario(rng.Fork(), server.Busy)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(sched.Config{
		Assignments:      improved.Assignments(),
		Server:           runSrv,
		Horizon:          rtime.FromSeconds(20),
		CollectLatencies: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("%d misses under busy server", res.Misses)
	}
	eb, err := res.Energy(exp.DefaultPowerModel())
	if err != nil {
		t.Fatal(err)
	}
	if eb.Joules <= 0 {
		t.Fatal("no energy accounted")
	}
	for _, tk := range set {
		if _, ok := res.LatencyPercentile(tk.ID, 95); !ok {
			t.Fatalf("no latency percentiles for task %d", tk.ID)
		}
	}
}

// TestMulticoreIntegration partitions a heavy system, simulates every
// core against its own forked scenario server, and checks the
// aggregate guarantee.
func TestMulticoreIntegration(t *testing.T) {
	ms := rtime.FromMillis
	var set task.Set
	for i := 0; i < 6; i++ {
		set = append(set, &task.Task{
			ID: i, Period: ms(400), Deadline: ms(400),
			LocalWCET: ms(140), Setup: ms(4), Compensation: ms(140),
			LocalBenefit: 1,
			Levels: []task.Level{
				{Response: ms(60), Benefit: 3, PayloadBytes: 60_000},
				{Response: ms(150), Benefit: 8, PayloadBytes: 240_000},
			},
		})
	}
	dec, err := partition.Decide(set, partition.Options{
		Cores: 3, Core: core.Options{Solver: core.SolverDP},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(4)
	res, err := partition.Simulate(dec, func(int) server.Server {
		s, err := server.NewScenario(rng.Fork(), server.Idle)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}, rtime.FromSeconds(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("%d misses", res.Misses)
	}
	if res.NormalizedBenefit() <= 1.5 {
		t.Fatalf("multicore offloading earned only %.2f×", res.NormalizedBenefit())
	}
}
