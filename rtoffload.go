// Package rtoffload reproduces "Computation Offloading by Using Timing
// Unreliable Components in Real-Time Systems" (Liu, Chen, Toma, Kuo,
// Deng — DAC 2014): a mechanism that lets hard real-time systems
// exploit timing unreliable accelerators (GPU servers, COTS components
// over unreliable networks) by pairing every offloaded job with a
// guaranteed local compensation.
//
// The implementation lives under internal/:
//
//   - internal/core — the paper's contribution: the Benefit and
//     Response Time Estimator, the Offloading Decision Manager
//     (multiple-choice knapsack over the Theorem-3 weights), and the
//     online admission manager.
//   - internal/sched — the EDF scheduler with proportional deadline
//     splitting and timer-driven compensation (plus the naive-EDF
//     baseline).
//   - internal/dbf — demand-bound-function analysis: Theorems 1–3 in
//     exact rational arithmetic, the processor demand criterion and
//     QPA.
//   - internal/mckp — the DP and HEU-OE knapsack solvers.
//   - internal/server, internal/imgproc, internal/benefit,
//     internal/task, internal/trace, internal/stats, internal/rtime —
//     the substrates: unreliable-server models, vision workloads,
//     benefit functions, the sporadic task model, trace validation,
//     deterministic statistics and exact time arithmetic.
//   - internal/exp — the harness regenerating Table 1, Figure 2 and
//     Figure 3 plus the ablations.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; see EXPERIMENTS.md for the paper-vs-measured
// record and cmd/ for the command-line tools.
package rtoffload
