package dbf

import "rtoffload/internal/rtime"

// stepStreamer is implemented by demands whose step sequence is the
// union of a few arithmetic progressions (offset, offset+period, …).
// PDC merges these progressions lazily instead of materializing every
// step up to the horizon, so long-horizon analyses stay O(#streams)
// in memory rather than O(#steps).
type stepStreamer interface {
	stepStreams() []stepStream
}

// stepStream is one arithmetic progression of demand steps.
type stepStream struct {
	off, period rtime.Duration
}

// mergeCursor is one source in the k-way merge: either an arithmetic
// progression (period > 0) or a materialized slice fallback for
// Demand implementations outside this package (period == 0).
type mergeCursor struct {
	next   rtime.Duration
	period rtime.Duration
	rest   []rtime.Duration
}

// stepMerger yields the deduplicated ascending union of all demands'
// steps up to a limit, without materializing the union. It is a
// binary min-heap of cursors keyed by their next step.
type stepMerger struct {
	heap  []mergeCursor
	limit rtime.Duration
}

// newStepMerger builds the merge over every demand's step sources.
// Demands implementing stepStreamer contribute one cursor per
// progression; anything else falls back to StepsUpTo(limit) once.
func newStepMerger(ds []Demand, limit rtime.Duration) *stepMerger {
	m := &stepMerger{limit: limit}
	for _, d := range ds {
		if s, ok := d.(stepStreamer); ok {
			for _, st := range s.stepStreams() {
				if st.off > limit {
					continue
				}
				m.push(mergeCursor{next: st.off, period: st.period})
			}
			continue
		}
		steps := d.StepsUpTo(limit)
		if len(steps) == 0 {
			continue
		}
		m.push(mergeCursor{next: steps[0], rest: steps[1:]})
	}
	return m
}

// next returns the smallest unreported step ≤ limit, advancing every
// cursor currently at that step. ok is false when all cursors are
// exhausted.
func (m *stepMerger) next() (t rtime.Duration, ok bool) {
	if len(m.heap) == 0 {
		return 0, false
	}
	t = m.heap[0].next
	for len(m.heap) > 0 && m.heap[0].next == t {
		m.advanceTop()
	}
	return t, true
}

// advanceTop moves the top cursor to its next step, dropping it when
// exhausted, and restores the heap order.
func (m *stepMerger) advanceTop() {
	c := &m.heap[0]
	switch {
	case c.period > 0 && c.next <= m.limit-c.period:
		c.next += c.period
	case c.period == 0 && len(c.rest) > 0:
		c.next = c.rest[0]
		c.rest = c.rest[1:]
	default:
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap = m.heap[:last]
		if len(m.heap) == 0 {
			return
		}
	}
	m.siftDown(0)
}

// push inserts a cursor and restores the heap order.
func (m *stepMerger) push(c mergeCursor) {
	m.heap = append(m.heap, c)
	for i := len(m.heap) - 1; i > 0; {
		parent := (i - 1) / 2
		if m.heap[parent].next <= m.heap[i].next {
			break
		}
		m.heap[parent], m.heap[i] = m.heap[i], m.heap[parent]
		i = parent
	}
}

// siftDown restores the heap property from index i.
func (m *stepMerger) siftDown(i int) {
	n := len(m.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && m.heap[l].next < m.heap[smallest].next {
			smallest = l
		}
		if r < n && m.heap[r].next < m.heap[smallest].next {
			smallest = r
		}
		if smallest == i {
			return
		}
		m.heap[i], m.heap[smallest] = m.heap[smallest], m.heap[i]
		i = smallest
	}
}
