package dbf

import (
	"math/big"
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
)

func ms(v int64) rtime.Duration { return rtime.FromMillis(v) }

func TestNewSporadicValidation(t *testing.T) {
	if _, err := NewSporadic(ms(2), ms(10), ms(10)); err != nil {
		t.Fatalf("valid sporadic rejected: %v", err)
	}
	bad := [][3]rtime.Duration{
		{ms(2), ms(10), 0},
		{ms(2), 0, ms(10)},
		{ms(2), ms(11), ms(10)},
		{0, ms(10), ms(10)},
		{ms(11), ms(10), ms(10)},
	}
	for i, b := range bad {
		if _, err := NewSporadic(b[0], b[1], b[2]); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSporadicDBF(t *testing.T) {
	s, _ := NewSporadic(ms(2), ms(6), ms(10))
	cases := []struct {
		t    rtime.Duration
		want rtime.Duration
	}{
		{0, 0},
		{ms(5), 0},
		{ms(6), ms(2)},
		{ms(15), ms(2)},
		{ms(16), ms(4)},
		{ms(26), ms(6)},
	}
	for _, c := range cases {
		if got := s.DBF(c.t); got != c.want {
			t.Errorf("DBF(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestSporadicRateBurst(t *testing.T) {
	s, _ := NewSporadic(ms(2), ms(6), ms(10))
	if s.Rate().Cmp(big.NewRat(1, 5)) != 0 {
		t.Errorf("Rate = %v", s.Rate())
	}
	// Burst = C(T−D)/T = 2ms·0.4 = 800µs.
	if s.Burst().Cmp(big.NewRat(800, 1)) != 0 {
		t.Errorf("Burst = %v", s.Burst())
	}
	// DBF(t) ≤ Rate·t + Burst everywhere.
	for tt := rtime.Duration(0); tt < ms(100); tt += 137 {
		lhs := new(big.Rat).SetInt64(int64(s.DBF(tt)))
		rhs := new(big.Rat).Add(mulRat(s.Rate(), tt), s.Burst())
		if lhs.Cmp(rhs) > 0 {
			t.Fatalf("DBF(%v) = %v exceeds Rate·t+Burst = %v", tt, lhs, rhs)
		}
	}
}

func TestSporadicSteps(t *testing.T) {
	s, _ := NewSporadic(ms(2), ms(6), ms(10))
	steps := s.StepsUpTo(ms(30))
	want := []rtime.Duration{ms(6), ms(16), ms(26)}
	if len(steps) != len(want) {
		t.Fatalf("steps = %v", steps)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("steps = %v, want %v", steps, want)
		}
	}
	if p := s.PrevStep(ms(16)); p != ms(6) {
		t.Errorf("PrevStep(16ms) = %v", p)
	}
	if p := s.PrevStep(ms(17)); p != ms(16) {
		t.Errorf("PrevStep(17ms) = %v", p)
	}
	if p := s.PrevStep(ms(6)); p != 0 {
		t.Errorf("PrevStep(6ms) = %v", p)
	}
}

func TestSplitDeadline(t *testing.T) {
	// D1 = C1(D−R)/(C1+C2) = 5·(100−20)/35 ms = 80/7 ms.
	d1, err := SplitDeadline(ms(5), ms(30), ms(100), ms(20))
	if err != nil {
		t.Fatal(err)
	}
	want := rtime.Duration(int64(ms(5)) * int64(ms(80)) / int64(ms(35)))
	if d1 != want {
		t.Errorf("D1 = %v, want %v", d1, want)
	}
	// Floored to the grid, never above the exact value.
	exact := big.NewRat(int64(ms(5))*int64(ms(80)), int64(ms(35)))
	if new(big.Rat).SetInt64(int64(d1)).Cmp(exact) > 0 {
		t.Error("D1 rounded up")
	}
}

func TestSplitDeadlineErrors(t *testing.T) {
	cases := [][4]rtime.Duration{
		{0, ms(30), ms(100), ms(20)},
		{ms(5), 0, ms(100), ms(20)},
		{ms(5), ms(30), ms(100), -1},
		{ms(5), ms(30), ms(100), ms(100)},
		{ms(5), ms(30), ms(100), ms(120)},
	}
	for i, c := range cases {
		if _, err := SplitDeadline(c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Underflow: C1=1µs, C2=1s, D−R=100µs → D1 = 0.
	if _, err := SplitDeadline(1, rtime.Second, 100, 0); err == nil {
		t.Error("underflowing split deadline accepted")
	}
}

func TestNewOffloaded(t *testing.T) {
	o, err := NewOffloaded(ms(5), ms(30), ms(100), ms(100), ms(20))
	if err != nil {
		t.Fatal(err)
	}
	if o.D1 <= 0 || o.D1 >= o.D-o.R {
		t.Fatalf("D1 = %v out of range", o.D1)
	}
	// Theorem-1 rate = 35/80.
	if o.Theorem1Rate().Cmp(big.NewRat(35, 80)) != 0 {
		t.Errorf("Theorem1Rate = %v", o.Theorem1Rate())
	}
	// Over-dense task must be rejected: C1+C2 > D−R.
	if _, err := NewOffloaded(ms(50), ms(50), ms(100), ms(100), ms(20)); err == nil {
		t.Error("over-dense offloaded task accepted")
	}
	if _, err := NewOffloaded(ms(5), ms(30), ms(120), ms(100), ms(20)); err == nil {
		t.Error("D > T accepted")
	}
}

func TestOffloadedDBFSmallWindows(t *testing.T) {
	o, err := NewOffloaded(ms(5), ms(30), ms(100), ms(100), ms(20))
	if err != nil {
		t.Fatal(err)
	}
	// Alignment (b)'s first step is D−D1−R; a C2 sub-job must fit there.
	first := o.D - o.D1 - o.R
	if got := o.DBF(first); got != o.C2 {
		t.Errorf("DBF(D−D1−R) = %v, want C2 = %v", got, o.C2)
	}
	if got := o.DBF(first - 1); got >= o.C2 {
		t.Errorf("DBF just below first step = %v", got)
	}
	// Window of the setup deadline sees C1.
	if got := o.DBF(o.D1); got < o.C1 {
		t.Errorf("DBF(D1) = %v < C1", got)
	}
	// Full deadline window sees the whole job.
	if got := o.DBF(o.D); got < o.C1+o.C2 {
		t.Errorf("DBF(D) = %v < C1+C2", got)
	}
	if o.DBF(0) != 0 || o.DBF(-5) != 0 {
		t.Error("DBF of empty window non-zero")
	}
}

// Theorem 1: the exact split DBF never exceeds the paper's linear
// bound by more than the 1µs grid-flooring of D1 per involved job.
func TestOffloadedLinearBoundTheorem1(t *testing.T) {
	rng := stats.NewRNG(21)
	for trial := 0; trial < 200; trial++ {
		c1 := rtime.Duration(rng.Int64N(int64(ms(20)))) + 1
		c2 := rtime.Duration(rng.Int64N(int64(ms(20)))) + 1
		period := ms(rng.UniformInt(100, 700))
		r := rtime.Duration(rng.Int64N(int64(period / 2)))
		o, err := NewOffloaded(c1, c2, period, period, r)
		if err != nil {
			continue // over-dense draw
		}
		h, err := Horizon([]Demand{o})
		if err != nil {
			t.Fatal(err)
		}
		limit := rtime.Min(h, 10*period)
		for _, tt := range o.StepsUpTo(limit) {
			lhs := new(big.Rat).SetInt64(int64(o.DBF(tt)))
			bound := o.LinearBound(tt)
			slack := new(big.Rat).Sub(lhs, bound)
			// Grid flooring of D1 can cost < 1µs per job deadline.
			jobs := big.NewRat(int64(tt/o.T)+2, 1)
			if slack.Cmp(jobs) > 0 {
				t.Fatalf("trial %d: DBF(%v) = %v exceeds linear bound %v by %v",
					trial, tt, lhs, bound.FloatString(3), slack.FloatString(3))
			}
		}
	}
}

func TestOffloadedDBFMonotone(t *testing.T) {
	o, err := NewOffloaded(ms(3), ms(12), ms(50), ms(60), ms(10))
	if err != nil {
		t.Fatal(err)
	}
	prev := rtime.Duration(0)
	for tt := rtime.Duration(0); tt <= ms(300); tt += 97 {
		cur := o.DBF(tt)
		if cur < prev {
			t.Fatalf("DBF decreased at %v: %v < %v", tt, cur, prev)
		}
		prev = cur
	}
}

func TestOffloadedStepsCoverIncreases(t *testing.T) {
	o, err := NewOffloaded(ms(3), ms(12), ms(50), ms(60), ms(10))
	if err != nil {
		t.Fatal(err)
	}
	limit := ms(250)
	steps := o.StepsUpTo(limit)
	idx := map[rtime.Duration]bool{}
	for _, s := range steps {
		idx[s] = true
	}
	// Scan microsecond-ish grid: every increase point must be a step.
	prev := o.DBF(0)
	for tt := rtime.Duration(1); tt <= limit; tt++ {
		cur := o.DBF(tt)
		if cur > prev && !idx[tt] {
			t.Fatalf("DBF increases at %v which is not in steps", tt)
		}
		prev = cur
	}
}

func TestOffloadedPrevStep(t *testing.T) {
	o, err := NewOffloaded(ms(3), ms(12), ms(50), ms(60), ms(10))
	if err != nil {
		t.Fatal(err)
	}
	steps := o.StepsUpTo(ms(500))
	for i := 1; i < len(steps); i++ {
		if p := o.PrevStep(steps[i]); p != steps[i-1] {
			t.Fatalf("PrevStep(%v) = %v, want %v", steps[i], p, steps[i-1])
		}
	}
	if p := o.PrevStep(steps[0]); p != 0 {
		t.Errorf("PrevStep(first) = %v", p)
	}
}

func TestBurstBoundsOffloaded(t *testing.T) {
	rng := stats.NewRNG(31)
	for trial := 0; trial < 50; trial++ {
		c1 := rtime.Duration(rng.Int64N(int64(ms(10)))) + 1
		c2 := rtime.Duration(rng.Int64N(int64(ms(20)))) + 1
		period := ms(rng.UniformInt(80, 300))
		r := rtime.Duration(rng.Int64N(int64(period / 3)))
		o, err := NewOffloaded(c1, c2, period, period, r)
		if err != nil {
			continue
		}
		rate, burst := o.Rate(), o.Burst()
		for tt := rtime.Duration(0); tt < 5*period; tt += period / 7 {
			lhs := new(big.Rat).SetInt64(int64(o.DBF(tt)))
			rhs := new(big.Rat).Add(mulRat(rate, tt), burst)
			if lhs.Cmp(rhs) > 0 {
				t.Fatalf("trial %d: DBF(%v)=%v > Rate·t+Burst=%v", trial, tt, lhs, rhs.FloatString(3))
			}
		}
	}
}
