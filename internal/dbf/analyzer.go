package dbf

import (
	"fmt"
	"math/big"

	"rtoffload/internal/rtime"
)

// demandStat is the cached per-demand analysis state of an Analyzer:
// the demand's long-run rate and burst as integer fractions (the fast
// path), the raw numerators over the demand's own denominator (the
// scaled path), its first step, and — for Demand implementations
// outside this package or int64 overflow — the exact big.Rat fallback
// values.
type demandStat struct {
	rate, burst frac
	// Raw (unreduced) numerators over rawDen: rate = rawRate/rawDen,
	// burst = rawBurst/rawDen. rawDen == 0 marks a wide stat.
	rawRate, rawBurst, rawDen int64
	first                     rtime.Duration
	// wide marks demands whose rate/burst exceed the int64 fast path;
	// rateRat/burstRat then hold the exact values.
	wide              bool
	rateRat, burstRat *big.Rat
}

// rateR returns the exact rate as a big.Rat (allocating only for
// narrow stats that never cached one).
func (st *demandStat) rateR() *big.Rat {
	if st.rateRat == nil {
		st.rateRat = st.rate.rat()
	}
	return st.rateRat
}

// burstR returns the exact burst as a big.Rat.
func (st *demandStat) burstR() *big.Rat {
	if st.burstRat == nil {
		st.burstRat = st.burst.rat()
	}
	return st.burstRat
}

// newDemandStat derives the cached state of one demand. ok is false
// only for a nil demand. Known demand types use pure integer
// arithmetic; anything else (or an int64 overflow) records the exact
// big.Rat values and marks the stat wide.
func newDemandStat(d Demand) (demandStat, bool) {
	switch v := d.(type) {
	case nil:
		return demandStat{}, false
	case Sporadic:
		if bn, ok := mul64(int64(v.C), int64(v.T-v.D)); ok {
			return demandStat{
				rate:    newFrac(int64(v.C), int64(v.T)),
				burst:   newFrac(bn, int64(v.T)),
				rawRate: int64(v.C), rawBurst: bn, rawDen: int64(v.T),
				first: v.FirstStep(),
			}, true
		}
	case Offloaded:
		if st, ok := offloadedStat(v); ok {
			return st, true
		}
	}
	return demandStat{
		wide:     true,
		rateRat:  d.Rate(),  //rtlint:allow hotalloc -- wide tier: foreign or overflowing demands pay exact big.Rat costs
		burstRat: d.Burst(), //rtlint:allow hotalloc -- wide tier: foreign or overflowing demands pay exact big.Rat costs
		first:    d.FirstStep(),
	}, true
}

// offloadedStat computes the integer stat of an Offloaded demand,
// mirroring Offloaded.Rate and Offloaded.Burst exactly: burst is the
// larger of the two alignment constants, both over denominator T.
func offloadedStat(o Offloaded) (demandStat, bool) {
	t := int64(o.T)
	cs, ok := add64(int64(o.C1), int64(o.C2))
	if !ok {
		return demandStat{}, false
	}
	a1, ok := mul64(int64(o.C1), int64(o.T-o.D1))
	if !ok {
		return demandStat{}, false
	}
	a2, ok := mul64(int64(o.C2), int64(o.T-o.D))
	if !ok {
		return demandStat{}, false
	}
	a, ok := add64(a1, a2)
	if !ok {
		return demandStat{}, false
	}
	b1, ok := mul64(int64(o.C2), int64(o.T-o.D+o.D1+o.R))
	if !ok {
		return demandStat{}, false
	}
	b2, ok := mul64(int64(o.C1), int64(o.R))
	if !ok {
		return demandStat{}, false
	}
	b, ok := add64(b1, b2)
	if !ok {
		return demandStat{}, false
	}
	bn := a
	if b > a {
		bn = b
	}
	return demandStat{
		rate:    newFrac(cs, t),
		burst:   newFrac(bn, t),
		rawRate: cs, rawBurst: bn, rawDen: t,
		first: o.FirstStep(),
	}, true
}

// Aggregate representation tiers, cheapest first. The Analyzer starts
// narrow and degrades only as far as the data forces it; every tier
// is exact.
const (
	// modeNarrow: rate/burst sums fit reduced int64 fractions — zero
	// allocation on swap and horizon.
	modeNarrow = iota
	// modeScaled: sums as big.Int numerators over a fixed common
	// denominator lcm(T_i). No gcd normalization ever runs; swaps are
	// O(1) big.Int multiply-adds into reused scratch, so steady-state
	// allocation is zero. Valid while every demand has integer raw
	// stats.
	modeScaled
	// modeWide: full big.Rat sums — only for foreign Demand
	// implementations or int64-overflowing parameters.
	modeWide
)

// Analyzer is an incremental demand-analysis engine: it holds a demand
// configuration together with cached aggregates (rate and burst sums,
// per-demand first steps) so that replacing one demand and re-running
// the exact QPA feasibility test costs O(1) aggregate work instead of
// a full rebuild. Verdicts — including the exact Violation window —
// are identical to a fresh QPA over the same demands.
//
// Aggregates live on an integer fast path; when a reduced sum
// overflows int64 the Analyzer switches to scaled big.Int numerators
// over the fixed common denominator, and only foreign demand types
// force full big.Rat arithmetic. Every tier is exact — overflow is
// detected, never wrapped — so exactness is never compromised.
type Analyzer struct {
	ds    []Demand
	stats []demandStat
	mode  int
	// Narrow aggregates (modeNarrow).
	rate, burst frac
	// Scaled aggregates (modeScaled): rateN/den and burstN/den with
	// den = lcm of all rawDen. mult[i] = den/rawDen_i. t1..t3 are
	// reusable scratch.
	den, rateN, burstN *big.Int
	//rtlint:arena
	mult []big.Int
	//rtlint:arena
	t1 *big.Int
	//rtlint:arena
	t2 *big.Int
	//rtlint:arena
	t3 *big.Int
	// Wide aggregates (modeWide).
	rateRat, burstRat *big.Rat
}

// NewAnalyzer builds the engine over a copy of ds. The configuration
// may be infeasible or even overloaded — that is reported by Feasible,
// not here. Only nil demands are rejected.
func NewAnalyzer(ds []Demand) (*Analyzer, error) {
	a := &Analyzer{
		ds:    append([]Demand(nil), ds...),
		stats: make([]demandStat, len(ds)),
	}
	for i, d := range ds {
		st, ok := newDemandStat(d)
		if !ok {
			return nil, fmt.Errorf("dbf: nil demand at index %d", i)
		}
		a.stats[i] = st
	}
	a.recompute()
	return a, nil
}

// Len returns the number of demands.
func (a *Analyzer) Len() int { return len(a.ds) }

// Demands returns a copy of the current configuration.
func (a *Analyzer) Demands() []Demand { return append([]Demand(nil), a.ds...) }

// recompute rebuilds the aggregates from the per-demand stats,
// choosing the cheapest tier the data permits.
func (a *Analyzer) recompute() {
	if a.recomputeNarrow() {
		return
	}
	if a.recomputeScaled() {
		return
	}
	a.recomputeWide()
}

// recomputeNarrow tries the reduced-int64 tier.
func (a *Analyzer) recomputeNarrow() bool {
	rate, burst := fracZero, fracZero
	for i := range a.stats {
		st := &a.stats[i]
		if st.wide {
			return false
		}
		var ok bool
		if rate, ok = rate.add(st.rate); !ok {
			return false
		}
		if burst, ok = burst.add(st.burst); !ok {
			return false
		}
	}
	a.mode = modeNarrow
	a.rate, a.burst = rate, burst
	return true
}

// recomputeScaled builds the fixed-denominator big.Int tier: den is
// the lcm of every demand's raw denominator and never changes while
// swaps keep the same denominators, so later updates are gcd-free.
func (a *Analyzer) recomputeScaled() bool {
	for i := range a.stats {
		if a.stats[i].rawDen == 0 {
			return false
		}
	}
	if a.den == nil {
		a.den, a.rateN, a.burstN = new(big.Int), new(big.Int), new(big.Int)
		a.t1, a.t2, a.t3 = new(big.Int), new(big.Int), new(big.Int)
	}
	if cap(a.mult) < len(a.stats) {
		a.mult = make([]big.Int, len(a.stats))
	}
	a.mult = a.mult[:len(a.stats)]
	a.den.SetInt64(1)
	for i := range a.stats {
		t := a.stats[i].rawDen
		// den = den · t / gcd(den mod t, t); the gcd operand fits int64.
		rem := a.t1.Mod(a.den, a.t2.SetInt64(t)).Int64()
		g := int64(rtime.GCD(rtime.Duration(rem), rtime.Duration(t)))
		a.den.Mul(a.den, a.t2.SetInt64(t/g))
	}
	a.rateN.SetInt64(0)
	a.burstN.SetInt64(0)
	for i := range a.stats {
		st := &a.stats[i]
		m := &a.mult[i]
		m.Div(a.den, a.t1.SetInt64(st.rawDen))
		a.rateN.Add(a.rateN, a.t1.Mul(a.t2.SetInt64(st.rawRate), m))
		a.burstN.Add(a.burstN, a.t1.Mul(a.t2.SetInt64(st.rawBurst), m))
	}
	a.mode = modeScaled
	return true
}

// recomputeWide builds the full big.Rat tier.
func (a *Analyzer) recomputeWide() {
	if a.rateRat == nil {
		a.rateRat, a.burstRat = new(big.Rat), new(big.Rat)
	}
	a.rateRat.SetInt64(0)
	a.burstRat.SetInt64(0)
	for i := range a.stats {
		st := &a.stats[i]
		a.rateRat.Add(a.rateRat, st.rateR())
		a.burstRat.Add(a.burstRat, st.burstR())
	}
	a.mode = modeWide
}

// Swap replaces demand i, updating the cached aggregates in O(1).
//
//rtlint:hotpath -- O(1) aggregate delta behind every trial decision; the narrow tier must not allocate
func (a *Analyzer) Swap(i int, d Demand) error {
	if i < 0 || i >= len(a.ds) {
		return fmt.Errorf("dbf: demand index %d out of range [0,%d)", i, len(a.ds)) //rtlint:allow hotalloc -- invalid-input diagnostic, not the steady state
	}
	st, ok := newDemandStat(d)
	if !ok {
		return fmt.Errorf("dbf: nil demand") //rtlint:allow hotalloc -- invalid-input diagnostic, not the steady state
	}
	a.swapStat(i, d, st)
	return nil
}

// swapStat installs (d, st) at index i with an O(1) delta update of
// the aggregates; a full recompute only happens when the current tier
// cannot absorb the delta.
func (a *Analyzer) swapStat(i int, d Demand, st demandStat) {
	old := a.stats[i]
	a.ds[i] = d
	a.stats[i] = st
	switch a.mode {
	case modeNarrow:
		if !st.wide {
			if r, ok := a.rate.sub(old.rate); ok {
				if r, ok = r.add(st.rate); ok {
					if b, ok2 := a.burst.sub(old.burst); ok2 {
						if b, ok2 = b.add(st.burst); ok2 {
							a.rate, a.burst = r, b
							return
						}
					}
				}
			}
		}
	case modeScaled:
		if st.rawDen == old.rawDen && st.rawDen != 0 {
			// Same denominator: numerator deltas times the cached
			// multiplier — gcd-free, scratch-reusing.
			m := &a.mult[i]
			a.rateN.Add(a.rateN, a.t1.Mul(a.t2.SetInt64(st.rawRate-old.rawRate), m))     //rtlint:allow hotalloc -- scaled tier reuses big.Int scratch; word-slice growth is amortized
			a.burstN.Add(a.burstN, a.t1.Mul(a.t2.SetInt64(st.rawBurst-old.rawBurst), m)) //rtlint:allow hotalloc -- scaled tier reuses big.Int scratch; word-slice growth is amortized
			return
		}
	case modeWide:
		// Exact rational delta: subtract the old component, add the new.
		a.rateRat.Sub(a.rateRat, old.rateR())           //rtlint:allow hotalloc -- wide tier: exact big.Rat arithmetic for foreign demands
		a.rateRat.Add(a.rateRat, a.stats[i].rateR())    //rtlint:allow hotalloc -- wide tier: exact big.Rat arithmetic for foreign demands
		a.burstRat.Sub(a.burstRat, old.burstR())        //rtlint:allow hotalloc -- wide tier: exact big.Rat arithmetic for foreign demands
		a.burstRat.Add(a.burstRat, a.stats[i].burstR()) //rtlint:allow hotalloc -- wide tier: exact big.Rat arithmetic for foreign demands
		return
	}
	a.recompute() //rtlint:allow hotalloc -- full tier rebuild after a tier change, not the O(1) steady-state delta
}

// Append grows the configuration by one demand at the end, updating
// the cached aggregates with an O(1) delta. The current tier absorbs
// the new demand when it can (narrow: checked frac additions; scaled:
// the new denominator must divide the cached common denominator); a
// full recompute runs only when it cannot, and may re-select a
// cheaper tier.
func (a *Analyzer) Append(d Demand) error {
	st, ok := newDemandStat(d)
	if !ok {
		return fmt.Errorf("dbf: nil demand")
	}
	a.ds = append(a.ds, d)
	a.stats = append(a.stats, st)
	switch a.mode {
	case modeNarrow:
		if !st.wide {
			if r, ok := a.rate.add(st.rate); ok {
				if b, ok2 := a.burst.add(st.burst); ok2 {
					a.rate, a.burst = r, b
					return nil
				}
			}
		}
	case modeScaled:
		if st.rawDen != 0 && a.t1.Mod(a.den, a.t2.SetInt64(st.rawDen)).Sign() == 0 {
			// The cached lcm already covers the new denominator: extend
			// the multiplier table and add the scaled numerators.
			a.mult = append(a.mult, big.Int{})
			m := &a.mult[len(a.mult)-1]
			m.Div(a.den, a.t1.SetInt64(st.rawDen))
			a.rateN.Add(a.rateN, a.t1.Mul(a.t2.SetInt64(st.rawRate), m))
			a.burstN.Add(a.burstN, a.t1.Mul(a.t2.SetInt64(st.rawBurst), m))
			return nil
		}
	case modeWide:
		last := &a.stats[len(a.stats)-1]
		a.rateRat.Add(a.rateRat, last.rateR())
		a.burstRat.Add(a.burstRat, last.burstR())
		return nil
	}
	a.recompute()
	return nil
}

// Remove deletes demand i, preserving the order of the remaining
// demands, and updates the cached aggregates with an O(1) delta
// (plus the slice shift). The scaled tier keeps its cached common
// denominator — a superset lcm stays a valid exact denominator — so
// removals never force a recompute there.
func (a *Analyzer) Remove(i int) error {
	if i < 0 || i >= len(a.ds) {
		return fmt.Errorf("dbf: demand index %d out of range [0,%d)", i, len(a.ds))
	}
	old := a.stats[i]
	copy(a.ds[i:], a.ds[i+1:])
	a.ds[len(a.ds)-1] = nil
	a.ds = a.ds[:len(a.ds)-1]
	copy(a.stats[i:], a.stats[i+1:])
	a.stats[len(a.stats)-1] = demandStat{}
	a.stats = a.stats[:len(a.stats)-1]
	switch a.mode {
	case modeNarrow:
		// Subtraction re-reduces through the denominators' lcm, which
		// can itself overflow int64; fall back to a recompute then.
		if r, ok := a.rate.sub(old.rate); ok {
			if b, ok2 := a.burst.sub(old.burst); ok2 {
				a.rate, a.burst = r, b
				return nil
			}
		}
	case modeScaled:
		m := &a.mult[i]
		a.rateN.Sub(a.rateN, a.t1.Mul(a.t2.SetInt64(old.rawRate), m))
		a.burstN.Sub(a.burstN, a.t1.Mul(a.t2.SetInt64(old.rawBurst), m))
		copy(a.mult[i:], a.mult[i+1:])
		// Zero the vacated tail slot: the struct shift leaves it aliasing
		// the last live entry's backing array, and a later recompute that
		// re-slices mult and mutates the slot in place would corrupt that
		// entry through the shared array.
		a.mult[len(a.mult)-1] = big.Int{}
		a.mult = a.mult[:len(a.mult)-1]
		return nil
	case modeWide:
		a.rateRat.Sub(a.rateRat, old.rateR())
		a.burstRat.Sub(a.burstRat, old.burstR())
		return nil
	}
	a.recompute()
	return nil
}

// With runs f with demand i temporarily replaced by d, restoring the
// previous configuration afterwards, and returns f's result. The
// restore reuses the cached stat, so a full trial costs two O(1)
// swaps plus whatever f does.
func (a *Analyzer) With(i int, d Demand, f func(*Analyzer) error) error {
	if i < 0 || i >= len(a.ds) {
		return fmt.Errorf("dbf: demand index %d out of range [0,%d)", i, len(a.ds))
	}
	st, ok := newDemandStat(d)
	if !ok {
		return fmt.Errorf("dbf: nil demand")
	}
	oldD, oldSt := a.ds[i], a.stats[i]
	a.swapStat(i, d, st)
	err := f(a)
	a.swapStat(i, oldD, oldSt)
	return err
}

// Horizon returns the analysis horizon of the current configuration,
// identical to dbf.Horizon over the same demands: the integer tiers
// allocate nothing in steady state; big.Rat is the exact fallback.
func (a *Analyzer) Horizon() (rtime.Duration, error) {
	switch a.mode {
	case modeNarrow:
		if h, ok, err := horizonFromFracs(a.rate, a.burst); ok {
			return h, err
		}
		// Quotient past int64: take the exact path for the right error.
		return horizonFromRats(a.rate.rat(), a.burst.rat()) //rtlint:allow hotalloc -- int64-overflow fallback to exact big.Rat, off the narrow steady state
	case modeScaled:
		return a.horizonScaled() //rtlint:allow hotalloc -- scaled tier reuses big.Int scratch; word-slice growth is amortized
	default:
		return horizonFromRats(a.rateRat, a.burstRat) //rtlint:allow hotalloc -- wide tier: exact big.Rat arithmetic for foreign demands
	}
}

// horizonScaled computes max(1, ⌈burstN/(den−rateN)⌉) with reused
// scratch: overload iff rateN ≥ den (⟺ ΣRate ≥ 1).
func (a *Analyzer) horizonScaled() (rtime.Duration, error) {
	slack := a.t1.Sub(a.den, a.rateN)
	if slack.Sign() <= 0 {
		return 0, ErrOverloaded
	}
	if a.burstN.Sign() == 0 {
		return 1, nil
	}
	q, r := a.t2.DivMod(a.burstN, slack, a.t3)
	if r.Sign() != 0 {
		q.Add(q, bigIntOne)
	}
	if !q.IsInt64() {
		return 0, errHorizonOverflow(q)
	}
	if h := q.Int64(); h >= 1 {
		return rtime.Duration(h), nil
	}
	return 1, nil
}

var bigIntOne = big.NewInt(1)

// Feasible runs the exact QPA processor-demand test on the current
// configuration using the cached aggregates: nil means every deadline
// is guaranteed, a *Violation pinpoints an overloaded window, and
// ErrOverloaded reports a long-run rate ≥ 1. The verdict — including
// the Violation window — is identical to dbf.QPA on the same demands.
//
//rtlint:hotpath -- incremental QPA re-test behind every trial decision; the narrow tier must not allocate
func (a *Analyzer) Feasible() error {
	h, err := a.Horizon()
	if err != nil {
		return err
	}
	dmin := rtime.Duration(0)
	for i := range a.stats {
		fs := a.stats[i].first
		if fs == 0 || fs > h {
			continue
		}
		if dmin == 0 || fs < dmin {
			dmin = fs
		}
	}
	if dmin == 0 {
		return nil // no demand steps within the horizon
	}
	return qpaScanFrom(a.ds, h, dmin)
}
