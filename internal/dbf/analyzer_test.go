package dbf

import (
	"errors"
	"testing"
	"testing/quick"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
)

// foreignDemand wraps a Sporadic so the type switch in newDemandStat
// does not recognize it, forcing the Analyzer's wide big.Rat tier.
type foreignDemand struct{ Sporadic }

// randomSwapDemand draws one replacement demand. A small fraction use
// hour-scale periods (whose burst numerator overflows int64, forcing a
// wide stat) or the foreign wrapper (forcing the wide tier outright),
// so every aggregate tier and every tier transition gets exercised.
func randomSwapDemand(rng *stats.RNG) Demand {
	if rng.Bool(0.08) {
		// Huge parameters: C·(T−D) overflows int64.
		period := rtime.Duration(rng.Int64N(1e12)) + 4e12
		c := period/3 + rtime.Duration(rng.Int64N(int64(period/3)))
		s, err := NewSporadic(c, period, period)
		if err == nil {
			return s
		}
	}
	period := ms(rng.UniformInt(50, 500))
	c := rtime.Duration(rng.Int64N(int64(period/2))) + 1
	if rng.Bool(0.5) {
		d := c + rtime.Duration(rng.Int64N(int64(period-c)+1))
		s, err := NewSporadic(c, d, period)
		if err != nil {
			return nil
		}
		if rng.Bool(0.15) {
			return foreignDemand{s}
		}
		return s
	}
	c1 := c/4 + 1
	r := rtime.Duration(rng.Int64N(int64(period / 2)))
	o, err := NewOffloaded(c1, c, period, period, r)
	if err != nil {
		return nil
	}
	return o
}

// sameVerdict reports whether two feasibility verdicts are identical:
// both nil, both ErrOverloaded, or Violations with equal windows.
func sameVerdict(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if errors.Is(a, ErrOverloaded) || errors.Is(b, ErrOverloaded) {
		return errors.Is(a, ErrOverloaded) && errors.Is(b, ErrOverloaded)
	}
	var va, vb *Violation
	if !errors.As(a, &va) || !errors.As(b, &vb) {
		// Horizon overflow errors and the like: compare text.
		return a.Error() == b.Error()
	}
	return va.T == vb.T && va.Demand == vb.Demand
}

// checkAnalyzerAgainstFresh asserts the Analyzer's cached-aggregate
// verdicts are identical to a fresh analysis of its current demands:
// same Horizon, same QPA verdict including the exact Violation window,
// and PDC feasibility agreement.
func checkAnalyzerAgainstFresh(t *testing.T, az *Analyzer, ctx string) {
	t.Helper()
	ds := az.Demands()

	hGot, errGot := az.Horizon()
	hWant, errWant := Horizon(ds)
	if hGot != hWant || !sameVerdict(errGot, errWant) {
		t.Fatalf("%s: Horizon: analyzer (%v, %v) vs fresh (%v, %v) [mode=%d]",
			ctx, hGot, errGot, hWant, errWant, az.mode)
	}

	got := az.Feasible()
	want := QPA(ds)
	if !sameVerdict(got, want) {
		t.Fatalf("%s: Feasible: analyzer %v vs fresh QPA %v [mode=%d]",
			ctx, got, want, az.mode)
	}
	// PDC is an equivalent exact test; the feasibility bits must agree
	// (its witness window may legitimately differ from QPA's).
	if pdc := PDC(ds); (pdc == nil) != (want == nil) {
		t.Fatalf("%s: PDC %v disagrees with QPA %v", ctx, pdc, want)
	}
}

// runAnalyzerDifferential drives one differential scenario: a random
// initial configuration, then a sequence of random swaps (through both
// Swap and With) with the Analyzer checked against fresh analyses
// after every step. Individual demands use up to half their period, so
// larger n covers overloaded systems as well as feasible ones.
func runAnalyzerDifferential(t *testing.T, seed uint64, n, swaps int) {
	t.Helper()
	rng := stats.NewRNG(seed)
	var ds []Demand
	for i := 0; i < n; i++ {
		if d := randomSwapDemand(rng); d != nil {
			ds = append(ds, d)
		}
	}
	if len(ds) == 0 {
		return
	}
	az, err := NewAnalyzer(ds)
	if err != nil {
		t.Fatalf("seed %d: NewAnalyzer: %v", seed, err)
	}
	checkAnalyzerAgainstFresh(t, az, "initial")
	for s := 0; s < swaps; s++ {
		// Churn ops first: grow and shrink the configuration so the
		// append/remove delta paths (and their tier transitions) see the
		// same differential scrutiny as swaps.
		if rng.Bool(0.2) {
			if d := randomSwapDemand(rng); d != nil {
				if err := az.Append(d); err != nil {
					t.Fatalf("seed %d swap %d: Append: %v", seed, s, err)
				}
				checkAnalyzerAgainstFresh(t, az, "after Append")
			}
			continue
		}
		if az.Len() > 1 && rng.Bool(0.2) {
			i := rng.IntN(az.Len())
			if err := az.Remove(i); err != nil {
				t.Fatalf("seed %d swap %d: Remove(%d): %v", seed, s, i, err)
			}
			checkAnalyzerAgainstFresh(t, az, "after Remove")
			continue
		}
		i := rng.IntN(az.Len())
		d := randomSwapDemand(rng)
		if d == nil {
			continue
		}
		if rng.Bool(0.3) {
			// Trial through With: the inner verdict must match a fresh
			// analysis of the trial configuration, and the restore must
			// put the aggregates back exactly.
			before := az.Feasible()
			err := az.With(i, d, func(a *Analyzer) error {
				checkAnalyzerAgainstFresh(t, a, "inside With")
				return a.Feasible()
			})
			trial := append([]Demand(nil), az.Demands()...)
			trial[i] = d
			if !sameVerdict(err, QPA(trial)) {
				t.Fatalf("seed %d swap %d: With verdict %v vs fresh %v", seed, s, err, QPA(trial))
			}
			if after := az.Feasible(); !sameVerdict(before, after) {
				t.Fatalf("seed %d swap %d: With did not restore: %v vs %v", seed, s, before, after)
			}
			checkAnalyzerAgainstFresh(t, az, "after With restore")
			continue
		}
		if err := az.Swap(i, d); err != nil {
			t.Fatalf("seed %d swap %d: Swap: %v", seed, s, err)
		}
		checkAnalyzerAgainstFresh(t, az, "after Swap")
	}
}

// TestAnalyzerDifferentialProperty is the quick.Check form of the
// differential property, covering light through overloaded systems.
func TestAnalyzerDifferentialProperty(t *testing.T) {
	check := func(seed uint64, nRaw, swapRaw uint8) bool {
		n := int(nRaw%7) + 1
		swaps := int(swapRaw%12) + 1
		runAnalyzerDifferential(t, seed, n, swaps)
		return !t.Failed()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// FuzzAnalyzerDifferential fuzzes the same property; the seeded corpus
// covers every aggregate tier (narrow, scaled, wide via huge periods
// and foreign demands) and both feasible and overloaded systems.
func FuzzAnalyzerDifferential(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(6))
	f.Add(uint64(2), uint8(1), uint8(3))
	f.Add(uint64(3), uint8(6), uint8(10)) // larger sets: overload included
	f.Add(uint64(17), uint8(5), uint8(8))
	f.Add(uint64(42), uint8(2), uint8(12))
	f.Add(uint64(4242), uint8(7), uint8(9))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, swapRaw uint8) {
		n := int(nRaw%7) + 1
		swaps := int(swapRaw%12) + 1
		runAnalyzerDifferential(t, seed, n, swaps)
	})
}

func TestAnalyzerArgumentErrors(t *testing.T) {
	if _, err := NewAnalyzer([]Demand{nil}); err == nil {
		t.Error("nil demand accepted")
	}
	s, err := NewSporadic(ms(1), ms(10), ms(10))
	if err != nil {
		t.Fatal(err)
	}
	az, err := NewAnalyzer([]Demand{s})
	if err != nil {
		t.Fatal(err)
	}
	if err := az.Swap(1, s); err == nil {
		t.Error("out-of-range Swap accepted")
	}
	if err := az.Swap(0, nil); err == nil {
		t.Error("nil Swap accepted")
	}
	if err := az.With(-1, s, func(*Analyzer) error { return nil }); err == nil {
		t.Error("out-of-range With accepted")
	}
	if err := az.Append(nil); err == nil {
		t.Error("nil Append accepted")
	}
	if err := az.Remove(1); err == nil {
		t.Error("out-of-range Remove accepted")
	}
	if err := az.Remove(-1); err == nil {
		t.Error("negative Remove accepted")
	}
	if az.Len() != 1 {
		t.Errorf("Len = %d", az.Len())
	}
}

// TestAnalyzerAppendRemoveRoundTrip grows an Analyzer one demand at a
// time from empty, checking against a fresh analysis at every size,
// then shrinks it back down removing from varying positions. This
// covers the empty→narrow→scaled/wide transitions and the stale-lcm
// scaled removals that the random churn may not hit.
func TestAnalyzerAppendRemoveRoundTrip(t *testing.T) {
	rng := stats.NewRNG(97)
	az, err := NewAnalyzer(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		d := randomSwapDemand(rng)
		if d == nil {
			continue
		}
		if err := az.Append(d); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		checkAnalyzerAgainstFresh(t, az, "grow")
	}
	pos := 0
	for az.Len() > 0 {
		i := pos % az.Len()
		pos += 3
		if err := az.Remove(i); err != nil {
			t.Fatalf("Remove(%d) at len %d: %v", i, az.Len(), err)
		}
		checkAnalyzerAgainstFresh(t, az, "shrink")
	}
	if az.Len() != 0 {
		t.Fatalf("Len = %d after draining", az.Len())
	}
	if err := az.Feasible(); err != nil {
		t.Fatalf("empty analyzer infeasible: %v", err)
	}
}
