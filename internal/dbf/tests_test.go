package dbf

import (
	"errors"
	"math/big"
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
)

func TestTheorem3Exact(t *testing.T) {
	// One offloaded task (5+30)/(100−20) = 7/16 and one local 2/10 = 1/5:
	// total 35/80 + 16/80 = 51/80.
	o, err := NewOffloaded(ms(5), ms(30), ms(100), ms(100), ms(20))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewSporadic(ms(2), ms(10), ms(10))
	if err != nil {
		t.Fatal(err)
	}
	total, ok := Theorem3([]Offloaded{o}, []Sporadic{l})
	if !ok {
		t.Fatal("feasible system rejected")
	}
	if total.Cmp(big.NewRat(51, 80)) != 0 {
		t.Errorf("total = %v, want 51/80", total)
	}
}

func TestTheorem3Boundary(t *testing.T) {
	// Exactly 1 passes; a hair over fails. Build locals 1/2 + 1/2.
	a, _ := NewSporadic(ms(5), ms(10), ms(10))
	b, _ := NewSporadic(ms(10), ms(20), ms(20))
	if total, ok := Theorem3(nil, []Sporadic{a, b}); !ok || total.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("total = %v ok = %v, want exactly 1, true", total, ok)
	}
	c, _ := NewSporadic(ms(10)+1, ms(20), ms(20))
	if _, ok := Theorem3(nil, []Sporadic{a, c}); ok {
		t.Error("over-unit total accepted")
	}
}

func TestHorizonOverloaded(t *testing.T) {
	a, _ := NewSporadic(ms(10), ms(10), ms(10))
	if _, err := Horizon([]Demand{a, a}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
}

func TestHorizonNoViolationBeyond(t *testing.T) {
	rng := stats.NewRNG(17)
	for trial := 0; trial < 50; trial++ {
		ds := randomDemands(rng, 6, 0.95)
		h, err := Horizon(ds)
		if err != nil {
			continue
		}
		// Check a spread of points beyond the horizon.
		for k := int64(1); k <= 5; k++ {
			tt := h + rtime.Duration(k)*ms(997)
			if dem := TotalDBF(ds, tt); dem > tt {
				t.Fatalf("trial %d: demand %v exceeds window %v beyond horizon %v", trial, dem, tt, h)
			}
		}
	}
}

// randomDemands generates a mix of sporadic and offloaded demands with
// total long-run rate roughly targetUtil (may exceed 1 occasionally
// when targetUtil is close to 1 — callers rely on Horizon to reject).
func randomDemands(rng *stats.RNG, n int, targetUtil float64) []Demand {
	utils := rng.UUniFast(n, targetUtil)
	ds := make([]Demand, 0, n)
	for i := 0; i < n; i++ {
		period := ms(rng.UniformInt(50, 500))
		c := rtime.Duration(utils[i] * float64(period))
		if c <= 0 {
			c = 1
		}
		if rng.Bool(0.5) {
			// Sporadic, sometimes constrained deadline.
			d := period
			if rng.Bool(0.3) {
				d = c + rtime.Duration(rng.Int64N(int64(period-c)+1))
			}
			s, err := NewSporadic(c, d, period)
			if err == nil {
				ds = append(ds, s)
			}
			continue
		}
		// Offloaded: split c into c1+c2 and pick r small enough to keep
		// the same long-run rate C1+C2 = c.
		c1 := c / 4
		if c1 <= 0 {
			c1 = 1
		}
		c2 := c - c1
		if c2 <= 0 {
			c2 = 1
		}
		r := rtime.Duration(rng.Int64N(int64(period / 3)))
		o, err := NewOffloaded(c1, c2, period, period, r)
		if err == nil {
			ds = append(ds, o)
		} else if s, err2 := NewSporadic(c, period, period); err2 == nil {
			ds = append(ds, s)
		}
	}
	return ds
}

func TestPDCAcceptsLightSystem(t *testing.T) {
	a, _ := NewSporadic(ms(1), ms(10), ms(10))
	b, _ := NewSporadic(ms(2), ms(20), ms(20))
	if err := PDC([]Demand{a, b}); err != nil {
		t.Fatalf("light system rejected: %v", err)
	}
	if err := QPA([]Demand{a, b}); err != nil {
		t.Fatalf("QPA rejected light system: %v", err)
	}
}

func TestPDCDetectsShortWindowOverload(t *testing.T) {
	// Two tasks, low utilization but both deadlines at 10ms with 6ms
	// each: demand 12ms in a 10ms window.
	a, _ := NewSporadic(ms(6), ms(10), ms(100))
	b, _ := NewSporadic(ms(6), ms(10), ms(100))
	err := PDC([]Demand{a, b})
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("PDC err = %v, want Violation", err)
	}
	if v.T != ms(10) || v.Demand != ms(12) {
		t.Errorf("violation = %+v", v)
	}
	err = QPA([]Demand{a, b})
	if !errors.As(err, &v) {
		t.Fatalf("QPA err = %v, want Violation", err)
	}
	if v.Demand <= v.T {
		t.Errorf("QPA violation inconsistent: %+v", v)
	}
}

func TestPDCQPAAgree(t *testing.T) {
	rng := stats.NewRNG(4242)
	feasible, infeasible := 0, 0
	for trial := 0; trial < 400; trial++ {
		// Half the trials target overload-prone short deadlines.
		var ds []Demand
		if trial%2 == 0 {
			ds = randomDemands(rng, 5, rng.Uniform(0.4, 0.99))
		} else {
			// Constrained deadlines cause short-window overloads even
			// at modest utilization.
			n := rng.IntN(4) + 2
			for i := 0; i < n; i++ {
				period := ms(rng.UniformInt(20, 100))
				c := rtime.Duration(rng.Int64N(int64(period/3))) + 1
				d := c + rtime.Duration(rng.Int64N(int64(period-c)+1))
				if d > period {
					d = period
				}
				if s, err := NewSporadic(c, d, period); err == nil {
					ds = append(ds, s)
				}
			}
		}
		if len(ds) == 0 {
			continue
		}
		if TotalRate(ds).Cmp(big.NewRat(1, 1)) >= 0 {
			continue
		}
		errP := PDC(ds)
		errQ := QPA(ds)
		if (errP == nil) != (errQ == nil) {
			t.Fatalf("trial %d: PDC=%v QPA=%v disagree", trial, errP, errQ)
		}
		if errP == nil {
			feasible++
		} else {
			infeasible++
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("degenerate coverage: feasible=%d infeasible=%d", feasible, infeasible)
	}
}

// The paper's Theorem 3 is a sufficient test: any system it accepts
// must also pass the exact processor-demand criterion. (D1 flooring
// introduces sub-µs slack requirements; the deterministic seeds below
// exercise 300 random systems including near-capacity ones.)
func TestTheorem3ImpliesPDC(t *testing.T) {
	rng := stats.NewRNG(777)
	accepted := 0
	for trial := 0; trial < 300; trial++ {
		var off []Offloaded
		var loc []Sporadic
		var ds []Demand
		n := rng.IntN(8) + 2
		for i := 0; i < n; i++ {
			period := ms(rng.UniformInt(50, 700))
			c := rtime.Duration(rng.Int64N(int64(period/4))) + 1
			if rng.Bool(0.5) {
				s, err := NewSporadic(c, period, period)
				if err != nil {
					continue
				}
				loc = append(loc, s)
				ds = append(ds, s)
			} else {
				c1 := rtime.Duration(rng.Int64N(int64(c))) + 1
				r := rtime.Duration(rng.Int64N(int64(period / 2)))
				o, err := NewOffloaded(c1, c, period, period, r)
				if err != nil {
					continue
				}
				off = append(off, o)
				ds = append(ds, o)
			}
		}
		if len(ds) == 0 {
			continue
		}
		if _, ok := Theorem3(off, loc); !ok {
			continue
		}
		accepted++
		if err := PDC(ds); err != nil {
			t.Fatalf("trial %d: Theorem 3 accepted but PDC found %v", trial, err)
		}
	}
	if accepted < 50 {
		t.Fatalf("only %d systems accepted by Theorem 3; generator too aggressive", accepted)
	}
}

// QPA/PDC are strictly tighter than Theorem 3: build a system Theorem 3
// rejects (rate sum > 1) that the exact test accepts, because the
// linear bound over-approximates the floor-shaped true demand.
func TestExactTestTighterThanTheorem3(t *testing.T) {
	// Offloaded task with large R: Theorem-1 rate (C1+C2)/(D−R) is huge,
	// but the true per-period demand is modest.
	o, err := NewOffloaded(ms(10), ms(30), ms(100), ms(100), ms(55))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewSporadic(ms(20), ms(100), ms(100))
	if err != nil {
		t.Fatal(err)
	}
	total, ok := Theorem3([]Offloaded{o}, []Sporadic{l})
	if ok {
		t.Skipf("expected Theorem 3 rejection, got total %v", total)
	}
	if err := PDC([]Demand{o, l}); err != nil {
		t.Fatalf("exact test rejected too: %v", err)
	}
	if err := QPA([]Demand{o, l}); err != nil {
		t.Fatalf("QPA rejected: %v", err)
	}
}

func TestHyperperiod(t *testing.T) {
	h, ok := Hyperperiod([]rtime.Duration{ms(10), ms(15), ms(6)})
	if !ok || h != ms(30) {
		t.Errorf("Hyperperiod = %v, %v", h, ok)
	}
	if _, ok := Hyperperiod(nil); ok {
		t.Error("empty hyperperiod accepted")
	}
	big1 := rtime.Duration(1<<62 - 1)
	big2 := big1 - 2
	if _, ok := Hyperperiod([]rtime.Duration{big1, big2}); ok {
		t.Error("overflow not detected")
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{T: ms(10), Demand: ms(12)}
	if v.Error() == "" {
		t.Error("empty violation message")
	}
}
