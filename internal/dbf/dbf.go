// Package dbf implements demand-bound-function analysis for the
// paper's scheduling algorithm (§5.1, Theorems 1–3).
//
// A Demand models the worst-case execution demand a task can place in
// any window of a given length. Two concrete demands are provided:
//
//   - Sporadic: a classic sporadic task (Ci, Di, Ti) — the paper's
//     locally executed tasks (Theorem 2, after Baruah et al. 1990).
//   - Offloaded: a task split into a setup sub-job (Ci,1, deadline
//     Di,1) and a compensation/post-processing sub-job (Ci,2, absolute
//     deadline t+Di) separated by a suspension of at most Ri. Its DBF
//     is the exact worst case over window alignments of the split
//     model, which refines the paper's linear Theorem-1 bound
//     (Ci,1+Ci,2)/(Di−Ri)·t.
//
// On top of the demands, the package provides the paper's Theorem-3
// density test in exact rational arithmetic, the processor demand
// criterion (PDC) over all demand steps up to a rigorous busy-window
// horizon, and QPA (Zhang & Burns 2009) as a faster exact test.
package dbf

import (
	"fmt"
	"math"
	"math/big"
	"sort"

	"rtoffload/internal/rtime"
)

// Demand is the worst-case execution demand of one task.
type Demand interface {
	// DBF returns the maximum execution time of jobs that both arrive
	// in and have deadlines in any window of length t.
	DBF(t rtime.Duration) rtime.Duration
	// Rate is the long-run demand growth rate: lim DBF(t)/t.
	Rate() *big.Rat
	// Burst is an additive constant with DBF(t) ≤ Rate·t + Burst for
	// all t ≥ 0; it bounds the transient excess over the long-run rate
	// and determines the analysis horizon.
	Burst() *big.Rat
	// StepsUpTo lists every t ≤ limit where DBF increases, ascending.
	StepsUpTo(limit rtime.Duration) []rtime.Duration
	// FirstStep returns the smallest t > 0 where DBF increases, or 0
	// when the demand has no steps at all.
	FirstStep() rtime.Duration
	// PrevStep returns the largest step strictly below t, or 0 when
	// none exists.
	PrevStep(t rtime.Duration) rtime.Duration
}

// count returns the number of deadlines at offsets off, off+T,
// off+2T, … that are ≤ t (zero when t < off), saturated at the int64
// ceiling.
func count(t, off, period rtime.Duration) int64 {
	if t < off {
		return 0
	}
	n := rtime.FloorDiv(t-off, period)
	if n == math.MaxInt64 {
		return n // a window at the int64 horizon with a 1µs period
	}
	return n + 1
}

// stepsForOffset appends the steps off, off+T, … ≤ limit to dst.
func stepsForOffset(dst []rtime.Duration, off, period, limit rtime.Duration) []rtime.Duration {
	for s := off; s <= limit; {
		dst = append(dst, s)
		next := addDur(s, period)
		if next <= s {
			break // saturated at the int64 ceiling
		}
		s = next
	}
	return dst
}

// prevForOffset returns the largest value of off+kT (k ≥ 0) strictly
// below t, or 0. The checked helpers cannot actually saturate here —
// k·T ≤ t−off−1 by construction — but keep the arithmetic uniformly
// guarded.
func prevForOffset(t, off, period rtime.Duration) rtime.Duration {
	if t <= off {
		return 0
	}
	k := rtime.FloorDiv(t-off-1, period)
	return addDur(off, mulDur(period, k))
}

// Sporadic is the demand of a sporadic task with WCET C, relative
// deadline D and minimum inter-arrival time T (D ≤ T).
type Sporadic struct {
	C, D, T rtime.Duration
}

// NewSporadic validates the parameters.
func NewSporadic(c, d, t rtime.Duration) (Sporadic, error) {
	switch {
	case t <= 0:
		return Sporadic{}, fmt.Errorf("dbf: period %v must be positive", t)
	case d <= 0 || d > t:
		return Sporadic{}, fmt.Errorf("dbf: deadline %v out of (0, %v]", d, t)
	case c <= 0 || c > d:
		return Sporadic{}, fmt.Errorf("dbf: WCET %v out of (0, %v]", c, d)
	}
	return Sporadic{C: c, D: d, T: t}, nil
}

// DBF implements the classic sporadic demand bound
// max(0, ⌊(t−D)/T⌋+1)·C, saturating instead of wrapping on overflow.
func (s Sporadic) DBF(t rtime.Duration) rtime.Duration {
	return mulDur(s.C, count(t, s.D, s.T))
}

// Rate returns C/T.
func (s Sporadic) Rate() *big.Rat { return rtime.Ratio(s.C, s.T) }

// Burst returns C·(T−D)/T, from DBF(t) ≤ C·(t−D+T)/T.
func (s Sporadic) Burst() *big.Rat {
	b := rtime.Ratio(s.T-s.D, s.T)
	return b.Mul(b, s.C.Rat())
}

// StepsUpTo lists D, D+T, D+2T, … ≤ limit.
func (s Sporadic) StepsUpTo(limit rtime.Duration) []rtime.Duration {
	return stepsForOffset(nil, s.D, s.T, limit)
}

// FirstStep returns D, the first deadline.
func (s Sporadic) FirstStep() rtime.Duration { return s.D }

// stepStreams implements stepStreamer: one arithmetic progression
// starting at D with period T.
func (s Sporadic) stepStreams() []stepStream {
	return []stepStream{{off: s.D, period: s.T}}
}

// PrevStep returns the largest step below t.
func (s Sporadic) PrevStep(t rtime.Duration) rtime.Duration {
	return prevForOffset(t, s.D, s.T)
}

// SplitDeadline computes the setup sub-job's relative deadline of the
// paper's scheduling algorithm (§5.1):
//
//	Di,1 = Ci,1 · (Di − Ri) / (Ci,1 + Ci,2)
//
// floored to the microsecond grid. When the Theorem-3 term
// (Ci,1+Ci,2)/(Di−Ri) is ≤ 1, the floored Di,1 is still ≥ Ci,1.
func SplitDeadline(c1, c2, d, r rtime.Duration) (rtime.Duration, error) {
	if c1 <= 0 || c2 <= 0 {
		return 0, fmt.Errorf("dbf: setup/compensation WCETs must be positive (C1=%v, C2=%v)", c1, c2)
	}
	if r < 0 {
		return 0, fmt.Errorf("dbf: negative response budget %v", r)
	}
	if d-r <= 0 {
		return 0, fmt.Errorf("dbf: response budget %v leaves no slack before deadline %v", r, d)
	}
	den, ok := add64(int64(c1), int64(c2))
	if !ok {
		return 0, fmt.Errorf("dbf: setup+compensation WCETs overflow int64 (C1=%v, C2=%v)", c1, c2)
	}
	// 128-bit intermediate; the quotient fits int64 because C1 < C1+C2
	// implies D1 < D−R.
	q, ok := mulDiv64(int64(c1), int64(d-r), den)
	if !ok {
		return 0, fmt.Errorf("dbf: split deadline overflows int64 (C1=%v, D−R=%v)", c1, d-r)
	}
	d1 := rtime.Duration(q)
	if d1 <= 0 {
		return 0, fmt.Errorf("dbf: split deadline underflows the time grid (C1=%v, D−R=%v, C1+C2=%v)", c1, d-r, c1+c2)
	}
	return d1, nil
}

// Offloaded is the demand of an offloaded task under the paper's
// split-deadline EDF scheduling: setup sub-job (C1, relative deadline
// D1), suspension ≤ R, then a second sub-job (C2 worst case, absolute
// deadline release+D). D ≤ T.
type Offloaded struct {
	C1, C2 rtime.Duration
	D, T   rtime.Duration
	R      rtime.Duration
	D1     rtime.Duration
}

// NewOffloaded validates parameters and computes D1 via SplitDeadline.
func NewOffloaded(c1, c2, d, t, r rtime.Duration) (Offloaded, error) {
	if t <= 0 || d <= 0 || d > t {
		return Offloaded{}, fmt.Errorf("dbf: deadline %v / period %v invalid", d, t)
	}
	d1, err := SplitDeadline(c1, c2, d, r)
	if err != nil {
		return Offloaded{}, err
	}
	if c1 > d1 {
		return Offloaded{}, fmt.Errorf("dbf: setup WCET %v exceeds split deadline %v (over-dense: (C1+C2)/(D−R) > 1)", c1, d1)
	}
	if rem := d - d1 - r; c2 > rem {
		return Offloaded{}, fmt.Errorf("dbf: compensation WCET %v exceeds remaining window %v", c2, rem)
	}
	return Offloaded{C1: c1, C2: c2, D: d, T: t, R: r, D1: d1}, nil
}

// DBF returns the exact worst-case demand of the split model: the
// maximum over the two critical window alignments — (a) the window
// starts at a job release; (b) the window starts at the latest possible
// arrival of a second sub-job (release + D1 + R), with the preceding
// setup outside the window.
func (o Offloaded) DBF(t rtime.Duration) rtime.Duration {
	if t <= 0 {
		return 0
	}
	a := addDur(mulDur(o.C1, count(t, o.D1, o.T)),
		mulDur(o.C2, count(t, o.D, o.T)))
	b := addDur(mulDur(o.C2, count(t, o.D-o.D1-o.R, o.T)),
		mulDur(o.C1, count(t, o.T-o.R, o.T)))
	return rtime.Max(a, b)
}

// Rate returns the long-run rate (C1+C2)/T.
func (o Offloaded) Rate() *big.Rat { return rtime.Ratio(o.C1+o.C2, o.T) }

// Burst bounds the transient excess: from alignment (a),
// DBF ≤ (C1+C2)/T·t + C1(T−D1)/T + C2(T−D)/T; from (b) the constant is
// C2(T−D+D1+R)/T + C1·R/T. Burst is the larger of the two.
func (o Offloaded) Burst() *big.Rat {
	t := o.T.Rat()
	a := new(big.Rat).Add(
		mulRat(rtime.Ratio(o.T-o.D1, o.T), o.C1),
		mulRat(rtime.Ratio(o.T-o.D, o.T), o.C2),
	)
	b := new(big.Rat).Add(
		mulRat(rtime.Ratio(o.T-o.D+o.D1+o.R, o.T), o.C2),
		mulRat(new(big.Rat).Quo(o.R.Rat(), t), o.C1),
	)
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

func mulRat(r *big.Rat, d rtime.Duration) *big.Rat {
	return new(big.Rat).Mul(r, d.Rat())
}

// LinearBound evaluates the paper's Theorem-1 upper bound
// (C1+C2)/(D−R)·t exactly.
func (o Offloaded) LinearBound(t rtime.Duration) *big.Rat {
	return mulRat(rtime.Ratio(o.C1+o.C2, o.D-o.R), t)
}

// Theorem1Rate returns (C1+C2)/(D−R), the task's contribution to the
// Theorem-3 sum.
func (o Offloaded) Theorem1Rate() *big.Rat {
	return rtime.Ratio(o.C1+o.C2, o.D-o.R)
}

// offsets returns the four step offsets of the two alignments.
func (o Offloaded) offsets() [4]rtime.Duration {
	return [4]rtime.Duration{o.D1, o.D, o.D - o.D1 - o.R, o.T - o.R}
}

// StepsUpTo lists all points ≤ limit where either alignment's demand
// increases, deduplicated and ascending.
func (o Offloaded) StepsUpTo(limit rtime.Duration) []rtime.Duration {
	var steps []rtime.Duration
	for _, off := range o.offsets() {
		if off <= 0 {
			continue
		}
		steps = stepsForOffset(steps, off, o.T, limit)
	}
	return dedupSorted(steps)
}

// FirstStep returns the smallest positive offset of either alignment.
func (o Offloaded) FirstStep() rtime.Duration {
	best := rtime.Duration(0)
	for _, off := range o.offsets() {
		if off <= 0 {
			continue
		}
		if best == 0 || off < best {
			best = off
		}
	}
	return best
}

// stepStreams implements stepStreamer: one arithmetic progression per
// positive alignment offset, all with period T.
func (o Offloaded) stepStreams() []stepStream {
	streams := make([]stepStream, 0, 4)
	for _, off := range o.offsets() {
		if off <= 0 {
			continue
		}
		streams = append(streams, stepStream{off: off, period: o.T})
	}
	return streams
}

// PrevStep returns the largest step below t across both alignments.
func (o Offloaded) PrevStep(t rtime.Duration) rtime.Duration {
	best := rtime.Duration(0)
	for _, off := range o.offsets() {
		if off <= 0 {
			continue
		}
		if p := prevForOffset(t, off, o.T); p > best {
			best = p
		}
	}
	return best
}

func dedupSorted(xs []rtime.Duration) []rtime.Duration {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// TotalDBF sums the demands at window length t, saturating at the
// int64 ceiling instead of wrapping.
func TotalDBF(ds []Demand, t rtime.Duration) rtime.Duration {
	var sum rtime.Duration
	for _, d := range ds {
		sum = addDur(sum, d.DBF(t))
	}
	return sum
}

// TotalRate sums the long-run rates.
func TotalRate(ds []Demand) *big.Rat {
	u := new(big.Rat)
	for _, d := range ds {
		u.Add(u, d.Rate())
	}
	return u
}
