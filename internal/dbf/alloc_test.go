package dbf

import "testing"

// TestSwapFeasibleNarrowZeroAlloc gates the //rtlint:hotpath contract
// on Analyzer.Swap and Analyzer.Feasible: with every demand in the
// narrow int64 tier, a trial swap plus the incremental QPA re-test
// must not allocate. The alternates are pre-boxed Demand values so the
// measured loop pays only the analyzer's own work.
func TestSwapFeasibleNarrowZeroAlloc(t *testing.T) {
	ds := []Demand{
		Sporadic{C: 1000, D: 8000, T: 10000},
		Sporadic{C: 2000, D: 16000, T: 20000},
		Sporadic{C: 1500, D: 30000, T: 40000},
	}
	a, err := NewAnalyzer(ds)
	if err != nil {
		t.Fatal(err)
	}
	alt := [2]Demand{
		Sporadic{C: 1200, D: 8000, T: 10000},
		Sporadic{C: 1000, D: 8000, T: 10000},
	}
	for _, d := range alt {
		if err := a.Swap(0, d); err != nil {
			t.Fatal(err)
		}
		if err := a.Feasible(); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		if err := a.Swap(0, alt[i&1]); err != nil {
			t.Error(err)
		}
		i++
		if err := a.Feasible(); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm narrow Swap+Feasible allocates %.1f times per run; the hotpath contract is 0", allocs)
	}
}
