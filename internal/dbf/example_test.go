package dbf_test

import (
	"fmt"

	"rtoffload/internal/dbf"
	"rtoffload/internal/rtime"
)

// ExampleTheorem3 evaluates the paper's schedulability test for one
// offloaded and one local task in exact rational arithmetic.
func ExampleTheorem3() {
	ms := rtime.FromMillis
	off, err := dbf.NewOffloaded(ms(5), ms(30), ms(100), ms(100), ms(20))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	loc, err := dbf.NewSporadic(ms(2), ms(10), ms(10))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	total, ok := dbf.Theorem3([]dbf.Offloaded{off}, []dbf.Sporadic{loc})
	fmt.Printf("total=%s schedulable=%v\n", total.RatString(), ok)
	// Output:
	// total=51/80 schedulable=true
}

// ExampleSplitDeadline computes the setup sub-job deadline of §5.1.
func ExampleSplitDeadline() {
	ms := rtime.FromMillis
	d1, err := dbf.SplitDeadline(ms(5), ms(30), ms(100), ms(20))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// D1 = 5·(100−20)/35 ms = 80/7 ms, floored to the µs grid.
	fmt.Printf("D1 = %.4f ms\n", d1.Millis())
	// Output:
	// D1 = 11.4280 ms
}

// ExampleQPA runs the exact processor-demand test that refines
// Theorem 3's linear bound.
func ExampleQPA() {
	ms := rtime.FromMillis
	// Theorem 3 rejects this task pair ((10+30)/45 + 20/100 > 1)…
	off, _ := dbf.NewOffloaded(ms(10), ms(30), ms(100), ms(100), ms(55))
	loc, _ := dbf.NewSporadic(ms(20), ms(100), ms(100))
	_, ok := dbf.Theorem3([]dbf.Offloaded{off}, []dbf.Sporadic{loc})
	// …but the exact demand analysis admits it.
	err := dbf.QPA([]dbf.Demand{off, loc})
	fmt.Printf("theorem3=%v exact=%v\n", ok, err == nil)
	// Output:
	// theorem3=false exact=true
}
