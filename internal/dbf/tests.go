package dbf

import (
	"errors"
	"fmt"
	"math/big"

	"rtoffload/internal/rtime"
)

var one = big.NewRat(1, 1)

// Theorem3 evaluates the paper's schedulability test (Theorem 3) in
// exact rational arithmetic:
//
//	Σ_{τi ∈ To} (Ci,1+Ci,2)/(Di−Ri)  +  Σ_{τi ∈ Tl} Ci/Di  ≤  1
//
// For implicit-deadline local tasks Ci/Di equals the paper's Ci/Ti;
// using the deadline keeps the test sufficient for the
// constrained-deadline extension as well. It returns the exact total
// and whether the test passes.
func Theorem3(offloaded []Offloaded, local []Sporadic) (total *big.Rat, ok bool) {
	total = new(big.Rat)
	for _, o := range offloaded {
		total.Add(total, o.Theorem1Rate())
	}
	for _, l := range local {
		total.Add(total, rtime.Ratio(l.C, l.D))
	}
	return total, total.Cmp(one) <= 0
}

// ErrOverloaded reports a long-run demand rate ≥ 1, for which no
// finite analysis horizon exists.
var ErrOverloaded = errors.New("dbf: total long-run demand rate ≥ 1")

// errHorizonOverflow formats the horizon-overflow error identically
// on the integer and big.Rat paths.
func errHorizonOverflow(q *big.Int) error {
	return fmt.Errorf("dbf: analysis horizon overflows int64 microseconds: %v", q)
}

// Horizon returns a rigorous upper bound on the length of any window
// that can witness a demand violation: any t with ΣDBF(t) > t
// satisfies t < ΣBurst / (1 − ΣRate). Windows beyond the horizon need
// not be checked. Fails with ErrOverloaded when ΣRate ≥ 1.
//
// The aggregates are summed on the integer fast path (frac) when they
// fit in int64; big.Rat is the exact fallback, so the result is
// identical either way.
func Horizon(ds []Demand) (rtime.Duration, error) {
	rate, burst := fracZero, fracZero
	fast := true
	for _, d := range ds {
		st, ok := newDemandStat(d)
		if !ok || st.wide {
			fast = false
			break
		}
		if rate, ok = rate.add(st.rate); !ok {
			fast = false
			break
		}
		if burst, ok = burst.add(st.burst); !ok {
			fast = false
			break
		}
	}
	if fast {
		if h, ok, err := horizonFromFracs(rate, burst); ok {
			return h, err
		}
	}
	u := TotalRate(ds)
	b := new(big.Rat)
	for _, d := range ds {
		b.Add(b, d.Burst())
	}
	return horizonFromRats(u, b)
}

// Violation describes a failed demand test: at window length T the
// accumulated demand exceeds the available time.
type Violation struct {
	T      rtime.Duration
	Demand rtime.Duration
}

func (v *Violation) Error() string {
	return fmt.Sprintf("dbf: demand %v exceeds window %v", v.Demand, v.T)
}

// PDC runs the processor demand criterion: the system is EDF-feasible
// on a unit-speed processor iff ΣDBF(t) ≤ t for every step t up to the
// analysis horizon. It returns nil when feasible, a *Violation when a
// window is overloaded, and ErrOverloaded when the long-run rate is
// ≥ 1 with positive demand growth.
func PDC(ds []Demand) error {
	h, err := Horizon(ds)
	if err != nil {
		return err
	}
	// K-way streaming merge over per-demand step cursors: memory stays
	// O(#progressions) even when the horizon spans millions of steps.
	m := newStepMerger(ds, h)
	for t, ok := m.next(); ok; t, ok = m.next() {
		if dem := TotalDBF(ds, t); dem > t {
			return &Violation{T: t, Demand: dem}
		}
	}
	return nil
}

// QPA runs Zhang & Burns' Quick Processor-demand Analysis, an exact
// test equivalent to PDC that scans backwards from the horizon and
// typically evaluates orders of magnitude fewer points.
func QPA(ds []Demand) error {
	h, err := Horizon(ds)
	if err != nil {
		return err
	}
	return qpaScan(ds, h)
}

// qpaScan is the QPA backward scan over a fixed horizon, shared by
// QPA and the incremental Analyzer.
func qpaScan(ds []Demand, h rtime.Duration) error {
	dmin := minStep(ds, h)
	if dmin == 0 {
		return nil // no demand steps at all
	}
	return qpaScanFrom(ds, h, dmin)
}

// qpaScanFrom runs the backward scan with a precomputed smallest step.
func qpaScanFrom(ds []Demand, h, dmin rtime.Duration) error {
	// Zhang & Burns, Algorithm 1:
	//
	//	t := max{step < L}
	//	while h(t) ≤ t ∧ h(t) > dmin:
	//	    if h(t) < t: t := h(t) else t := max{step < t}
	//	feasible iff h(t) ≤ dmin at exit (otherwise h(t) > t).
	t := prevStepAll(ds, h+1)
	for t >= dmin {
		dem := TotalDBF(ds, t)
		if dem > t {
			return &Violation{T: t, Demand: dem} //rtlint:allow hotalloc -- violation report built once on the infeasible verdict path
		}
		if dem <= dmin {
			// No window below t can be overloaded: demand below dmin
			// never exceeds dmin ≤ any remaining step.
			return nil
		}
		if dem < t {
			t = dem
		} else {
			t = prevStepAll(ds, t)
		}
	}
	return nil
}

// prevStepAll returns the largest step of any demand strictly below t.
func prevStepAll(ds []Demand, t rtime.Duration) rtime.Duration {
	best := rtime.Duration(0)
	for _, d := range ds {
		if p := d.PrevStep(t); p > best {
			best = p
		}
	}
	return best
}

// minStep returns the smallest step of any demand within the horizon,
// or 0 when there are none. FirstStep keeps this allocation-free — no
// step slice is materialized just to read its head.
func minStep(ds []Demand, h rtime.Duration) rtime.Duration {
	best := rtime.Duration(0)
	for _, d := range ds {
		fs := d.FirstStep()
		if fs == 0 || fs > h {
			continue
		}
		if best == 0 || fs < best {
			best = fs
		}
	}
	return best
}

// Hyperperiod returns the least common multiple of the tasks' periods,
// reporting ok=false on overflow. Useful for simulation horizons on
// harmonic sets; the analysis itself uses Horizon instead.
func Hyperperiod(periods []rtime.Duration) (rtime.Duration, bool) {
	if len(periods) == 0 {
		return 0, false
	}
	l := periods[0]
	for _, p := range periods[1:] {
		var ok bool
		l, ok = rtime.LCM(l, p)
		if !ok {
			return 0, false
		}
	}
	return l, true
}
