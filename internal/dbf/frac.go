package dbf

import (
	"math"
	"math/big"
	"math/bits"

	"rtoffload/internal/rtime"
)

// frac is a non-negative exact rational with int64 numerator and
// positive denominator, kept reduced. It is the integer fast path of
// the demand aggregates (rate and burst sums): as long as the running
// sums fit, Horizon and the Analyzer's Swap need no big.Rat
// allocation. Overflow is detected, never silently wrapped — callers
// fall back to big.Rat arithmetic, so exactness is never compromised.
type frac struct {
	n, d int64
}

// fracZero is the additive identity.
var fracZero = frac{n: 0, d: 1}

// newFrac reduces n/d (both ≥ 0, d > 0).
func newFrac(n, d int64) frac {
	if n == 0 {
		return frac{0, 1}
	}
	g := int64(rtime.GCD(rtime.Duration(n), rtime.Duration(d)))
	return frac{n / g, d / g}
}

// rat converts to a big.Rat.
func (f frac) rat() *big.Rat { return big.NewRat(f.n, f.d) }

// mul64 multiplies two non-negative int64s, reporting overflow.
func mul64(a, b int64) (int64, bool) {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi != 0 || lo > math.MaxInt64 {
		return 0, false
	}
	return int64(lo), true
}

// add64 adds two non-negative int64s, reporting overflow.
func add64(a, b int64) (int64, bool) {
	s := a + b
	if s < 0 {
		return 0, false
	}
	return s, true
}

// mulDiv64 returns ⌊a·b/den⌋ for non-negative a, b and positive den
// with a 128-bit intermediate, so the product itself can never wrap;
// ok=false when the quotient exceeds int64 range.
func mulDiv64(a, b, den int64) (int64, bool) {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi >= uint64(den) {
		return 0, false
	}
	q, _ := bits.Div64(hi, lo, uint64(den))
	if q > math.MaxInt64 {
		return 0, false
	}
	return int64(q), true
}

// mulDur returns k·c saturated at the int64 ceiling, for k ≥ 0 and
// c ≥ 0. Saturation is conservative in demand arithmetic: an
// overflowing demand reads as "infinite", so a window that would have
// wrapped into a feasible-looking value instead fails the test.
func mulDur(c rtime.Duration, k int64) rtime.Duration {
	if k <= 0 || c <= 0 {
		return 0
	}
	hi, lo := bits.Mul64(uint64(k), uint64(c))
	if hi != 0 || lo > math.MaxInt64 {
		return rtime.Duration(math.MaxInt64)
	}
	return rtime.Duration(lo)
}

// addDur returns a+b saturated at the int64 ceiling, for non-negative
// a and b.
func addDur(a, b rtime.Duration) rtime.Duration {
	s := a + b
	if s < 0 {
		return rtime.Duration(math.MaxInt64)
	}
	return s
}

// add adds two fracs, reporting ok=false on int64 overflow.
func (f frac) add(o frac) (frac, bool) { return f.combine(o, false) }

// sub subtracts o from f. The rational result must be ≥ 0 (the caller
// removes a component previously added); ok=false on overflow.
func (f frac) sub(o frac) (frac, bool) { return f.combine(o, true) }

func (f frac) combine(o frac, neg bool) (frac, bool) {
	g := int64(rtime.GCD(rtime.Duration(f.d), rtime.Duration(o.d)))
	l, ok := mul64(f.d/g, o.d)
	if !ok {
		return frac{}, false
	}
	a, ok := mul64(f.n, l/f.d)
	if !ok {
		return frac{}, false
	}
	b, ok := mul64(o.n, l/o.d)
	if !ok {
		return frac{}, false
	}
	var n int64
	if neg {
		n = a - b
		if n < 0 {
			return frac{}, false
		}
	} else {
		n = a + b
		if n < 0 { // int64 wrap
			return frac{}, false
		}
	}
	return newFrac(n, l), true
}

// cmp compares two fracs: -1, 0, +1.
func (f frac) cmp(o frac) int {
	// Cross-multiply in 128 bits — never overflows.
	lhi, llo := bits.Mul64(uint64(f.n), uint64(o.d))
	rhi, rlo := bits.Mul64(uint64(o.n), uint64(f.d))
	switch {
	case lhi != rhi:
		if lhi < rhi {
			return -1
		}
		return 1
	case llo != rlo:
		if llo < rlo {
			return -1
		}
		return 1
	}
	return 0
}

// horizonFromFracs computes the analysis horizon max(1, ⌈burst/(1−rate)⌉)
// from integer aggregates with 128-bit intermediates and no
// allocation. ok=false means the caller must use the big.Rat path
// (quotient near or past int64 range); err is ErrOverloaded when
// rate ≥ 1.
func horizonFromFracs(rate, burst frac) (h rtime.Duration, ok bool, err error) {
	if rate.n >= rate.d {
		return 0, true, ErrOverloaded
	}
	if burst.n == 0 {
		return 1, true, nil
	}
	// h = burst.n·rate.d / (burst.d·(rate.d − rate.n)), rounded up.
	den, okm := mul64(burst.d, rate.d-rate.n)
	if !okm {
		return 0, false, nil
	}
	hi, lo := bits.Mul64(uint64(burst.n), uint64(rate.d))
	if hi >= uint64(den) {
		// Quotient exceeds 64 bits — certainly past int64 microseconds.
		return 0, false, nil
	}
	q, r := bits.Div64(hi, lo, uint64(den))
	if r != 0 {
		q++
	}
	if q > math.MaxInt64 {
		return 0, false, nil
	}
	if q < 1 {
		return 1, true, nil
	}
	return rtime.Duration(q), true, nil
}

// horizonFromRats is the exact big.Rat horizon shared by Horizon and
// the Analyzer's wide path: max(1, ⌈burst/(1−rate)⌉) in microseconds,
// ErrOverloaded when rate ≥ 1, an error when the bound overflows
// int64.
func horizonFromRats(rate, burst *big.Rat) (rtime.Duration, error) {
	if rate.Cmp(one) >= 0 {
		return 0, ErrOverloaded
	}
	den := new(big.Rat).Sub(one, rate)
	h := new(big.Rat).Quo(burst, den)
	// Round up to the next microsecond. Any horizon below one
	// microsecond (including a zero burst, where demand never exceeds
	// rate·t < t) rounds up to the minimum positive horizon; the
	// comparison is exact — a float round-trip here could misclassify
	// a bound within one ulp of 1.
	if h.Cmp(one) < 0 {
		return 1, nil
	}
	num := new(big.Int).Set(h.Num())
	den2 := h.Denom()
	q := new(big.Int).Div(num, den2)
	if new(big.Int).Mul(q, den2).Cmp(num) != 0 {
		q.Add(q, big.NewInt(1))
	}
	if !q.IsInt64() {
		return 0, errHorizonOverflow(q)
	}
	return rtime.Duration(q.Int64()), nil
}
