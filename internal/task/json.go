package task

import (
	"encoding/json"
	"fmt"
	"io"
)

// fileFormat is the on-disk JSON schema for task sets: a small wrapper
// so the format can be versioned.
type fileFormat struct {
	Version int     `json:"version"`
	Tasks   []*Task `json:"tasks"`
}

// currentVersion is the schema version written by WriteJSON.
const currentVersion = 1

// WriteJSON encodes the set to w as indented JSON.
func (s Set) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fileFormat{Version: currentVersion, Tasks: s})
}

// ReadJSON decodes a task set from r and validates it.
func ReadJSON(r io.Reader) (Set, error) {
	var f fileFormat
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("task: decoding set: %w", err)
	}
	if f.Version != currentVersion {
		return nil, fmt.Errorf("task: unsupported task-set version %d", f.Version)
	}
	s := Set(f.Tasks)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
