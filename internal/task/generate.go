package task

import (
	"fmt"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
)

// Figure3Params parameterizes the random task-set generator of the
// paper's simulation study (§6.2). The defaults reproduce the paper's
// configuration exactly.
type Figure3Params struct {
	N int // number of tasks (paper: 30)

	// Execution times: Ci,1 and Ci drawn uniformly from (0, ExecMax];
	// Ci,2 = Ci. Paper: 20 ms.
	ExecMax rtime.Duration

	// Periods/deadlines: Di = Ti drawn as uniform integer milliseconds
	// in [PeriodLoMS, PeriodHiMS]. Paper: 600..700 ms.
	PeriodLoMS, PeriodHiMS int64

	// Benefit points: Q probability levels 1/Q, 2/Q, …, 1.0 with
	// response times drawn increasing in [RespLo, RespHi).
	// Paper: Q = 10 (10 %, 20 %, …, 100 %), responses in [100, 200) ms.
	Q                int
	RespLo, RespHi   rtime.Duration
	LocalProbability float64 // Gi(0); the paper's local baseline success probability
}

// DefaultFigure3Params returns the paper's §6.2 configuration.
func DefaultFigure3Params() Figure3Params {
	return Figure3Params{
		N:          30,
		ExecMax:    rtime.FromMillis(20),
		PeriodLoMS: 600,
		PeriodHiMS: 700,
		Q:          10,
		RespLo:     rtime.FromMillis(100),
		RespHi:     rtime.FromMillis(200),
		// The paper treats local execution as producing the baseline
		// (non-high-performance) result: offloading success
		// probabilities start at 10 %, local contributes 0 toward the
		// "expected number of higher-performance tasks" objective.
		LocalProbability: 0,
	}
}

// GenerateFigure3 draws a random task set according to the paper's
// simulation setup. All draws come from rng, so a fixed seed
// reproduces the same set.
func GenerateFigure3(rng *stats.RNG, p Figure3Params) (Set, error) {
	if p.N <= 0 || p.Q <= 0 {
		return nil, fmt.Errorf("task: invalid Figure3 params N=%d Q=%d", p.N, p.Q)
	}
	if p.ExecMax <= 0 || p.RespLo <= 0 || p.RespHi <= p.RespLo {
		return nil, fmt.Errorf("task: invalid Figure3 ranges")
	}
	set := make(Set, 0, p.N)
	for i := 0; i < p.N; i++ {
		// "random values from 0 to 20ms": draw strictly positive
		// microsecond counts so WCETs are valid.
		c := rtime.Duration(rng.Int64N(int64(p.ExecMax))) + 1
		c1 := rtime.Duration(rng.Int64N(int64(p.ExecMax))) + 1
		period := rtime.FromMillis(rng.UniformInt(p.PeriodLoMS, p.PeriodHiMS))

		respUS := rng.SortedUniform(p.Q, float64(p.RespLo), float64(p.RespHi))
		levels := make([]Level, 0, p.Q)
		prev := rtime.Duration(0)
		for j := 0; j < p.Q; j++ {
			r := rtime.Duration(respUS[j])
			if r <= prev { // enforce strict increase after integer truncation
				r = prev + 1
			}
			prev = r
			levels = append(levels, Level{
				Response: r,
				Benefit:  float64(j+1) / float64(p.Q),
				Label:    fmt.Sprintf("p%d", (j+1)*100/p.Q),
			})
		}
		set = append(set, &Task{
			ID:           i,
			Name:         fmt.Sprintf("sim%02d", i),
			Period:       period,
			Deadline:     period,
			LocalWCET:    c,
			Setup:        c1,
			Compensation: c, // paper: Ci,2 = Ci
			LocalBenefit: p.LocalProbability,
			Levels:       levels,
		})
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("task: generated invalid Figure3 set: %w", err)
	}
	return set, nil
}

// RandomSetParams parameterizes the general-purpose random task-set
// generator used by the ablation experiments.
type RandomSetParams struct {
	N           int
	TotalUtil   float64 // Σ Ci/Ti target, split via UUniFast
	PeriodLoMS  int64
	PeriodHiMS  int64
	Q           int     // offloading levels per task (0 = local-only tasks)
	SetupFrac   float64 // Ci,1 = SetupFrac · Ci (clamped ≥ 1 µs)
	RespLoFrac  float64 // level responses span [RespLoFrac, RespHiFrac]·Di
	RespHiFrac  float64
	BenefitBase float64 // local benefit; level benefits grow from it
}

// DefaultRandomSetParams returns a moderate configuration: 12 tasks at
// 60 % local utilization with 5 offloading levels each.
func DefaultRandomSetParams() RandomSetParams {
	return RandomSetParams{
		N:           12,
		TotalUtil:   0.6,
		PeriodLoMS:  100,
		PeriodHiMS:  1000,
		Q:           5,
		SetupFrac:   0.2,
		RespLoFrac:  0.1,
		RespHiFrac:  0.5,
		BenefitBase: 1,
	}
}

// GenerateRandomSet draws a schedulable-by-construction random task
// set: local utilizations follow UUniFast over TotalUtil.
func GenerateRandomSet(rng *stats.RNG, p RandomSetParams) (Set, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("task: invalid RandomSet N=%d", p.N)
	}
	if p.TotalUtil <= 0 || p.TotalUtil > 1 {
		return nil, fmt.Errorf("task: total utilization %g out of (0,1]", p.TotalUtil)
	}
	if p.RespLoFrac <= 0 || p.RespHiFrac >= 1 || p.RespHiFrac <= p.RespLoFrac {
		return nil, fmt.Errorf("task: invalid response fraction range [%g,%g]", p.RespLoFrac, p.RespHiFrac)
	}
	utils := rng.UUniFast(p.N, p.TotalUtil)
	set := make(Set, 0, p.N)
	for i := 0; i < p.N; i++ {
		period := rtime.FromMillis(rng.UniformInt(p.PeriodLoMS, p.PeriodHiMS))
		c := rtime.Duration(utils[i] * float64(period))
		if c <= 0 {
			c = 1
		}
		c1 := rtime.Duration(p.SetupFrac * float64(c))
		if c1 <= 0 {
			c1 = 1
		}
		t := &Task{
			ID:           i,
			Name:         fmt.Sprintf("rnd%02d", i),
			Period:       period,
			Deadline:     period,
			LocalWCET:    c,
			Setup:        c1,
			Compensation: c,
			LocalBenefit: p.BenefitBase,
		}
		if p.Q > 0 {
			lo := p.RespLoFrac * float64(period)
			hi := p.RespHiFrac * float64(period)
			respUS := rng.SortedUniform(p.Q, lo, hi)
			prev := rtime.Duration(0)
			for j := 0; j < p.Q; j++ {
				r := rtime.Duration(respUS[j])
				if r <= prev {
					r = prev + 1
				}
				prev = r
				t.Levels = append(t.Levels, Level{
					Response: r,
					Benefit:  p.BenefitBase * (1 + float64(j+1)*rng.Uniform(0.2, 0.5)),
				})
			}
			// Level benefits must be non-decreasing; the random growth
			// factors above can produce a dip, so enforce monotonicity.
			for j := 1; j < len(t.Levels); j++ {
				if t.Levels[j].Benefit < t.Levels[j-1].Benefit {
					t.Levels[j].Benefit = t.Levels[j-1].Benefit
				}
			}
		}
		set = append(set, t)
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("task: generated invalid random set: %w", err)
	}
	return set, nil
}
