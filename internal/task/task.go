// Package task defines the sporadic real-time task model of the paper
// (§4): tasks with minimum inter-arrival times, relative deadlines,
// local WCETs, and — for offloadable tasks — per-level setup /
// compensation / post-processing WCETs and discrete offloading levels.
//
// A Task carries everything the Offloading Decision Manager needs to
// choose between executing locally and offloading with one of a fixed
// number of estimated response-time budgets. The benefit value of each
// choice lives here too (Level.Benefit and Task.LocalBenefit); the
// benefit package provides the machinery for constructing those values
// from measurements.
package task

import (
	"errors"
	"fmt"
	"math/big"

	"rtoffload/internal/rtime"
)

// Task is one sporadic real-time task τi.
//
// Timing parameters follow the paper's notation: Period is Ti, Deadline
// is Di (implicit-deadline tasks have Di = Ti; constrained-deadline
// tasks Di ≤ Ti), LocalWCET is Ci, Setup is Ci,1, Compensation is Ci,2
// and PostProcess is Ci,3 (with Ci,3 ≤ Ci,2). Levels lists the discrete
// offloading choices ri,2 < ri,3 < … of the benefit function; the
// implicit first choice ri,1 = 0 (pure local execution, benefit
// LocalBenefit) is always available.
type Task struct {
	ID   int    `json:"id"`
	Name string `json:"name,omitempty"`

	Period   rtime.Duration `json:"period"`
	Deadline rtime.Duration `json:"deadline"`

	LocalWCET    rtime.Duration `json:"localWCET"`
	Setup        rtime.Duration `json:"setup,omitempty"`
	Compensation rtime.Duration `json:"compensation,omitempty"`
	PostProcess  rtime.Duration `json:"postProcess,omitempty"`

	// LocalBenefit is Gi(0): the benefit obtained by executing locally
	// (or by the compensation path, which guarantees at least the local
	// baseline quality).
	LocalBenefit float64 `json:"localBenefit"`

	// Weight scales the task's benefit in the system objective
	// (the case study's importance values 1..4).
	Weight float64 `json:"weight,omitempty"`

	// ServerWCRT is an optional *pessimistic* upper bound on the
	// server's response time (the paper's §3 extension). When a
	// level's budget Ri is at least this bound, the result is
	// guaranteed to return in time, the compensation never runs, and
	// the analysis may budget the second phase with Ci,3 instead of
	// Ci,2. Zero means no bound is known (the default unreliable
	// case). Tasks using the bound must declare a positive
	// PostProcess WCET.
	ServerWCRT rtime.Duration `json:"serverWCRT,omitempty"`

	// Levels are the offloading choices, sorted by strictly increasing
	// Response. Empty for tasks that can only run locally.
	Levels []Level `json:"levels,omitempty"`
}

// Level is one discrete point of the benefit function: offloading with
// estimated worst-case response time Response yields Benefit. Setup,
// Compensation and PostProcess override the task-wide WCETs when
// non-zero (the paper's C^j_{i,1} / C^j_{i,2} extension, used by the
// case study where each level transmits a different image size).
type Level struct {
	Label        string         `json:"label,omitempty"`
	Response     rtime.Duration `json:"response"`
	Benefit      float64        `json:"benefit"`
	Setup        rtime.Duration `json:"setup,omitempty"`
	Compensation rtime.Duration `json:"compensation,omitempty"`
	PostProcess  rtime.Duration `json:"postProcess,omitempty"`

	// PayloadBytes is the request size shipped to the server for this
	// level; queueing server models use it for transfer delays.
	PayloadBytes int64 `json:"payloadBytes,omitempty"`

	// ServerID optionally routes this level to a named component when
	// the system has several unreliable servers (edge box, cloud GPU,
	// …). Empty selects the default server. Because each level carries
	// its own benefit point and probed budget, the Offloading Decision
	// Manager chooses between components exactly as it chooses between
	// image sizes — no new machinery.
	ServerID string `json:"serverID,omitempty"`
}

// SetupAt returns Ci,1 for level j (index into Levels), falling back
// to the task-wide Setup when the level does not override it.
func (t *Task) SetupAt(j int) rtime.Duration {
	if s := t.Levels[j].Setup; s > 0 {
		return s
	}
	return t.Setup
}

// CompensationAt returns Ci,2 for level j, falling back to the
// task-wide Compensation.
func (t *Task) CompensationAt(j int) rtime.Duration {
	if c := t.Levels[j].Compensation; c > 0 {
		return c
	}
	return t.Compensation
}

// PostProcessAt returns Ci,3 for level j, falling back to the
// task-wide PostProcess.
func (t *Task) PostProcessAt(j int) rtime.Duration {
	if p := t.Levels[j].PostProcess; p > 0 {
		return p
	}
	return t.PostProcess
}

// Utilization returns the exact local utilization Ci/Ti.
func (t *Task) Utilization() *big.Rat {
	return rtime.Ratio(t.LocalWCET, t.Period)
}

// Density returns the exact local density Ci/Di, the demand rate that
// matters for constrained-deadline tasks.
func (t *Task) Density() *big.Rat {
	return rtime.Ratio(t.LocalWCET, t.Deadline)
}

// GuaranteedAt reports whether level j's response budget is covered by
// a known pessimistic server bound (§3's extension): the result is
// then guaranteed to arrive within Ri and only post-processing runs in
// the second phase.
func (t *Task) GuaranteedAt(j int) bool {
	return t.ServerWCRT > 0 && t.Levels[j].Response >= t.ServerWCRT
}

// SecondPhaseAt returns the WCET the analysis must budget for the
// second sub-job at level j: Ci,3 when the level is guaranteed by the
// server bound, Ci,2 otherwise.
func (t *Task) SecondPhaseAt(j int) rtime.Duration {
	if t.GuaranteedAt(j) {
		return t.PostProcessAt(j)
	}
	return t.CompensationAt(j)
}

// OffloadWeight returns the exact schedulability weight of offloading
// at level j with response-time budget Levels[j].Response:
//
//	wi,j = (Ci,1 + Ci,2) / (Di − ri,j)
//
// per §5.2 of the paper — with Ci,3 in place of Ci,2 when the level is
// guaranteed by a pessimistic server bound (§3's extension). It
// returns an error when ri,j ≥ Di (no time would remain for the second
// phase) or when the involved WCETs are missing.
func (t *Task) OffloadWeight(j int) (*big.Rat, error) {
	if j < 0 || j >= len(t.Levels) {
		return nil, fmt.Errorf("task %d: level %d out of range", t.ID, j)
	}
	r := t.Levels[j].Response
	slack := t.Deadline - r
	if slack <= 0 {
		return nil, fmt.Errorf("task %d level %d: response budget %v ≥ deadline %v", t.ID, j, r, t.Deadline)
	}
	c1, c2 := t.SetupAt(j), t.SecondPhaseAt(j)
	if c1 <= 0 || c2 <= 0 {
		return nil, fmt.Errorf("task %d level %d: setup/second-phase WCET missing", t.ID, j)
	}
	return rtime.Ratio(c1+c2, slack), nil
}

// Offloadable reports whether the task has at least one offloading
// level.
func (t *Task) Offloadable() bool { return len(t.Levels) > 0 }

// EffectiveWeight returns Weight, defaulting to 1 when unset.
func (t *Task) EffectiveWeight() float64 {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// Validate checks the structural and timing invariants of the task
// model. It returns a descriptive error for the first violation found.
func (t *Task) Validate() error {
	switch {
	case t.Period <= 0:
		return fmt.Errorf("task %d: period %v must be positive", t.ID, t.Period)
	case t.Deadline <= 0:
		return fmt.Errorf("task %d: deadline %v must be positive", t.ID, t.Deadline)
	case t.Deadline > t.Period:
		return fmt.Errorf("task %d: deadline %v exceeds period %v (arbitrary deadlines unsupported)", t.ID, t.Deadline, t.Period)
	case t.LocalWCET <= 0:
		return fmt.Errorf("task %d: local WCET %v must be positive", t.ID, t.LocalWCET)
	case t.LocalWCET > t.Deadline:
		return fmt.Errorf("task %d: local WCET %v exceeds deadline %v", t.ID, t.LocalWCET, t.Deadline)
	}
	if t.Setup < 0 || t.Compensation < 0 || t.PostProcess < 0 {
		return fmt.Errorf("task %d: negative WCET", t.ID)
	}
	if t.ServerWCRT < 0 {
		return fmt.Errorf("task %d: negative server response bound", t.ID)
	}
	if t.ServerWCRT > 0 && len(t.Levels) > 0 {
		for j := range t.Levels {
			if t.GuaranteedAt(j) && t.PostProcessAt(j) <= 0 {
				return fmt.Errorf("task %d level %d: guaranteed levels need a positive post-processing WCET", t.ID, j)
			}
		}
	}
	for j, lv := range t.Levels {
		if lv.Response <= 0 {
			return fmt.Errorf("task %d level %d: response budget %v must be positive", t.ID, j, lv.Response)
		}
		if j > 0 && lv.Response <= t.Levels[j-1].Response {
			return fmt.Errorf("task %d level %d: response budgets must be strictly increasing (%v after %v)", t.ID, j, lv.Response, t.Levels[j-1].Response)
		}
		if lv.Benefit < t.LocalBenefit {
			return fmt.Errorf("task %d level %d: benefit %g below local benefit %g (Gi must be non-decreasing)", t.ID, j, lv.Benefit, t.LocalBenefit)
		}
		if j > 0 && lv.Benefit < t.Levels[j-1].Benefit {
			return fmt.Errorf("task %d level %d: benefit %g decreases from %g", t.ID, j, lv.Benefit, t.Levels[j-1].Benefit)
		}
		c1, c2, c3 := t.SetupAt(j), t.CompensationAt(j), t.PostProcessAt(j)
		if c1 <= 0 {
			return fmt.Errorf("task %d level %d: setup WCET must be positive for offloadable tasks", t.ID, j)
		}
		if c2 <= 0 {
			return fmt.Errorf("task %d level %d: compensation WCET must be positive for offloadable tasks", t.ID, j)
		}
		if c3 > c2 {
			return fmt.Errorf("task %d level %d: post-processing WCET %v exceeds compensation WCET %v (paper assumes Ci,3 ≤ Ci,2)", t.ID, j, c3, c2)
		}
		if lv.PayloadBytes < 0 {
			return fmt.Errorf("task %d level %d: negative payload", t.ID, j)
		}
	}
	return nil
}

// String returns a compact human-readable summary.
func (t *Task) String() string {
	name := t.Name
	if name == "" {
		name = fmt.Sprintf("τ%d", t.ID)
	}
	return fmt.Sprintf("%s(C=%v C1=%v C2=%v D=%v T=%v levels=%d)",
		name, t.LocalWCET, t.Setup, t.Compensation, t.Deadline, t.Period, len(t.Levels))
}

// Set is an ordered collection of tasks forming one system.
type Set []*Task

// ErrDuplicateID reports two tasks sharing an ID within a Set.
var ErrDuplicateID = errors.New("task: duplicate task ID in set")

// Validate checks every task and the cross-task invariants (unique
// IDs).
func (s Set) Validate() error {
	seen := make(map[int]bool, len(s))
	for _, t := range s {
		if t == nil {
			return errors.New("task: nil task in set")
		}
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("%w: %d", ErrDuplicateID, t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// TotalUtilization returns the exact Σ Ci/Ti of the pure-local system.
func (s Set) TotalUtilization() *big.Rat {
	u := new(big.Rat)
	for _, t := range s {
		u.Add(u, t.Utilization())
	}
	return u
}

// ByID returns the task with the given ID, or nil.
func (s Set) ByID(id int) *Task {
	for _, t := range s {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Clone deep-copies the set; the returned tasks share no memory with
// the originals.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for i, t := range s {
		c := *t
		c.Levels = append([]Level(nil), t.Levels...)
		out[i] = &c
	}
	return out
}
