package task

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
)

func TestGenerateFigure3Defaults(t *testing.T) {
	set, err := GenerateFigure3(stats.NewRNG(1), DefaultFigure3Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 30 {
		t.Fatalf("generated %d tasks, want 30", len(set))
	}
	for _, tk := range set {
		if tk.LocalWCET <= 0 || tk.LocalWCET > rtime.FromMillis(20) {
			t.Errorf("%s: Ci = %v out of (0, 20ms]", tk.Name, tk.LocalWCET)
		}
		if tk.Setup <= 0 || tk.Setup > rtime.FromMillis(20) {
			t.Errorf("%s: Ci,1 = %v out of (0, 20ms]", tk.Name, tk.Setup)
		}
		if tk.Compensation != tk.LocalWCET {
			t.Errorf("%s: Ci,2 = %v, want Ci = %v", tk.Name, tk.Compensation, tk.LocalWCET)
		}
		if tk.Period < rtime.FromMillis(600) || tk.Period > rtime.FromMillis(700) {
			t.Errorf("%s: period %v out of [600,700]ms", tk.Name, tk.Period)
		}
		if tk.Period%rtime.Millisecond != 0 {
			t.Errorf("%s: period %v not an integer millisecond", tk.Name, tk.Period)
		}
		if tk.Deadline != tk.Period {
			t.Errorf("%s: not implicit deadline", tk.Name)
		}
		if len(tk.Levels) != 10 {
			t.Fatalf("%s: %d levels, want 10", tk.Name, len(tk.Levels))
		}
		for j, lv := range tk.Levels {
			wantP := float64(j+1) / 10
			if lv.Benefit != wantP {
				t.Errorf("%s level %d: benefit %g, want %g", tk.Name, j, lv.Benefit, wantP)
			}
			if lv.Response < rtime.FromMillis(100) || lv.Response >= rtime.FromMillis(200)+10 {
				t.Errorf("%s level %d: response %v out of [100,200)ms", tk.Name, j, lv.Response)
			}
		}
	}
}

func TestGenerateFigure3Deterministic(t *testing.T) {
	a, _ := GenerateFigure3(stats.NewRNG(77), DefaultFigure3Params())
	b, _ := GenerateFigure3(stats.NewRNG(77), DefaultFigure3Params())
	for i := range a {
		if a[i].LocalWCET != b[i].LocalWCET || a[i].Period != b[i].Period ||
			a[i].Levels[3].Response != b[i].Levels[3].Response {
			t.Fatalf("same seed produced different sets at task %d", i)
		}
	}
}

func TestGenerateFigure3BadParams(t *testing.T) {
	bad := []Figure3Params{
		{},
		{N: 5, Q: 10, ExecMax: 0, RespLo: 1, RespHi: 2},
		{N: 5, Q: 10, ExecMax: 1, RespLo: 5, RespHi: 5},
	}
	for i, p := range bad {
		if _, err := GenerateFigure3(stats.NewRNG(1), p); err == nil {
			t.Errorf("case %d: bad params accepted", i)
		}
	}
}

func TestGenerateRandomSet(t *testing.T) {
	p := DefaultRandomSetParams()
	set, err := GenerateRandomSet(stats.NewRNG(3), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != p.N {
		t.Fatalf("got %d tasks", len(set))
	}
	// Utilization should approximate the UUniFast target. Integer
	// truncation of Ci only lowers it.
	u := set.TotalUtilization()
	uf, _ := u.Float64()
	if uf > p.TotalUtil+1e-9 || uf < p.TotalUtil-0.05 {
		t.Errorf("total utilization %g, want ≈%g", uf, p.TotalUtil)
	}
	if u.Cmp(big.NewRat(1, 1)) > 0 {
		t.Error("generated over-utilized set")
	}
}

func TestGenerateRandomSetBadParams(t *testing.T) {
	for i, mutate := range []func(*RandomSetParams){
		func(p *RandomSetParams) { p.N = 0 },
		func(p *RandomSetParams) { p.TotalUtil = 0 },
		func(p *RandomSetParams) { p.TotalUtil = 1.2 },
		func(p *RandomSetParams) { p.RespLoFrac, p.RespHiFrac = 0.5, 0.4 },
		func(p *RandomSetParams) { p.RespHiFrac = 1.2 },
	} {
		p := DefaultRandomSetParams()
		mutate(&p)
		if _, err := GenerateRandomSet(stats.NewRNG(1), p); err == nil {
			t.Errorf("case %d: bad params accepted", i)
		}
	}
}

// Property: every generated Figure-3 set validates and has strictly
// increasing, non-decreasing-benefit levels (Validate re-checks, so
// just run it across many seeds).
func TestGenerateFigure3Property(t *testing.T) {
	f := func(seed uint64) bool {
		set, err := GenerateFigure3(stats.NewRNG(seed), DefaultFigure3Params())
		return err == nil && set.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGenerateRandomSetProperty(t *testing.T) {
	f := func(seed uint64, n uint8, util uint8) bool {
		p := DefaultRandomSetParams()
		p.N = int(n%20) + 1
		p.TotalUtil = float64(util%90)/100 + 0.05
		set, err := GenerateRandomSet(stats.NewRNG(seed), p)
		if err != nil {
			return false
		}
		u, _ := set.TotalUtilization().Float64()
		return set.Validate() == nil && u <= p.TotalUtil+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	set, err := GenerateFigure3(stats.NewRNG(5), DefaultFigure3Params())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(set) {
		t.Fatalf("round trip lost tasks: %d vs %d", len(got), len(set))
	}
	for i := range set {
		a, b := set[i], got[i]
		if a.ID != b.ID || a.Period != b.Period || a.LocalWCET != b.LocalWCET ||
			a.Setup != b.Setup || len(a.Levels) != len(b.Levels) {
			t.Fatalf("task %d differs after round trip", i)
		}
		for j := range a.Levels {
			if a.Levels[j] != b.Levels[j] {
				t.Fatalf("task %d level %d differs", i, j)
			}
		}
	}
}

func TestReadJSONRejects(t *testing.T) {
	cases := []string{
		``,
		`{"version": 2, "tasks": []}`,
		`{"version": 1, "tasks": [{"id": 1, "period": 0, "deadline": 1, "localWCET": 1, "localBenefit": 0}]}`,
		`{"version": 1, "bogus": true, "tasks": []}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d: accepted %q", i, c)
		}
	}
}
