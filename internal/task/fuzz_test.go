package task

import (
	"bytes"
	"testing"

	"rtoffload/internal/stats"
)

// FuzzReadJSON feeds the task-set parser arbitrary bytes: it must
// never panic, and any set it accepts must validate and survive a
// write/read round trip.
func FuzzReadJSON(f *testing.F) {
	set, err := GenerateFigure3(stats.NewRNG(1), DefaultFigure3Params())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1,"tasks":[]}`))
	f.Add([]byte(`{"version":1,"tasks":[{"id":1,"period":1000,"deadline":1000,"localWCET":10,"localBenefit":0}]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted set fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := got.WriteJSON(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if _, err := ReadJSON(&out); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
	})
}
