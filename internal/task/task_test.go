package task

import (
	"math/big"
	"strings"
	"testing"

	"rtoffload/internal/rtime"
)

// validTask returns a correct offloadable task for mutation tests.
func validTask() *Task {
	return &Task{
		ID:           1,
		Name:         "vision",
		Period:       rtime.FromMillis(100),
		Deadline:     rtime.FromMillis(100),
		LocalWCET:    rtime.FromMillis(30),
		Setup:        rtime.FromMillis(5),
		Compensation: rtime.FromMillis(30),
		PostProcess:  rtime.FromMillis(2),
		LocalBenefit: 10,
		Levels: []Level{
			{Response: rtime.FromMillis(20), Benefit: 15},
			{Response: rtime.FromMillis(40), Benefit: 20},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validTask().Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Task)
		want   string
	}{
		{"zero period", func(x *Task) { x.Period = 0 }, "period"},
		{"zero deadline", func(x *Task) { x.Deadline = 0 }, "deadline"},
		{"deadline > period", func(x *Task) { x.Deadline = x.Period + 1 }, "exceeds period"},
		{"zero WCET", func(x *Task) { x.LocalWCET = 0 }, "local WCET"},
		{"WCET > deadline", func(x *Task) { x.LocalWCET = x.Deadline + 1 }, "exceeds deadline"},
		{"negative setup", func(x *Task) { x.Setup = -1 }, "negative WCET"},
		{"zero level response", func(x *Task) { x.Levels[0].Response = 0 }, "must be positive"},
		{"non-increasing responses", func(x *Task) { x.Levels[1].Response = x.Levels[0].Response }, "strictly increasing"},
		{"benefit below local", func(x *Task) { x.Levels[0].Benefit = 5 }, "below local benefit"},
		{"decreasing benefit", func(x *Task) { x.Levels[1].Benefit = 12 }, "decreases"},
		{"no setup for offloadable", func(x *Task) { x.Setup = 0 }, "setup WCET"},
		{"no compensation", func(x *Task) { x.Compensation = 0 }, "compensation WCET"},
		{"post > compensation", func(x *Task) { x.PostProcess = x.Compensation + 1 }, "post-processing"},
		{"negative payload", func(x *Task) { x.Levels[0].PayloadBytes = -1 }, "payload"},
	}
	for _, c := range cases {
		x := validTask()
		c.mutate(x)
		err := x.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestConstrainedDeadlineAllowed(t *testing.T) {
	x := validTask()
	x.Deadline = x.Period / 2
	x.LocalWCET = x.Deadline / 2
	if err := x.Validate(); err != nil {
		t.Fatalf("constrained-deadline task rejected: %v", err)
	}
}

func TestPerLevelOverrides(t *testing.T) {
	x := validTask()
	x.Levels[0].Setup = rtime.FromMillis(3)
	x.Levels[0].Compensation = rtime.FromMillis(25)
	x.Levels[0].PostProcess = rtime.FromMillis(1)
	if got := x.SetupAt(0); got != rtime.FromMillis(3) {
		t.Errorf("SetupAt(0) = %v", got)
	}
	if got := x.SetupAt(1); got != rtime.FromMillis(5) {
		t.Errorf("SetupAt(1) fallback = %v", got)
	}
	if got := x.CompensationAt(0); got != rtime.FromMillis(25) {
		t.Errorf("CompensationAt(0) = %v", got)
	}
	if got := x.PostProcessAt(0); got != rtime.FromMillis(1) {
		t.Errorf("PostProcessAt(0) = %v", got)
	}
	if got := x.PostProcessAt(1); got != rtime.FromMillis(2) {
		t.Errorf("PostProcessAt(1) fallback = %v", got)
	}
}

func TestUtilizationDensity(t *testing.T) {
	x := validTask()
	if u := x.Utilization(); u.Cmp(big.NewRat(3, 10)) != 0 {
		t.Errorf("utilization = %v, want 3/10", u)
	}
	x.Deadline = rtime.FromMillis(60)
	if d := x.Density(); d.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("density = %v, want 1/2", d)
	}
}

func TestOffloadWeight(t *testing.T) {
	x := validTask()
	// w = (5+30)ms / (100-20)ms = 35/80 = 7/16.
	w, err := x.OffloadWeight(0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cmp(big.NewRat(7, 16)) != 0 {
		t.Errorf("OffloadWeight(0) = %v, want 7/16", w)
	}
	// Per-level override changes the weight.
	x.Levels[1].Setup = rtime.FromMillis(10)
	w, err = x.OffloadWeight(1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cmp(big.NewRat(40, 60)) != 0 {
		t.Errorf("OffloadWeight(1) = %v, want 2/3", w)
	}
}

func TestOffloadWeightErrors(t *testing.T) {
	x := validTask()
	if _, err := x.OffloadWeight(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := x.OffloadWeight(5); err == nil {
		t.Error("out-of-range index accepted")
	}
	x.Levels[1].Response = x.Deadline
	if _, err := x.OffloadWeight(1); err == nil {
		t.Error("response == deadline accepted")
	}
}

func TestEffectiveWeight(t *testing.T) {
	x := validTask()
	if x.EffectiveWeight() != 1 {
		t.Errorf("default weight = %g", x.EffectiveWeight())
	}
	x.Weight = 3
	if x.EffectiveWeight() != 3 {
		t.Errorf("weight = %g", x.EffectiveWeight())
	}
}

func TestSetValidate(t *testing.T) {
	a, b := validTask(), validTask()
	b.ID = 2
	s := Set{a, b}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	b.ID = 1
	if err := s.Validate(); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if err := (Set{nil}).Validate(); err == nil {
		t.Error("nil task accepted")
	}
}

func TestSetHelpers(t *testing.T) {
	a, b := validTask(), validTask()
	b.ID = 2
	b.LocalWCET = rtime.FromMillis(10)
	s := Set{a, b}
	// 30/100 + 10/100 = 2/5.
	if u := s.TotalUtilization(); u.Cmp(big.NewRat(2, 5)) != 0 {
		t.Errorf("TotalUtilization = %v", u)
	}
	if s.ByID(2) != b {
		t.Error("ByID(2) wrong")
	}
	if s.ByID(99) != nil {
		t.Error("ByID(99) should be nil")
	}
}

func TestClone(t *testing.T) {
	s := Set{validTask()}
	c := s.Clone()
	c[0].Levels[0].Benefit = 999
	c[0].LocalWCET = 1
	if s[0].Levels[0].Benefit == 999 || s[0].LocalWCET == 1 {
		t.Fatal("Clone shares memory with original")
	}
}

func TestString(t *testing.T) {
	x := validTask()
	if got := x.String(); !strings.Contains(got, "vision") || !strings.Contains(got, "levels=2") {
		t.Errorf("String() = %q", got)
	}
	x.Name = ""
	if got := x.String(); !strings.Contains(got, "τ1") {
		t.Errorf("unnamed String() = %q", got)
	}
}
