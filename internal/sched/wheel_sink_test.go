package sched

// Engine-level coverage for the fleet-scale machinery: the time-wheel
// event queues must leave every observable output bit-identical, and
// the trace sink path must reproduce the in-memory recorder exactly
// while satisfying the streaming checkers live.

import (
	"errors"
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
	"rtoffload/internal/trace"
)

// fleetConfig draws an n-task system in the fleet-campaign shape:
// light per-task load, a mix of local and offloaded tasks against a
// deterministic server, short horizon relative to the period spread.
func fleetConfig(n int, seed uint64) Config {
	rng := stats.NewRNG(seed)
	shares := rng.UUniFast(n, 0.6)
	asgs := make([]Assignment, 0, n)
	for i := 0; i < n; i++ {
		period := rtime.FromMillis(rng.UniformInt(20, 400))
		c := rtime.Duration(shares[i] * float64(period))
		if c < 2 {
			c = 2
		}
		tk := &task.Task{ID: i, Period: period, Deadline: period, LocalWCET: c, LocalBenefit: 1}
		if i%3 == 0 {
			tk.Setup = c/4 + 1
			tk.Compensation = c
			tk.PostProcess = c / 6
			tk.Levels = []task.Level{{
				Response: rtime.Duration(float64(period) * 0.4),
				Benefit:  2,
			}}
			asgs = append(asgs, Assignment{Task: tk, Offload: true})
		} else {
			asgs = append(asgs, Assignment{Task: tk})
		}
	}
	return Config{
		Assignments: asgs,
		Horizon:     rtime.FromMillis(2000),
		Policy:      SplitEDF,
		Server:      server.Fixed{Latency: rtime.FromMillis(8)},
	}
}

// TestWheelMatchesHeap runs the engine twice on identically-seeded
// systems — time queues as heaps vs as time wheels — across every
// policy combination and asserts bit-identical results, traces
// included. With TestEngineMatchesReference this transitively pins the
// wheel to the reference dispatcher.
func TestWheelMatchesHeap(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		for _, p := range diffPolicies {
			for _, m := range diffMisses {
				heapCfg := genDiffConfig(seed, p, m)
				heapCfg.EventQueue = ForceHeap
				wheelCfg := genDiffConfig(seed, p, m)
				wheelCfg.EventQueue = ForceWheel
				got, errG := Run(wheelCfg)
				want, errW := Run(heapCfg)
				if errG != nil || errW != nil {
					t.Fatalf("seed %d, %v/%v: wheel err %v, heap err %v", seed, p, m, errG, errW)
				}
				if d := describeDiff(got, want); d != "" {
					t.Fatalf("seed %d, %v/%v: wheel diverges from heap: %s", seed, p, m, d)
				}
			}
		}
	}
}

// TestTraceSinkMatchesRecordTrace streams the trace into an external
// *trace.Trace sink and asserts it is bit-identical to the in-memory
// RecordTrace recorder.
func TestTraceSinkMatchesRecordTrace(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		for _, m := range diffMisses {
			recCfg := genDiffConfig(seed, SplitEDF, m)
			want, err := Run(recCfg)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			var streamed trace.Trace
			sinkCfg := genDiffConfig(seed, SplitEDF, m)
			sinkCfg.RecordTrace = false
			sinkCfg.TraceSink = &streamed
			got, err := Run(sinkCfg)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if got.Trace != nil {
				t.Fatal("TraceSink run materialized a Result.Trace")
			}
			if d := describeTraceDiff(&streamed, want.Trace); d != "" {
				t.Fatalf("seed %d, %v: sink trace diverges: %s", seed, m, d)
			}
		}
	}
}

// TestEngineStreamSatisfiesChecker runs the engine with a live
// StreamChecker sink: the engine's event emission order must satisfy
// the Sink contract the one-pass checkers rely on, across policies,
// miss policies, and both queue modes.
func TestEngineStreamSatisfiesChecker(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		for _, m := range diffMisses {
			for _, q := range []QueueMode{ForceHeap, ForceWheel} {
				cfg := genDiffConfig(seed, SplitEDF, m)
				cfg.RecordTrace = false
				cfg.EventQueue = q
				cfg.TraceSink = trace.NewStreamChecker()
				if _, err := Run(cfg); err != nil {
					t.Fatalf("seed %d, %v, queue %d: live stream rejected: %v", seed, m, int(q), err)
				}
			}
		}
	}
}

// TestDiscardJobResults checks the campaign-mode toggle: aggregates
// stay identical, only the per-job log disappears.
func TestDiscardJobResults(t *testing.T) {
	full, err := Run(genDiffConfig(3, SplitEDF, ContinueLate))
	if err != nil {
		t.Fatal(err)
	}
	cfg := genDiffConfig(3, SplitEDF, ContinueLate)
	cfg.DiscardJobResults = true
	lean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lean.Jobs) != 0 {
		t.Fatalf("DiscardJobResults kept %d job records", len(lean.Jobs))
	}
	if lean.Misses != full.Misses || lean.TotalBenefit != full.TotalBenefit ||
		lean.CPUBusy != full.CPUBusy || lean.Makespan != full.Makespan {
		t.Fatalf("aggregates diverge: %+v vs %+v", lean, full)
	}
	for id, w := range full.PerTask {
		g := lean.PerTask[id]
		if g == nil || g.Misses != w.Misses || g.Finished != w.Finished || g.BenefitSum != w.BenefitSum {
			t.Fatalf("task %d stats diverge: %+v vs %+v", id, g, w)
		}
	}
}

// failSink reports a deferred error from Finish, as an on-disk sink
// does when the underlying writer failed mid-run.
type failSink struct{ err error }

func (f *failSink) OpenSub(trace.SubID, rtime.Instant, rtime.Instant, rtime.Duration) {}
func (f *failSink) AppendSegment(trace.Segment)                                       {}
func (f *failSink) CloseSub(trace.SubRecord)                                          {}
func (f *failSink) Finish() error                                                     { return f.err }

// TestSinkFinishErrorSurfaces proves a sink's deferred failure aborts
// Run instead of vanishing.
func TestSinkFinishErrorSurfaces(t *testing.T) {
	sinkErr := errors.New("disk full")
	cfg := genDiffConfig(1, SplitEDF, ContinueLate)
	cfg.RecordTrace = false
	cfg.TraceSink = &failSink{err: sinkErr}
	if _, err := Run(cfg); !errors.Is(err, sinkErr) {
		t.Fatalf("Run error = %v, want the sink's %v", err, sinkErr)
	}
}

// TestRecordTraceWithSinkRejected pins the config validation.
func TestRecordTraceWithSinkRejected(t *testing.T) {
	cfg := genDiffConfig(1, SplitEDF, ContinueLate)
	cfg.TraceSink = &trace.Trace{}
	if _, err := Run(cfg); err == nil {
		t.Fatal("RecordTrace + TraceSink accepted")
	}
}

// TestAutoQueueSwitchesAtThreshold exercises the AutoQueue heuristic
// end to end on a synthetic fleet just past the threshold, checking
// the wheel-backed run against a forced-heap run.
func TestAutoQueueSwitchesAtThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-sized differential")
	}
	auto := fleetConfig(wheelThreshold+8, 42)
	auto.EventQueue = AutoQueue
	heap := fleetConfig(wheelThreshold+8, 42)
	heap.EventQueue = ForceHeap
	got, err := Run(auto)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(heap)
	if err != nil {
		t.Fatal(err)
	}
	if d := describeDiff(got, want); d != "" {
		t.Fatalf("auto (wheel) diverges from heap at fleet size: %s", d)
	}
}
