package sched

// Differential testing: the event-calendar engine must be
// bit-identical to the retained reference dispatcher
// (reference_test.go) — same Result scalars, same job stream, same
// per-task statistics, same trace — on randomly generated systems
// across every policy × miss-policy combination. Floating-point sums
// compare with == on purpose: both dispatchers must perform the same
// accumulations in the same order.

import (
	"fmt"
	"reflect"
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
	"rtoffload/internal/trace"
)

// genDiffConfig draws a random system in the shape the experiment
// generators use (internal/exp): a handful of sporadic tasks at a
// total load spanning under- and overload, a random subset offloaded
// with one response level each. Both engines get their own Config —
// servers and RNGs carry state, so each run needs fresh instances
// seeded identically.
func genDiffConfig(seed uint64, policy Policy, miss MissPolicy) Config {
	rng := stats.NewRNG(seed)
	n := 2 + rng.IntN(6)
	shares := rng.UUniFast(n, rng.Uniform(0.4, 1.4))
	asgs := make([]Assignment, 0, n)
	maxT := rtime.Duration(0)
	for i := 0; i < n; i++ {
		period := rtime.FromMillis(rng.UniformInt(10, 200))
		deadline := period
		if rng.Bool(0.3) { // constrained deadline
			deadline = rtime.Duration(rng.Uniform(0.6, 1.0) * float64(period))
		}
		c := rtime.Duration(shares[i] * float64(period))
		if c < 4 {
			c = 4
		}
		if c > deadline {
			c = deadline
		}
		if period > maxT {
			maxT = period
		}
		tk := &task.Task{ID: i, Period: period, Deadline: deadline, LocalWCET: c, LocalBenefit: 1}
		if rng.Bool(0.6) {
			r := rtime.Duration(rng.Uniform(0.2, 0.7) * float64(deadline))
			if r < 1 {
				r = 1
			}
			tk.Setup = c/4 + 1
			tk.Compensation = c
			tk.PostProcess = c / 8 // 0 for small c: exercises the zero-WCET resume path
			tk.Levels = []task.Level{{
				Response:     r,
				Benefit:      1 + rng.Float64(),
				PayloadBytes: rng.UniformInt(1<<10, 1<<20),
			}}
			asgs = append(asgs, Assignment{Task: tk, Offload: true})
		} else {
			asgs = append(asgs, Assignment{Task: tk})
		}
	}

	cfg := Config{
		Assignments:      asgs,
		Horizon:          8 * maxT,
		Policy:           policy,
		OnMiss:           miss,
		RecordTrace:      true,
		CollectLatencies: true,
	}
	if rng.Bool(0.5) {
		cfg.ReleaseJitter = rtime.FromMillis(rng.UniformInt(1, 20))
		cfg.RNG = stats.NewRNG(seed ^ 0xA5A5A5A5)
	}
	switch rng.IntN(4) {
	case 0:
		cfg.Server = server.Fixed{Latency: rtime.FromMillis(rng.UniformInt(1, 100))}
	case 1:
		cfg.Server = server.Fixed{Lost: true} // every offload through compensation
	case 2:
		cfg.Server = server.Bounded{
			Inner: server.Fixed{Lost: true},
			Bound: rtime.FromMillis(rng.UniformInt(5, 150)),
		}
	default:
		q, err := server.NewQueue(stats.NewRNG(seed^0x5EED), server.QueueConfig{
			Workers:               1 + rng.IntN(2),
			BandwidthBytesPerSec:  10 << 20,
			NetLatencyMean:        rtime.FromMillis(2),
			NetLatencySigma:       0.5,
			ServiceMean:           rtime.FromMillis(5),
			ServiceRefBytes:       1 << 16,
			ServiceJitter:         0.3,
			BackgroundRatePerSec:  20,
			BackgroundServiceMean: rtime.FromMillis(3),
			LossProbability:       0.05,
		})
		if err != nil {
			panic(err) // static config; cannot fail
		}
		cfg.Server = q
	}
	return cfg
}

// diffOnce runs both dispatchers on identically-seeded configurations
// and returns a description of the first divergence, or "" if the
// results are bit-identical.
func diffOnce(seed uint64, policy Policy, miss MissPolicy) string {
	got, errG := Run(genDiffConfig(seed, policy, miss))
	want, errW := runReference(genDiffConfig(seed, policy, miss))
	if (errG != nil) != (errW != nil) {
		return fmt.Sprintf("error mismatch: engine %v, reference %v", errG, errW)
	}
	if errG != nil {
		return ""
	}
	return describeDiff(got, want)
}

// describeDiff pinpoints the first field where two results diverge.
func describeDiff(got, want *Result) string {
	if got.Misses != want.Misses {
		return fmt.Sprintf("Misses: %d != %d", got.Misses, want.Misses)
	}
	if got.TotalBenefit != want.TotalBenefit || got.TotalBaseline != want.TotalBaseline {
		return fmt.Sprintf("benefit: (%v, %v) != (%v, %v)",
			got.TotalBenefit, got.TotalBaseline, want.TotalBenefit, want.TotalBaseline)
	}
	if got.CPUBusy != want.CPUBusy || got.RadioBusy != want.RadioBusy || got.Makespan != want.Makespan {
		return fmt.Sprintf("busy/makespan: (%v, %v, %v) != (%v, %v, %v)",
			got.CPUBusy, got.RadioBusy, got.Makespan, want.CPUBusy, want.RadioBusy, want.Makespan)
	}
	if len(got.Jobs) != len(want.Jobs) {
		return fmt.Sprintf("job count: %d != %d", len(got.Jobs), len(want.Jobs))
	}
	for i := range got.Jobs {
		if got.Jobs[i] != want.Jobs[i] {
			return fmt.Sprintf("job %d: %+v != %+v", i, got.Jobs[i], want.Jobs[i])
		}
	}
	if len(got.PerTask) != len(want.PerTask) {
		return fmt.Sprintf("per-task count: %d != %d", len(got.PerTask), len(want.PerTask))
	}
	for id, w := range want.PerTask {
		g := got.PerTask[id]
		if g == nil {
			return fmt.Sprintf("task %d missing from engine result", id)
		}
		if !reflect.DeepEqual(*g, *w) {
			return fmt.Sprintf("task %d stats: %+v != %+v", id, *g, *w)
		}
	}
	if (got.Trace == nil) != (want.Trace == nil) {
		return "trace presence mismatch"
	}
	if got.Trace != nil {
		if d := describeTraceDiff(got.Trace, want.Trace); d != "" {
			return d
		}
	}
	if !reflect.DeepEqual(got, want) {
		return "results differ (unattributed field)"
	}
	return ""
}

func describeTraceDiff(got, want *trace.Trace) string {
	if len(got.Segments) != len(want.Segments) {
		return fmt.Sprintf("segment count: %d != %d", len(got.Segments), len(want.Segments))
	}
	for i := range got.Segments {
		if got.Segments[i] != want.Segments[i] {
			return fmt.Sprintf("segment %d: %+v != %+v", i, got.Segments[i], want.Segments[i])
		}
	}
	if len(got.Subs) != len(want.Subs) {
		return fmt.Sprintf("sub-record count: %d != %d", len(got.Subs), len(want.Subs))
	}
	for i := range got.Subs {
		if got.Subs[i] != want.Subs[i] {
			return fmt.Sprintf("sub-record %d: %+v != %+v", i, got.Subs[i], want.Subs[i])
		}
	}
	return ""
}

var diffPolicies = []Policy{SplitEDF, NaiveEDF, FixedPriority}
var diffMisses = []MissPolicy{ContinueLate, AbortAtDeadline}

func TestEngineMatchesReference(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 10
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		for _, p := range diffPolicies {
			for _, m := range diffMisses {
				if d := diffOnce(seed, p, m); d != "" {
					t.Fatalf("seed %d, %v/%v: %s", seed, p, m, d)
				}
			}
		}
	}
}

// TestEngineTraceValid replays a few engine traces through the
// independent invariant checkers, so the differential test cannot be
// satisfied by two dispatchers sharing the same bug class.
func TestEngineTraceValid(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		res, err := Run(genDiffConfig(seed, SplitEDF, ContinueLate))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Trace.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func FuzzEngineMatchesReference(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0))
	f.Add(uint64(7), uint8(1), uint8(1))
	f.Add(uint64(42), uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, p, m uint8) {
		policy := diffPolicies[int(p)%len(diffPolicies)]
		miss := diffMisses[int(m)%len(diffMisses)]
		if d := diffOnce(seed, policy, miss); d != "" {
			t.Fatalf("seed %d, %v/%v: %s", seed, policy, miss, d)
		}
	})
}
