package sched

import (
	"fmt"

	"rtoffload/internal/rtime"
)

// PowerModel converts a simulated schedule into client-side energy —
// the second motivation the paper gives for offloading (saving energy
// on the embedded system, after Li et al., CASES 2001). Offloading
// trades CPU-active time for radio-active time: a hit replaces the
// whole local computation with a setup plus an idle wait with the
// radio listening, while a compensation pays the radio *and* the local
// computation.
type PowerModel struct {
	// CPUActiveWatts is drawn while the processor executes any
	// sub-job; CPUIdleWatts while it idles or waits.
	CPUActiveWatts float64
	CPUIdleWatts   float64
	// RadioWatts is drawn during offload suspensions (transmit +
	// listen window from request to result/timer).
	RadioWatts float64
}

// Validate checks the model.
func (p PowerModel) Validate() error {
	if p.CPUActiveWatts < 0 || p.CPUIdleWatts < 0 || p.RadioWatts < 0 {
		return fmt.Errorf("sched: negative power")
	}
	if p.CPUActiveWatts < p.CPUIdleWatts {
		return fmt.Errorf("sched: active power below idle power")
	}
	return nil
}

// EnergyBreakdown is the per-run energy account.
type EnergyBreakdown struct {
	CPUActive rtime.Duration // processor busy on sub-jobs
	CPUIdle   rtime.Duration // remainder of the makespan
	Radio     rtime.Duration // accumulated suspension windows
	Joules    float64
}

// Energy computes the client's energy over the simulated schedule.
// The idle term covers the span from time 0 to the last completion.
func (r *Result) Energy(p PowerModel) (EnergyBreakdown, error) {
	if err := p.Validate(); err != nil {
		return EnergyBreakdown{}, err
	}
	eb := EnergyBreakdown{CPUActive: r.CPUBusy, Radio: r.RadioBusy}
	if span := r.Makespan; span > eb.CPUActive {
		eb.CPUIdle = span - eb.CPUActive
	}
	eb.Joules = p.CPUActiveWatts*eb.CPUActive.Seconds() +
		p.CPUIdleWatts*eb.CPUIdle.Seconds() +
		p.RadioWatts*eb.Radio.Seconds()
	return eb, nil
}
