package sched

import (
	"testing"

	"rtoffload/internal/benefit"
	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// Soak: a 30-task mixed system over a 30-minute horizon (~150k jobs)
// with stochastic responses and sporadic jitter. Guards against slow
// leaks, heap corruption, overflow at large instants, and counter
// drift that short tests cannot see.
func TestSoakLongHorizon(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := stats.NewRNG(4242)
	set, err := task.GenerateFigure3(rng.Fork(), task.DefaultFigure3Params())
	if err != nil {
		t.Fatal(err)
	}
	samplers := map[int]server.ResponseSampler{}
	asgs := make([]Assignment, 0, len(set))
	for i, tk := range set {
		if i%3 == 0 {
			asgs = append(asgs, Assignment{Task: tk})
			continue
		}
		asgs = append(asgs, Assignment{Task: tk, Offload: true, Level: 7})
		samplers[tk.ID] = benefit.FromTask(tk)
	}
	res, err := Run(Config{
		Assignments:   asgs,
		Server:        server.NewCDF(rng.Fork(), samplers),
		Horizon:       30 * rtime.Minute,
		ReleaseJitter: rtime.FromMillis(20),
		RNG:           rng.Fork(),
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, st := range res.PerTask {
		if st.Finished != st.Released {
			t.Fatalf("task %d: %d released, %d finished", st.TaskID, st.Released, st.Finished)
		}
		if st.Hits+st.Compensations+st.LocalRuns != st.Finished {
			t.Fatalf("task %d: outcome counters drifted", st.TaskID)
		}
		total += st.Finished
	}
	if total < 70_000 {
		t.Fatalf("only %d jobs over 30 minutes", total)
	}
	if res.Misses != 0 {
		t.Fatalf("%d misses in a feasible system", res.Misses)
	}
	if res.Makespan <= 0 || res.CPUBusy <= 0 {
		t.Fatal("accounting fields empty")
	}
	if len(res.Jobs) != total {
		t.Fatalf("job records %d vs counters %d", len(res.Jobs), total)
	}
}
