package sched

import (
	"math"
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
)

func TestPowerModelValidate(t *testing.T) {
	good := PowerModel{CPUActiveWatts: 2, CPUIdleWatts: 0.3, RadioWatts: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, m := range []PowerModel{
		{CPUActiveWatts: -1},
		{CPUActiveWatts: 1, CPUIdleWatts: -1},
		{CPUActiveWatts: 1, CPUIdleWatts: 0, RadioWatts: -1},
		{CPUActiveWatts: 0.1, CPUIdleWatts: 0.5},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d accepted", i)
		}
	}
}

func TestEnergyAccounting(t *testing.T) {
	// One offloaded task: setup 2ms, wait 8ms (lost → timer), comp 6ms.
	// One job within a 30ms horizon: CPU busy 8ms, radio 8ms.
	tk := offloadTask(1, ms(2), ms(6), ms(1), ms(30), ms(30), ms(8), 5)
	res, err := Run(Config{
		Assignments: []Assignment{{Task: tk, Offload: true}},
		Server:      server.Fixed{Lost: true},
		Horizon:     ms(30),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUBusy != ms(8) {
		t.Fatalf("CPUBusy = %v, want 8ms", res.CPUBusy)
	}
	if res.RadioBusy != ms(8) {
		t.Fatalf("RadioBusy = %v, want 8ms", res.RadioBusy)
	}
	// Job finishes at 2+8+6 = 16ms.
	if res.Makespan != ms(16) {
		t.Fatalf("Makespan = %v, want 16ms", res.Makespan)
	}
	p := PowerModel{CPUActiveWatts: 2, CPUIdleWatts: 0.5, RadioWatts: 1}
	eb, err := res.Energy(p)
	if err != nil {
		t.Fatal(err)
	}
	// 2 W × 8ms + 0.5 W × 8ms + 1 W × 8ms = 16 + 4 + 8 = 28 mJ.
	if math.Abs(eb.Joules-0.028) > 1e-9 {
		t.Fatalf("energy = %g J, want 0.028", eb.Joules)
	}
	if eb.CPUIdle != ms(8) {
		t.Fatalf("idle = %v", eb.CPUIdle)
	}
	if _, err := res.Energy(PowerModel{CPUActiveWatts: -1}); err == nil {
		t.Error("invalid model accepted")
	}
}

// The energy story of offloading: with a responsive server the client
// CPU does far less work than running locally, at the price of radio
// time; with a dead server compensation pays both.
func TestEnergyOffloadingSavesCPU(t *testing.T) {
	run := func(offload bool, srv server.Server) EnergyBreakdown {
		tk := offloadTask(1, ms(2), ms(40), ms(1), ms(100), ms(100), ms(10), 5)
		res, err := Run(Config{
			Assignments: []Assignment{{Task: tk, Offload: offload}},
			Server:      srv,
			Horizon:     rtime.FromSeconds(2),
		})
		if err != nil {
			t.Fatal(err)
		}
		eb, err := res.Energy(PowerModel{CPUActiveWatts: 2, CPUIdleWatts: 0.1, RadioWatts: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		return eb
	}
	local := run(false, nil)
	hit := run(true, server.Fixed{Latency: ms(5)})
	dead := run(true, server.Fixed{Lost: true})
	if hit.CPUActive >= local.CPUActive/4 {
		t.Fatalf("offload hits did not cut CPU time: %v vs %v", hit.CPUActive, local.CPUActive)
	}
	if hit.Radio == 0 || local.Radio != 0 {
		t.Fatalf("radio accounting wrong: hit=%v local=%v", hit.Radio, local.Radio)
	}
	if dead.CPUActive <= local.CPUActive {
		t.Fatalf("dead-server compensation should cost at least local CPU: %v vs %v", dead.CPUActive, local.CPUActive)
	}
	if hit.Joules >= local.Joules {
		t.Fatalf("offloading saved no energy: %g vs %g J", hit.Joules, local.Joules)
	}
	if dead.Joules <= local.Joules {
		t.Fatalf("dead server should cost more than local: %g vs %g J", dead.Joules, local.Joules)
	}
}
