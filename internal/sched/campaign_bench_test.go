package sched

// Campaign-cell benchmarks (BENCH_9): one cell = simulate a fleet and
// verify its schedule. The pre-PR path materialized the trace and ran
// the O(segments × subs) Validate; the campaign path streams the trace
// through the one-pass checker with the per-job log discarded and the
// time-wheel queues on. Test100kUnderMemoryCeiling is the fixed-memory
// claim: a 100k-task simulation streaming to the on-disk binary sink
// must not grow the heap by anything O(horizon).

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/trace"
)

// benchCellHorizon keeps the baseline's quadratic Validate benchable
// at 10k tasks; both paths use it so the comparison stays apples to
// apples.
const benchCellHorizon = 200 // ms

// benchBaselineCell is the naive pre-PR campaign cell: heap queues,
// in-memory trace, materialized whole-trace validation.
func benchBaselineCell(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := fleetConfig(n, 42)
		cfg.Horizon = rtime.FromMillis(benchCellHorizon)
		cfg.EventQueue = ForceHeap
		cfg.RecordTrace = true
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Trace.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStreamingCell is the campaign cell after this change: queue
// mode chosen by AutoQueue (the wheel at these sizes), job log
// discarded, trace verified one-pass as it streams.
func benchStreamingCell(b *testing.B, n int, q QueueMode) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := fleetConfig(n, 42)
		cfg.Horizon = rtime.FromMillis(benchCellHorizon)
		cfg.EventQueue = q
		cfg.DiscardJobResults = true
		cfg.TraceSink = trace.NewStreamChecker()
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignCellBaseline1k(b *testing.B)  { benchBaselineCell(b, 1_000) }
func BenchmarkCampaignCellBaseline10k(b *testing.B) { benchBaselineCell(b, 10_000) }

func BenchmarkCampaignCellStreaming1k(b *testing.B) {
	benchStreamingCell(b, 1_000, AutoQueue)
}
func BenchmarkCampaignCellStreaming10k(b *testing.B) {
	benchStreamingCell(b, 10_000, AutoQueue)
}

// BenchmarkCampaignCellDisk100k is the fleet endpoint: at 100k tasks
// the trace streams to the on-disk binary sink (the one-pass checker's
// live-set scan is meant for cell-sized systems; a synchronous 100k
// release keeps ~n subs live, see DESIGN.md §5.8), and verification
// happens on replay of the recorded file.
func BenchmarkCampaignCellDisk100k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := fleetConfig(100_000, 42)
		cfg.Horizon = rtime.FromMillis(benchCellHorizon)
		cfg.EventQueue = AutoQueue
		cfg.DiscardJobResults = true
		cfg.TraceSink = trace.NewBinarySink(io.Discard)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignCellStreamingHeap10k isolates the wheel's share of
// the win: same streaming cell, heap queues forced.
func BenchmarkCampaignCellStreamingHeap10k(b *testing.B) {
	benchStreamingCell(b, 10_000, ForceHeap)
}

// Test100kUnderMemoryCeiling runs a 100k-task SplitEDF simulation with
// the trace streaming to an on-disk binary sink and asserts the heap
// grew by less than a fixed ceiling — the segment stream lives on
// disk, so memory stays proportional to the task count, not to
// horizon × rate. The pre-PR in-memory recorder allocates the full
// segment/sub log (~56 B a segment before growth slack), which at this
// scale dwarfs the ceiling.
func Test100kUnderMemoryCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-sized simulation")
	}
	cfg := fleetConfig(100_000, 42)
	cfg.EventQueue = AutoQueue
	cfg.DiscardJobResults = true

	f, err := os.Create(filepath.Join(t.TempDir(), "trace.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	sink := trace.NewBinarySink(w)
	cfg.TraceSink = sink

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Measure the heap *retained* with the result still live: a
	// materialized trace would keep its full segment/sub log reachable
	// here (~1.6M segments, >100 MiB), while the streaming run retains
	// only the task set and per-task aggregates. Collecting first
	// keeps the number deterministic — un-collected transient garbage
	// varies run to run.
	runtime.GC()
	runtime.ReadMemStats(&after)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	const ceiling = 128 << 20
	if growth > ceiling {
		t.Fatalf("100k-task run retains %d MiB of heap (ceiling %d MiB)",
			growth>>20, int64(ceiling)>>20)
	}
	opens, segs, closes := sink.Counts()
	if segs == 0 || opens == 0 || closes != opens {
		t.Fatalf("sink saw opens=%d segs=%d closes=%d", opens, segs, closes)
	}
	t.Logf("retained heap %d MiB for %d segments on disk (%d MiB ceiling)",
		growth>>20, segs, int64(ceiling)>>20)
	runtime.KeepAlive(res)
}
