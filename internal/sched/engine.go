package sched

// This file is the event-calendar simulation engine behind Run. The
// retained reference dispatcher in reference_test.go implements the
// same semantics with linear scans and lazy deletion; the differential
// tests pin the two to bit-identical results.
//
// Determinism contract: every queue orders its entries by a total
// (key, task ID, job seq) triple, so the schedule is a pure function
// of the configuration — never of heap layout or map iteration order.
//
// Event accounting: the engine removes aborted suspended jobs from the
// wake queue eagerly, but the reference semantics still count their
// pending wake timers as events (the processor stays "on" until the
// last timer fires). phantomEnd carries the latest such timer so the
// reported Makespan is identical.

import (
	"fmt"
	"sort"

	"rtoffload/internal/dbf"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched/eventq"
	"rtoffload/internal/server"
	"rtoffload/internal/task"
	"rtoffload/internal/trace"
)

// jobPhase is the execution state of a job.
type jobPhase int

const (
	phaseFirst     jobPhase = iota // Local or Setup sub-job on the CPU
	phaseSuspended                 // waiting for server result / timer
	phaseSecond                    // Post or Comp sub-job on the CPU
	phaseDone
)

// jobState is one live job in the arena. States are recycled through
// sim.free once the job finishes or is aborted, so steady-state
// dispatch allocates nothing.
type jobState struct {
	ai       int32 // assignment index into sim.info
	seq      int64
	release  rtime.Instant
	deadline rtime.Instant // release + D

	phase       jobPhase
	kind        trace.Kind    // current sub-job kind
	subDeadline rtime.Instant // current sub-job EDF deadline
	subRelease  rtime.Instant
	wcet        rtime.Duration
	remaining   rtime.Duration

	// prio is the dispatch key: the sub-job's absolute deadline under
	// the EDF policies, the task's fixed rank under FixedPriority.
	prio int64

	wake rtime.Instant // for phaseSuspended
	hit  bool          // result arrived within budget
}

// asgInfo caches everything the dispatch loop needs about one
// assignment, resolved once up front: split deadlines, server routing,
// WCETs, weights. Indexing by assignment slot replaces the per-event
// map lookups of the reference dispatcher.
type asgInfo struct {
	task    *task.Task
	taskID  int   // Task.ID
	tie     int64 // Task.ID as a heap tie-break key
	offload bool

	srv     server.Server // resolved offload target (nil when local)
	payload int64
	budget  rtime.Duration
	d1      rtime.Duration // SplitDeadline Di,1 (offload only)

	setup     rtime.Duration
	post      rtime.Duration
	comp      rtime.Duration
	localWCET rtime.Duration

	period   rtime.Duration
	deadline rtime.Duration

	weight       float64
	localBenefit float64
	levelBenefit float64
	guaranteed   bool

	// rank is the deadline-monotonic priority under FixedPriority
	// (lower = more urgent).
	rank int64
}

type sim struct {
	cfg *Config
	res *Result

	now     rtime.Instant
	horizon rtime.Instant

	info  []asgInfo
	stats []TaskStats // backing store for res.PerTask, by assignment index

	// nextRelease[i] is the next release instant for assignment i;
	// seq[i] the next job sequence number.
	nextRelease []rtime.Instant
	seq         []int64

	// jobs is the job arena; free holds recycled slots. Heap handles
	// are arena indices (releases uses assignment indices instead).
	//
	//rtlint:arena
	jobs []jobState
	//rtlint:arena
	free []int32

	// The event calendar. ready is keyed by (prio, task, seq) — under
	// FixedPriority the key is a rank, not an instant, so it stays a
	// heap. The three *time* queues are Calendars: zero-valued they are
	// plain heaps; init switches them to time wheels at fleet scale
	// (Config.EventQueue), with bit-identical pop order either way.
	ready     eventq.Heap
	waking    eventq.Calendar
	deadlines eventq.Calendar
	releases  eventq.Calendar

	// sink receives the execution trace as it happens (nil when neither
	// RecordTrace nor TraceSink is set). pend is the engine-level
	// coalescing buffer: dispatch slices are merged here and flushed as
	// maximal same-sub segments, while lifecycle events stream through
	// immediately — the causal order trace.Sink documents.
	sink    trace.Sink
	pend    trace.Segment
	hasPend bool

	abortPolicy bool
	fixedPrio   bool

	// phantomEnd is the latest wake timer of a job aborted while
	// suspended; see the file comment on event accounting.
	phantomEnd rtime.Instant

	// probes counts nextEvent computations; the dispatch loop caches
	// the result and recomputes only when the event set changed (see
	// engine_probe_test.go).
	probes int64
}

// init resolves the configuration into the flat per-assignment tables
// and seeds the release calendar.
func (s *sim) init() {
	cfg := s.cfg
	n := len(cfg.Assignments)
	s.horizon = rtime.Instant(cfg.Horizon)
	s.abortPolicy = cfg.OnMiss == AbortAtDeadline
	s.fixedPrio = cfg.Policy == FixedPriority

	s.info = make([]asgInfo, n)
	s.stats = make([]TaskStats, n)
	s.nextRelease = make([]rtime.Instant, n)
	s.seq = make([]int64, n)
	s.jobs = make([]jobState, 0, 2*n)
	s.free = make([]int32, 0, 2*n)

	est := 0
	var maxSpan rtime.Duration
	for i := range cfg.Assignments {
		a := &cfg.Assignments[i]
		t := a.Task
		in := &s.info[i]
		in.task = t
		in.taskID = t.ID
		in.tie = int64(t.ID)
		in.offload = a.Offload
		in.localWCET = t.LocalWCET
		in.period = t.Period
		in.deadline = t.Deadline
		in.weight = t.EffectiveWeight()
		in.localBenefit = t.LocalBenefit
		if a.Offload {
			level := t.Levels[a.Level]
			in.srv = cfg.Server
			if level.ServerID != "" {
				in.srv = cfg.Servers[level.ServerID]
			}
			in.payload = level.PayloadBytes
			in.budget = a.Budget()
			in.setup = t.SetupAt(a.Level)
			in.post = t.PostProcessAt(a.Level)
			in.comp = t.CompensationAt(a.Level)
			in.levelBenefit = level.Benefit
			in.guaranteed = t.GuaranteedAt(a.Level)
			d1, err := dbf.SplitDeadline(in.setup, t.SecondPhaseAt(a.Level), t.Deadline, in.budget)
			if err != nil {
				// Validated in Run; unreachable.
				panic(fmt.Sprintf("sched: split deadline: %v", err))
			}
			in.d1 = d1
		}
		s.stats[i] = TaskStats{TaskID: t.ID}
		if a.Offload {
			s.stats[i].ServerID = t.Levels[a.Level].ServerID
		}
		s.res.PerTask[t.ID] = &s.stats[i]
		est += int(cfg.Horizon/t.Period) + 1
		if span := rtime.Duration(rtime.MaxInstant(rtime.Instant(t.Period), rtime.Instant(t.Deadline))); span > maxSpan {
			maxSpan = span
		}
	}
	if cfg.EventQueue == ForceWheel || (cfg.EventQueue == AutoQueue && n >= wheelThreshold) {
		// Every queued instant is within maxSpan of the simulation
		// clock (next release ≤ now + period + jitter, deadline ≤
		// release + D, wake ≤ now + budget ≤ now + D), so a ring
		// spanning 2× that keeps steady-state events out of the
		// overflow tier.
		shift, bits := wheelGeometry(maxSpan + cfg.ReleaseJitter)
		s.releases.InitWheel(shift, bits)
		s.waking.InitWheel(shift, bits)
		if s.abortPolicy {
			s.deadlines.InitWheel(shift, bits)
		}
	}
	for i := range cfg.Assignments {
		// First release at 0; horizon is validated positive.
		s.releases.Push(eventq.Entry{Key: 0, TieA: int64(i), H: int32(i)})
	}
	if !cfg.DiscardJobResults {
		s.res.Jobs = make([]JobResult, 0, est)
	}
	if s.res.Trace != nil {
		// Segment count ≈ sub-jobs (≤ 2 per job) plus preemption slack;
		// reserving here removes the steady-state reallocation that
		// dominated long-horizon recording.
		s.res.Trace.Reserve(2*est+est/2, 2*est)
	}

	if s.fixedPrio {
		// Deadline-monotonic ranks, ties by task ID, written back into
		// the assignment table so dispatch never consults a map.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			x, y := &s.info[order[a]], &s.info[order[b]]
			if x.deadline != y.deadline {
				return x.deadline < y.deadline
			}
			return x.taskID < y.taskID
		})
		for r, i := range order {
			s.info[i].rank = int64(r)
		}
	}
}

// wheelGeometry picks the time-wheel shape for a system whose queued
// instants stay within span of the clock: 8192 buckets, granule grown
// until the ring covers 2× span. Geometry only affects speed — pop
// order is exact for any shape.
func wheelGeometry(span rtime.Duration) (shift, bits uint) {
	bits = 13
	if span < 1 {
		span = 1
	}
	for shift = 0; shift < 40 && int64(1)<<(shift+bits) < 2*int64(span); shift++ {
	}
	return shift, bits
}

// prioOf computes a job's dispatch key under the configured policy.
func (s *sim) prioOf(ai int32, subDeadline rtime.Instant) int64 {
	if s.fixedPrio {
		return s.info[ai].rank
	}
	return int64(subDeadline)
}

// allocJob returns a free arena slot. Callers must not hold *jobState
// pointers across this call: growing the arena moves it.
func (s *sim) allocJob() int32 {
	if n := len(s.free); n > 0 {
		h := s.free[n-1]
		s.free = s.free[:n-1]
		return h
	}
	s.jobs = append(s.jobs, jobState{})
	return int32(len(s.jobs) - 1)
}

// freeJob recycles an arena slot. The job must already be out of every
// queue.
func (s *sim) freeJob(h int32) {
	s.free = append(s.free, h)
}

//rtlint:hotpath -- event-calendar dispatch loop; steady-state dispatch must not allocate
func (s *sim) run() error {
	s.init() //rtlint:allow hotalloc -- one-time table and calendar construction before the loop starts
	next := rtime.Forever
	dirty := true // next must be (re)computed before first use
	for {
		if s.admit() {
			dirty = true
		}
		if dirty {
			next = s.nextEvent()
			dirty = false
		}
		if s.ready.Len() == 0 {
			if next == rtime.Forever {
				s.res.Makespan = rtime.Duration(rtime.MaxInstant(s.now, s.phantomEnd))
				break
			}
			s.now = next
			continue
		}
		h := s.ready.Min().H
		j := &s.jobs[h]
		slice := j.remaining
		if next != rtime.Forever {
			if gap := next.Sub(s.now); gap < slice {
				slice = gap
			}
		}
		start := s.now
		s.now = s.now.Add(slice)
		j.remaining -= slice
		s.res.CPUBusy += slice
		if s.sink != nil {
			s.emitSlice(start, s.now, trace.SubID{TaskID: s.info[j.ai].taskID, Seq: j.seq, Kind: j.kind})
		}
		if j.remaining == 0 {
			s.ready.PopMin()
			if s.complete(h) {
				dirty = true
			}
		}
	}
	if s.sink != nil {
		if s.hasPend {
			s.sink.AppendSegment(s.pend) //rtlint:allow hotalloc -- one flush after the loop; sinks are pluggable components
			s.hasPend = false
		}
		return s.sink.Finish() //rtlint:allow hotalloc -- end-of-run sink finalization, outside the dispatch steady state
	}
	return nil
}

// emitSlice feeds one dispatch slice into the trace sink, coalescing
// consecutive slices of the same sub-job so sinks see maximal segments
// (memory then grows with preemptions, not scheduler events). Sub-job
// lifecycle events bypass this buffer, giving sinks the causal order
// the Sink contract documents.
func (s *sim) emitSlice(start, end rtime.Instant, id trace.SubID) {
	if s.hasPend {
		if s.pend.Sub == id && s.pend.End == start {
			s.pend.End = end
			return
		}
		s.sink.AppendSegment(s.pend) //rtlint:allow hotalloc -- sink implementations are pluggable components; the shipped sinks' emit paths carry their own alloc gates
	}
	s.pend = trace.Segment{Start: start, End: end, Sub: id}
	s.hasPend = true
}

// admit consumes every event due at or before now — releases, then
// wakes, then (under AbortAtDeadline) deadline expiries — and reports
// whether the event calendar changed.
func (s *sim) admit() bool {
	consumed := false
	for s.releases.Len() > 0 {
		e := s.releases.Min()
		at := rtime.Instant(e.Key)
		if at > s.now {
			break
		}
		s.releases.PopMin()
		s.release(int(e.H), at)
		s.advanceRelease(int(e.H))
		consumed = true
	}
	for s.waking.Len() > 0 {
		if rtime.Instant(s.waking.Min().Key) > s.now {
			break
		}
		s.resume(s.waking.PopMin().H)
		consumed = true
	}
	if s.abortPolicy {
		for s.deadlines.Len() > 0 {
			if rtime.Instant(s.deadlines.Min().Key) > s.now {
				break
			}
			s.abort(s.deadlines.PopMin().H)
			consumed = true
		}
	}
	return consumed
}

// nextEvent returns the earliest pending release, wake, or — under
// AbortAtDeadline — live deadline. O(1): every queue keeps its minimum
// at the root and holds only live entries.
func (s *sim) nextEvent() rtime.Instant {
	s.probes++
	next := rtime.Forever
	if s.releases.Len() > 0 {
		next = rtime.Instant(s.releases.Min().Key)
	}
	if s.waking.Len() > 0 {
		if w := rtime.Instant(s.waking.Min().Key); w < next {
			next = w
		}
	}
	if s.abortPolicy && s.deadlines.Len() > 0 {
		if d := rtime.Instant(s.deadlines.Min().Key); d < next {
			next = d
		}
	}
	return next
}

// advanceRelease schedules assignment i's next release. The jitter
// draw happens on every advance — even when the result lands past the
// horizon — so the RNG stream matches the reference dispatcher.
func (s *sim) advanceRelease(i int) {
	gap := s.info[i].period
	if s.cfg.ReleaseJitter > 0 {
		gap += rtime.Duration(s.cfg.RNG.Int64N(int64(s.cfg.ReleaseJitter) + 1))
	}
	s.nextRelease[i] = s.nextRelease[i].Add(gap)
	if s.nextRelease[i] < s.horizon {
		s.releases.Push(eventq.Entry{Key: int64(s.nextRelease[i]), TieA: int64(i), H: int32(i)})
	}
}

// release creates the job and its first sub-job.
func (s *sim) release(i int, at rtime.Instant) {
	in := &s.info[i]
	h := s.allocJob()
	j := &s.jobs[h]
	*j = jobState{
		ai:       int32(i),
		seq:      s.seq[i],
		release:  at,
		deadline: at.Add(in.deadline),
		phase:    phaseFirst,
	}
	s.seq[i]++
	st := &s.stats[i]
	st.Released++
	st.BaselineSum += in.localBenefit
	s.res.TotalBaseline += in.weight * in.localBenefit

	if in.offload {
		j.kind = trace.Setup
		j.wcet = in.setup
		if s.cfg.Policy == SplitEDF {
			j.subDeadline = at.Add(in.d1)
		} else { // NaiveEDF, FixedPriority
			j.subDeadline = j.deadline
		}
	} else {
		j.kind = trace.Local
		j.wcet = in.localWCET
		j.subDeadline = j.deadline
	}
	j.remaining = j.wcet
	j.subRelease = at
	j.prio = s.prioOf(j.ai, j.subDeadline)
	if s.sink != nil {
		s.sink.OpenSub(trace.SubID{TaskID: in.taskID, Seq: j.seq, Kind: j.kind}, at, j.subDeadline, j.wcet) //rtlint:allow hotalloc -- sink implementations are pluggable components with their own alloc gates
	}
	s.ready.Push(eventq.Entry{Key: j.prio, TieA: in.tie, TieB: j.seq, H: h})
	if s.abortPolicy {
		s.deadlines.Push(eventq.Entry{Key: int64(j.deadline), TieA: in.tie, TieB: j.seq, H: h})
	}
}

// complete handles a finished sub-job, reporting whether the event
// calendar changed (a wake was scheduled or a deadline entry retired).
func (s *sim) complete(h int32) bool {
	j := &s.jobs[h]
	s.recordSub(j, true)
	in := &s.info[j.ai]
	switch j.phase {
	case phaseFirst:
		if !in.offload {
			s.finishJob(h, RanLocal, in.localBenefit)
			return s.abortPolicy
		}
		// Issue the offload request to the level's component and
		// suspend.
		resp := in.srv.Respond(s.now, in.taskID, in.payload) //rtlint:allow hotalloc -- Server models are pluggable simulation components, not dispatcher code
		if resp.Latency < 0 {
			// A response cannot arrive before its request; clamp
			// misbehaving Server implementations to "instant".
			resp.Latency = 0
		}
		if resp.Arrives && resp.Latency <= in.budget {
			j.hit = true
			j.wake = s.now.Add(resp.Latency)
		} else {
			j.hit = false
			j.wake = s.now.Add(in.budget)
		}
		j.phase = phaseSuspended
		s.res.RadioBusy += j.wake.Sub(s.now)
		s.waking.Push(eventq.Entry{Key: int64(j.wake), TieA: in.tie, TieB: j.seq, H: h})
		return true
	case phaseSecond:
		if j.hit {
			s.finishJob(h, OffloadHit, in.levelBenefit)
		} else {
			s.finishJob(h, OffloadMissed, in.localBenefit)
		}
		return s.abortPolicy
	default:
		panic("sched: completing job in unexpected phase")
	}
}

// resume transitions a suspended job to its second sub-job. The caller
// has already popped it from the wake queue.
func (s *sim) resume(h int32) {
	j := &s.jobs[h]
	in := &s.info[j.ai]
	j.phase = phaseSecond
	j.subRelease = j.wake
	j.subDeadline = j.deadline
	j.prio = s.prioOf(j.ai, j.subDeadline)
	if j.hit {
		j.kind = trace.Post
		j.wcet = in.post
	} else {
		j.kind = trace.Comp
		j.wcet = in.comp
	}
	j.remaining = j.wcet
	if s.sink != nil {
		s.sink.OpenSub(trace.SubID{TaskID: in.taskID, Seq: j.seq, Kind: j.kind}, j.subRelease, j.subDeadline, j.wcet) //rtlint:allow hotalloc -- sink implementations are pluggable components with their own alloc gates
	}
	if j.wcet == 0 {
		// Zero post-processing: the job is done the moment the result
		// arrives. Record a zero-length sub-job for accounting.
		s.recordSub(j, true)
		if j.hit {
			s.finishJob(h, OffloadHit, in.levelBenefit)
		} else {
			s.finishJob(h, OffloadMissed, in.localBenefit)
		}
		return
	}
	s.ready.Push(eventq.Entry{Key: j.prio, TieA: in.tie, TieB: j.seq, H: h})
}

// abort discards a job's remaining work at its deadline. The caller
// has already popped its deadline entry.
func (s *sim) abort(h int32) {
	j := &s.jobs[h]
	in := &s.info[j.ai]
	switch j.phase {
	case phaseFirst, phaseSecond:
		s.recordSubAbandoned(j)
		s.ready.Remove(h)
	case phaseSuspended:
		s.waking.Remove(h)
		if j.wake > s.phantomEnd {
			s.phantomEnd = j.wake
		}
	}
	st := &s.stats[j.ai]
	st.Misses++
	st.Aborted++
	s.res.Misses++
	outcome := RanLocal
	if in.offload {
		outcome = OffloadMissed // never served within its budget
	}
	if !s.cfg.DiscardJobResults {
		s.res.Jobs = append(s.res.Jobs, JobResult{
			TaskID:   in.taskID,
			Seq:      j.seq,
			Release:  j.release,
			Deadline: j.deadline,
			Finish:   j.deadline,
			Outcome:  outcome,
			Missed:   true,
			Finished: false,
		})
	}
	j.phase = phaseDone
	s.freeJob(h)
}

func (s *sim) finishJob(h int32, out Outcome, benefit float64) {
	j := &s.jobs[h]
	j.phase = phaseDone
	in := &s.info[j.ai]
	st := &s.stats[j.ai]
	missed := s.now > j.deadline
	if !s.cfg.DiscardJobResults {
		s.res.Jobs = append(s.res.Jobs, JobResult{
			TaskID:   in.taskID,
			Seq:      j.seq,
			Release:  j.release,
			Deadline: j.deadline,
			Finish:   s.now,
			Outcome:  out,
			Benefit:  benefit,
			Missed:   missed,
			Finished: true,
		})
	}
	st.Finished++
	switch out {
	case RanLocal:
		st.LocalRuns++
	case OffloadHit:
		st.Hits++
	case OffloadMissed:
		st.Compensations++
		if in.guaranteed {
			st.BoundViolations++
		}
	}
	if missed {
		st.Misses++
		s.res.Misses++
	}
	st.BenefitSum += benefit
	s.res.TotalBenefit += in.weight * benefit
	lat := s.now.Sub(j.release)
	if lat > st.WorstLatency {
		st.WorstLatency = lat
	}
	if s.cfg.CollectLatencies {
		st.Latencies = append(st.Latencies, lat)
	}
	if s.abortPolicy {
		s.deadlines.Remove(h)
	}
	s.freeJob(h)
}

// recordSub closes the current sub-job in the trace sink.
func (s *sim) recordSub(j *jobState, completed bool) {
	if s.sink == nil {
		return
	}
	rec := trace.SubRecord{
		Sub:      trace.SubID{TaskID: s.info[j.ai].taskID, Seq: j.seq, Kind: j.kind},
		Release:  j.subRelease,
		Deadline: j.subDeadline,
		WCET:     j.wcet,
	}
	if completed {
		rec.Completed = true
		rec.Completion = s.now
	}
	s.sink.CloseSub(rec) //rtlint:allow hotalloc -- sink implementations are pluggable components with their own alloc gates
}

// recordSubAbandoned closes an abandoned sub-job in the trace sink.
func (s *sim) recordSubAbandoned(j *jobState) {
	if s.sink == nil {
		return
	}
	s.sink.CloseSub(trace.SubRecord{ //rtlint:allow hotalloc -- sink implementations are pluggable components with their own alloc gates
		Sub:         trace.SubID{TaskID: s.info[j.ai].taskID, Seq: j.seq, Kind: j.kind},
		Release:     j.subRelease,
		Deadline:    j.subDeadline,
		WCET:        j.wcet,
		Abandoned:   true,
		AbandonTime: s.now,
	})
}
