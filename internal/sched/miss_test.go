package sched

import (
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
)

// overloadedAssignments builds a system that must miss deadlines:
// two tasks needing 8ms each every 10ms.
func overloadedAssignments() []Assignment {
	return []Assignment{
		{Task: localTask(1, ms(8), ms(10), ms(10))},
		{Task: localTask(2, ms(8), ms(10), ms(10))},
	}
}

func TestMissPolicyString(t *testing.T) {
	if ContinueLate.String() != "continue-late" || AbortAtDeadline.String() != "abort-at-deadline" {
		t.Error("names")
	}
	if MissPolicy(9).String() == "" {
		t.Error("unknown name empty")
	}
	if _, err := Run(Config{
		Assignments: overloadedAssignments(),
		Horizon:     ms(10),
		OnMiss:      MissPolicy(9),
	}); err == nil {
		t.Error("unknown miss policy accepted")
	}
}

func TestContinueLateCascades(t *testing.T) {
	res, err := Run(Config{
		Assignments: overloadedAssignments(),
		Horizon:     ms(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses == 0 {
		t.Fatal("overload without misses")
	}
	// Every job eventually finishes (late) under ContinueLate.
	for _, st := range res.PerTask {
		if st.Finished != st.Released {
			t.Fatalf("task %d: %d released, %d finished", st.TaskID, st.Released, st.Finished)
		}
		if st.Aborted != 0 {
			t.Fatalf("ContinueLate aborted jobs: %+v", st)
		}
	}
	// Backlog grows: the worst latency well exceeds one period.
	worst := rtime.Duration(0)
	for _, st := range res.PerTask {
		if st.WorstLatency > worst {
			worst = st.WorstLatency
		}
	}
	if worst < ms(30) {
		t.Fatalf("no cascade: worst latency %v", worst)
	}
}

func TestAbortAtDeadline(t *testing.T) {
	res, err := Run(Config{
		Assignments: overloadedAssignments(),
		Horizon:     ms(100),
		OnMiss:      AbortAtDeadline,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses == 0 {
		t.Fatal("overload without misses")
	}
	aborted := 0
	for _, st := range res.PerTask {
		aborted += st.Aborted
		if st.Finished+st.Aborted != st.Released {
			t.Fatalf("task %d: %d finished + %d aborted ≠ %d released",
				st.TaskID, st.Finished, st.Aborted, st.Released)
		}
	}
	if aborted == 0 {
		t.Fatal("nothing aborted under AbortAtDeadline")
	}
	// Firm deadlines: nothing ever runs past its deadline, so the worst
	// response time is bounded by D.
	for _, st := range res.PerTask {
		if st.WorstLatency > ms(10) {
			t.Fatalf("task %d ran past its deadline: %v", st.TaskID, st.WorstLatency)
		}
	}
	// Trace checkers understand abandoned sub-jobs.
	if err := res.Trace.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.CheckNoOverlap(); err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.CheckBudgets(); err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.CheckWorkConserving(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortSuspendedJob(t *testing.T) {
	// An offloaded task whose compensation cannot fit: setup 1ms,
	// budget 8ms, compensation 6ms, deadline 10ms, but a local hog
	// steals the window. The suspended/late job must be aborted at its
	// deadline without resuming.
	tk := offloadTask(1, ms(1), ms(6), 0, ms(10), ms(20), ms(8), 5)
	hog := localTask(2, ms(9), ms(11), ms(20))
	res, err := Run(Config{
		Assignments: []Assignment{{Task: tk, Offload: true}, {Task: hog}},
		Server:      server.Fixed{Lost: true},
		Horizon:     ms(40),
		OnMiss:      AbortAtDeadline,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerTask[1]
	if st.Aborted == 0 {
		t.Fatalf("suspended job not aborted: %+v", st)
	}
	// No compensation segment may end past the job deadline.
	for _, j := range res.Jobs {
		if j.TaskID == 1 && j.Finished && j.Finish > j.Deadline {
			t.Fatalf("job finished late despite abort policy: %+v", j)
		}
	}
}

func TestAbortKeepsFeasibleSystemsUntouched(t *testing.T) {
	// A Theorem-3 feasible system behaves identically under both
	// policies: no misses, no aborts.
	tk := offloadTask(1, ms(2), ms(6), ms(1), ms(30), ms(30), ms(8), 5)
	for _, p := range []MissPolicy{ContinueLate, AbortAtDeadline} {
		res, err := Run(Config{
			Assignments: []Assignment{{Task: tk, Offload: true}},
			Server:      server.Fixed{Lost: true},
			Horizon:     ms(90),
			OnMiss:      p,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses != 0 || res.PerTask[1].Aborted != 0 {
			t.Fatalf("%v: feasible system disturbed: %+v", p, res.PerTask[1])
		}
		if res.PerTask[1].Finished != 3 {
			t.Fatalf("%v: finished %d", p, res.PerTask[1].Finished)
		}
	}
}

func TestLatencyPercentiles(t *testing.T) {
	tk := offloadTask(1, ms(2), ms(6), ms(1), ms(30), ms(30), ms(8), 5)
	res, err := Run(Config{
		Assignments:      []Assignment{{Task: tk, Offload: true}},
		Server:           server.Fixed{Latency: ms(5)},
		Horizon:          ms(300),
		CollectLatencies: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: every job finishes in exactly 8ms.
	for _, p := range []float64{0, 50, 99, 100} {
		got, ok := res.LatencyPercentile(1, p)
		if !ok || got != ms(8) {
			t.Fatalf("P%g = %v, ok=%v", p, got, ok)
		}
	}
	if _, ok := res.LatencyPercentile(99, 50); ok {
		t.Error("unknown task reported percentiles")
	}
	if _, ok := res.LatencyPercentile(1, 101); ok {
		t.Error("out-of-range percentile accepted")
	}
	// Without collection: not available.
	res, err = Run(Config{
		Assignments: []Assignment{{Task: tk, Offload: true}},
		Server:      server.Fixed{Latency: ms(5)},
		Horizon:     ms(300),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.LatencyPercentile(1, 50); ok {
		t.Error("percentiles without collection")
	}
}

// maliciousServer returns responses "before" their requests.
type maliciousServer struct{}

func (maliciousServer) Respond(rtime.Instant, int, int64) server.Response {
	return server.Response{Latency: -ms(50), Arrives: true}
}

func TestNegativeLatencyClamped(t *testing.T) {
	tk := offloadTask(1, ms(2), ms(6), ms(1), ms(30), ms(30), ms(8), 5)
	res, err := Run(Config{
		Assignments: []Assignment{{Task: tk, Offload: true}},
		Server:      maliciousServer{},
		Horizon:     ms(90),
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("misses %d", res.Misses)
	}
	// Clamped to instant arrival: post-processing right after setup.
	for _, j := range res.Jobs {
		if j.Outcome != OffloadHit {
			t.Fatalf("outcome %v", j.Outcome)
		}
		if j.Finish != j.Release.Add(ms(3)) { // setup 2 + post 1
			t.Fatalf("finish %v, want release+3ms", j.Finish)
		}
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("trace: %v", err)
	}
}
