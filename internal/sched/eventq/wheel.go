package eventq

// This file adds the calendar tier the event queues grow into at
// fleet scale. A Heap is exactly right for a few hundred tasks — every
// operation is O(log n) with a tiny constant — but at 10⁵–10⁶ tasks
// the release, wake, and deadline queues hold one entry per task (or
// live job) and each push/pop walks a 17-deep tree of cache misses.
// Those three queues are *time* queues: their keys are instants on the
// simulation clock, popped in non-decreasing order, and pushed keys
// never precede the last popped key (an event is always scheduled at
// or after "now"). That monotonicity is what a hierarchical time wheel
// exploits: O(1) insert, and pops that touch one small bucket instead
// of rebalancing a global tree.
//
// Calendar is that structure, in three tiers. Entries hash by key into
// a ring of power-of-two buckets, each covering a fixed power-of-two
// granule of simulation time; entries beyond the ring's horizon
// overflow into a lazily-migrated Heap (the far-future tier — a
// one-year timer on a microsecond wheel). At the near end, the bucket
// under the cursor is drained once into a small *front* heap that all
// pops come from, so a pathological bucket — every task releasing at
// instant 0, say — costs O(b log b) total instead of the O(b²) a
// per-pop bucket scan would (wheel_test.go's scaling test pins this).
// Bucket ranges are disjoint in key space, so the front heap's minimum
// is the global minimum whenever it is non-empty, and the pop order is
// exactly the Heap's total (Key, TieA, TieB) order: two engines
// running the same workload on a Heap and on a Calendar produce
// bit-identical schedules (wheel_test.go pins this with a randomized
// differential test, diff_test.go end to end).
//
// The zero value is a degenerate wheel with no ring: every entry lives
// in the overflow Heap, making zero-valued Calendars drop-in
// equivalents of plain Heaps for small systems and tests.

// ringLocBase offsets packed ring locations so they can never collide
// with the sentinel locations.
const (
	locAbsent   int64 = 0
	locOverflow int64 = 1
	locFront    int64 = 2
	ringLocBase int64 = 1 << 32
)

// Calendar is a bucketed time wheel over Entries with a front heap for
// the bucket being consumed and a lazy heap fallback for far-future
// keys. It implements the same operations as Heap with the same total
// (Key, TieA, TieB) pop order; keys must be non-negative and — like
// every event calendar in the engine — pushes must not precede the
// last popped key's bucket (pushing "into the past" is tolerated by
// routing into the front heap, preserving order exactness, but
// indicates a misuse upstream).
type Calendar struct {
	// shift and mask define the geometry: each bucket spans 1<<shift
	// key units and the ring holds mask+1 buckets. A nil ring means
	// heap mode: all entries live in overflow.
	shift uint
	mask  int64
	//rtlint:arena
	buckets [][]Entry
	// cur is the absolute bucket index (key >> shift) the wheel has
	// advanced to; ring entries hash to slot cur&mask .. (cur+mask)&mask.
	cur int64
	// ringCount is the number of entries resident in ring buckets
	// (excluding the front heap).
	ringCount int
	// front holds the drained current bucket plus any entries pushed
	// at or behind the cursor; while non-empty its minimum is the
	// calendar's minimum.
	front Heap
	// overflow holds entries whose bucket lies beyond cur+mask, plus
	// everything in heap mode.
	overflow Heap
	// loc[h] locates handle h: locAbsent, locOverflow, locFront, or
	// ringLocBase + slot<<32 + index-within-bucket.
	//rtlint:arena
	loc []int64
}

// InitWheel switches c to wheel mode with 1<<bucketBits ring buckets
// of 1<<granuleShift key units each, dropping any queued entries. The
// zero value (heap mode) needs no initialization.
func (c *Calendar) InitWheel(granuleShift uint, bucketBits uint) {
	*c = Calendar{
		shift:   granuleShift,
		mask:    int64(1)<<bucketBits - 1,
		buckets: make([][]Entry, int64(1)<<bucketBits),
	}
}

// Len reports the number of queued entries.
func (c *Calendar) Len() int { return c.ringCount + c.front.Len() + c.overflow.Len() }

// Contains reports whether handle hd is queued.
func (c *Calendar) Contains(hd int32) bool {
	if c.buckets == nil {
		return c.overflow.Contains(hd)
	}
	return int(hd) < len(c.loc) && c.loc[hd] != locAbsent
}

// Push inserts e. The handle must not already be queued.
func (c *Calendar) Push(e Entry) {
	if c.buckets == nil {
		c.overflow.Push(e)
		return
	}
	if int(e.H) >= len(c.loc) {
		n := int(e.H) + 1
		if n < 2*len(c.loc) {
			// Doubling keeps monotonically growing handle spaces
			// amortized O(1) per push (see Heap.Push).
			n = 2 * len(c.loc)
		}
		grown := make([]int64, n) //rtlint:allow hotalloc -- handle-table growth; amortized out by doubling
		copy(grown, c.loc)
		c.loc = grown
	}
	b := e.Key >> c.shift
	switch {
	case b <= c.cur:
		// The bucket under the cursor (or behind it — see the type
		// comment): consumed through the front heap.
		c.front.Push(e)
		c.loc[e.H] = locFront
	case b <= c.cur+c.mask:
		c.place(b, e)
	default:
		c.overflow.Push(e)
		c.loc[e.H] = locOverflow
	}
}

// place appends e to the ring bucket for absolute bucket index b
// (which must lie in (cur, cur+mask]) and records its location.
func (c *Calendar) place(b int64, e Entry) {
	slot := b & c.mask
	c.buckets[slot] = append(c.buckets[slot], e)
	c.loc[e.H] = ringLocBase + slot<<32 + int64(len(c.buckets[slot])-1)
	c.ringCount++
}

// Min returns the least entry without removing it. It must not be
// called on an empty calendar.
func (c *Calendar) Min() Entry {
	if c.buckets == nil {
		return c.overflow.Min()
	}
	if c.front.Len() == 0 {
		c.advance()
	}
	return c.front.Min()
}

// PopMin removes and returns the least entry. It must not be called on
// an empty calendar.
func (c *Calendar) PopMin() Entry {
	if c.buckets == nil {
		return c.overflow.PopMin()
	}
	if c.front.Len() == 0 {
		c.advance()
	}
	e := c.front.PopMin()
	c.loc[e.H] = locAbsent
	return e
}

// Remove deletes the entry with handle hd from anywhere in the
// calendar, reporting whether it was present.
func (c *Calendar) Remove(hd int32) bool {
	if c.buckets == nil {
		return c.overflow.Remove(hd)
	}
	if int(hd) >= len(c.loc) || c.loc[hd] == locAbsent {
		return false
	}
	c.unlink(hd)
	return true
}

// unlink removes a present handle from its bucket, the front heap, or
// overflow.
func (c *Calendar) unlink(hd int32) {
	switch l := c.loc[hd]; l {
	case locOverflow:
		c.overflow.Remove(hd)
	case locFront:
		c.front.Remove(hd)
	default:
		slot := (l - ringLocBase) >> 32
		idx := (l - ringLocBase) & (1<<32 - 1)
		bucket := c.buckets[slot]
		last := len(bucket) - 1
		if int(idx) != last {
			moved := bucket[last]
			bucket[idx] = moved
			c.loc[moved.H] = ringLocBase + slot<<32 + idx
		}
		c.buckets[slot] = bucket[:last]
		c.ringCount--
	}
	c.loc[hd] = locAbsent
}

// advance moves the cursor to the next occupied bucket — migrating
// overflow entries that come into the ring's horizon as it moves — and
// drains that bucket into the front heap. The front heap must be empty
// and the calendar non-empty.
func (c *Calendar) advance() {
	if c.ringCount == 0 {
		// The ring is drained: jump the cursor straight to the
		// overflow minimum's bucket (the lazy far-future tier).
		c.cur = c.overflow.Min().Key >> c.shift
		c.migrate()
	}
	for len(c.buckets[c.cur&c.mask]) == 0 {
		c.cur++
		c.migrate()
	}
	slot := c.cur & c.mask
	bucket := c.buckets[slot]
	for _, e := range bucket {
		c.front.Push(e)
		c.loc[e.H] = locFront
	}
	c.ringCount -= len(bucket)
	c.buckets[slot] = bucket[:0]
}

// migrate moves overflow entries whose bucket now lies within the
// ring's horizon into the ring. Each entry migrates at most once over
// its lifetime, so the amortized cost stays O(log overflow) per
// far-future event. The cursor's own bucket is placed in the ring too:
// migrate only runs inside advance, which drains that bucket into the
// front heap before any pop.
func (c *Calendar) migrate() {
	for c.overflow.Len() > 0 {
		e := c.overflow.Min()
		b := e.Key >> c.shift
		if b > c.cur+c.mask {
			return
		}
		c.overflow.PopMin()
		if b <= c.cur {
			b = c.cur
		}
		c.place(b, e)
	}
}

// Reset empties the calendar, retaining ring and table storage.
func (c *Calendar) Reset() {
	for i := range c.buckets {
		c.buckets[i] = c.buckets[i][:0]
	}
	for i := range c.loc {
		c.loc[i] = locAbsent
	}
	c.front.Reset()
	c.overflow.Reset()
	c.ringCount = 0
	c.cur = 0
}
