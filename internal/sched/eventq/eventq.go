// Package eventq provides the typed, boxing-free priority queues the
// event-calendar simulation engine in package sched is built on.
//
// A Heap is an indexed binary min-heap over fixed-width integer keys.
// Every entry carries a lexicographic (Key, TieA, TieB) triple and a
// small non-negative integer handle identifying the payload (an arena
// slot or an assignment index in the simulator). Because the triple is
// a total order for every queue the simulator maintains — ties always
// break on task identity and job sequence — the pop order is fully
// determined by the entry values, never by the heap's internal layout.
// That property is what lets two structurally different engines
// (the event-calendar engine and the retained reference dispatcher)
// produce bit-identical schedules.
//
// Unlike container/heap, the implementation stores entries inline
// (no interface{} boxing, no per-operation allocation once the backing
// arrays have grown) and tracks each handle's position, so an entry
// can be removed from the middle of the queue in O(log n) — aborted
// jobs leave their queues eagerly instead of being lazily skipped at
// pop time.
package eventq

// Entry is one queued event. Entries are ordered by Key, then TieA,
// then TieB, ascending. H is the caller's payload handle; a handle may
// be present in a given Heap at most once.
type Entry struct {
	Key  int64
	TieA int64
	TieB int64
	H    int32
}

// less is the lexicographic entry order.
func (e Entry) less(o Entry) bool {
	if e.Key != o.Key {
		return e.Key < o.Key
	}
	if e.TieA != o.TieA {
		return e.TieA < o.TieA
	}
	return e.TieB < o.TieB
}

// Heap is an indexed min-heap of Entries. The zero value is an empty
// heap ready for use.
type Heap struct {
	es []Entry
	// pos[h] is the index of handle h in es plus one; zero means the
	// handle is not queued.
	pos []int32
}

// Len reports the number of queued entries.
func (h *Heap) Len() int { return len(h.es) }

// Min returns the least entry without removing it. It must not be
// called on an empty heap.
func (h *Heap) Min() Entry { return h.es[0] }

// Contains reports whether handle hd is queued.
func (h *Heap) Contains(hd int32) bool {
	return int(hd) < len(h.pos) && h.pos[hd] != 0
}

// Push inserts e. The handle must not already be queued.
func (h *Heap) Push(e Entry) {
	if int(e.H) >= len(h.pos) {
		n := int(e.H) + 1
		if n < 2*len(h.pos) {
			// Doubling keeps monotonically growing handle spaces
			// (job-indexed queues at fleet scale) amortized O(1) per
			// push instead of one full-table copy each.
			n = 2 * len(h.pos)
		}
		grown := make([]int32, n) //rtlint:allow hotalloc -- handle-table growth; amortized out by doubling
		copy(grown, h.pos)
		h.pos = grown
	}
	h.es = append(h.es, e)
	h.up(len(h.es) - 1)
}

// PopMin removes and returns the least entry. It must not be called on
// an empty heap.
func (h *Heap) PopMin() Entry {
	min := h.es[0]
	n := len(h.es) - 1
	h.swap(0, n)
	h.pos[min.H] = 0
	h.es = h.es[:n]
	if n > 0 {
		h.down(0)
	}
	return min
}

// Remove deletes the entry with handle hd from anywhere in the heap,
// reporting whether it was present.
func (h *Heap) Remove(hd int32) bool {
	if int(hd) >= len(h.pos) || h.pos[hd] == 0 {
		return false
	}
	i := int(h.pos[hd]) - 1
	n := len(h.es) - 1
	h.swap(i, n)
	h.pos[hd] = 0
	h.es = h.es[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
	return true
}

// Reset empties the heap, retaining the backing arrays for reuse.
func (h *Heap) Reset() {
	for _, e := range h.es {
		h.pos[e.H] = 0
	}
	h.es = h.es[:0]
}

func (h *Heap) swap(i, j int) {
	h.es[i], h.es[j] = h.es[j], h.es[i]
	h.pos[h.es[i].H] = int32(i) + 1
	h.pos[h.es[j].H] = int32(j) + 1
}

func (h *Heap) up(i int) {
	e := h.es[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(h.es[parent]) {
			break
		}
		h.es[i] = h.es[parent]
		h.pos[h.es[i].H] = int32(i) + 1
		i = parent
	}
	h.es[i] = e
	h.pos[e.H] = int32(i) + 1
}

func (h *Heap) down(i int) {
	e := h.es[i]
	n := len(h.es)
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && h.es[r].less(h.es[kid]) {
			kid = r
		}
		if !h.es[kid].less(e) {
			break
		}
		h.es[i] = h.es[kid]
		h.pos[h.es[i].H] = int32(i) + 1
		i = kid
	}
	h.es[i] = e
	h.pos[e.H] = int32(i) + 1
}
