package eventq

import (
	"math/rand"
	"testing"
)

// drainBoth pops both queues to exhaustion, asserting identical pop
// streams.
func drainBoth(t *testing.T, c *Calendar, h *Heap) {
	t.Helper()
	for h.Len() > 0 {
		if c.Len() != h.Len() {
			t.Fatalf("Len: calendar %d, heap %d", c.Len(), h.Len())
		}
		want := h.PopMin()
		if got := c.Min(); got != want {
			t.Fatalf("Min: calendar %+v, heap %+v", got, want)
		}
		if got := c.PopMin(); got != want {
			t.Fatalf("PopMin: calendar %+v, heap %+v", got, want)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("calendar holds %d entries after heap drained", c.Len())
	}
}

// TestCalendarMatchesHeapRandom drives a Calendar and a Heap through
// the same randomized monotone event schedule — pushes at or after the
// last popped key, interleaved pops and removes — and asserts
// bit-identical pop streams. This is the total-order property the
// engine's differential tests rely on, exercised directly.
func TestCalendarMatchesHeapRandom(t *testing.T) {
	for _, geom := range []struct {
		name            string
		granule, bucket uint
	}{
		{"zero-value-heap-mode", 0, 0},
		{"fine", 2, 4},   // 4-unit granule, 16 buckets: heavy overflow traffic
		{"coarse", 8, 6}, // 256-unit granule, 64 buckets: crowded buckets
	} {
		t.Run(geom.name, func(t *testing.T) {
			for seed := int64(0); seed < 30; seed++ {
				rng := rand.New(rand.NewSource(seed))
				var c Calendar
				if geom.bucket > 0 {
					c.InitWheel(geom.granule, geom.bucket)
				}
				var h Heap
				live := map[int32]bool{}
				now := int64(0)
				nextH := int32(0)
				for op := 0; op < 2000; op++ {
					switch r := rng.Intn(10); {
					case r < 5 || h.Len() == 0:
						// TieB is the unique push counter: the engine's
						// queues always end ties on a unique (task, seq)
						// pair, so the triple is a strict total order.
						e := Entry{
							Key:  now + rng.Int63n(1<<uint(4+rng.Intn(10))),
							TieA: rng.Int63n(8),
							TieB: int64(nextH),
							H:    nextH,
						}
						nextH++
						c.Push(e)
						h.Push(e)
						live[e.H] = true
					case r < 8:
						want := h.PopMin()
						if got := c.PopMin(); got != want {
							t.Fatalf("seed %d op %d: PopMin calendar %+v, heap %+v", seed, op, got, want)
						}
						delete(live, want.H)
						if want.Key > now {
							now = want.Key
						}
					default:
						// Remove a pseudo-random live handle (scan for
						// determinism-by-seed; map order doesn't matter
						// because both queues get the same handle).
						victim := int32(rng.Intn(int(nextH)))
						wantOK := h.Remove(victim)
						if gotOK := c.Remove(victim); gotOK != wantOK {
							t.Fatalf("seed %d op %d: Remove(%d) calendar %v, heap %v", seed, op, victim, gotOK, wantOK)
						}
						delete(live, victim)
					}
					if c.Len() != h.Len() {
						t.Fatalf("seed %d op %d: Len calendar %d, heap %d", seed, op, c.Len(), h.Len())
					}
				}
				drainBoth(t, &c, &h)
			}
		})
	}
}

// TestCalendarContains exercises the location table across the ring
// and the overflow tier.
func TestCalendarContains(t *testing.T) {
	var c Calendar
	c.InitWheel(2, 3)              // 4-unit granule, 8 buckets: horizon 32 units
	c.Push(Entry{Key: 5, H: 1})    // ring
	c.Push(Entry{Key: 1000, H: 2}) // overflow
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatal("queued handles not reported present")
	}
	if c.Contains(3) || c.Contains(99) {
		t.Fatal("absent handle reported present")
	}
	if !c.Remove(2) {
		t.Fatal("overflow remove failed")
	}
	if c.Contains(2) {
		t.Fatal("removed overflow handle still present")
	}
	if got := c.PopMin(); got.H != 1 {
		t.Fatalf("PopMin H = %d, want 1", got.H)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after draining", c.Len())
	}
}

// TestCalendarReset verifies Reset empties both tiers and the calendar
// is reusable afterwards.
func TestCalendarReset(t *testing.T) {
	var c Calendar
	c.InitWheel(2, 3)
	for i := int32(0); i < 20; i++ {
		c.Push(Entry{Key: int64(i) * 7, H: i})
	}
	if c.PopMin().Key != 0 {
		t.Fatal("unexpected min before reset")
	}
	c.Reset()
	if c.Len() != 0 || c.Contains(3) {
		t.Fatalf("Len = %d after Reset", c.Len())
	}
	c.Push(Entry{Key: 42, H: 7})
	if got := c.PopMin(); got.Key != 42 || got.H != 7 {
		t.Fatalf("post-reset PopMin = %+v", got)
	}
}

// TestCalendarOverflowMigration forces the lazy far-future tier: every
// entry lands in overflow, and the cursor jump plus migration must
// still produce the exact total order.
func TestCalendarOverflowMigration(t *testing.T) {
	var c Calendar
	c.InitWheel(1, 2) // 2-unit granule, 4 buckets: horizon 8 units
	keys := []int64{1_000_000, 500, 1_000_001, 90, 91, 500_000}
	for i, k := range keys {
		c.Push(Entry{Key: k, H: int32(i)})
	}
	want := []int64{90, 91, 500, 500_000, 1_000_000, 1_000_001}
	for i, k := range want {
		if got := c.PopMin(); got.Key != k {
			t.Fatalf("pop %d: key %d, want %d", i, got.Key, k)
		}
	}
}

// TestCalendarZeroAlloc gates the hotpath contract on the wheel's warm
// operations: with the ring buckets, location table, and overflow
// backing arrays grown, push/min/pop/remove cycles must not allocate.
func TestCalendarZeroAlloc(t *testing.T) {
	var c Calendar
	c.InitWheel(3, 5)
	// Warm every structure: ring buckets, overflow heap, loc table.
	for i := int32(0); i < 64; i++ {
		c.Push(Entry{Key: int64(i) * 3, H: i})
	}
	for i := int32(64); i < 96; i++ {
		c.Push(Entry{Key: 10_000 + int64(i), H: i}) // overflow tier
	}
	for c.Len() > 0 {
		c.PopMin()
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Push(Entry{Key: 50, H: 3})
		c.Push(Entry{Key: 51, H: 4})
		c.Push(Entry{Key: 100_000, H: 5}) // overflow path
		if c.Min().H != 3 {
			t.Error("unexpected min")
		}
		c.Remove(4)
		c.PopMin()
		c.Remove(5)
	})
	if allocs != 0 {
		t.Fatalf("warm calendar operations allocate %.1f times per run; the hotpath contract is 0", allocs)
	}
}
