package eventq

import (
	"sort"
	"testing"

	"rtoffload/internal/stats"
)

func TestPopOrderIsLexicographic(t *testing.T) {
	var h Heap
	es := []Entry{
		{Key: 5, TieA: 1, TieB: 0, H: 0},
		{Key: 3, TieA: 9, TieB: 2, H: 1},
		{Key: 3, TieA: 2, TieB: 7, H: 2},
		{Key: 3, TieA: 2, TieB: 1, H: 3},
		{Key: 8, TieA: 0, TieB: 0, H: 4},
	}
	for _, e := range es {
		h.Push(e)
	}
	want := []int32{3, 2, 1, 0, 4}
	for i, w := range want {
		if h.Min().H != w {
			t.Fatalf("pop %d: min handle %d, want %d", i, h.Min().H, w)
		}
		if got := h.PopMin(); got.H != w {
			t.Fatalf("pop %d: handle %d, want %d", i, got.H, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("len %d after draining", h.Len())
	}
}

func TestRemoveFromMiddle(t *testing.T) {
	var h Heap
	for i := int32(0); i < 10; i++ {
		h.Push(Entry{Key: int64(10 - i), H: i})
	}
	if !h.Contains(4) {
		t.Fatal("handle 4 missing")
	}
	if !h.Remove(4) {
		t.Fatal("Remove(4) failed")
	}
	if h.Contains(4) || h.Remove(4) {
		t.Fatal("handle 4 still present after removal")
	}
	if h.Remove(99) {
		t.Fatal("removed an unknown handle")
	}
	var keys []int64
	for h.Len() > 0 {
		keys = append(keys, h.PopMin().Key)
	}
	if len(keys) != 9 {
		t.Fatalf("%d entries left, want 9", len(keys))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("pop order not sorted after removal: %v", keys)
	}
	for _, k := range keys {
		if k == 6 { // handle 4 carried key 10-4 = 6
			t.Fatal("removed key popped anyway")
		}
	}
}

func TestResetRetainsNothing(t *testing.T) {
	var h Heap
	h.Push(Entry{Key: 1, H: 0})
	h.Push(Entry{Key: 2, H: 1})
	h.Reset()
	if h.Len() != 0 || h.Contains(0) || h.Contains(1) {
		t.Fatal("Reset left state behind")
	}
	h.Push(Entry{Key: 5, H: 1})
	if h.Min().Key != 5 || !h.Contains(1) {
		t.Fatal("heap unusable after Reset")
	}
}

// Randomized differential test against a sorted-slice model: every
// interleaving of pushes, pops, and removals must pop in exact
// lexicographic order, and position tracking must never drift.
func TestRandomizedAgainstModel(t *testing.T) {
	rng := stats.NewRNG(7)
	var h Heap
	model := map[int32]Entry{}
	nextH := int32(0)
	for step := 0; step < 20000; step++ {
		switch op := rng.IntN(4); {
		case op <= 1 || len(model) == 0: // push
			// TieB is the handle so triples are unique — the
			// simulator's (key, task, seq) triples are, too.
			e := Entry{
				Key:  rng.Int64N(50),
				TieA: rng.Int64N(5),
				TieB: int64(nextH),
				H:    nextH,
			}
			nextH++
			h.Push(e)
			model[e.H] = e
		case op == 2: // pop min
			var want Entry
			first := true
			for _, e := range model {
				if first || e.less(want) {
					want, first = e, false
				}
			}
			got := h.PopMin()
			if got != want {
				t.Fatalf("step %d: popped %+v, want %+v", step, got, want)
			}
			delete(model, got.H)
		default: // remove a random live handle
			hs := make([]int32, 0, len(model))
			for k := range model {
				hs = append(hs, k)
			}
			sort.Slice(hs, func(a, b int) bool { return hs[a] < hs[b] })
			hd := hs[rng.IntN(len(hs))]
			if !h.Remove(hd) {
				t.Fatalf("step %d: Remove(%d) failed", step, hd)
			}
			delete(model, hd)
		}
		if h.Len() != len(model) {
			t.Fatalf("step %d: len %d vs model %d", step, h.Len(), len(model))
		}
		for hd := range model {
			if !h.Contains(hd) {
				t.Fatalf("step %d: handle %d lost", step, hd)
			}
		}
	}
}
