package sched

// Regression test for the event-probe fix: the seed dispatcher
// recomputed the next-event instant from scratch on every loop
// iteration (twice per executing iteration, counting the slice-clamp
// probe). The engine caches it and recomputes only when the event
// calendar actually changes, so the probe count is bounded by the
// number of event-consuming rounds — not by the number of dispatch
// iterations.

import (
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/task"
)

func TestNextEventProbedOncePerCalendarChange(t *testing.T) {
	// A preemption-heavy workload: the short task's 100 releases carve
	// the long job into ~100 slices. A per-iteration recompute would
	// probe on every slice (~300 probes); the cached calendar probes
	// once per release round plus the initial computation.
	cfg := Config{
		Assignments: []Assignment{
			{Task: &task.Task{ID: 0, Period: rtime.FromMillis(10), Deadline: rtime.FromMillis(10),
				LocalWCET: rtime.FromMillis(2), LocalBenefit: 1}},
			{Task: &task.Task{ID: 1, Period: rtime.FromMillis(1000), Deadline: rtime.FromMillis(1000),
				LocalWCET: rtime.FromMillis(500), LocalBenefit: 1}},
		},
		Horizon: rtime.FromSeconds(1),
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	s := newSim(&cfg)
	s.run()

	if got := s.res.PerTask[0].Finished; got != 100 {
		t.Fatalf("task 0 finished %d jobs, want 100", got)
	}
	if got := s.res.PerTask[1].Finished; got != 1 {
		t.Fatalf("task 1 finished %d jobs, want 1", got)
	}
	// 100 distinct release instants (both tasks release at t=0 in one
	// admit round) + the initial computation; local completions under
	// ContinueLate do not touch the calendar. Small slack for the
	// final drained-calendar probe.
	const bound = 105
	if s.probes > bound {
		t.Fatalf("nextEvent probed %d times, want ≤ %d — is the dispatch loop recomputing per iteration?", s.probes, bound)
	}
	if s.probes < 100 {
		t.Fatalf("nextEvent probed only %d times; probe accounting broken", s.probes)
	}
}
