package sched

import (
	"testing"

	"rtoffload/internal/benefit"
	"rtoffload/internal/dbf"
	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

func ms(v int64) rtime.Duration { return rtime.FromMillis(v) }

// localTask builds a plain local task.
func localTask(id int, c, d, t rtime.Duration) *task.Task {
	return &task.Task{
		ID: id, Period: t, Deadline: d, LocalWCET: c, LocalBenefit: 1,
	}
}

// offloadTask builds an offloadable task with one level.
func offloadTask(id int, c1, c2, c3, d, t, r rtime.Duration, gain float64) *task.Task {
	return &task.Task{
		ID: id, Period: t, Deadline: d,
		LocalWCET: c2, Setup: c1, Compensation: c2, PostProcess: c3,
		LocalBenefit: 1,
		Levels:       []task.Level{{Response: r, Benefit: gain, PayloadBytes: 1000}},
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{
		Assignments: []Assignment{{Task: localTask(1, ms(2), ms(10), ms(10))}},
		Horizon:     ms(100),
	}
	if _, err := Run(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero horizon", Config{Assignments: good.Assignments}},
		{"no assignments", Config{Horizon: ms(10)}},
		{"nil task", Config{Horizon: ms(10), Assignments: []Assignment{{}}}},
		{"duplicate IDs", Config{Horizon: ms(10), Assignments: []Assignment{
			{Task: localTask(1, ms(1), ms(10), ms(10))},
			{Task: localTask(1, ms(1), ms(10), ms(10))},
		}}},
		{"offload without server", Config{Horizon: ms(10), Assignments: []Assignment{
			{Task: offloadTask(1, ms(1), ms(2), 0, ms(10), ms(10), ms(5), 2), Offload: true},
		}}},
		{"level out of range", Config{Horizon: ms(10), Server: server.Fixed{}, Assignments: []Assignment{
			{Task: offloadTask(1, ms(1), ms(2), 0, ms(10), ms(10), ms(5), 2), Offload: true, Level: 3},
		}}},
		{"jitter without RNG", Config{Horizon: ms(10), ReleaseJitter: ms(1),
			Assignments: good.Assignments}},
		{"bad policy", Config{Horizon: ms(10), Policy: Policy(9), Assignments: good.Assignments}},
	}
	for _, c := range cases {
		if _, err := Run(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestLocalEDFSchedule(t *testing.T) {
	// τ1: C=3, D=T=10; τ2: C=4, D=T=20. EDF: τ1 first each time.
	cfg := Config{
		Assignments: []Assignment{
			{Task: localTask(1, ms(3), ms(10), ms(10))},
			{Task: localTask(2, ms(4), ms(20), ms(20))},
		},
		Horizon:     ms(40),
		RecordTrace: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("misses = %d", res.Misses)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	st1, st2 := res.PerTask[1], res.PerTask[2]
	if st1.Released != 4 || st2.Released != 2 {
		t.Fatalf("released = %d, %d", st1.Released, st2.Released)
	}
	if st1.Finished != 4 || st2.Finished != 2 {
		t.Fatalf("finished = %d, %d", st1.Finished, st2.Finished)
	}
	if st1.LocalRuns != 4 || st1.Hits != 0 || st1.Compensations != 0 {
		t.Fatalf("outcome counts wrong: %+v", st1)
	}
	// Busy time = 4·3 + 2·4 = 20ms.
	if b := res.Trace.TotalBusy(); b != ms(20) {
		t.Fatalf("busy = %v", b)
	}
}

func TestOffloadHitPath(t *testing.T) {
	// Server returns in 5ms, budget 8ms → post-processing runs.
	tk := offloadTask(1, ms(2), ms(6), ms(1), ms(30), ms(30), ms(8), 5)
	cfg := Config{
		Assignments: []Assignment{{Task: tk, Offload: true}},
		Server:      server.Fixed{Latency: ms(5)},
		Horizon:     ms(90),
		RecordTrace: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("misses = %d", res.Misses)
	}
	st := res.PerTask[1]
	if st.Hits != 3 || st.Compensations != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Each job: setup [k, k+2), result at k+7, post [k+7, k+8).
	for _, j := range res.Jobs {
		wantFinish := j.Release.Add(ms(8))
		if j.Finish != wantFinish {
			t.Fatalf("job %d finish = %v, want %v", j.Seq, j.Finish, wantFinish)
		}
		if j.Outcome != OffloadHit || j.Benefit != 5 {
			t.Fatalf("job %d outcome %v benefit %g", j.Seq, j.Outcome, j.Benefit)
		}
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("trace: %v", err)
	}
	// Benefit: 3 jobs × benefit 5 = 15; baseline 3 × 1.
	if res.TotalBenefit != 15 || res.TotalBaseline != 3 {
		t.Fatalf("benefit %g baseline %g", res.TotalBenefit, res.TotalBaseline)
	}
	if res.NormalizedBenefit() != 5 {
		t.Fatalf("normalized = %g", res.NormalizedBenefit())
	}
}

func TestOffloadTimeoutCompensation(t *testing.T) {
	// Server never responds: every job compensates, still no misses.
	tk := offloadTask(1, ms(2), ms(6), ms(1), ms(30), ms(30), ms(8), 5)
	cfg := Config{
		Assignments: []Assignment{{Task: tk, Offload: true}},
		Server:      server.Fixed{Lost: true},
		Horizon:     ms(90),
		RecordTrace: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("misses = %d", res.Misses)
	}
	st := res.PerTask[1]
	if st.Compensations != 3 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Timer expiry: setup done at k+2, wake at k+10, comp 6ms → k+16.
	for _, j := range res.Jobs {
		if j.Finish != j.Release.Add(ms(16)) {
			t.Fatalf("job finish = %v, want release+16ms", j.Finish)
		}
		if j.Outcome != OffloadMissed || j.Benefit != 1 {
			t.Fatalf("outcome %v benefit %g", j.Outcome, j.Benefit)
		}
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("trace: %v", err)
	}
}

func TestLateResponseIsCompensated(t *testing.T) {
	// Response arrives at 9ms > budget 8ms: compensation, not post.
	tk := offloadTask(1, ms(2), ms(6), ms(1), ms(30), ms(30), ms(8), 5)
	cfg := Config{
		Assignments: []Assignment{{Task: tk, Offload: true}},
		Server:      server.Fixed{Latency: ms(9)},
		Horizon:     ms(30),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerTask[1].Compensations != 1 || res.PerTask[1].Hits != 0 {
		t.Fatalf("stats = %+v", res.PerTask[1])
	}
}

func TestBoundaryResponseExactlyAtBudget(t *testing.T) {
	// "Returns within the response time Ri" includes latency == Ri.
	tk := offloadTask(1, ms(2), ms(6), ms(1), ms(30), ms(30), ms(8), 5)
	cfg := Config{
		Assignments: []Assignment{{Task: tk, Offload: true}},
		Server:      server.Fixed{Latency: ms(8)},
		Horizon:     ms(30),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerTask[1].Hits != 1 {
		t.Fatalf("stats = %+v", res.PerTask[1])
	}
}

func TestZeroPostProcessing(t *testing.T) {
	// C3 = 0: job completes the instant the result arrives.
	tk := offloadTask(1, ms(2), ms(6), 0, ms(30), ms(30), ms(8), 5)
	cfg := Config{
		Assignments: []Assignment{{Task: tk, Offload: true}},
		Server:      server.Fixed{Latency: ms(4)},
		Horizon:     ms(30),
		RecordTrace: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Finish != rtime.Instant(ms(6)) { // setup 2 + latency 4
		t.Fatalf("finish = %v, want 6ms", res.Jobs[0].Finish)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("trace: %v", err)
	}
}

// The §5.1 motivation: naive EDF misses a deadline that deadline
// splitting meets.
func TestSplitBeatsNaiveEDF(t *testing.T) {
	// τ1 offloaded: C1=2, C2=8, D=T=20, R=10 → D1=2.
	// τ2 local, constrained: C=8, D=10, T=20.
	t1 := offloadTask(1, ms(2), ms(8), 0, ms(20), ms(20), ms(10), 5)
	t2 := localTask(2, ms(8), ms(10), ms(20))
	mk := func(p Policy) *Result {
		res, err := Run(Config{
			Assignments: []Assignment{
				{Task: t1, Offload: true},
				{Task: t2},
			},
			Server:      server.Fixed{Lost: true}, // worst case: always compensate
			Horizon:     ms(40),
			Policy:      p,
			RecordTrace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	naive := mk(NaiveEDF)
	if naive.Misses == 0 {
		t.Fatal("naive EDF unexpectedly schedulable")
	}
	split := mk(SplitEDF)
	if split.Misses != 0 {
		t.Fatalf("split EDF missed %d deadlines", split.Misses)
	}
	if err := split.Trace.Validate(); err != nil {
		t.Fatalf("split trace: %v", err)
	}
	if err := naive.Trace.Validate(); err != nil {
		t.Fatalf("naive trace: %v", err)
	}
}

// Any system accepted by Theorem 3 stays miss-free in simulation, even
// against an adversarial server that never responds and with sporadic
// release jitter. 150 deterministic random systems.
func TestTheorem3ImpliesNoSimMisses(t *testing.T) {
	rng := stats.NewRNG(2024)
	accepted := 0
	for trial := 0; trial < 150; trial++ {
		n := rng.IntN(6) + 2
		var asgs []Assignment
		var off []dbf.Offloaded
		var loc []dbf.Sporadic
		maxT := rtime.Duration(0)
		for i := 0; i < n; i++ {
			period := ms(rng.UniformInt(20, 200))
			if period > maxT {
				maxT = period
			}
			c := rtime.Duration(rng.Int64N(int64(period/6))) + 1
			if rng.Bool(0.5) {
				tk := localTask(i, c, period, period)
				asgs = append(asgs, Assignment{Task: tk})
				s, err := dbf.NewSporadic(c, period, period)
				if err != nil {
					t.Fatal(err)
				}
				loc = append(loc, s)
			} else {
				c1 := rtime.Duration(rng.Int64N(int64(c))) + 1
				r := rtime.Duration(rng.Int64N(int64(period / 2)))
				o, err := dbf.NewOffloaded(c1, c, period, period, r)
				if err != nil {
					continue
				}
				tk := offloadTask(i, c1, c, c/2, period, period, r, 3)
				asgs = append(asgs, Assignment{Task: tk, Offload: true})
				off = append(off, o)
			}
		}
		if len(asgs) == 0 {
			continue
		}
		if _, ok := dbf.Theorem3(off, loc); !ok {
			continue
		}
		accepted++
		// Two adversaries: never-responding server (all compensations)
		// and a jittery slow server (mix of hits and timeouts).
		servers := []server.Server{
			server.Fixed{Lost: true},
			server.Fixed{Latency: ms(rng.UniformInt(1, 100))},
		}
		for si, srv := range servers {
			res, err := Run(Config{
				Assignments:   asgs,
				Server:        srv,
				Horizon:       8 * maxT,
				ReleaseJitter: ms(rng.UniformInt(0, 10)),
				RNG:           rng.Fork(),
				RecordTrace:   trial%10 == 0, // traces are O(n²) to check
			})
			if err != nil {
				t.Fatalf("trial %d server %d: %v", trial, si, err)
			}
			if res.Misses != 0 {
				t.Fatalf("trial %d server %d: %d misses despite Theorem 3", trial, si, res.Misses)
			}
			if res.Trace != nil {
				if err := res.Trace.Validate(); err != nil {
					t.Fatalf("trial %d server %d: trace: %v", trial, si, err)
				}
			}
		}
	}
	if accepted < 30 {
		t.Fatalf("only %d accepted systems; generator too tight", accepted)
	}
}

func TestOutcomeCountsConsistent(t *testing.T) {
	rng := stats.NewRNG(31)
	fn := benefit.MustNew(0,
		benefit.Point{R: ms(5), Value: 0.5},
		benefit.Point{R: ms(9), Value: 0.9},
	)
	tk := offloadTask(1, ms(1), ms(3), ms(1), ms(20), ms(20), ms(9), 4)
	srv := server.NewCDF(rng.Fork(), map[int]server.ResponseSampler{1: fn})
	res, err := Run(Config{
		Assignments: []Assignment{{Task: tk, Offload: true}, {Task: localTask(2, ms(2), ms(15), ms(15))}},
		Server:      srv,
		Horizon:     rtime.FromSeconds(20),
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, st := range res.PerTask {
		if st.Hits+st.Compensations+st.LocalRuns != st.Finished {
			t.Fatalf("task %d: outcome counts %d+%d+%d != finished %d",
				id, st.Hits, st.Compensations, st.LocalRuns, st.Finished)
		}
		if st.Finished != st.Released {
			t.Fatalf("task %d: %d released, %d finished", id, st.Released, st.Finished)
		}
	}
	// ~90 % of offloaded jobs should hit (budget at the 0.9 point).
	st := res.PerTask[1]
	frac := float64(st.Hits) / float64(st.Finished)
	if frac < 0.8 || frac > 0.98 {
		t.Fatalf("hit fraction = %g, want ≈0.9", frac)
	}
	if res.Misses != 0 {
		t.Fatalf("misses = %d", res.Misses)
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() *Result {
		rng := stats.NewRNG(5)
		fn := benefit.MustNew(0, benefit.Point{R: ms(8), Value: 0.7})
		tk := offloadTask(1, ms(1), ms(3), ms(1), ms(20), ms(20), ms(8), 4)
		srv := server.NewCDF(rng.Fork(), map[int]server.ResponseSampler{1: fn})
		res, err := Run(Config{
			Assignments:   []Assignment{{Task: tk, Offload: true}},
			Server:        srv,
			Horizon:       rtime.FromSeconds(5),
			ReleaseJitter: ms(3),
			RNG:           rng.Fork(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.TotalBenefit != b.TotalBenefit || len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("non-deterministic: %g/%d vs %g/%d",
			a.TotalBenefit, len(a.Jobs), b.TotalBenefit, len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if SplitEDF.String() != "split-edf" || NaiveEDF.String() != "naive-edf" {
		t.Error("policy names")
	}
	if Policy(7).String() == "" {
		t.Error("unknown policy name empty")
	}
}

func TestNormalizedBenefitEmptyBaseline(t *testing.T) {
	r := &Result{}
	if r.NormalizedBenefit() != 1 {
		t.Error("empty baseline should normalize to 1")
	}
}
