package sched_test

import (
	"fmt"

	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/task"
)

// ExampleRun simulates one offloaded task against a server that never
// answers: the compensation timer preserves every deadline.
func ExampleRun() {
	ms := rtime.FromMillis
	tk := &task.Task{
		ID: 1, Period: ms(30), Deadline: ms(30),
		LocalWCET: ms(6), Setup: ms(2), Compensation: ms(6),
		LocalBenefit: 1,
		Levels:       []task.Level{{Response: ms(8), Benefit: 5}},
	}
	res, err := sched.Run(sched.Config{
		Assignments: []sched.Assignment{{Task: tk, Offload: true}},
		Server:      server.Fixed{Lost: true},
		Horizon:     ms(90),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	st := res.PerTask[1]
	fmt.Printf("jobs=%d compensations=%d misses=%d\n", st.Released, st.Compensations, res.Misses)
	// Output:
	// jobs=3 compensations=3 misses=0
}

// ExampleRun_policies contrasts the paper's deadline splitting with
// naive EDF on the §5.1 failure case.
func ExampleRun_policies() {
	ms := rtime.FromMillis
	offloaded := &task.Task{
		ID: 1, Period: ms(20), Deadline: ms(20),
		LocalWCET: ms(8), Setup: ms(2), Compensation: ms(8),
		LocalBenefit: 1,
		Levels:       []task.Level{{Response: ms(10), Benefit: 5}},
	}
	local := &task.Task{ID: 2, Period: ms(20), Deadline: ms(10), LocalWCET: ms(8), LocalBenefit: 1}
	for _, p := range []sched.Policy{sched.SplitEDF, sched.NaiveEDF} {
		res, err := sched.Run(sched.Config{
			Assignments: []sched.Assignment{{Task: offloaded, Offload: true}, {Task: local}},
			Server:      server.Fixed{Lost: true},
			Horizon:     ms(40),
			Policy:      p,
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s: misses=%d\n", p, res.Misses)
	}
	// Output:
	// split-edf: misses=0
	// naive-edf: misses=3
}
