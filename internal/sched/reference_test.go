package sched

// reference_test.go retains the original linear-scan dispatcher as a
// test-only oracle for the event-calendar engine. It is the seed
// implementation verbatim except for two deliberate alignments with
// the engine's determinism contract:
//
//   - the wake and deadline queues break ties on (task ID, seq) —
//     the seed left equal keys in container/heap's arbitrary order,
//     which is unobservable except through the exact interleavings
//     the differential tests compare;
//   - trace segments go through trace.Append, so the coalescing
//     invariant holds for both recorders and the engine's different
//     (but content-equal) slice boundaries compare equal.
//
// Everything else keeps the seed's shape on purpose: per-assignment
// linear release scans, nextEvent recomputed from scratch at every
// use, lazy deletion of aborted jobs (their pending wake timers still
// count as events — the behavior the engine's phantomEnd reproduces),
// and map-backed FixedPriority ranks.

import (
	"container/heap"
	"fmt"
	"sort"

	"rtoffload/internal/dbf"
	"rtoffload/internal/rtime"
	"rtoffload/internal/trace"
)

type refJob struct {
	asg      *Assignment
	seq      int64
	release  rtime.Instant
	deadline rtime.Instant

	phase       jobPhase
	kind        trace.Kind
	subDeadline rtime.Instant
	subRelease  rtime.Instant
	wcet        rtime.Duration
	remaining   rtime.Duration

	prio int64

	wake    rtime.Instant
	hit     bool
	aborted bool
}

// refReady orders runnable sub-jobs by (priority, task ID, seq).
type refReady []*refJob

func (q refReady) Len() int { return len(q) }
func (q refReady) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	if a.asg.Task.ID != b.asg.Task.ID {
		return a.asg.Task.ID < b.asg.Task.ID
	}
	return a.seq < b.seq
}
func (q refReady) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refReady) Push(x interface{}) { *q = append(*q, x.(*refJob)) }
func (q *refReady) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// refWaking orders suspended jobs by (wake, task ID, seq).
type refWaking []*refJob

func (q refWaking) Len() int { return len(q) }
func (q refWaking) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.wake != b.wake {
		return a.wake < b.wake
	}
	if a.asg.Task.ID != b.asg.Task.ID {
		return a.asg.Task.ID < b.asg.Task.ID
	}
	return a.seq < b.seq
}
func (q refWaking) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refWaking) Push(x interface{}) { *q = append(*q, x.(*refJob)) }
func (q *refWaking) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// refDeadlines orders live jobs by (absolute deadline, task ID, seq).
type refDeadlines []*refJob

func (q refDeadlines) Len() int { return len(q) }
func (q refDeadlines) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	if a.asg.Task.ID != b.asg.Task.ID {
		return a.asg.Task.ID < b.asg.Task.ID
	}
	return a.seq < b.seq
}
func (q refDeadlines) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refDeadlines) Push(x interface{}) { *q = append(*q, x.(*refJob)) }
func (q *refDeadlines) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

type refSim struct {
	cfg *Config
	res *Result

	now    rtime.Instant
	ready  refReady
	waking refWaking

	nextRelease []rtime.Instant
	seq         []int64
	rank        map[int]int64
	deadlines   refDeadlines
}

// runReference executes the simulation on the reference dispatcher.
func runReference(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &refSim{cfg: &cfg, res: &Result{
		PerTask: make(map[int]*TaskStats, len(cfg.Assignments)),
		Horizon: cfg.Horizon,
		Policy:  cfg.Policy,
	}}
	if cfg.RecordTrace {
		s.res.Trace = &trace.Trace{}
	}
	s.run()
	return s.res, nil
}

func (s *refSim) prioOf(j *refJob) int64 {
	if s.cfg.Policy == FixedPriority {
		return s.rank[j.asg.Task.ID]
	}
	return int64(j.subDeadline)
}

func (s *refSim) run() {
	cfg := s.cfg
	s.nextRelease = make([]rtime.Instant, len(cfg.Assignments))
	s.seq = make([]int64, len(cfg.Assignments))
	for i := range cfg.Assignments {
		t := cfg.Assignments[i].Task
		s.res.PerTask[t.ID] = &TaskStats{TaskID: t.ID}
	}
	if cfg.Policy == FixedPriority {
		type dt struct {
			d  rtime.Duration
			id int
		}
		order := make([]dt, 0, len(cfg.Assignments))
		for i := range cfg.Assignments {
			t := cfg.Assignments[i].Task
			order = append(order, dt{t.Deadline, t.ID})
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].d != order[j].d {
				return order[i].d < order[j].d
			}
			return order[i].id < order[j].id
		})
		s.rank = make(map[int]int64, len(order))
		for r, o := range order {
			s.rank[o.id] = int64(r)
		}
	}
	horizon := rtime.Instant(cfg.Horizon)

	for {
		s.admit(horizon)
		if len(s.ready) == 0 {
			next := s.nextEvent(horizon)
			if next == rtime.Forever {
				s.res.Makespan = rtime.Duration(s.now)
				break
			}
			s.now = next
			continue
		}
		j := s.ready[0]
		if j.aborted {
			heap.Pop(&s.ready)
			continue
		}
		slice := j.remaining
		if next := s.nextEvent(horizon); next != rtime.Forever {
			if gap := next.Sub(s.now); gap < slice {
				slice = gap
			}
		}
		start := s.now
		s.now = s.now.Add(slice)
		j.remaining -= slice
		s.res.CPUBusy += slice
		if s.res.Trace != nil {
			s.res.Trace.Append(trace.Segment{
				Start: start, End: s.now,
				Sub: trace.SubID{TaskID: j.asg.Task.ID, Seq: j.seq, Kind: j.kind},
			})
		}
		if j.remaining == 0 {
			heap.Pop(&s.ready)
			s.complete(j)
		}
	}
}

func (s *refSim) admit(horizon rtime.Instant) {
	for i := range s.cfg.Assignments {
		for s.nextRelease[i] <= s.now && s.nextRelease[i] < horizon {
			s.release(i, s.nextRelease[i])
			s.advanceRelease(i)
		}
	}
	for len(s.waking) > 0 && s.waking[0].wake <= s.now {
		j := heap.Pop(&s.waking).(*refJob)
		if j.aborted {
			continue
		}
		s.resume(j)
	}
	if s.cfg.OnMiss == AbortAtDeadline {
		for len(s.deadlines) > 0 && s.deadlines[0].deadline <= s.now {
			j := heap.Pop(&s.deadlines).(*refJob)
			if j.phase == phaseDone || j.aborted {
				continue
			}
			s.abort(j)
		}
	}
}

func (s *refSim) abort(j *refJob) {
	j.aborted = true
	if j.phase == phaseFirst || j.phase == phaseSecond {
		s.recordSubAbandoned(j)
	}
	t := j.asg.Task
	st := s.res.PerTask[t.ID]
	st.Misses++
	st.Aborted++
	s.res.Misses++
	outcome := RanLocal
	if j.asg.Offload {
		outcome = OffloadMissed
	}
	s.res.Jobs = append(s.res.Jobs, JobResult{
		TaskID:   t.ID,
		Seq:      j.seq,
		Release:  j.release,
		Deadline: j.deadline,
		Finish:   j.deadline,
		Outcome:  outcome,
		Missed:   true,
		Finished: false,
	})
	j.phase = phaseDone
}

func (s *refSim) recordSubAbandoned(j *refJob) {
	if s.res.Trace == nil {
		return
	}
	s.res.Trace.Subs = append(s.res.Trace.Subs, trace.SubRecord{
		Sub:         trace.SubID{TaskID: j.asg.Task.ID, Seq: j.seq, Kind: j.kind},
		Release:     j.subRelease,
		Deadline:    j.subDeadline,
		WCET:        j.wcet,
		Abandoned:   true,
		AbandonTime: s.now,
	})
}

func (s *refSim) nextEvent(horizon rtime.Instant) rtime.Instant {
	next := rtime.Forever
	for i := range s.cfg.Assignments {
		if r := s.nextRelease[i]; r < horizon && r < next {
			next = r
		}
	}
	if len(s.waking) > 0 && s.waking[0].wake < next {
		next = s.waking[0].wake
	}
	if s.cfg.OnMiss == AbortAtDeadline {
		for len(s.deadlines) > 0 && (s.deadlines[0].phase == phaseDone || s.deadlines[0].aborted) {
			heap.Pop(&s.deadlines)
		}
		if len(s.deadlines) > 0 && s.deadlines[0].deadline < next {
			next = s.deadlines[0].deadline
		}
	}
	return next
}

func (s *refSim) advanceRelease(i int) {
	t := s.cfg.Assignments[i].Task
	gap := t.Period
	if s.cfg.ReleaseJitter > 0 {
		gap += rtime.Duration(s.cfg.RNG.Int64N(int64(s.cfg.ReleaseJitter) + 1))
	}
	s.nextRelease[i] = s.nextRelease[i].Add(gap)
}

func (s *refSim) release(i int, at rtime.Instant) {
	a := &s.cfg.Assignments[i]
	t := a.Task
	j := &refJob{
		asg:      a,
		seq:      s.seq[i],
		release:  at,
		deadline: at.Add(t.Deadline),
		phase:    phaseFirst,
	}
	s.seq[i]++
	st := s.res.PerTask[t.ID]
	st.Released++
	st.BaselineSum += t.LocalBenefit
	s.res.TotalBaseline += t.EffectiveWeight() * t.LocalBenefit

	if a.Offload {
		j.kind = trace.Setup
		j.wcet = t.SetupAt(a.Level)
		switch s.cfg.Policy {
		case SplitEDF:
			d1, err := dbf.SplitDeadline(t.SetupAt(a.Level), t.SecondPhaseAt(a.Level), t.Deadline, a.Budget())
			if err != nil {
				panic(fmt.Sprintf("sched: split deadline: %v", err))
			}
			j.subDeadline = at.Add(d1)
		case NaiveEDF, FixedPriority:
			j.subDeadline = j.deadline
		}
	} else {
		j.kind = trace.Local
		j.wcet = t.LocalWCET
		j.subDeadline = j.deadline
	}
	j.remaining = j.wcet
	j.subRelease = at
	j.prio = s.prioOf(j)
	heap.Push(&s.ready, j)
	if s.cfg.OnMiss == AbortAtDeadline {
		heap.Push(&s.deadlines, j)
	}
}

func (s *refSim) complete(j *refJob) {
	s.recordSub(j, true)
	t := j.asg.Task
	switch j.phase {
	case phaseFirst:
		if !j.asg.Offload {
			s.finishJob(j, RanLocal, t.LocalBenefit)
			return
		}
		level := t.Levels[j.asg.Level]
		srv := s.cfg.Server
		if level.ServerID != "" {
			srv = s.cfg.Servers[level.ServerID]
		}
		resp := srv.Respond(s.now, t.ID, level.PayloadBytes)
		if resp.Latency < 0 {
			resp.Latency = 0
		}
		budget := j.asg.Budget()
		if resp.Arrives && resp.Latency <= budget {
			j.hit = true
			j.wake = s.now.Add(resp.Latency)
		} else {
			j.hit = false
			j.wake = s.now.Add(budget)
		}
		j.phase = phaseSuspended
		s.res.RadioBusy += j.wake.Sub(s.now)
		heap.Push(&s.waking, j)
	case phaseSecond:
		if j.hit {
			s.finishJob(j, OffloadHit, t.Levels[j.asg.Level].Benefit)
		} else {
			s.finishJob(j, OffloadMissed, t.LocalBenefit)
		}
	default:
		panic("sched: completing job in unexpected phase")
	}
}

func (s *refSim) resume(j *refJob) {
	t := j.asg.Task
	j.phase = phaseSecond
	j.subRelease = j.wake
	j.subDeadline = j.deadline
	j.prio = s.prioOf(j)
	if j.hit {
		j.kind = trace.Post
		j.wcet = t.PostProcessAt(j.asg.Level)
	} else {
		j.kind = trace.Comp
		j.wcet = t.CompensationAt(j.asg.Level)
	}
	j.remaining = j.wcet
	if j.wcet == 0 {
		s.recordSub(j, true)
		if j.hit {
			s.finishJob(j, OffloadHit, t.Levels[j.asg.Level].Benefit)
		} else {
			s.finishJob(j, OffloadMissed, t.LocalBenefit)
		}
		return
	}
	heap.Push(&s.ready, j)
}

func (s *refSim) recordSub(j *refJob, completed bool) {
	if s.res.Trace == nil {
		return
	}
	rec := trace.SubRecord{
		Sub:      trace.SubID{TaskID: j.asg.Task.ID, Seq: j.seq, Kind: j.kind},
		Release:  j.subRelease,
		Deadline: j.subDeadline,
		WCET:     j.wcet,
	}
	if completed {
		rec.Completed = true
		rec.Completion = s.now
	}
	s.res.Trace.Subs = append(s.res.Trace.Subs, rec)
}

func (s *refSim) finishJob(j *refJob, out Outcome, benefit float64) {
	j.phase = phaseDone
	t := j.asg.Task
	st := s.res.PerTask[t.ID]
	missed := s.now > j.deadline
	jr := JobResult{
		TaskID:   t.ID,
		Seq:      j.seq,
		Release:  j.release,
		Deadline: j.deadline,
		Finish:   s.now,
		Outcome:  out,
		Benefit:  benefit,
		Missed:   missed,
		Finished: true,
	}
	s.res.Jobs = append(s.res.Jobs, jr)
	st.Finished++
	switch out {
	case RanLocal:
		st.LocalRuns++
	case OffloadHit:
		st.Hits++
	case OffloadMissed:
		st.Compensations++
		if t.GuaranteedAt(j.asg.Level) {
			st.BoundViolations++
		}
	}
	if missed {
		st.Misses++
		s.res.Misses++
	}
	st.BenefitSum += benefit
	s.res.TotalBenefit += t.EffectiveWeight() * benefit
	lat := s.now.Sub(j.release)
	if lat > st.WorstLatency {
		st.WorstLatency = lat
	}
	if s.cfg.CollectLatencies {
		st.Latencies = append(st.Latencies, lat)
	}
}
