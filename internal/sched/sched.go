// Package sched simulates the paper's EDF-based scheduling algorithm
// (§5.1) on a single preemptive processor.
//
// A job of an offloaded task is split into two sub-jobs: the setup
// sub-job (Ci,1) receives the proportional relative deadline
// Di,1 = Ci,1·(Di−Ri)/(Ci,1+Ci,2); when it completes, the offload
// request goes to the (timing unreliable) server and the task
// self-suspends. The second sub-job is triggered either by the result
// returning within Ri — post-processing, Ci,3 — or by the Ri timer
// expiring — local compensation, Ci,2. Either way its absolute
// deadline is the job's original release + Di. All ready sub-jobs are
// dispatched by plain EDF over their absolute deadlines.
//
// The simulator is an event-calendar engine: pending releases, wake
// timers, and (under AbortAtDeadline) job deadlines live in typed
// index-tracked min-heaps (package eventq), so every scheduling event
// costs O(log n) and the steady state allocates nothing — job records
// are recycled through a free list. It is event-driven and exact on
// the microsecond grid, can record full execution traces for the
// invariant checkers in package trace, and also implements the
// naive-EDF baseline the paper argues against (both phases sharing
// the absolute deadline release+Di). engine_probe_test.go and the
// differential tests in diff_test.go pin the engine to the retained
// reference dispatcher (reference_test.go): same Result, same
// per-task statistics, same traces, on every policy.
package sched

import (
	"fmt"

	"rtoffload/internal/dbf"
	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
	"rtoffload/internal/trace"
)

// Policy selects the deadline-assignment rule for offloaded jobs.
type Policy int

const (
	// SplitEDF is the paper's algorithm: the setup sub-job gets the
	// proportional deadline Di,1.
	SplitEDF Policy = iota
	// NaiveEDF assigns both phases the job's full absolute deadline —
	// the strawman of §5.1 that performs poorly.
	NaiveEDF
	// FixedPriority dispatches by deadline-monotonic task priorities
	// (both phases of an offloaded job inherit the task's priority) —
	// the classic alternative the paper rules out for self-suspending
	// tasks, citing Ridouard et al. Included as a baseline for the FP
	// ablation; pair it with rta.SuspensionOblivious for analysis.
	FixedPriority
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case SplitEDF:
		return "split-edf"
	case NaiveEDF:
		return "naive-edf"
	case FixedPriority:
		return "fixed-priority"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Assignment binds a task to its offloading decision.
type Assignment struct {
	Task *task.Task
	// Offload selects offloaded execution at the given level; false
	// means pure local execution and Level is ignored.
	Offload bool
	// Level indexes Task.Levels; its Response is the budget Ri.
	Level int
}

// Budget returns Ri for offloaded assignments.
func (a Assignment) Budget() rtime.Duration {
	if !a.Offload {
		return 0
	}
	return a.Task.Levels[a.Level].Response
}

// Validate checks the assignment is internally consistent and — for
// offloaded tasks — that the split deadline exists.
func (a Assignment) Validate() error {
	if a.Task == nil {
		return fmt.Errorf("sched: assignment without task")
	}
	if err := a.Task.Validate(); err != nil {
		return err
	}
	if !a.Offload {
		return nil
	}
	if a.Level < 0 || a.Level >= len(a.Task.Levels) {
		return fmt.Errorf("sched: task %d level %d out of range", a.Task.ID, a.Level)
	}
	_, err := dbf.SplitDeadline(a.Task.SetupAt(a.Level), a.Task.SecondPhaseAt(a.Level),
		a.Task.Deadline, a.Budget())
	return err
}

// Config parameterizes one simulation run.
type Config struct {
	Assignments []Assignment
	// Server handles offload requests; required when any assignment
	// offloads a level without a ServerID.
	Server server.Server
	// Servers routes levels with a non-empty ServerID to named
	// components (edge box, cloud GPU, …).
	Servers map[string]server.Server
	// Horizon: jobs are released strictly before this instant; the run
	// then drains all released jobs.
	Horizon rtime.Duration
	// Policy selects deadline assignment (default SplitEDF).
	Policy Policy
	// ReleaseJitter > 0 makes releases sporadic: each inter-arrival is
	// Ti plus a uniform draw from [0, ReleaseJitter]. Requires RNG.
	ReleaseJitter rtime.Duration
	// RNG drives sporadic jitter; may be nil for periodic releases.
	RNG *stats.RNG
	// RecordTrace captures the full execution trace in memory (costly
	// for long runs; see TraceSink for the streaming alternative).
	RecordTrace bool
	// TraceSink streams the execution trace — coalesced segments plus
	// sub-job lifecycle events — to a trace.Sink as the run progresses,
	// so long horizons verify (trace.StreamChecker) or persist
	// (trace.BinarySink) in bounded memory. Mutually exclusive with
	// RecordTrace; the sink's Finish error surfaces from Run.
	TraceSink trace.Sink
	// OnMiss selects the overrun policy (default ContinueLate).
	OnMiss MissPolicy
	// CollectLatencies stores every job's response time per task,
	// enabling Result.LatencyPercentile.
	CollectLatencies bool
	// EventQueue selects the event-calendar representation (default
	// AutoQueue).
	EventQueue QueueMode
	// DiscardJobResults drops the per-job Result.Jobs log (the per-task
	// statistics, miss counts, and benefit totals are still collected).
	// At campaign scale the job log is the last O(jobs) allocation; the
	// aggregates are what the campaign keeps anyway.
	DiscardJobResults bool
}

// QueueMode selects the representation of the engine's time-keyed
// event queues (releases, wake timers, deadline expiries).
type QueueMode int

const (
	// AutoQueue uses binary heaps for small systems and switches the
	// time queues to hierarchical time wheels (eventq.Calendar) from
	// wheelThreshold tasks up. Both orders are bit-identical, so the
	// choice is purely a performance trade.
	AutoQueue QueueMode = iota
	// ForceHeap keeps every queue a binary heap regardless of size.
	ForceHeap
	// ForceWheel uses time wheels for the time queues at any size.
	ForceWheel
)

// wheelThreshold is the task count at which AutoQueue switches the
// time queues to wheels: below it the heaps' cache locality wins,
// above it heap depth (log n cache misses per event) dominates.
const wheelThreshold = 512

// validate checks the configuration ahead of a run; shared by the
// engine and the retained reference dispatcher.
func (cfg *Config) validate() error {
	if cfg.Horizon <= 0 {
		return fmt.Errorf("sched: horizon %v must be positive", cfg.Horizon)
	}
	if len(cfg.Assignments) == 0 {
		return fmt.Errorf("sched: no assignments")
	}
	ids := map[int]bool{}
	for i := range cfg.Assignments {
		a := &cfg.Assignments[i]
		if err := a.Validate(); err != nil {
			return err
		}
		if ids[a.Task.ID] {
			return fmt.Errorf("sched: duplicate task %d", a.Task.ID)
		}
		ids[a.Task.ID] = true
		if a.Offload {
			if id := a.Task.Levels[a.Level].ServerID; id != "" {
				if cfg.Servers[id] == nil {
					return fmt.Errorf("sched: task %d level %d routes to unknown server %q", a.Task.ID, a.Level, id)
				}
			} else if cfg.Server == nil {
				return fmt.Errorf("sched: offloaded assignments require a server")
			}
		}
	}
	if cfg.ReleaseJitter > 0 && cfg.RNG == nil {
		return fmt.Errorf("sched: release jitter requires an RNG")
	}
	if cfg.Policy != SplitEDF && cfg.Policy != NaiveEDF && cfg.Policy != FixedPriority {
		return fmt.Errorf("sched: unknown policy %d", int(cfg.Policy))
	}
	if cfg.OnMiss != ContinueLate && cfg.OnMiss != AbortAtDeadline {
		return fmt.Errorf("sched: unknown miss policy %d", int(cfg.OnMiss))
	}
	if cfg.EventQueue != AutoQueue && cfg.EventQueue != ForceHeap && cfg.EventQueue != ForceWheel {
		return fmt.Errorf("sched: unknown event queue mode %d", int(cfg.EventQueue))
	}
	if cfg.RecordTrace && cfg.TraceSink != nil {
		return fmt.Errorf("sched: RecordTrace and TraceSink are mutually exclusive; pass a *trace.Trace as the sink to materialize")
	}
	return nil
}

// MissPolicy controls what happens when a job reaches its absolute
// deadline unfinished.
type MissPolicy int

const (
	// ContinueLate keeps executing the late job (counted as a miss) —
	// late results may still be useful, and backlog cascades visibly.
	ContinueLate MissPolicy = iota
	// AbortAtDeadline discards a job's remaining work the instant its
	// deadline passes — the firm-deadline view, useful for overload
	// studies of the baselines where late frames are worthless.
	AbortAtDeadline
)

// String implements fmt.Stringer.
func (m MissPolicy) String() string {
	switch m {
	case ContinueLate:
		return "continue-late"
	case AbortAtDeadline:
		return "abort-at-deadline"
	default:
		return fmt.Sprintf("MissPolicy(%d)", int(m))
	}
}

// Outcome classifies how a job obtained its result.
type Outcome int

const (
	// RanLocal: task was assigned local execution.
	RanLocal Outcome = iota
	// OffloadHit: the server result returned within the budget.
	OffloadHit
	// OffloadMissed: the budget expired and compensation ran.
	OffloadMissed
)

// JobResult records one completed (or abandoned) job.
type JobResult struct {
	TaskID   int
	Seq      int64
	Release  rtime.Instant
	Deadline rtime.Instant
	// Finish is the completion instant of the job's last sub-job.
	Finish   rtime.Instant
	Outcome  Outcome
	Benefit  float64 // level benefit on OffloadHit, else the local benefit
	Missed   bool    // deadline miss (or unfinished at drain end)
	Finished bool
}

// TaskStats aggregates per-task counters.
type TaskStats struct {
	TaskID int
	// ServerID records which server the task's offloaded sub-jobs are
	// routed to (the assignment level's ServerID; empty for the
	// default server or for local-only tasks). Fleet runs use it to
	// attribute per-server traffic in results and traces.
	ServerID      string
	Released      int
	Finished      int
	Misses        int
	Hits          int // results served within budget
	Compensations int
	LocalRuns     int
	// BoundViolations counts compensations on levels that a declared
	// pessimistic server bound claimed could never time out (§3's
	// extension). Non-zero means the bound was wrong and the
	// configuration's analysis was unsound.
	BoundViolations int
	// Aborted counts jobs discarded by the AbortAtDeadline policy
	// (each also counts as a miss).
	Aborted    int
	BenefitSum float64
	// BaselineSum is what the task would have earned executing every
	// job locally — the normalization denominator of Figure 2.
	BaselineSum  float64
	WorstLatency rtime.Duration // worst job response time (finish − release)
	// Latencies holds every finished job's response time when
	// Config.CollectLatencies is set.
	Latencies []rtime.Duration
}

// Result is the outcome of a simulation run.
type Result struct {
	Jobs    []JobResult
	PerTask map[int]*TaskStats
	Misses  int
	Horizon rtime.Duration
	Policy  Policy
	// TotalBenefit sums job benefits weighted by task weight;
	// TotalBaseline is the all-local normalization.
	TotalBenefit  float64
	TotalBaseline float64
	// CPUBusy is the total processor time spent on sub-jobs; RadioBusy
	// the accumulated offload suspension windows (request in flight or
	// timer pending); Makespan the completion instant of the last job.
	// Together they feed the PowerModel energy account.
	CPUBusy   rtime.Duration
	RadioBusy rtime.Duration
	Makespan  rtime.Duration
	Trace     *trace.Trace
}

// NormalizedBenefit returns TotalBenefit/TotalBaseline (1.0 = no
// benefit over pure local execution), or 1 when the baseline is empty.
func (r *Result) NormalizedBenefit() float64 {
	if r.TotalBaseline <= 0 {
		return 1
	}
	return r.TotalBenefit / r.TotalBaseline
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := newSim(&cfg)
	if err := s.run(); err != nil {
		return nil, err
	}
	return s.res, nil
}

// newSim builds an engine for a validated configuration.
func newSim(cfg *Config) *sim {
	s := &sim{cfg: cfg, res: &Result{
		PerTask: make(map[int]*TaskStats, len(cfg.Assignments)),
		Horizon: cfg.Horizon,
		Policy:  cfg.Policy,
	}}
	switch {
	case cfg.RecordTrace:
		s.res.Trace = &trace.Trace{}
		s.sink = s.res.Trace
	case cfg.TraceSink != nil:
		s.sink = cfg.TraceSink
	}
	return s
}

// LatencyPercentile returns the p-th percentile (0..100) of a task's
// collected response times. It requires Config.CollectLatencies and at
// least one finished job; otherwise ok is false.
func (r *Result) LatencyPercentile(taskID int, p float64) (rtime.Duration, bool) {
	st := r.PerTask[taskID]
	if st == nil || len(st.Latencies) == 0 || p < 0 || p > 100 {
		return 0, false
	}
	xs := make([]float64, len(st.Latencies))
	for i, l := range st.Latencies {
		xs[i] = float64(l)
	}
	return rtime.Duration(stats.Percentile(xs, p)), true
}
