// Package sched simulates the paper's EDF-based scheduling algorithm
// (§5.1) on a single preemptive processor.
//
// A job of an offloaded task is split into two sub-jobs: the setup
// sub-job (Ci,1) receives the proportional relative deadline
// Di,1 = Ci,1·(Di−Ri)/(Ci,1+Ci,2); when it completes, the offload
// request goes to the (timing unreliable) server and the task
// self-suspends. The second sub-job is triggered either by the result
// returning within Ri — post-processing, Ci,3 — or by the Ri timer
// expiring — local compensation, Ci,2. Either way its absolute
// deadline is the job's original release + Di. All ready sub-jobs are
// dispatched by plain EDF over their absolute deadlines.
//
// The simulator is event-driven and exact on the microsecond grid, can
// record full execution traces for the invariant checkers in package
// trace, and also implements the naive-EDF baseline the paper argues
// against (both phases sharing the absolute deadline release+Di).
package sched

import (
	"container/heap"
	"fmt"
	"sort"

	"rtoffload/internal/dbf"
	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
	"rtoffload/internal/trace"
)

// Policy selects the deadline-assignment rule for offloaded jobs.
type Policy int

const (
	// SplitEDF is the paper's algorithm: the setup sub-job gets the
	// proportional deadline Di,1.
	SplitEDF Policy = iota
	// NaiveEDF assigns both phases the job's full absolute deadline —
	// the strawman of §5.1 that performs poorly.
	NaiveEDF
	// FixedPriority dispatches by deadline-monotonic task priorities
	// (both phases of an offloaded job inherit the task's priority) —
	// the classic alternative the paper rules out for self-suspending
	// tasks, citing Ridouard et al. Included as a baseline for the FP
	// ablation; pair it with rta.SuspensionOblivious for analysis.
	FixedPriority
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case SplitEDF:
		return "split-edf"
	case NaiveEDF:
		return "naive-edf"
	case FixedPriority:
		return "fixed-priority"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Assignment binds a task to its offloading decision.
type Assignment struct {
	Task *task.Task
	// Offload selects offloaded execution at the given level; false
	// means pure local execution and Level is ignored.
	Offload bool
	// Level indexes Task.Levels; its Response is the budget Ri.
	Level int
}

// Budget returns Ri for offloaded assignments.
func (a Assignment) Budget() rtime.Duration {
	if !a.Offload {
		return 0
	}
	return a.Task.Levels[a.Level].Response
}

// Validate checks the assignment is internally consistent and — for
// offloaded tasks — that the split deadline exists.
func (a Assignment) Validate() error {
	if a.Task == nil {
		return fmt.Errorf("sched: assignment without task")
	}
	if err := a.Task.Validate(); err != nil {
		return err
	}
	if !a.Offload {
		return nil
	}
	if a.Level < 0 || a.Level >= len(a.Task.Levels) {
		return fmt.Errorf("sched: task %d level %d out of range", a.Task.ID, a.Level)
	}
	_, err := dbf.SplitDeadline(a.Task.SetupAt(a.Level), a.Task.SecondPhaseAt(a.Level),
		a.Task.Deadline, a.Budget())
	return err
}

// Config parameterizes one simulation run.
type Config struct {
	Assignments []Assignment
	// Server handles offload requests; required when any assignment
	// offloads a level without a ServerID.
	Server server.Server
	// Servers routes levels with a non-empty ServerID to named
	// components (edge box, cloud GPU, …).
	Servers map[string]server.Server
	// Horizon: jobs are released strictly before this instant; the run
	// then drains all released jobs.
	Horizon rtime.Duration
	// Policy selects deadline assignment (default SplitEDF).
	Policy Policy
	// ReleaseJitter > 0 makes releases sporadic: each inter-arrival is
	// Ti plus a uniform draw from [0, ReleaseJitter]. Requires RNG.
	ReleaseJitter rtime.Duration
	// RNG drives sporadic jitter; may be nil for periodic releases.
	RNG *stats.RNG
	// RecordTrace captures the full execution trace (costly for long
	// runs).
	RecordTrace bool
	// OnMiss selects the overrun policy (default ContinueLate).
	OnMiss MissPolicy
	// CollectLatencies stores every job's response time per task,
	// enabling Result.LatencyPercentile.
	CollectLatencies bool
}

// MissPolicy controls what happens when a job reaches its absolute
// deadline unfinished.
type MissPolicy int

const (
	// ContinueLate keeps executing the late job (counted as a miss) —
	// late results may still be useful, and backlog cascades visibly.
	ContinueLate MissPolicy = iota
	// AbortAtDeadline discards a job's remaining work the instant its
	// deadline passes — the firm-deadline view, useful for overload
	// studies of the baselines where late frames are worthless.
	AbortAtDeadline
)

// String implements fmt.Stringer.
func (m MissPolicy) String() string {
	switch m {
	case ContinueLate:
		return "continue-late"
	case AbortAtDeadline:
		return "abort-at-deadline"
	default:
		return fmt.Sprintf("MissPolicy(%d)", int(m))
	}
}

// Outcome classifies how a job obtained its result.
type Outcome int

const (
	// RanLocal: task was assigned local execution.
	RanLocal Outcome = iota
	// OffloadHit: the server result returned within the budget.
	OffloadHit
	// OffloadMissed: the budget expired and compensation ran.
	OffloadMissed
)

// JobResult records one completed (or abandoned) job.
type JobResult struct {
	TaskID   int
	Seq      int64
	Release  rtime.Instant
	Deadline rtime.Instant
	// Finish is the completion instant of the job's last sub-job.
	Finish   rtime.Instant
	Outcome  Outcome
	Benefit  float64 // level benefit on OffloadHit, else the local benefit
	Missed   bool    // deadline miss (or unfinished at drain end)
	Finished bool
}

// TaskStats aggregates per-task counters.
type TaskStats struct {
	TaskID        int
	Released      int
	Finished      int
	Misses        int
	Hits          int // results served within budget
	Compensations int
	LocalRuns     int
	// BoundViolations counts compensations on levels that a declared
	// pessimistic server bound claimed could never time out (§3's
	// extension). Non-zero means the bound was wrong and the
	// configuration's analysis was unsound.
	BoundViolations int
	// Aborted counts jobs discarded by the AbortAtDeadline policy
	// (each also counts as a miss).
	Aborted    int
	BenefitSum float64
	// BaselineSum is what the task would have earned executing every
	// job locally — the normalization denominator of Figure 2.
	BaselineSum  float64
	WorstLatency rtime.Duration // worst job response time (finish − release)
	// Latencies holds every finished job's response time when
	// Config.CollectLatencies is set.
	Latencies []rtime.Duration
}

// Result is the outcome of a simulation run.
type Result struct {
	Jobs    []JobResult
	PerTask map[int]*TaskStats
	Misses  int
	Horizon rtime.Duration
	Policy  Policy
	// TotalBenefit sums job benefits weighted by task weight;
	// TotalBaseline is the all-local normalization.
	TotalBenefit  float64
	TotalBaseline float64
	// CPUBusy is the total processor time spent on sub-jobs; RadioBusy
	// the accumulated offload suspension windows (request in flight or
	// timer pending); Makespan the completion instant of the last job.
	// Together they feed the PowerModel energy account.
	CPUBusy   rtime.Duration
	RadioBusy rtime.Duration
	Makespan  rtime.Duration
	Trace     *trace.Trace
}

// NormalizedBenefit returns TotalBenefit/TotalBaseline (1.0 = no
// benefit over pure local execution), or 1 when the baseline is empty.
func (r *Result) NormalizedBenefit() float64 {
	if r.TotalBaseline <= 0 {
		return 1
	}
	return r.TotalBenefit / r.TotalBaseline
}

// jobPhase is the execution state of a job.
type jobPhase int

const (
	phaseFirst     jobPhase = iota // Local or Setup sub-job on the CPU
	phaseSuspended                 // waiting for server result / timer
	phaseSecond                    // Post or Comp sub-job on the CPU
	phaseDone
)

type jobState struct {
	asg      *Assignment
	seq      int64
	release  rtime.Instant
	deadline rtime.Instant // release + D

	phase       jobPhase
	kind        trace.Kind    // current sub-job kind
	subDeadline rtime.Instant // current sub-job EDF deadline
	subRelease  rtime.Instant
	wcet        rtime.Duration
	remaining   rtime.Duration

	// prio is the dispatch key: the sub-job's absolute deadline under
	// the EDF policies, the task's fixed rank under FixedPriority.
	prio int64

	wake    rtime.Instant // for phaseSuspended
	hit     bool          // result arrived within budget
	aborted bool          // discarded by AbortAtDeadline

	heapIdx int
}

// readyQueue orders runnable sub-jobs by (priority, task ID, seq).
type readyQueue []*jobState

func (q readyQueue) Len() int { return len(q) }
func (q readyQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	if a.asg.Task.ID != b.asg.Task.ID {
		return a.asg.Task.ID < b.asg.Task.ID
	}
	return a.seq < b.seq
}
func (q readyQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIdx = i
	q[j].heapIdx = j
}
func (q *readyQueue) Push(x interface{}) {
	j := x.(*jobState)
	j.heapIdx = len(*q)
	*q = append(*q, j)
}
func (q *readyQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// wakeQueue orders suspended jobs by wake instant.
type wakeQueue []*jobState

func (q wakeQueue) Len() int            { return len(q) }
func (q wakeQueue) Less(i, j int) bool  { return q[i].wake < q[j].wake }
func (q wakeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *wakeQueue) Push(x interface{}) { *q = append(*q, x.(*jobState)) }
func (q *wakeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sched: horizon %v must be positive", cfg.Horizon)
	}
	if len(cfg.Assignments) == 0 {
		return nil, fmt.Errorf("sched: no assignments")
	}
	ids := map[int]bool{}
	for i := range cfg.Assignments {
		a := &cfg.Assignments[i]
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if ids[a.Task.ID] {
			return nil, fmt.Errorf("sched: duplicate task %d", a.Task.ID)
		}
		ids[a.Task.ID] = true
		if a.Offload {
			if id := a.Task.Levels[a.Level].ServerID; id != "" {
				if cfg.Servers[id] == nil {
					return nil, fmt.Errorf("sched: task %d level %d routes to unknown server %q", a.Task.ID, a.Level, id)
				}
			} else if cfg.Server == nil {
				return nil, fmt.Errorf("sched: offloaded assignments require a server")
			}
		}
	}
	if cfg.ReleaseJitter > 0 && cfg.RNG == nil {
		return nil, fmt.Errorf("sched: release jitter requires an RNG")
	}
	if cfg.Policy != SplitEDF && cfg.Policy != NaiveEDF && cfg.Policy != FixedPriority {
		return nil, fmt.Errorf("sched: unknown policy %d", int(cfg.Policy))
	}
	if cfg.OnMiss != ContinueLate && cfg.OnMiss != AbortAtDeadline {
		return nil, fmt.Errorf("sched: unknown miss policy %d", int(cfg.OnMiss))
	}

	s := &sim{cfg: &cfg, res: &Result{
		PerTask: make(map[int]*TaskStats, len(cfg.Assignments)),
		Horizon: cfg.Horizon,
		Policy:  cfg.Policy,
	}}
	if cfg.RecordTrace {
		s.res.Trace = &trace.Trace{}
	}
	s.run()
	return s.res, nil
}

type sim struct {
	cfg *Config
	res *Result

	now    rtime.Instant
	ready  readyQueue
	waking wakeQueue

	// nextRelease[i] is the next release instant for assignment i.
	nextRelease []rtime.Instant
	seq         []int64
	// rank[taskID] is the deadline-monotonic priority under
	// FixedPriority (lower = more urgent).
	rank map[int]int64
	// deadlines orders live jobs by absolute deadline for the
	// AbortAtDeadline policy (lazy deletion).
	deadlines deadlineQueue
}

// deadlineQueue is a min-heap over job absolute deadlines.
type deadlineQueue []*jobState

func (q deadlineQueue) Len() int            { return len(q) }
func (q deadlineQueue) Less(i, j int) bool  { return q[i].deadline < q[j].deadline }
func (q deadlineQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *deadlineQueue) Push(x interface{}) { *q = append(*q, x.(*jobState)) }
func (q *deadlineQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// prioOf computes a job's dispatch key under the configured policy.
func (s *sim) prioOf(j *jobState) int64 {
	if s.cfg.Policy == FixedPriority {
		return s.rank[j.asg.Task.ID]
	}
	return int64(j.subDeadline)
}

func (s *sim) run() {
	cfg := s.cfg
	s.nextRelease = make([]rtime.Instant, len(cfg.Assignments))
	s.seq = make([]int64, len(cfg.Assignments))
	for i := range cfg.Assignments {
		t := cfg.Assignments[i].Task
		s.res.PerTask[t.ID] = &TaskStats{TaskID: t.ID}
	}
	if cfg.Policy == FixedPriority {
		// Deadline-monotonic ranks, ties by task ID.
		type dt struct {
			d  rtime.Duration
			id int
		}
		order := make([]dt, 0, len(cfg.Assignments))
		for i := range cfg.Assignments {
			t := cfg.Assignments[i].Task
			order = append(order, dt{t.Deadline, t.ID})
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].d != order[j].d {
				return order[i].d < order[j].d
			}
			return order[i].id < order[j].id
		})
		s.rank = make(map[int]int64, len(order))
		for r, o := range order {
			s.rank[o.id] = int64(r)
		}
	}
	horizon := rtime.Instant(cfg.Horizon)

	for {
		s.admit(horizon)
		if len(s.ready) == 0 {
			next := s.nextEvent(horizon)
			if next == rtime.Forever {
				s.res.Makespan = rtime.Duration(s.now)
				break
			}
			s.now = next
			continue
		}
		j := s.ready[0]
		if j.aborted { // lazy removal after AbortAtDeadline
			heap.Pop(&s.ready)
			continue
		}
		slice := j.remaining
		if next := s.nextEvent(horizon); next != rtime.Forever {
			if gap := next.Sub(s.now); gap < slice {
				slice = gap
			}
		}
		start := s.now
		s.now = s.now.Add(slice)
		j.remaining -= slice
		s.res.CPUBusy += slice
		if s.res.Trace != nil {
			s.res.Trace.Segments = append(s.res.Trace.Segments, trace.Segment{
				Start: start, End: s.now,
				Sub: trace.SubID{TaskID: j.asg.Task.ID, Seq: j.seq, Kind: j.kind},
			})
		}
		if j.remaining == 0 {
			heap.Pop(&s.ready)
			s.complete(j)
		}
	}
}

// admit moves releases and wakes due at or before now into the ready
// queue.
func (s *sim) admit(horizon rtime.Instant) {
	for i := range s.cfg.Assignments {
		for s.nextRelease[i] <= s.now && s.nextRelease[i] < horizon {
			s.release(i, s.nextRelease[i])
			s.advanceRelease(i)
		}
	}
	for len(s.waking) > 0 && s.waking[0].wake <= s.now {
		j := heap.Pop(&s.waking).(*jobState)
		if j.aborted {
			continue
		}
		s.resume(j)
	}
	if s.cfg.OnMiss == AbortAtDeadline {
		for len(s.deadlines) > 0 && s.deadlines[0].deadline <= s.now {
			j := heap.Pop(&s.deadlines).(*jobState)
			if j.phase == phaseDone || j.aborted {
				continue
			}
			s.abort(j)
		}
	}
}

// abort discards a job's remaining work at its deadline.
func (s *sim) abort(j *jobState) {
	j.aborted = true
	if j.phase == phaseFirst || j.phase == phaseSecond {
		s.recordSubAbandoned(j)
	}
	t := j.asg.Task
	st := s.res.PerTask[t.ID]
	st.Misses++
	st.Aborted++
	s.res.Misses++
	outcome := RanLocal
	if j.asg.Offload {
		outcome = OffloadMissed // never served within its budget
	}
	s.res.Jobs = append(s.res.Jobs, JobResult{
		TaskID:   t.ID,
		Seq:      j.seq,
		Release:  j.release,
		Deadline: j.deadline,
		Finish:   j.deadline,
		Outcome:  outcome,
		Missed:   true,
		Finished: false,
	})
	j.phase = phaseDone
}

// recordSubAbandoned appends an abandoned sub-job record to the trace.
func (s *sim) recordSubAbandoned(j *jobState) {
	if s.res.Trace == nil {
		return
	}
	s.res.Trace.Subs = append(s.res.Trace.Subs, trace.SubRecord{
		Sub:         trace.SubID{TaskID: j.asg.Task.ID, Seq: j.seq, Kind: j.kind},
		Release:     j.subRelease,
		Deadline:    j.subDeadline,
		WCET:        j.wcet,
		Abandoned:   true,
		AbandonTime: s.now,
	})
}

// nextEvent returns the earliest pending release, wake, or — under
// AbortAtDeadline — live deadline after now.
func (s *sim) nextEvent(horizon rtime.Instant) rtime.Instant {
	next := rtime.Forever
	for i := range s.cfg.Assignments {
		if r := s.nextRelease[i]; r < horizon && r < next {
			next = r
		}
	}
	if len(s.waking) > 0 && s.waking[0].wake < next {
		next = s.waking[0].wake
	}
	if s.cfg.OnMiss == AbortAtDeadline {
		for len(s.deadlines) > 0 && (s.deadlines[0].phase == phaseDone || s.deadlines[0].aborted) {
			heap.Pop(&s.deadlines)
		}
		if len(s.deadlines) > 0 && s.deadlines[0].deadline < next {
			next = s.deadlines[0].deadline
		}
	}
	return next
}

func (s *sim) advanceRelease(i int) {
	t := s.cfg.Assignments[i].Task
	gap := t.Period
	if s.cfg.ReleaseJitter > 0 {
		gap += rtime.Duration(s.cfg.RNG.Int64N(int64(s.cfg.ReleaseJitter) + 1))
	}
	s.nextRelease[i] = s.nextRelease[i].Add(gap)
}

// release creates the job and its first sub-job.
func (s *sim) release(i int, at rtime.Instant) {
	a := &s.cfg.Assignments[i]
	t := a.Task
	j := &jobState{
		asg:      a,
		seq:      s.seq[i],
		release:  at,
		deadline: at.Add(t.Deadline),
		phase:    phaseFirst,
	}
	s.seq[i]++
	st := s.res.PerTask[t.ID]
	st.Released++
	st.BaselineSum += t.LocalBenefit
	s.res.TotalBaseline += t.EffectiveWeight() * t.LocalBenefit

	if a.Offload {
		j.kind = trace.Setup
		j.wcet = t.SetupAt(a.Level)
		switch s.cfg.Policy {
		case SplitEDF:
			d1, err := dbf.SplitDeadline(t.SetupAt(a.Level), t.SecondPhaseAt(a.Level), t.Deadline, a.Budget())
			if err != nil {
				// Validated in Run; unreachable.
				panic(fmt.Sprintf("sched: split deadline: %v", err))
			}
			j.subDeadline = at.Add(d1)
		case NaiveEDF, FixedPriority:
			j.subDeadline = j.deadline
		}
	} else {
		j.kind = trace.Local
		j.wcet = t.LocalWCET
		j.subDeadline = j.deadline
	}
	j.remaining = j.wcet
	j.subRelease = at
	j.prio = s.prioOf(j)
	heap.Push(&s.ready, j)
	if s.cfg.OnMiss == AbortAtDeadline {
		heap.Push(&s.deadlines, j)
	}
}

// complete handles a finished sub-job.
func (s *sim) complete(j *jobState) {
	s.recordSub(j, true)
	t := j.asg.Task
	switch j.phase {
	case phaseFirst:
		if !j.asg.Offload {
			s.finishJob(j, RanLocal, t.LocalBenefit)
			return
		}
		// Issue the offload request to the level's component and
		// suspend.
		level := t.Levels[j.asg.Level]
		srv := s.cfg.Server
		if level.ServerID != "" {
			srv = s.cfg.Servers[level.ServerID]
		}
		resp := srv.Respond(s.now, t.ID, level.PayloadBytes)
		if resp.Latency < 0 {
			// A response cannot arrive before its request; clamp
			// misbehaving Server implementations to "instant".
			resp.Latency = 0
		}
		budget := j.asg.Budget()
		if resp.Arrives && resp.Latency <= budget {
			j.hit = true
			j.wake = s.now.Add(resp.Latency)
		} else {
			j.hit = false
			j.wake = s.now.Add(budget)
		}
		j.phase = phaseSuspended
		s.res.RadioBusy += j.wake.Sub(s.now)
		heap.Push(&s.waking, j)
	case phaseSecond:
		if j.hit {
			s.finishJob(j, OffloadHit, t.Levels[j.asg.Level].Benefit)
		} else {
			s.finishJob(j, OffloadMissed, t.LocalBenefit)
		}
	default:
		panic("sched: completing job in unexpected phase")
	}
}

// resume transitions a suspended job to its second sub-job.
func (s *sim) resume(j *jobState) {
	t := j.asg.Task
	j.phase = phaseSecond
	j.subRelease = j.wake
	j.subDeadline = j.deadline
	j.prio = s.prioOf(j)
	if j.hit {
		j.kind = trace.Post
		j.wcet = t.PostProcessAt(j.asg.Level)
	} else {
		j.kind = trace.Comp
		j.wcet = t.CompensationAt(j.asg.Level)
	}
	j.remaining = j.wcet
	if j.wcet == 0 {
		// Zero post-processing: the job is done the moment the result
		// arrives. Record a zero-length sub-job for accounting.
		s.recordSub(j, true)
		if j.hit {
			s.finishJob(j, OffloadHit, t.Levels[j.asg.Level].Benefit)
		} else {
			s.finishJob(j, OffloadMissed, t.LocalBenefit)
		}
		return
	}
	heap.Push(&s.ready, j)
}

// recordSub appends the current sub-job's record to the trace.
func (s *sim) recordSub(j *jobState, completed bool) {
	if s.res.Trace == nil {
		return
	}
	rec := trace.SubRecord{
		Sub:      trace.SubID{TaskID: j.asg.Task.ID, Seq: j.seq, Kind: j.kind},
		Release:  j.subRelease,
		Deadline: j.subDeadline,
		WCET:     j.wcet,
	}
	if completed {
		rec.Completed = true
		rec.Completion = s.now
	}
	s.res.Trace.Subs = append(s.res.Trace.Subs, rec)
}

func (s *sim) finishJob(j *jobState, out Outcome, benefit float64) {
	j.phase = phaseDone
	t := j.asg.Task
	st := s.res.PerTask[t.ID]
	missed := s.now > j.deadline
	jr := JobResult{
		TaskID:   t.ID,
		Seq:      j.seq,
		Release:  j.release,
		Deadline: j.deadline,
		Finish:   s.now,
		Outcome:  out,
		Benefit:  benefit,
		Missed:   missed,
		Finished: true,
	}
	s.res.Jobs = append(s.res.Jobs, jr)
	st.Finished++
	switch out {
	case RanLocal:
		st.LocalRuns++
	case OffloadHit:
		st.Hits++
	case OffloadMissed:
		st.Compensations++
		if t.GuaranteedAt(j.asg.Level) {
			st.BoundViolations++
		}
	}
	if missed {
		st.Misses++
		s.res.Misses++
	}
	st.BenefitSum += benefit
	s.res.TotalBenefit += t.EffectiveWeight() * benefit
	lat := s.now.Sub(j.release)
	if lat > st.WorstLatency {
		st.WorstLatency = lat
	}
	if s.cfg.CollectLatencies {
		st.Latencies = append(st.Latencies, lat)
	}
}

// LatencyPercentile returns the p-th percentile (0..100) of a task's
// collected response times. It requires Config.CollectLatencies and at
// least one finished job; otherwise ok is false.
func (r *Result) LatencyPercentile(taskID int, p float64) (rtime.Duration, bool) {
	st := r.PerTask[taskID]
	if st == nil || len(st.Latencies) == 0 || p < 0 || p > 100 {
		return 0, false
	}
	xs := make([]float64, len(st.Latencies))
	for i, l := range st.Latencies {
		xs[i] = float64(l)
	}
	return rtime.Duration(stats.Percentile(xs, p)), true
}
