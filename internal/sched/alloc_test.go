package sched

import (
	"testing"

	"rtoffload/internal/sched/eventq"
)

// TestDispatchKernelZeroAlloc gates the //rtlint:hotpath contract on
// sim.run's steady state. The full run() pays one-time init and result
// growth, so the gate exercises the warm kernel directly: allocate a
// job slot, queue it on the calendar, probe the next event, pop it,
// and recycle the slot — with the arena and heap backing stores
// pre-grown, none of it may allocate.
func TestDispatchKernelZeroAlloc(t *testing.T) {
	s := &sim{}
	var hs []int32
	for i := 0; i < 32; i++ {
		h := s.allocJob()
		hs = append(hs, h)
		s.ready.Push(eventq.Entry{Key: int64(i), H: h})
		s.waking.Push(eventq.Entry{Key: int64(i), H: h})
		s.releases.Push(eventq.Entry{Key: int64(i), TieA: int64(i), H: h})
	}
	for range hs {
		s.ready.PopMin()
		s.waking.PopMin()
		s.releases.PopMin()
	}
	for _, h := range hs {
		s.freeJob(h)
	}
	allocs := testing.AllocsPerRun(100, func() {
		h := s.allocJob()
		s.ready.Push(eventq.Entry{Key: 7, H: h})
		s.waking.Push(eventq.Entry{Key: 9, H: h})
		s.releases.Push(eventq.Entry{Key: 11, TieA: 3, H: h})
		if got := s.nextEvent(); got == 0 {
			t.Error("unexpected zero next-event instant")
		}
		s.ready.PopMin()
		s.waking.PopMin()
		s.releases.PopMin()
		s.freeJob(h)
	})
	if allocs != 0 {
		t.Fatalf("warm dispatch kernel allocates %.1f times per run; the hotpath contract is 0", allocs)
	}
}
