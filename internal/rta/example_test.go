package rta_test

import (
	"fmt"

	"rtoffload/internal/rta"
	"rtoffload/internal/rtime"
)

// ExampleAnalyze contrasts the two fixed-priority suspension
// treatments on a self-suspending high-priority task: the oblivious
// analysis charges the suspension as interference and rejects, the
// jitter analysis accepts.
func ExampleAnalyze() {
	ms := rtime.FromMillis
	tasks := []rta.Task{
		{ID: 1, C1: ms(1), C2: ms(1), Suspend: ms(6), D: ms(10), T: ms(10)},
		{ID: 2, C1: ms(7), D: ms(12), T: ms(12)},
	}
	obl, _ := rta.Analyze(tasks, rta.Oblivious)
	jit, _ := rta.Analyze(tasks, rta.Jitter)
	fmt.Printf("oblivious=%v jitter=%v (R2=%v)\n",
		obl.Schedulable, jit.Schedulable, jit.Response[1])
	// Output:
	// oblivious=false jitter=true (R2=11ms)
}
