// Package rta provides fixed-priority response-time analysis for the
// FP baseline the paper rules out (§5.1 cites Ridouard et al.'s
// negative results for scheduling self-suspending tasks).
//
// An offloaded task under fixed priorities is a segmented
// self-suspending task: setup Ci,1, suspension up to Ri, second phase
// Ci,2. Two classical sufficient analyses are implemented:
//
//   - Oblivious: suspension modelled as computation (Ci,1+Ri+Ci,2
//     everywhere). Always sound, very pessimistic.
//   - Jitter: suspension contributes serially to the task's own
//     response time, and higher-priority self-suspending tasks
//     interfere with release jitter Jj = Rj^resp − Cj (the corrected
//     jitter bound from the self-suspension literature).
//
// Comparing their admission rates against the paper's EDF
// deadline-splitting test is the FP ablation in package exp: deadline
// splitting admits substantially more systems, reproducing the paper's
// argument for building on EDF.
package rta

import (
	"fmt"
	"sort"

	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
)

// Task is the FP analysis view of one task: execution segments C1
// (+ optional suspension S and second segment C2), deadline D, period
// T. A plain local task has C2 = S = 0 and C1 = C.
type Task struct {
	ID      int
	C1, C2  rtime.Duration
	Suspend rtime.Duration
	D, T    rtime.Duration
}

// exec returns the pure execution demand C1+C2.
func (t Task) exec() rtime.Duration { return t.C1 + t.C2 }

// Validate checks the task.
func (t Task) Validate() error {
	switch {
	case t.T <= 0:
		return fmt.Errorf("rta: task %d: period %v", t.ID, t.T)
	case t.D <= 0 || t.D > t.T:
		return fmt.Errorf("rta: task %d: deadline %v out of (0, %v]", t.ID, t.D, t.T)
	case t.C1 <= 0 || t.C2 < 0 || t.Suspend < 0:
		return fmt.Errorf("rta: task %d: invalid segments", t.ID)
	case t.exec()+t.Suspend > t.D:
		return fmt.Errorf("rta: task %d: segments %v + suspension %v exceed deadline %v", t.ID, t.exec(), t.Suspend, t.D)
	}
	return nil
}

// Method selects the suspension treatment.
type Method int

const (
	// Oblivious: suspension as computation.
	Oblivious Method = iota
	// Jitter: suspension serial for the task itself, release jitter
	// for interference from higher-priority tasks.
	Jitter
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Oblivious:
		return "suspension-oblivious"
	case Jitter:
		return "suspension-jitter"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Result is the outcome of one analysis run.
type Result struct {
	// Response[i] is the response-time bound of tasks[i] (input
	// order); meaningful only when Converged[i].
	Response []rtime.Duration
	// Converged[i] is false when the fixpoint iteration exceeded the
	// deadline (the bound diverged).
	Converged []bool
	// Schedulable: every task converged within its deadline.
	Schedulable bool
}

// Analyze runs deadline-monotonic response-time analysis (ties broken
// by task ID) with the selected suspension treatment.
func Analyze(tasks []Task, m Method) (*Result, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("rta: no tasks")
	}
	if m != Oblivious && m != Jitter {
		return nil, fmt.Errorf("rta: unknown method %d", int(m))
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	// Priority order: deadline-monotonic.
	idx := make([]int, len(tasks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ta, tb := tasks[idx[a]], tasks[idx[b]]
		if ta.D != tb.D {
			return ta.D < tb.D
		}
		return ta.ID < tb.ID
	})

	res := &Result{
		Response:    make([]rtime.Duration, len(tasks)),
		Converged:   make([]bool, len(tasks)),
		Schedulable: true,
	}
	// jitter[i] is the interference jitter of tasks[i] once analyzed.
	jitter := make([]rtime.Duration, len(tasks))

	for pos, i := range idx {
		t := tasks[i]
		// The task's own serial demand.
		own := t.exec()
		switch m {
		case Oblivious:
			own += t.Suspend
		case Jitter:
			own += t.Suspend
		}
		r := own
		for iter := 0; ; iter++ {
			interf := rtime.Duration(0)
			for _, hj := range idx[:pos] {
				h := tasks[hj]
				ch := h.exec()
				jit := rtime.Duration(0)
				if m == Oblivious {
					ch += h.Suspend
				} else {
					jit = jitter[hj]
				}
				interf += rtime.Duration(rtime.CeilDiv(r+jit, h.T)) * ch
			}
			next := own + interf
			if next == r {
				break
			}
			r = next
			if r > t.D || iter > 10_000 {
				r = t.D + 1 // diverged past the deadline
				break
			}
		}
		res.Response[i] = r
		res.Converged[i] = r <= t.D
		if !res.Converged[i] {
			res.Schedulable = false
			// Lower-priority analysis still needs this task's jitter; use
			// the sound fallback D − exec (jitter can never exceed it
			// for a task that is to be schedulable anyway).
			jitter[i] = t.D - t.exec()
			continue
		}
		// Corrected jitter bound: response − pure execution.
		jitter[i] = r - t.exec()
		if jitter[i] < 0 {
			jitter[i] = 0
		}
	}
	return res, nil
}

// FromAssignments converts offloading assignments into the FP analysis
// model: offloaded tasks become segmented self-suspending tasks with
// suspension Ri; local tasks plain sporadic tasks.
func FromAssignments(asgs []sched.Assignment) ([]Task, error) {
	out := make([]Task, 0, len(asgs))
	for _, a := range asgs {
		t := a.Task
		if t == nil {
			return nil, fmt.Errorf("rta: assignment without task")
		}
		if a.Offload {
			out = append(out, Task{
				ID:      t.ID,
				C1:      t.SetupAt(a.Level),
				C2:      t.SecondPhaseAt(a.Level),
				Suspend: a.Budget(),
				D:       t.Deadline,
				T:       t.Period,
			})
		} else {
			out = append(out, Task{
				ID: t.ID, C1: t.LocalWCET, D: t.Deadline, T: t.Period,
			})
		}
	}
	return out, nil
}
