package rta

import (
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

func ms(v int64) rtime.Duration { return rtime.FromMillis(v) }

func TestValidate(t *testing.T) {
	good := Task{ID: 1, C1: ms(2), D: ms(10), T: ms(10)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Task{
		{ID: 1, C1: ms(2), D: ms(10), T: 0},
		{ID: 1, C1: ms(2), D: 0, T: ms(10)},
		{ID: 1, C1: ms(2), D: ms(11), T: ms(10)},
		{ID: 1, C1: 0, D: ms(10), T: ms(10)},
		{ID: 1, C1: ms(2), C2: -1, D: ms(10), T: ms(10)},
		{ID: 1, C1: ms(2), Suspend: ms(9), D: ms(10), T: ms(10)},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Classic RTA example (no suspensions): three tasks, hand-computed
// response times.
func TestAnalyzeClassic(t *testing.T) {
	tasks := []Task{
		{ID: 1, C1: ms(1), D: ms(4), T: ms(4)},
		{ID: 2, C1: ms(2), D: ms(6), T: ms(6)},
		{ID: 3, C1: ms(3), D: ms(13), T: ms(13)},
	}
	for _, m := range []Method{Oblivious, Jitter} {
		res, err := Analyze(tasks, m)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Schedulable {
			t.Fatalf("%v: classic set rejected", m)
		}
		// τ1: R = 1. τ2: R = 2 + ⌈R/4⌉·1 → 3.
		// τ3: R = 3 + ⌈R/4⌉·1 + ⌈R/6⌉·2 → fixpoint 10
		// (3 + ⌈10/4⌉·1 + ⌈10/6⌉·2 = 3 + 3 + 4).
		want := []rtime.Duration{ms(1), ms(3), ms(10)}
		for i, w := range want {
			if res.Response[i] != w {
				t.Errorf("%v: R%d = %v, want %v", m, i+1, res.Response[i], w)
			}
		}
	}
}

func TestAnalyzeDetectsOverload(t *testing.T) {
	tasks := []Task{
		{ID: 1, C1: ms(6), D: ms(10), T: ms(10)},
		{ID: 2, C1: ms(6), D: ms(12), T: ms(12)},
	}
	res, err := Analyze(tasks, Oblivious)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Fatal("overload accepted")
	}
	if res.Converged[0] != true || res.Converged[1] != false {
		t.Fatalf("convergence flags %v", res.Converged)
	}
}

func TestJitterDominatesOblivious(t *testing.T) {
	// A self-suspending high-priority task: oblivious counts its
	// suspension as interference on τ2, jitter does not.
	tasks := []Task{
		{ID: 1, C1: ms(1), C2: ms(1), Suspend: ms(6), D: ms(10), T: ms(10)},
		{ID: 2, C1: ms(7), D: ms(12), T: ms(12)},
	}
	ob, err := Analyze(tasks, Oblivious)
	if err != nil {
		t.Fatal(err)
	}
	ji, err := Analyze(tasks, Jitter)
	if err != nil {
		t.Fatal(err)
	}
	// Oblivious: τ2 interference per τ1 job = 8ms → R2 = 7+8(+8) > 12.
	if ob.Schedulable {
		t.Fatal("oblivious unexpectedly accepted")
	}
	// Jitter: τ1 execution 2ms, jitter 6ms → R2 = 7 + ⌈(R+6)/10⌉·2 = 11.
	if !ji.Schedulable {
		t.Fatalf("jitter analysis rejected; R = %v", ji.Response)
	}
	if ji.Response[1] != ms(11) {
		t.Errorf("R2 = %v, want 11ms", ji.Response[1])
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, Oblivious); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Analyze([]Task{{ID: 1, C1: 1, D: 1, T: 1}}, Method(9)); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := Analyze([]Task{{}}, Oblivious); err == nil {
		t.Error("invalid task accepted")
	}
	if Oblivious.String() == "" || Jitter.String() == "" || Method(9).String() == "" {
		t.Error("method names")
	}
}

func TestFromAssignments(t *testing.T) {
	tk := &task.Task{
		ID: 1, Period: ms(100), Deadline: ms(90),
		LocalWCET: ms(30), Setup: ms(5), Compensation: ms(30),
		LocalBenefit: 1,
		Levels:       []task.Level{{Response: ms(20), Benefit: 2}},
	}
	loc := &task.Task{ID: 2, Period: ms(50), Deadline: ms(50), LocalWCET: ms(10), LocalBenefit: 1}
	out, err := FromAssignments([]sched.Assignment{
		{Task: tk, Offload: true},
		{Task: loc},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].C1 != ms(5) || out[0].C2 != ms(30) || out[0].Suspend != ms(20) || out[0].D != ms(90) {
		t.Fatalf("offloaded view %+v", out[0])
	}
	if out[1].C1 != ms(10) || out[1].C2 != 0 || out[1].Suspend != 0 {
		t.Fatalf("local view %+v", out[1])
	}
	if _, err := FromAssignments([]sched.Assignment{{}}); err == nil {
		t.Error("nil task accepted")
	}
}

// Soundness: any system accepted by either analysis is miss-free under
// the FixedPriority simulator with an adversarial server (suspension
// always exactly Ri) and sporadic jitter. Deterministic seeds.
func TestAnalysisSoundInSimulation(t *testing.T) {
	rng := stats.NewRNG(777)
	accepted := 0
	for trial := 0; trial < 200; trial++ {
		n := rng.IntN(5) + 2
		var asgs []sched.Assignment
		maxT := rtime.Duration(0)
		for i := 0; i < n; i++ {
			period := ms(rng.UniformInt(20, 200))
			if period > maxT {
				maxT = period
			}
			c := rtime.Duration(rng.Int64N(int64(period/6))) + 1
			if rng.Bool(0.5) {
				asgs = append(asgs, sched.Assignment{Task: &task.Task{
					ID: i, Period: period, Deadline: period, LocalWCET: c, LocalBenefit: 1,
				}})
			} else {
				c1 := rtime.Duration(rng.Int64N(int64(c))) + 1
				r := rtime.Duration(rng.Int64N(int64(period / 3)))
				tk := &task.Task{
					ID: i, Period: period, Deadline: period,
					LocalWCET: c, Setup: c1, Compensation: c, LocalBenefit: 1,
					Levels: []task.Level{{Response: r + 1, Benefit: 2}},
				}
				if tk.Validate() != nil {
					continue
				}
				asgs = append(asgs, sched.Assignment{Task: tk, Offload: true})
			}
		}
		if len(asgs) == 0 {
			continue
		}
		model, err := FromAssignments(asgs)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Method{Oblivious, Jitter} {
			res, err := Analyze(model, m)
			if err != nil {
				// Over-dense draws (segments+suspension > D) are fine.
				continue
			}
			if !res.Schedulable {
				continue
			}
			accepted++
			sim, err := sched.Run(sched.Config{
				Assignments:   asgs,
				Server:        server.Fixed{Lost: true},
				Horizon:       6 * maxT,
				Policy:        sched.FixedPriority,
				ReleaseJitter: ms(rng.UniformInt(0, 5)),
				RNG:           rng.Fork(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if sim.Misses != 0 {
				t.Fatalf("trial %d %v: accepted system missed %d deadlines", trial, m, sim.Misses)
			}
			// The analysis bound dominates every observed response time.
			for i, a := range asgs {
				st := sim.PerTask[a.Task.ID]
				if st == nil {
					continue
				}
				if st.WorstLatency > res.Response[i] {
					t.Fatalf("trial %d %v: task %d observed response %v above bound %v",
						trial, m, a.Task.ID, st.WorstLatency, res.Response[i])
				}
			}
		}
	}
	if accepted < 40 {
		t.Fatalf("only %d acceptances; generator too tight", accepted)
	}
}

// Acceptance comparison on random sets: jitter ≥ oblivious.
func TestJitterAcceptsMore(t *testing.T) {
	rng := stats.NewRNG(99)
	obl, jit := 0, 0
	for trial := 0; trial < 300; trial++ {
		n := rng.IntN(4) + 2
		var model []Task
		for i := 0; i < n; i++ {
			period := ms(rng.UniformInt(20, 200))
			c := rtime.Duration(rng.Int64N(int64(period/4))) + 1
			c1 := c/3 + 1
			s := rtime.Duration(rng.Int64N(int64(period / 3)))
			tk := Task{ID: i, C1: c1, C2: c, Suspend: s, D: period, T: period}
			if tk.Validate() != nil {
				continue
			}
			model = append(model, tk)
		}
		if len(model) == 0 {
			continue
		}
		if r, err := Analyze(model, Oblivious); err == nil && r.Schedulable {
			obl++
			// Dominance: anything oblivious accepts, jitter accepts.
			if r2, err := Analyze(model, Jitter); err != nil || !r2.Schedulable {
				t.Fatalf("trial %d: oblivious accepted but jitter rejected", trial)
			}
		}
		if r, err := Analyze(model, Jitter); err == nil && r.Schedulable {
			jit++
		}
	}
	if jit <= obl {
		t.Fatalf("jitter (%d) not more permissive than oblivious (%d)", jit, obl)
	}
}
