// Package queueing provides closed-form M/M/c results used to
// cross-validate the stochastic server models: the Erlang-C delay
// probability and the mean waiting time of the classic multi-server
// queue. The test suite checks that internal/server's queueing
// simulator converges to these formulas under matching assumptions
// (Poisson arrivals, exponential service), anchoring the simulated
// GPU-server behaviour to textbook ground truth.
package queueing

import (
	"fmt"
	"math"
)

// ErlangC returns the probability that an arriving M/M/c customer must
// wait (all c servers busy), for arrival rate lambda and per-server
// service rate mu. Requires stability: lambda < c·mu.
func ErlangC(c int, lambda, mu float64) (float64, error) {
	if c < 1 {
		return 0, fmt.Errorf("queueing: c = %d", c)
	}
	if lambda <= 0 || mu <= 0 {
		return 0, fmt.Errorf("queueing: rates must be positive")
	}
	a := lambda / mu // offered load in Erlangs
	rho := a / float64(c)
	if rho >= 1 {
		return 0, fmt.Errorf("queueing: unstable system (ρ = %g ≥ 1)", rho)
	}
	// Iterative Erlang-B, then convert to Erlang-C:
	//   B(0) = 1; B(k) = a·B(k−1) / (k + a·B(k−1))
	//   C = B(c) / (1 − ρ·(1 − B(c)))
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	cProb := b / (1 - rho*(1-b))
	return cProb, nil
}

// MeanWait returns the mean queueing delay (excluding service) of an
// M/M/c system: Wq = C(c, a) / (c·mu − lambda).
func MeanWait(c int, lambda, mu float64) (float64, error) {
	pc, err := ErlangC(c, lambda, mu)
	if err != nil {
		return 0, err
	}
	return pc / (float64(c)*mu - lambda), nil
}

// MeanResponse returns the mean sojourn time Wq + 1/mu.
func MeanResponse(c int, lambda, mu float64) (float64, error) {
	wq, err := MeanWait(c, lambda, mu)
	if err != nil {
		return 0, err
	}
	return wq + 1/mu, nil
}

// MM1WaitQuantile returns the q-quantile of the M/M/1 waiting time:
// P(W ≤ t) = 1 − ρ·e^{−(mu−lambda)·t}, so the quantile is
// ln(ρ/(1−q)) / (mu−lambda) when positive.
func MM1WaitQuantile(lambda, mu, q float64) (float64, error) {
	if lambda <= 0 || mu <= 0 || lambda >= mu {
		return 0, fmt.Errorf("queueing: need 0 < lambda < mu")
	}
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("queueing: quantile %g out of (0,1)", q)
	}
	rho := lambda / mu
	if 1-q >= rho {
		return 0, nil // the quantile falls in the no-wait mass
	}
	return math.Log(rho/(1-q)) / (mu - lambda), nil
}
