package queueing

import (
	"math"
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
)

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1: C = ρ.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		c, err := ErlangC(1, rho*10, 10)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c-rho) > 1e-12 {
			t.Errorf("M/M/1 ErlangC(ρ=%g) = %g", rho, c)
		}
	}
	// M/M/2 with a = 1.5: hand-computed 0.64286…
	c2, err := ErlangC(2, 30, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c2-0.6428571) > 1e-6 {
		t.Errorf("ErlangC(2, a=1.5) = %g, want ≈0.642857", c2)
	}
}

func TestErlangCErrors(t *testing.T) {
	if _, err := ErlangC(0, 1, 1); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := ErlangC(1, 0, 1); err == nil {
		t.Error("λ=0 accepted")
	}
	if _, err := ErlangC(1, 10, 10); err == nil {
		t.Error("unstable system accepted")
	}
}

func TestMeanWaitMM1(t *testing.T) {
	// M/M/1: Wq = ρ/(μ−λ).
	lambda, mu := 8.0, 10.0
	wq, err := MeanWait(1, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	want := (lambda / mu) / (mu - lambda)
	if math.Abs(wq-want) > 1e-12 {
		t.Errorf("Wq = %g, want %g", wq, want)
	}
	wr, err := MeanResponse(1, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wr-(want+0.1)) > 1e-12 {
		t.Errorf("W = %g", wr)
	}
}

func TestMM1WaitQuantile(t *testing.T) {
	lambda, mu := 8.0, 10.0
	// Median: P(W ≤ t) = 0.5 → t = ln(0.8/0.5)/2 ≈ 0.235.
	q, err := MM1WaitQuantile(lambda, mu, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q-math.Log(0.8/0.5)/2) > 1e-12 {
		t.Errorf("median = %g", q)
	}
	// Quantile in the atom at zero (P(W=0) = 1−ρ = 0.2).
	q, err = MM1WaitQuantile(lambda, mu, 0.15)
	if err != nil || q != 0 {
		t.Errorf("zero-mass quantile = %g, %v", q, err)
	}
	for _, bad := range [][3]float64{{0, 1, 0.5}, {2, 1, 0.5}, {1, 2, 0}, {1, 2, 1}} {
		if _, err := MM1WaitQuantile(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("bad params %v accepted", bad)
		}
	}
}

// Cross-validation: internal/server's queueing simulator converges to
// the Erlang-C mean wait when driven with Poisson arrivals and
// exponential service (the background stream), measured by
// near-zero-service probes.
func TestQueueSimulatorMatchesErlangC(t *testing.T) {
	const (
		workers = 2
		lambda  = 30.0 // background arrivals per second
		mu      = 20.0 // service rate per worker (mean 50ms)
	)
	cfg := server.QueueConfig{
		Workers:               workers,
		BandwidthBytesPerSec:  1 << 40, // no transfer time
		ServiceMean:           rtime.FromMillis(1000),
		ServiceRefBytes:       1 << 40, // probe payload 1 byte → ~0 service
		BackgroundRatePerSec:  lambda,
		BackgroundServiceMean: rtime.FromMillisF(1000 / mu),
	}
	q, err := server.NewQueue(stats.NewRNG(99), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const probes = 40000
	sum := 0.0
	at := rtime.Instant(0)
	for i := 0; i < probes; i++ {
		resp := q.Respond(at, 1, 1)
		sum += resp.Latency.Seconds()
		at = at.Add(rtime.FromMillis(25))
	}
	got := sum / probes
	want, err := MeanWait(workers, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-want) / want; rel > 0.08 {
		t.Fatalf("simulated mean wait %.2fms vs Erlang-C %.2fms (%.1f%% off)",
			got*1000, want*1000, rel*100)
	}
	t.Logf("simulated %.2fms vs Erlang-C %.2fms over %d probes", got*1000, want*1000, probes)
}
