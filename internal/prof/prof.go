// Package prof wires the runtime's CPU and heap profilers into
// command-line tools: each cmd exposes -cpuprofile/-memprofile flags
// and defers prof.Start's stop function. Inspect the results with
//
//	go tool pprof -top <binary> cpu.out
//	go tool pprof -top -sample_index=alloc_objects <binary> mem.out
//
// (see also the Makefile's `profile` target).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges a heap profile
// at memPath; either may be empty to skip that profile. The returned
// stop function flushes and closes the profiles and must be called
// exactly once (typically deferred in main). Errors during stop are
// reported on stderr — by then the tool's real output is already out.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				//rtlint:allow errsink -- best-effort diagnostic on stderr; nowhere to propagate from a cleanup func
				fmt.Fprintln(os.Stderr, "prof: close cpu profile:", err)
			}
		}
		if memPath == "" {
			return
		}
		memFile, err := os.Create(memPath)
		if err != nil {
			//rtlint:allow errsink -- best-effort diagnostic on stderr; nowhere to propagate from a cleanup func
			fmt.Fprintln(os.Stderr, "prof:", err)
			return
		}
		defer memFile.Close()
		runtime.GC() // settle live objects so the heap profile is sharp
		if err := pprof.WriteHeapProfile(memFile); err != nil {
			//rtlint:allow errsink -- best-effort diagnostic on stderr; nowhere to propagate from a cleanup func
			fmt.Fprintln(os.Stderr, "prof: write heap profile:", err)
		}
	}, nil
}
