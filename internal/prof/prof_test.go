package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartNoop: with both paths empty, Start must succeed and hand
// back a callable stop that touches nothing.
func TestStartNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

// TestStartWritesProfiles exercises the real path: both profiles are
// created and non-empty after stop.
func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i * i
	}
	_ = sink
	stop()
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestStartMemOnly skips CPU profiling but still writes the heap
// profile at stop time.
func TestStartMemOnly(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.out")
	stop, err := Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	fi, err := os.Stat(mem)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("heap profile is empty")
	}
}

// TestStartUnwritableCPUPath must fail up front, not at stop.
func TestStartUnwritableCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("Start succeeded with an unwritable cpu path")
	}
}

// TestStartDoubleCPUProfile: the runtime rejects a second concurrent
// CPU profile; Start must surface that and close its file.
func TestStartDoubleCPUProfile(t *testing.T) {
	dir := t.TempDir()
	stop, err := Start(filepath.Join(dir, "a.out"), "")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if _, err := Start(filepath.Join(dir, "b.out"), ""); err == nil {
		t.Fatal("second concurrent CPU profile accepted")
	}
}
