// Package parallel provides the deterministic fan-out engine of the
// experiment harness: a bounded worker pool whose Map collects results
// in index order, stops dispatching on the first failure, and
// propagates panics to the caller.
//
// Determinism is the package's contract, not an accident: Map promises
// that the returned slice depends only on fn's per-index results,
// never on the worker count or goroutine scheduling. Callers uphold
// their half by deriving per-index RNG streams from the work index
// (stats.DeriveSeed) instead of sharing a sequential generator, so an
// experiment sharded over 8 workers is bit-identical to the same
// experiment run on one.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// failure records the lowest-index failing call of a Map run.
type failure struct {
	idx     int
	err     error
	pan     any
	isPanic bool
}

// failBox collects the lowest-index failure across workers. The zero
// value is ready for use.
type failBox struct {
	mu sync.Mutex
	//rtlint:guardedby mu
	fail *failure
}

// record keeps f when it is the lowest-index failure seen so far.
func (b *failBox) record(f failure) {
	b.mu.Lock()
	if b.fail == nil || f.idx < b.fail.idx {
		b.fail = &f
	}
	b.mu.Unlock()
}

// get returns the recorded failure, or nil when every index succeeded.
func (b *failBox) get() *failure {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fail
}

// Map runs fn(0), …, fn(n-1) on at most workers goroutines (GOMAXPROCS
// when workers <= 0) and returns the n results in index order.
//
// Error handling is deterministic: when one or more indices fail, Map
// stops dispatching new work, drains the in-flight calls, and returns
// the error of the lowest failing index — the same error a sequential
// run would have hit first. (Indices are dispatched in increasing
// order and started work is always finished, so the lowest failing
// index is guaranteed to have run whatever the schedule.) A panic in
// fn is re-raised on Map's caller; if both a panic and an error occur,
// whichever has the lower index wins.
//
// workers == 1 runs inline on the calling goroutine with no pool at
// all — the sequential reference the determinism tests compare
// against.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("parallel: negative task count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, fmt.Errorf("parallel: task %d: %w", i, err)
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next atomic.Int64 // next index to dispatch
		stop atomic.Bool  // set on first failure
		box  failBox
		wg   sync.WaitGroup
	)
	record := func(f failure) {
		box.record(f)
		stop.Store(true)
	}
	run := func(i int) {
		panicked := true
		defer func() {
			if panicked {
				record(failure{idx: i, pan: recover(), isPanic: true})
			}
		}()
		v, err := fn(i)
		panicked = false
		if err != nil {
			record(failure{idx: i, err: err})
			return
		}
		out[i] = v
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	if fail := box.get(); fail != nil {
		if fail.isPanic {
			panic(fail.pan)
		}
		return nil, fmt.Errorf("parallel: task %d: %w", fail.idx, fail.err)
	}
	return out, nil
}
