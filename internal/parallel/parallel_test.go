package parallel

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		got, err := Map(workers, 50, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: index %d holds %d", workers, i, v)
			}
		}
	}
}

func TestMapEmptyAndNegative(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v %v", got, err)
	}
	if _, err := Map(4, -1, func(int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative n accepted")
	}
}

// The first error — by index, not by wall clock — must be returned
// whatever the worker count, and dispatch must stop early.
func TestMapErrorDeterministicAndCancelling(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 2, 8} {
		var calls atomic.Int64
		const n = 10_000
		_, err := Map(workers, n, func(i int) (int, error) {
			calls.Add(1)
			if i == 7 || i == 4999 {
				return 0, fmt.Errorf("at %d: %w", i, sentinel)
			}
			return i, nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err %v", workers, err)
		}
		if !strings.Contains(err.Error(), "task 7") {
			t.Fatalf("workers=%d: lowest failing index not reported: %v", workers, err)
		}
		if c := calls.Load(); c >= n {
			t.Fatalf("workers=%d: no cancellation, %d calls", workers, c)
		}
	}
}

func TestMapPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if s, ok := r.(string); !ok || s != "kaboom" {
					t.Fatalf("workers=%d: panic value %v", workers, r)
				}
			}()
			Map(workers, 100, func(i int) (int, error) {
				if i == 13 {
					panic("kaboom")
				}
				return i, nil
			})
		}()
	}
}

// With both a panic and an error in flight, the lower index wins — the
// sequential semantics.
func TestMapPanicBeforeError(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic at index 2 lost to error at index 90")
		}
	}()
	Map(4, 100, func(i int) (int, error) {
		if i == 2 {
			panic("early")
		}
		if i == 90 {
			return 0, errors.New("late")
		}
		return i, nil
	})
}

func TestMapWorkersExceedingN(t *testing.T) {
	got, err := Map(32, 3, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("results %v", got)
	}
}
