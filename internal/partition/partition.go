// Package partition extends the paper's uniprocessor mechanism to
// partitioned multicore systems: tasks are statically assigned to
// cores by a bin-packing heuristic on their local densities, then the
// Offloading Decision Manager runs independently per core with its own
// Theorem-3 capacity. This is the standard partitioned-EDF lift of a
// uniprocessor schedulability test — each core keeps the paper's full
// guarantee, including compensations, because cores share nothing but
// the (stateless from the client's view) unreliable server.
package partition

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"rtoffload/internal/core"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/task"
)

// Strategy selects the bin-packing heuristic for task placement.
type Strategy int

const (
	// WorstFit places each task on the least-loaded core — it balances
	// load, leaving every core slack for offloading weights, and is
	// the default.
	WorstFit Strategy = iota
	// FirstFit places each task on the lowest-numbered core it fits.
	FirstFit
	// BestFit places each task on the most-loaded core it still fits.
	BestFit
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case WorstFit:
		return "worst-fit"
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures the partitioned decision.
type Options struct {
	// Cores is the number of identical processors (≥ 1).
	Cores int
	// Strategy is the placement heuristic (default WorstFit).
	Strategy Strategy
	// Core configures the per-core Offloading Decision Manager.
	Core core.Options
}

// Decision is a partitioned offloading configuration.
type Decision struct {
	// PerCore holds one uniprocessor decision per core; cores with no
	// tasks have a nil entry.
	PerCore []*core.Decision
	// CoreOf maps task ID → core index.
	CoreOf map[int]int
	// TotalExpected sums the per-core MCKP objectives.
	TotalExpected float64
	Strategy      Strategy
}

// ErrUnpartitionable reports that no placement kept every core's local
// density at or below 1 — the necessary condition for the per-core
// all-local fallback.
var ErrUnpartitionable = errors.New("partition: local densities do not fit the cores")

// Decide partitions the set and runs the per-core decision manager.
func Decide(set task.Set, opts Options) (*Decision, error) {
	if opts.Cores < 1 {
		return nil, fmt.Errorf("partition: %d cores", opts.Cores)
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if len(set) == 0 {
		return nil, errors.New("partition: empty task set")
	}

	// Decreasing-density order makes all three heuristics behave like
	// their classic "-decreasing" variants.
	order := make([]*task.Task, len(set))
	copy(order, set)
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].Density().Cmp(order[j].Density()) > 0
	})

	one := big.NewRat(1, 1)
	load := make([]*big.Rat, opts.Cores)
	bins := make([]task.Set, opts.Cores)
	for i := range load {
		load[i] = new(big.Rat)
	}
	coreOf := make(map[int]int, len(set))
	for _, t := range order {
		d := t.Density()
		chosen := -1
		switch opts.Strategy {
		case FirstFit:
			for c := 0; c < opts.Cores; c++ {
				if fits(load[c], d, one) {
					chosen = c
					break
				}
			}
		case BestFit:
			for c := 0; c < opts.Cores; c++ {
				if !fits(load[c], d, one) {
					continue
				}
				if chosen == -1 || load[c].Cmp(load[chosen]) > 0 {
					chosen = c
				}
			}
		case WorstFit:
			for c := 0; c < opts.Cores; c++ {
				if !fits(load[c], d, one) {
					continue
				}
				if chosen == -1 || load[c].Cmp(load[chosen]) < 0 {
					chosen = c
				}
			}
		default:
			return nil, fmt.Errorf("partition: unknown strategy %d", int(opts.Strategy))
		}
		if chosen == -1 {
			return nil, fmt.Errorf("%w: task %d (density %s)", ErrUnpartitionable, t.ID, d.FloatString(3))
		}
		load[chosen].Add(load[chosen], d)
		bins[chosen] = append(bins[chosen], t)
		coreOf[t.ID] = chosen
	}

	d := &Decision{
		PerCore:  make([]*core.Decision, opts.Cores),
		CoreOf:   coreOf,
		Strategy: opts.Strategy,
	}
	for c, bin := range bins {
		if len(bin) == 0 {
			continue
		}
		dec, err := core.Decide(bin, opts.Core)
		if err != nil {
			return nil, fmt.Errorf("partition: core %d: %w", c, err)
		}
		d.PerCore[c] = dec
		d.TotalExpected += dec.TotalExpected
	}
	return d, nil
}

func fits(load, d, one *big.Rat) bool {
	sum := new(big.Rat).Add(load, d)
	return sum.Cmp(one) <= 0
}

// OffloadedCount sums offloaded tasks across cores.
func (d *Decision) OffloadedCount() int {
	n := 0
	for _, pc := range d.PerCore {
		if pc != nil {
			n += pc.OffloadedCount()
		}
	}
	return n
}

// Result aggregates the per-core simulations.
type Result struct {
	PerCore []*sched.Result
	Misses  int
	// TotalBenefit / TotalBaseline aggregate the weighted benefits.
	TotalBenefit  float64
	TotalBaseline float64
}

// NormalizedBenefit mirrors sched.Result.NormalizedBenefit.
func (r *Result) NormalizedBenefit() float64 {
	if r.TotalBaseline <= 0 {
		return 1
	}
	return r.TotalBenefit / r.TotalBaseline
}

// Simulate runs each core's schedule independently. mkServer supplies
// one server instance per core (cores issue requests concurrently, so
// each needs its own monotone-clock view; for a shared physical server
// use stochastically identical instances with forked RNGs).
func Simulate(d *Decision, mkServer func(coreIdx int) server.Server, horizon rtime.Duration) (*Result, error) {
	if d == nil {
		return nil, errors.New("partition: nil decision")
	}
	res := &Result{PerCore: make([]*sched.Result, len(d.PerCore))}
	for c, pc := range d.PerCore {
		if pc == nil {
			continue
		}
		var srv server.Server
		if mkServer != nil {
			srv = mkServer(c)
		}
		r, err := sched.Run(sched.Config{
			Assignments: pc.Assignments(),
			Server:      srv,
			Horizon:     horizon,
		})
		if err != nil {
			return nil, fmt.Errorf("partition: core %d: %w", c, err)
		}
		res.PerCore[c] = r
		res.Misses += r.Misses
		res.TotalBenefit += r.TotalBenefit
		res.TotalBaseline += r.TotalBaseline
	}
	return res, nil
}
