package partition

import (
	"errors"
	"math/big"
	"testing"

	"rtoffload/internal/core"
	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

func ms(v int64) rtime.Duration { return rtime.FromMillis(v) }

func heavySet(n int, util float64) task.Set {
	set := make(task.Set, 0, n)
	for i := 0; i < n; i++ {
		period := ms(100)
		c := rtime.Duration(util * float64(period))
		set = append(set, &task.Task{
			ID: i, Period: period, Deadline: period,
			LocalWCET: c, Setup: c / 10, Compensation: c,
			LocalBenefit: 1,
			Levels: []task.Level{
				{Response: ms(20), Benefit: 3},
				{Response: ms(50), Benefit: 8},
			},
		})
	}
	return set
}

func TestDecidePartitionsAndOffloads(t *testing.T) {
	// 6 tasks × 0.4 local utilization: needs ≥ 3 cores for all-local.
	set := heavySet(6, 0.4)
	d, err := Decide(set, Options{Cores: 3, Core: core.Options{Solver: core.SolverDP}})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.CoreOf) != 6 {
		t.Fatalf("placed %d tasks", len(d.CoreOf))
	}
	counts := make([]int, 3)
	for _, c := range d.CoreOf {
		counts[c]++
	}
	for c, n := range counts {
		if n != 2 {
			t.Fatalf("core %d has %d tasks (worst-fit should balance 2/2/2): %v", c, n, counts)
		}
	}
	if d.OffloadedCount() == 0 {
		t.Fatal("no offloading despite per-core capacity")
	}
	one := big.NewRat(1, 1)
	for c, pc := range d.PerCore {
		if pc == nil {
			t.Fatalf("core %d empty", c)
		}
		if pc.Theorem3Total.Cmp(one) > 0 {
			t.Fatalf("core %d over capacity: %v", c, pc.Theorem3Total)
		}
	}
}

func TestMoreCoresMoreBenefit(t *testing.T) {
	set := heavySet(6, 0.3)
	single, err := Decide(set, Options{Cores: 2, Core: core.Options{Solver: core.SolverDP}})
	if err != nil {
		t.Fatal(err)
	}
	quad, err := Decide(set, Options{Cores: 4, Core: core.Options{Solver: core.SolverDP}})
	if err != nil {
		t.Fatal(err)
	}
	if quad.TotalExpected < single.TotalExpected {
		t.Fatalf("4 cores (%g) worse than 2 (%g)", quad.TotalExpected, single.TotalExpected)
	}
}

func TestUnpartitionable(t *testing.T) {
	set := heavySet(4, 0.6) // total 2.4 > 2 cores
	_, err := Decide(set, Options{Cores: 2, Core: core.Options{Solver: core.SolverDP}})
	if !errors.Is(err, ErrUnpartitionable) {
		t.Fatalf("err = %v", err)
	}
}

func TestStrategies(t *testing.T) {
	// Densities 0.6, 0.5, 0.4, 0.3 on two cores:
	// first-fit-decreasing: core0 {0.6, 0.4}, core1 {0.5, 0.3};
	// worst-fit-decreasing: core0 {0.6, 0.3}, core1 {0.5, 0.4};
	// best-fit-decreasing:  core0 {0.6, 0.4}, core1 {0.5, 0.3}.
	mk := func() task.Set {
		var set task.Set
		for i, u := range []float64{0.6, 0.5, 0.4, 0.3} {
			period := ms(100)
			set = append(set, &task.Task{
				ID: i, Period: period, Deadline: period,
				LocalWCET: rtime.Duration(u * float64(period)), LocalBenefit: 1,
			})
		}
		return set
	}
	ff, err := Decide(mk(), Options{Cores: 2, Strategy: FirstFit, Core: core.Options{Solver: core.SolverDP}})
	if err != nil {
		t.Fatal(err)
	}
	if ff.CoreOf[0] != 0 || ff.CoreOf[2] != 0 || ff.CoreOf[1] != 1 || ff.CoreOf[3] != 1 {
		t.Fatalf("first-fit placement %v", ff.CoreOf)
	}
	wf, err := Decide(mk(), Options{Cores: 2, Strategy: WorstFit, Core: core.Options{Solver: core.SolverDP}})
	if err != nil {
		t.Fatal(err)
	}
	if wf.CoreOf[0] != 0 || wf.CoreOf[1] != 1 || wf.CoreOf[2] != 1 || wf.CoreOf[3] != 0 {
		t.Fatalf("worst-fit placement %v", wf.CoreOf)
	}
	bf, err := Decide(mk(), Options{Cores: 2, Strategy: BestFit, Core: core.Options{Solver: core.SolverDP}})
	if err != nil {
		t.Fatal(err)
	}
	if bf.CoreOf[2] != 0 || bf.CoreOf[3] != 1 {
		t.Fatalf("best-fit placement %v", bf.CoreOf)
	}
	for _, s := range []Strategy{WorstFit, FirstFit, BestFit} {
		if s.String() == "" {
			t.Error("empty strategy name")
		}
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy name empty")
	}
	if _, err := Decide(mk(), Options{Cores: 2, Strategy: Strategy(9)}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestDecideValidation(t *testing.T) {
	if _, err := Decide(heavySet(2, 0.1), Options{Cores: 0}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := Decide(nil, Options{Cores: 1}); err == nil {
		t.Error("empty set accepted")
	}
	bad := task.Set{{ID: 1}}
	if _, err := Decide(bad, Options{Cores: 1}); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestSimulatePartitioned(t *testing.T) {
	set := heavySet(6, 0.3)
	d, err := Decide(set, Options{Cores: 3, Core: core.Options{Solver: core.SolverDP}})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	res, err := Simulate(d, func(int) server.Server {
		s, err := server.NewScenario(rng.Fork(), server.Idle)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}, rtime.FromSeconds(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("%d misses", res.Misses)
	}
	if res.NormalizedBenefit() <= 1 {
		t.Fatalf("normalized benefit %g — offloading earned nothing", res.NormalizedBenefit())
	}
	// Adversarial server: still miss-free.
	res, err = Simulate(d, func(int) server.Server { return server.Fixed{Lost: true} }, rtime.FromSeconds(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("%d misses under lost server", res.Misses)
	}
	if _, err := Simulate(nil, nil, rtime.FromSeconds(1)); err == nil {
		t.Error("nil decision accepted")
	}
}
