package partition_test

import (
	"fmt"

	"rtoffload/internal/core"
	"rtoffload/internal/partition"
	"rtoffload/internal/rtime"
	"rtoffload/internal/task"
)

// ExampleDecide partitions four heavy tasks over two cores and runs
// the per-core Offloading Decision Manager.
func ExampleDecide() {
	ms := rtime.FromMillis
	var set task.Set
	for i := 0; i < 4; i++ {
		set = append(set, &task.Task{
			ID: i, Period: ms(100), Deadline: ms(100),
			LocalWCET: ms(40), Setup: ms(4), Compensation: ms(40),
			LocalBenefit: 1,
			Levels:       []task.Level{{Response: ms(20), Benefit: 5}},
		})
	}
	dec, err := partition.Decide(set, partition.Options{
		Cores: 2,
		Core:  core.Options{Solver: core.SolverDP},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	perCore := make([]int, 2)
	for _, c := range dec.CoreOf {
		perCore[c]++
	}
	fmt.Printf("tasks per core: %v, offloaded: %d, benefit: %g\n",
		perCore, dec.OffloadedCount(), dec.TotalExpected)
	// Output:
	// tasks per core: [2 2], offloaded: 2, benefit: 12
}
