package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"rtoffload/internal/rtime"
)

// Preset returns a named fault configuration for the -chaos flags:
//
//	off      all-pass (the zero Config)
//	mild     occasional drops and spikes, rare short hangs
//	moderate visible loss, duplicates, reordering, bursts and skew
//	heavy    hostile network: frequent correlated loss and long stalls
//
// The presets keep every delay bound well under a second so that they
// stress the compensation path of sub-second budgets rather than
// merely saturating it.
func Preset(name string) (Config, error) {
	switch name {
	case "off", "none", "":
		return Config{}, nil
	case "mild":
		return Config{
			Drop:            0.02,
			Spike:           0.05,
			SpikeMax:        rtime.FromMillis(40),
			Hang:            0.005,
			HangMax:         rtime.FromMillis(60),
			SkewBound:       rtime.FromMillis(1),
			Reorder:         0.02,
			ReorderDelayMax: rtime.FromMillis(20),
		}, nil
	case "moderate":
		return Config{
			Drop:            0.08,
			Dup:             0.05,
			DupDelayMax:     rtime.FromMillis(30),
			Reorder:         0.06,
			ReorderDelayMax: rtime.FromMillis(40),
			Spike:           0.10,
			SpikeMax:        rtime.FromMillis(80),
			Hang:            0.01,
			HangMax:         rtime.FromMillis(120),
			GE: GilbertElliott{
				PGoodBad:    0.04,
				PBadGood:    0.25,
				BadLoss:     0.30,
				BadDelayMax: rtime.FromMillis(60),
			},
			SkewBound: rtime.FromMillis(2),
		}, nil
	case "heavy":
		return Config{
			Drop:            0.18,
			Dup:             0.10,
			DupDelayMax:     rtime.FromMillis(60),
			Reorder:         0.12,
			ReorderDelayMax: rtime.FromMillis(80),
			Spike:           0.20,
			SpikeMax:        rtime.FromMillis(160),
			Hang:            0.03,
			HangMax:         rtime.FromMillis(250),
			GE: GilbertElliott{
				PGoodBad:    0.08,
				PBadGood:    0.15,
				BadLoss:     0.50,
				BadDelayMax: rtime.FromMillis(120),
			},
			SkewBound: rtime.FromMillis(4),
		}, nil
	default:
		return Config{}, fmt.Errorf("chaos: unknown preset %q (off|mild|moderate|heavy)", name)
	}
}

// ParseConfig parses a -chaos flag value. The spec is either a preset
// name (off, mild, moderate, heavy) or a comma-separated key=value
// list; a leading preset seeds the fields the keys then override:
//
//	moderate,drop=0.2,hang-max=300ms
//
// Probability keys (floats in [0,1]): drop, dup, reorder, spike, hang,
// ge-good-bad, ge-bad-good, ge-bad-loss. Duration keys (Go syntax,
// e.g. 80ms): dup-delay-max, reorder-delay-max, spike-max, hang-max,
// ge-bad-delay-max, skew-bound. The scale key multiplies every
// probability configured so far (Config.Scale).
func ParseConfig(spec string) (Config, error) {
	cfg := Config{}
	first := true
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, hasEq := strings.Cut(part, "=")
		if !hasEq {
			if !first {
				return Config{}, fmt.Errorf("chaos: preset %q must come first in spec %q", part, spec)
			}
			p, err := Preset(part)
			if err != nil {
				return Config{}, err
			}
			cfg = p
			first = false
			continue
		}
		first = false
		if err := cfg.set(key, val); err != nil {
			return Config{}, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// set applies one key=value override.
func (c *Config) set(key, val string) error {
	prob := func(dst *float64) error {
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("chaos: bad probability %s=%q: %v", key, val, err)
		}
		*dst = p
		return nil
	}
	dur := func(dst *rtime.Duration) error {
		d, err := parseDuration(val)
		if err != nil {
			return fmt.Errorf("chaos: bad duration %s=%q: %v", key, val, err)
		}
		*dst = d
		return nil
	}
	switch key {
	case "drop":
		return prob(&c.Drop)
	case "dup":
		return prob(&c.Dup)
	case "reorder":
		return prob(&c.Reorder)
	case "spike":
		return prob(&c.Spike)
	case "hang":
		return prob(&c.Hang)
	case "ge-good-bad":
		return prob(&c.GE.PGoodBad)
	case "ge-bad-good":
		return prob(&c.GE.PBadGood)
	case "ge-bad-loss":
		return prob(&c.GE.BadLoss)
	case "dup-delay-max":
		return dur(&c.DupDelayMax)
	case "reorder-delay-max":
		return dur(&c.ReorderDelayMax)
	case "spike-max":
		return dur(&c.SpikeMax)
	case "hang-max":
		return dur(&c.HangMax)
	case "ge-bad-delay-max":
		return dur(&c.GE.BadDelayMax)
	case "skew-bound":
		return dur(&c.SkewBound)
	case "scale":
		x, err := strconv.ParseFloat(val, 64)
		if err != nil || x < 0 {
			return fmt.Errorf("chaos: bad scale %q", val)
		}
		*c = c.Scale(x)
		return nil
	default:
		return fmt.Errorf("chaos: unknown key %q", key)
	}
}

// parseDuration parses a duration literal with ms/us/s/m suffixes into
// the repo's microsecond grid. Bare numbers are microseconds.
func parseDuration(s string) (rtime.Duration, error) {
	unit := rtime.Microsecond
	num := s
	switch {
	case strings.HasSuffix(s, "ms"):
		unit, num = rtime.Millisecond, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "us"):
		unit, num = rtime.Microsecond, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "µs"):
		unit, num = rtime.Microsecond, strings.TrimSuffix(s, "µs")
	case strings.HasSuffix(s, "s"):
		unit, num = rtime.Second, strings.TrimSuffix(s, "s")
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, err
	}
	return rtime.Duration(v * float64(unit)), nil
}
