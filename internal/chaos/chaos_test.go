package chaos_test

import (
	"reflect"
	"testing"

	"rtoffload/internal/chaos"
	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
)

func ms(v int64) rtime.Duration { return rtime.FromMillis(v) }

// newQueue builds a deterministic queueing inner server.
func newQueue(t *testing.T, seed uint64) *server.Queue {
	t.Helper()
	cfg, err := server.ScenarioConfig(server.NotBusy)
	if err != nil {
		t.Fatal(err)
	}
	q, err := server.NewQueue(stats.NewRNG(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// probe issues n spaced requests and returns the responses.
func probe(srv server.Server, n int) []server.Response {
	out := make([]server.Response, n)
	at := rtime.Instant(0)
	for i := range out {
		out[i] = srv.Respond(at, i%4, 10_000)
		at = at.Add(ms(25))
	}
	return out
}

func TestAllPassIsBitIdentical(t *testing.T) {
	inj, err := chaos.New(newQueue(t, 7), chaos.Config{}, stats.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	wrapped := probe(inj, 400)
	bare := probe(newQueue(t, 7), 400)
	if !reflect.DeepEqual(wrapped, bare) {
		t.Fatal("all-pass injector changed at least one response")
	}
}

func TestDropLosesEverything(t *testing.T) {
	inj, err := chaos.New(server.Fixed{Latency: ms(5)}, chaos.Config{Drop: 1}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	sched := inj.StartRecording()
	for _, r := range probe(inj, 50) {
		if r.Arrives {
			t.Fatal("response survived Drop=1")
		}
	}
	if got := sched.FaultCount(chaos.KindDrop); got != 50 {
		t.Fatalf("recorded %d drops, want 50", got)
	}
	if got := sched.Dropped(); got != 50 {
		t.Fatalf("Dropped() = %d, want 50", got)
	}
}

func TestDuplicateRescuesDroppedResponse(t *testing.T) {
	base := ms(5)
	cfg := chaos.Config{Drop: 1, Dup: 1, DupDelayMax: ms(20)}
	inj, err := chaos.New(server.Fixed{Latency: base}, cfg, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	sched := inj.StartRecording()
	for _, r := range probe(inj, 50) {
		if !r.Arrives {
			t.Fatal("duplicate failed to rescue a dropped response")
		}
		if r.Latency < base || r.Latency > base+ms(20) {
			t.Fatalf("rescued latency %v outside [%v, %v]", r.Latency, base, base+ms(20))
		}
	}
	rescued := 0
	for _, e := range sched.Events {
		if e.Kind == chaos.KindDuplicate && e.Rescued {
			rescued++
		}
	}
	if rescued != 50 {
		t.Fatalf("recorded %d rescues, want 50", rescued)
	}
	if sched.Dropped() != 0 {
		t.Fatal("rescued responses still counted as dropped")
	}
}

func TestDuplicateCannotReviveInnerLoss(t *testing.T) {
	cfg := chaos.Config{Dup: 1, DupDelayMax: ms(20)}
	inj, err := chaos.New(server.Fixed{Lost: true}, cfg, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range probe(inj, 20) {
		if r.Arrives {
			t.Fatal("duplicate revived a response the inner server never sent")
		}
	}
}

func TestDelayFaultsOnlyDelay(t *testing.T) {
	base := ms(5)
	cases := []struct {
		name string
		cfg  chaos.Config
		kind chaos.Kind
		max  rtime.Duration
	}{
		{"spike", chaos.Config{Spike: 1, SpikeMax: ms(30)}, chaos.KindSpike, ms(30)},
		{"reorder", chaos.Config{Reorder: 1, ReorderDelayMax: ms(40)}, chaos.KindReorder, ms(40)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj, err := chaos.New(server.Fixed{Latency: base}, tc.cfg, stats.NewRNG(4))
			if err != nil {
				t.Fatal(err)
			}
			sched := inj.StartRecording()
			for _, r := range probe(inj, 60) {
				if !r.Arrives {
					t.Fatal("delay fault lost a response")
				}
				if r.Latency < base || r.Latency > base+tc.max {
					t.Fatalf("latency %v outside [%v, %v]", r.Latency, base, base+tc.max)
				}
			}
			if sched.FaultCount(tc.kind) == 0 {
				t.Fatal("no fault recorded")
			}
		})
	}
}

func TestHangStallsBurst(t *testing.T) {
	// Hang=1 with a fixed window: the first request opens a stall at
	// issue 0; every response due before its end is delivered at the
	// end, so a burst of fast requests collapses onto one instant.
	cfg := chaos.Config{Hang: 1, HangMax: ms(100)}
	inj, err := chaos.New(server.Fixed{Latency: ms(1)}, cfg, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	sched := inj.StartRecording()
	var arrivals []rtime.Instant
	at := rtime.Instant(0)
	for i := 0; i < 8; i++ {
		r := inj.Respond(at, 0, 100)
		if !r.Arrives {
			t.Fatal("hang lost a response")
		}
		arrivals = append(arrivals, at.Add(r.Latency))
		at = at.Add(ms(2)) // burst well inside any stall window
	}
	if sched.FaultCount(chaos.KindHang) == 0 {
		t.Skip("all drawn stall windows were shorter than the burst spacing")
	}
	stalled := 0
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] == arrivals[i-1] {
			stalled++
		}
	}
	if stalled == 0 {
		t.Fatal("no two burst responses collapsed onto a stall end")
	}
}

func TestGilbertElliottBurstLoss(t *testing.T) {
	// An almost-absorbing bad state with certain loss: once the channel
	// goes bad, nearly every subsequent response is lost.
	cfg := chaos.Config{GE: chaos.GilbertElliott{
		PGoodBad: 1, PBadGood: 1e-12, BadLoss: 1,
	}}
	inj, err := chaos.New(server.Fixed{Latency: ms(5)}, cfg, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	sched := inj.StartRecording()
	rs := probe(inj, 30)
	for i, r := range rs {
		if r.Arrives {
			t.Fatalf("response %d survived the absorbing bad channel", i)
		}
	}
	if got := sched.FaultCount(chaos.KindBadChannel); got != 30 {
		t.Fatalf("recorded %d bad-channel faults, want 30", got)
	}
}

func TestGilbertElliottDelaysWhileBad(t *testing.T) {
	base := ms(5)
	cfg := chaos.Config{GE: chaos.GilbertElliott{
		PGoodBad: 0.5, PBadGood: 0.5, BadDelayMax: ms(50),
	}}
	inj, err := chaos.New(server.Fixed{Latency: base}, cfg, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	sched := inj.StartRecording()
	for _, r := range probe(inj, 200) {
		if !r.Arrives {
			t.Fatal("loss without BadLoss configured")
		}
		if r.Latency < base || r.Latency > base+ms(50) {
			t.Fatalf("latency %v outside [%v, %v]", r.Latency, base, base+ms(50))
		}
	}
	if sched.FaultCount(chaos.KindBadChannel) == 0 {
		t.Fatal("bad channel never delayed anything over 200 requests")
	}
}

func TestSkewIsBoundedAndNonNegative(t *testing.T) {
	base := ms(2)
	bound := ms(5) // larger than the base latency: forces the clamp path
	inj, err := chaos.New(server.Fixed{Latency: base}, chaos.Config{SkewBound: bound}, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	sched := inj.StartRecording()
	sawLow, sawHigh := false, false
	for _, r := range probe(inj, 300) {
		if !r.Arrives {
			t.Fatal("skew lost a response")
		}
		if r.Latency < 0 || r.Latency > base+bound {
			t.Fatalf("skewed latency %v outside [0, %v]", r.Latency, base+bound)
		}
		if r.Latency < base {
			sawLow = true
		}
		if r.Latency > base {
			sawHigh = true
		}
	}
	if !sawLow || !sawHigh {
		t.Fatal("skew never moved the latency in both directions")
	}
	for _, e := range sched.Events {
		if e.Kind != chaos.KindSkew {
			continue
		}
		if e.Delta < -base || e.Delta > bound {
			t.Fatalf("applied skew %v outside [%v, %v]", e.Delta, -base, bound)
		}
	}
}

// TestStreamIndependence is the determinism contract: enabling one
// fault class must not perturb another class's decisions, because each
// draws from its own forked stream.
func TestStreamIndependence(t *testing.T) {
	droppedSet := func(cfg chaos.Config) []int64 {
		inj, err := chaos.New(server.Fixed{Latency: ms(5)}, cfg, stats.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		sched := inj.StartRecording()
		probe(inj, 200)
		var drops []int64
		for _, e := range sched.Events {
			if e.Kind == chaos.KindDrop {
				drops = append(drops, e.Req)
			}
		}
		return drops
	}
	plain := droppedSet(chaos.Config{Drop: 0.3})
	withSpikes := droppedSet(chaos.Config{Drop: 0.3, Spike: 0.5, SpikeMax: ms(30),
		Reorder: 0.2, ReorderDelayMax: ms(10), SkewBound: ms(1)})
	if !reflect.DeepEqual(plain, withSpikes) {
		t.Fatal("enabling unrelated faults changed the drop stream")
	}
	if len(plain) == 0 {
		t.Fatal("Drop=0.3 never fired over 200 requests")
	}
}

func TestScheduleReplayIsExact(t *testing.T) {
	cfg, err := chaos.Preset("heavy")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := chaos.New(newQueue(t, 11), cfg, stats.NewRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	sched := inj.StartRecording()
	recorded := probe(inj, 300)

	player, err := chaos.NewPlayer(sched)
	if err != nil {
		t.Fatal(err)
	}
	replayed := probe(player, 300)
	if err := player.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recorded, replayed) {
		t.Fatal("replay diverged from the recorded observations")
	}
}

func TestPlayerDetectsDivergence(t *testing.T) {
	inj, err := chaos.New(server.Fixed{Latency: ms(5)}, chaos.Config{}, stats.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	sched := inj.StartRecording()
	probe(inj, 3)

	player, err := chaos.NewPlayer(sched)
	if err != nil {
		t.Fatal(err)
	}
	player.Respond(0, 0, 10_000)
	player.Respond(rtime.Instant(ms(25)), 99, 10_000) // wrong task ID
	if player.Err() == nil {
		t.Fatal("divergent replay not detected")
	}

	overrun, err := chaos.NewPlayer(&chaos.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	if r := overrun.Respond(0, 0, 0); r.Arrives {
		t.Fatal("request beyond the schedule produced a response")
	}
	if overrun.Err() == nil {
		t.Fatal("schedule overrun not detected")
	}
}

func TestInversionsCountsFIFOViolations(t *testing.T) {
	s := &chaos.Schedule{Requests: []chaos.RequestRecord{
		{Issue: 0, Final: server.Response{Latency: ms(100), Arrives: true}},
		{Issue: rtime.Instant(ms(10)), Final: server.Response{Latency: ms(5), Arrives: true}},
		{Issue: rtime.Instant(ms(20)), Final: server.Response{Latency: ms(5), Arrives: true}},
	}}
	if got := s.Inversions(); got != 1 {
		t.Fatalf("Inversions() = %d, want 1", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []chaos.Config{
		{Drop: -0.1},
		{Dup: 1.5},
		{Reorder: 2},
		{Spike: -1},
		{Hang: 1.01},
		{SpikeMax: -1},
		{SkewBound: -1},
		{GE: chaos.GilbertElliott{PGoodBad: 0.5}}, // can never recover
		{GE: chaos.GilbertElliott{PGoodBad: 2, PBadGood: 1}},
		{GE: chaos.GilbertElliott{PGoodBad: 0.1, PBadGood: 0.1, BadDelayMax: -1}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		if _, err := chaos.New(server.Fixed{}, cfg, stats.NewRNG(1)); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
	if _, err := chaos.New(nil, chaos.Config{}, stats.NewRNG(1)); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := chaos.New(server.Fixed{}, chaos.Config{}, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := chaos.NewPlayer(nil); err == nil {
		t.Error("nil schedule accepted")
	}
}

func TestEnabledAndScale(t *testing.T) {
	if (chaos.Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	heavy, err := chaos.Preset("heavy")
	if err != nil {
		t.Fatal(err)
	}
	if !heavy.Enabled() {
		t.Error("heavy preset reports disabled")
	}
	if heavy.Scale(0).Enabled() {
		t.Error("Scale(0) still enabled")
	}
	half := heavy.Scale(0.5)
	if half.Drop != heavy.Drop/2 || half.GE.PGoodBad != heavy.GE.PGoodBad/2 {
		t.Error("Scale(0.5) did not halve probabilities")
	}
	if half.SpikeMax != heavy.SpikeMax {
		t.Error("Scale changed a delay bound")
	}
	big := heavy.Scale(100)
	if big.Drop != 1 || big.Spike != 1 {
		t.Error("Scale did not clamp probabilities at 1")
	}
	if err := big.Validate(); err != nil {
		t.Errorf("scaled config invalid: %v", err)
	}
	if neg := heavy.Scale(-3); neg.Enabled() {
		t.Error("negative scale not treated as 0")
	}
}

func TestKindString(t *testing.T) {
	kinds := []chaos.Kind{chaos.KindDrop, chaos.KindDuplicate, chaos.KindReorder,
		chaos.KindSpike, chaos.KindHang, chaos.KindBadChannel, chaos.KindSkew, chaos.Kind(99)}
	want := []string{"drop", "duplicate", "reorder", "spike", "hang", "bad-channel", "skew", "Kind(99)"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("Kind %d: got %q want %q", int(k), k.String(), want[i])
		}
	}
}

func TestParseConfig(t *testing.T) {
	for _, name := range []string{"", "off", "none", "mild", "moderate", "heavy"} {
		if _, err := chaos.ParseConfig(name); err != nil {
			t.Errorf("preset %q rejected: %v", name, err)
		}
	}
	cfg, err := chaos.ParseConfig("moderate,drop=0.2,hang-max=300ms,skew-bound=1500us")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Drop != 0.2 {
		t.Errorf("drop override ignored: %g", cfg.Drop)
	}
	if cfg.HangMax != ms(300) {
		t.Errorf("hang-max override ignored: %v", cfg.HangMax)
	}
	if cfg.SkewBound != rtime.FromMicros(1500) {
		t.Errorf("skew-bound override ignored: %v", cfg.SkewBound)
	}
	moderate, _ := chaos.Preset("moderate")
	if cfg.Dup != moderate.Dup {
		t.Error("preset field lost by override parsing")
	}

	cfg, err = chaos.ParseConfig("drop=0.4, spike=0.1 ,spike-max=2s")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Drop != 0.4 || cfg.Spike != 0.1 || cfg.SpikeMax != rtime.Second*2 {
		t.Errorf("key=value spec parsed wrong: %+v", cfg)
	}

	scaled, err := chaos.ParseConfig("heavy,scale=0.5")
	if err != nil {
		t.Fatal(err)
	}
	heavy, _ := chaos.Preset("heavy")
	if scaled.Drop != heavy.Drop/2 {
		t.Error("scale key not applied")
	}

	for _, bad := range []string{
		"bogus",
		"drop=0.1,mild", // preset after keys
		"drop=nope",
		"spike-max=fast",
		"unknown=1",
		"scale=-1",
		"drop=1.5",        // fails final validation
		"ge-good-bad=0.5", // channel can never recover
	} {
		if _, err := chaos.ParseConfig(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
