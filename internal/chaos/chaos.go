// Package chaos is a composable fault-injection layer for the timing
// unreliable components in package server.
//
// The offloading mechanism of the paper observes a server through
// exactly one channel — the response time of each request — so every
// networking fault that matters in a real deployment (Behnke et al.'s
// IIoT uncertainty taxonomy: loss, duplication, reordering, latency
// spikes, connection stalls, correlated bad-channel bursts, clock
// skew) projects onto that channel as "the result arrives later, or
// not at all". An Injector wraps any server.Server and applies those
// projections adversarially:
//
//   - Drop: the response is lost (independent Bernoulli per request).
//   - Duplicate: a retransmitted copy trails the original by a random
//     delay; when the original was dropped by the chaos layer, the
//     late duplicate *rescues* the request at the higher latency —
//     at-least-once delivery semantics.
//   - Reorder: the response is held back in a queue and re-delivered
//     behind later traffic; on the response-time channel this is
//     observable as a FIFO inversion against subsequent requests.
//   - Spike: a transient latency spike (uniform, bounded).
//   - Hang: the component stalls mid-burst for a random window; every
//     response due inside the window is delivered at its end.
//   - GilbertElliott: a two-state good/bad channel model with
//     correlated loss and extra delay while the channel is bad.
//   - Skew: bounded clock skew between the client's request timestamp
//     and response timestamp, observable as a bounded measurement
//     error on the latency (never below zero).
//
// Determinism contract: every fault class draws from its own forked
// stats.RNG stream, and a disabled fault consumes no randomness, so
// enabling or re-tuning one fault never perturbs the decisions of the
// others, and the injected fault sequence is a pure function of
// (Config, seed, request count) — never of the wrapped server's
// behavior. An all-pass Config (the zero value) makes the Injector a
// bit-exact no-op: the wrapped run's Result, statistics and traces are
// identical to the unwrapped server's.
//
// Injected faults can be recorded into a Schedule and replayed with a
// Player, giving failure reproduction that is independent of the RNG
// streams that produced the faults.
package chaos

import (
	"fmt"
	"math"

	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
)

// GilbertElliott parameterizes the correlated good/bad channel model.
// The channel starts good; before each request it transitions with the
// configured probabilities, so bad periods arrive in bursts whose mean
// length is 1/PBadGood requests.
type GilbertElliott struct {
	// PGoodBad is the per-request probability of entering the bad
	// state; zero disables the channel model entirely.
	PGoodBad float64
	// PBadGood is the per-request probability of recovering. Must be
	// positive when PGoodBad is.
	PBadGood float64
	// BadLoss is the response-loss probability while bad.
	BadLoss float64
	// BadDelayMax: while bad, each response is additionally delayed by
	// a uniform draw from [0, BadDelayMax].
	BadDelayMax rtime.Duration
}

// enabled reports whether the channel model is active.
func (g GilbertElliott) enabled() bool { return g.PGoodBad > 0 }

// validate checks the channel parameters.
func (g GilbertElliott) validate() error {
	switch {
	case !validProb(g.PGoodBad) || !validProb(g.PBadGood) || !validProb(g.BadLoss):
		return fmt.Errorf("chaos: Gilbert–Elliott probability out of [0,1]")
	case g.PGoodBad > 0 && g.PBadGood <= 0:
		return fmt.Errorf("chaos: Gilbert–Elliott channel can never recover (PBadGood = 0)")
	case g.BadDelayMax < 0:
		return fmt.Errorf("chaos: negative Gilbert–Elliott delay")
	}
	return nil
}

// Config selects which faults the Injector applies and how hard. The
// zero value is the all-pass configuration: no fault is ever injected
// and the wrapped server's responses pass through bit-identically.
type Config struct {
	// Drop is the independent per-request response-loss probability.
	Drop float64

	// Dup is the probability that a request's response is duplicated;
	// the copy trails the original by a uniform draw from
	// [0, DupDelayMax]. A duplicate rescues a response dropped by the
	// chaos layer (Drop or the bad channel) at the delayed instant.
	Dup         float64
	DupDelayMax rtime.Duration

	// Reorder is the probability that a response is held back and
	// re-delivered behind later traffic, delayed by a uniform draw
	// from [0, ReorderDelayMax].
	Reorder         float64
	ReorderDelayMax rtime.Duration

	// Spike is the probability of a transient latency spike, uniform
	// in [0, SpikeMax].
	Spike    float64
	SpikeMax rtime.Duration

	// Hang is the per-request probability that the component stalls
	// for a uniform window in [0, HangMax] starting at the request's
	// issue instant; every response due inside a stall window is
	// delivered at its end.
	Hang    float64
	HangMax rtime.Duration

	// GE is the correlated good/bad channel model.
	GE GilbertElliott

	// SkewBound is the clock-skew bound: each observed latency is
	// perturbed by a uniform draw from [−SkewBound, +SkewBound],
	// clamped at zero.
	SkewBound rtime.Duration
}

func validProb(p float64) bool { return p >= 0 && p <= 1 && !math.IsNaN(p) }

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case !validProb(c.Drop):
		return fmt.Errorf("chaos: drop probability %g out of [0,1]", c.Drop)
	case !validProb(c.Dup):
		return fmt.Errorf("chaos: duplicate probability %g out of [0,1]", c.Dup)
	case !validProb(c.Reorder):
		return fmt.Errorf("chaos: reorder probability %g out of [0,1]", c.Reorder)
	case !validProb(c.Spike):
		return fmt.Errorf("chaos: spike probability %g out of [0,1]", c.Spike)
	case !validProb(c.Hang):
		return fmt.Errorf("chaos: hang probability %g out of [0,1]", c.Hang)
	case c.DupDelayMax < 0 || c.ReorderDelayMax < 0 || c.SpikeMax < 0 || c.HangMax < 0 || c.SkewBound < 0:
		return fmt.Errorf("chaos: negative fault duration")
	}
	return c.GE.validate()
}

// Enabled reports whether any fault can fire under this configuration.
func (c Config) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Reorder > 0 || c.Spike > 0 ||
		c.Hang > 0 || c.GE.enabled() || c.SkewBound > 0
}

// Scale returns a copy with every fault *probability* multiplied by x
// (clamped to [0,1]); delay bounds are kept. Scale(0) is all-pass.
// It is the intensity knob of the robustness ablation.
func (c Config) Scale(x float64) Config {
	if x < 0 {
		x = 0
	}
	clamp := func(p float64) float64 {
		p *= x
		if p > 1 {
			return 1
		}
		return p
	}
	out := c
	out.Drop = clamp(c.Drop)
	out.Dup = clamp(c.Dup)
	out.Reorder = clamp(c.Reorder)
	out.Spike = clamp(c.Spike)
	out.Hang = clamp(c.Hang)
	out.GE.PGoodBad = clamp(c.GE.PGoodBad)
	out.GE.BadLoss = clamp(c.GE.BadLoss)
	if x == 0 {
		out.SkewBound = 0
	}
	return out
}

// Injector wraps a server.Server and perturbs its responses according
// to a Config. It implements server.Server. Like the stateful servers
// it wraps, it must see non-decreasing issue instants and is not safe
// for concurrent use.
type Injector struct {
	inner server.Server
	cfg   Config

	// One independent stream per fault class, forked in fixed order
	// from the constructor's base RNG.
	chanRNG    *stats.RNG
	dropRNG    *stats.RNG
	dupRNG     *stats.RNG
	reorderRNG *stats.RNG
	spikeRNG   *stats.RNG
	hangRNG    *stats.RNG
	skewRNG    *stats.RNG

	bad       bool          // Gilbert–Elliott state
	hangUntil rtime.Instant // end of the current stall window
	req       int64         // request counter

	rec *Schedule // non-nil while recording
}

// New builds an Injector around inner. The base RNG is consumed to
// fork one independent stream per fault class; it can be discarded
// afterwards.
func New(inner server.Server, cfg Config, rng *stats.RNG) (*Injector, error) {
	if inner == nil {
		return nil, fmt.Errorf("chaos: nil inner server")
	}
	if rng == nil {
		return nil, fmt.Errorf("chaos: nil RNG")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		inner:      inner,
		cfg:        cfg,
		chanRNG:    rng.Fork(),
		dropRNG:    rng.Fork(),
		dupRNG:     rng.Fork(),
		reorderRNG: rng.Fork(),
		spikeRNG:   rng.Fork(),
		hangRNG:    rng.Fork(),
		skewRNG:    rng.Fork(),
	}, nil
}

// StartRecording begins recording every request and injected fault
// into a fresh Schedule, which it returns. The Schedule keeps growing
// until StartRecording is called again.
func (in *Injector) StartRecording() *Schedule {
	in.rec = &Schedule{}
	return in.rec
}

// uniformDur draws a uniform duration from [0, max]; zero when the
// bound is zero.
func uniformDur(rng *stats.RNG, max rtime.Duration) rtime.Duration {
	if max <= 0 {
		return 0
	}
	return rtime.Duration(rng.Int64N(int64(max) + 1))
}

// Respond implements server.Server.
func (in *Injector) Respond(issue rtime.Instant, taskID int, payloadBytes int64) server.Response {
	req := in.req
	in.req++

	inner := in.inner.Respond(issue, taskID, payloadBytes)
	final := inner
	record := func(kind Kind, delta rtime.Duration, dropped, rescued bool) {
		if in.rec != nil {
			in.rec.Events = append(in.rec.Events, FaultEvent{
				Req: req, Kind: kind, Delta: delta, Dropped: dropped, Rescued: rescued,
			})
		}
	}

	// Correlated channel: advance state, then apply burst loss/delay.
	// All channel draws come from chanRNG, so the state trajectory
	// depends only on that stream.
	if in.cfg.GE.enabled() {
		if in.bad {
			if in.chanRNG.Bool(in.cfg.GE.PBadGood) {
				in.bad = false
			}
		} else if in.chanRNG.Bool(in.cfg.GE.PGoodBad) {
			in.bad = true
		}
		if in.bad {
			lost := in.cfg.GE.BadLoss > 0 && in.chanRNG.Bool(in.cfg.GE.BadLoss)
			delay := uniformDur(in.chanRNG, in.cfg.GE.BadDelayMax)
			if final.Arrives {
				if lost {
					final = server.Response{}
					record(KindBadChannel, 0, true, false)
				} else if delay > 0 {
					final.Latency += delay
					record(KindBadChannel, delay, false, false)
				}
			}
		}
	}

	// Independent drop. The draw happens whenever the fault is
	// configured — even against an already-lost response — so the
	// stream stays aligned with the request count.
	if in.cfg.Drop > 0 {
		if in.dropRNG.Bool(in.cfg.Drop) && final.Arrives {
			final = server.Response{}
			record(KindDrop, 0, true, false)
		}
	}

	// Duplicate: the retransmitted copy trails the original. When the
	// chaos layer dropped the original, the duplicate rescues the
	// request at inner latency + delay; otherwise the copy is absorbed
	// by the client and only the record remains.
	if in.cfg.Dup > 0 {
		if in.dupRNG.Bool(in.cfg.Dup) {
			delay := uniformDur(in.dupRNG, in.cfg.DupDelayMax)
			if !final.Arrives && inner.Arrives {
				final = server.Response{Latency: inner.Latency + delay, Arrives: true}
				record(KindDuplicate, delay, false, true)
			} else {
				record(KindDuplicate, delay, false, false)
			}
		}
	}

	// Stall windows: a new hang may start at this request's issue, and
	// any response due inside the current window waits for its end.
	if in.cfg.Hang > 0 {
		if in.hangRNG.Bool(in.cfg.Hang) && issue >= in.hangUntil {
			in.hangUntil = issue.Add(uniformDur(in.hangRNG, in.cfg.HangMax))
		}
		if final.Arrives {
			if arrival := issue.Add(final.Latency); arrival < in.hangUntil {
				delta := in.hangUntil.Sub(arrival)
				final.Latency += delta
				record(KindHang, delta, false, false)
			}
		}
	}

	// Transient latency spike.
	if in.cfg.Spike > 0 {
		if in.spikeRNG.Bool(in.cfg.Spike) {
			delta := uniformDur(in.spikeRNG, in.cfg.SpikeMax)
			if final.Arrives && delta > 0 {
				final.Latency += delta
				record(KindSpike, delta, false, false)
			}
		}
	}

	// Holdback reordering: re-deliver behind later traffic.
	if in.cfg.Reorder > 0 {
		if in.reorderRNG.Bool(in.cfg.Reorder) {
			delta := uniformDur(in.reorderRNG, in.cfg.ReorderDelayMax)
			if final.Arrives && delta > 0 {
				final.Latency += delta
				record(KindReorder, delta, false, false)
			}
		}
	}

	// Bounded clock skew on the observation itself.
	if in.cfg.SkewBound > 0 {
		skew := rtime.Duration(in.skewRNG.Int64N(2*int64(in.cfg.SkewBound)+1)) - in.cfg.SkewBound
		if final.Arrives && skew != 0 {
			final.Latency += skew
			if final.Latency < 0 {
				skew -= final.Latency // report only the applied part
				final.Latency = 0
			}
			record(KindSkew, skew, false, false)
		}
	}

	if in.rec != nil {
		in.rec.Requests = append(in.rec.Requests, RequestRecord{
			Req: req, TaskID: taskID, Issue: issue, Payload: payloadBytes,
			Inner: inner, Final: final,
		})
	}
	return final
}
