// Package invariant is the hard-guarantee property harness: it runs
// randomized (task set × fault schedule) trials through the paper's
// full pipeline — Offloading Decision Manager admission (package
// core), EDF deadline-splitting simulation (package sched), chaos
// fault injection (package chaos) — and machine-checks the paper's
// theorems as executable predicates:
//
//	I1  An admitted configuration never misses a deadline, under any
//	    fault schedule (Theorems 1–3: the compensation path bounds the
//	    demand regardless of server behavior).
//	I2  Local compensation starts exactly at the Ri timer when the
//	    result is absent; post-processing starts no later than Ri
//	    after the offload request (§5.1's timer interrupt).
//	I3  The realized benefit is never below the all-local baseline —
//	    per job and in aggregate (Gi is non-decreasing and the
//	    compensation path earns at least Gi(0)).
//	I4  The recorded execution trace satisfies the independent EDF
//	    invariant checkers of package trace.
//	I5  The scheduler's per-task accounting is coherent: every
//	    released job finishes, and outcomes partition the job count.
//
// Each trial derives every random draw from one uint64 seed via
// stats.DeriveSeed, so any reported violation reproduces from its
// seed alone; the injected fault schedule is additionally recorded
// and replayable (chaos.Schedule / chaos.Player).
package invariant

import (
	"errors"
	"fmt"

	"rtoffload/internal/chaos"
	"rtoffload/internal/core"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
	"rtoffload/internal/trace"
)

// Stream ids for DeriveSeed; appended only, never renumbered (the
// trial identity is part of every reported seed).
const (
	streamTaskSet uint64 = iota + 1
	streamDecision
	streamServer
	streamChaos
	streamSim
	streamFleetSpec
	streamFleetChaos
	streamFleetServer
)

// Trial is one fully resolved randomized trial: the generated system,
// its admitted decision, the fault configuration, and the simulation
// parameters. Build it with NewTrial, run it with Run.
type Trial struct {
	Seed     uint64
	Set      task.Set
	Decision *core.Decision
	Chaos    chaos.Config
	Horizon  rtime.Duration
	Jitter   rtime.Duration

	// spec resolves the wrapped component model deterministically
	// (newInner can be called any number of times and always builds an
	// identical server).
	spec componentSpec
}

// componentSpec is a fully resolved recipe for one unreliable
// component: building it any number of times yields identically
// seeded fresh instances. Fleet trials hold one spec per server.
type componentSpec struct {
	kind     int
	seed     uint64
	cfg      server.QueueConfig
	fixedLat rtime.Duration
}

// randomComponent draws a component recipe spanning all four wrapped
// models, with latency scales tied to the task periods.
func randomComponent(rng *stats.RNG, maxPeriod rtime.Duration) componentSpec {
	var sp componentSpec
	sp.kind = rng.IntN(4)
	sp.seed = rng.Uint64()
	sp.fixedLat = rtime.Duration(rng.Int64N(int64(maxPeriod)) + 1)
	sp.cfg = server.QueueConfig{
		Workers:              1 + rng.IntN(3),
		BandwidthBytesPerSec: 1_000_000 + rng.Int64N(9_000_000),
		NetLatencyMean:       rtime.Duration(rng.Int64N(int64(rtime.FromMillis(8))) + 1),
		NetLatencySigma:      rng.Float64(),
		ServiceMean:          rtime.Duration(rng.Int64N(int64(rtime.FromMillis(20))) + 1),
		ServiceRefBytes:      10_000,
		ServiceJitter:        0.3 * rng.Float64(),
		BackgroundRatePerSec: 40 * rng.Float64(),
		BackgroundServiceMean: rtime.Duration(
			rng.Int64N(int64(rtime.FromMillis(60))) + 1),
		LossProbability: 0.2 * rng.Float64(),
	}
	return sp
}

// build constructs the component. Every call returns an identically
// seeded fresh instance, which is what lets the all-pass identity
// check run the same workload twice.
func (sp componentSpec) build() (server.Server, error) {
	switch sp.kind {
	case 0:
		return server.Fixed{Latency: sp.fixedLat}, nil
	case 1:
		return server.Fixed{Lost: true}, nil
	case 2:
		return server.NewQueue(stats.NewRNG(sp.seed), sp.cfg)
	default:
		// A reservation-backed component: latency capped at half the
		// shortest budget in the set (when one exists), so the
		// guaranteed-hit path gets exercised too.
		bound := sp.fixedLat/2 + 1
		inner, err := server.NewQueue(stats.NewRNG(sp.seed), sp.cfg)
		if err != nil {
			return nil, err
		}
		return server.Bounded{Inner: inner, Bound: bound}, nil
	}
}

// NewTrial derives a randomized trial from its seed: a random task
// set admitted by the Offloading Decision Manager, a random unreliable
// component, and a random fault configuration. It returns ok=false
// when the drawn system has nothing to simulate (the decision manager
// can reject nothing — UUniFast keeps all-local feasible — but the
// guard stays for robustness).
func NewTrial(seed uint64) (*Trial, bool, error) {
	rng := stats.NewRNG(stats.DeriveSeed(seed, streamTaskSet))
	set, err := randomSet(rng)
	if err != nil {
		return nil, false, fmt.Errorf("invariant: seed %d: %w", seed, err)
	}

	decRNG := stats.NewRNG(stats.DeriveSeed(seed, streamDecision))
	opts := core.Options{Solver: core.SolverDP}
	if decRNG.Bool(0.5) {
		opts.Solver = core.SolverHEU
	}
	opts.ExactUpgrade = decRNG.Bool(0.3)
	dec, err := core.Decide(set, opts)
	if errors.Is(err, core.ErrInfeasible) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("invariant: seed %d: %w", seed, err)
	}

	maxPeriod := rtime.Duration(0)
	for _, t := range set {
		if t.Period > maxPeriod {
			maxPeriod = t.Period
		}
	}

	tr := &Trial{
		Seed:     seed,
		Set:      set,
		Decision: dec,
		Horizon:  3 * maxPeriod,
	}

	srvRNG := stats.NewRNG(stats.DeriveSeed(seed, streamServer))
	tr.spec = randomComponent(srvRNG, maxPeriod)

	chaosRNG := stats.NewRNG(stats.DeriveSeed(seed, streamChaos))
	tr.Chaos = randomChaos(chaosRNG, maxPeriod)

	simRNG := stats.NewRNG(stats.DeriveSeed(seed, streamSim))
	if simRNG.Bool(0.5) {
		tr.Jitter = rtime.Duration(simRNG.Int64N(int64(maxPeriod/4)) + 1)
	}
	return tr, true, nil
}

// randomSet draws the randomized task system shared by single-server
// and fleet trials: UUniFast utilizations keep the all-local fallback
// feasible, so admission can always return something to simulate.
func randomSet(rng *stats.RNG) (task.Set, error) {
	params := task.RandomSetParams{
		N:           2 + rng.IntN(5),
		TotalUtil:   0.3 + 0.6*rng.Float64(),
		PeriodLoMS:  20,
		PeriodHiMS:  200,
		Q:           1 + rng.IntN(3),
		SetupFrac:   0.1 + 0.2*rng.Float64(),
		RespLoFrac:  0.15 + 0.15*rng.Float64(),
		RespHiFrac:  0.5 + 0.4*rng.Float64(),
		BenefitBase: 1,
	}
	return task.GenerateRandomSet(rng, params)
}

// randomChaos draws a fault configuration spanning all-pass to
// hostile. Delay bounds scale with the task periods so the faults
// stress the compensation path instead of merely saturating it.
func randomChaos(rng *stats.RNG, period rtime.Duration) chaos.Config {
	dur := func(frac float64) rtime.Duration {
		max := int64(frac * float64(period))
		if max < 1 {
			max = 1
		}
		return rtime.Duration(rng.Int64N(max) + 1)
	}
	cfg := chaos.Config{}
	if rng.Bool(0.1) {
		return cfg // all-pass trials keep the no-fault path honest
	}
	if rng.Bool(0.6) {
		cfg.Drop = rng.Float64()
	}
	if rng.Bool(0.4) {
		cfg.Dup = rng.Float64()
		cfg.DupDelayMax = dur(0.5)
	}
	if rng.Bool(0.4) {
		cfg.Reorder = rng.Float64()
		cfg.ReorderDelayMax = dur(0.5)
	}
	if rng.Bool(0.5) {
		cfg.Spike = rng.Float64()
		cfg.SpikeMax = dur(1.0)
	}
	if rng.Bool(0.3) {
		cfg.Hang = 0.2 * rng.Float64()
		cfg.HangMax = dur(1.5)
	}
	if rng.Bool(0.4) {
		cfg.GE = chaos.GilbertElliott{
			PGoodBad:    rng.Float64(),
			PBadGood:    0.05 + 0.95*rng.Float64(),
			BadLoss:     rng.Float64(),
			BadDelayMax: dur(0.5),
		}
	}
	if rng.Bool(0.3) {
		cfg.SkewBound = dur(0.05)
	}
	return cfg
}

// newInner builds the trial's unreliable component from its spec.
func (tr *Trial) newInner() (server.Server, error) {
	return tr.spec.build()
}

// SimConfig assembles the scheduler configuration around a server.
func (tr *Trial) SimConfig(srv server.Server) sched.Config {
	return sched.Config{
		Assignments:   tr.Decision.Assignments(),
		Server:        srv,
		Horizon:       tr.Horizon,
		Policy:        sched.SplitEDF,
		ReleaseJitter: tr.Jitter,
		RNG:           stats.NewRNG(stats.DeriveSeed(tr.Seed, streamSim, 1)),
		RecordTrace:   true,
	}
}

// Run simulates the trial under its fault schedule and checks every
// invariant, returning the recorded fault schedule for replay. The
// returned error is the first violation (or an infrastructure error).
func (tr *Trial) Run() (*chaos.Schedule, error) {
	inner, err := tr.newInner()
	if err != nil {
		return nil, fmt.Errorf("invariant: seed %d: %w", tr.Seed, err)
	}
	inj, err := chaos.New(inner, tr.Chaos, stats.NewRNG(stats.DeriveSeed(tr.Seed, streamChaos, 1)))
	if err != nil {
		return nil, fmt.Errorf("invariant: seed %d: %w", tr.Seed, err)
	}
	rec := inj.StartRecording()
	res, err := sched.Run(tr.SimConfig(inj))
	if err != nil {
		return nil, fmt.Errorf("invariant: seed %d: %w", tr.Seed, err)
	}
	if err := tr.CheckResult(res); err != nil {
		return rec, err
	}
	return rec, nil
}

// jobKey identifies one job across its sub-job records.
type jobKey struct {
	task int
	seq  int64
}

// fail prefixes a violation with the trial's reproduction seed.
func (tr *Trial) fail(format string, args ...any) error {
	return fmt.Errorf("invariant: seed %d: %s", tr.Seed, fmt.Sprintf(format, args...))
}

// CheckResult asserts invariants I1–I5 against a simulation result
// with a materialized trace. The streaming twin is StreamChecker +
// CheckAggregates (see stream.go), which verifies the same predicates
// without holding the trace in memory.
func (tr *Trial) CheckResult(res *sched.Result) error {
	if err := tr.CheckAggregates(res); err != nil {
		return err
	}

	// I4 — independent EDF trace checkers.
	if res.Trace == nil {
		return tr.fail("I4: trial ran without a trace")
	}
	if err := res.Trace.Validate(); err != nil {
		return tr.fail("I4: trace invalid: %v", err)
	}

	// I2 — compensation fires exactly at the Ri timer. Index each
	// offloaded job's setup completion, then check the second phase.
	budgets := tr.offloadBudgets()
	setupDone := make(map[jobKey]rtime.Instant)
	for i := range res.Trace.Subs {
		rec := &res.Trace.Subs[i]
		if rec.Sub.Kind == trace.Setup && rec.Completed {
			setupDone[jobKey{rec.Sub.TaskID, rec.Sub.Seq}] = rec.Completion
		}
	}
	for i := range res.Trace.Subs {
		rec := &res.Trace.Subs[i]
		done, ok := setupDone[jobKey{rec.Sub.TaskID, rec.Sub.Seq}]
		if err := tr.checkSecondPhase(rec, done, ok, budgets); err != nil {
			return err
		}
	}
	return nil
}

// offloadBudgets maps each offloaded task to its response budget Ri.
func (tr *Trial) offloadBudgets() map[int]rtime.Duration {
	budgets := make(map[int]rtime.Duration, len(tr.Decision.Choices))
	for _, c := range tr.Decision.Choices {
		if c.Offload {
			budgets[c.Task.ID] = c.Budget()
		}
	}
	return budgets
}

// checkSecondPhase is the per-record I2 predicate, shared by the
// materialized and streaming checkers: compensation releases exactly
// at the Ri timer, post-processing within [setup-done, setup-done+Ri].
func (tr *Trial) checkSecondPhase(rec *trace.SubRecord, done rtime.Instant, haveSetup bool, budgets map[int]rtime.Duration) error {
	switch rec.Sub.Kind {
	case trace.Comp:
		if !haveSetup {
			return tr.fail("I2: compensation for %v without a completed setup", rec.Sub)
		}
		budget, ok := budgets[rec.Sub.TaskID]
		if !ok {
			return tr.fail("I2: compensation for non-offloaded task %d", rec.Sub.TaskID)
		}
		if want := done.Add(budget); rec.Release != want {
			return tr.fail("I2: compensation for %v released at %v, want the Ri timer at %v",
				rec.Sub, rec.Release, want)
		}
	case trace.Post:
		if !haveSetup {
			return tr.fail("I2: post-processing for %v without a completed setup", rec.Sub)
		}
		budget := budgets[rec.Sub.TaskID]
		if rec.Release < done || rec.Release > done.Add(budget) {
			return tr.fail("I2: post-processing for %v released at %v outside [%v, %v]",
				rec.Sub, rec.Release, done, done.Add(budget))
		}
	}
	return nil
}

// CheckAggregates asserts the invariants that read only the result's
// aggregate fields — I1 (hard guarantee), I3 (benefit floor), I5
// (accounting coherence). The per-job loops cover whatever the run
// retained; with Config.DiscardJobResults they reduce to the aggregate
// checks, which is exactly what campaign cells keep.
func (tr *Trial) CheckAggregates(res *sched.Result) error {
	// I1 — hard guarantee: zero misses for the admitted set.
	if res.Misses != 0 {
		return tr.fail("I1: %d deadline misses under fault schedule", res.Misses)
	}
	locals := make(map[int]float64, len(tr.Decision.Choices))
	levels := make(map[int]float64, len(tr.Decision.Choices))
	for _, c := range tr.Decision.Choices {
		locals[c.Task.ID] = c.Task.LocalBenefit
		if c.Offload {
			levels[c.Task.ID] = c.Task.Levels[c.Level].Benefit
		}
	}
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if j.Missed || !j.Finished {
			return tr.fail("I1: job τ%d#%d missed (finished=%v)", j.TaskID, j.Seq, j.Finished)
		}
		if j.Finish > j.Deadline {
			return tr.fail("I1: job τ%d#%d finished at %v past deadline %v", j.TaskID, j.Seq, j.Finish, j.Deadline)
		}
		// I3 — benefit floor: every job earns at least the local
		// baseline; hits earn exactly the level benefit.
		if j.Benefit < locals[j.TaskID] {
			return tr.fail("I3: job τ%d#%d earned %g below local baseline %g",
				j.TaskID, j.Seq, j.Benefit, locals[j.TaskID])
		}
		if j.Outcome == sched.OffloadHit && j.Benefit != levels[j.TaskID] {
			return tr.fail("I3: hit τ%d#%d earned %g, want level benefit %g",
				j.TaskID, j.Seq, j.Benefit, levels[j.TaskID])
		}
	}
	if res.TotalBenefit < res.TotalBaseline*(1-1e-12) {
		return tr.fail("I3: total benefit %g below all-local baseline %g",
			res.TotalBenefit, res.TotalBaseline)
	}

	// I5 — accounting coherence per task.
	for _, c := range tr.Decision.Choices {
		st := res.PerTask[c.Task.ID]
		if st == nil {
			return tr.fail("I5: task %d has no stats", c.Task.ID)
		}
		if st.Released != st.Finished {
			return tr.fail("I5: task %d released %d but finished %d", c.Task.ID, st.Released, st.Finished)
		}
		if st.Hits+st.Compensations+st.LocalRuns != st.Finished {
			return tr.fail("I5: task %d outcomes %d+%d+%d do not partition %d jobs",
				c.Task.ID, st.Hits, st.Compensations, st.LocalRuns, st.Finished)
		}
		if !c.Offload && (st.Hits != 0 || st.Compensations != 0) {
			return tr.fail("I5: local task %d has offload outcomes", c.Task.ID)
		}
		if st.Misses != 0 || st.Aborted != 0 || st.BoundViolations != 0 {
			return tr.fail("I5: task %d misses=%d aborted=%d boundViolations=%d",
				c.Task.ID, st.Misses, st.Aborted, st.BoundViolations)
		}
	}
	return nil
}

// Check runs one full randomized trial from its seed: derive, admit,
// simulate under chaos, and verify I1–I5. Skipped (infeasible) trials
// return nil.
func Check(seed uint64) error {
	tr, ok, err := NewTrial(seed)
	if err != nil || !ok {
		return err
	}
	_, err = tr.Run()
	return err
}

// CheckAllPassIdentity asserts the bit-identity guarantee: the trial's
// workload run through an all-pass Injector produces a Result —
// including per-task statistics and the full execution trace —
// deep-equal to the same workload run against the unwrapped server.
// The caller compares; this helper returns both results.
func (tr *Trial) AllPassPair() (wrapped, bare *sched.Result, err error) {
	inner, err := tr.newInner()
	if err != nil {
		return nil, nil, err
	}
	inj, err := chaos.New(inner, chaos.Config{}, stats.NewRNG(stats.DeriveSeed(tr.Seed, streamChaos, 2)))
	if err != nil {
		return nil, nil, err
	}
	wrapped, err = sched.Run(tr.SimConfig(inj))
	if err != nil {
		return nil, nil, err
	}
	inner2, err := tr.newInner()
	if err != nil {
		return nil, nil, err
	}
	bare, err = sched.Run(tr.SimConfig(inner2))
	if err != nil {
		return nil, nil, err
	}
	return wrapped, bare, nil
}
