package invariant_test

import (
	"testing"

	"rtoffload/internal/chaos/invariant"
)

// FuzzChaosHardGuarantee lets the fuzzer hunt for a seed whose derived
// (task set × fault schedule) trial violates any hard-guarantee
// invariant. The entire trial is a pure function of the seed, so any
// crasher the fuzzer saves reproduces exactly.
func FuzzChaosHardGuarantee(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(0x5eed_c4a0_5001))
	f.Add(^uint64(0))
	f.Add(uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := invariant.Check(seed); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzFleetHardGuarantee is the fleet twin: the fuzzer hunts for a
// seed whose derived (task set × fleet × per-server fault schedule)
// trial violates I1–I6. Pure function of the seed, so any crasher
// reproduces exactly.
func FuzzFleetHardGuarantee(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(0x5eed_c4a0_5001))
	f.Add(^uint64(0))
	f.Add(uint64(0xf1ee7))
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := invariant.FleetCheck(seed); err != nil {
			t.Fatal(err)
		}
	})
}
