// Streaming invariant verification. At campaign scale a trial cannot
// materialize its trace, so StreamChecker verifies I4 (the EDF trace
// invariants, via trace.StreamChecker) and I2 (the Ri timer law) in
// one pass as the simulation emits events, and RunStreaming wires it
// into the engine as the trace sink. The aggregate invariants I1, I3,
// and I5 read only the result's counters (CheckAggregates), so the
// whole trial runs in memory bounded by the in-flight job count —
// stream_test.go pins accept/reject agreement with the materialized
// Run/CheckResult path.
package invariant

import (
	"rtoffload/internal/chaos"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/stats"
	"rtoffload/internal/trace"
)

// StreamChecker is a trace.Sink verifying I4 and I2 one-pass for a
// trial. Each job's setup-completion instant is retained only until
// its second phase closes, so memory stays proportional to in-flight
// jobs, not to the horizon.
type StreamChecker struct {
	tr      *Trial
	inner   *trace.StreamChecker
	budgets map[int]rtime.Duration
	// setupDone holds completed setups whose second phase has not
	// closed yet (lookups and deletes only — never ranged).
	setupDone map[jobKey]rtime.Instant
	err       error
}

// NewStreamChecker builds the one-pass I4+I2 verifier for a trial.
func NewStreamChecker(tr *Trial) *StreamChecker {
	return &StreamChecker{
		tr:        tr,
		inner:     trace.NewStreamChecker(),
		budgets:   tr.offloadBudgets(),
		setupDone: make(map[jobKey]rtime.Instant),
	}
}

// OpenSub implements trace.Sink.
func (c *StreamChecker) OpenSub(id trace.SubID, release, deadline rtime.Instant, wcet rtime.Duration) {
	c.inner.OpenSub(id, release, deadline, wcet)
}

// AppendSegment implements trace.Sink.
func (c *StreamChecker) AppendSegment(s trace.Segment) {
	c.inner.AppendSegment(s)
}

// CloseSub implements trace.Sink. Closes arrive in end-instant order
// (the Sink contract), and a second phase always ends after its setup
// completes, so the setup's instant is present when needed.
func (c *StreamChecker) CloseSub(r trace.SubRecord) {
	c.inner.CloseSub(r)
	if c.err != nil {
		return
	}
	key := jobKey{r.Sub.TaskID, r.Sub.Seq}
	switch r.Sub.Kind {
	case trace.Setup:
		if r.Completed {
			c.setupDone[key] = r.Completion
		}
	case trace.Comp, trace.Post:
		done, ok := c.setupDone[key]
		c.err = c.tr.checkSecondPhase(&r, done, ok, c.budgets)
		delete(c.setupDone, key)
	}
}

// Finish implements trace.Sink: the first I4 violation wins (matching
// CheckResult's order), then I2.
func (c *StreamChecker) Finish() error {
	if err := c.inner.Finish(); err != nil {
		return c.tr.fail("I4: trace invalid: %v", err)
	}
	return c.err
}

// RunStreaming is Run in bounded memory: the trace streams through a
// StreamChecker instead of materializing, the per-job log is
// discarded, and the aggregate invariants check the counters. The
// returned error is the first violation (or an infrastructure error);
// the fault schedule comes back for replay either way.
func (tr *Trial) RunStreaming() (*chaos.Schedule, error) {
	inner, err := tr.newInner()
	if err != nil {
		return nil, tr.fail("%v", err)
	}
	inj, err := chaos.New(inner, tr.Chaos, stats.NewRNG(stats.DeriveSeed(tr.Seed, streamChaos, 1)))
	if err != nil {
		return nil, tr.fail("%v", err)
	}
	rec := inj.StartRecording()
	cfg := tr.SimConfig(inj)
	cfg.RecordTrace = false
	cfg.TraceSink = NewStreamChecker(tr)
	cfg.DiscardJobResults = true
	res, err := sched.Run(cfg)
	if err != nil {
		// Violations found by the sink surface here, already carrying
		// the trial seed.
		return rec, err
	}
	if err := tr.CheckAggregates(res); err != nil {
		return rec, err
	}
	return rec, nil
}

// CheckStreaming is Check's bounded-memory twin: derive the trial from
// its seed, simulate under chaos, verify I1–I5 one-pass. Skipped
// (infeasible) trials return nil.
func CheckStreaming(seed uint64) error {
	tr, ok, err := NewTrial(seed)
	if err != nil || !ok {
		return err
	}
	_, err = tr.RunStreaming()
	return err
}
