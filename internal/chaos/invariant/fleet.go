package invariant

import (
	"errors"
	"fmt"

	"rtoffload/internal/chaos"
	"rtoffload/internal/core"
	"rtoffload/internal/fleet"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
)

// FleetTrial is one randomized multi-server trial: a random fleet of
// 1–3 unreliable components, each with its own independent fault
// configuration, a fleet-admitted decision routing every offloaded
// task to one server, and optionally a mid-run server failure. On top
// of the single-server invariants I1–I5 (which must hold per server —
// faults on one component must never leak a miss into tasks routed
// elsewhere) it checks:
//
//	I6  Capacity coupling is never exceeded: every per-server and
//	    per-group occupancy pool of the admitted decision stays within
//	    its cap, and the simulation routes every offloaded job to
//	    exactly the server the decision chose. Routing is fixed at
//	    admission, so the two checks together bound the load on every
//	    pool at every instant of the trace.
type FleetTrial struct {
	Trial
	Fleet fleet.Fleet

	// Configs holds one independent fault configuration per server,
	// in fleet order.
	Configs []chaos.Config

	// FailIdx/FailAt inject the failover scenario: requests issued to
	// server FailIdx at or after FailAt are lost (server.FailAfter).
	// FailIdx is -1 when the trial has no failover.
	FailIdx int
	FailAt  rtime.Instant

	specs []componentSpec
}

// NewFleetTrial derives a randomized fleet trial from its seed. The
// drawn fleets deliberately span the stress scenarios: hot servers
// (tight capacity pools), skewed load (asymmetric scales and extra
// latency), coupled radio groups, one-server Gilbert–Elliott
// degradation, and mid-run failover. ok=false means the drawn system
// was infeasible for the drawn solver grid — nothing to simulate.
func NewFleetTrial(seed uint64) (*FleetTrial, bool, error) {
	rng := stats.NewRNG(stats.DeriveSeed(seed, streamTaskSet))
	set, err := randomSet(rng)
	if err != nil {
		return nil, false, fmt.Errorf("invariant: fleet seed %d: %w", seed, err)
	}

	maxPeriod := rtime.Duration(0)
	for _, t := range set {
		if t.Period > maxPeriod {
			maxPeriod = t.Period
		}
	}

	ft := &FleetTrial{FailIdx: -1}
	ft.Seed = seed
	ft.Set = set
	ft.Horizon = 3 * maxPeriod

	specRNG := stats.NewRNG(stats.DeriveSeed(seed, streamFleetSpec))
	ft.Fleet = randomFleet(specRNG)
	n := len(ft.Fleet.Servers)

	decRNG := stats.NewRNG(stats.DeriveSeed(seed, streamDecision))
	opts := core.Options{Solver: core.SolverDP, Fleet: ft.Fleet}
	switch decRNG.IntN(3) {
	case 0:
		opts.Solver = core.SolverHEU
	case 1:
		opts.Solver = core.SolverCore
	}
	opts.ExactUpgrade = decRNG.Bool(0.3)
	dec, err := core.Decide(set, opts)
	if errors.Is(err, core.ErrInfeasible) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("invariant: fleet seed %d: %w", seed, err)
	}
	ft.Decision = dec

	// One component recipe and one fault configuration per server,
	// each from its own forked stream: the faults are independent by
	// construction.
	ft.specs = make([]componentSpec, n)
	ft.Configs = make([]chaos.Config, n)
	for i := 0; i < n; i++ {
		srvRNG := stats.NewRNG(stats.DeriveSeed(seed, streamFleetServer, uint64(i)))
		ft.specs[i] = randomComponent(srvRNG, maxPeriod)
		chaosRNG := stats.NewRNG(stats.DeriveSeed(seed, streamFleetChaos, uint64(i)))
		ft.Configs[i] = randomChaos(chaosRNG, maxPeriod)
	}

	// One-server degradation: force a hostile Gilbert–Elliott channel
	// onto a single server, leaving the rest as drawn.
	if n > 1 && specRNG.Bool(0.3) {
		bad := specRNG.IntN(n)
		ft.Configs[bad].GE = chaos.GilbertElliott{
			PGoodBad:    0.5 + 0.4*specRNG.Float64(),
			PBadGood:    0.05 + 0.2*specRNG.Float64(),
			BadLoss:     0.7 + 0.3*specRNG.Float64(),
			BadDelayMax: maxPeriod/2 + 1,
		}
	}

	// Failover: one server stops responding partway through the run.
	if specRNG.Bool(0.25) {
		ft.FailIdx = specRNG.IntN(n)
		ft.FailAt = rtime.Instant(specRNG.Int64N(int64(ft.Horizon)) + 1)
	}

	simRNG := stats.NewRNG(stats.DeriveSeed(seed, streamSim))
	if simRNG.Bool(0.5) {
		ft.Jitter = rtime.Duration(simRNG.Int64N(int64(maxPeriod/4)) + 1)
	}
	return ft, true, nil
}

// randomFleet draws 1–3 servers spanning neutral, scaled (skewed
// load), discounted, capacity-capped (hot server), and group-coupled
// shapes. Every drawn fleet passes fleet.Validate by construction.
func randomFleet(rng *stats.RNG) fleet.Fleet {
	names := []string{"s0", "s1", "s2"}
	n := 1 + rng.IntN(3)
	var f fleet.Fleet
	grouped := n > 1 && rng.Bool(0.4)
	if grouped {
		f.Groups = []fleet.Group{{ID: "g", CapNum: int64(2 + rng.IntN(3)), CapDen: 4}}
	}
	for i := 0; i < n; i++ {
		s := fleet.Server{ID: names[i]}
		if rng.Bool(0.5) {
			s.ScaleNum, s.ScaleDen = int64(rng.IntN(3)+1), int64(rng.IntN(2)+1)
		}
		if rng.Bool(0.4) {
			s.Extra = rtime.Duration(rng.Int64N(int64(rtime.FromMillis(5))) + 1)
		}
		if rng.Bool(0.4) {
			s.Reliability = rng.Uniform(0.6, 1)
		}
		if rng.Bool(0.5) {
			s.CapNum, s.CapDen = int64(rng.IntN(4)+1), 8
		}
		if grouped && rng.Bool(0.6) {
			s.Group = "g"
		}
		f.Servers = append(f.Servers, s)
	}
	return f
}

// Simulate builds the per-server fault injectors, hands the engine a
// named-server routing table, and runs the split-EDF engine once. It
// returns the raw result plus one recorded fault schedule per server
// (fleet order) for replay; it does not check invariants — Run does.
func (ft *FleetTrial) Simulate() (*sched.Result, []*chaos.Schedule, error) {
	byID := make(map[string]server.Server, len(ft.specs))
	recs := make([]*chaos.Schedule, len(ft.specs))
	for i := range ft.specs {
		inner, err := ft.specs[i].build()
		if err != nil {
			return nil, nil, fmt.Errorf("invariant: fleet seed %d: %w", ft.Seed, err)
		}
		inj, err := chaos.New(inner, ft.Configs[i],
			stats.NewRNG(stats.DeriveSeed(ft.Seed, streamFleetChaos, uint64(i), 1)))
		if err != nil {
			return nil, nil, fmt.Errorf("invariant: fleet seed %d: %w", ft.Seed, err)
		}
		recs[i] = inj.StartRecording()
		srv := server.Server(inj)
		if i == ft.FailIdx {
			srv = server.FailAfter{Inner: inj, At: ft.FailAt}
		}
		byID[ft.Fleet.Servers[i].ID] = srv
	}

	cfg := ft.SimConfig(nil)
	cfg.Servers = byID
	res, err := sched.Run(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("invariant: fleet seed %d: %w", ft.Seed, err)
	}
	return res, recs, nil
}

// Run simulates the trial and checks I1–I5 plus the fleet-specific
// I6, returning the per-server fault schedules for replay. The error
// is the first violation (or an infrastructure error).
func (ft *FleetTrial) Run() ([]*chaos.Schedule, error) {
	res, recs, err := ft.Simulate()
	if err != nil {
		return nil, err
	}
	if err := ft.CheckResult(res); err != nil {
		return recs, err
	}
	return recs, ft.CheckFleet(res)
}

// CheckFleet asserts invariant I6 against a simulation result: the
// admitted decision's capacity account is present and within every
// cap, it matches a recomputation from the choices, and the engine's
// routing attribution agrees with the decision for every task.
// Because routing is fixed at admission, decision-level pool bounds
// plus routing consistency bound the occupancy of every pool over the
// whole trace.
func (ft *FleetTrial) CheckFleet(res *sched.Result) error {
	loads := ft.Decision.ServerLoads
	if loads == nil {
		return ft.fail("I6: fleet decision carries no server loads")
	}
	if over := fleet.FirstOver(loads); over >= 0 {
		return ft.fail("I6: pool %q over capacity: %v > %v",
			loads[over].Pool, loads[over].Occupancy, loads[over].Capacity)
	}
	for _, c := range ft.Decision.Choices {
		st := res.PerTask[c.Task.ID]
		if st == nil {
			return ft.fail("I6: task %d has no stats", c.Task.ID)
		}
		if !c.Offload {
			if st.ServerID != "" {
				return ft.fail("I6: local task %d attributed to server %q", c.Task.ID, st.ServerID)
			}
			continue
		}
		want := c.Task.Levels[c.Level].ServerID
		if ft.Fleet.ServerIndex(want) < 0 {
			return ft.fail("I6: task %d admitted to unknown server %q", c.Task.ID, want)
		}
		if st.ServerID != want {
			return ft.fail("I6: task %d ran against server %q, admitted to %q",
				c.Task.ID, st.ServerID, want)
		}
	}
	return nil
}

// FleetCheck runs one full randomized fleet trial from its seed:
// derive, admit against the drawn fleet, simulate under per-server
// chaos, and verify I1–I6. Skipped (infeasible) trials return nil.
func FleetCheck(seed uint64) error {
	ft, ok, err := NewFleetTrial(seed)
	if err != nil || !ok {
		return err
	}
	_, err = ft.Run()
	return err
}
