package invariant_test

import (
	"strings"
	"testing"

	"rtoffload/internal/chaos/invariant"
	"rtoffload/internal/stats"
	"rtoffload/internal/trace"
)

// TestStreamingMatchesMaterialized is the invariant-level differential:
// the bounded-memory RunStreaming path must accept exactly the trials
// the materialized Run + CheckResult path accepts, on the same fault
// schedules (both paths derive identical RNG streams from the seed).
func TestStreamingMatchesMaterialized(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	checked := 0
	for i := 0; i < trials; i++ {
		seed := stats.DeriveSeed(0xbeefcafe, 11, uint64(i))
		tr, ok, err := invariant.NewTrial(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		_, errMat := tr.Run()
		tr2, _, err := invariant.NewTrial(seed) // fresh trial: servers carry state
		if err != nil {
			t.Fatal(err)
		}
		_, errStr := tr2.RunStreaming()
		if (errMat == nil) != (errStr == nil) {
			t.Fatalf("seed %d: materialized says %v, streaming says %v", seed, errMat, errStr)
		}
		checked++
	}
	if checked < trials/2 {
		t.Fatalf("only %d of %d trials were feasible", checked, trials)
	}
}

// TestStreamCheckerRejectsBadStreams feeds the streaming verifier
// hand-built violating streams: an EDF inversion (I4) and a
// compensation released off the Ri timer (I2).
func TestStreamCheckerRejectsBadStreams(t *testing.T) {
	tr := feasibleTrial(t)

	t.Run("I4-edf-inversion", func(t *testing.T) {
		c := invariant.NewStreamChecker(tr)
		early := trace.SubID{TaskID: 1, Kind: trace.Local}
		late := trace.SubID{TaskID: 2, Kind: trace.Local}
		c.OpenSub(early, 0, 10_000, 4000)
		c.OpenSub(late, 0, 99_000, 3000)
		c.AppendSegment(trace.Segment{Start: 0, End: 3000, Sub: late})
		err := c.Finish()
		if err == nil || !strings.Contains(err.Error(), "I4") {
			t.Fatalf("EDF inversion not reported as I4: %v", err)
		}
	})

	t.Run("I2-comp-off-timer", func(t *testing.T) {
		c := invariant.NewStreamChecker(tr)
		// A compensation record whose setup never completed.
		comp := trace.SubID{TaskID: 1, Seq: 0, Kind: trace.Comp}
		c.OpenSub(comp, 5000, 20_000, 0)
		c.CloseSub(trace.SubRecord{
			Sub: comp, Release: 5000, Deadline: 20_000, WCET: 0,
			Completed: true, Completion: 5000,
		})
		err := c.Finish()
		if err == nil || !strings.Contains(err.Error(), "I2") {
			t.Fatalf("orphan compensation not reported as I2: %v", err)
		}
	})
}

// TestStreamingBoundedTrialPasses smoke-checks CheckStreaming over a
// seed range (the admitted sets must hold I1–I5 one-pass).
func TestStreamingBoundedTrialPasses(t *testing.T) {
	for i := 0; i < 25; i++ {
		seed := stats.DeriveSeed(0xfeed, 12, uint64(i))
		if err := invariant.CheckStreaming(seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// feasibleTrial searches the seed space for an admitted trial.
func feasibleTrial(t *testing.T) *invariant.Trial {
	t.Helper()
	for i := 0; ; i++ {
		seed := stats.DeriveSeed(0xabad1dea, 13, uint64(i))
		tr, ok, err := invariant.NewTrial(seed)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			return tr
		}
		if i > 400 {
			t.Fatal("no feasible trial in 400 seeds")
		}
	}
}
