package invariant_test

import (
	"reflect"
	"runtime"
	"testing"

	"rtoffload/internal/chaos"
	"rtoffload/internal/chaos/invariant"
	"rtoffload/internal/parallel"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/stats"
	"rtoffload/internal/trace"
)

// baseSeed keeps the CI trial population stable across runs; change it
// only deliberately (it re-rolls every randomized system).
const baseSeed uint64 = 0x5eed_c4a0_5001

// TestHardGuaranteeUnderChaos is the headline property: ≥10k randomized
// (task set × fault schedule) trials through admission, chaos injection
// and the split-EDF engine, each checked against invariants I1–I5.
// It runs in full even under -short — this is the CI guarantee.
func TestHardGuaranteeUnderChaos(t *testing.T) {
	const trials = 10_000
	_, err := parallel.Map(runtime.GOMAXPROCS(0), trials, func(i int) (struct{}, error) {
		seed := stats.DeriveSeed(baseSeed, 1, uint64(i))
		return struct{}{}, invariant.Check(seed)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTrialsExerciseFaults guards the harness against vacuity: across a
// sample of trials, faults of every class must actually fire, and a
// non-trivial share of responses must be lost or delayed. A harness
// whose chaos layer silently stopped injecting would pass the hard
// guarantee trivially; this test would catch it.
func TestTrialsExerciseFaults(t *testing.T) {
	counts := map[chaos.Kind]int{}
	dropped, requests, ran := 0, 0, 0
	for i := 0; i < 400; i++ {
		seed := stats.DeriveSeed(baseSeed, 2, uint64(i))
		tr, ok, err := invariant.NewTrial(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		rec, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		ran++
		requests += len(rec.Requests)
		dropped += rec.Dropped()
		for _, e := range rec.Events {
			counts[e.Kind]++
		}
	}
	if ran < 300 {
		t.Fatalf("only %d/400 trials ran; generator is rejecting too much", ran)
	}
	if requests == 0 {
		t.Fatal("no offload requests issued across all trials")
	}
	for _, k := range []chaos.Kind{
		chaos.KindDrop, chaos.KindDuplicate, chaos.KindReorder,
		chaos.KindSpike, chaos.KindHang, chaos.KindBadChannel, chaos.KindSkew,
	} {
		if counts[k] == 0 {
			t.Errorf("fault class %v never fired across %d trials (%d requests)", k, ran, requests)
		}
	}
	if dropped == 0 {
		t.Errorf("no responses dropped across %d requests", requests)
	}
}

// TestAllPassBitIdentity asserts the transparency guarantee on full
// simulations: with the zero (all-pass) chaos config, the complete
// sched.Result — jobs, per-task statistics, benefit totals and the
// recorded execution trace — is deep-equal to running the identical
// workload against the unwrapped server.
func TestAllPassBitIdentity(t *testing.T) {
	checked := 0
	for i := 0; checked < 50 && i < 200; i++ {
		seed := stats.DeriveSeed(baseSeed, 3, uint64(i))
		tr, ok, err := invariant.NewTrial(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		wrapped, bare, err := tr.AllPassPair()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wrapped, bare) {
			t.Fatalf("seed %d: all-pass chaos result differs from unwrapped server", seed)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d identity pairs checked", checked)
	}
}

// TestScheduleReplayMatchesRun closes the replay loop at the system
// level: re-running a trial's workload against a Player loaded with its
// recorded fault schedule reproduces the original simulation exactly.
func TestScheduleReplayMatchesRun(t *testing.T) {
	replayed := 0
	for i := 0; replayed < 25 && i < 200; i++ {
		seed := stats.DeriveSeed(baseSeed, 4, uint64(i))
		tr, ok, err := invariant.NewTrial(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		rec, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Requests) == 0 {
			continue
		}
		player, err := chaos.NewPlayer(rec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sched.Run(tr.SimConfig(player))
		if err != nil {
			t.Fatal(err)
		}
		if err := player.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := tr.CheckResult(res); err != nil {
			t.Fatalf("seed %d: replayed schedule violates invariants: %v", seed, err)
		}
		replayed++
	}
	if replayed < 25 {
		t.Fatalf("only %d replays checked", replayed)
	}
}

// TestCheckRejectsCorruptedResult makes sure the invariant predicates
// have teeth: tampering with a passing result must trip a violation.
func TestCheckRejectsCorruptedResult(t *testing.T) {
	var tr *invariant.Trial
	for i := 0; ; i++ {
		seed := stats.DeriveSeed(baseSeed, 5, uint64(i))
		cand, ok, err := invariant.NewTrial(seed)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			tr = cand
			break
		}
	}
	_, bare, err := tr.AllPassPair()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckResult(bare); err != nil {
		t.Fatalf("pristine result should pass: %v", err)
	}
	if len(bare.Jobs) == 0 {
		t.Fatal("trial produced no jobs")
	}

	corrupt := func(mutate func(r *sched.Result)) error {
		_, res, err := tr.AllPassPair()
		if err != nil {
			t.Fatal(err)
		}
		mutate(res)
		return tr.CheckResult(res)
	}

	if err := corrupt(func(r *sched.Result) { r.Misses = 1 }); err == nil {
		t.Error("I1 did not catch a forged miss count")
	}
	if err := corrupt(func(r *sched.Result) { r.Jobs[0].Finish = r.Jobs[0].Deadline + 1 }); err == nil {
		t.Error("I1 did not catch a post-deadline finish")
	}
	if err := corrupt(func(r *sched.Result) { r.Jobs[0].Benefit = -1 }); err == nil {
		t.Error("I3 did not catch a below-baseline benefit")
	}
	if err := corrupt(func(r *sched.Result) { r.Trace = nil }); err == nil {
		t.Error("I4 did not catch a missing trace")
	}
	if err := corrupt(func(r *sched.Result) {
		for _, st := range r.PerTask {
			st.Finished++
			break
		}
	}); err == nil {
		t.Error("I5 did not catch incoherent accounting")
	}
	if err := corrupt(func(r *sched.Result) { r.Jobs[0].Missed = true }); err == nil {
		t.Error("I1 did not catch a flagged miss")
	}
	if err := corrupt(func(r *sched.Result) { r.TotalBenefit = 0; r.TotalBaseline = 1 }); err == nil {
		t.Error("I3 did not catch a below-baseline total")
	}
	if err := corrupt(func(r *sched.Result) {
		for _, st := range r.PerTask {
			st.Misses = 1
			st.Finished++ // keep I5's partition check from firing first
			st.LocalRuns++
			break
		}
	}); err == nil {
		t.Error("I5 did not catch a nonzero per-task miss count")
	}
}

// TestCheckRejectsCorruptedTrace tampers with the timing records
// themselves: a compensation shifted off the Ri timer or a
// post-processing release outside [setup-done, setup-done+Ri] must
// trip I2. Trials are searched until both record kinds appear.
func TestCheckRejectsCorruptedTrace(t *testing.T) {
	type mutation struct {
		name string
		kind trace.Kind
		run  func(rec *trace.SubRecord)
	}
	muts := []mutation{
		{"comp-early", trace.Comp, func(rec *trace.SubRecord) { rec.Release-- }},
		{"comp-late", trace.Comp, func(rec *trace.SubRecord) { rec.Release++ }},
		{"post-late", trace.Post, func(rec *trace.SubRecord) { rec.Release = rec.Release.Add(rtime.FromSeconds(3600)) }},
	}
	for _, m := range muts {
		found := false
		for i := 0; i < 400 && !found; i++ {
			seed := stats.DeriveSeed(baseSeed, 6, uint64(i))
			tr, ok, err := invariant.NewTrial(seed)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
			_, res, err := tr.AllPassPair()
			if err != nil {
				t.Fatal(err)
			}
			for j := range res.Trace.Subs {
				rec := &res.Trace.Subs[j]
				if rec.Sub.Kind == m.kind {
					m.run(rec)
					found = true
					break
				}
			}
			if !found {
				continue
			}
			if err := tr.CheckResult(res); err == nil {
				t.Errorf("%s: corrupted trace passed the invariant check", m.name)
			}
		}
		if !found {
			t.Fatalf("%s: no trial with a %v record in 400 seeds", m.name, m.kind)
		}
	}
}
