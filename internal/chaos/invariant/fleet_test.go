package invariant_test

import (
	"math/big"
	"runtime"
	"testing"

	"rtoffload/internal/chaos/invariant"
	"rtoffload/internal/parallel"
	"rtoffload/internal/stats"
)

// TestFleetHardGuaranteeUnderChaos is the fleet twin of the headline
// property: ≥10k randomized (task set × fleet × per-server fault
// schedule) trials through fleet admission, independent per-server
// chaos injection, routed simulation, and invariants I1–I6. It runs
// in full even under -short — this is the CI guarantee.
func TestFleetHardGuaranteeUnderChaos(t *testing.T) {
	const trials = 10_000
	_, err := parallel.Map(runtime.GOMAXPROCS(0), trials, func(i int) (struct{}, error) {
		seed := stats.DeriveSeed(baseSeed, 7, uint64(i))
		return struct{}{}, invariant.FleetCheck(seed)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFleetTrialsExerciseScenarios guards the fleet harness against
// vacuity: across a sample of trials, the stress scenarios named by
// the experiment plan — multi-server fleets, capacity-capped (hot)
// servers, coupled groups, mid-run failover, forced one-server
// degradation — must all actually occur, tasks must be routed to more
// than one server overall, and faults must actually fire.
func TestFleetTrialsExerciseScenarios(t *testing.T) {
	var ran, multi, capped, grouped, failover, routed, dropped, requests int
	servers := map[string]bool{}
	for i := 0; i < 400; i++ {
		seed := stats.DeriveSeed(baseSeed, 8, uint64(i))
		ft, ok, err := invariant.NewFleetTrial(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		recs, err := ft.Run()
		if err != nil {
			t.Fatal(err)
		}
		ran++
		if len(ft.Fleet.Servers) > 1 {
			multi++
		}
		for _, s := range ft.Fleet.Servers {
			if s.CapDen != 0 {
				capped++
				break
			}
		}
		if len(ft.Fleet.Groups) > 0 {
			grouped++
		}
		if ft.FailIdx >= 0 {
			failover++
		}
		for _, rec := range recs {
			requests += len(rec.Requests)
			dropped += rec.Dropped()
		}
		for _, c := range ft.Decision.Choices {
			if c.Offload {
				routed++
				servers[c.Task.Levels[c.Level].ServerID] = true
			}
		}
	}
	if ran < 300 {
		t.Fatalf("only %d/400 fleet trials ran; generator is rejecting too much", ran)
	}
	for name, n := range map[string]int{
		"multi-server": multi, "capacity-capped": capped, "group-coupled": grouped,
		"failover": failover, "offload-routed": routed,
	} {
		if n == 0 {
			t.Errorf("scenario %s never occurred across %d trials", name, ran)
		}
	}
	if len(servers) < 2 {
		t.Errorf("offloads reached only %d distinct servers across %d trials", len(servers), ran)
	}
	if requests == 0 || dropped == 0 {
		t.Errorf("per-server chaos vacuous: %d requests, %d dropped", requests, dropped)
	}
}

// TestFleetCheckRejectsCorruptedResult makes sure I6 has teeth:
// tampering with the routing attribution or the decision's capacity
// account must trip a violation on an otherwise passing trial.
func TestFleetCheckRejectsCorruptedResult(t *testing.T) {
	var ft *invariant.FleetTrial
	for i := 0; ; i++ {
		seed := stats.DeriveSeed(baseSeed, 9, uint64(i))
		cand, ok, err := invariant.NewFleetTrial(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		offloads := 0
		for _, c := range cand.Decision.Choices {
			if c.Offload {
				offloads++
			}
		}
		if offloads > 0 {
			ft = cand
			break
		}
	}

	res, _, err := ft.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.CheckFleet(res); err != nil {
		t.Fatalf("pristine result should pass I6: %v", err)
	}

	for _, c := range ft.Decision.Choices {
		if c.Offload {
			was := res.PerTask[c.Task.ID].ServerID
			res.PerTask[c.Task.ID].ServerID = "rogue"
			if err := ft.CheckFleet(res); err == nil {
				t.Error("I6 did not catch a forged routing attribution")
			}
			res.PerTask[c.Task.ID].ServerID = was
			break
		}
	}

	wasOcc := ft.Decision.ServerLoads[0].Occupancy
	wasCap := ft.Decision.ServerLoads[0].Capacity
	ft.Decision.ServerLoads[0].Occupancy = new(big.Rat).SetInt64(2)
	ft.Decision.ServerLoads[0].Capacity = new(big.Rat).SetInt64(1)
	if err := ft.CheckFleet(res); err == nil {
		t.Error("I6 did not catch an over-capacity pool")
	}
	ft.Decision.ServerLoads[0].Occupancy = wasOcc
	ft.Decision.ServerLoads[0].Capacity = wasCap

	loads := ft.Decision.ServerLoads
	ft.Decision.ServerLoads = nil
	if err := ft.CheckFleet(res); err == nil {
		t.Error("I6 did not catch a missing capacity account")
	}
	ft.Decision.ServerLoads = loads
}
