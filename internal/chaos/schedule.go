package chaos

import (
	"fmt"

	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
)

// Kind labels one injected fault class.
type Kind int

const (
	// KindDrop is an independent response loss.
	KindDrop Kind = iota
	// KindDuplicate is a retransmitted response copy (rescuing when
	// the original was dropped by the chaos layer).
	KindDuplicate
	// KindReorder is a holdback re-delivery behind later traffic.
	KindReorder
	// KindSpike is a transient latency spike.
	KindSpike
	// KindHang is a stall window delaying every response due inside it.
	KindHang
	// KindBadChannel is correlated Gilbert–Elliott loss or delay.
	KindBadChannel
	// KindSkew is the bounded clock-skew measurement error.
	KindSkew
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindDuplicate:
		return "duplicate"
	case KindReorder:
		return "reorder"
	case KindSpike:
		return "spike"
	case KindHang:
		return "hang"
	case KindBadChannel:
		return "bad-channel"
	case KindSkew:
		return "skew"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// FaultEvent is one injected fault, attributed to the request it hit.
type FaultEvent struct {
	// Req is the zero-based request index at the Injector.
	Req  int64
	Kind Kind
	// Delta is the latency change the fault applied (negative only for
	// skew). Zero for pure losses.
	Delta rtime.Duration
	// Dropped marks a response discarded by this fault.
	Dropped bool
	// Rescued marks a duplicate that revived a previously dropped
	// response.
	Rescued bool
}

// RequestRecord captures one request through the Injector: what the
// wrapped server answered (Inner) and what the client observed after
// fault injection (Final).
type RequestRecord struct {
	Req     int64
	TaskID  int
	Issue   rtime.Instant
	Payload int64
	Inner   server.Response
	Final   server.Response
}

// Schedule is the recorded fault history of one Injector run: every
// request with its pre- and post-fault response, plus one event per
// injected fault. A Schedule is both an audit log (which faults fired,
// when, against whom) and a replay script (Player re-delivers the
// recorded observations without any randomness).
type Schedule struct {
	Requests []RequestRecord
	Events   []FaultEvent
}

// FaultCount returns the number of injected faults of one kind.
func (s *Schedule) FaultCount(kind Kind) int {
	n := 0
	for _, e := range s.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Dropped returns how many responses the chaos layer discarded
// (excluding rescued ones).
func (s *Schedule) Dropped() int {
	n := 0
	for _, r := range s.Requests {
		if r.Inner.Arrives && !r.Final.Arrives {
			n++
		}
	}
	return n
}

// Inversions counts FIFO inversions among the observed arrivals: pairs
// of consecutive requests where the earlier request's response arrived
// strictly after the later request's. It is how holdback reordering
// (and every other delay fault) becomes visible on the response-time
// channel.
func (s *Schedule) Inversions() int {
	n := 0
	for i := 1; i < len(s.Requests); i++ {
		prev, cur := &s.Requests[i-1], &s.Requests[i]
		if !prev.Final.Arrives || !cur.Final.Arrives {
			continue
		}
		if prev.Issue.Add(prev.Final.Latency) > cur.Issue.Add(cur.Final.Latency) {
			n++
		}
	}
	return n
}

// Player replays a recorded Schedule as a server.Server: request k of
// the replay receives exactly the Final observation request k received
// during recording. Replay is a pure function of the Schedule — no
// RNG, no wrapped server — so a failing fault schedule reproduces even
// after the code that generated it changes.
//
// The replayed workload must issue the same request sequence as the
// recorded one; Err reports the first divergence (requests beyond the
// recorded schedule are answered as lost).
type Player struct {
	sched *Schedule
	next  int
	err   error
}

// NewPlayer builds a replay server over a recorded schedule.
func NewPlayer(s *Schedule) (*Player, error) {
	if s == nil {
		return nil, fmt.Errorf("chaos: nil schedule")
	}
	return &Player{sched: s}, nil
}

// Respond implements server.Server.
func (p *Player) Respond(issue rtime.Instant, taskID int, payloadBytes int64) server.Response {
	if p.next >= len(p.sched.Requests) {
		if p.err == nil {
			p.err = fmt.Errorf("chaos: replay request %d beyond recorded schedule (%d requests)",
				p.next, len(p.sched.Requests))
		}
		p.next++
		return server.Response{}
	}
	rec := &p.sched.Requests[p.next]
	if p.err == nil && (rec.TaskID != taskID || rec.Issue != issue || rec.Payload != payloadBytes) {
		p.err = fmt.Errorf("chaos: replay request %d diverged: recorded task %d at %v (payload %d), got task %d at %v (payload %d)",
			p.next, rec.TaskID, rec.Issue, rec.Payload, taskID, issue, payloadBytes)
	}
	p.next++
	return rec.Final
}

// Err reports the first divergence between the replayed workload and
// the recorded schedule, or nil.
func (p *Player) Err() error { return p.err }
