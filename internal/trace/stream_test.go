package trace

import (
	"fmt"
	"math/rand"
	"testing"

	"rtoffload/internal/rtime"
)

// abandonedTrace is a valid schedule where τ1 is abandoned mid-flight
// (AbortAtDeadline policy) and τ2 takes over immediately.
func abandonedTrace() *Trace {
	s1 := SubID{TaskID: 1, Seq: 0, Kind: Local}
	s2 := SubID{TaskID: 2, Seq: 0, Kind: Local}
	return &Trace{
		Segments: []Segment{
			{Start: ms(0), End: ms(2), Sub: s1},
			{Start: ms(2), End: ms(5), Sub: s2},
		},
		Subs: []SubRecord{
			{Sub: s1, Release: ms(0), Deadline: ms(2), WCET: msd(5), Abandoned: true, AbandonTime: ms(2)},
			{Sub: s2, Release: ms(1), Deadline: ms(20), WCET: msd(3), Completed: true, Completion: ms(5)},
		},
	}
}

// zeroWCETTrace has a zero-budget sub-job that opens and closes at its
// release with no segments — the degenerate lifecycle the engine emits
// for zero-cost phases.
func zeroWCETTrace() *Trace {
	tr := validTrace()
	z := SubID{TaskID: 3, Seq: 0, Kind: Post}
	tr.Subs = append(tr.Subs, SubRecord{
		Sub: z, Release: ms(3), Deadline: ms(30), WCET: 0, Completed: true, Completion: ms(3),
	})
	return tr
}

// suspensionTrace mirrors TestCheckEDFOrderSuspension: a late-released
// compensation sub-job whose preceding idle-priority run is legal.
func suspensionTrace() *Trace {
	setup := SubID{TaskID: 1, Kind: Setup}
	comp := SubID{TaskID: 1, Kind: Comp}
	other := SubID{TaskID: 2, Kind: Local}
	return &Trace{
		Segments: []Segment{
			{Start: ms(0), End: ms(2), Sub: setup},
			{Start: ms(2), End: ms(8), Sub: other},
			{Start: ms(8), End: ms(11), Sub: comp},
		},
		Subs: []SubRecord{
			{Sub: setup, Release: ms(0), Deadline: ms(4), WCET: msd(2), Completed: true, Completion: ms(2)},
			{Sub: comp, Release: ms(8), Deadline: ms(20), WCET: msd(3), Completed: true, Completion: ms(11)},
			{Sub: other, Release: ms(0), Deadline: ms(30), WCET: msd(6), Completed: true, Completion: ms(8)},
		},
	}
}

// corpus returns the shared labeled corpus: the valid fixtures plus
// every seeded violation the in-memory checker unit tests pin.
func corpus() []struct {
	name string
	tr   *Trace
} {
	mutate := func(f func(tr *Trace)) *Trace {
		tr := validTrace()
		f(tr)
		return tr
	}
	return []struct {
		name string
		tr   *Trace
	}{
		{"valid", validTrace()},
		{"suspension", suspensionTrace()},
		{"abandoned", abandonedTrace()},
		{"zero-wcet", zeroWCETTrace()},
		{"empty-trace", &Trace{}},
		{"empty-segment", mutate(func(tr *Trace) { tr.Segments[0].End = tr.Segments[0].Start })},
		{"unknown-sub", mutate(func(tr *Trace) { tr.Segments[0].Sub.TaskID = 99 })},
		{"pre-release", mutate(func(tr *Trace) { tr.Subs[0].Release = ms(1) })},
		{"past-completion", mutate(func(tr *Trace) { tr.Subs[0].Completion = ms(3) })},
		{"overlap", mutate(func(tr *Trace) {
			tr.Segments[1].Start = ms(3)
			tr.Subs[1].Release = ms(2)
		})},
		{"under-execution", mutate(func(tr *Trace) { tr.Subs[0].WCET = msd(5) })},
		{"finished-unmarked", mutate(func(tr *Trace) { tr.Subs[1].Completed = false })},
		{"completed-and-abandoned", mutate(func(tr *Trace) {
			tr.Subs[0].Abandoned = true
			tr.Subs[0].AbandonTime = ms(4)
		})},
		{"edf-violation", mutate(func(tr *Trace) {
			// τ2 (deadline 20) cuts in front of τ1 (deadline 10).
			tr.Segments[0].Sub, tr.Segments[1].Sub = tr.Segments[1].Sub, tr.Segments[0].Sub
			tr.Subs[0].Release, tr.Subs[1].Release = ms(0), ms(0)
			tr.Subs[0].WCET, tr.Subs[1].WCET = msd(3), msd(4)
			tr.Subs[0].Completion, tr.Subs[1].Completion = ms(7), ms(3)
		})},
		{"idle-gap", mutate(func(tr *Trace) {
			tr.Segments[1].Start = ms(5)
			tr.Segments[1].End = ms(8)
			tr.Subs[1].Completion = ms(8)
		})},
		{"leading-gap", mutate(func(tr *Trace) {
			tr.Segments[0].Start = ms(1)
			tr.Subs[0].WCET = msd(3)
		})},
		{"no-segments-while-ready", &Trace{
			Subs: []SubRecord{{
				Sub: SubID{TaskID: 1}, Release: ms(0), Deadline: ms(10), WCET: msd(4),
			}},
		}},
	}
}

// TestStreamMatchesInMemoryCorpus is the accept/reject differential on
// the shared corpus: the streaming one-pass checker must agree with
// the in-memory checkers on every fixture and every seeded violation.
func TestStreamMatchesInMemoryCorpus(t *testing.T) {
	for _, tc := range corpus() {
		t.Run(tc.name, func(t *testing.T) {
			mem := tc.tr.Validate()
			str := tc.tr.ValidateStreaming()
			if (mem == nil) != (str == nil) {
				t.Fatalf("in-memory says %v, streaming says %v", mem, str)
			}
		})
	}
}

// TestStreamMatchesInMemoryFuzz mutates the valid fixtures with random
// time and lifecycle perturbations and asserts the two checker suites
// keep agreeing on accept/reject.
func TestStreamMatchesInMemoryFuzz(t *testing.T) {
	bases := []func() *Trace{validTrace, suspensionTrace, abandonedTrace, zeroWCETTrace}
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := bases[int(seed)%len(bases)]()
		for n := 1 + rng.Intn(3); n > 0; n-- {
			delta := rtime.Duration(rng.Int63n(5) - 2)
			switch rng.Intn(8) {
			case 0:
				s := &tr.Segments[rng.Intn(len(tr.Segments))]
				s.Start += rtime.Instant(delta)
			case 1:
				s := &tr.Segments[rng.Intn(len(tr.Segments))]
				s.End += rtime.Instant(delta)
			case 2:
				tr.Subs[rng.Intn(len(tr.Subs))].Release += rtime.Instant(delta)
			case 3:
				tr.Subs[rng.Intn(len(tr.Subs))].Deadline += rtime.Instant(delta)
			case 4:
				tr.Subs[rng.Intn(len(tr.Subs))].Completion += rtime.Instant(delta)
			case 5:
				tr.Subs[rng.Intn(len(tr.Subs))].WCET += delta
			case 6:
				r := &tr.Subs[rng.Intn(len(tr.Subs))]
				r.Completed = !r.Completed
			case 7:
				r := &tr.Subs[rng.Intn(len(tr.Subs))]
				r.Abandoned = !r.Abandoned
				r.AbandonTime = rtime.Instant(rng.Int63n(12_000))
			}
		}
		mem := tr.Validate()
		str := tr.ValidateStreaming()
		if (mem == nil) != (str == nil) {
			t.Fatalf("seed %d: in-memory says %v, streaming says %v\ntrace: %+v", seed, mem, str, tr)
		}
	}
}

// TestReplayIntoTraceRoundTrips proves Replay's causal ordering is a
// faithful serialization: replaying a materialized trace into a fresh
// in-memory Trace reproduces it.
func TestReplayIntoTraceRoundTrips(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *Trace
	}{
		{"valid", validTrace()},
		{"suspension", suspensionTrace()},
		{"abandoned", abandonedTrace()},
		{"zero-wcet", zeroWCETTrace()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var got Trace
			if err := tc.tr.Replay(&got); err != nil {
				t.Fatalf("replay: %v", err)
			}
			if fmt.Sprint(got.Segments) != fmt.Sprint(tc.tr.Segments) {
				t.Fatalf("segments changed:\n got %v\nwant %v", got.Segments, tc.tr.Segments)
			}
			if len(got.Subs) != len(tc.tr.Subs) {
				t.Fatalf("subs: got %d, want %d", len(got.Subs), len(tc.tr.Subs))
			}
		})
	}
}

// TestStreamCheckerCounts verifies the consumed-event accounting used
// to cross-check binary streams.
func TestStreamCheckerCounts(t *testing.T) {
	c := NewStreamChecker()
	tr := validTrace()
	if err := tr.Replay(c); err != nil {
		t.Fatalf("replay: %v", err)
	}
	segs, subs := c.Counts()
	if segs != int64(len(tr.Segments)) || subs != int64(len(tr.Subs)) {
		t.Fatalf("counts = (%d, %d), want (%d, %d)", segs, subs, len(tr.Segments), len(tr.Subs))
	}
}

// TestStreamCheckerStrictStreamErrors covers the stream-contract
// violations that have no in-memory counterpart: they can only happen
// when a recorder misbehaves.
func TestStreamCheckerStrictStreamErrors(t *testing.T) {
	id := SubID{TaskID: 1}
	t.Run("duplicate-open", func(t *testing.T) {
		c := NewStreamChecker()
		c.OpenSub(id, ms(0), ms(10), msd(1))
		c.OpenSub(id, ms(0), ms(10), msd(1))
		if c.Err() == nil {
			t.Fatal("duplicate open accepted")
		}
	})
	t.Run("close-unopened", func(t *testing.T) {
		c := NewStreamChecker()
		c.CloseSub(SubRecord{Sub: id})
		if c.Err() == nil {
			t.Fatal("unopened close accepted")
		}
	})
	t.Run("double-close", func(t *testing.T) {
		c := NewStreamChecker()
		c.OpenSub(id, ms(0), ms(10), 0)
		rec := SubRecord{Sub: id, Deadline: ms(10), Completed: true, Completion: ms(0)}
		c.CloseSub(rec)
		c.CloseSub(rec)
		if c.Err() == nil {
			t.Fatal("double close accepted")
		}
	})
	t.Run("inconsistent-close", func(t *testing.T) {
		c := NewStreamChecker()
		c.OpenSub(id, ms(0), ms(10), msd(1))
		c.CloseSub(SubRecord{Sub: id, Release: ms(0), Deadline: ms(11), WCET: msd(1)})
		if c.Err() == nil {
			t.Fatal("deadline mismatch accepted")
		}
	})
}

// TestStreamCheckerBoundedLiveSet pins the memory story: a long
// sequential schedule streams through the checker with the live table
// never growing past the in-flight count.
func TestStreamCheckerBoundedLiveSet(t *testing.T) {
	c := NewStreamChecker()
	const n = 10_000
	for i := 0; i < n; i++ {
		id := SubID{TaskID: 1, Seq: int64(i), Kind: Local}
		rel := ms(int64(i) * 10)
		c.OpenSub(id, rel, rel+rtime.Instant(msd(10)), msd(4))
		c.AppendSegment(Segment{Start: rel, End: rel + rtime.Instant(msd(4)), Sub: id})
		c.CloseSub(SubRecord{
			Sub: id, Release: rel, Deadline: rel + rtime.Instant(msd(10)), WCET: msd(4),
			Completed: true, Completion: rel + rtime.Instant(msd(4)),
		})
		if len(c.live) > 2 {
			t.Fatalf("live table grew to %d at job %d; retirement is broken", len(c.live), i)
		}
	}
	if err := c.Finish(); err != nil {
		t.Fatalf("sequential schedule rejected: %v", err)
	}
}

// TestReserveStopsAppendReallocation is the Append-growth regression
// test: after Reserve, recording within the hint allocates nothing.
func TestReserveStopsAppendReallocation(t *testing.T) {
	const segs, subs = 1024, 256
	var tr Trace
	tr.Reserve(segs, subs)
	allocs := testing.AllocsPerRun(10, func() {
		tr.Segments = tr.Segments[:0]
		tr.Subs = tr.Subs[:0]
		for i := 0; i < segs; i++ {
			start := ms(int64(i) * 2)
			tr.Append(Segment{Start: start, End: start + rtime.Instant(msd(1)), Sub: SubID{TaskID: i}})
		}
		for i := 0; i < subs; i++ {
			tr.CloseSub(SubRecord{Sub: SubID{TaskID: i}})
		}
	})
	if allocs != 0 {
		t.Fatalf("recording within the Reserve hint allocates %.1f times per run, want 0", allocs)
	}
	var fresh Trace
	fresh.Reserve(segs, subs)
	if cap(fresh.Segments) < segs || cap(fresh.Subs) < subs {
		t.Fatalf("Reserve capacities (%d, %d), want at least (%d, %d)",
			cap(fresh.Segments), cap(fresh.Subs), segs, subs)
	}
}
