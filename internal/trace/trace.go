// Package trace records and validates execution traces of the EDF
// scheduler simulator.
//
// The simulator (package sched) emits a Trace: the sequence of
// processor-time segments plus one record per sub-job with its
// release, deadline and completion. The checkers in this package
// replay a trace against the scheduling invariants — single-processor
// exclusivity, EDF priority order, work conservation, and execution
// budget accounting — giving the test suite an oracle that is
// independent of the simulator's own bookkeeping.
package trace

import (
	"fmt"
	"sort"

	"rtoffload/internal/rtime"
)

// Kind labels what a sub-job executes.
type Kind int

const (
	// Local is the single sub-job of a locally executed task (Ci).
	Local Kind = iota
	// Setup is the offload-preparation sub-job (Ci,1).
	Setup
	// Post processes a result that returned within the budget (Ci,3).
	Post
	// Comp is the local compensation after a timer expiry (Ci,2).
	Comp
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Local:
		return "local"
	case Setup:
		return "setup"
	case Post:
		return "post"
	case Comp:
		return "comp"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// SubID identifies one sub-job: task, job sequence number, and phase.
type SubID struct {
	TaskID int
	Seq    int64
	Kind   Kind
}

// String implements fmt.Stringer.
func (id SubID) String() string {
	return fmt.Sprintf("τ%d#%d/%s", id.TaskID, id.Seq, id.Kind)
}

// Segment is a half-open interval [Start, End) during which the
// processor executed one sub-job.
type Segment struct {
	Start, End rtime.Instant
	Sub        SubID
}

// SubRecord describes one sub-job's lifecycle.
type SubRecord struct {
	Sub      SubID
	Release  rtime.Instant // when the sub-job became ready
	Deadline rtime.Instant // its absolute EDF deadline
	WCET     rtime.Duration
	// Completed is false for sub-jobs still unfinished at trace end.
	Completed  bool
	Completion rtime.Instant
	// Abandoned marks sub-jobs whose remaining work was discarded (the
	// AbortAtDeadline overrun policy) at AbandonTime; they are neither
	// completed nor ready after that instant.
	Abandoned   bool
	AbandonTime rtime.Instant
}

// end returns the instant after which the sub-job no longer demands
// the processor: completion, abandonment, or never.
func (r *SubRecord) end() rtime.Instant {
	switch {
	case r.Completed:
		return r.Completion
	case r.Abandoned:
		return r.AbandonTime
	default:
		return rtime.Forever
	}
}

// Trace is a recorded schedule.
//
// Segments are appended in execution order via Append, which
// guarantees the coalescing invariant: no two consecutive entries of
// Segments describe the same sub-job with touching endpoints
// (s[i].End == s[i+1].Start ∧ s[i].Sub == s[i+1].Sub never holds).
// A recorder may therefore slice one continuous execution of a
// sub-job at arbitrary internal instants — event-calendar boundaries,
// clock quanta — without changing the recorded trace: Append merges
// the pieces back. Memory then grows with the number of *preemptions
// and resumptions*, not with the number of scheduler events.
type Trace struct {
	Segments []Segment
	Subs     []SubRecord
}

// Sink consumes a trace as the recorder produces it, so long horizons
// can stream to disk or through one-pass checkers instead of growing
// an in-memory Trace. The recorder's event stream is causal:
//
//   - OpenSub announces a sub-job the moment it becomes ready, before
//     any of its segments;
//   - AppendSegment delivers coalesced segments in execution order
//     (non-decreasing Start); every OpenSub whose release precedes a
//     segment's End, and every CloseSub whose end instant is at or
//     before a segment's End, arrives before that segment (coalescing
//     may delay a segment past the sub-job lifecycle events inside
//     its span — never the other way around);
//   - CloseSub delivers the sub-job's final record (completed or
//     abandoned) exactly once per opened sub-job;
//   - Finish marks the end of the trace and reports the sink's
//     deferred error, if any.
//
// *Trace is the in-memory Sink (today's semantics), BinarySink the
// zero-allocation on-disk one, and StreamChecker the one-pass
// invariant verifier.
type Sink interface {
	OpenSub(id SubID, release, deadline rtime.Instant, wcet rtime.Duration)
	AppendSegment(s Segment)
	CloseSub(r SubRecord)
	Finish() error
}

// Reserve pre-sizes the backing arrays for about segments Segments and
// subs SubRecords, so a recorder that can estimate its output (jobs ×
// expected sub-jobs, plus preemption slack) avoids the steady-state
// reallocation that dominated long-horizon recording. It never shrinks
// and is purely a capacity hint.
func (tr *Trace) Reserve(segments, subs int) {
	if segments > cap(tr.Segments)-len(tr.Segments) {
		grown := make([]Segment, len(tr.Segments), len(tr.Segments)+segments)
		copy(grown, tr.Segments)
		tr.Segments = grown
	}
	if subs > cap(tr.Subs)-len(tr.Subs) {
		grown := make([]SubRecord, len(tr.Subs), len(tr.Subs)+subs)
		copy(grown, tr.Subs)
		tr.Subs = grown
	}
}

// OpenSub implements Sink. The in-memory trace records sub-jobs at
// close time only (their records carry the full lifecycle), so opens
// are ignored.
func (tr *Trace) OpenSub(SubID, rtime.Instant, rtime.Instant, rtime.Duration) {}

// AppendSegment implements Sink via Append.
func (tr *Trace) AppendSegment(s Segment) { tr.Append(s) }

// CloseSub implements Sink.
func (tr *Trace) CloseSub(r SubRecord) {
	tr.Subs = append(tr.Subs, r)
}

// Finish implements Sink.
func (tr *Trace) Finish() error { return nil }

// Append records one execution interval, coalescing it with the
// previous segment when both describe the same sub-job and touch
// (previous End == new Start). Callers must append segments in
// execution order; empty intervals are ignored.
func (tr *Trace) Append(s Segment) {
	if s.End <= s.Start {
		return
	}
	if n := len(tr.Segments); n > 0 {
		last := &tr.Segments[n-1]
		if last.Sub == s.Sub && last.End == s.Start {
			last.End = s.End
			return
		}
	}
	tr.Segments = append(tr.Segments, s)
}

// Validate runs every checker and returns the first violation.
func (tr *Trace) Validate() error {
	if err := tr.CheckWellFormed(); err != nil {
		return err
	}
	if err := tr.CheckNoOverlap(); err != nil {
		return err
	}
	if err := tr.CheckBudgets(); err != nil {
		return err
	}
	if err := tr.CheckEDFOrder(); err != nil {
		return err
	}
	return tr.CheckWorkConserving()
}

// CheckWellFormed verifies structural sanity: positive-length
// segments, segments within their sub-job's [release, completion]
// window, and every segment belonging to a recorded sub-job.
func (tr *Trace) CheckWellFormed() error {
	recs := tr.index()
	for i, s := range tr.Segments {
		if s.End <= s.Start {
			return fmt.Errorf("trace: segment %d empty or inverted: [%v, %v)", i, s.Start, s.End)
		}
		r, ok := recs[s.Sub]
		if !ok {
			return fmt.Errorf("trace: segment %d references unknown sub-job %v", i, s.Sub)
		}
		if s.Start < r.Release {
			return fmt.Errorf("trace: %v executes at %v before release %v", s.Sub, s.Start, r.Release)
		}
		if end := r.end(); s.End > end {
			return fmt.Errorf("trace: %v executes past its end %v", s.Sub, end)
		}
	}
	return nil
}

// CheckNoOverlap verifies single-processor exclusivity.
func (tr *Trace) CheckNoOverlap() error {
	segs := tr.sortedSegments()
	for i := 1; i < len(segs); i++ {
		if segs[i].Start < segs[i-1].End {
			return fmt.Errorf("trace: segments overlap: %v in [%v,%v) and %v in [%v,%v)",
				segs[i-1].Sub, segs[i-1].Start, segs[i-1].End,
				segs[i].Sub, segs[i].Start, segs[i].End)
		}
	}
	return nil
}

// CheckBudgets verifies that every completed sub-job executed exactly
// its WCET and every incomplete one strictly less.
func (tr *Trace) CheckBudgets() error {
	exec := make(map[SubID]rtime.Duration, len(tr.Subs))
	for _, s := range tr.Segments {
		exec[s.Sub] += s.End.Sub(s.Start)
	}
	for _, r := range tr.Subs {
		got := exec[r.Sub]
		if r.Completed && got != r.WCET {
			return fmt.Errorf("trace: %v executed %v, want WCET %v", r.Sub, got, r.WCET)
		}
		if !r.Completed && got >= r.WCET && r.WCET > 0 {
			return fmt.Errorf("trace: %v executed full WCET %v but is not completed", r.Sub, r.WCET)
		}
		if r.Completed && r.Abandoned {
			return fmt.Errorf("trace: %v both completed and abandoned", r.Sub)
		}
	}
	return nil
}

// CheckEDFOrder verifies the EDF invariant: whenever a sub-job
// executes, no other ready, unfinished sub-job has a strictly earlier
// deadline. Readiness of sub-job k during segment s means
// k.Release ≤ segment time < k's completion (or trace end if
// unfinished).
func (tr *Trace) CheckEDFOrder() error {
	for _, s := range tr.Segments {
		running := tr.find(s.Sub)
		if running == nil {
			return fmt.Errorf("trace: segment references unknown sub-job %v", s.Sub)
		}
		for i := range tr.Subs {
			k := &tr.Subs[i]
			if k.Sub == s.Sub {
				continue
			}
			if k.Deadline >= running.Deadline {
				continue
			}
			// k is ready during (start, end) if it released before the
			// segment ends and completes after the segment starts.
			kEnd := k.end()
			overlapStart := rtime.MaxInstant(s.Start, k.Release)
			overlapEnd := rtime.MinInstant(s.End, kEnd)
			if overlapStart < overlapEnd {
				return fmt.Errorf("trace: EDF violation: %v (deadline %v) ran during [%v,%v) while %v (deadline %v) was ready",
					s.Sub, running.Deadline, overlapStart, overlapEnd, k.Sub, k.Deadline)
			}
		}
	}
	return nil
}

// CheckWorkConserving verifies the processor never idles while a
// sub-job is ready: for every maximal idle gap between segments, no
// sub-job may be ready anywhere inside it.
func (tr *Trace) CheckWorkConserving() error {
	segs := tr.sortedSegments()
	checkGap := func(from, to rtime.Instant) error {
		if to <= from {
			return nil
		}
		for i := range tr.Subs {
			k := &tr.Subs[i]
			kEnd := k.end()
			s := rtime.MaxInstant(from, k.Release)
			e := rtime.MinInstant(to, kEnd)
			if s < e {
				return fmt.Errorf("trace: processor idle in [%v,%v) while %v was ready", s, e, k.Sub)
			}
		}
		return nil
	}
	for i := 1; i < len(segs); i++ {
		if err := checkGap(segs[i-1].End, segs[i].Start); err != nil {
			return err
		}
	}
	// Leading gap: from the earliest release to the first segment.
	if len(tr.Subs) > 0 {
		first := rtime.Forever
		for _, r := range tr.Subs {
			if r.Release < first {
				first = r.Release
			}
		}
		var firstSeg rtime.Instant = rtime.Forever
		if len(segs) > 0 {
			firstSeg = segs[0].Start
		}
		if err := checkGap(first, firstSeg); err != nil {
			return err
		}
	}
	return nil
}

// DeadlineMisses lists completed sub-jobs finishing after their
// deadlines and unfinished sub-jobs (which can never meet them).
func (tr *Trace) DeadlineMisses() []SubID {
	var out []SubID
	for _, r := range tr.Subs {
		if !r.Completed || r.Completion > r.Deadline {
			out = append(out, r.Sub)
		}
	}
	return out
}

// TotalBusy sums all segment lengths.
func (tr *Trace) TotalBusy() rtime.Duration {
	var d rtime.Duration
	for _, s := range tr.Segments {
		d += s.End.Sub(s.Start)
	}
	return d
}

func (tr *Trace) index() map[SubID]*SubRecord {
	m := make(map[SubID]*SubRecord, len(tr.Subs))
	for i := range tr.Subs {
		m[tr.Subs[i].Sub] = &tr.Subs[i]
	}
	return m
}

func (tr *Trace) find(id SubID) *SubRecord {
	for i := range tr.Subs {
		if tr.Subs[i].Sub == id {
			return &tr.Subs[i]
		}
	}
	return nil
}

func (tr *Trace) sortedSegments() []Segment {
	segs := append([]Segment(nil), tr.Segments...)
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Start != segs[j].Start {
			return segs[i].Start < segs[j].Start
		}
		return segs[i].End < segs[j].End
	})
	return segs
}
