// Streaming one-pass trace verification. The in-memory checkers in
// trace.go replay a materialized Trace; at campaign scale the trace
// never materializes — it streams through a Sink — so this file
// re-derives the same invariants as a single forward pass whose state
// is bounded by the number of *in-flight* sub-jobs, not by the
// horizon:
//
//   - exclusivity: segments arrive in execution order, so overlap is a
//     one-instant comparison against the previous segment's end;
//   - well-formedness and budgets: per-sub execution accumulates in a
//     live table; a sub-job's record retires (and is finally checked)
//     once a later segment proves no earlier event can reference it;
//   - EDF order and work conservation: the live table at a segment's
//     arrival is exactly the set of sub-jobs released but not retired
//     around it — the Sink contract (see Sink) guarantees every open
//     and close that could overlap a segment precedes it.
//
// stream_test.go pins the equivalence: over a shared corpus of
// engine-produced traces and seeded violations, the streaming checker
// accepts and rejects exactly the traces the in-memory checkers do.
package trace

import (
	"fmt"
	"sort"

	"rtoffload/internal/rtime"
)

// streamSub is one live (released, not yet retired) sub-job.
type streamSub struct {
	id       SubID
	release  rtime.Instant
	deadline rtime.Instant
	wcet     rtime.Duration

	exec    rtime.Duration // execution accumulated so far
	started bool
	lastEnd rtime.Instant // end of its latest segment

	closed    bool
	completed bool
	abandoned bool
	endAt     rtime.Instant // completion or abandon instant when closed
}

// end mirrors SubRecord.end for the live table.
func (k *streamSub) end() rtime.Instant {
	if k.closed && (k.completed || k.abandoned) {
		return k.endAt
	}
	return rtime.Forever
}

// StreamChecker is a Sink that verifies the scheduling invariants in
// one pass. Feed it a live simulation (sched.Config.TraceSink) or a
// materialized trace (Trace.Replay); Finish returns the first
// violation. Memory is O(max in-flight sub-jobs).
type StreamChecker struct {
	// live is scanned in deterministic slice order; index maps a SubID
	// to its slot (lookup only — never ranged).
	live  []streamSub
	index map[SubID]int32

	prevEnd      rtime.Instant
	haveSeg      bool
	firstRelease rtime.Instant

	segments int64
	subs     int64

	err error
}

// NewStreamChecker returns a checker ready to consume a trace stream.
func NewStreamChecker() *StreamChecker {
	return &StreamChecker{index: make(map[SubID]int32), firstRelease: rtime.Forever}
}

// Err returns the first violation found so far.
func (c *StreamChecker) Err() error { return c.err }

// Counts reports how many segments and sub-job records have been
// consumed, for cross-checking against sink or reader totals.
func (c *StreamChecker) Counts() (segments, subs int64) { return c.segments, c.subs }

func (c *StreamChecker) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("trace: "+format, args...)
	}
}

// OpenSub implements Sink.
func (c *StreamChecker) OpenSub(id SubID, release, deadline rtime.Instant, wcet rtime.Duration) {
	if c.err != nil {
		return
	}
	if _, dup := c.index[id]; dup {
		c.fail("duplicate sub-job %v opened", id)
		return
	}
	c.index[id] = int32(len(c.live))
	c.live = append(c.live, streamSub{id: id, release: release, deadline: deadline, wcet: wcet})
	if release < c.firstRelease {
		c.firstRelease = release
	}
}

// AppendSegment implements Sink.
func (c *StreamChecker) AppendSegment(s Segment) {
	if c.err != nil {
		return
	}
	c.segments++
	if s.End <= s.Start {
		c.fail("segment empty or inverted: [%v, %v)", s.Start, s.End)
		return
	}
	if c.haveSeg && s.Start < c.prevEnd {
		c.fail("segments overlap: %v starts at %v before previous end %v", s.Sub, s.Start, c.prevEnd)
		return
	}

	// Work conservation: no sub-job may be ready inside the idle gap
	// before this segment (from the previous segment's end, or from
	// the earliest release for the leading gap).
	gapFrom := c.firstRelease
	if c.haveSeg {
		gapFrom = c.prevEnd
	}
	if gapFrom < s.Start {
		for i := range c.live {
			k := &c.live[i]
			from := rtime.MaxInstant(gapFrom, k.release)
			to := rtime.MinInstant(s.Start, k.end())
			if from < to {
				c.fail("processor idle in [%v,%v) while %v was ready", from, to, k.id)
				return
			}
		}
	}

	ri, ok := c.index[s.Sub]
	if !ok {
		c.fail("segment references unknown sub-job %v", s.Sub)
		return
	}
	r := &c.live[ri]
	if s.Start < r.release {
		c.fail("%v executes at %v before release %v", s.Sub, s.Start, r.release)
		return
	}
	if end := r.end(); s.End > end {
		c.fail("%v executes past its end %v", s.Sub, end)
		return
	}

	// EDF: no live sub-job with a strictly earlier deadline may be
	// ready anywhere inside this segment. Closes with an end at or
	// before s.End have already arrived (Sink contract), so an
	// unclosed sub-job's Forever end never understates the overlap.
	for i := range c.live {
		k := &c.live[i]
		if k.id == s.Sub || k.deadline >= r.deadline {
			continue
		}
		from := rtime.MaxInstant(s.Start, k.release)
		to := rtime.MinInstant(s.End, k.end())
		if from < to {
			c.fail("EDF violation: %v (deadline %v) ran during [%v,%v) while %v (deadline %v) was ready",
				s.Sub, r.deadline, from, to, k.id, k.deadline)
			return
		}
	}

	r.exec += s.End.Sub(s.Start)
	r.started = true
	r.lastEnd = s.End
	c.haveSeg = true
	c.prevEnd = s.End

	c.retire(s.Start)
}

// retire finalizes and drops closed sub-jobs whose end precedes the
// newest segment's start: no later event can reference them, so their
// budget accounting is complete and their slot can be reclaimed.
func (c *StreamChecker) retire(before rtime.Instant) {
	for i := 0; i < len(c.live); {
		k := &c.live[i]
		if !k.closed || k.end() > before {
			i++
			continue
		}
		c.finalize(k)
		last := len(c.live) - 1
		delete(c.index, k.id)
		if i != last {
			c.live[i] = c.live[last]
			c.index[c.live[i].id] = int32(i)
		}
		c.live = c.live[:last]
	}
}

// finalize runs the end-of-life budget checks on one sub-job.
func (c *StreamChecker) finalize(k *streamSub) {
	if c.err != nil {
		return
	}
	if k.completed && k.exec != k.wcet {
		c.fail("%v executed %v, want WCET %v", k.id, k.exec, k.wcet)
		return
	}
	if !k.completed && k.exec >= k.wcet && k.wcet > 0 {
		c.fail("%v executed full WCET %v but is not completed", k.id, k.wcet)
	}
}

// CloseSub implements Sink.
func (c *StreamChecker) CloseSub(r SubRecord) {
	if c.err != nil {
		return
	}
	c.subs++
	ri, ok := c.index[r.Sub]
	if !ok {
		c.fail("record closes unopened sub-job %v", r.Sub)
		return
	}
	k := &c.live[ri]
	if k.closed {
		c.fail("sub-job %v closed twice", r.Sub)
		return
	}
	if r.Release != k.release || r.Deadline != k.deadline || r.WCET != k.wcet {
		c.fail("%v closed with (release %v, deadline %v, WCET %v), opened with (%v, %v, %v)",
			r.Sub, r.Release, r.Deadline, r.WCET, k.release, k.deadline, k.wcet)
		return
	}
	if r.Completed && r.Abandoned {
		c.fail("%v both completed and abandoned", r.Sub)
		return
	}
	k.closed = true
	k.completed = r.Completed
	k.abandoned = r.Abandoned
	k.endAt = r.end()
	if k.started && k.lastEnd > k.end() {
		c.fail("%v executes past its end %v", r.Sub, k.end())
	}
}

// Finish implements Sink: it runs the deferred end-of-trace checks
// (the no-segment work-conservation gap and the budget accounting of
// every sub-job still live) and returns the first violation.
func (c *StreamChecker) Finish() error {
	if c.err != nil {
		return c.err
	}
	if !c.haveSeg {
		// No segment ever ran: the processor idled from the first
		// release onward, so any sub-job with a nonzero lifetime is a
		// work-conservation violation.
		for i := range c.live {
			k := &c.live[i]
			if k.release < k.end() {
				c.fail("processor idle in [%v,%v) while %v was ready", k.release, k.end(), k.id)
				return c.err
			}
		}
	}
	for i := range c.live {
		c.finalize(&c.live[i])
		if c.err != nil {
			return c.err
		}
	}
	return c.err
}

// Replay feeds a materialized trace through sink in the causal stream
// order the Sink contract requires — opens sorted by release, closes
// by end instant, segments by start, with every lifecycle event that
// could overlap a segment emitted before it — and returns
// sink.Finish(). Replaying into a StreamChecker verifies a Trace
// one-pass; replaying into a BinarySink serializes it.
func (tr *Trace) Replay(sink Sink) error {
	opens := make([]int, len(tr.Subs))
	for i := range opens {
		opens[i] = i
	}
	sort.SliceStable(opens, func(a, b int) bool {
		return tr.Subs[opens[a]].Release < tr.Subs[opens[b]].Release
	})
	closes := make([]int, len(tr.Subs))
	for i := range closes {
		closes[i] = i
	}
	// A close never precedes its own open: clamp the sort instant to
	// the release (only malformed records have end < release, and the
	// checker rejects the mismatch cases anyway).
	closeAt := func(i int) rtime.Instant {
		r := &tr.Subs[i]
		return rtime.MaxInstant(r.end(), r.Release)
	}
	sort.SliceStable(closes, func(a, b int) bool {
		return closeAt(closes[a]) < closeAt(closes[b])
	})
	segs := tr.sortedSegments()

	oi, ci := 0, 0
	// emit delivers opens with release < openLim and closes with end
	// ≤ closeLim, merged in time order (opens first on ties).
	emit := func(openLim, closeLim rtime.Instant) {
		for {
			openDue := oi < len(opens) && tr.Subs[opens[oi]].Release < openLim
			closeDue := ci < len(closes) && closeAt(closes[ci]) <= closeLim
			switch {
			case openDue && (!closeDue || tr.Subs[opens[oi]].Release <= closeAt(closes[ci])):
				r := &tr.Subs[opens[oi]]
				sink.OpenSub(r.Sub, r.Release, r.Deadline, r.WCET)
				oi++
			case closeDue:
				sink.CloseSub(tr.Subs[closes[ci]])
				ci++
			default:
				return
			}
		}
	}
	for _, s := range segs {
		emit(s.End, s.End)
		sink.AppendSegment(s)
	}
	emit(rtime.Forever, rtime.Forever)
	return sink.Finish()
}

// ValidateStreaming runs the one-pass checkers over the trace. It is
// the streaming twin of Validate: stream_test.go proves both accept
// and reject exactly the same traces.
func (tr *Trace) ValidateStreaming() error {
	return tr.Replay(NewStreamChecker())
}
