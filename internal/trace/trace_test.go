package trace

import (
	"strings"
	"testing"

	"rtoffload/internal/rtime"
)

func ms(v int64) rtime.Instant   { return rtime.Instant(rtime.FromMillis(v)) }
func msd(v int64) rtime.Duration { return rtime.FromMillis(v) }

// validTrace builds a correct 2-task EDF schedule:
//
//	τ1 local: release 0, deadline 10, WCET 4  → runs [0,4)
//	τ2 local: release 2, deadline 20, WCET 3  → runs [4,7)
func validTrace() *Trace {
	s1 := SubID{TaskID: 1, Seq: 0, Kind: Local}
	s2 := SubID{TaskID: 2, Seq: 0, Kind: Local}
	return &Trace{
		Segments: []Segment{
			{Start: ms(0), End: ms(4), Sub: s1},
			{Start: ms(4), End: ms(7), Sub: s2},
		},
		Subs: []SubRecord{
			{Sub: s1, Release: ms(0), Deadline: ms(10), WCET: msd(4), Completed: true, Completion: ms(4)},
			{Sub: s2, Release: ms(2), Deadline: ms(20), WCET: msd(3), Completed: true, Completion: ms(7)},
		},
	}
}

func TestValidTrace(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestKindSubIDStrings(t *testing.T) {
	for k, want := range map[Kind]string{Local: "local", Setup: "setup", Post: "post", Comp: "comp"} {
		if k.String() != want {
			t.Errorf("Kind %d = %q", int(k), k.String())
		}
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind empty")
	}
	id := SubID{TaskID: 3, Seq: 7, Kind: Setup}
	if got := id.String(); !strings.Contains(got, "τ3") || !strings.Contains(got, "setup") {
		t.Errorf("SubID string %q", got)
	}
}

func TestCheckWellFormed(t *testing.T) {
	tr := validTrace()
	tr.Segments[0].End = tr.Segments[0].Start // empty segment
	if err := tr.CheckWellFormed(); err == nil {
		t.Error("empty segment accepted")
	}

	tr = validTrace()
	tr.Segments[0].Sub.TaskID = 99
	if err := tr.CheckWellFormed(); err == nil {
		t.Error("unknown sub-job accepted")
	}

	tr = validTrace()
	tr.Subs[0].Release = ms(1) // executes at 0 before release
	if err := tr.CheckWellFormed(); err == nil {
		t.Error("pre-release execution accepted")
	}

	tr = validTrace()
	tr.Subs[0].Completion = ms(3) // executes past completion
	if err := tr.CheckWellFormed(); err == nil {
		t.Error("post-completion execution accepted")
	}
}

func TestCheckNoOverlap(t *testing.T) {
	tr := validTrace()
	tr.Segments[1].Start = ms(3)
	tr.Subs[1].Release = ms(2)
	if err := tr.CheckNoOverlap(); err == nil {
		t.Error("overlap accepted")
	}
}

func TestCheckBudgets(t *testing.T) {
	tr := validTrace()
	tr.Subs[0].WCET = msd(5) // executed 4, claims completion
	if err := tr.CheckBudgets(); err == nil {
		t.Error("under-execution accepted")
	}
	tr = validTrace()
	tr.Subs[1].Completed = false // executed full WCET but "unfinished"
	if err := tr.CheckBudgets(); err == nil {
		t.Error("finished-but-unmarked accepted")
	}
}

func TestCheckEDFOrder(t *testing.T) {
	// τ2 (deadline 20) runs [0,3) while τ1 (deadline 10) is ready: violation.
	s1 := SubID{TaskID: 1, Kind: Local}
	s2 := SubID{TaskID: 2, Kind: Local}
	tr := &Trace{
		Segments: []Segment{
			{Start: ms(0), End: ms(3), Sub: s2},
			{Start: ms(3), End: ms(7), Sub: s1},
		},
		Subs: []SubRecord{
			{Sub: s1, Release: ms(0), Deadline: ms(10), WCET: msd(4), Completed: true, Completion: ms(7)},
			{Sub: s2, Release: ms(0), Deadline: ms(20), WCET: msd(3), Completed: true, Completion: ms(3)},
		},
	}
	err := tr.CheckEDFOrder()
	if err == nil {
		t.Fatal("EDF violation accepted")
	}
	if !strings.Contains(err.Error(), "EDF violation") {
		t.Errorf("unexpected error %v", err)
	}
	// The valid trace passes: τ2 released at 2 but τ1 (earlier deadline)
	// runs first.
	if err := validTrace().CheckEDFOrder(); err != nil {
		t.Fatalf("valid EDF order rejected: %v", err)
	}
}

func TestCheckEDFOrderSuspension(t *testing.T) {
	// An offloaded task's compensation sub-job releases late (after the
	// suspension); a lower-priority job running before that release is
	// NOT a violation.
	setup := SubID{TaskID: 1, Kind: Setup}
	comp := SubID{TaskID: 1, Kind: Comp}
	other := SubID{TaskID: 2, Kind: Local}
	tr := &Trace{
		Segments: []Segment{
			{Start: ms(0), End: ms(2), Sub: setup},
			{Start: ms(2), End: ms(8), Sub: other}, // runs during τ1's suspension
			{Start: ms(8), End: ms(11), Sub: comp}, // compensation after timer
		},
		Subs: []SubRecord{
			{Sub: setup, Release: ms(0), Deadline: ms(4), WCET: msd(2), Completed: true, Completion: ms(2)},
			{Sub: comp, Release: ms(8), Deadline: ms(20), WCET: msd(3), Completed: true, Completion: ms(11)},
			{Sub: other, Release: ms(0), Deadline: ms(30), WCET: msd(6), Completed: true, Completion: ms(8)},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("suspension schedule rejected: %v", err)
	}
}

func TestCheckWorkConserving(t *testing.T) {
	tr := validTrace()
	// Introduce an idle gap [4,5) while τ2 is ready.
	tr.Segments[1].Start = ms(5)
	tr.Segments[1].End = ms(8)
	tr.Subs[1].Completion = ms(8)
	if err := tr.CheckWorkConserving(); err == nil {
		t.Error("idle-while-ready accepted")
	}
	// Leading idle gap: first release at 0 but execution starts at 1.
	tr = validTrace()
	tr.Segments[0].Start = ms(1)
	tr.Subs[0].WCET = msd(3)
	if err := tr.CheckWorkConserving(); err == nil {
		t.Error("leading idle gap accepted")
	}
}

func TestDeadlineMisses(t *testing.T) {
	tr := validTrace()
	if m := tr.DeadlineMisses(); len(m) != 0 {
		t.Fatalf("misses = %v", m)
	}
	tr.Subs[0].Completion = ms(11)
	tr.Subs[1].Completed = false
	m := tr.DeadlineMisses()
	if len(m) != 2 {
		t.Fatalf("misses = %v, want 2", m)
	}
}

func TestTotalBusy(t *testing.T) {
	if b := validTrace().TotalBusy(); b != msd(7) {
		t.Errorf("TotalBusy = %v", b)
	}
}

func TestValidateOrderOfChecks(t *testing.T) {
	// Validate must catch a malformed trace before the EDF check
	// dereferences unknown sub-jobs.
	tr := &Trace{
		Segments: []Segment{{Start: ms(0), End: ms(1), Sub: SubID{TaskID: 1}}},
	}
	if err := tr.Validate(); err == nil {
		t.Fatal("trace with no sub records accepted")
	}
}

func TestAppendCoalescesAdjacentSameSub(t *testing.T) {
	s1 := SubID{TaskID: 1, Seq: 0, Kind: Local}
	s2 := SubID{TaskID: 2, Seq: 0, Kind: Local}
	var tr Trace
	// One continuous execution of s1 sliced at two internal instants
	// must collapse to a single segment.
	tr.Append(Segment{Start: ms(0), End: ms(2), Sub: s1})
	tr.Append(Segment{Start: ms(2), End: ms(3), Sub: s1})
	tr.Append(Segment{Start: ms(3), End: ms(5), Sub: s1})
	if len(tr.Segments) != 1 {
		t.Fatalf("coalescing failed: %d segments", len(tr.Segments))
	}
	if got := tr.Segments[0]; got.Start != ms(0) || got.End != ms(5) {
		t.Fatalf("merged segment [%v,%v)", got.Start, got.End)
	}
	// A different sub-job breaks the run even when the times touch.
	tr.Append(Segment{Start: ms(5), End: ms(6), Sub: s2})
	// A later resumption of s1 (gap: s2 ran in between) starts fresh.
	tr.Append(Segment{Start: ms(6), End: ms(8), Sub: s1})
	if len(tr.Segments) != 3 {
		t.Fatalf("want 3 segments after preemption, got %d", len(tr.Segments))
	}
	if tr.TotalBusy() != msd(8) {
		t.Fatalf("busy = %v", tr.TotalBusy())
	}
}

func TestAppendSkipsGapsAndEmptySegments(t *testing.T) {
	s1 := SubID{TaskID: 1, Seq: 0, Kind: Local}
	var tr Trace
	tr.Append(Segment{Start: ms(0), End: ms(2), Sub: s1})
	tr.Append(Segment{Start: ms(2), End: ms(2), Sub: s1}) // empty: dropped
	if len(tr.Segments) != 1 || tr.Segments[0].End != ms(2) {
		t.Fatalf("empty segment not ignored: %+v", tr.Segments)
	}
	// Same sub but an idle gap in between: kept separate.
	tr.Append(Segment{Start: ms(4), End: ms(6), Sub: s1})
	if len(tr.Segments) != 2 {
		t.Fatalf("gap wrongly coalesced: %+v", tr.Segments)
	}
}
