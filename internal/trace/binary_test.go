package trace

import (
	"bytes"
	"io"
	"reflect"
	"sort"
	"testing"
)

// TestBinaryRoundTrip serializes fixtures through BinarySink and reads
// them back into a fresh Trace, asserting an exact reproduction, and
// into a StreamChecker, asserting the on-disk stream still verifies.
func TestBinaryRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *Trace
	}{
		{"valid", validTrace()},
		{"suspension", suspensionTrace()},
		{"abandoned", abandonedTrace()},
		{"zero-wcet", zeroWCETTrace()},
		{"empty", &Trace{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.tr.Replay(NewBinarySink(&buf)); err != nil {
				t.Fatalf("serialize: %v", err)
			}
			var got Trace
			if err := ReadBinary(bytes.NewReader(buf.Bytes()), &got); err != nil {
				t.Fatalf("read back: %v", err)
			}
			if !reflect.DeepEqual(normalize(&got), normalize(tc.tr)) {
				t.Fatalf("round trip changed the trace:\n got %+v\nwant %+v", got, tc.tr)
			}
			c := NewStreamChecker()
			if err := ReadBinary(bytes.NewReader(buf.Bytes()), c); err != nil {
				t.Fatalf("on-disk stream rejected: %v", err)
			}
			segs, subs := c.Counts()
			if segs != int64(len(tc.tr.Segments)) || subs != int64(len(tc.tr.Subs)) {
				t.Fatalf("counts = (%d, %d), want (%d, %d)", segs, subs, len(tc.tr.Segments), len(tc.tr.Subs))
			}
		})
	}
}

// normalize maps empty slices to nil and puts Subs in a canonical
// order: Replay delivers closes in end-instant order (the Sink
// contract), so record order is not semantic.
func normalize(tr *Trace) *Trace {
	out := &Trace{}
	if len(tr.Segments) > 0 {
		out.Segments = tr.Segments
	}
	if len(tr.Subs) > 0 {
		out.Subs = append([]SubRecord(nil), tr.Subs...)
		sort.Slice(out.Subs, func(i, j int) bool {
			a, b := out.Subs[i].Sub, out.Subs[j].Sub
			if a.TaskID != b.TaskID {
				return a.TaskID < b.TaskID
			}
			if a.Seq != b.Seq {
				return a.Seq < b.Seq
			}
			return a.Kind < b.Kind
		})
	}
	return out
}

// TestBinaryLargeStreamFlushes pushes well past the staging buffer so
// the mid-stream flush path round-trips too.
func TestBinaryLargeStreamFlushes(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 5000; i++ {
		id := SubID{TaskID: 1, Seq: int64(i), Kind: Local}
		rel := ms(int64(i) * 10)
		tr.Segments = append(tr.Segments, Segment{Start: rel, End: rel + 4000, Sub: id})
		tr.Subs = append(tr.Subs, SubRecord{
			Sub: id, Release: rel, Deadline: rel + 10_000, WCET: 4000,
			Completed: true, Completion: rel + 4000,
		})
	}
	var buf bytes.Buffer
	if err := tr.Replay(NewBinarySink(&buf)); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	if buf.Len() <= binBufSize {
		t.Fatalf("stream is %d bytes; test needs to exceed the %d-byte staging buffer", buf.Len(), binBufSize)
	}
	var got Trace
	if err := ReadBinary(bytes.NewReader(buf.Bytes()), &got); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !reflect.DeepEqual(got.Segments, tr.Segments) || !reflect.DeepEqual(got.Subs, tr.Subs) {
		t.Fatal("large stream round trip changed the trace")
	}
}

// TestBinaryRejectsCorruption covers the reader's failure modes.
func TestBinaryRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := validTrace().Replay(NewBinarySink(&buf)); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	good := buf.Bytes()

	check := func(name string, data []byte) {
		t.Helper()
		if err := ReadBinary(bytes.NewReader(data), &Trace{}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	check("empty stream", nil)
	check("bad magic", append([]byte("XXOFTRC1"), good[8:]...))
	check("truncated mid-record", good[:len(good)-endSize-3])
	check("missing trailer", good[:len(good)-endSize])

	tagged := append([]byte(nil), good...)
	tagged[8] = 'Z'
	check("unknown tag", tagged)

	miscounted := append([]byte(nil), good...)
	miscounted[len(miscounted)-endSize+1]++ // opens count in the trailer
	check("trailer count mismatch", miscounted)

	trailing := append(append([]byte(nil), good...), 0)
	check("bytes after trailer", trailing)
}

// errWriter fails after n bytes to exercise the sticky error path.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n -= len(p); w.n < 0 {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}

// TestBinarySinkStickyWriteError proves writer failures surface from
// Finish and do not panic the emit path.
func TestBinarySinkStickyWriteError(t *testing.T) {
	bs := NewBinarySink(&errWriter{n: binBufSize})
	tr := &Trace{}
	for i := 0; i < 20_000; i++ {
		id := SubID{TaskID: 1, Seq: int64(i), Kind: Local}
		tr.Segments = append(tr.Segments, Segment{Start: ms(int64(i)), End: ms(int64(i) + 1), Sub: id})
	}
	for i := range tr.Segments {
		bs.AppendSegment(tr.Segments[i])
	}
	if err := bs.Finish(); err == nil {
		t.Fatal("writer failure not surfaced by Finish")
	}
}

// TestBinarySinkZeroAlloc gates the on-disk emit path: once the
// staging buffer exists, streaming opens, segments, and closes must
// not allocate.
func TestBinarySinkZeroAlloc(t *testing.T) {
	bs := NewBinarySink(io.Discard)
	id := SubID{TaskID: 7, Seq: 3, Kind: Setup}
	seg := Segment{Start: ms(10), End: ms(14), Sub: id}
	rec := SubRecord{Sub: id, Release: ms(10), Deadline: ms(30), WCET: msd(4), Completed: true, Completion: ms(14)}
	allocs := testing.AllocsPerRun(1000, func() {
		bs.OpenSub(id, ms(10), ms(30), msd(4))
		bs.AppendSegment(seg)
		bs.CloseSub(rec)
	})
	if allocs != 0 {
		t.Fatalf("binary emit path allocates %.1f times per run; the hotpath contract is 0", allocs)
	}
	if err := bs.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}
