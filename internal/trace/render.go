package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"rtoffload/internal/rtime"
)

// glyphs for the Gantt rows, one per sub-job kind.
var kindGlyph = map[Kind]byte{
	Local: 'L',
	Setup: 'S',
	Post:  'P',
	Comp:  'C',
}

// RenderGantt writes an ASCII Gantt chart of the trace: one row per
// task, time flowing left to right across `width` columns spanning
// [from, to). Cell glyphs: L local, S setup, P post-processing,
// C compensation, '.' idle for that task while the processor runs
// something else, ' ' before first release. Release instants are
// marked with '|' overlaid on idle cells and deadline misses with '!'
// at the completing cell.
//
// The chart is a debugging aid: each cell shows the sub-job kind that
// occupied the *majority* of its time slice for that task.
func RenderGantt(w io.Writer, tr *Trace, from, to rtime.Instant, width int) error {
	if width < 10 {
		return fmt.Errorf("trace: gantt width %d too small", width)
	}
	if to <= from {
		return fmt.Errorf("trace: empty gantt window [%v, %v)", from, to)
	}
	span := to.Sub(from)
	cell := span / rtime.Duration(width)
	if cell <= 0 {
		cell = 1
	}

	// Collect task IDs.
	idset := map[int]bool{}
	for _, s := range tr.Subs {
		idset[s.Sub.TaskID] = true
	}
	ids := make([]int, 0, len(idset))
	//rtlint:allow determinism -- keys are collected and sorted before any output
	for id := range idset {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	// Header with a few time ticks.
	if _, err := fmt.Fprintf(w, "gantt [%v … %v), %v per column\n", from, to, cell); err != nil {
		return err
	}
	for _, id := range ids {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		// Executions: majority kind per cell.
		occupancy := make([]rtime.Duration, width)
		for _, s := range tr.Segments {
			if s.Sub.TaskID != id {
				continue
			}
			for c := 0; c < width; c++ {
				cs := from.Add(rtime.Duration(c) * cell)
				ce := cs.Add(cell)
				ov := rtime.MinInstant(s.End, ce).Sub(rtime.MaxInstant(s.Start, cs))
				if ov > 0 && ov > occupancy[c] {
					occupancy[c] = ov
					row[c] = kindGlyph[s.Sub.Kind]
				}
			}
		}
		// Idle dots between first release and completion of last sub.
		first, last := rtime.Forever, rtime.Instant(0)
		for _, s := range tr.Subs {
			if s.Sub.TaskID != id {
				continue
			}
			if s.Release < first {
				first = s.Release
			}
			end := s.Deadline
			if s.Completed && s.Completion > end {
				end = s.Completion
			}
			if end > last {
				last = end
			}
		}
		for c := 0; c < width; c++ {
			cs := from.Add(rtime.Duration(c) * cell)
			if row[c] == ' ' && cs >= first && cs < last {
				row[c] = '.'
			}
		}
		// Release markers and deadline misses.
		for _, s := range tr.Subs {
			if s.Sub.TaskID != id {
				continue
			}
			if (s.Sub.Kind == Local || s.Sub.Kind == Setup) && s.Release >= from && s.Release < to {
				c := int(s.Release.Sub(from) / cell)
				if c >= 0 && c < width && (row[c] == '.' || row[c] == ' ') {
					row[c] = '|'
				}
			}
			missed := !s.Completed || s.Completion > s.Deadline
			if missed && s.Deadline >= from && s.Deadline < to {
				c := int(s.Deadline.Sub(from) / cell)
				if c >= 0 && c < width {
					row[c] = '!'
				}
			}
		}
		if _, err := fmt.Fprintf(w, "τ%-3d %s\n", id, string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, strings.Repeat(" ", 5)+legend())
	return err
}

func legend() string {
	return "L=local S=setup P=post C=compensation |=release !=deadline miss .=waiting"
}
