package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderGantt(t *testing.T) {
	tr := validTrace()
	var buf bytes.Buffer
	if err := RenderGantt(&buf, tr, 0, ms(10), 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + two task rows + legend.
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "τ1") || !strings.Contains(lines[1], "L") {
		t.Errorf("τ1 row %q", lines[1])
	}
	if !strings.Contains(lines[2], "τ2") {
		t.Errorf("τ2 row %q", lines[2])
	}
	// τ1 runs [0,4) of a 10ms window over 40 cols → ~16 L cells.
	count := strings.Count(lines[1], "L")
	if count < 12 || count > 20 {
		t.Errorf("τ1 has %d L cells, want ≈16: %q", count, lines[1])
	}
	if !strings.Contains(out, "legend") && !strings.Contains(out, "L=local") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestRenderGanttMarksMiss(t *testing.T) {
	tr := validTrace()
	// τ2 misses: completion after deadline.
	tr.Subs[1].Deadline = ms(6)
	var buf bytes.Buffer
	if err := RenderGantt(&buf, tr, 0, ms(10), 50); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "!") {
		t.Fatalf("deadline miss not marked:\n%s", buf.String())
	}
}

func TestRenderGanttSuspension(t *testing.T) {
	// The offloaded schedule from the EDF-order test: setup, idle-wait,
	// compensation.
	setup := SubID{TaskID: 1, Kind: Setup}
	comp := SubID{TaskID: 1, Kind: Comp}
	tr := &Trace{
		Segments: []Segment{
			{Start: ms(0), End: ms(2), Sub: setup},
			{Start: ms(8), End: ms(11), Sub: comp},
		},
		Subs: []SubRecord{
			{Sub: setup, Release: ms(0), Deadline: ms(4), WCET: msd(2), Completed: true, Completion: ms(2)},
			{Sub: comp, Release: ms(8), Deadline: ms(20), WCET: msd(3), Completed: true, Completion: ms(11)},
		},
	}
	var buf bytes.Buffer
	if err := RenderGantt(&buf, tr, 0, ms(12), 48); err != nil {
		t.Fatal(err)
	}
	row := strings.Split(buf.String(), "\n")[1]
	if !strings.Contains(row, "S") || !strings.Contains(row, "C") || !strings.Contains(row, ".") {
		t.Fatalf("suspension row %q", row)
	}
	// Order: S before . before C.
	if strings.Index(row, "S") > strings.Index(row, "C") {
		t.Fatalf("setup after compensation: %q", row)
	}
}

func TestRenderGanttErrors(t *testing.T) {
	tr := validTrace()
	var buf bytes.Buffer
	if err := RenderGantt(&buf, tr, 0, ms(10), 5); err == nil {
		t.Error("tiny width accepted")
	}
	if err := RenderGantt(&buf, tr, ms(10), ms(10), 40); err == nil {
		t.Error("empty window accepted")
	}
}
