// Binary on-disk trace streaming. At campaign scale a trace does not
// fit in memory — 100k tasks over a long horizon produce millions of
// segments — so BinarySink serializes the Sink event stream into a
// compact fixed-width little-endian record format, buffering into a
// reusable staging array so the emit path allocates nothing: the only
// dynamic call is one io.Writer flush per ~64 KiB of trace.
// ReadBinary replays a serialized stream back into any Sink (a
// StreamChecker to verify from disk, a *Trace to materialize).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"rtoffload/internal/rtime"
)

// Record tags and fixed record sizes of the binary trace format. Every
// record is its tag byte followed by little-endian fixed-width fields;
// the stream opens with binMagic and closes with one tagEnd trailer
// carrying the open/segment/close counts for end-to-end verification.
const (
	binMagic = "RTOFTRC1"

	tagOpen  = 'O' // subID (taskID i32, seq i64, kind u8), release, deadline, wcet i64
	tagSeg   = 'S' // subID, start, end i64
	tagClose = 'C' // subID, release, deadline, wcet i64, flags u8 (1 completed, 2 abandoned), at i64
	tagEnd   = 'E' // opens, segments, closes i64

	openSize  = 1 + 13 + 8 + 8 + 8
	segSize   = 1 + 13 + 8 + 8
	closeSize = 1 + 13 + 8 + 8 + 8 + 1 + 8
	endSize   = 1 + 8 + 8 + 8

	// binBufSize is the staging buffer: large enough to amortize the
	// flush to ~one dynamic write per thousand records.
	binBufSize = 64 << 10
)

// BinarySink streams a trace to w in the binary record format. The
// emit path (OpenSub, AppendSegment, CloseSub) is allocation-free once
// the staging buffer exists; errors from the underlying writer are
// sticky and surface from Finish.
type BinarySink struct {
	w io.Writer
	//rtlint:arena
	buf    []byte
	opens  int64
	segs   int64
	closes int64
	err    error
}

// NewBinarySink returns a sink streaming to w, with the stream header
// already staged. Wrap slow writers in a *bufio.Writer upstream only
// if they cannot take ~64 KiB writes; the sink already batches.
func NewBinarySink(w io.Writer) *BinarySink {
	bs := &BinarySink{w: w, buf: make([]byte, 0, binBufSize)}
	bs.buf = append(bs.buf, binMagic...)
	return bs
}

// Counts reports the records emitted so far (opens, segments, closes)
// — the same numbers the trailer seals.
func (bs *BinarySink) Counts() (opens, segments, closes int64) {
	return bs.opens, bs.segs, bs.closes
}

// ensure flushes the staging buffer when fewer than n bytes remain.
func (bs *BinarySink) ensure(n int) {
	if cap(bs.buf)-len(bs.buf) < n {
		bs.flush()
	}
}

// flush hands the staged bytes to the writer. On error the sink goes
// sticky-failed and silently discards further output; Finish reports.
func (bs *BinarySink) flush() {
	if len(bs.buf) == 0 {
		return
	}
	if bs.err == nil {
		_, err := bs.w.Write(bs.buf) //rtlint:allow hotalloc -- one dynamic writer call per 64 KiB of staged trace; the emit path itself stays allocation-free
		if err != nil {
			bs.err = err
		}
	}
	bs.buf = bs.buf[:0]
}

func (bs *BinarySink) u8(v byte) {
	bs.buf = append(bs.buf, v)
}

func (bs *BinarySink) u32(v uint32) {
	bs.buf = append(bs.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (bs *BinarySink) u64(v uint64) {
	bs.buf = append(bs.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func (bs *BinarySink) subID(id SubID) {
	bs.u32(uint32(int32(id.TaskID)))
	bs.u64(uint64(id.Seq))
	bs.u8(byte(id.Kind))
}

// OpenSub implements Sink.
//
//rtlint:hotpath
func (bs *BinarySink) OpenSub(id SubID, release, deadline rtime.Instant, wcet rtime.Duration) {
	bs.ensure(openSize)
	bs.u8(tagOpen)
	bs.subID(id)
	bs.u64(uint64(release))
	bs.u64(uint64(deadline))
	bs.u64(uint64(wcet))
	bs.opens++
}

// AppendSegment implements Sink. Segments are expected coalesced (the
// recorder's contract); the sink writes them verbatim.
//
//rtlint:hotpath
func (bs *BinarySink) AppendSegment(s Segment) {
	bs.ensure(segSize)
	bs.u8(tagSeg)
	bs.subID(s.Sub)
	bs.u64(uint64(s.Start))
	bs.u64(uint64(s.End))
	bs.segs++
}

// CloseSub implements Sink.
//
//rtlint:hotpath
func (bs *BinarySink) CloseSub(r SubRecord) {
	bs.ensure(closeSize)
	bs.u8(tagClose)
	bs.subID(r.Sub)
	bs.u64(uint64(r.Release))
	bs.u64(uint64(r.Deadline))
	bs.u64(uint64(r.WCET))
	var flags byte
	at := rtime.Instant(0)
	if r.Completed {
		flags |= 1
		at = r.Completion
	}
	if r.Abandoned {
		flags |= 2
		at = r.AbandonTime
	}
	bs.u8(flags)
	bs.u64(uint64(at))
	bs.closes++
}

// Finish implements Sink: it writes the count trailer, flushes, and
// reports the first writer error.
func (bs *BinarySink) Finish() error {
	bs.ensure(endSize)
	bs.u8(tagEnd)
	bs.u64(uint64(bs.opens))
	bs.u64(uint64(bs.segs))
	bs.u64(uint64(bs.closes))
	bs.flush()
	return bs.err
}

// ReadBinary replays a binary trace stream from r into sink, verifying
// the header, record structure, and trailer counts, and returns
// sink.Finish() (a read error takes precedence). Reading is not a hot
// path; it buffers via bufio for convenience.
func ReadBinary(r io.Reader, sink Sink) error {
	br := bufio.NewReaderSize(r, binBufSize)
	var magic [len(binMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("trace: reading stream header: %w", err)
	}
	if string(magic[:]) != binMagic {
		return fmt.Errorf("trace: bad stream magic %q", magic[:])
	}
	readU64 := func(buf []byte, at int) uint64 { return binary.LittleEndian.Uint64(buf[at:]) }
	readSub := func(buf []byte) SubID {
		return SubID{
			TaskID: int(int32(binary.LittleEndian.Uint32(buf))),
			Seq:    int64(readU64(buf, 4)),
			Kind:   Kind(buf[12]),
		}
	}
	var opens, segs, closes int64
	var rec [closeSize]byte
	for {
		tag, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("trace: stream truncated before trailer: %w", err)
		}
		switch tag {
		case tagOpen:
			if _, err := io.ReadFull(br, rec[:openSize-1]); err != nil {
				return fmt.Errorf("trace: truncated open record: %w", err)
			}
			sink.OpenSub(readSub(rec[:]),
				rtime.Instant(readU64(rec[:], 13)),
				rtime.Instant(readU64(rec[:], 21)),
				rtime.Duration(readU64(rec[:], 29)))
			opens++
		case tagSeg:
			if _, err := io.ReadFull(br, rec[:segSize-1]); err != nil {
				return fmt.Errorf("trace: truncated segment record: %w", err)
			}
			sink.AppendSegment(Segment{
				Sub:   readSub(rec[:]),
				Start: rtime.Instant(readU64(rec[:], 13)),
				End:   rtime.Instant(readU64(rec[:], 21)),
			})
			segs++
		case tagClose:
			if _, err := io.ReadFull(br, rec[:closeSize-1]); err != nil {
				return fmt.Errorf("trace: truncated close record: %w", err)
			}
			sr := SubRecord{
				Sub:      readSub(rec[:]),
				Release:  rtime.Instant(readU64(rec[:], 13)),
				Deadline: rtime.Instant(readU64(rec[:], 21)),
				WCET:     rtime.Duration(readU64(rec[:], 29)),
			}
			flags, at := rec[37], rtime.Instant(readU64(rec[:], 38))
			if flags&1 != 0 {
				sr.Completed, sr.Completion = true, at
			}
			if flags&2 != 0 {
				sr.Abandoned, sr.AbandonTime = true, at
			}
			sink.CloseSub(sr)
			closes++
		case tagEnd:
			if _, err := io.ReadFull(br, rec[:endSize-1]); err != nil {
				return fmt.Errorf("trace: truncated trailer: %w", err)
			}
			wantOpens := int64(readU64(rec[:], 0))
			wantSegs := int64(readU64(rec[:], 8))
			wantCloses := int64(readU64(rec[:], 16))
			if opens != wantOpens || segs != wantSegs || closes != wantCloses {
				return fmt.Errorf("trace: trailer counts (%d opens, %d segments, %d closes) disagree with stream (%d, %d, %d)",
					wantOpens, wantSegs, wantCloses, opens, segs, closes)
			}
			if _, err := br.ReadByte(); err != io.EOF {
				return fmt.Errorf("trace: trailing bytes after end-of-stream trailer")
			}
			return sink.Finish()
		default:
			return fmt.Errorf("trace: unknown record tag %#x", tag)
		}
	}
}
