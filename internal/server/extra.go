package server

import (
	"fmt"
	"math"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
)

// Replay serves requests by cycling through a recorded latency trace —
// the bridge from a real deployment: measure your GPU server once,
// then drive decisions, analysis, and simulations from the recording.
// A negative sample marks a lost request.
type Replay struct {
	samples []rtime.Duration
	next    int
}

// NewReplay builds a replay server. The trace must be non-empty; it is
// copied.
func NewReplay(samples []rtime.Duration) (*Replay, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("server: empty replay trace")
	}
	return &Replay{samples: append([]rtime.Duration(nil), samples...)}, nil
}

// Respond implements Server.
func (r *Replay) Respond(rtime.Instant, int, int64) Response {
	s := r.samples[r.next]
	r.next = (r.next + 1) % len(r.samples)
	if s < 0 {
		return Response{}
	}
	return Response{Latency: s, Arrives: true}
}

// GilbertConfig parameterizes the bursty two-state (Gilbert–Elliott)
// server: in the Good state responses are fast; in the Bad state —
// a congested network or a server busy with a burst of background
// work — they are slow or lost. State transitions are evaluated per
// request based on elapsed time, giving bursts with geometric-like
// durations.
type GilbertConfig struct {
	// Mean sojourn times of the two states.
	GoodDuration, BadDuration rtime.Duration
	// Latencies per state (log-normal around the mean with the given
	// sigma; sigma 0 = deterministic).
	GoodLatency, BadLatency rtime.Duration
	Sigma                   float64
	// BadLossProbability: chance a Bad-state request is lost entirely.
	BadLossProbability float64
}

// Validate checks the configuration.
func (c GilbertConfig) Validate() error {
	if c.GoodDuration <= 0 || c.BadDuration <= 0 {
		return fmt.Errorf("server: gilbert sojourn times must be positive")
	}
	if c.GoodLatency <= 0 || c.BadLatency <= 0 {
		return fmt.Errorf("server: gilbert latencies must be positive")
	}
	if c.Sigma < 0 {
		return fmt.Errorf("server: negative sigma")
	}
	if c.BadLossProbability < 0 || c.BadLossProbability > 1 {
		return fmt.Errorf("server: loss probability %g out of [0,1]", c.BadLossProbability)
	}
	return nil
}

// Gilbert is the bursty two-state server. It implements Server.
type Gilbert struct {
	cfg GilbertConfig
	rng *stats.RNG

	bad      bool
	switchAt rtime.Instant
}

// NewGilbert builds a bursty server starting in the Good state.
func NewGilbert(rng *stats.RNG, cfg GilbertConfig) (*Gilbert, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Gilbert{cfg: cfg, rng: rng}
	g.switchAt = rtime.Instant(g.sojourn(false))
	return g, nil
}

func (g *Gilbert) sojourn(bad bool) rtime.Duration {
	mean := g.cfg.GoodDuration
	if bad {
		mean = g.cfg.BadDuration
	}
	d := rtime.FromSeconds(g.rng.Exponential(mean.Seconds()))
	if d <= 0 {
		d = 1
	}
	return d
}

// advance rolls the state machine forward to the given instant.
func (g *Gilbert) advance(now rtime.Instant) {
	for g.switchAt <= now {
		g.bad = !g.bad
		g.switchAt = g.switchAt.Add(g.sojourn(g.bad))
	}
}

// Bad reports the state the server would be in at the given instant
// (advancing internal state; instants must be non-decreasing).
func (g *Gilbert) Bad(now rtime.Instant) bool {
	g.advance(now)
	return g.bad
}

// Respond implements Server.
func (g *Gilbert) Respond(issue rtime.Instant, _ int, _ int64) Response {
	g.advance(issue)
	mean := g.cfg.GoodLatency
	if g.bad {
		if g.cfg.BadLossProbability > 0 && g.rng.Bool(g.cfg.BadLossProbability) {
			return Response{}
		}
		mean = g.cfg.BadLatency
	}
	lat := mean
	if g.cfg.Sigma > 0 {
		mu := math.Log(mean.Seconds()) - g.cfg.Sigma*g.cfg.Sigma/2
		lat = rtime.FromSeconds(g.rng.LogNormal(mu, g.cfg.Sigma))
	}
	if lat <= 0 {
		lat = 1
	}
	return Response{Latency: lat, Arrives: true}
}

// FailAfter wraps a server that fails permanently at a given instant —
// the fleet failover scenario. Requests issued at or after At never
// return (the client's compensation timer covers every outstanding
// claim, so the hard guarantee is unaffected; only the benefit drops).
type FailAfter struct {
	Inner Server
	At    rtime.Instant
}

// Respond implements Server.
func (f FailAfter) Respond(issue rtime.Instant, taskID int, payloadBytes int64) Response {
	if issue >= f.At {
		return Response{}
	}
	return f.Inner.Respond(issue, taskID, payloadBytes)
}
