package server

import (
	"testing"
	"testing/quick"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
)

func resCfg() ReservationConfig {
	return ReservationConfig{
		Budget:         rtime.FromMillis(4),
		Period:         rtime.FromMillis(10),
		ServicePerByte: 0.1, // 0.1µs per byte
		ServiceFloor:   rtime.FromMillis(1),
		TransferBound:  rtime.FromMillis(2),
	}
}

func TestReservationValidate(t *testing.T) {
	if _, err := NewReservation(resCfg()); err != nil {
		t.Fatal(err)
	}
	for i, m := range []func(*ReservationConfig){
		func(c *ReservationConfig) { c.Budget = 0 },
		func(c *ReservationConfig) { c.Budget = c.Period + 1 },
		func(c *ReservationConfig) { c.Period = 0 },
		func(c *ReservationConfig) { c.ServicePerByte = -1 },
		func(c *ReservationConfig) { c.TransferBound = -1 },
	} {
		c := resCfg()
		m(&c)
		if _, err := NewReservation(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestWCRTBoundFormula(t *testing.T) {
	c := resCfg()
	// Payload 70kB → demand 1ms + 7ms = 8ms → n = ⌈8/4⌉ = 2.
	// WCRT = 1·10 + (10−4) + 8 + 2 = 26ms.
	if got := c.WCRTBound(70_000); got != rtime.FromMillis(26) {
		t.Fatalf("WCRTBound = %v, want 26ms", got)
	}
	// Tiny payload: demand = floor 1ms → n = 1 → 0 + 6 + 1 + 2 = 9ms.
	if got := c.WCRTBound(0); got != rtime.FromMillis(9) {
		t.Fatalf("WCRTBound(0) = %v, want 9ms", got)
	}
}

// Every isolated response is within WCRTBound, at any issue instant.
func TestReservationHonorsBound(t *testing.T) {
	check := func(seed uint64, payloadRaw uint32, gapRaw uint16) bool {
		c := resCfg()
		r, err := NewReservation(c)
		if err != nil {
			return false
		}
		rng := stats.NewRNG(seed)
		at := rtime.Instant(0)
		for i := 0; i < 20; i++ {
			payload := int64(payloadRaw % 100_000)
			bound := c.WCRTBound(payload)
			resp := r.Respond(at, 1, payload)
			if !resp.Arrives || resp.Latency > bound {
				return false
			}
			// Let the backlog drain fully before the next request, as a
			// well-dimensioned client (period ≥ WCRT) does.
			at = at.Add(bound + rtime.Duration(gapRaw) + rtime.Duration(rng.Int64N(10_000)))
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReservationBacklogChains(t *testing.T) {
	c := resCfg()
	r, _ := NewReservation(c)
	// Two back-to-back requests: the second waits for the first's
	// backlog, exceeding its isolated bound — the client contract
	// (one outstanding request) matters.
	p := int64(70_000)
	first := r.Respond(0, 1, p)
	second := r.Respond(0, 1, p)
	if second.Latency <= first.Latency {
		t.Fatalf("backlog not charged: %v then %v", first.Latency, second.Latency)
	}
}
