package server

import (
	"fmt"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
)

// Scenario names the three server-load conditions of the paper's case
// study (§6.1.3).
type Scenario int

const (
	// Busy: the GPU server is saturated by other applications; only a
	// small number of offloaded tasks get results in time.
	Busy Scenario = iota
	// NotBusy: the server carries some other applications; a part of
	// the offloaded tasks get results in time.
	NotBusy
	// Idle: the server processes only the offloaded tasks; most get
	// results in time.
	Idle
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case Busy:
		return "busy"
	case NotBusy:
		return "not-busy"
	case Idle:
		return "idle"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// ScenarioConfig returns the queueing configuration for a case-study
// scenario. The common base models a 2-worker GPU server (two Tesla
// boards) on a ~50 Mbit/s wireless LAN with a few ms of jittery
// latency; the scenarios differ only in background load, reproducing
// "busy", "not busy" and "idle".
func ScenarioConfig(s Scenario) (QueueConfig, error) {
	cfg := QueueConfig{
		Workers:              2,
		BandwidthBytesPerSec: 6_250_000, // 50 Mbit/s
		NetLatencyMean:       rtime.FromMillis(4),
		NetLatencySigma:      0.6,
		ServiceMean:          rtime.FromMillis(12), // reference frame on one GPU
		ServiceRefBytes:      300 * 200,            // the motivation example's 300×200 image
		ServiceJitter:        0.2,
		LossProbability:      0.01,
	}
	switch s {
	case Busy:
		cfg.BackgroundRatePerSec = 28
		cfg.BackgroundServiceMean = rtime.FromMillis(70)
		cfg.LossProbability = 0.05
	case NotBusy:
		cfg.BackgroundRatePerSec = 14
		cfg.BackgroundServiceMean = rtime.FromMillis(45)
		cfg.LossProbability = 0.02
	case Idle:
		cfg.BackgroundRatePerSec = 0
		cfg.BackgroundServiceMean = 0
	default:
		return QueueConfig{}, fmt.Errorf("server: unknown scenario %d", int(s))
	}
	return cfg, nil
}

// NewScenario builds the queueing server for a case-study scenario.
func NewScenario(rng *stats.RNG, s Scenario) (*Queue, error) {
	cfg, err := ScenarioConfig(s)
	if err != nil {
		return nil, err
	}
	return NewQueue(rng, cfg)
}

// Probe issues n spaced requests with the given payload starting at
// instant 0 and returns the observed latencies of the requests that
// arrived. It is the measurement phase of the paper's Benefit and
// Response Time Estimator: offline probing builds the statistics from
// which Gi(ri) is discretized.
//
// spacing is the gap between successive probes; it should roughly
// match the production request rate so queueing effects are
// representative. For multiple probe batches against one stateful
// server use ProbeFrom, which keeps the request clock monotone.
func Probe(srv Server, n int, payloadBytes int64, spacing rtime.Duration) []rtime.Duration {
	lats, _ := ProbeFrom(srv, 0, n, payloadBytes, spacing)
	return lats
}

// ProbeFrom issues n spaced requests starting at the given instant and
// returns the observed latencies plus the instant following the last
// probe. Stateful servers (Queue) require non-decreasing request
// instants, so successive batches must chain their clocks.
func ProbeFrom(srv Server, start rtime.Instant, n int, payloadBytes int64, spacing rtime.Duration) ([]rtime.Duration, rtime.Instant) {
	if n <= 0 {
		return nil, start
	}
	out := make([]rtime.Duration, 0, n)
	at := start
	for i := 0; i < n; i++ {
		resp := srv.Respond(at, -1, payloadBytes)
		if resp.Arrives {
			out = append(out, resp.Latency)
		}
		at = at.Add(spacing)
	}
	return out, at
}
