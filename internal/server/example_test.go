package server_test

import (
	"fmt"

	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
)

// ExampleReservationConfig_WCRTBound derives a provable response-time
// bound from a reservation contract — the input to the §3
// guaranteed-level extension (task.ServerWCRT).
func ExampleReservationConfig_WCRTBound() {
	ms := rtime.FromMillis
	cfg := server.ReservationConfig{
		Budget:         ms(4),
		Period:         ms(10),
		ServicePerByte: 0.1, // µs per byte
		ServiceFloor:   ms(1),
		TransferBound:  ms(2),
	}
	// 70 kB → 8 ms demand → served across 2 reservation periods.
	fmt.Println(cfg.WCRTBound(70_000))
	// Output:
	// 26ms
}

// ExampleBounded turns any unreliable server into a bounded one — the
// reservation-backed view of a component.
func ExampleBounded() {
	ms := rtime.FromMillis
	b := server.Bounded{Inner: server.Fixed{Lost: true}, Bound: ms(40)}
	resp := b.Respond(0, 1, 0)
	fmt.Println(resp.Arrives, resp.Latency)
	// Output:
	// true 40ms
}
