package server

import (
	"math"
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
)

func ms(v int64) rtime.Duration { return rtime.FromMillis(v) }

func TestFixed(t *testing.T) {
	f := Fixed{Latency: ms(7)}
	r := f.Respond(0, 1, 100)
	if !r.Arrives || r.Latency != ms(7) {
		t.Fatalf("Fixed response = %+v", r)
	}
	lost := Fixed{Lost: true}
	if lost.Respond(0, 1, 100).Arrives {
		t.Fatal("lost server responded")
	}
}

type constSampler struct {
	lat rtime.Duration
	ok  bool
}

func (c constSampler) SampleResponse(*stats.RNG) (rtime.Duration, bool) { return c.lat, c.ok }

func TestCDFServer(t *testing.T) {
	srv := NewCDF(stats.NewRNG(1), map[int]ResponseSampler{
		1: constSampler{lat: ms(5), ok: true},
		2: constSampler{ok: false},
	})
	if r := srv.Respond(0, 1, 0); !r.Arrives || r.Latency != ms(5) {
		t.Errorf("task 1 response = %+v", r)
	}
	if r := srv.Respond(0, 2, 0); r.Arrives {
		t.Errorf("task 2 should never arrive, got %+v", r)
	}
	if r := srv.Respond(0, 99, 0); r.Arrives {
		t.Errorf("unregistered task responded: %+v", r)
	}
}

func TestQueueConfigValidate(t *testing.T) {
	good := QueueConfig{
		Workers: 1, BandwidthBytesPerSec: 1000, ServiceMean: ms(5), ServiceRefBytes: 100,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*QueueConfig){
		func(c *QueueConfig) { c.Workers = 0 },
		func(c *QueueConfig) { c.BandwidthBytesPerSec = 0 },
		func(c *QueueConfig) { c.ServiceMean = 0 },
		func(c *QueueConfig) { c.ServiceRefBytes = 0 },
		func(c *QueueConfig) { c.BackgroundRatePerSec = -1 },
		func(c *QueueConfig) { c.BackgroundRatePerSec = 5 },
		func(c *QueueConfig) { c.LossProbability = 1.5 },
		func(c *QueueConfig) { c.LossProbability = math.NaN() },
		func(c *QueueConfig) { c.NetLatencySigma = -1 },
		func(c *QueueConfig) { c.NetLatencyMean = -1 },
	}
	for i, m := range mutations {
		c := good
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := NewQueue(stats.NewRNG(1), QueueConfig{}); err == nil {
		t.Error("NewQueue accepted zero config")
	}
}

func TestQueueDeterministic(t *testing.T) {
	cfg, err := ScenarioConfig(NotBusy)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewQueue(stats.NewRNG(5), cfg)
	b, _ := NewQueue(stats.NewRNG(5), cfg)
	at := rtime.Instant(0)
	for i := 0; i < 200; i++ {
		ra := a.Respond(at, 1, 60000)
		rb := b.Respond(at, 1, 60000)
		if ra != rb {
			t.Fatalf("request %d: %+v vs %+v", i, ra, rb)
		}
		at = at.Add(ms(50))
	}
}

func TestQueueTransferDominatesForLargePayloads(t *testing.T) {
	cfg := QueueConfig{
		Workers:              4,
		BandwidthBytesPerSec: 1_000_000,
		ServiceMean:          ms(1),
		ServiceRefBytes:      1000,
	}
	q, err := NewQueue(stats.NewRNG(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB at 1 MB/s: at least 1 s of transfer.
	r := q.Respond(0, 1, 1_000_000)
	if !r.Arrives {
		t.Fatal("lost without loss probability")
	}
	if r.Latency < rtime.Second {
		t.Fatalf("latency %v below pure transfer time 1s", r.Latency)
	}
}

func TestQueueBacklogGrowsUnderLoad(t *testing.T) {
	// Single worker, service mean 10ms, requests every 5ms: queue must
	// build up, so later requests see larger latencies.
	cfg := QueueConfig{
		Workers:              1,
		BandwidthBytesPerSec: 1 << 30,
		ServiceMean:          ms(10),
		ServiceRefBytes:      1000,
	}
	q, err := NewQueue(stats.NewRNG(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64
	n := 400
	at := rtime.Instant(0)
	for i := 0; i < n; i++ {
		r := q.Respond(at, 1, 1000)
		if i < 20 {
			first += r.Latency.Seconds() / 20
		}
		if i >= n-20 {
			last += r.Latency.Seconds() / 20
		}
		at = at.Add(ms(5))
	}
	if last < 3*first {
		t.Fatalf("overloaded queue did not back up: first ≈ %gs, last ≈ %gs", first, last)
	}
}

func TestQueueParallelWorkersReduceWait(t *testing.T) {
	mk := func(workers int) float64 {
		cfg := QueueConfig{
			Workers:              workers,
			BandwidthBytesPerSec: 1 << 30,
			ServiceMean:          ms(10),
			ServiceRefBytes:      1000,
		}
		q, err := NewQueue(stats.NewRNG(4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		at := rtime.Instant(0)
		for i := 0; i < 300; i++ {
			r := q.Respond(at, 1, 1000)
			sum += r.Latency.Seconds()
			at = at.Add(ms(8))
		}
		return sum / 300
	}
	one, four := mk(1), mk(4)
	if four >= one {
		t.Fatalf("4 workers (%gs) not faster than 1 (%gs)", four, one)
	}
}

func TestQueueLoss(t *testing.T) {
	cfg := QueueConfig{
		Workers: 1, BandwidthBytesPerSec: 1 << 30,
		ServiceMean: ms(1), ServiceRefBytes: 1000,
		LossProbability: 0.3,
	}
	q, err := NewQueue(stats.NewRNG(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	n := 20000
	at := rtime.Instant(0)
	for i := 0; i < n; i++ {
		if !q.Respond(at, 1, 1000).Arrives {
			lost++
		}
		at = at.Add(ms(100))
	}
	if frac := float64(lost) / float64(n); math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("loss fraction = %g, want ≈0.3", frac)
	}
}

func TestScenarioOrdering(t *testing.T) {
	// Success within a 200ms budget must order Idle ≥ NotBusy ≥ Busy.
	within := func(s Scenario) float64 {
		srv, err := NewScenario(stats.NewRNG(7), s)
		if err != nil {
			t.Fatal(err)
		}
		okCount := 0
		n := 3000
		at := rtime.Instant(0)
		for i := 0; i < n; i++ {
			r := srv.Respond(at, 1, 120000)
			if r.Arrives && r.Latency <= ms(200) {
				okCount++
			}
			at = at.Add(ms(300))
		}
		return float64(okCount) / float64(n)
	}
	busy, notBusy, idle := within(Busy), within(NotBusy), within(Idle)
	t.Logf("success within 200ms: busy=%.3f notBusy=%.3f idle=%.3f", busy, notBusy, idle)
	if !(idle > notBusy && notBusy > busy) {
		t.Fatalf("scenario ordering violated: busy=%g notBusy=%g idle=%g", busy, notBusy, idle)
	}
	if idle < 0.9 {
		t.Errorf("idle scenario success %g too low", idle)
	}
	if busy > 0.6 {
		t.Errorf("busy scenario success %g too high", busy)
	}
}

func TestScenarioString(t *testing.T) {
	if Busy.String() != "busy" || NotBusy.String() != "not-busy" || Idle.String() != "idle" {
		t.Error("scenario names wrong")
	}
	if Scenario(9).String() == "" {
		t.Error("unknown scenario empty")
	}
	if _, err := ScenarioConfig(Scenario(9)); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestProbe(t *testing.T) {
	srv := Fixed{Latency: ms(9)}
	lats := Probe(srv, 50, 1000, ms(10))
	if len(lats) != 50 {
		t.Fatalf("got %d latencies", len(lats))
	}
	for _, l := range lats {
		if l != ms(9) {
			t.Fatalf("latency %v", l)
		}
	}
	if got := Probe(srv, 0, 1000, ms(10)); got != nil {
		t.Errorf("Probe(0) = %v", got)
	}
	// Lost responses are excluded.
	if got := Probe(Fixed{Lost: true}, 10, 0, ms(1)); len(got) != 0 {
		t.Errorf("lost probe returned %v", got)
	}
}
