package server

import (
	"fmt"

	"rtoffload/internal/rtime"
)

// ReservationConfig parameterizes a resource-reservation front end in
// the spirit of Toma & Chen's reservation servers (ECRTS 2013, the
// paper's reference [10]): the component guarantees the client Budget
// units of service in every Period, regardless of background load.
// Under that contract the worst-case response time of a request with
// known service demand is computable — turning a timing unreliable
// component into a bounded one (feed WCRTBound into task.ServerWCRT
// and the §3 extension applies).
type ReservationConfig struct {
	// Budget of guaranteed service per Period (0 < Budget ≤ Period).
	Budget, Period rtime.Duration
	// ServicePerByte converts payload size into service demand;
	// ServiceFloor is the minimum demand of any request.
	ServicePerByte float64 // µs per byte
	ServiceFloor   rtime.Duration
	// TransferBound is an upper bound on the (reliable, reserved)
	// network round trip added outside the reservation.
	TransferBound rtime.Duration
}

// Validate checks the configuration.
func (c ReservationConfig) Validate() error {
	switch {
	case c.Period <= 0 || c.Budget <= 0 || c.Budget > c.Period:
		return fmt.Errorf("server: reservation budget %v / period %v invalid", c.Budget, c.Period)
	case c.ServicePerByte < 0 || c.ServiceFloor < 0 || c.TransferBound < 0:
		return fmt.Errorf("server: negative reservation parameters")
	}
	return nil
}

// demand returns the service demand of a payload.
func (c ReservationConfig) demand(payloadBytes int64) rtime.Duration {
	d := c.ServiceFloor + rtime.Duration(float64(payloadBytes)*c.ServicePerByte)
	if d < 1 {
		d = 1
	}
	return d
}

// WCRTBound returns the worst-case response time of a request with the
// given payload under the reservation: the demand s is served in
// ⌈s/Budget⌉ periods in the worst case (request arrives just after the
// budget was exhausted), plus the bounded transfer:
//
//	WCRT = (⌈s/Q⌉ − 1)·P + (P − Q) + s + transfer
func (c ReservationConfig) WCRTBound(payloadBytes int64) rtime.Duration {
	s := c.demand(payloadBytes)
	n := rtime.CeilDiv(s, c.Budget)
	return rtime.Duration(n-1)*c.Period + (c.Period - c.Budget) + s + c.TransferBound
}

// Reservation is the simulated reservation server. Each request
// consumes its demand from the budget stream; within a period the
// first Budget units of pending demand are served. It implements
// Server and never exceeds WCRTBound.
type Reservation struct {
	cfg ReservationConfig
	// backlogFreeAt is the instant the reservation finishes all
	// previously admitted demand.
	backlogFreeAt rtime.Instant
}

// NewReservation builds the server.
func NewReservation(cfg ReservationConfig) (*Reservation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Reservation{cfg: cfg}, nil
}

// Respond implements Server with the worst-case supply pattern of the
// reservation: demand is served at rate Budget/Period, aligned so that
// each request first waits out the unavailable remainder of its
// arrival period. This is intentionally the pessimistic corner of the
// supply-bound function — a reservation server promises bounds, and
// this model always honours exactly them, making it the adversarial
// counterpart for guaranteed levels.
func (r *Reservation) Respond(issue rtime.Instant, _ int, payloadBytes int64) Response {
	c := r.cfg
	s := c.demand(payloadBytes)
	start := rtime.MaxInstant(issue, r.backlogFreeAt)
	// Worst-case alignment within the supply period: the budget for
	// this period is already spent; service begins next period.
	n := rtime.CeilDiv(s, c.Budget)
	finish := start.Add(rtime.Duration(n-1)*c.Period + (c.Period - c.Budget) + s)
	r.backlogFreeAt = finish
	lat := finish.Sub(issue) + c.TransferBound
	return Response{Latency: lat, Arrives: true}
}
