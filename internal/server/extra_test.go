package server

import (
	"math"
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
)

func TestReplay(t *testing.T) {
	trace := []rtime.Duration{ms(10), ms(20), -1, ms(30)}
	r, err := NewReplay(trace)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		lat rtime.Duration
		ok  bool
	}{
		{ms(10), true}, {ms(20), true}, {0, false}, {ms(30), true},
		{ms(10), true}, // cycles
	}
	at := rtime.Instant(0)
	for i, w := range want {
		resp := r.Respond(at, 1, 0)
		if resp.Arrives != w.ok || (w.ok && resp.Latency != w.lat) {
			t.Fatalf("request %d: %+v, want %+v", i, resp, w)
		}
		at = at.Add(ms(5))
	}
	// Mutating the input trace must not affect the server.
	trace[0] = ms(999)
	if resp := r.Respond(at, 1, 0); resp.Latency != ms(20) {
		t.Fatalf("replay aliases input: %+v", resp)
	}
	if _, err := NewReplay(nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestGilbertValidate(t *testing.T) {
	good := GilbertConfig{
		GoodDuration: rtime.Second, BadDuration: rtime.Second,
		GoodLatency: ms(10), BadLatency: ms(100),
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, m := range []func(*GilbertConfig){
		func(c *GilbertConfig) { c.GoodDuration = 0 },
		func(c *GilbertConfig) { c.BadDuration = 0 },
		func(c *GilbertConfig) { c.GoodLatency = 0 },
		func(c *GilbertConfig) { c.BadLatency = 0 },
		func(c *GilbertConfig) { c.Sigma = -1 },
		func(c *GilbertConfig) { c.BadLossProbability = 2 },
	} {
		c := good
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := NewGilbert(stats.NewRNG(1), c); err == nil {
			t.Errorf("NewGilbert accepted mutation %d", i)
		}
	}
}

func TestGilbertBursts(t *testing.T) {
	cfg := GilbertConfig{
		GoodDuration: rtime.Second, BadDuration: rtime.FromMillis(500),
		GoodLatency: ms(10), BadLatency: ms(200),
	}
	g, err := NewGilbert(stats.NewRNG(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sample every 20ms over 60 simulated seconds: both regimes appear,
	// and their time shares approximate 2:1.
	fast, slow := 0, 0
	at := rtime.Instant(0)
	for i := 0; i < 3000; i++ {
		resp := g.Respond(at, 1, 0)
		if !resp.Arrives {
			t.Fatal("loss without loss probability")
		}
		switch resp.Latency {
		case ms(10):
			fast++
		case ms(200):
			slow++
		default:
			t.Fatalf("unexpected latency %v", resp.Latency)
		}
		at = at.Add(ms(20))
	}
	if fast == 0 || slow == 0 {
		t.Fatalf("regimes not both visited: fast=%d slow=%d", fast, slow)
	}
	frac := float64(fast) / float64(fast+slow)
	if math.Abs(frac-2.0/3) > 0.12 {
		t.Fatalf("good-state share %g, want ≈0.67", frac)
	}
	// Burstiness: consecutive samples should correlate — count regime
	// switches; with 1s/0.5s sojourns and 20ms sampling, far fewer
	// switches than samples.
	g2, _ := NewGilbert(stats.NewRNG(3), cfg)
	switches := 0
	prevBad := false
	at = 0
	for i := 0; i < 3000; i++ {
		bad := g2.Bad(at)
		if i > 0 && bad != prevBad {
			switches++
		}
		prevBad = bad
		at = at.Add(ms(20))
	}
	if switches > 300 {
		t.Fatalf("%d regime switches in 3000 samples — not bursty", switches)
	}
}

func TestGilbertLossOnlyInBadState(t *testing.T) {
	cfg := GilbertConfig{
		GoodDuration: rtime.FromMillis(100), BadDuration: rtime.FromMillis(100),
		GoodLatency: ms(10), BadLatency: ms(200),
		BadLossProbability: 1,
	}
	g, err := NewGilbert(stats.NewRNG(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := rtime.Instant(0)
	losses, goods := 0, 0
	for i := 0; i < 2000; i++ {
		resp := g.Respond(at, 1, 0)
		if !resp.Arrives {
			losses++
		} else if resp.Latency == ms(10) {
			goods++
		} else {
			t.Fatalf("bad-state response arrived despite loss probability 1: %+v", resp)
		}
		at = at.Add(ms(7))
	}
	if losses == 0 || goods == 0 {
		t.Fatalf("degenerate: losses=%d goods=%d", losses, goods)
	}
}

func TestGilbertLogNormalLatency(t *testing.T) {
	cfg := GilbertConfig{
		GoodDuration: rtime.Second, BadDuration: rtime.FromMillis(1),
		GoodLatency: ms(50), BadLatency: ms(100),
		Sigma: 0.5,
	}
	g, err := NewGilbert(stats.NewRNG(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	n := 5000
	at := rtime.Instant(0)
	for i := 0; i < n; i++ {
		resp := g.Respond(at, 1, 0)
		sum += resp.Latency.Seconds()
		at = at.Add(1) // stay inside the long good state mostly
	}
	// LogNormal with mean-compensated mu: average ≈ 50ms (mixed with
	// rare bad-state samples).
	if mean := sum / float64(n); math.Abs(mean-0.05) > 0.02 {
		t.Fatalf("mean latency %gs, want ≈0.05", mean)
	}
}

func TestBounded(t *testing.T) {
	b := Bounded{Inner: Fixed{Lost: true}, Bound: ms(40)}
	resp := b.Respond(0, 1, 0)
	if !resp.Arrives || resp.Latency != ms(40) {
		t.Fatalf("lost response not bounded: %+v", resp)
	}
	b = Bounded{Inner: Fixed{Latency: ms(100)}, Bound: ms(40)}
	if resp := b.Respond(0, 1, 0); resp.Latency != ms(40) {
		t.Fatalf("late response not clamped: %+v", resp)
	}
	b = Bounded{Inner: Fixed{Latency: ms(10)}, Bound: ms(40)}
	if resp := b.Respond(0, 1, 0); resp.Latency != ms(10) {
		t.Fatalf("fast response altered: %+v", resp)
	}
}
