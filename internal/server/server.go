// Package server models the timing unreliable components that serve
// offloaded computations: a GPU server reached over an unreliable
// network, as in the paper's case study (two Tesla M2050 boards behind
// an rCUDA-style proxy on a wireless LAN).
//
// The offloading mechanism observes a server through exactly one
// channel — the response time of each request — so the substitution
// for the paper's physical testbed is a family of stochastic
// response-time models:
//
//   - Fixed: deterministic latency (unit tests, worst-case adversary).
//   - CDF: samples from an arbitrary response-time CDF, e.g. a
//     probability-valued benefit function; this makes the simulated
//     ground truth agree exactly with the decision input (§6.2).
//   - Queue: a c-worker FIFO queueing model with payload-dependent
//     transfer and service times plus a Poisson background load; the
//     paper's busy / not-busy / idle scenarios are three parameter
//     sets of this model (§6.1.3).
//
// All models are deterministic given their RNG seed.
package server

import (
	"fmt"
	"math"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
)

// Response is the outcome of one offload request.
type Response struct {
	// Latency is the time from issuing the request to the result
	// arriving back at the client. Meaningless when Arrives is false.
	Latency rtime.Duration
	// Arrives reports whether a result comes back at all. A lost
	// request (network drop, server failure) never produces a result;
	// the client's compensation timer is its only recourse.
	Arrives bool
}

// Server models a timing unreliable component serving offloaded
// requests. Implementations may maintain internal queue state; calls
// must be made with non-decreasing issue instants.
type Server interface {
	// Respond simulates one offload request issued at the given
	// instant by task taskID with the given payload size.
	Respond(issue rtime.Instant, taskID int, payloadBytes int64) Response
}

// Fixed responds to every request with the same latency. A Fixed with
// Lost=true never responds — the adversarial worst case that forces
// every offloaded job through local compensation.
type Fixed struct {
	Latency rtime.Duration
	Lost    bool
}

// Respond implements Server.
func (f Fixed) Respond(rtime.Instant, int, int64) Response {
	if f.Lost {
		return Response{}
	}
	return Response{Latency: f.Latency, Arrives: true}
}

// Bounded wraps a server with a hard response-time ceiling, modelling
// a component with resource reservations (the paper's §3 remark about
// pessimistic worst-case bounds, in the spirit of Toma & Chen's
// reservation servers): any response that would exceed Bound —
// including lost ones — is delivered exactly at the bound instead.
type Bounded struct {
	Inner Server
	Bound rtime.Duration
}

// Respond implements Server.
func (b Bounded) Respond(issue rtime.Instant, taskID int, payloadBytes int64) Response {
	r := b.Inner.Respond(issue, taskID, payloadBytes)
	if !r.Arrives || r.Latency > b.Bound {
		return Response{Latency: b.Bound, Arrives: true}
	}
	return r
}

// ResponseSampler draws a response time; ok=false means the result
// never arrives. benefit.Function.SampleResponse satisfies this shape
// via the Sampler adapter in package core.
type ResponseSampler interface {
	SampleResponse(rng *stats.RNG) (rtime.Duration, bool)
}

// CDF serves each task's requests by sampling its response-time
// distribution. Tasks without a registered sampler never receive
// results.
type CDF struct {
	rng      *stats.RNG
	samplers map[int]ResponseSampler
}

// NewCDF builds a CDF server. The samplers map is keyed by task ID.
func NewCDF(rng *stats.RNG, samplers map[int]ResponseSampler) *CDF {
	return &CDF{rng: rng, samplers: samplers}
}

// Respond implements Server.
func (c *CDF) Respond(_ rtime.Instant, taskID int, _ int64) Response {
	s, ok := c.samplers[taskID]
	if !ok {
		return Response{}
	}
	lat, ok := s.SampleResponse(c.rng)
	if !ok {
		return Response{}
	}
	return Response{Latency: lat, Arrives: true}
}

// QueueConfig parameterizes the queueing GPU-server model.
type QueueConfig struct {
	// Workers is the number of parallel service units (GPU boards /
	// proxy threads). Must be ≥ 1.
	Workers int

	// BandwidthBytesPerSec is the network bandwidth for payload
	// transfer, each direction. ≥ 1.
	BandwidthBytesPerSec int64

	// NetLatencyMean/Jitter: per-direction base network latency; the
	// sampled latency is LogNormal-shaped around the mean.
	NetLatencyMean  rtime.Duration
	NetLatencySigma float64 // sigma of the underlying normal (0 = deterministic)

	// ServiceMean is the mean GPU service time for a reference payload
	// of ServiceRefBytes; service scales linearly with payload. GPU
	// kernels are near-deterministic for a fixed size, so the sampled
	// service is the scaled mean ± ServiceJitter (uniform fractional
	// jitter in [0, 1); 0 = deterministic). The timing *unreliability*
	// comes from queueing behind background load, not from the kernel.
	ServiceMean     rtime.Duration
	ServiceRefBytes int64
	ServiceJitter   float64

	// BackgroundRatePerSec is the Poisson arrival rate of background
	// jobs competing for the workers (the paper's "server busy
	// processing other applications"). BackgroundServiceMean is their
	// mean (exponential) service time.
	BackgroundRatePerSec  float64
	BackgroundServiceMean rtime.Duration

	// LossProbability is the chance a request or its result is lost in
	// the network and never arrives.
	LossProbability float64
}

// Validate checks the configuration.
func (c QueueConfig) Validate() error {
	switch {
	case c.Workers < 1:
		return fmt.Errorf("server: Workers = %d, need ≥ 1", c.Workers)
	case c.BandwidthBytesPerSec < 1:
		return fmt.Errorf("server: bandwidth %d B/s, need ≥ 1", c.BandwidthBytesPerSec)
	case c.NetLatencyMean < 0 || c.ServiceMean <= 0:
		return fmt.Errorf("server: invalid latency/service means")
	case c.ServiceRefBytes < 1:
		return fmt.Errorf("server: ServiceRefBytes %d, need ≥ 1", c.ServiceRefBytes)
	case c.BackgroundRatePerSec < 0 || c.BackgroundServiceMean < 0:
		return fmt.Errorf("server: negative background load")
	case c.BackgroundRatePerSec > 0 && c.BackgroundServiceMean <= 0:
		return fmt.Errorf("server: background rate without service time")
	case c.LossProbability < 0 || c.LossProbability > 1 || math.IsNaN(c.LossProbability):
		return fmt.Errorf("server: loss probability %g out of [0,1]", c.LossProbability)
	case c.NetLatencySigma < 0:
		return fmt.Errorf("server: negative latency sigma")
	case c.ServiceJitter < 0 || c.ServiceJitter >= 1 || math.IsNaN(c.ServiceJitter):
		return fmt.Errorf("server: service jitter %g out of [0,1)", c.ServiceJitter)
	}
	return nil
}

// Queue is a FIFO queueing server with Workers parallel service units
// and a Poisson background load. It implements Server.
type Queue struct {
	cfg QueueConfig
	rng *stats.RNG

	// freeAt[w] is the instant worker w becomes idle.
	freeAt []rtime.Instant
	// nextBackground is the arrival instant of the next background job.
	nextBackground rtime.Instant
}

// NewQueue builds a queueing server.
func NewQueue(rng *stats.RNG, cfg QueueConfig) (*Queue, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	q := &Queue{cfg: cfg, rng: rng, freeAt: make([]rtime.Instant, cfg.Workers)}
	q.nextBackground = q.backgroundGap(0)
	return q, nil
}

func (q *Queue) backgroundGap(from rtime.Instant) rtime.Instant {
	if q.cfg.BackgroundRatePerSec <= 0 {
		return rtime.Forever
	}
	gapSec := q.rng.Exponential(1 / q.cfg.BackgroundRatePerSec)
	return from.Add(rtime.FromSeconds(gapSec) + 1)
}

// admitBackground injects all background arrivals up to now.
func (q *Queue) admitBackground(now rtime.Instant) {
	for q.nextBackground <= now {
		svc := rtime.FromSeconds(q.rng.Exponential(q.cfg.BackgroundServiceMean.Seconds()))
		q.dispatch(q.nextBackground, svc)
		q.nextBackground = q.backgroundGap(q.nextBackground)
	}
}

// dispatch assigns a job arriving at the server at `at` with the given
// service demand to the earliest-free worker, FIFO, and returns its
// completion instant.
func (q *Queue) dispatch(at rtime.Instant, service rtime.Duration) rtime.Instant {
	best := 0
	for w := 1; w < len(q.freeAt); w++ {
		if q.freeAt[w] < q.freeAt[best] {
			best = w
		}
	}
	start := rtime.MaxInstant(at, q.freeAt[best])
	done := start.Add(service)
	q.freeAt[best] = done
	return done
}

func (q *Queue) netLatency() rtime.Duration {
	if q.cfg.NetLatencyMean <= 0 {
		return 0
	}
	if q.cfg.NetLatencySigma == 0 {
		return q.cfg.NetLatencyMean
	}
	// LogNormal with the configured mean: mu = ln(mean) − sigma²/2.
	mu := math.Log(q.cfg.NetLatencyMean.Seconds()) - q.cfg.NetLatencySigma*q.cfg.NetLatencySigma/2
	return rtime.FromSeconds(q.rng.LogNormal(mu, q.cfg.NetLatencySigma))
}

// Respond implements Server: uplink transfer → queue+service →
// downlink transfer, or loss.
func (q *Queue) Respond(issue rtime.Instant, _ int, payloadBytes int64) Response {
	q.admitBackground(issue)
	if q.cfg.LossProbability > 0 && q.rng.Bool(q.cfg.LossProbability) {
		return Response{}
	}
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	transfer := rtime.Duration(payloadBytes * int64(rtime.Second) / q.cfg.BandwidthBytesPerSec)
	up := q.netLatency() + transfer
	arriveAtServer := issue.Add(up)
	q.admitBackground(arriveAtServer)

	meanSvc := float64(q.cfg.ServiceMean) * float64(payloadBytes) / float64(q.cfg.ServiceRefBytes)
	if payloadBytes == 0 {
		meanSvc = float64(q.cfg.ServiceMean)
	}
	jitter := 1.0
	if q.cfg.ServiceJitter > 0 {
		jitter = 1 + q.cfg.ServiceJitter*(2*q.rng.Float64()-1)
	}
	service := rtime.Duration(meanSvc * jitter)
	if service <= 0 {
		service = 1
	}
	done := q.dispatch(arriveAtServer, service)

	down := q.netLatency()
	total := done.Sub(issue) + down
	return Response{Latency: total, Arrives: true}
}
