package imgproc

import (
	"bytes"
	"testing"

	"rtoffload/internal/stats"
)

// FuzzDecompress drives the payload decoder with arbitrary byte
// streams: it must never panic, and whenever it accepts a stream the
// re-encoded image must round-trip identically.
func FuzzDecompress(f *testing.F) {
	im := Synthetic(stats.NewRNG(1), 24, 16)
	f.Add(Compress(im), 24, 16)
	f.Add([]byte{}, 4, 4)
	f.Add([]byte{0x00, 0x10}, 4, 4)
	f.Add([]byte{0x01, 0x02, 0x03}, 1, 3)
	f.Fuzz(func(t *testing.T, data []byte, w, h int) {
		if w <= 0 || h <= 0 || w > 64 || h > 64 {
			return
		}
		got, err := Decompress(data, w, h)
		if err != nil {
			return
		}
		if got.W != w || got.H != h || len(got.Pix) != w*h {
			t.Fatalf("accepted stream produced %dx%d image", got.W, got.H)
		}
		again, err := Decompress(Compress(got), w, h)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(again.Pix, got.Pix) {
			t.Fatal("re-encode round trip differs")
		}
	})
}
