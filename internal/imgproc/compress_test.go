package imgproc

import (
	"testing"
	"testing/quick"

	"rtoffload/internal/stats"
)

func TestCompressRoundTrip(t *testing.T) {
	for _, mk := range []func() *Image{
		func() *Image { return Synthetic(stats.NewRNG(1), 64, 48) },
		func() *Image { return New(32, 32) }, // all zero
		func() *Image { // flat non-zero
			im := New(17, 13)
			for i := range im.Pix {
				im.Pix[i] = 200
			}
			return im
		},
		func() *Image { // worst case: alternating
			im := New(30, 7)
			for i := range im.Pix {
				im.Pix[i] = uint8(i * 97)
			}
			return im
		},
		func() *Image { return New(1, 1) },
	} {
		im := mk()
		data := Compress(im)
		got, err := Decompress(data, im.W, im.H)
		if err != nil {
			t.Fatal(err)
		}
		for i := range im.Pix {
			if got.Pix[i] != im.Pix[i] {
				t.Fatalf("pixel %d: %d vs %d", i, got.Pix[i], im.Pix[i])
			}
		}
	}
}

func TestCompressRatios(t *testing.T) {
	flat := New(100, 100)
	for i := range flat.Pix {
		flat.Pix[i] = 128
	}
	if s := CompressedSize(flat); s > flat.Bytes()/20 {
		t.Fatalf("flat image compressed to %d of %d bytes", s, flat.Bytes())
	}
	noisy := New(100, 100)
	rng := stats.NewRNG(2)
	for i := range noisy.Pix {
		noisy.Pix[i] = uint8(rng.IntN(256))
	}
	if s := CompressedSize(noisy); s < noisy.Bytes()*9/10 {
		t.Fatalf("random noise compressed to %d of %d bytes — impossible", s, noisy.Bytes())
	}
	// Camera-like frames land in between.
	cam := Synthetic(stats.NewRNG(3), 100, 100)
	s := CompressedSize(cam)
	if s >= cam.Bytes()+cam.Bytes()/4 || s <= cam.Bytes()/20 {
		t.Fatalf("synthetic frame compressed to %d of %d bytes", s, cam.Bytes())
	}
}

func TestDecompressRejects(t *testing.T) {
	im := Synthetic(stats.NewRNG(4), 16, 16)
	data := Compress(im)
	cases := []struct {
		name string
		data []byte
		w, h int
	}{
		{"bad dims", data, 0, 16},
		{"truncated", data[:len(data)-1], 16, 16},
		{"overlong", append(append([]byte{}, data...), 5), 16, 16},
		{"zero run", []byte{0x00, 0x00}, 16, 16},
		{"truncated run token", []byte{0x00}, 16, 16},
		{"run overflow", []byte{0x00, 255, 0x00, 255}, 4, 4},
	}
	for _, c := range cases {
		if _, err := Decompress(c.data, c.w, c.h); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// Property: round trip is the identity for arbitrary images.
func TestCompressProperty(t *testing.T) {
	f := func(seed uint64, wRaw, hRaw uint8) bool {
		w := int(wRaw%40) + 1
		h := int(hRaw%40) + 1
		rng := stats.NewRNG(seed)
		im := New(w, h)
		// Mix of flat runs and noise.
		v := uint8(rng.IntN(256))
		for i := range im.Pix {
			if rng.Bool(0.2) {
				v = uint8(rng.IntN(256))
			}
			im.Pix[i] = v
		}
		got, err := Decompress(Compress(im), w, h)
		if err != nil {
			return false
		}
		for i := range im.Pix {
			if got.Pix[i] != im.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
