package imgproc

import (
	"bytes"
	"strings"
	"testing"

	"rtoffload/internal/stats"
)

func TestPGMRoundTrip(t *testing.T) {
	im := Synthetic(stats.NewRNG(5), 37, 23)
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != im.W || got.H != im.H {
		t.Fatalf("dimensions %dx%d", got.W, got.H)
	}
	for i := range im.Pix {
		if got.Pix[i] != im.Pix[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}
}

func TestReadPGMComments(t *testing.T) {
	data := "P5\n# a comment\n2 # inline\n2\n255\n" + string([]byte{1, 2, 3, 4})
	im, err := ReadPGM(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 2 || im.H != 2 || im.Pix[3] != 4 {
		t.Fatalf("parsed %+v", im)
	}
}

func TestReadPGMRejects(t *testing.T) {
	cases := map[string]string{
		"bad magic":  "P2\n2 2\n255\n",
		"bad header": "P5\nxx 2\n255\n",
		"bad maxval": "P5\n2 2\n65535\n" + string(make([]byte, 8)),
		"zero dims":  "P5\n0 2\n255\n",
		"truncated":  "P5\n4 4\n255\n" + string(make([]byte, 3)),
		"empty":      "",
	}
	for name, data := range cases {
		if _, err := ReadPGM(strings.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
