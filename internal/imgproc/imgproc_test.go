package imgproc

import (
	"math"
	"testing"

	"rtoffload/internal/stats"
)

func frame(t *testing.T, w, h int) *Image {
	t.Helper()
	return Synthetic(stats.NewRNG(42), w, h)
}

func TestNewAtSet(t *testing.T) {
	im := New(4, 3)
	im.Set(1, 2, 77)
	if im.At(1, 2) != 77 {
		t.Fatal("Set/At broken")
	}
	// Clamping reads.
	im.Set(0, 0, 10)
	if im.At(-5, -5) != 10 {
		t.Error("negative clamp")
	}
	im.Set(3, 2, 20)
	if im.At(99, 99) != 20 {
		t.Error("positive clamp")
	}
	// Ignored out-of-range writes.
	im.Set(-1, 0, 99)
	im.Set(4, 0, 99)
	if im.At(0, 0) != 10 {
		t.Error("out-of-range write leaked")
	}
	if im.Bytes() != 12 {
		t.Errorf("Bytes = %d", im.Bytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,0) did not panic")
		}
	}()
	New(0, 0)
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(stats.NewRNG(7), 64, 48)
	b := Synthetic(stats.NewRNG(7), 64, 48)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("Synthetic not deterministic")
		}
	}
	c := Synthetic(stats.NewRNG(8), 64, 48)
	diff := 0
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			diff++
		}
	}
	if diff < len(a.Pix)/10 {
		t.Fatalf("different seeds produced nearly identical frames (%d diffs)", diff)
	}
}

func TestSyntheticHasStructure(t *testing.T) {
	im := frame(t, 128, 96)
	// A useful test frame must not be flat: decent pixel variance.
	var mean float64
	for _, p := range im.Pix {
		mean += float64(p)
	}
	mean /= float64(len(im.Pix))
	var varsum float64
	for _, p := range im.Pix {
		d := float64(p) - mean
		varsum += d * d
	}
	if sd := math.Sqrt(varsum / float64(len(im.Pix))); sd < 20 {
		t.Fatalf("frame too flat: stddev %g", sd)
	}
}

func TestCloneShift(t *testing.T) {
	im := frame(t, 32, 32)
	c := im.Clone()
	c.Pix[0] = ^c.Pix[0]
	if im.Pix[0] == c.Pix[0] {
		t.Fatal("Clone aliases")
	}
	s := im.Shift(3, 0)
	if s.At(10, 10) != im.At(7, 10) {
		t.Fatal("Shift wrong")
	}
}

func TestResizeIdentity(t *testing.T) {
	im := frame(t, 40, 30)
	same := im.Resize(40, 30)
	for i := range im.Pix {
		if same.Pix[i] != im.Pix[i] {
			t.Fatal("identity resize changed pixels")
		}
	}
}

func TestResizeRoundTripQuality(t *testing.T) {
	im := frame(t, 160, 120)
	// Round-trip PSNR must degrade monotonically with smaller scales.
	fracs := []float64{0.25, 0.5, 0.75}
	prev := 0.0
	for _, f := range fracs {
		w, h := int(160*f), int(120*f)
		rt := im.Resize(w, h).Resize(160, 120)
		p := PSNR(im, rt)
		if p <= prev {
			t.Fatalf("PSNR not increasing with scale: %g after %g", p, prev)
		}
		if p < 10 || p > 60 {
			t.Fatalf("implausible round-trip PSNR %g at fraction %g", p, f)
		}
		prev = p
	}
}

func TestPSNR(t *testing.T) {
	im := frame(t, 32, 32)
	if p := PSNR(im, im); p != PSNRCap {
		t.Fatalf("identical PSNR = %g, want cap", p)
	}
	noisy := im.Clone()
	for i := range noisy.Pix {
		noisy.Pix[i] ^= 1 // tiny distortion
	}
	p := PSNR(im, noisy)
	if p >= PSNRCap || p < 40 {
		t.Fatalf("tiny-noise PSNR = %g", p)
	}
	inverted := im.Clone()
	for i := range inverted.Pix {
		inverted.Pix[i] = 255 - inverted.Pix[i]
	}
	if q := PSNR(im, inverted); q >= p {
		t.Fatalf("heavy distortion PSNR %g not below light %g", q, p)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	PSNR(im, New(5, 5))
}

func TestSobel(t *testing.T) {
	// A vertical step edge: Sobel must fire along the edge column only.
	im := New(16, 16)
	for y := 0; y < 16; y++ {
		for x := 8; x < 16; x++ {
			im.Set(x, y, 200)
		}
	}
	e := Sobel(im)
	if e.At(8, 8) == 0 || e.At(7, 8) == 0 {
		t.Fatal("edge not detected at step")
	}
	if e.At(2, 8) != 0 || e.At(13, 8) != 0 {
		t.Fatal("false edge response in flat region")
	}
}

func TestStereoDisparity(t *testing.T) {
	left := frame(t, 64, 48)
	d := 4
	right := left.Shift(-d, 0) // right view sees objects shifted left
	disp, err := StereoDisparity(left, right, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The dominant recovered disparity (interior blocks) should be d.
	scale := 255 / 8
	counts := map[uint8]int{}
	for y := 8; y < 40; y++ {
		for x := 8; x < 56; x++ {
			counts[disp.At(x, y)]++
		}
	}
	bestV, bestC := uint8(0), 0
	for v, c := range counts {
		if c > bestC {
			bestV, bestC = v, c
		}
	}
	if int(bestV) != d*scale {
		t.Fatalf("dominant disparity %d, want %d", bestV, d*scale)
	}
	if _, err := StereoDisparity(left, New(5, 5), 8, 4); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := StereoDisparity(left, right, 0, 4); err == nil {
		t.Error("maxDisp 0 accepted")
	}
}

func TestMatchTemplate(t *testing.T) {
	im := frame(t, 96, 72)
	const tx, ty = 31, 22
	tmpl := New(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			tmpl.Set(x, y, im.At(tx+x, ty+y))
		}
	}
	m, err := MatchTemplate(im, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if m.X != tx || m.Y != ty {
		t.Fatalf("match at (%d,%d) score %g, want (%d,%d)", m.X, m.Y, m.Score, tx, ty)
	}
	if m.Score < 0.99 {
		t.Fatalf("exact template score %g", m.Score)
	}
	if _, err := MatchTemplate(tmpl, im); err == nil {
		t.Error("oversized template accepted")
	}
}

func TestMotionDetect(t *testing.T) {
	a := frame(t, 64, 48)
	b := a.Clone()
	// Move a bright square.
	for y := 10; y < 20; y++ {
		for x := 10; x < 20; x++ {
			b.Set(x, y, 255)
		}
	}
	mask, frac, err := MotionDetect(a, b, 30)
	if err != nil {
		t.Fatal(err)
	}
	if frac <= 0 || frac > 0.1 {
		t.Fatalf("changed fraction %g", frac)
	}
	inside, outside := 0, 0
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			if mask.At(x, y) == 255 {
				if x >= 10 && x < 20 && y >= 10 && y < 20 {
					inside++
				} else {
					outside++
				}
			}
		}
	}
	if inside < 50 || outside > 5 {
		t.Fatalf("mask localization: inside=%d outside=%d", inside, outside)
	}
	if _, _, err := MotionDetect(a, New(3, 3), 10); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Identical frames: no motion.
	_, frac, _ = MotionDetect(a, a, 10)
	if frac != 0 {
		t.Errorf("self-motion fraction %g", frac)
	}
}

func TestCostModelCalibration(t *testing.T) {
	m := DefaultCostModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The motivation example: recognition on 300×200.
	cpu := m.CPUTime(KernelRecognition, 300, 200)
	gpu := m.GPUTime(KernelRecognition, 300, 200)
	if math.Abs(cpu.Millis()-278) > 5 {
		t.Errorf("CPU recognition = %v, want ≈278ms", cpu)
	}
	if math.Abs(gpu.Millis()-7) > 0.5 {
		t.Errorf("GPU recognition = %v, want ≈7ms", gpu)
	}
	// GPU must dominate for every kernel.
	for _, k := range []Kernel{KernelStereo, KernelEdge, KernelRecognition, KernelMotion} {
		if m.GPUTime(k, 640, 480) >= m.CPUTime(k, 640, 480) {
			t.Errorf("%v: GPU not faster", k)
		}
	}
}

func TestCostModelValidate(t *testing.T) {
	for i, m := range []CostModel{
		{},
		{CPUOpsPerSec: 1, GPUOpsPerSec: 0, SetupBytesPerSec: 1},
		{CPUOpsPerSec: 1, GPUOpsPerSec: 1, SetupBytesPerSec: 0},
		{CPUOpsPerSec: 1, GPUOpsPerSec: 1, SetupBytesPerSec: 1, SetupOverhead: -1},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d accepted", i)
		}
	}
}

func TestKernelString(t *testing.T) {
	names := map[Kernel]string{
		KernelStereo:      "stereo-vision",
		KernelEdge:        "edge-detection",
		KernelRecognition: "object-recognition",
		KernelMotion:      "motion-detection",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d = %q", int(k), k.String())
		}
		if k.OpsPerPixel() <= 0 {
			t.Errorf("%v: OpsPerPixel = %g", k, k.OpsPerPixel())
		}
	}
	if Kernel(9).String() == "" || Kernel(9).OpsPerPixel() != 0 {
		t.Error("unknown kernel handling")
	}
}

func TestBuildLevels(t *testing.T) {
	m := DefaultCostModel()
	im := frame(t, 320, 240)
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	specs, err := BuildLevels(m, KernelEdge, im, fracs)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 5 {
		t.Fatalf("%d specs", len(specs))
	}
	for i, s := range specs {
		if i > 0 {
			p := specs[i-1]
			if s.PSNR <= p.PSNR {
				t.Errorf("level %d: PSNR %g not above %g", i, s.PSNR, p.PSNR)
			}
			if s.Payload <= p.Payload || s.CPUTime <= p.CPUTime || s.Setup <= p.Setup {
				t.Errorf("level %d: costs not increasing", i)
			}
		}
		if s.GPUTime >= s.CPUTime {
			t.Errorf("level %d: GPU slower than CPU", i)
		}
	}
	if specs[4].PSNR != PSNRCap {
		t.Errorf("top level PSNR = %g, want cap", specs[4].PSNR)
	}
	// Bad inputs.
	if _, err := BuildLevels(m, KernelEdge, im, nil); err == nil {
		t.Error("empty fractions accepted")
	}
	if _, err := BuildLevels(m, KernelEdge, im, []float64{0.5, 0.5}); err == nil {
		t.Error("non-increasing fractions accepted")
	}
	if _, err := BuildLevels(m, KernelEdge, im, []float64{1.5}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := BuildLevels(CostModel{}, KernelEdge, im, fracs); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestSetupTimeGrows(t *testing.T) {
	m := DefaultCostModel()
	small := m.SetupTime(80, 60)
	large := m.SetupTime(640, 480)
	if large <= small || small <= 0 {
		t.Fatalf("setup times: small=%v large=%v", small, large)
	}
	if small < m.SetupOverhead {
		t.Error("setup below fixed overhead")
	}
}

func benchFrame(b *testing.B, w, h int) *Image {
	b.Helper()
	return Synthetic(stats.NewRNG(1), w, h)
}

func BenchmarkSobel640x480(b *testing.B) {
	im := benchFrame(b, 640, 480)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sobel(im)
	}
}

func BenchmarkCanny640x480(b *testing.B) {
	im := benchFrame(b, 640, 480)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Canny(im, 1.2, 60, 140); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStereo320x240(b *testing.B) {
	left := benchFrame(b, 320, 240)
	right := left.Shift(-4, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := StereoDisparity(left, right, 16, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResizeHalf640x480(b *testing.B) {
	im := benchFrame(b, 640, 480)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.Resize(320, 240)
	}
}

func BenchmarkCompress640x480(b *testing.B) {
	im := benchFrame(b, 640, 480)
	b.SetBytes(im.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(im)
	}
}

func BenchmarkPSNR640x480(b *testing.B) {
	a := benchFrame(b, 640, 480)
	c := a.Resize(320, 240).Resize(640, 480)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PSNR(a, c)
	}
}
