package imgproc

import (
	"bufio"
	"fmt"
	"io"
)

// WritePGM encodes the image as a binary PGM (P5, maxval 255) — the
// simplest portable grayscale format, so synthetic frames, edge maps,
// disparity maps and motion masks can be inspected with any image
// viewer.
func WritePGM(w io.Writer, im *Image) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	_, err := w.Write(im.Pix)
	return err
}

// ReadPGM decodes a binary PGM (P5) image with maxval 255. Comments
// (# …) in the header are skipped.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" {
		return nil, fmt.Errorf("imgproc: not a binary PGM (magic %q)", magic)
	}
	var w, h, maxv int
	for _, dst := range []*int{&w, &h, &maxv} {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(tok, "%d", dst); err != nil {
			return nil, fmt.Errorf("imgproc: bad PGM header token %q", tok)
		}
	}
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("imgproc: implausible PGM dimensions %d×%d", w, h)
	}
	if maxv != 255 {
		return nil, fmt.Errorf("imgproc: unsupported PGM maxval %d", maxv)
	}
	im := New(w, h)
	if _, err := io.ReadFull(br, im.Pix); err != nil {
		return nil, fmt.Errorf("imgproc: truncated PGM pixel data: %w", err)
	}
	return im, nil
}

// pgmToken reads the next whitespace-delimited header token, skipping
// comments.
func pgmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if len(tok) > 0 && err == io.EOF {
				return string(tok), nil
			}
			return "", fmt.Errorf("imgproc: PGM header: %w", err)
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil {
				return "", fmt.Errorf("imgproc: PGM comment: %w", err)
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}
