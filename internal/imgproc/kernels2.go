package imgproc

import (
	"fmt"
	"math"
)

// GaussianBlur applies a separable Gaussian filter with the given
// standard deviation (in pixels). The kernel radius is ⌈3σ⌉. σ ≤ 0
// returns a copy of the input.
func GaussianBlur(im *Image, sigma float64) *Image {
	if sigma <= 0 {
		return im.Clone()
	}
	radius := int(math.Ceil(3 * sigma))
	kernel := make([]float64, 2*radius+1)
	sum := 0.0
	for i := range kernel {
		d := float64(i - radius)
		kernel[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= sum
	}
	// Horizontal pass into a float buffer, then vertical.
	tmp := make([]float64, im.W*im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			acc := 0.0
			for k, w := range kernel {
				acc += w * float64(im.At(x+k-radius, y))
			}
			tmp[y*im.W+x] = acc
		}
	}
	out := New(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			acc := 0.0
			for k, w := range kernel {
				yy := y + k - radius
				if yy < 0 {
					yy = 0
				}
				if yy >= im.H {
					yy = im.H - 1
				}
				acc += w * tmp[yy*im.W+x]
			}
			out.Pix[y*im.W+x] = uint8(acc + 0.5)
		}
	}
	return out
}

// Canny performs multi-stage edge detection: Gaussian smoothing, Sobel
// gradients, non-maximum suppression along the quantized gradient
// direction, and double-threshold hysteresis. Output pixels are 255 on
// confirmed edges, 0 elsewhere. Thresholds apply to the L1 gradient
// magnitude; low < high required.
func Canny(im *Image, sigma float64, low, high int) (*Image, error) {
	if low < 0 || high <= low {
		return nil, fmt.Errorf("imgproc: canny thresholds low=%d high=%d", low, high)
	}
	sm := GaussianBlur(im, sigma)
	w, h := im.W, im.H
	mag := make([]int, w*h)
	dir := make([]uint8, w*h) // 0: 0°, 1: 45°, 2: 90°, 3: 135°
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			gx := -int(sm.At(x-1, y-1)) + int(sm.At(x+1, y-1)) +
				-2*int(sm.At(x-1, y)) + 2*int(sm.At(x+1, y)) +
				-int(sm.At(x-1, y+1)) + int(sm.At(x+1, y+1))
			gy := -int(sm.At(x-1, y-1)) - 2*int(sm.At(x, y-1)) - int(sm.At(x+1, y-1)) +
				int(sm.At(x-1, y+1)) + 2*int(sm.At(x, y+1)) + int(sm.At(x+1, y+1))
			m := abs(gx) + abs(gy)
			mag[y*w+x] = m
			// Quantize direction to 4 bins.
			angle := math.Atan2(float64(gy), float64(gx)) // [−π, π]
			deg := angle * 180 / math.Pi
			if deg < 0 {
				deg += 180
			}
			switch {
			case deg < 22.5 || deg >= 157.5:
				dir[y*w+x] = 0
			case deg < 67.5:
				dir[y*w+x] = 1
			case deg < 112.5:
				dir[y*w+x] = 2
			default:
				dir[y*w+x] = 3
			}
		}
	}
	// Non-maximum suppression.
	nms := make([]int, w*h)
	at := func(x, y int) int {
		if x < 0 || x >= w || y < 0 || y >= h {
			return 0
		}
		return mag[y*w+x]
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			m := mag[y*w+x]
			var a, b int
			switch dir[y*w+x] {
			case 0:
				a, b = at(x-1, y), at(x+1, y)
			case 1:
				a, b = at(x+1, y-1), at(x-1, y+1)
			case 2:
				a, b = at(x, y-1), at(x, y+1)
			default:
				a, b = at(x-1, y-1), at(x+1, y+1)
			}
			if m >= a && m >= b {
				nms[y*w+x] = m
			}
		}
	}
	// Hysteresis: BFS from strong pixels through weak neighbours.
	out := New(w, h)
	var stack []int
	for i, m := range nms {
		if m >= high {
			out.Pix[i] = 255
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		x, y := i%w, i/w
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				xx, yy := x+dx, y+dy
				if xx < 0 || xx >= w || yy < 0 || yy >= h {
					continue
				}
				j := yy*w + xx
				if out.Pix[j] == 0 && nms[j] >= low {
					out.Pix[j] = 255
					stack = append(stack, j)
				}
			}
		}
	}
	return out, nil
}

// Integral is a summed-area table: Sum(x0,y0,x1,y1) of any rectangle
// in O(1). Used by box filters and fast template pre-screening.
type Integral struct {
	W, H int
	sums []int64 // (W+1)×(H+1), first row/col zero
}

// NewIntegral builds the summed-area table of im.
func NewIntegral(im *Image) *Integral {
	w, h := im.W, im.H
	s := make([]int64, (w+1)*(h+1))
	for y := 1; y <= h; y++ {
		var row int64
		for x := 1; x <= w; x++ {
			row += int64(im.Pix[(y-1)*w+x-1])
			s[y*(w+1)+x] = s[(y-1)*(w+1)+x] + row
		}
	}
	return &Integral{W: w, H: h, sums: s}
}

// Sum returns the pixel sum over the half-open rectangle
// [x0, x1) × [y0, y1), clamped to the image.
func (in *Integral) Sum(x0, y0, x1, y1 int) int64 {
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	x0, x1 = clamp(x0, in.W), clamp(x1, in.W)
	y0, y1 = clamp(y0, in.H), clamp(y1, in.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	w1 := in.W + 1
	return in.sums[y1*w1+x1] - in.sums[y0*w1+x1] - in.sums[y1*w1+x0] + in.sums[y0*w1+x0]
}

// BoxBlur averages over a (2r+1)² window via the integral image.
func BoxBlur(im *Image, r int) *Image {
	if r <= 0 {
		return im.Clone()
	}
	ii := NewIntegral(im)
	out := New(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			x0, y0 := x-r, y-r
			x1, y1 := x+r+1, y+r+1
			// Clamp and divide by the true covered area so borders
			// stay unbiased.
			cx0, cy0 := maxInt(x0, 0), maxInt(y0, 0)
			cx1, cy1 := minInt(x1, im.W), minInt(y1, im.H)
			area := int64(cx1-cx0) * int64(cy1-cy0)
			out.Pix[y*im.W+x] = uint8((ii.Sum(x0, y0, x1, y1) + area/2) / area)
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Corner is a detected interest point.
type Corner struct {
	X, Y     int
	Response float64
}

// HarrisCorners detects corners via the Harris response
// det(M) − k·trace(M)² over σ-smoothed gradient products, followed by
// 3×3 non-maximum suppression and thresholding relative to the
// strongest response. Returns corners sorted by decreasing response,
// at most maxCorners.
func HarrisCorners(im *Image, k float64, relThreshold float64, maxCorners int) ([]Corner, error) {
	if k <= 0 || relThreshold <= 0 || relThreshold >= 1 || maxCorners <= 0 {
		return nil, fmt.Errorf("imgproc: harris parameters k=%g rel=%g max=%d", k, relThreshold, maxCorners)
	}
	w, h := im.W, im.H
	sm := GaussianBlur(im, 1)
	ixx := make([]float64, w*h)
	iyy := make([]float64, w*h)
	ixy := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			gx := float64(int(sm.At(x+1, y)) - int(sm.At(x-1, y)))
			gy := float64(int(sm.At(x, y+1)) - int(sm.At(x, y-1)))
			ixx[y*w+x] = gx * gx
			iyy[y*w+x] = gy * gy
			ixy[y*w+x] = gx * gy
		}
	}
	// 5×5 window accumulation of the structure tensor.
	resp := make([]float64, w*h)
	best := 0.0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sxx, syy, sxy float64
			for dy := -2; dy <= 2; dy++ {
				yy := y + dy
				if yy < 0 || yy >= h {
					continue
				}
				for dx := -2; dx <= 2; dx++ {
					xx := x + dx
					if xx < 0 || xx >= w {
						continue
					}
					i := yy*w + xx
					sxx += ixx[i]
					syy += iyy[i]
					sxy += ixy[i]
				}
			}
			det := sxx*syy - sxy*sxy
			tr := sxx + syy
			r := det - k*tr*tr
			resp[y*w+x] = r
			if r > best {
				best = r
			}
		}
	}
	if best <= 0 {
		return nil, nil
	}
	thr := best * relThreshold
	var corners []Corner
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			r := resp[y*w+x]
			if r < thr {
				continue
			}
			localMax := true
			for dy := -1; dy <= 1 && localMax; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					if resp[(y+dy)*w+x+dx] > r {
						localMax = false
						break
					}
				}
			}
			if localMax {
				corners = append(corners, Corner{X: x, Y: y, Response: r})
			}
		}
	}
	sortCorners(corners)
	if len(corners) > maxCorners {
		corners = corners[:maxCorners]
	}
	return corners, nil
}

func sortCorners(cs []Corner) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Response > cs[j-1].Response; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
