package imgproc

import (
	"fmt"
	"math"
)

// Sobel computes gradient-magnitude edge detection. The output pixel
// is the clamped L1 magnitude of the horizontal and vertical Sobel
// responses.
func Sobel(im *Image) *Image {
	out := New(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			gx := -int(im.At(x-1, y-1)) + int(im.At(x+1, y-1)) +
				-2*int(im.At(x-1, y)) + 2*int(im.At(x+1, y)) +
				-int(im.At(x-1, y+1)) + int(im.At(x+1, y+1))
			gy := -int(im.At(x-1, y-1)) - 2*int(im.At(x, y-1)) - int(im.At(x+1, y-1)) +
				int(im.At(x-1, y+1)) + 2*int(im.At(x, y+1)) + int(im.At(x+1, y+1))
			m := abs(gx) + abs(gy)
			if m > 255 {
				m = 255
			}
			out.Pix[y*im.W+x] = uint8(m)
		}
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// StereoDisparity computes a block-matching disparity map between a
// left and right view (right shifted left by the true disparity).
// For each block it searches disparities 0..maxDisp−1 minimizing the
// sum of absolute differences. The output encodes disparity scaled to
// the 0..255 range. Dimensions must match.
func StereoDisparity(left, right *Image, maxDisp, block int) (*Image, error) {
	if left.W != right.W || left.H != right.H {
		return nil, fmt.Errorf("imgproc: stereo dimension mismatch")
	}
	if maxDisp < 1 || block < 1 {
		return nil, fmt.Errorf("imgproc: invalid stereo parameters maxDisp=%d block=%d", maxDisp, block)
	}
	out := New(left.W, left.H)
	scale := 255 / maxDisp
	if scale == 0 {
		scale = 1
	}
	for by := 0; by < left.H; by += block {
		for bx := 0; bx < left.W; bx += block {
			bestD, bestSAD := 0, math.MaxInt64
			for d := 0; d < maxDisp; d++ {
				sad := 0
				for y := by; y < by+block && y < left.H; y++ {
					for x := bx; x < bx+block && x < left.W; x++ {
						sad += abs(int(left.At(x, y)) - int(right.At(x-d, y)))
					}
				}
				if sad < bestSAD {
					bestSAD, bestD = sad, d
				}
			}
			v := uint8(min(bestD*scale, 255))
			for y := by; y < by+block && y < left.H; y++ {
				for x := bx; x < bx+block && x < left.W; x++ {
					out.Pix[y*left.W+x] = v
				}
			}
		}
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Match is the result of template matching.
type Match struct {
	X, Y  int
	Score float64 // normalized cross-correlation in [−1, 1]
}

// MatchTemplate locates the template within the image by maximizing
// the zero-mean normalized cross-correlation over a coarse-to-fine
// grid (stride 2 scan plus local refinement) — the object-recognition
// stand-in for the paper's SIFT pipeline.
func MatchTemplate(im, tmpl *Image) (Match, error) {
	if tmpl.W > im.W || tmpl.H > im.H {
		return Match{}, fmt.Errorf("imgproc: template %d×%d larger than image %d×%d", tmpl.W, tmpl.H, im.W, im.H)
	}
	tMean := meanOf(tmpl, 0, 0, tmpl.W, tmpl.H)
	var tVar float64
	for _, p := range tmpl.Pix {
		d := float64(p) - tMean
		tVar += d * d
	}
	best := Match{Score: math.Inf(-1)}
	score := func(ox, oy int) float64 {
		iMean := meanOf(im, ox, oy, tmpl.W, tmpl.H)
		var cov, iVar float64
		for y := 0; y < tmpl.H; y++ {
			for x := 0; x < tmpl.W; x++ {
				di := float64(im.Pix[(oy+y)*im.W+ox+x]) - iMean
				dt := float64(tmpl.Pix[y*tmpl.W+x]) - tMean
				cov += di * dt
				iVar += di * di
			}
		}
		den := math.Sqrt(tVar * iVar)
		if den == 0 {
			return 0
		}
		return cov / den
	}
	// Coarse scan.
	for oy := 0; oy+tmpl.H <= im.H; oy += 2 {
		for ox := 0; ox+tmpl.W <= im.W; ox += 2 {
			if s := score(ox, oy); s > best.Score {
				best = Match{X: ox, Y: oy, Score: s}
			}
		}
	}
	// Local refinement around the coarse optimum.
	for oy := best.Y - 1; oy <= best.Y+1; oy++ {
		for ox := best.X - 1; ox <= best.X+1; ox++ {
			if ox < 0 || oy < 0 || ox+tmpl.W > im.W || oy+tmpl.H > im.H {
				continue
			}
			if s := score(ox, oy); s > best.Score {
				best = Match{X: ox, Y: oy, Score: s}
			}
		}
	}
	return best, nil
}

func meanOf(im *Image, ox, oy, w, h int) float64 {
	var s float64
	for y := oy; y < oy+h; y++ {
		for x := ox; x < ox+w; x++ {
			s += float64(im.Pix[y*im.W+x])
		}
	}
	return s / float64(w*h)
}

// MotionDetect thresholds the absolute difference of two frames and
// reports the binary change mask plus the changed-pixel fraction.
func MotionDetect(a, b *Image, threshold uint8) (*Image, float64, error) {
	if a.W != b.W || a.H != b.H {
		return nil, 0, fmt.Errorf("imgproc: motion dimension mismatch")
	}
	out := New(a.W, a.H)
	changed := 0
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		if uint8(d) > threshold {
			out.Pix[i] = 255
			changed++
		}
	}
	return out, float64(changed) / float64(len(a.Pix)), nil
}
