package imgproc

import (
	"math"
	"testing"
)

func TestGaussianBlurSmooths(t *testing.T) {
	im := frame(t, 64, 48)
	bl := GaussianBlur(im, 2)
	// Blur preserves the global mean (within rounding) but reduces
	// local variation.
	var m0, m1 float64
	for i := range im.Pix {
		m0 += float64(im.Pix[i])
		m1 += float64(bl.Pix[i])
	}
	m0 /= float64(len(im.Pix))
	m1 /= float64(len(im.Pix))
	if math.Abs(m0-m1) > 3 {
		t.Fatalf("blur shifted mean: %g → %g", m0, m1)
	}
	tv := func(x *Image) float64 {
		s := 0.0
		for y := 0; y < x.H; y++ {
			for xx := 1; xx < x.W; xx++ {
				d := float64(x.At(xx, y)) - float64(x.At(xx-1, y))
				s += math.Abs(d)
			}
		}
		return s
	}
	if tv(bl) >= tv(im)/2 {
		t.Fatalf("blur did not smooth: TV %g vs %g", tv(bl), tv(im))
	}
	// σ ≤ 0: identity copy.
	id := GaussianBlur(im, 0)
	for i := range im.Pix {
		if id.Pix[i] != im.Pix[i] {
			t.Fatal("sigma 0 not identity")
		}
	}
	id.Pix[0] ^= 0xFF
	if im.Pix[0] == id.Pix[0] {
		t.Fatal("sigma 0 aliases input")
	}
}

func TestGaussianBlurFlatImage(t *testing.T) {
	im := New(20, 20)
	for i := range im.Pix {
		im.Pix[i] = 100
	}
	bl := GaussianBlur(im, 3)
	for i, p := range bl.Pix {
		if p != 100 {
			t.Fatalf("pixel %d = %d on flat image", i, p)
		}
	}
}

func TestCanny(t *testing.T) {
	// A clean step edge must survive NMS and hysteresis as a thin line.
	im := New(40, 40)
	for y := 0; y < 40; y++ {
		for x := 20; x < 40; x++ {
			im.Set(x, y, 220)
		}
	}
	edges, err := Canny(im, 1, 40, 120)
	if err != nil {
		t.Fatal(err)
	}
	// Count edge pixels per column: the edge should be localized around
	// x = 19..20, and flat regions clean.
	for x := 0; x < 40; x++ {
		count := 0
		for y := 2; y < 38; y++ {
			if edges.At(x, y) == 255 {
				count++
			}
		}
		switch {
		case x >= 18 && x <= 21:
			if x == 19 || x == 20 {
				if count < 20 {
					t.Errorf("column %d: edge weak (%d)", x, count)
				}
			}
		case count > 2:
			t.Errorf("column %d: %d spurious edge pixels", x, count)
		}
	}
	if _, err := Canny(im, 1, 100, 50); err == nil {
		t.Error("inverted thresholds accepted")
	}
	if _, err := Canny(im, 1, -1, 50); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestCannyThinnerThanSobel(t *testing.T) {
	im := frame(t, 64, 64)
	sob := Sobel(im)
	canny, err := Canny(im, 1.2, 60, 140)
	if err != nil {
		t.Fatal(err)
	}
	nSob, nCan := 0, 0
	for i := range sob.Pix {
		if sob.Pix[i] > 140 {
			nSob++
		}
		if canny.Pix[i] == 255 {
			nCan++
		}
	}
	if nCan == 0 {
		t.Fatal("canny found nothing")
	}
	if nCan >= nSob*2 {
		t.Fatalf("canny (%d) not sparser than raw sobel threshold (%d)", nCan, nSob)
	}
}

func TestIntegral(t *testing.T) {
	im := frame(t, 23, 17)
	ii := NewIntegral(im)
	// Cross-check random rectangles against brute force.
	cases := [][4]int{
		{0, 0, 23, 17}, {5, 3, 11, 9}, {0, 0, 1, 1}, {22, 16, 23, 17},
		{-5, -5, 30, 30}, // clamped
		{10, 10, 10, 12}, // empty
	}
	for _, c := range cases {
		var want int64
		for y := maxInt(c[1], 0); y < minInt(c[3], 17); y++ {
			for x := maxInt(c[0], 0); x < minInt(c[2], 23); x++ {
				want += int64(im.At(x, y))
			}
		}
		if got := ii.Sum(c[0], c[1], c[2], c[3]); got != want {
			t.Errorf("Sum%v = %d, want %d", c, got, want)
		}
	}
}

func TestBoxBlur(t *testing.T) {
	im := frame(t, 32, 32)
	b := BoxBlur(im, 2)
	// Centre pixel equals the 5×5 mean.
	var want int64
	for y := 8; y <= 12; y++ {
		for x := 8; x <= 12; x++ {
			want += int64(im.At(x, y))
		}
	}
	want = (want + 12) / 25
	if got := int64(b.At(10, 10)); got != want {
		t.Fatalf("box blur centre %d, want %d", got, want)
	}
	// r = 0: copy.
	c := BoxBlur(im, 0)
	for i := range im.Pix {
		if c.Pix[i] != im.Pix[i] {
			t.Fatal("r=0 not identity")
		}
	}
}

func TestHarrisCorners(t *testing.T) {
	// A bright rectangle on black background: corners at its 4 corners,
	// none along straight edges or in flat areas.
	im := New(64, 64)
	for y := 20; y < 44; y++ {
		for x := 16; x < 48; x++ {
			im.Set(x, y, 230)
		}
	}
	corners, err := HarrisCorners(im, 0.05, 0.2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(corners) < 4 {
		t.Fatalf("found %d corners, want ≥ 4", len(corners))
	}
	// Every reported corner must be near one of the 4 true corners.
	truth := [][2]int{{16, 20}, {47, 20}, {16, 43}, {47, 43}}
	for _, c := range corners {
		ok := false
		for _, tc := range truth {
			dx, dy := c.X-tc[0], c.Y-tc[1]
			if dx*dx+dy*dy <= 25 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("spurious corner at (%d,%d)", c.X, c.Y)
		}
	}
	// Sorted by decreasing response.
	for i := 1; i < len(corners); i++ {
		if corners[i].Response > corners[i-1].Response {
			t.Fatal("corners not sorted")
		}
	}
	// Parameter validation.
	for _, bad := range [][3]float64{{0, 0.2, 8}, {0.05, 0, 8}, {0.05, 1.5, 8}, {0.05, 0.2, 0}} {
		if _, err := HarrisCorners(im, bad[0], bad[1], int(bad[2])); err == nil {
			t.Errorf("bad params %v accepted", bad)
		}
	}
	// Flat image: no corners, no error.
	flat := New(32, 32)
	cs, err := HarrisCorners(flat, 0.05, 0.2, 8)
	if err != nil || len(cs) != 0 {
		t.Fatalf("flat image: %v, %v", cs, err)
	}
}

func TestHarrisMaxCornersCap(t *testing.T) {
	im := frame(t, 96, 96)
	cs, err := HarrisCorners(im, 0.05, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) > 5 {
		t.Fatalf("cap ignored: %d corners", len(cs))
	}
}
