package imgproc

import (
	"fmt"
)

// Compress encodes the image losslessly with a left-predictor +
// zero-run-length scheme — the "data compression" part of the paper's
// setup phase Ci,1. Smooth regions (flat walls, sky) collapse into
// runs; textured or noisy frames stay near raw size, which is exactly
// the trade-off a real offloading client sees.
//
// Format: a stream of tokens. Token 0x00 is followed by a run length
// byte n (1..255) meaning n consecutive zero residuals; any other byte
// is a single non-zero residual. Residuals are p − left (mod 256),
// with the predictor carrying across row ends in scanline order and
// starting at 0.
func Compress(im *Image) []byte {
	out := make([]byte, 0, len(im.Pix)/2)
	prev := uint8(0)
	run := 0
	flush := func() {
		for run > 0 {
			n := run
			if n > 255 {
				n = 255
			}
			out = append(out, 0x00, uint8(n))
			run -= n
		}
	}
	for _, p := range im.Pix {
		r := p - prev
		prev = p
		if r == 0 {
			run++
			continue
		}
		flush()
		out = append(out, r)
	}
	flush()
	return out
}

// Decompress reconstructs a w×h image from Compress output. It errors
// on truncated streams, pixel-count mismatches, and zero-length runs.
func Decompress(data []byte, w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("imgproc: invalid dimensions %d×%d", w, h)
	}
	im := New(w, h)
	n := w * h
	idx := 0
	prev := uint8(0)
	for i := 0; i < len(data); i++ {
		b := data[i]
		if b == 0x00 {
			i++
			if i >= len(data) {
				return nil, fmt.Errorf("imgproc: truncated run token at byte %d", i-1)
			}
			runLen := int(data[i])
			if runLen == 0 {
				return nil, fmt.Errorf("imgproc: zero-length run at byte %d", i)
			}
			if idx+runLen > n {
				return nil, fmt.Errorf("imgproc: run overflows image (%d+%d > %d)", idx, runLen, n)
			}
			for k := 0; k < runLen; k++ {
				im.Pix[idx] = prev
				idx++
			}
			continue
		}
		if idx >= n {
			return nil, fmt.Errorf("imgproc: residual beyond image end")
		}
		prev += b
		im.Pix[idx] = prev
		idx++
	}
	if idx != n {
		return nil, fmt.Errorf("imgproc: stream ended after %d of %d pixels", idx, n)
	}
	return im, nil
}

// CompressedSize reports the payload size of the compressed image —
// the bytes actually shipped to the server.
func CompressedSize(im *Image) int64 { return int64(len(Compress(im))) }
