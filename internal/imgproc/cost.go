package imgproc

import (
	"fmt"

	"rtoffload/internal/rtime"
)

// Kernel names the four case-study applications.
type Kernel int

const (
	// KernelStereo is block-matching stereo vision (τ1).
	KernelStereo Kernel = iota
	// KernelEdge is Sobel edge detection (τ2).
	KernelEdge
	// KernelRecognition is template/feature object recognition (τ3) —
	// the SIFT stand-in of the motivation example.
	KernelRecognition
	// KernelMotion is frame-difference motion detection (τ4).
	KernelMotion
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelStereo:
		return "stereo-vision"
	case KernelEdge:
		return "edge-detection"
	case KernelRecognition:
		return "object-recognition"
	case KernelMotion:
		return "motion-detection"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// OpsPerPixel returns the kernel's arithmetic-operation density, the
// workload parameter of the cost model. Stereo scans 16 disparities
// over 8×8 blocks (amortized ~3 ops × 16 disparities per pixel);
// recognition runs a multi-scale descriptor pipeline, dominating the
// others by two orders of magnitude.
func (k Kernel) OpsPerPixel() float64 {
	switch k {
	case KernelStereo:
		return 48 * 16
	case KernelEdge:
		return 18
	case KernelRecognition:
		return 4000
	case KernelMotion:
		return 3
	default:
		return 0
	}
}

// CostModel converts kernel workloads into execution times on the
// client CPU and the GPU server.
//
// The default calibration reproduces the paper's motivation example —
// object recognition on a 300×200 frame runs in ≈278 ms on the Intel
// i3-2310M and ≈7 ms on the GT 630M — and applies the same throughput
// ratio to the other kernels.
type CostModel struct {
	CPUOpsPerSec float64
	GPUOpsPerSec float64
	// SetupOverhead is the fixed local cost of preparing any offload
	// (buffer init, header packing) before per-byte work.
	SetupOverhead rtime.Duration
	// SetupBytesPerSec is the throughput of the local transmit path
	// (compress + copy) applied per payload byte.
	SetupBytesPerSec float64
}

// DefaultCostModel returns the calibration described above.
func DefaultCostModel() CostModel {
	// 300×200 × 4000 ops = 2.4e8 ops; 278 ms ⇒ ≈0.863 Gops/s CPU;
	// 7 ms ⇒ ≈34.3 Gops/s GPU.
	return CostModel{
		CPUOpsPerSec:     8.63e8,
		GPUOpsPerSec:     3.43e10,
		SetupOverhead:    rtime.FromMillisF(0.5),
		SetupBytesPerSec: 5e7, // 50 MB/s compress+copy path
	}
}

// Validate checks the model.
func (m CostModel) Validate() error {
	if m.CPUOpsPerSec <= 0 || m.GPUOpsPerSec <= 0 {
		return fmt.Errorf("imgproc: non-positive throughput in cost model")
	}
	if m.SetupOverhead < 0 || m.SetupBytesPerSec <= 0 {
		return fmt.Errorf("imgproc: invalid setup costs")
	}
	return nil
}

// CPUTime estimates the kernel's local execution time on w×h pixels.
func (m CostModel) CPUTime(k Kernel, w, h int) rtime.Duration {
	ops := k.OpsPerPixel() * float64(w) * float64(h)
	return rtime.FromSeconds(ops / m.CPUOpsPerSec)
}

// GPUTime estimates the kernel's service time on the GPU server.
func (m CostModel) GPUTime(k Kernel, w, h int) rtime.Duration {
	ops := k.OpsPerPixel() * float64(w) * float64(h)
	return rtime.FromSeconds(ops / m.GPUOpsPerSec)
}

// SetupTime estimates Ci,1 for shipping a w×h frame: fixed overhead,
// the bilinear scaling pass (a few ops per output pixel on the CPU),
// and the per-byte transmit-path cost.
func (m CostModel) SetupTime(w, h int) rtime.Duration {
	scaleOps := 8 * float64(w) * float64(h)
	scale := rtime.FromSeconds(scaleOps / m.CPUOpsPerSec)
	payload := rtime.FromSeconds(float64(w) * float64(h) / m.SetupBytesPerSec)
	return m.SetupOverhead + scale + payload
}

// LevelSpec describes one scaling level of a case-study task.
type LevelSpec struct {
	W, H    int
	PSNR    float64        // measured image quality vs the original frame
	Payload int64          // bytes shipped to the server
	CPUTime rtime.Duration // kernel time if executed locally at this size
	GPUTime rtime.Duration // kernel service time on the GPU
	Setup   rtime.Duration // Ci,1: scale + pack + transmit path
}

// BuildLevels measures a ladder of scaling levels for a kernel on a
// reference frame: fractions lists the linear scale factors in
// increasing order, e.g. {1/4, 1/2, 3/4, 1}. The PSNR of each level is
// measured by the round trip scale-down → scale-up against the
// original frame; the top fraction 1.0 yields the PSNR cap (the
// paper's 99). Returns one LevelSpec per fraction.
func BuildLevels(m CostModel, k Kernel, frame *Image, fractions []float64) ([]LevelSpec, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(fractions) == 0 {
		return nil, fmt.Errorf("imgproc: no fractions")
	}
	specs := make([]LevelSpec, 0, len(fractions))
	prev := 0.0
	for _, f := range fractions {
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("imgproc: fraction %g out of (0,1]", f)
		}
		if f <= prev {
			return nil, fmt.Errorf("imgproc: fractions must be strictly increasing")
		}
		prev = f
		w := int(float64(frame.W)*f + 0.5)
		h := int(float64(frame.H)*f + 0.5)
		if w < 1 {
			w = 1
		}
		if h < 1 {
			h = 1
		}
		down := frame.Resize(w, h)
		var psnr float64
		if w == frame.W && h == frame.H {
			psnr = PSNRCap
		} else {
			up := down.Resize(frame.W, frame.H)
			psnr = PSNR(frame, up)
		}
		specs = append(specs, LevelSpec{
			W: w, H: h,
			PSNR: psnr,
			// The wire payload is the lossless-compressed frame; raw
			// size only bounds it from above on pathological inputs.
			Payload: CompressedSize(down),
			CPUTime: m.CPUTime(k, w, h),
			GPUTime: m.GPUTime(k, w, h),
			Setup:   m.SetupTime(w, h),
		})
	}
	return specs, nil
}
