// Package imgproc is the image-processing substrate for the paper's
// robot-vision case study (§6.1): synthetic camera frames, bilinear
// scaling, PSNR image-quality measurement, and the four application
// kernels — stereo vision, edge detection, object recognition and
// motion detection — together with a CPU/GPU cost model calibrated to
// the paper's motivation example (SIFT on a 300×200 frame: ≈278 ms on
// the i3 CPU vs ≈7 ms on the GT 630M GPU).
//
// The case study scales captured frames to Qi quality levels; each
// level's PSNR against the original frame is the benefit value Gi, and
// each level's pixel count drives setup time, transfer payload, and
// local compensation time. Everything here is deterministic pure Go.
package imgproc

import (
	"fmt"
	"math"

	"rtoffload/internal/stats"
)

// Image is a grayscale 8-bit image.
type Image struct {
	W, H int
	// Pix holds rows top-to-bottom, W bytes per row.
	Pix []uint8
}

// New allocates a zeroed image. It panics on non-positive dimensions.
func New(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgproc: invalid dimensions %d×%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y), clamping coordinates to the image.
func (im *Image) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y); out-of-range coordinates are
// ignored.
func (im *Image) Set(x, y int, v uint8) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Bytes reports the payload size of the raw image.
func (im *Image) Bytes() int64 { return int64(im.W) * int64(im.H) }

// Clone deep-copies the image.
func (im *Image) Clone() *Image {
	out := New(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// Synthetic generates a deterministic camera-like test frame: a smooth
// illumination gradient, value-noise texture, and a few rectangular
// and disc "objects" with sharp edges. Sharp structure matters: it is
// what scaling destroys, so PSNR degrades realistically across levels.
func Synthetic(rng *stats.RNG, w, h int) *Image {
	im := New(w, h)
	// Two value-noise octaves: a low-frequency illumination field and a
	// mid-frequency texture (4 px lattice). The texture is what
	// downscaling progressively destroys, so the PSNR ladder spans a
	// realistic range across scaling levels; a light white-noise floor
	// models sensor grain.
	lerp := func(a, b, t float64) float64 { return a + (b-a)*t }
	octave := func(lat int) []float64 {
		gw, gh := w/lat+2, h/lat+2
		grid := make([]float64, gw*gh)
		for i := range grid {
			grid[i] = rng.Float64()
		}
		field := make([]float64, w*h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				gx, gy := x/lat, y/lat
				tx := float64(x%lat) / float64(lat)
				ty := float64(y%lat) / float64(lat)
				field[y*w+x] = lerp(
					lerp(grid[gy*gw+gx], grid[gy*gw+gx+1], tx),
					lerp(grid[(gy+1)*gw+gx], grid[(gy+1)*gw+gx+1], tx),
					ty,
				)
			}
		}
		return field
	}
	low := octave(16)
	mid := octave(4)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			grad := float64(x+y) / float64(w+h)
			fine := (rng.Float64() - 0.5) * 0.06
			v := 0.25*grad + 0.25*low[y*w+x] + 0.30*(mid[y*w+x]-0.5) + 0.35 + fine
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			im.Pix[y*w+x] = uint8(v * 255)
		}
	}
	// Objects: rectangles and discs with distinct intensities.
	nObj := 6 + rng.IntN(5)
	for o := 0; o < nObj; o++ {
		cx, cy := rng.IntN(w), rng.IntN(h)
		size := 8 + rng.IntN(w/6+1)
		val := uint8(rng.IntN(256))
		if rng.Bool(0.5) {
			for y := cy - size/2; y < cy+size/2; y++ {
				for x := cx - size/2; x < cx+size/2; x++ {
					im.Set(x, y, val)
				}
			}
		} else {
			r2 := size * size / 4
			for y := cy - size/2; y <= cy+size/2; y++ {
				for x := cx - size/2; x <= cx+size/2; x++ {
					dx, dy := x-cx, y-cy
					if dx*dx+dy*dy <= r2 {
						im.Set(x, y, val)
					}
				}
			}
		}
	}
	return im
}

// Shift translates the image by (dx, dy), clamping at the borders —
// used to fabricate consecutive frames for motion detection and the
// right-eye view for stereo.
func (im *Image) Shift(dx, dy int) *Image {
	out := New(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			out.Pix[y*im.W+x] = im.At(x-dx, y-dy)
		}
	}
	return out
}

// Resize produces a bilinearly interpolated image of the given
// dimensions. It panics on non-positive target dimensions.
func (im *Image) Resize(w, h int) *Image {
	out := New(w, h)
	if w == im.W && h == im.H {
		copy(out.Pix, im.Pix)
		return out
	}
	sx := float64(im.W) / float64(w)
	sy := float64(im.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		y0 := int(fy)
		ty := fy - float64(y0)
		if fy < 0 {
			y0, ty = 0, 0
		}
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			x0 := int(fx)
			tx := fx - float64(x0)
			if fx < 0 {
				x0, tx = 0, 0
			}
			v00 := float64(im.At(x0, y0))
			v10 := float64(im.At(x0+1, y0))
			v01 := float64(im.At(x0, y0+1))
			v11 := float64(im.At(x0+1, y0+1))
			top := v00 + (v10-v00)*tx
			bot := v01 + (v11-v01)*tx
			v := top + (bot-top)*ty
			out.Pix[y*w+x] = uint8(v + 0.5)
		}
	}
	return out
}

// PSNRCap is the PSNR value reported for identical images (infinite
// true PSNR); the paper's Table 1 uses 99 for the unscaled level.
const PSNRCap = 99.0

// PSNR computes the peak signal-to-noise ratio between two images of
// equal dimensions, in dB, capped at PSNRCap. It panics on dimension
// mismatch.
func PSNR(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("imgproc: PSNR dimension mismatch %d×%d vs %d×%d", a.W, a.H, b.W, b.H))
	}
	var se float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		se += d * d
	}
	mse := se / float64(len(a.Pix))
	if mse == 0 {
		return PSNRCap
	}
	psnr := 10 * math.Log10(255*255/mse)
	if psnr > PSNRCap {
		return PSNRCap
	}
	return psnr
}
