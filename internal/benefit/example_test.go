package benefit_test

import (
	"fmt"

	"rtoffload/internal/benefit"
	"rtoffload/internal/rtime"
)

// ExampleFunction_At builds a Table-1-style benefit ladder and
// evaluates the step function.
func ExampleFunction_At() {
	ms := rtime.FromMillis
	g := benefit.MustNew(22.5,
		benefit.Point{R: ms(195), Value: 30.6},
		benefit.Point{R: ms(236), Value: 99},
	)
	fmt.Println(g.At(ms(100)), g.At(ms(200)), g.At(ms(300)))
	// Output:
	// 22.5 30.6 99
}

// ExampleFunction_Perturb shows the §6.2 estimation-error view: with
// x = +0.2 every discrete point moves 20 % later, so a budget that
// used to reach the 30.6 point no longer does.
func ExampleFunction_Perturb() {
	ms := rtime.FromMillis
	g := benefit.MustNew(22.5, benefit.Point{R: ms(195), Value: 30.6})
	h, err := g.Perturb(0.2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(g.At(ms(200)), h.At(ms(200)), h.At(ms(234)))
	// Output:
	// 30.6 22.5 30.6
}
