// Package benefit implements the discretized benefit functions Gi(ri)
// of the paper (§3.2).
//
// A Function maps an estimated worst-case response-time budget r to the
// benefit obtained when the offloaded result arrives within r. It is a
// non-decreasing step function with a fixed number of points; the point
// at r = 0 holds the benefit of pure local execution. Benefit values
// can be anything non-decreasing — the paper uses success probabilities
// (simulation study) and PSNR image qualities (case study).
//
// Because a probability-valued Function is exactly a response-time CDF,
// the same object both drives the offloading decision and, via
// SampleResponse, generates ground-truth response times for the
// simulator. The Perturb method produces the estimator's erroneous view
// G((1+x)·r) used by the paper's §6.2 sensitivity study.
package benefit

import (
	"fmt"
	"math"
	"sort"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// Point is one discrete point of a benefit function: offloading with
// response-time budget R yields Value.
type Point struct {
	R     rtime.Duration
	Value float64
}

// Function is a discretized, non-decreasing benefit function. The
// zero value is unusable; construct with New or a From* constructor.
type Function struct {
	// points are sorted by strictly increasing R; points[0].R == 0 and
	// holds the local-execution benefit Gi(0).
	points []Point
}

// New builds a benefit function from the local-execution benefit and
// the offloading points. Points must have strictly increasing positive
// R and non-decreasing values starting at or above local.
func New(local float64, pts ...Point) (*Function, error) {
	if math.IsNaN(local) {
		return nil, fmt.Errorf("benefit: NaN local benefit")
	}
	f := &Function{points: make([]Point, 0, len(pts)+1)}
	f.points = append(f.points, Point{R: 0, Value: local})
	prev := Point{R: 0, Value: local}
	for i, p := range pts {
		if math.IsNaN(p.Value) {
			return nil, fmt.Errorf("benefit: NaN value at point %d", i)
		}
		if p.R <= prev.R {
			return nil, fmt.Errorf("benefit: point %d response %v not increasing (previous %v)", i, p.R, prev.R)
		}
		if p.Value < prev.Value {
			return nil, fmt.Errorf("benefit: point %d value %g decreases (previous %g)", i, p.Value, prev.Value)
		}
		f.points = append(f.points, p)
		prev = p
	}
	return f, nil
}

// MustNew is New but panics on error; for tables of constants.
func MustNew(local float64, pts ...Point) *Function {
	f, err := New(local, pts...)
	if err != nil {
		panic(err)
	}
	return f
}

// FromTask extracts the benefit function carried by a task's levels.
func FromTask(t *task.Task) *Function {
	pts := make([]Point, len(t.Levels))
	for i, lv := range t.Levels {
		pts[i] = Point{R: lv.Response, Value: lv.Benefit}
	}
	return MustNew(t.LocalBenefit, pts...)
}

// Q reports the number of discrete points including the local point at
// r = 0 (the paper's Qi).
func (f *Function) Q() int { return len(f.points) }

// Points returns a copy of all points including the local point.
func (f *Function) Points() []Point {
	return append([]Point(nil), f.points...)
}

// OffloadPoints returns a copy of the points with R > 0.
func (f *Function) OffloadPoints() []Point {
	return append([]Point(nil), f.points[1:]...)
}

// Local returns Gi(0).
func (f *Function) Local() float64 { return f.points[0].Value }

// Max returns the largest benefit value (the last point's).
func (f *Function) Max() float64 { return f.points[len(f.points)-1].Value }

// At evaluates the step function: the value of the largest point with
// R ≤ r. At(r) for r < 0 returns the local value.
func (f *Function) At(r rtime.Duration) float64 {
	// Binary search for the first point with R > r.
	i := sort.Search(len(f.points), func(i int) bool { return f.points[i].R > r })
	if i == 0 {
		return f.points[0].Value
	}
	return f.points[i-1].Value
}

// Perturb returns the estimator's view of the function under
// estimation-accuracy ratio x (§6.2): each discrete point moves from
// ri,j to (1+x)·ri,j while keeping its value, i.e. the estimator
// believes the benefit of point j is only attainable with budget
// (1+x)·ri,j. Negative x (response times under-estimated) shifts the
// points earlier — the probability of success within a given budget is
// over-estimated; positive x the reverse. x must be > −1.
func (f *Function) Perturb(x float64) (*Function, error) {
	if x <= -1 || math.IsNaN(x) || math.IsInf(x, 0) {
		return nil, fmt.Errorf("benefit: invalid accuracy ratio %g", x)
	}
	pts := make([]Point, 0, len(f.points)-1)
	prev := rtime.Duration(0)
	for _, p := range f.points[1:] {
		r := rtime.Duration(math.Round((1 + x) * float64(p.R)))
		if r <= prev { // keep strict monotonicity after rounding
			r = prev + 1
		}
		prev = r
		pts = append(pts, Point{R: r, Value: p.Value})
	}
	return New(f.points[0].Value, pts...)
}

// SampleResponse treats the function's values as the CDF of the server
// response time (valid only when all values lie in [0,1] and the local
// value is the probability of "free" success, normally 0). It draws a
// response time distributed according to that CDF: with probability
// 1 − Max() the result never arrives in useful time and ok is false.
// Within a step interval the sample is uniform, which makes sampled
// responses agree with the CDF at every discrete point.
func (f *Function) SampleResponse(rng *stats.RNG) (resp rtime.Duration, ok bool) {
	u := rng.Float64()
	pts := f.points
	if u >= pts[len(pts)-1].Value {
		return 0, false
	}
	// Find the first point whose cumulative probability exceeds u.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Value > u })
	if i == 0 {
		// u below the local point's probability: immediate success.
		return 0, true
	}
	lo, hi := pts[i-1].R, pts[i].R
	if hi <= lo {
		return hi, true
	}
	return lo + rtime.Duration(rng.Int64N(int64(hi-lo))) + 1, true
}

// ValidProbability reports whether the function can act as a CDF:
// every value within [0, 1].
func (f *Function) ValidProbability() bool {
	for _, p := range f.points {
		if p.Value < 0 || p.Value > 1 {
			return false
		}
	}
	return true
}

// String renders the points compactly, e.g. "G(0)=22.5 G(195.3ms)=30.6 …".
func (f *Function) String() string {
	s := ""
	for i, p := range f.points {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("G(%v)=%.4g", p.R, p.Value)
	}
	return s
}

// FromResponseSamples builds a probability-valued benefit function by
// statistical analysis of measured response times (§3.2's "statistical
// analysis and measurement"): point j is the qj-quantile of the samples
// with value qj. Quantiles must be strictly increasing in (0, 1].
// localProb is the probability assigned to local execution (usually 0).
func FromResponseSamples(samples []rtime.Duration, quantiles []float64, localProb float64) (*Function, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("benefit: no response samples")
	}
	if len(quantiles) == 0 {
		return nil, fmt.Errorf("benefit: no quantiles")
	}
	xs := make([]float64, len(samples))
	for i, s := range samples {
		if s < 0 {
			return nil, fmt.Errorf("benefit: negative response sample %v", s)
		}
		xs[i] = float64(s)
	}
	ecdf := stats.NewECDF(xs)
	pts := make([]Point, 0, len(quantiles))
	prevQ := localProb
	prevR := rtime.Duration(0)
	for i, q := range quantiles {
		if q <= 0 || q > 1 {
			return nil, fmt.Errorf("benefit: quantile %g out of (0,1]", q)
		}
		if q <= prevQ {
			return nil, fmt.Errorf("benefit: quantile %d (%g) not increasing", i, q)
		}
		prevQ = q
		r := rtime.Duration(ecdf.Quantile(q))
		if r <= prevR {
			r = prevR + 1
		}
		prevR = r
		pts = append(pts, Point{R: r, Value: q})
	}
	return New(localProb, pts...)
}

// ApplyToTask writes the function's offload points into the task's
// levels (replacing them), keeping any per-level WCET overrides is not
// possible since the level set changes; tasks that need overrides
// should be built directly.
func (f *Function) ApplyToTask(t *task.Task) {
	t.LocalBenefit = f.Local()
	t.Levels = t.Levels[:0]
	for _, p := range f.points[1:] {
		t.Levels = append(t.Levels, task.Level{Response: p.R, Benefit: p.Value})
	}
}
