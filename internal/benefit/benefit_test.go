package benefit

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

func ms(v float64) rtime.Duration { return rtime.FromMillisF(v) }

func sampleFn(t *testing.T) *Function {
	t.Helper()
	f, err := New(22.5,
		Point{R: ms(195), Value: 30.6},
		Point{R: ms(207), Value: 33.3},
		Point{R: ms(222), Value: 36.6},
		Point{R: ms(236), Value: 99},
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(math.NaN()); err == nil {
		t.Error("NaN local accepted")
	}
	if _, err := New(1, Point{R: 0, Value: 2}); err == nil {
		t.Error("zero response point accepted")
	}
	if _, err := New(1, Point{R: 10, Value: 2}, Point{R: 10, Value: 3}); err == nil {
		t.Error("duplicate response accepted")
	}
	if _, err := New(5, Point{R: 10, Value: 4}); err == nil {
		t.Error("value below local accepted")
	}
	if _, err := New(1, Point{R: 10, Value: 3}, Point{R: 20, Value: 2}); err == nil {
		t.Error("decreasing value accepted")
	}
	if _, err := New(1, Point{R: 10, Value: math.NaN()}); err == nil {
		t.Error("NaN point accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid input")
		}
	}()
	MustNew(5, Point{R: 1, Value: 0})
}

func TestAccessors(t *testing.T) {
	f := sampleFn(t)
	if f.Q() != 5 {
		t.Errorf("Q = %d, want 5", f.Q())
	}
	if f.Local() != 22.5 {
		t.Errorf("Local = %g", f.Local())
	}
	if f.Max() != 99 {
		t.Errorf("Max = %g", f.Max())
	}
	if n := len(f.OffloadPoints()); n != 4 {
		t.Errorf("OffloadPoints = %d", n)
	}
	// Points returns a copy.
	pts := f.Points()
	pts[0].Value = -1
	if f.Local() != 22.5 {
		t.Error("Points() aliases internal state")
	}
}

func TestAt(t *testing.T) {
	f := sampleFn(t)
	cases := []struct {
		r    rtime.Duration
		want float64
	}{
		{-ms(5), 22.5},
		{0, 22.5},
		{ms(194), 22.5},
		{ms(195), 30.6},
		{ms(200), 30.6},
		{ms(207), 33.3},
		{ms(236), 99},
		{ms(1000), 99},
	}
	for _, c := range cases {
		if got := f.At(c.r); got != c.want {
			t.Errorf("At(%v) = %g, want %g", c.r, got, c.want)
		}
	}
}

func TestAtMonotoneProperty(t *testing.T) {
	f := sampleFn(t)
	check := func(a, b int32) bool {
		x, y := rtime.Duration(a), rtime.Duration(b)
		if x > y {
			x, y = y, x
		}
		return f.At(x) <= f.At(y)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestFromTaskRoundTrip(t *testing.T) {
	tk := &task.Task{
		ID: 1, Period: ms(100), Deadline: ms(100), LocalWCET: ms(10),
		Setup: ms(2), Compensation: ms(10), LocalBenefit: 3,
		Levels: []task.Level{
			{Response: ms(20), Benefit: 5},
			{Response: ms(40), Benefit: 8},
		},
	}
	f := FromTask(tk)
	if f.Q() != 3 || f.Local() != 3 || f.At(ms(20)) != 5 || f.At(ms(40)) != 8 {
		t.Fatalf("FromTask wrong: %v", f)
	}
	tk2 := &task.Task{ID: 2, Period: ms(100), Deadline: ms(100), LocalWCET: ms(10),
		Setup: ms(2), Compensation: ms(10)}
	f.ApplyToTask(tk2)
	if tk2.LocalBenefit != 3 || len(tk2.Levels) != 2 || tk2.Levels[1].Benefit != 8 {
		t.Fatalf("ApplyToTask wrong: %+v", tk2)
	}
	if err := tk2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPerturb(t *testing.T) {
	f := sampleFn(t)
	g, err := f.Perturb(0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Point at 195ms moves to 234ms; value unchanged.
	if got := g.At(ms(233)); got != 22.5 {
		t.Errorf("perturbed At(233ms) = %g, want local 22.5", got)
	}
	if got := g.At(ms(234)); got != 30.6 {
		t.Errorf("perturbed At(234ms) = %g, want 30.6", got)
	}
	// Negative x shifts earlier.
	h, err := f.Perturb(-0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.At(ms(156)); got != 30.6 {
		t.Errorf("perturbed At(156ms) = %g, want 30.6", got)
	}
	// x = 0 must be the identity on points.
	id, err := f.Perturb(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range f.Points() {
		if id.Points()[i] != p {
			t.Errorf("Perturb(0) changed point %d", i)
		}
	}
}

func TestPerturbInvalid(t *testing.T) {
	f := sampleFn(t)
	for _, x := range []float64{-1, -1.5, math.NaN(), math.Inf(1)} {
		if _, err := f.Perturb(x); err == nil {
			t.Errorf("Perturb(%g) accepted", x)
		}
	}
}

func TestPerturbKeepsMonotonicity(t *testing.T) {
	// Very negative x crushes points together; strictness must survive.
	f := MustNew(0,
		Point{R: 100, Value: 0.1},
		Point{R: 101, Value: 0.2},
		Point{R: 102, Value: 0.3},
	)
	g, err := f.Perturb(-0.99)
	if err != nil {
		t.Fatal(err)
	}
	pts := g.OffloadPoints()
	for i := 1; i < len(pts); i++ {
		if pts[i].R <= pts[i-1].R {
			t.Fatalf("points not strictly increasing after Perturb: %v", pts)
		}
	}
}

func TestPerturbProperty(t *testing.T) {
	f := sampleFn(t)
	check := func(xRaw int16) bool {
		x := float64(xRaw%80) / 100 // x in (−0.8, 0.8)
		g, err := f.Perturb(x)
		if err != nil {
			return false
		}
		// Same number of points, same values, scaled responses.
		fp, gp := f.Points(), g.Points()
		if len(fp) != len(gp) {
			return false
		}
		for i := range fp {
			if gp[i].Value != fp[i].Value {
				return false
			}
			want := math.Round((1 + x) * float64(fp[i].R))
			if i > 0 && math.Abs(float64(gp[i].R)-want) > float64(len(fp)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestValidProbability(t *testing.T) {
	p := MustNew(0, Point{R: 10, Value: 0.4}, Point{R: 20, Value: 1})
	if !p.ValidProbability() {
		t.Error("valid CDF rejected")
	}
	if sampleFn(t).ValidProbability() {
		t.Error("PSNR function accepted as probability")
	}
}

func TestSampleResponseMatchesCDF(t *testing.T) {
	f := MustNew(0,
		Point{R: ms(100), Value: 0.3},
		Point{R: ms(150), Value: 0.6},
		Point{R: ms(200), Value: 0.9},
	)
	rng := stats.NewRNG(42)
	n := 200000
	var fail int
	within := map[rtime.Duration]int{ms(100): 0, ms(150): 0, ms(200): 0}
	for i := 0; i < n; i++ {
		resp, ok := f.SampleResponse(rng)
		if !ok {
			fail++
			continue
		}
		for r := range within {
			if resp <= r {
				within[r]++
			}
		}
	}
	if frac := float64(fail) / float64(n); math.Abs(frac-0.1) > 0.01 {
		t.Errorf("no-result fraction = %g, want ≈0.1", frac)
	}
	for r, want := range map[rtime.Duration]float64{ms(100): 0.3, ms(150): 0.6, ms(200): 0.9} {
		got := float64(within[r]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P(resp ≤ %v) = %g, want ≈%g", r, got, want)
		}
	}
}

func TestSampleResponseLocalProbability(t *testing.T) {
	// Non-zero local probability: that mass arrives instantly.
	f := MustNew(0.5, Point{R: ms(10), Value: 1})
	rng := stats.NewRNG(7)
	instant := 0
	for i := 0; i < 100000; i++ {
		resp, ok := f.SampleResponse(rng)
		if !ok {
			t.Fatal("CDF reaching 1 must always produce a result")
		}
		if resp == 0 {
			instant++
		}
		if resp > ms(10) {
			t.Fatalf("sample %v beyond last point", resp)
		}
	}
	if frac := float64(instant) / 100000; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("instant fraction = %g, want ≈0.5", frac)
	}
}

func TestFromResponseSamples(t *testing.T) {
	rng := stats.NewRNG(9)
	samples := make([]rtime.Duration, 5000)
	for i := range samples {
		samples[i] = rtime.Duration(rng.UniformInt(100_000, 200_000)) // 100–200 ms
	}
	f, err := FromResponseSamples(samples, []float64{0.1, 0.5, 0.9, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Q() != 5 {
		t.Fatalf("Q = %d", f.Q())
	}
	pts := f.OffloadPoints()
	// Quantiles of U[100,200]ms.
	wants := []float64{110, 150, 190, 200}
	for i, p := range pts {
		if math.Abs(p.R.Millis()-wants[i]) > 5 {
			t.Errorf("point %d at %v, want ≈%gms", i, p.R, wants[i])
		}
	}
	if !f.ValidProbability() {
		t.Error("sample-derived function is not a valid CDF")
	}
}

func TestFromResponseSamplesErrors(t *testing.T) {
	good := []rtime.Duration{1, 2, 3}
	cases := []struct {
		samples   []rtime.Duration
		quantiles []float64
	}{
		{nil, []float64{0.5}},
		{good, nil},
		{good, []float64{0}},
		{good, []float64{1.5}},
		{good, []float64{0.5, 0.5}},
		{good, []float64{0.9, 0.1}},
		{[]rtime.Duration{-1}, []float64{0.5}},
	}
	for i, c := range cases {
		if _, err := FromResponseSamples(c.samples, c.quantiles, 0); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// localProb ≥ first quantile is also invalid.
	if _, err := FromResponseSamples(good, []float64{0.5}, 0.5); err == nil {
		t.Error("localProb == first quantile accepted")
	}
}

func TestString(t *testing.T) {
	f := MustNew(1, Point{R: ms(10), Value: 2})
	s := f.String()
	if !strings.Contains(s, "G(0s)=1") || !strings.Contains(s, "G(10ms)=2") {
		t.Errorf("String() = %q", s)
	}
}
