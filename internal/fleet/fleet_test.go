package fleet

import (
	"math/big"
	"strings"
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/task"
)

func ms(n int64) rtime.Duration { return rtime.FromMillis(n) }

func offloadTask(id int) *task.Task {
	return &task.Task{
		ID:           id,
		Period:       ms(100),
		Deadline:     ms(100),
		LocalWCET:    ms(20),
		Setup:        ms(2),
		Compensation: ms(10),
		LocalBenefit: 1,
		Levels: []task.Level{
			{Response: ms(10), Benefit: 4},
			{Response: ms(30), Benefit: 6},
		},
	}
}

func TestValidate(t *testing.T) {
	good := Fleet{
		Servers: []Server{
			{ID: "edge", ScaleNum: 1, ScaleDen: 2, Reliability: 0.9, CapNum: 3, CapDen: 4, Group: "radio"},
			{ID: "cloud", Extra: ms(5), WeightNum: 2, WeightDen: 1, Group: "radio"},
		},
		Groups: []Group{{ID: "radio", CapNum: 1, CapDen: 1}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid fleet rejected: %v", err)
	}
	if (Fleet{}).Validate() != nil {
		t.Fatal("empty fleet must validate")
	}
	bad := []Fleet{
		{Servers: []Server{{ID: ""}, {ID: "b"}}},                                                                          // empty ID in multi-server fleet
		{Servers: []Server{{ID: "a"}, {ID: "a"}}},                                                                         // duplicate ID
		{Servers: []Server{{ID: "a", ScaleNum: -1, ScaleDen: 2}}},                                                         // negative scale
		{Servers: []Server{{ID: "a", ScaleNum: 1}}},                                                                       // zero denominator with set numerator
		{Servers: []Server{{ID: "a", Extra: -1}}},                                                                         // negative extra
		{Servers: []Server{{ID: "a", Reliability: 1.5}}},                                                                  // reliability > 1
		{Servers: []Server{{ID: "a", Reliability: -0.1}}},                                                                 // reliability < 0
		{Servers: []Server{{ID: "a", CapNum: -1, CapDen: 2}}},                                                             // negative capacity
		{Servers: []Server{{ID: "a", CapNum: 1}}},                                                                         // capacity numerator without denominator
		{Servers: []Server{{ID: "a", WeightNum: -1, WeightDen: 1}}},                                                       // negative weight
		{Servers: []Server{{ID: "a", Group: "nope"}}},                                                                     // unknown group
		{Servers: []Server{{ID: "a"}}, Groups: []Group{{ID: ""}}},                                                         // empty group ID
		{Servers: []Server{{ID: "a"}}, Groups: []Group{{ID: "g"}}},                                                        // group without capacity
		{Servers: []Server{{ID: "a"}}, Groups: []Group{{ID: "g", CapNum: 1, CapDen: 1}, {ID: "g", CapNum: 1, CapDen: 1}}}, // duplicate group
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad fleet %d accepted", i)
		}
	}
}

func TestScaleAndBenefit(t *testing.T) {
	neutral := Server{ID: "a"}
	if !neutral.Neutral() {
		t.Fatal("zero-value server must be neutral")
	}
	if r, err := neutral.Scale(ms(7)); err != nil || r != ms(7) {
		t.Fatalf("neutral scale: got %v, %v", r, err)
	}
	if b := neutral.Benefit(1, 5); b != 5 {
		t.Fatalf("neutral benefit: got %v", b)
	}

	half := Server{ID: "b", ScaleNum: 1, ScaleDen: 2, Extra: ms(1)}
	if half.Neutral() {
		t.Fatal("scaled server must not be neutral")
	}
	// ceil(7ms/2) + 1ms = 3.5ms→3500µs + 1000µs
	if r, err := half.Scale(ms(7)); err != nil || r != rtime.FromMicros(4500) {
		t.Fatalf("half scale: got %v, %v", r, err)
	}
	// Rounding up: ceil(3µs·1/2) = 2µs.
	if r, err := half.Scale(3); err != nil || r != 2+ms(1) {
		t.Fatalf("ceil scale: got %v, %v", r, err)
	}

	unrel := Server{ID: "c", Reliability: 0.5}
	if b := unrel.Benefit(1, 5); b != 3 {
		t.Fatalf("discounted benefit: got %v", b)
	}

	huge := Server{ID: "d", ScaleNum: 1 << 40, ScaleDen: 1}
	if _, err := huge.Scale(rtime.Duration(1 << 40)); err == nil {
		t.Fatal("overflowing scale must error")
	}
	shrink := Server{ID: "e", ScaleNum: 1, ScaleDen: 1000, Extra: 0}
	if _, err := shrink.Scale(0); err == nil {
		t.Fatal("non-positive scaled budget must error")
	}
}

func TestExpandTaskNeutralSingleServer(t *testing.T) {
	f := Fleet{Servers: []Server{{ID: "solo"}}}
	orig := offloadTask(1)
	got, err := f.ExpandTask(orig)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Levels) != 2 {
		t.Fatalf("want 2 points, got %d", len(got.Levels))
	}
	for j, lv := range got.Levels {
		if lv.Response != orig.Levels[j].Response || lv.Benefit != orig.Levels[j].Benefit {
			t.Fatalf("point %d not verbatim: %+v vs %+v", j, lv, orig.Levels[j])
		}
		if lv.ServerID != "solo" {
			t.Fatalf("point %d not routed: %q", j, lv.ServerID)
		}
	}
	if orig.Levels[0].ServerID != "" {
		t.Fatal("input task mutated")
	}
}

func TestExpandTaskCrossProduct(t *testing.T) {
	f := Fleet{Servers: []Server{
		{ID: "edge"},
		{ID: "cloud", ScaleNum: 2, ScaleDen: 1, Reliability: 0.5},
	}}
	got, err := f.ExpandTask(offloadTask(1))
	if err != nil {
		t.Fatal(err)
	}
	// edge: 10ms/4, 30ms/6 — cloud: 20ms/2.5, 60ms/3.5.
	want := []struct {
		r   rtime.Duration
		b   float64
		sid string
	}{
		{ms(10), 4, "edge"},
		{ms(20), 2.5, "cloud"},
		{ms(30), 6, "edge"},
		{ms(60), 3.5, "cloud"},
	}
	if len(got.Levels) != len(want) {
		t.Fatalf("want %d points, got %d: %+v", len(want), len(got.Levels), got.Levels)
	}
	for j, w := range want {
		lv := got.Levels[j]
		if lv.Response != w.r || lv.Benefit != w.b || lv.ServerID != w.sid {
			t.Fatalf("point %d: got (%v, %v, %q), want (%v, %v, %q)",
				j, lv.Response, lv.Benefit, lv.ServerID, w.r, w.b, w.sid)
		}
	}
	// Budgets must be strictly increasing even though benefits are not
	// monotone (6 then 3.5): the raw per-server values are kept.
	for j := 1; j < len(got.Levels); j++ {
		if got.Levels[j].Response <= got.Levels[j-1].Response {
			t.Fatalf("budgets not strictly increasing at %d", j)
		}
	}
}

func TestExpandTaskDropsAndDedups(t *testing.T) {
	// A 10× slower server pushes both budgets past the 100ms deadline.
	f := Fleet{Servers: []Server{
		{ID: "fast"},
		{ID: "slow", ScaleNum: 10, ScaleDen: 1},
	}}
	got, err := f.ExpandTask(offloadTask(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, lv := range got.Levels {
		if lv.ServerID == "slow" && lv.Response < ms(100) {
			continue
		}
		if lv.ServerID == "slow" {
			t.Fatalf("over-deadline point kept: %+v", lv)
		}
	}
	// Two identical servers produce tied budgets; dedup keeps one point
	// per budget (the higher-benefit one).
	f2 := Fleet{Servers: []Server{{ID: "a", Reliability: 0.5}, {ID: "b"}}}
	got2, err := f2.ExpandTask(offloadTask(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Levels) != 2 {
		t.Fatalf("dedup: want 2 points, got %d: %+v", len(got2.Levels), got2.Levels)
	}
	for _, lv := range got2.Levels {
		if lv.ServerID != "b" {
			t.Fatalf("dedup kept the discounted twin: %+v", lv)
		}
	}
	// Local-only tasks expand to a plain clone.
	local := &task.Task{ID: 9, Period: ms(50), Deadline: ms(50), LocalWCET: ms(5), LocalBenefit: 1}
	gl, err := f.ExpandTask(local)
	if err != nil || len(gl.Levels) != 0 || gl.ID != 9 {
		t.Fatalf("local clone: %+v, %v", gl, err)
	}
}

func TestExpandTaskServerWCRT(t *testing.T) {
	tk := offloadTask(1)
	tk.ServerWCRT = ms(30)
	tk.PostProcess = ms(1)

	// Single non-neutral server: the bound scales with the budgets.
	one := Fleet{Servers: []Server{{ID: "a", ScaleNum: 2, ScaleDen: 1}}}
	got, err := one.ExpandTask(tk)
	if err != nil {
		t.Fatal(err)
	}
	if got.ServerWCRT != ms(60) {
		t.Fatalf("scaled WCRT: got %v", got.ServerWCRT)
	}

	// Multi-server fleet: the single-server bound says nothing about
	// the others — dropped (conservative).
	multi := Fleet{Servers: []Server{{ID: "a"}, {ID: "b"}}}
	got, err = multi.ExpandTask(tk)
	if err != nil {
		t.Fatal(err)
	}
	if got.ServerWCRT != 0 {
		t.Fatalf("multi-server WCRT not cleared: %v", got.ServerWCRT)
	}
}

func TestExpandSet(t *testing.T) {
	f := Fleet{Servers: []Server{{ID: "a"}, {ID: "b", Extra: ms(1)}}}
	set := task.Set{offloadTask(1), offloadTask(2)}
	out, err := f.ExpandSet(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out[0].Levels) != 4 {
		t.Fatalf("unexpected expansion: %d tasks, %d points", len(out), len(out[0].Levels))
	}
	bad := Fleet{Servers: []Server{{ID: "x", ScaleNum: 1 << 40, ScaleDen: 1}}}
	huge := offloadTask(3)
	huge.Levels[0].Response = rtime.Duration(1 << 40)
	huge.Deadline = rtime.Duration(1 << 62)
	huge.Period = rtime.Duration(1 << 62)
	if _, err := bad.ExpandSet(task.Set{huge}); err == nil {
		t.Fatal("overflowing expansion must error")
	}
}

func TestAccumulateAndPools(t *testing.T) {
	f := Fleet{
		Servers: []Server{
			{ID: "a", CapNum: 1, CapDen: 4, Group: "g", WeightNum: 2, WeightDen: 1},
			{ID: "b", Group: "g"},
		},
		Groups: []Group{{ID: "g", CapNum: 1, CapDen: 2}},
	}
	us := []Usage{
		{Server: "a", Occupancy: big.NewRat(1, 8), Weight: big.NewRat(1, 10)},
		{Server: "b", Occupancy: big.NewRat(1, 8), Weight: big.NewRat(1, 10)},
		{Server: "ghost", Occupancy: big.NewRat(1, 2), Weight: big.NewRat(1, 2)},
	}
	loads := f.Accumulate(us)
	if len(loads) != 3 {
		t.Fatalf("want 3 pools, got %d", len(loads))
	}
	a, b, g := loads[0], loads[1], loads[2]
	if a.Pool != "a" || !a.Server || a.Tasks != 1 || a.Occupancy.Cmp(big.NewRat(1, 8)) != 0 {
		t.Fatalf("pool a: %+v", a)
	}
	if a.Over() {
		t.Fatal("pool a within capacity")
	}
	if h := a.Headroom(); h.Cmp(big.NewRat(1, 8)) != 0 {
		t.Fatalf("pool a headroom: %v", h)
	}
	if b.Capacity != nil || b.Headroom() != nil || b.Over() {
		t.Fatalf("pool b must be unbounded: %+v", b)
	}
	// Group: 2·(1/8) + 1·(1/8) = 3/8 ≤ 1/2.
	if g.Pool != "g" || g.Server || g.Occupancy.Cmp(big.NewRat(3, 8)) != 0 || g.Tasks != 2 {
		t.Fatalf("pool g: %+v", g)
	}
	if g.Theorem3.Cmp(big.NewRat(1, 5)) != 0 {
		t.Fatalf("pool g theorem3: %v", g.Theorem3)
	}
	if FirstOver(loads) != -1 {
		t.Fatal("no pool is over")
	}
	loads = f.Accumulate(append(us, Usage{Server: "a", Occupancy: big.NewRat(1, 4), Weight: new(big.Rat)}))
	if FirstOver(loads) != 0 {
		t.Fatalf("pool a must be over: %d", FirstOver(loads))
	}
}

func TestServerIndex(t *testing.T) {
	f := Fleet{Servers: []Server{{ID: "a"}, {ID: "b"}}}
	if f.ServerIndex("b") != 1 || f.ServerIndex("a") != 0 {
		t.Fatal("named lookup failed")
	}
	if f.ServerIndex("") != -1 || f.ServerIndex("zzz") != -1 {
		t.Fatal("unknown lookup must be -1")
	}
	solo := Fleet{Servers: []Server{{ID: "only"}}}
	if solo.ServerIndex("") != 0 {
		t.Fatal("empty ID must resolve to the sole server")
	}
}

func TestParseSpec(t *testing.T) {
	f, err := ParseSpec("edge:scale=1/2,extra=2ms,rel=0.95,cap=3/4,weight=2,group=radio; cloud:extra=500us ;@radio:cap=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Servers) != 2 || len(f.Groups) != 1 {
		t.Fatalf("parsed shape: %+v", f)
	}
	e := f.Servers[0]
	if e.ID != "edge" || e.ScaleNum != 1 || e.ScaleDen != 2 || e.Extra != ms(2) ||
		e.Reliability != 0.95 || e.CapNum != 3 || e.CapDen != 4 ||
		e.WeightNum != 2 || e.WeightDen != 1 || e.Group != "radio" {
		t.Fatalf("edge: %+v", e)
	}
	if f.Servers[1].Extra != rtime.FromMicros(500) {
		t.Fatalf("cloud extra: %v", f.Servers[1].Extra)
	}
	if f.Groups[0].CapNum != 1 || f.Groups[0].CapDen != 1 {
		t.Fatalf("group: %+v", f.Groups[0])
	}

	for _, bad := range []string{
		"edge:bogus=1",        // unknown server option
		"@g:cap=1;a:group=g2", // unknown group reference
		"edge:scale=x",        // bad rational
		"edge:scale=1/x",      // bad rational denominator
		"edge:extra=5",        // missing duration unit
		"edge:extra=xms",      // bad duration number
		"edge:rel=abc",        // bad float
		"@g:cap=1,foo=2",      // unknown group option
		"@g:cap=z",            // bad group capacity
		"a;a",                 // duplicate server
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	if f, err := ParseSpec("solo"); err != nil || len(f.Servers) != 1 || !f.Servers[0].Neutral() {
		t.Fatalf("bare name spec: %+v, %v", f, err)
	}
	if _, err := ParseSpec(" ; "); err != nil {
		t.Fatalf("blank spec must parse to an empty fleet: %v", err)
	}
	if _, err := ParseSpec("edge:extra=1us"); err != nil {
		t.Fatalf("us suffix: %v", err)
	}
	if _, err := ParseSpec("edge:extra=1s"); err == nil || !strings.Contains(err.Error(), "duration") {
		t.Fatal("unsupported unit must error")
	}
}
