package fleet

import (
	"fmt"
	"strconv"
	"strings"

	"rtoffload/internal/rtime"
)

// ParseSpec parses the compact command-line fleet syntax used by the
// -fleet flags:
//
//	name[:key=value,...] ; name[:...] ; @group:cap=N[/D]
//
// Server entries are separated by ';'. Each names a server and lists
// comma-separated options: scale=N[/D] (response multiplier),
// extra=DURms|DURus (additive latency), rel=F (reliability in (0,1]),
// cap=N[/D] (occupancy capacity), weight=N[/D] (group coupling
// weight), group=NAME. Entries starting with '@' declare a capacity
// group instead and take only cap=N[/D].
//
// Example: "edge:scale=1/2,rel=0.95,cap=3/4,group=radio;cloud:extra=5ms;@radio:cap=1"
func ParseSpec(spec string) (Fleet, error) {
	var f Fleet
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, opts, _ := strings.Cut(entry, ":")
		name = strings.TrimSpace(name)
		if strings.HasPrefix(name, "@") {
			g := Group{ID: strings.TrimPrefix(name, "@")}
			if err := parseGroupOpts(&g, opts); err != nil {
				return Fleet{}, err
			}
			f.Groups = append(f.Groups, g)
			continue
		}
		s := Server{ID: name}
		if err := parseServerOpts(&s, opts); err != nil {
			return Fleet{}, err
		}
		f.Servers = append(f.Servers, s)
	}
	if err := f.Validate(); err != nil {
		return Fleet{}, err
	}
	return f, nil
}

func parseGroupOpts(g *Group, opts string) error {
	for _, kv := range splitOpts(opts) {
		k, v, _ := strings.Cut(kv, "=")
		switch k {
		case "cap":
			n, d, err := parseRat(v)
			if err != nil {
				return fmt.Errorf("fleet spec: group %q: %w", g.ID, err)
			}
			g.CapNum, g.CapDen = n, d
		default:
			return fmt.Errorf("fleet spec: group %q: unknown option %q", g.ID, k)
		}
	}
	return nil
}

func parseServerOpts(s *Server, opts string) error {
	for _, kv := range splitOpts(opts) {
		k, v, _ := strings.Cut(kv, "=")
		var err error
		switch k {
		case "scale":
			s.ScaleNum, s.ScaleDen, err = parseRat(v)
		case "extra":
			s.Extra, err = parseDuration(v)
		case "rel":
			s.Reliability, err = strconv.ParseFloat(v, 64)
		case "cap":
			s.CapNum, s.CapDen, err = parseRat(v)
		case "weight":
			s.WeightNum, s.WeightDen, err = parseRat(v)
		case "group":
			s.Group = v
		default:
			err = fmt.Errorf("unknown option %q", k)
		}
		if err != nil {
			return fmt.Errorf("fleet spec: server %q: %w", s.ID, err)
		}
	}
	return nil
}

func splitOpts(opts string) []string {
	opts = strings.TrimSpace(opts)
	if opts == "" {
		return nil
	}
	parts := strings.Split(opts, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// parseRat parses "N" or "N/D" into a rational pair.
func parseRat(v string) (num, den int64, err error) {
	ns, ds, ok := strings.Cut(v, "/")
	if num, err = strconv.ParseInt(ns, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad rational %q", v)
	}
	den = 1
	if ok {
		if den, err = strconv.ParseInt(ds, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("bad rational %q", v)
		}
	}
	return num, den, nil
}

// parseDuration parses "Nms" or "Nus" into a Duration.
func parseDuration(v string) (rtime.Duration, error) {
	switch {
	case strings.HasSuffix(v, "ms"):
		n, err := strconv.ParseInt(strings.TrimSuffix(v, "ms"), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad duration %q", v)
		}
		return rtime.FromMillis(n), nil
	case strings.HasSuffix(v, "us"):
		n, err := strconv.ParseInt(strings.TrimSuffix(v, "us"), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad duration %q", v)
		}
		return rtime.FromMicros(n), nil
	}
	return 0, fmt.Errorf("bad duration %q (use ms or us suffix)", v)
}
