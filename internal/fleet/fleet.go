// Package fleet models a fleet of timing-unreliable servers for the
// Offloading Decision Manager.
//
// The paper assumes one unreliable component; real edge deployments
// choose among many (an edge box, a cloud GPU, a peer device), each
// with its own response behaviour, reliability, and capacity. This
// package generalizes the task model's discrete offloading levels into
// (server, Ri-budget) pairs: every probed budget of a task is expanded
// into one choice point per fleet server, with the server's response
// model scaling the budget and its reliability profile discounting the
// expected benefit. The expanded points are ordinary task.Level values
// (strictly increasing budgets, ServerID routing), so the MCKP solvers
// and Theorem-3 repair in internal/core operate on them unchanged —
// the fleet layer only constructs the choice set and accounts for
// per-server capacity pools.
//
// Capacity coupling: each server may carry an occupancy capacity (a
// cap on Σ Ri/Ti over the tasks routed to it) and may belong to a
// named group whose capacity couples several servers (one shared
// knapsack dimension — e.g. servers behind one radio link). All pool
// arithmetic is exact (*big.Rat): a capacity verdict never depends on
// floating-point rounding.
//
// A Fleet with exactly one neutral server (unit scale, no extra
// latency, full reliability) expands every task verbatim, so the
// single-server decision path is preserved bit-for-bit; the
// differential tests in internal/core prove this rather than assume
// it.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"

	"rtoffload/internal/rtime"
	"rtoffload/internal/task"
)

// Server describes one fleet member's response model, reliability
// profile, and capacity coupling. The zero value of every field means
// "neutral": unit response scale, no extra latency, full reliability,
// unit coupling weight, unlimited capacity, no group.
type Server struct {
	// ID routes expanded levels through sched.Config.Servers. It must
	// be unique within a fleet and non-empty unless the fleet has a
	// single server (an empty ID then selects the default server).
	ID string `json:"id"`

	// ScaleNum/ScaleDen form the response-model multiplier: a budget
	// probed against the reference server maps to
	// ceil(r · ScaleNum/ScaleDen) + Extra on this one. Both zero means
	// unit scale.
	ScaleNum int64 `json:"scaleNum,omitempty"`
	ScaleDen int64 `json:"scaleDen,omitempty"`

	// Extra is an additive response-time term (network RTT to reach
	// this server).
	Extra rtime.Duration `json:"extra,omitempty"`

	// Reliability in (0,1] discounts the benefit above the local
	// baseline: an unreliable server returns in budget only that
	// fraction of the time, so the expected benefit of a level becomes
	// local + Reliability·(benefit − local). Zero means 1 (fully
	// reliable). The hard guarantee is unaffected — compensation
	// covers the misses — only the objective is discounted.
	Reliability float64 `json:"reliability,omitempty"`

	// CapNum/CapDen cap the server's occupancy Σ Ri/Ti over tasks
	// routed to it. CapDen zero means unlimited.
	CapNum int64 `json:"capNum,omitempty"`
	CapDen int64 `json:"capDen,omitempty"`

	// WeightNum/WeightDen scale this server's occupancy contribution
	// inside its group pool (a server on a half-rate shared link
	// counts double). Both zero means unit weight.
	WeightNum int64 `json:"weightNum,omitempty"`
	WeightDen int64 `json:"weightDen,omitempty"`

	// Group names the coupled-capacity group this server belongs to,
	// if any. The group must be declared on the Fleet.
	Group string `json:"group,omitempty"`
}

// Group couples the capacity of several servers into one shared pool:
// Σ over member servers of weight·occupancy must stay within Cap.
type Group struct {
	ID     string `json:"id"`
	CapNum int64  `json:"capNum"`
	CapDen int64  `json:"capDen"`
}

// Fleet is an ordered set of servers plus the capacity groups coupling
// them. The zero value (no servers) disables fleet expansion entirely;
// core.Decide then runs the paper's single-server path untouched.
type Fleet struct {
	Servers []Server `json:"servers"`
	Groups  []Group  `json:"groups,omitempty"`
}

// Empty reports whether the fleet has no servers (fleet expansion
// disabled).
func (f Fleet) Empty() bool { return len(f.Servers) == 0 }

// scale returns the normalized response multiplier (unit when unset).
func (s Server) scale() (num, den int64) {
	if s.ScaleNum == 0 && s.ScaleDen == 0 {
		return 1, 1
	}
	return s.ScaleNum, s.ScaleDen
}

// reliability returns the normalized reliability (1 when unset).
func (s Server) reliability() float64 {
	if s.Reliability == 0 {
		return 1
	}
	return s.Reliability
}

// Neutral reports whether the server transforms budgets and benefits
// verbatim: unit scale, no extra latency, full reliability. Expansion
// copies levels of neutral servers bit-for-bit, which is what makes
// the 1-server differential oracle exact.
func (s Server) Neutral() bool {
	num, den := s.scale()
	return num == den && s.Extra == 0 && s.reliability() == 1
}

// Cap returns the server's occupancy capacity as an exact rational, or
// nil when unlimited.
func (s Server) Cap() *big.Rat {
	if s.CapDen == 0 {
		return nil
	}
	return big.NewRat(s.CapNum, s.CapDen)
}

// CouplingWeight returns the server's group-pool weight (1 when
// unset).
func (s Server) CouplingWeight() *big.Rat {
	if s.WeightNum == 0 && s.WeightDen == 0 {
		return big.NewRat(1, 1)
	}
	return big.NewRat(s.WeightNum, s.WeightDen)
}

// Cap returns the group's shared capacity as an exact rational.
func (g Group) Cap() *big.Rat { return big.NewRat(g.CapNum, g.CapDen) }

// Scale maps a response budget probed against the reference server
// onto this server: ceil(r·ScaleNum/ScaleDen) + Extra, computed
// exactly. It returns an error when the result overflows or is not
// positive.
func (s Server) Scale(r rtime.Duration) (rtime.Duration, error) {
	num, den := s.scale()
	if num == den && s.Extra == 0 {
		return r, nil // verbatim: the neutral fast path shares no rounding
	}
	// ceil(r·num/den) with exact big.Int arithmetic; r, num, den are
	// all positive after Validate.
	p := new(big.Int).Mul(big.NewInt(int64(r)), big.NewInt(num))
	q, m := new(big.Int).QuoRem(p, big.NewInt(den), new(big.Int))
	if m.Sign() > 0 {
		q.Add(q, big.NewInt(1))
	}
	q.Add(q, big.NewInt(int64(s.Extra)))
	if !q.IsInt64() {
		return 0, fmt.Errorf("fleet: server %q: scaled budget %v overflows", s.ID, r)
	}
	out := rtime.Duration(q.Int64())
	if out <= 0 {
		return 0, fmt.Errorf("fleet: server %q: scaled budget %v not positive", s.ID, r)
	}
	return out, nil
}

// Benefit maps a level's benefit onto this server's reliability
// profile: local + Reliability·(benefit − local). A fully reliable
// server returns the benefit verbatim (bit-identical, no float
// round-trip).
func (s Server) Benefit(local, benefit float64) float64 {
	rel := s.reliability()
	if rel == 1 {
		return benefit
	}
	return local + rel*(benefit-local)
}

// Validate checks the fleet's structural invariants.
func (f Fleet) Validate() error {
	if f.Empty() {
		return nil
	}
	groups := make(map[string]bool, len(f.Groups))
	for _, g := range f.Groups {
		if g.ID == "" {
			return errors.New("fleet: group with empty ID")
		}
		if groups[g.ID] {
			return fmt.Errorf("fleet: duplicate group %q", g.ID)
		}
		groups[g.ID] = true
		if g.CapNum <= 0 || g.CapDen <= 0 {
			return fmt.Errorf("fleet: group %q: capacity must be a positive rational", g.ID)
		}
	}
	seen := make(map[string]bool, len(f.Servers))
	for i, s := range f.Servers {
		if s.ID == "" && len(f.Servers) > 1 {
			return fmt.Errorf("fleet: server %d: empty ID in a multi-server fleet", i)
		}
		if seen[s.ID] {
			return fmt.Errorf("fleet: duplicate server %q", s.ID)
		}
		seen[s.ID] = true
		num, den := s.scale()
		if num <= 0 || den <= 0 {
			return fmt.Errorf("fleet: server %q: response scale must be a positive rational", s.ID)
		}
		if s.Extra < 0 {
			return fmt.Errorf("fleet: server %q: negative extra latency", s.ID)
		}
		rel := s.reliability()
		if math.IsNaN(rel) || rel <= 0 || rel > 1 {
			return fmt.Errorf("fleet: server %q: reliability %v outside (0,1]", s.ID, s.Reliability)
		}
		if s.CapDen < 0 || (s.CapDen > 0 && s.CapNum <= 0) || (s.CapDen == 0 && s.CapNum != 0) {
			return fmt.Errorf("fleet: server %q: capacity must be a positive rational or unset", s.ID)
		}
		if wn, wd := s.WeightNum, s.WeightDen; (wn != 0 || wd != 0) && (wn <= 0 || wd <= 0) {
			return fmt.Errorf("fleet: server %q: coupling weight must be a positive rational", s.ID)
		}
		if s.Group != "" && !groups[s.Group] {
			return fmt.Errorf("fleet: server %q: unknown group %q", s.ID, s.Group)
		}
	}
	return nil
}

// ServerIndex returns the index of the server with the given ID, or
// -1. Levels left unrouted (empty ServerID) resolve to the sole server
// of a single-server fleet.
func (f Fleet) ServerIndex(id string) int {
	for i, s := range f.Servers {
		if s.ID == id {
			return i
		}
	}
	if id == "" && len(f.Servers) == 1 {
		return 0
	}
	return -1
}

// ExpandTask returns a deep copy of t whose levels span the
// (server, budget) cross product: for every probed level of t and
// every fleet server, one point with the server-scaled budget, the
// reliability-discounted benefit, and the server's ID for routing.
// Points whose scaled budget leaves no deadline slack are dropped —
// they could never be chosen (OffloadWeight rejects them) and keeping
// the set sorted requires comparable budgets. Points are stable-sorted
// by budget, so equal budgets keep (level-major, server-minor)
// generation order; the MCKP item-dominance sweep later discards
// points another server strictly beats.
//
// A task with no levels is returned as a plain clone. A single neutral
// server reproduces the original levels verbatim (plus routing IDs
// when the server is named), which the differential oracle tests rely
// on.
func (f Fleet) ExpandTask(t *task.Task) (*task.Task, error) {
	c := *t
	if len(t.Levels) == 0 {
		c.Levels = nil
		return &c, nil
	}
	points := make([]task.Level, 0, len(t.Levels)*len(f.Servers))
	for _, lv := range t.Levels {
		for _, s := range f.Servers {
			r, err := s.Scale(lv.Response)
			if err != nil {
				return nil, err
			}
			if r >= t.Deadline {
				continue // no slack for the second phase on this server
			}
			p := lv
			p.Response = r
			p.Benefit = s.Benefit(t.LocalBenefit, lv.Benefit)
			p.ServerID = s.ID
			points = append(points, p)
		}
	}
	sort.SliceStable(points, func(i, j int) bool {
		return points[i].Response < points[j].Response
	})
	// Task.Validate requires strictly increasing budgets: among points
	// tied on budget keep only the first (best generation order — the
	// lower original level, which costs no more setup, then the
	// earlier server). Ties with a worse benefit are dominated anyway.
	dedup := points[:0]
	for i, p := range points {
		if i > 0 && p.Response == dedup[len(dedup)-1].Response {
			if p.Benefit > dedup[len(dedup)-1].Benefit {
				dedup[len(dedup)-1] = p
			}
			continue
		}
		dedup = append(dedup, p)
	}
	c.Levels = dedup
	// Benefit monotonicity can break across servers (a slower server's
	// discounted point may sit after a faster one's full-benefit
	// point). The raw per-point benefits are kept: each point's value
	// belongs to the server that earns it, and inventing the envelope
	// would claim one server's benefit for a budget routed to another.
	// Expanded tasks therefore satisfy every Task.Validate rule except
	// benefit monotonicity; they stay internal to the decision layer,
	// and Decision.Assignments prunes each task to its single chosen
	// point before anything reaches the scheduler's validation.
	if len(f.Servers) == 1 {
		num, den := f.Servers[0].scale()
		if num != den || f.Servers[0].Extra != 0 {
			// The probed server bound lives on the reference timeline;
			// rescale it with the budgets so §3 guarantees survive.
			if c.ServerWCRT > 0 {
				r, err := f.Servers[0].Scale(c.ServerWCRT)
				if err != nil {
					return nil, err
				}
				c.ServerWCRT = r
			}
		}
	} else if c.ServerWCRT > 0 {
		// A pessimistic bound probed against one reference server says
		// nothing about the rest of the fleet: drop it (conservative —
		// the analysis budgets full compensation). DESIGN.md §5.9
		// records this approximation boundary.
		c.ServerWCRT = 0
	}
	return &c, nil
}

// ExpandSet expands every task of the set against the fleet. The
// input set is not modified.
func (f Fleet) ExpandSet(set task.Set) (task.Set, error) {
	out := make(task.Set, len(set))
	for i, t := range set {
		e, err := f.ExpandTask(t)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// Usage is one offloaded choice's exact contribution to its server's
// pools: the occupancy Ri/Ti it consumes and, for bookkeeping, its
// Theorem-3 weight.
type Usage struct {
	Server    string
	Occupancy *big.Rat
	Weight    *big.Rat
}

// Load is one capacity pool's account after accumulation: either a
// server pool (Server true, Pool the server ID) or a group pool
// (Server false, Pool the group ID). Capacity is nil for unbounded
// pools. Occupancy sums weighted member contributions for group
// pools and raw Ri/Ti for server pools.
type Load struct {
	Pool      string
	Server    bool
	Tasks     int
	Occupancy *big.Rat
	Theorem3  *big.Rat
	Capacity  *big.Rat
}

// Over reports whether the pool exceeds its capacity.
func (l Load) Over() bool {
	return l.Capacity != nil && l.Occupancy.Cmp(l.Capacity) > 0
}

// Headroom returns Capacity − Occupancy, or nil for unbounded pools.
func (l Load) Headroom() *big.Rat {
	if l.Capacity == nil {
		return nil
	}
	return new(big.Rat).Sub(l.Capacity, l.Occupancy)
}

// Accumulate folds per-choice usages into the fleet's capacity pools:
// one Load per server (fleet order) followed by one per group (fleet
// order). Usages routed to unknown servers are ignored — the caller
// validates routing separately.
func (f Fleet) Accumulate(us []Usage) []Load {
	loads := make([]Load, 0, len(f.Servers)+len(f.Groups))
	gidx := make(map[string]int, len(f.Groups))
	for _, s := range f.Servers {
		loads = append(loads, Load{
			Pool: s.ID, Server: true,
			Occupancy: new(big.Rat), Theorem3: new(big.Rat),
			Capacity: s.Cap(),
		})
	}
	for _, g := range f.Groups {
		gidx[g.ID] = len(loads)
		loads = append(loads, Load{
			Pool:      g.ID,
			Occupancy: new(big.Rat), Theorem3: new(big.Rat),
			Capacity: g.Cap(),
		})
	}
	for _, u := range us {
		si := f.ServerIndex(u.Server)
		if si < 0 {
			continue
		}
		l := &loads[si]
		l.Tasks++
		l.Occupancy.Add(l.Occupancy, u.Occupancy)
		l.Theorem3.Add(l.Theorem3, u.Weight)
		if g := f.Servers[si].Group; g != "" {
			gl := &loads[gidx[g]]
			gl.Tasks++
			gl.Occupancy.Add(gl.Occupancy, new(big.Rat).Mul(f.Servers[si].CouplingWeight(), u.Occupancy))
			gl.Theorem3.Add(gl.Theorem3, u.Weight)
		}
	}
	return loads
}

// FirstOver returns the index of the first over-capacity pool, or -1.
func FirstOver(loads []Load) int {
	for i, l := range loads {
		if l.Over() {
			return i
		}
	}
	return -1
}
