package mckp

import (
	"fmt"
	"math"
)

// DefaultDPResolution is the number of capacity grid cells used by
// SolveDP when the caller passes 0. At 10⁻⁴ of the capacity per cell,
// quantization loss is far below the profit differences that matter in
// the offloading instances.
const DefaultDPResolution = 10000

// dpArena holds the quantized-DP scratch tables so repeated solves
// (the persistent Solver's SolveDP, admission churn) stop allocating
// the O(n·resolution) grid on every call. The zero value is ready to
// use; buffers grow on demand and are reused afterwards.
type dpArena struct {
	prev, cur []float64
	choice    []int16 // flattened n × (resolution+1) table
	qw        []int   // flattened per-class quantized weights
	qwOff     []int   // qwOff[i] = start of class i in qw; len n+1
	sel       []int   // reconstructed choice vector
}

// SolveDP solves the instance exactly on a quantized capacity grid
// using the pseudo-polynomial dynamic program for MCKP (Dudzinski &
// Walukiewicz 1987). The real-valued weights are scaled to
// resolution grid cells and rounded *up*, so any returned solution is
// feasible for the true instance; the quantization can only cost
// profit, never feasibility. Complexity O(Σ|classes| · resolution)
// time, O(n · resolution) space for choice reconstruction.
//
// resolution ≤ 0 selects DefaultDPResolution. Returns ErrInfeasible
// when no assignment fits even before quantization rounding... (the
// check is performed on quantized weights, so near-capacity instances
// may be rejected conservatively).
func SolveDP(in *Instance, resolution int) (Solution, error) {
	return solveDPInto(in, resolution, &dpArena{})
}

// solveDPInto is SolveDP running its tables out of ar. The recurrence,
// iteration order, and reconstruction are identical to the historical
// per-call-allocating implementation, so solutions are bit-identical;
// only the storage layout (flattened tables) differs.
func solveDPInto(in *Instance, resolution int, ar *dpArena) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	if resolution <= 0 {
		resolution = DefaultDPResolution
	}
	n := len(in.Classes)
	cap := resolution

	// Quantize weights, rounding up (conservative).
	ar.qwOff = growInts(ar.qwOff, n+1)
	ar.qw = ar.qw[:0]
	for i, c := range in.Classes {
		ar.qwOff[i] = len(ar.qw)
		for _, it := range c.Items {
			w := int(math.Ceil(it.Weight / in.Capacity * float64(resolution)))
			if w < 0 {
				w = 0
			}
			ar.qw = append(ar.qw, w)
		}
	}
	ar.qwOff[n] = len(ar.qw)

	negInf := math.Inf(-1)
	// prev[c] = best profit using classes 0..i-1 at weight budget c
	// ("at most c" formulation; monotone in c by construction below).
	ar.prev = growFloats(ar.prev, cap+1)
	ar.cur = growFloats(ar.cur, cap+1)
	prev, cur := ar.prev, ar.cur
	for c := range prev {
		prev[c] = 0 // zero classes, zero profit at any budget
	}
	// choice[i*(cap+1)+c] = item picked for class i at budget c.
	if len(ar.choice) < n*(cap+1) {
		ar.choice = make([]int16, n*(cap+1))
	}

	for i := 0; i < n; i++ {
		items := in.Classes[i].Items
		qwi := ar.qw[ar.qwOff[i]:ar.qwOff[i+1]]
		row := ar.choice[i*(cap+1) : (i+1)*(cap+1)]
		for c := 0; c <= cap; c++ {
			best := negInf
			bestJ := int16(-1)
			for j := range items {
				w := qwi[j]
				if w > c {
					continue
				}
				if p := prev[c-w]; p != negInf {
					if v := p + items[j].Profit; v > best {
						best = v
						bestJ = int16(j)
					}
				}
			}
			cur[c] = best
			row[c] = bestJ
		}
		prev, cur = cur, prev
	}

	if prev[cap] == negInf {
		return Solution{}, ErrInfeasible
	}

	// Reconstruct: walk classes backwards. Find the smallest budget c*
	// achieving the optimum to keep the reported weight tight.
	c := cap
	bestProfit := prev[cap]
	for b := 0; b <= cap; b++ {
		if prev[b] == bestProfit {
			c = b
			break
		}
	}
	ar.sel = growInts(ar.sel, n)
	sel := ar.sel
	for i := n - 1; i >= 0; i-- {
		j := ar.choice[i*(cap+1)+c]
		if j < 0 {
			// The chosen budget must be reachable at every level; if
			// not, fall back to the full budget column.
			return Solution{}, fmt.Errorf("mckp: internal error reconstructing DP solution at class %d", i)
		}
		sel[i] = int(j)
		c -= ar.qw[ar.qwOff[i]+int(j)]
	}
	sol, err := in.Evaluate(sel)
	if err != nil {
		return Solution{}, err
	}
	return sol, nil
}

// growInts returns s resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growInts(s []int, n int) []int {
	if n <= cap(s) {
		return s[:n]
	}
	return make([]int, n) //rtlint:allow hotalloc -- amortized arena growth; a warm re-solve takes the cap-sufficient path
}

// growFloats is growInts for float64 slices.
func growFloats(s []float64, n int) []float64 {
	if n <= cap(s) {
		return s[:n]
	}
	return make([]float64, n) //rtlint:allow hotalloc -- amortized arena growth; a warm re-solve takes the cap-sufficient path
}

// growBools is growInts for bool slices.
func growBools(s []bool, n int) []bool {
	if n <= cap(s) {
		return s[:n]
	}
	return make([]bool, n) //rtlint:allow hotalloc -- amortized arena growth; a warm re-solve takes the cap-sufficient path
}
