package mckp

import (
	"fmt"
	"math"
)

// DefaultDPResolution is the number of capacity grid cells used by
// SolveDP when the caller passes 0. At 10⁻⁴ of the capacity per cell,
// quantization loss is far below the profit differences that matter in
// the offloading instances.
const DefaultDPResolution = 10000

// SolveDP solves the instance exactly on a quantized capacity grid
// using the pseudo-polynomial dynamic program for MCKP (Dudzinski &
// Walukiewicz 1987). The real-valued weights are scaled to
// resolution grid cells and rounded *up*, so any returned solution is
// feasible for the true instance; the quantization can only cost
// profit, never feasibility. Complexity O(Σ|classes| · resolution)
// time, O(n · resolution) space for choice reconstruction.
//
// resolution ≤ 0 selects DefaultDPResolution. Returns ErrInfeasible
// when no assignment fits even before quantization rounding... (the
// check is performed on quantized weights, so near-capacity instances
// may be rejected conservatively).
func SolveDP(in *Instance, resolution int) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	if resolution <= 0 {
		resolution = DefaultDPResolution
	}
	n := len(in.Classes)
	cap := resolution

	// Quantize weights, rounding up (conservative).
	qw := make([][]int, n)
	for i, c := range in.Classes {
		qw[i] = make([]int, len(c.Items))
		for j, it := range c.Items {
			w := int(math.Ceil(it.Weight / in.Capacity * float64(resolution)))
			if w < 0 {
				w = 0
			}
			qw[i][j] = w
		}
	}

	negInf := math.Inf(-1)
	// prev[c] = best profit using classes 0..i-1 with total quantized
	// weight exactly ≤ handled via "at most c" formulation: we use
	// profit at weight budget c (monotone in c by construction below).
	prev := make([]float64, cap+1)
	cur := make([]float64, cap+1)
	for c := range prev {
		prev[c] = 0 // zero classes, zero profit at any budget
	}
	// choice[i][c] = item picked for class i at budget c.
	choice := make([][]int16, n)

	for i := 0; i < n; i++ {
		choice[i] = make([]int16, cap+1)
		items := in.Classes[i].Items
		for c := 0; c <= cap; c++ {
			best := negInf
			bestJ := int16(-1)
			for j := range items {
				w := qw[i][j]
				if w > c {
					continue
				}
				if p := prev[c-w]; p != negInf {
					if v := p + items[j].Profit; v > best {
						best = v
						bestJ = int16(j)
					}
				}
			}
			cur[c] = best
			choice[i][c] = bestJ
		}
		prev, cur = cur, prev
	}

	if prev[cap] == negInf {
		return Solution{}, ErrInfeasible
	}

	// Reconstruct: walk classes backwards. Find the smallest budget c*
	// achieving the optimum to keep the reported weight tight.
	c := cap
	bestProfit := prev[cap]
	for b := 0; b <= cap; b++ {
		if prev[b] == bestProfit {
			c = b
			break
		}
	}
	sel := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		j := choice[i][c]
		if j < 0 {
			// The chosen budget must be reachable at every level; if
			// not, fall back to the full budget column.
			return Solution{}, fmt.Errorf("mckp: internal error reconstructing DP solution at class %d", i)
		}
		sel[i] = int(j)
		c -= qw[i][j]
	}
	sol, err := in.Evaluate(sel)
	if err != nil {
		return Solution{}, err
	}
	return sol, nil
}
