package mckp

import (
	"fmt"
)

// MaxBruteForceAssignments caps the search space SolveBruteForce will
// enumerate.
const MaxBruteForceAssignments = 20_000_000

// SolveBruteForce enumerates every assignment and returns the exact
// optimum. It exists to verify the other solvers on small instances
// and refuses instances with more than MaxBruteForceAssignments
// assignments.
func SolveBruteForce(in *Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	total := 1
	for _, c := range in.Classes {
		if total > MaxBruteForceAssignments/len(c.Items) {
			return Solution{}, fmt.Errorf("mckp: instance too large for brute force (> %d assignments)", MaxBruteForceAssignments)
		}
		total *= len(c.Items)
	}

	n := len(in.Classes)
	cur := make([]int, n)
	best := make([]int, n)
	found := false
	bestProfit := 0.0
	bestWeight := 0.0

	var rec func(i int, w, p float64)
	rec = func(i int, w, p float64) {
		if w > in.Capacity+1e-12 {
			return // no item has negative weight, so prune
		}
		if i == n {
			if !found || p > bestProfit || (p == bestProfit && w < bestWeight) {
				found = true
				bestProfit = p
				bestWeight = w
				copy(best, cur)
			}
			return
		}
		for j, it := range in.Classes[i].Items {
			cur[i] = j
			rec(i+1, w+it.Weight, p+it.Profit)
		}
	}
	rec(0, 0, 0)
	if !found {
		return Solution{}, ErrInfeasible
	}
	return in.Evaluate(best)
}

// SolveGreedy is a naive baseline for ablations: classes are processed
// in order and each picks the highest-profit item that still fits the
// remaining capacity assuming every later class takes its lightest
// item. It ignores efficiency entirely, which is exactly what makes it
// a useful contrast to HEU-OE.
func SolveGreedy(in *Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(in.Classes)
	// minTail[i] = Σ over classes ≥ i of the lightest item weight.
	minTail := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		minW := in.Classes[i].Items[0].Weight
		for _, it := range in.Classes[i].Items[1:] {
			if it.Weight < minW {
				minW = it.Weight
			}
		}
		minTail[i] = minTail[i+1] + minW
	}
	if minTail[0] > in.Capacity+1e-12 {
		return Solution{}, ErrInfeasible
	}
	choice := make([]int, n)
	used := 0.0
	for i, c := range in.Classes {
		bestJ := -1
		bestP := 0.0
		bestW := 0.0
		for j, it := range c.Items {
			if used+it.Weight+minTail[i+1] > in.Capacity+1e-12 {
				continue
			}
			if bestJ == -1 || it.Profit > bestP || (it.Profit == bestP && it.Weight < bestW) {
				bestJ, bestP, bestW = j, it.Profit, it.Weight
			}
		}
		if bestJ == -1 {
			// Fall back to the lightest item; feasibility of the prefix
			// plus minTail guarantees it fits.
			for j, it := range c.Items {
				if bestJ == -1 || it.Weight < bestW {
					bestJ, bestW = j, it.Weight
				}
			}
		}
		choice[i] = bestJ
		used += c.Items[bestJ].Weight
	}
	return in.Evaluate(choice)
}
