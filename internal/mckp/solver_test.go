package mckp

import (
	"container/heap"
	"errors"
	"math"
	"testing"

	"rtoffload/internal/stats"
)

// requireSameSolution asserts bit-identical solutions (choice vector,
// profit, and weight down to the float bits).
func requireSameSolution(t *testing.T, ctx string, a, b Solution) {
	t.Helper()
	if len(a.Choice) != len(b.Choice) {
		t.Fatalf("%s: choice length %d vs %d", ctx, len(a.Choice), len(b.Choice))
	}
	for i := range a.Choice {
		if a.Choice[i] != b.Choice[i] {
			t.Fatalf("%s: choice[%d] = %d vs %d", ctx, i, a.Choice[i], b.Choice[i])
		}
	}
	if math.Float64bits(a.Profit) != math.Float64bits(b.Profit) {
		t.Fatalf("%s: profit %.17g vs %.17g", ctx, a.Profit, b.Profit)
	}
	if math.Float64bits(a.Weight) != math.Float64bits(b.Weight) {
		t.Fatalf("%s: weight %.17g vs %.17g", ctx, a.Weight, b.Weight)
	}
}

func TestSolverMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(401, 1))
	for trial := 0; trial < 400; trial++ {
		in := randInstance(rng, 5, 6)
		s, err := NewSolverFrom(in)
		if err != nil {
			t.Fatalf("trial %d: NewSolverFrom: %v", trial, err)
		}
		got, errGot := s.Solve()
		want, errWant := SolveBruteForce(in)
		if (errGot != nil) != (errWant != nil) {
			t.Fatalf("trial %d: feasibility disagreement: solver err %v, brute err %v", trial, errGot, errWant)
		}
		if errGot != nil {
			if !errors.Is(errGot, ErrInfeasible) {
				t.Fatalf("trial %d: unexpected error %v", trial, errGot)
			}
			continue
		}
		if math.Abs(got.Profit-want.Profit) > 1e-9 {
			t.Fatalf("trial %d: profit %.12f, brute force %.12f", trial, got.Profit, want.Profit)
		}
		if !got.FitsCapacity(in) {
			t.Fatalf("trial %d: solution weight %f over capacity %f", trial, got.Weight, in.Capacity)
		}
	}
}

func TestSolverMatchesBnB(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(401, 2))
	for trial := 0; trial < 200; trial++ {
		in := randInstance(rng, 12, 8)
		s, err := NewSolverFrom(in)
		if err != nil {
			t.Fatalf("trial %d: NewSolverFrom: %v", trial, err)
		}
		got, errGot := s.Solve()
		want, errWant := SolveBnB(in)
		if (errGot != nil) != (errWant != nil) {
			t.Fatalf("trial %d: feasibility disagreement: solver err %v, bnb err %v", trial, errGot, errWant)
		}
		if errGot != nil {
			continue
		}
		if math.Abs(got.Profit-want.Profit) > 1e-9 {
			t.Fatalf("trial %d: profit %.12f, bnb %.12f", trial, got.Profit, want.Profit)
		}
	}
}

func TestSolverSandwichedByHEUAndLP(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(401, 3))
	for trial := 0; trial < 200; trial++ {
		in := randInstance(rng, 10, 8)
		s, err := NewSolverFrom(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, errGot := s.Solve()
		if errGot != nil {
			continue
		}
		heu, err := SolveHEU(in)
		if err != nil {
			t.Fatalf("trial %d: HEU err %v after solver succeeded", trial, err)
		}
		ub, err := UpperBoundLP(in)
		if err != nil {
			t.Fatalf("trial %d: LP err %v", trial, err)
		}
		if got.Profit < heu.Profit-1e-9 {
			t.Fatalf("trial %d: solver %.12f below HEU %.12f", trial, got.Profit, heu.Profit)
		}
		if got.Profit > ub+1e-9 {
			t.Fatalf("trial %d: solver %.12f above LP bound %.12f", trial, got.Profit, ub)
		}
	}
}

// TestSolverSingleClassPicksBestFitting is the LP-dominated-optimum
// case SolveHEU is documented to miss (see
// TestSingleClassPicksBestFitting): the exact solver must take the
// interior point.
func TestSolverSingleClassPicksBestFitting(t *testing.T) {
	in := inst(1, [][2]float64{{0.2, 1}, {0.8, 3}, {0.9, 3.05}, {1.5, 10}})
	s, err := NewSolverFrom(in)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Choice[0] != 2 {
		t.Fatalf("chose item %d, want 2 (the best fitting)", sol.Choice[0])
	}
}

// churnSolver applies a random structural edit to s and returns a
// description of the op.
func churnSolver(t *testing.T, rng *stats.RNG, s *Solver) string {
	t.Helper()
	randItems := func() []Item {
		m := rng.IntN(6) + 1
		items := make([]Item, m)
		for j := range items {
			items[j] = Item{Weight: rng.Uniform(0, 0.8), Profit: rng.Uniform(0, 10)}
		}
		return items
	}
	n := s.Len()
	op := rng.IntN(5)
	if n == 0 {
		op = 2 // must grow
	}
	switch op {
	case 0:
		i := rng.IntN(n)
		if err := s.Update(i, randItems()); err != nil {
			t.Fatalf("update: %v", err)
		}
		return "update"
	case 1:
		i := rng.IntN(n)
		if err := s.Swap(i, Class{Label: "swapped", Items: randItems()}); err != nil {
			t.Fatalf("swap: %v", err)
		}
		return "swap"
	case 2:
		if err := s.Append(Class{Label: "appended", Items: randItems()}); err != nil {
			t.Fatalf("append: %v", err)
		}
		return "append"
	case 3:
		i := rng.IntN(n + 1)
		if err := s.Insert(i, Class{Label: "inserted", Items: randItems()}); err != nil {
			t.Fatalf("insert: %v", err)
		}
		return "insert"
	default:
		if n == 1 {
			return "skip-remove"
		}
		if err := s.Remove(rng.IntN(n)); err != nil {
			t.Fatalf("remove: %v", err)
		}
		return "remove"
	}
}

// TestSolverIncrementalBitIdentical drives a warm solver through a
// churn stream and checks after every op that its solution is
// bit-identical to a cold from-scratch solver on the same instance —
// the core incremental-correctness contract.
func TestSolverIncrementalBitIdentical(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(401, 4))
	for round := 0; round < 12; round++ {
		in := randInstance(rng, 8, 6)
		warm, err := NewSolverFrom(in)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 30; step++ {
			op := churnSolver(t, rng, warm)
			cold, err := NewSolverFrom(warm.Instance())
			if err != nil {
				t.Fatalf("round %d step %d (%s): cold build: %v", round, step, op, err)
			}
			sw, errW := warm.Solve()
			sc, errC := cold.Solve()
			if (errW != nil) != (errC != nil) {
				t.Fatalf("round %d step %d (%s): warm err %v, cold err %v", round, step, op, errW, errC)
			}
			if errW != nil {
				continue
			}
			requireSameSolution(t, op, sw, sc)
		}
	}
}

func TestSolverDeterminism(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(401, 5))
	in := randInstance(rng, 10, 8)
	s, err := NewSolverFrom(in)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Solve()
	if err != nil {
		t.Skip("infeasible draw")
	}
	firstChoice := append([]int(nil), first.Choice...)
	for i := 0; i < 5; i++ {
		again, err := s.Solve()
		if err != nil {
			t.Fatalf("resolve %d: %v", i, err)
		}
		requireSameSolution(t, "resolve", Solution{Choice: firstChoice, Profit: first.Profit, Weight: first.Weight}, again)
	}
}

func TestSolverStructuralOpsMatchView(t *testing.T) {
	s, err := NewSolver(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Capacity() != 1 {
		t.Fatalf("empty solver: Len %d Capacity %f", s.Len(), s.Capacity())
	}
	if _, err := s.Solve(); err == nil {
		t.Fatal("Solve on empty solver should fail")
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Append(Class{Label: "a", Items: []Item{{0.3, 1}}}))
	must(s.Append(Class{Label: "b", Items: []Item{{0.2, 2}, {0.4, 3}}}))
	must(s.Insert(1, Class{Label: "c", Items: []Item{{0.1, 5}}}))
	if got := s.Instance().Classes[1].Label; got != "c" {
		t.Fatalf("after insert, class 1 label %q, want c", got)
	}
	must(s.Update(0, []Item{{0.25, 1.5}}))
	if got := s.Instance().Classes[0].Label; got != "a" {
		t.Fatalf("Update must keep label, got %q", got)
	}
	must(s.Swap(2, Class{Label: "d", Items: []Item{{0.2, 2}}}))
	if got := s.Instance().Classes[2].Label; got != "d" {
		t.Fatalf("after swap, class 2 label %q, want d", got)
	}
	must(s.Remove(1))
	if s.Len() != 2 {
		t.Fatalf("after remove, Len %d, want 2", s.Len())
	}
	if err := s.Instance().Validate(); err != nil {
		t.Fatalf("view invalid: %v", err)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("after Reset, Len %d", s.Len())
	}
}

func TestSolverErrors(t *testing.T) {
	if _, err := NewSolver(0); err == nil {
		t.Fatal("NewSolver(0) should fail")
	}
	if _, err := NewSolver(math.NaN()); err == nil {
		t.Fatal("NewSolver(NaN) should fail")
	}
	if _, err := NewSolverFrom(&Instance{Capacity: 1}); err == nil {
		t.Fatal("NewSolverFrom with no classes should fail")
	}
	s, err := NewSolver(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Class{}); err == nil {
		t.Fatal("Append of empty class should fail")
	}
	if err := s.Append(Class{Items: []Item{{Weight: -1, Profit: 0}}}); err == nil {
		t.Fatal("Append with negative weight should fail")
	}
	if err := s.Append(Class{Items: []Item{{Weight: 0, Profit: math.NaN()}}}); err == nil {
		t.Fatal("Append with NaN profit should fail")
	}
	if err := s.Remove(0); err == nil {
		t.Fatal("Remove out of range should fail")
	}
	if err := s.Update(0, []Item{{0.1, 1}}); err == nil {
		t.Fatal("Update out of range should fail")
	}
	if err := s.Swap(-1, Class{Items: []Item{{0.1, 1}}}); err == nil {
		t.Fatal("Swap out of range should fail")
	}
	if err := s.Insert(5, Class{Items: []Item{{0.1, 1}}}); err == nil {
		t.Fatal("Insert out of range should fail")
	}
	// Infeasible: lightest items exceed the capacity.
	if err := s.Append(Class{Items: []Item{{0.9, 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Class{Items: []Item{{0.9, 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if _, err := s.SolveHEU(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("SolveHEU: want ErrInfeasible, got %v", err)
	}
	// A later edit must clear the infeasibility.
	if err := s.Update(0, []Item{{0.05, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatalf("after repair: %v", err)
	}
}

func TestSolverHEUMatchesSolveHEU(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(401, 6))
	for trial := 0; trial < 200; trial++ {
		in := randInstance(rng, 10, 8)
		s, err := NewSolverFrom(in)
		if err != nil {
			t.Fatal(err)
		}
		got, errGot := s.SolveHEU()
		want, errWant := SolveHEU(in)
		if (errGot != nil) != (errWant != nil) {
			t.Fatalf("trial %d: err %v vs %v", trial, errGot, errWant)
		}
		if errGot != nil {
			continue
		}
		requireSameSolution(t, "heu", got, want)
	}
}

func TestSolverDPMatchesSolveDP(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(401, 7))
	for trial := 0; trial < 40; trial++ {
		in := randInstance(rng, 6, 5)
		s, err := NewSolverFrom(in)
		if err != nil {
			t.Fatal(err)
		}
		got, errGot := s.SolveDP(500)
		want, errWant := SolveDP(in, 500)
		if (errGot != nil) != (errWant != nil) {
			t.Fatalf("trial %d: err %v vs %v", trial, errGot, errWant)
		}
		if errGot != nil {
			continue
		}
		requireSameSolution(t, "dp", got, want)
		// Second solve out of the same arena must agree too.
		again, err := s.SolveDP(500)
		if err != nil {
			t.Fatalf("trial %d: re-solve: %v", trial, err)
		}
		requireSameSolution(t, "dp-arena-reuse", again, want)
	}
}

// TestSolverWarmResolveZeroAllocs is the steady-state allocation
// contract from the acceptance criteria: once warmed up, an
// Update+Solve cycle must not allocate.
func TestSolverWarmResolveZeroAllocs(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(401, 8))
	const n = 40
	in := &Instance{Capacity: 1}
	for i := 0; i < n; i++ {
		c := Class{}
		for j := 0; j < 8; j++ {
			c.Items = append(c.Items, Item{Weight: rng.Uniform(0, 1.8) / n, Profit: rng.Uniform(0, 10)})
		}
		in.Classes = append(in.Classes, c)
	}
	s, err := NewSolverFrom(in)
	if err != nil {
		t.Fatal(err)
	}
	// Alternative item sets to rotate through, preallocated.
	alts := make([][]Item, 16)
	for a := range alts {
		items := make([]Item, 8)
		for j := range items {
			items[j] = Item{Weight: rng.Uniform(0, 1.8) / n, Profit: rng.Uniform(0, 10)}
		}
		alts[a] = items
	}
	step := 0
	cycle := func() {
		i := step % n
		if err := s.Update(i, alts[step%len(alts)]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(); err != nil {
			t.Fatal(err)
		}
		step++
	}
	// Warm every rotation position so all arenas reach steady size.
	for i := 0; i < 2*n; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("warm Update+Solve allocates %.2f allocs/op, want 0", avg)
	}
}

// legacyHeap adapts upgradeHeap to container/heap for the reference
// comparison below.
type legacyHeap struct{ upgradeHeap }

func (h *legacyHeap) Push(x interface{}) {
	h.upgradeHeap = append(h.upgradeHeap, x.(upgrade))
}
func (h *legacyHeap) Pop() interface{} {
	old := h.upgradeHeap
	n := len(old)
	x := old[n-1]
	h.upgradeHeap = old[:n-1]
	return x
}

// TestTypedHeapMatchesContainerHeap proves the hand-rolled sift
// routines replicate container/heap exactly — same pop order on the
// same push sequence — which is what keeps SolveHEU's tie-breaking
// (and every golden output downstream of it) unchanged.
func TestTypedHeapMatchesContainerHeap(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(401, 9))
	for trial := 0; trial < 50; trial++ {
		var typed upgradeHeap
		ref := &legacyHeap{}
		nOps := rng.IntN(200) + 10
		for op := 0; op < nOps; op++ {
			if rng.IntN(3) < 2 || typed.Len() == 0 {
				u := upgrade{
					class: rng.IntN(8),
					pos:   rng.IntN(8),
					eff:   float64(rng.IntN(12)), // coarse values force ties
				}
				typed.push(u)
				heap.Push(ref, u)
			} else {
				got := typed.pop()
				want := heap.Pop(ref).(upgrade)
				if got != want {
					t.Fatalf("trial %d op %d: pop %+v, container/heap %+v", trial, op, got, want)
				}
			}
		}
		for typed.Len() > 0 {
			got := typed.pop()
			want := heap.Pop(ref).(upgrade)
			if got != want {
				t.Fatalf("trial %d drain: pop %+v, container/heap %+v", trial, got, want)
			}
		}
	}
}

// TestSolveBnBCappedFallsBackToDP forces the node cap with no
// improvement over the HEU seed and checks the DP fallback engages
// (the uncapped solver no longer runs DP unconditionally).
func TestSolveBnBCappedFallsBackToDP(t *testing.T) {
	// HEU misses the interior optimum here (see
	// TestSingleClassPicksBestFitting); DP finds it.
	in := inst(1, [][2]float64{{0.2, 1}, {0.8, 3}, {0.9, 3.05}, {1.5, 10}})
	capped, err := solveBnBNodeCap(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	heu, err := SolveHEU(in)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Profit <= heu.Profit {
		t.Fatalf("capped BnB %.6f did not improve on HEU %.6f via DP fallback", capped.Profit, heu.Profit)
	}
	full, err := SolveBnB(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Profit-capped.Profit) > 1e-9 {
		t.Fatalf("capped+fallback %.6f differs from uncapped %.6f", capped.Profit, full.Profit)
	}
}

// TestSolverRemoveToEmptyAndRegrow exercises Reset-like shrink paths.
func TestSolverRemoveToEmptyAndRegrow(t *testing.T) {
	s, err := NewSolver(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Class{Items: []Item{{0.5, 2}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(0); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len %d after remove-to-empty", s.Len())
	}
	if _, err := s.Solve(); err == nil {
		t.Fatal("Solve on emptied solver should fail")
	}
	if err := s.Append(Class{Items: []Item{{0.4, 1}, {0.6, 3}}}); err != nil {
		t.Fatal(err)
	}
	sol, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Choice[0] != 1 {
		t.Fatalf("regrown solve chose %d, want 1", sol.Choice[0])
	}
}
