package mckp

import (
	"testing"

	"rtoffload/internal/stats"
)

// TestSolveWarmZeroAlloc gates the //rtlint:hotpath contract on
// Solver.Solve: once the upgrade pool and search arenas are warm, a
// re-solve must take only cap-sufficient paths and not allocate.
func TestSolveWarmZeroAlloc(t *testing.T) {
	in := fleetInstance(stats.NewRNG(stats.DeriveSeed(911, 64)), 64, 8)
	s, err := NewSolverFrom(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.Solve(); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Solve allocates %.1f times per run; the hotpath contract is 0", allocs)
	}
}
