// Package mckp solves the multiple-choice knapsack problem (MCKP) that
// the paper's Offloading Decision Manager reduces to (§5.2):
//
//	max  Σi Σj xij · pij
//	s.t. Σi Σj xij · wij ≤ capacity,  Σj xij = 1 for every class i,
//	     xij ∈ {0, 1}
//
// Exactly one item must be chosen from every class. In the offloading
// instance, class i is task τi, item j=0 is local execution
// (w = Ci/Ti, p = Gi(0)) and the remaining items are the offloading
// levels (w = (Ci,1+Ci,2)/(Di−ri,j), p = Gi(ri,j)).
//
// Five solvers are provided:
//
//   - Solver: the persistent, incremental, exact core-method solver
//     (Dudzinski & Walukiewicz): cached per-class dominance frontiers,
//     LP-relaxation dual solve, reduced-cost fixing of non-core
//     classes, and branch-and-bound restricted to the core, with
//     arena-backed allocation-free re-solves. This is the production
//     solver for fleet-sized instances and admission churn.
//   - SolveDP: the pseudo-polynomial dynamic program over a quantized
//     capacity grid (weights here are reals, so the grid quantization
//     rounds weights *up*, making every DP answer feasible under the
//     exact test — at worst slightly conservative).
//   - SolveHEU: the HEU-OE greedy heuristic (Khan 1998): per-class
//     LP-dominance frontiers, then repeated selection of the upgrade
//     with the best incremental efficiency Δprofit/Δweight.
//   - SolveBruteForce: exhaustive enumeration for verification on
//     small instances.
//   - SolveGreedy: a naive density-blind baseline for ablations.
//
// SolveBnB is the older from-scratch branch-and-bound, kept as an
// exact cross-check; its per-depth suffix tables over *all* classes
// cost O(n²·m), which is what Solver's core restriction removes.
//
// UpperBoundLP computes the LP-relaxation optimum, an upper bound used
// by tests to sandwich the DP and HEU answers.
package mckp

import (
	"errors"
	"fmt"
	"math"
)

// Item is one choice within a class.
type Item struct {
	Weight float64 // resource demand, in the same unit as Instance.Capacity
	Profit float64 // objective contribution
}

// Class is a set of mutually exclusive items; exactly one must be
// chosen.
type Class struct {
	Label string
	Items []Item
}

// Instance is an MCKP instance.
type Instance struct {
	Classes  []Class
	Capacity float64
}

// Solution is an assignment of one item per class.
type Solution struct {
	// Choice[i] is the selected item index within Classes[i].
	Choice []int
	Profit float64
	Weight float64
}

// ErrInfeasible reports that no assignment fits the capacity.
var ErrInfeasible = errors.New("mckp: infeasible instance")

// Validate checks structural sanity: at least one class, non-empty
// classes, finite non-negative weights and finite profits, positive
// capacity.
func (in *Instance) Validate() error {
	if in.Capacity <= 0 || math.IsNaN(in.Capacity) || math.IsInf(in.Capacity, 0) {
		return fmt.Errorf("mckp: invalid capacity %g", in.Capacity)
	}
	if len(in.Classes) == 0 {
		return errors.New("mckp: no classes")
	}
	for i, c := range in.Classes {
		if len(c.Items) == 0 {
			return fmt.Errorf("mckp: class %d (%s) has no items", i, c.Label)
		}
		for j, it := range c.Items {
			if it.Weight < 0 || math.IsNaN(it.Weight) || math.IsInf(it.Weight, 0) {
				return fmt.Errorf("mckp: class %d item %d has invalid weight %g", i, j, it.Weight)
			}
			if math.IsNaN(it.Profit) || math.IsInf(it.Profit, 0) {
				return fmt.Errorf("mckp: class %d item %d has invalid profit %g", i, j, it.Profit)
			}
		}
	}
	return nil
}

// minWeightSum returns the sum over classes of each class's lightest
// item — the smallest total weight any assignment can have.
func (in *Instance) minWeightSum() float64 {
	sum := 0.0
	for _, c := range in.Classes {
		minW := math.Inf(1)
		for _, it := range c.Items {
			if it.Weight < minW {
				minW = it.Weight
			}
		}
		sum += minW
	}
	return sum
}

// Feasible reports whether at least one assignment fits the capacity.
func (in *Instance) Feasible() bool {
	return in.minWeightSum() <= in.Capacity+1e-12
}

// Evaluate computes the profit and weight of a choice vector and
// validates it against the instance.
func (in *Instance) Evaluate(choice []int) (Solution, error) {
	if len(choice) != len(in.Classes) {
		return Solution{}, fmt.Errorf("mckp: choice length %d, want %d", len(choice), len(in.Classes))
	}
	s := Solution{Choice: append([]int(nil), choice...)}
	for i, j := range choice {
		if j < 0 || j >= len(in.Classes[i].Items) {
			return Solution{}, fmt.Errorf("mckp: class %d choice %d out of range", i, j)
		}
		it := in.Classes[i].Items[j]
		s.Profit += it.Profit
		s.Weight += it.Weight
	}
	return s, nil
}

// FitsCapacity reports whether the solution's weight is within the
// instance capacity (with a small tolerance for float accumulation).
func (s Solution) FitsCapacity(in *Instance) bool {
	return s.Weight <= in.Capacity+1e-9
}

// frontierItem is an item surviving dominance pruning, with its
// original index retained for solution reconstruction.
type frontierItem struct {
	idx    int
	weight float64
	profit float64
}

// ipFrontier removes IP-dominated items from a class: item b is
// dominated if some item a has weight ≤ b's and profit ≥ b's. The
// result is sorted by strictly increasing weight and strictly
// increasing profit.
func ipFrontier(items []Item) []frontierItem {
	return ipFrontierInto(make([]frontierItem, 0, len(items)), items)
}

// ipFrontierInto is ipFrontier writing into a reusable buffer (the
// persistent Solver's per-class arena). dst is truncated and regrown;
// the returned slice aliases it.
func ipFrontierInto(dst []frontierItem, items []Item) []frontierItem {
	f := dst[:0]
	for idx, it := range items {
		f = append(f, frontierItem{idx: idx, weight: it.Weight, profit: it.Profit})
	}
	// Sort by weight, ties by descending profit so the best of equal
	// weights survives, with the original index as the final
	// tiebreaker for determinism.
	sortFrontier(f)
	out := f[:0]
	bestProfit := math.Inf(-1)
	for _, x := range f {
		if x.profit > bestProfit {
			out = append(out, x)
			bestProfit = x.profit
		}
	}
	return out
}

// lpFrontier further removes LP-dominated items: points not on the
// upper-left convex hull of (weight, profit). Input must be an
// ipFrontier result. Along the output, incremental efficiencies
// Δprofit/Δweight are strictly decreasing.
func lpFrontier(f []frontierItem) []frontierItem {
	if len(f) <= 2 {
		return f
	}
	return lpFrontierInto(make([]frontierItem, 0, len(f)), f)
}

// lpFrontierInto is lpFrontier writing into a reusable buffer that
// must not alias f. The returned slice aliases dst.
func lpFrontierInto(dst []frontierItem, f []frontierItem) []frontierItem {
	hull := dst[:0]
	for _, x := range f {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// b is LP-dominated if slope(a→b) ≤ slope(b→x).
			if (b.profit-a.profit)*(x.weight-b.weight) <= (x.profit-b.profit)*(b.weight-a.weight) {
				hull = hull[:len(hull)-1]
			} else {
				break
			}
		}
		hull = append(hull, x)
	}
	return hull
}

// sortFrontier sorts by (weight asc, profit desc, idx asc) via
// insertion sort; class sizes are small.
func sortFrontier(f []frontierItem) {
	for i := 1; i < len(f); i++ {
		for j := i; j > 0 && frontierLess(f[j], f[j-1]); j-- {
			f[j], f[j-1] = f[j-1], f[j]
		}
	}
}

func frontierLess(a, b frontierItem) bool {
	if a.weight != b.weight {
		return a.weight < b.weight
	}
	if a.profit != b.profit {
		return a.profit > b.profit
	}
	return a.idx < b.idx
}
