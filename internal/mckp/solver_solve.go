package mckp

import (
	"errors"
	"math"
	"sort"
)

// sortChildren orders the child permutation for the dominance sweep.
// *coreSearch implements sort.Interface directly so the call never
// boxes (steady-state re-solves stay allocation-free).
func sortChildren(cs *coreSearch) { sort.Sort(cs) }

// maxCoreStates caps the total Pareto states materialized by the core
// sweep. The core is the set of classes the LP relaxation cannot
// decide, and dominance keeps only undominated (weight, profit)
// prefixes of it, so real instances stay far below this; an overrun
// falls back to the best solution seen (which forfeits the warm/cold
// bit-identity guarantee, never feasibility).
const maxCoreStates = 4_000_000

// coreRetryHEU is the core size past which a warm solve whose floor
// came from the previous-optimum hint spends one HEU run trying to
// raise the floor before sweeping.
const coreRetryHEU = 32

// maxSuffixEntries bounds the flattened per-depth suffix upgrade
// lists. Deeper (smaller) suffixes are built exactly within this
// budget; shallower depths fall back to the full core upgrade list — a
// superset, hence still a valid (just looser) LP bound. This is what
// keeps the solver's memory O(core²) instead of SolveBnB's O(n²·m).
const maxSuffixEntries = 1 << 19

// coreSearch is the core-sweep arena: core identification, suffix LP
// bound tables, the Pareto state pool, and the best leaf found.
// Everything is reused across solves.
type coreSearch struct {
	inCore  []bool
	coreIdx []int

	// Math (non-canonical) suffix sums used only for pruning bounds:
	// fixedSuf* over fixed classes by class index; coreBase* over core
	// classes by core depth (each core class at its lightest item);
	// sufAll* over every class at its dual-best item, powering the
	// progressive feasible-completion floor.
	fixedSufP []float64
	fixedSufW []float64
	coreBaseP []float64
	coreBaseW []float64
	sufAllP   []float64
	sufAllW   []float64

	// Per-depth merged suffix upgrade lists (eff desc), flattened:
	// depth k ∈ [kStop, K] occupies raw*[segOff[k]:segOff[k]+segCnt[k]]
	// and prefix arrays cum*[cumOff[k]:cumOff[k]+segCnt[k]+1]. Depths
	// below kStop use fullCum* (all core upgrades).
	segOff, segCnt, cumOff []int
	rawDW, rawDP, rawEff   []float64
	cumW, cumP             []float64
	fullCumW, fullCumP     []float64
	kStop                  int

	// Pareto state pool, flat across levels. A level-k state is an
	// undominated canonical prefix through every class before
	// coreIdx[k]; stItem is the original item index chosen at the
	// previous core class, stParent the index of the previous level's
	// state. Level 0 is the single root. Array order within a level is
	// generation order, which is the canonical lexicographic order of
	// the prefix paths — load-bearing for tie-breaking (see Solver).
	stW, stP []float64
	stParent []int32
	stItem   []int32

	// Child scratch for one level transition.
	chW, chP []float64
	chParent []int32
	chItem   []int32
	chIdx    []int // sort permutation for the dominance sweep
	chKeep   []bool

	inc        []int // incumbent choice vector (warm hint or HEU)
	bestChoice []int
	bestProfit float64
	bestWeight float64
	found      bool
	ell        float64 // incumbent canonical profit (initial pruning floor)
	floorLB    float64 // best feasible-completion lower bound seen
	eps        float64 // pruning/fixing slack, scaled to profit mass
	states     int
	aborted    bool
}

// sort.Interface over chIdx: weight asc, profit desc, generation
// order asc — the skyline order for the dominance sweep.
func (cs *coreSearch) Len() int { return len(cs.chIdx) }
func (cs *coreSearch) Less(a, b int) bool {
	i, j := cs.chIdx[a], cs.chIdx[b]
	if cs.chW[i] != cs.chW[j] {
		return cs.chW[i] < cs.chW[j]
	}
	if cs.chP[i] != cs.chP[j] {
		return cs.chP[i] > cs.chP[j]
	}
	return i < j
}
func (cs *coreSearch) Swap(a, b int) { cs.chIdx[a], cs.chIdx[b] = cs.chIdx[b], cs.chIdx[a] }

// Solve returns the exact optimum of the current instance via the
// core method. The returned Solution's Choice aliases solver storage,
// valid until the next call. See the Solver doc comment for the
// canonicality (warm/cold bit-identity) contract.
//
//rtlint:hotpath -- steady-state offloading re-decision kernel; warm re-solves must not allocate
func (s *Solver) Solve() (Solution, error) {
	n := len(s.classes)
	if n == 0 {
		return Solution{}, errors.New("mckp: no classes") //rtlint:allow hotalloc -- empty-instance error, not the steady state
	}

	// Feasibility: the all-lightest assignment must fit (same canonical
	// accumulation order and tolerance as Instance.Feasible).
	minSum := 0.0
	for i := range s.classes {
		minSum += s.classes[i].minW
	}
	if minSum > s.capacity+1e-12 {
		return Solution{}, ErrInfeasible
	}
	if !s.upsValid {
		s.buildUps() //rtlint:allow hotalloc -- lazy cold rebuild of the upgrade pool after Reset; warm re-solves skip it
	}

	// Epsilon slack scaled to the instance's profit mass, so duality
	// and accumulation float error can never prune a true achiever.
	scale := 1.0
	for i := range s.classes {
		scale += s.classes[i].maxAbsP
	}
	eps := 1e-9 + 3e-11*scale

	lambda, dual, allCore := s.solveLP()
	s.scanPhi(lambda)

	cs := &s.srch
	cs.inc = growInts(cs.inc, n)
	cs.bestChoice = growInts(cs.bestChoice, n)

	// Incumbent: the previous optimum when still valid and feasible,
	// else the cached-frontier HEU. Its canonical profit ℓ is the
	// warm-start pruning floor; the vector itself is only a fallback.
	ranHEU, err := s.pickIncumbent()
	if err != nil {
		return Solution{}, err
	}

	cs.inCore = growBools(cs.inCore, n)
	s.buildCore(dual, eps, allCore)
	// A warm hint that leaves a large core may have gone stale across
	// edits; one HEU run often raises the floor enough to shrink it.
	if !ranHEU && len(cs.coreIdx) > coreRetryHEU {
		if err := s.raiseFloorHEU(); err != nil {
			return Solution{}, err
		}
		s.buildCore(dual, eps, allCore)
	}

	s.buildFixedSuffixes()
	s.buildCoreBounds()

	cs.bestProfit = math.Inf(-1)
	cs.bestWeight = 0
	cs.found = false
	cs.eps = eps
	cs.states = 0
	cs.aborted = false

	if len(cs.coreIdx) == 0 {
		// Everything fixed: the dual-best assignment is the unique
		// candidate (and equals the incumbent, which certifies it).
		p, w := 0.0, 0.0
		for c := 0; c < n; c++ {
			p += s.lp.lpP[c]
			w += s.lp.lpW[c]
		}
		if w <= s.capacity+1e-12 {
			cs.found = true
			cs.bestProfit = p
			cs.bestWeight = w
			copy(cs.bestChoice, s.lp.lpItem)
		}
	} else {
		s.sweepCore()
	}

	choice := cs.bestChoice
	profit, weight := cs.bestProfit, cs.bestWeight
	if !cs.found {
		// Defensive: the incumbent's states are never pruned or
		// dominated away without an equal-profit survivor, so this only
		// triggers on a state-cap abort.
		var err error
		choice = cs.inc
		profit, weight, err = s.evalInto(cs.inc)
		if err != nil {
			return Solution{}, err
		}
	}

	s.prevChoice = append(s.prevChoice[:0], choice...)
	s.prevValid = true
	s.solChoice = append(s.solChoice[:0], choice...)
	return Solution{Choice: s.solChoice, Profit: profit, Weight: weight}, nil
}

// solveLP runs the Zemel/Dyer greedy over the global upgrade pool:
// start every class at its lightest hull item, apply upgrades in
// global efficiency order until one no longer fits. Returns the dual
// multiplier λ (the break efficiency), the dual bound D = LP profit +
// λ·residual, and whether the hairline no-slack case forces the whole
// instance into the core. Fills s.lp.lpPos.
func (s *Solver) solveLP() (lambda, dual float64, allCore bool) {
	lp := &s.lp
	n := len(s.classes)
	lp.lpPos = growInts(lp.lpPos, n)
	lp.lpItem = growInts(lp.lpItem, n)
	lp.lpW = growFloats(lp.lpW, n)
	lp.lpP = growFloats(lp.lpP, n)
	lp.phiGap = growFloats(lp.phiGap, n)

	profit, weight := 0.0, 0.0
	for i := range s.classes {
		lp.lpPos[i] = 0
		f0 := s.classes[i].lpFront[0]
		profit += f0.profit
		weight += f0.weight
	}
	rem := s.capacity - weight
	if rem < 0 {
		// Inside the feasibility tolerance band but with no true slack:
		// the duality argument has no room, so skip fixing entirely.
		return 0, profit, true
	}
	for _, u := range s.ups {
		if u.dw > rem {
			lambda = u.eff
			break
		}
		rem -= u.dw
		profit += u.dp
		lp.lpPos[u.class] = u.pos
	}
	return lambda, profit + lambda*rem, false
}

// buildCore applies reduced-cost fixing with the current floor ℓ: a
// class whose φ gap exceeds the optimality gap D−ℓ (plus slack) must
// take its dual-best item in every solution at least as good as the
// incumbent; the rest is the core.
func (s *Solver) buildCore(dual, eps float64, allCore bool) {
	cs := &s.srch
	gap := dual - cs.ell
	if gap < 0 {
		gap = 0
	}
	cs.coreIdx = cs.coreIdx[:0]
	for i := range s.classes {
		in := allCore || !(s.lp.phiGap[i] > gap+eps)
		cs.inCore[i] = in
		if in {
			cs.coreIdx = append(cs.coreIdx, i)
		}
	}
}

// scanPhi records, per class, the dual-best item (the φ-argmax at the
// given λ, attained at the greedy hull position) and the gap to the
// second-best pseudo-profit over the whole IP frontier. Single-item
// classes get a +Inf gap (always fixed).
func (s *Solver) scanPhi(lambda float64) {
	lp := &s.lp
	for i := range s.classes {
		sc := &s.classes[i]
		b := sc.lpFront[lp.lpPos[i]]
		phiBest := b.profit - lambda*b.weight
		second := math.Inf(-1)
		for _, it := range sc.ipFront {
			if it.idx == b.idx {
				continue
			}
			if phi := it.profit - lambda*it.weight; phi > second {
				second = phi
			}
		}
		lp.lpItem[i] = b.idx
		lp.lpW[i] = b.weight
		lp.lpP[i] = b.profit
		lp.phiGap[i] = phiBest - second
	}
}

// pickIncumbent fills s.srch.inc and its canonical profit s.srch.ell:
// the warm-start hint (the previous optimum, index-adjusted across
// edits — after a small edit usually a near-optimal floor, which is
// what shrinks the warm core) when valid, else the cached-frontier
// HEU. Returns whether the HEU was run (so Solve can lazily try it as
// a better floor only when the hint leaves a large core, instead of
// paying the O(n + U) greedy on every warm re-solve).
func (s *Solver) pickIncumbent() (ranHEU bool, err error) {
	cs := &s.srch
	n := len(s.classes)
	cs.ell = math.Inf(-1)
	if s.prevValid && len(s.prevChoice) == n {
		if p, w, err := s.evalInto(s.prevChoice); err == nil && w <= s.capacity+1e-12 {
			copy(cs.inc, s.prevChoice)
			cs.ell = p
			return false, nil
		}
	}
	if err := s.raiseFloorHEU(); err != nil {
		return true, err
	}
	return true, nil
}

// raiseFloorHEU runs the cached-frontier HEU and, when it beats the
// current incumbent, promotes it to s.srch.inc / s.srch.ell. With no
// incumbent yet (cold solve), it is the incumbent.
func (s *Solver) raiseFloorHEU() error {
	cs := &s.srch
	n := len(s.classes)
	s.heu.pos = growInts(s.heu.pos, n)
	s.heu.choice = growInts(s.heu.choice, n)
	if !heuRun(s.fronts, s.capacity, s.heu.pos, s.heu.choice, &s.heu.h) {
		if cs.ell > math.Inf(-1) {
			return nil // keep the existing incumbent
		}
		return ErrInfeasible
	}
	p, _, err := s.evalInto(s.heu.choice)
	if err != nil {
		return err
	}
	if p > cs.ell {
		copy(cs.inc, s.heu.choice)
		cs.ell = p
	}
	return nil
}

// buildFixedSuffixes fills fixedSufP/W[c] = Σ of dual-best profit /
// weight over fixed classes with index ≥ c, and sufAllP/W[c] = the
// same sums over every class ≥ c (math sums, pruning only).
func (s *Solver) buildFixedSuffixes() {
	cs := &s.srch
	n := len(s.classes)
	cs.fixedSufP = growFloats(cs.fixedSufP, n+1)
	cs.fixedSufW = growFloats(cs.fixedSufW, n+1)
	cs.sufAllP = growFloats(cs.sufAllP, n+1)
	cs.sufAllW = growFloats(cs.sufAllW, n+1)
	cs.fixedSufP[n] = 0
	cs.fixedSufW[n] = 0
	cs.sufAllP[n] = 0
	cs.sufAllW[n] = 0
	for c := n - 1; c >= 0; c-- {
		p, w := cs.fixedSufP[c+1], cs.fixedSufW[c+1]
		if !cs.inCore[c] {
			p += s.lp.lpP[c]
			w += s.lp.lpW[c]
		}
		cs.fixedSufP[c] = p
		cs.fixedSufW[c] = w
		cs.sufAllP[c] = cs.sufAllP[c+1] + s.lp.lpP[c]
		cs.sufAllW[c] = cs.sufAllW[c+1] + s.lp.lpW[c]
	}
}

// buildCoreBounds prepares the suffix LP bound tables over the core:
// base (lightest-item) suffix sums, exact merged upgrade lists per
// depth within the maxSuffixEntries budget, and the full-core list
// used as a superset bound for shallower depths.
func (s *Solver) buildCoreBounds() {
	cs := &s.srch
	K := len(cs.coreIdx)
	cs.coreBaseP = growFloats(cs.coreBaseP, K+1)
	cs.coreBaseW = growFloats(cs.coreBaseW, K+1)
	cs.coreBaseP[K] = 0
	cs.coreBaseW[K] = 0
	for k := K - 1; k >= 0; k-- {
		sc := &s.classes[cs.coreIdx[k]]
		cs.coreBaseP[k] = cs.coreBaseP[k+1] + sc.lpFront[0].profit
		cs.coreBaseW[k] = cs.coreBaseW[k+1] + sc.minW
	}

	cs.segOff = growInts(cs.segOff, K+1)
	cs.segCnt = growInts(cs.segCnt, K+1)
	cs.cumOff = growInts(cs.cumOff, K+1)
	cs.rawDW = cs.rawDW[:0]
	cs.rawDP = cs.rawDP[:0]
	cs.rawEff = cs.rawEff[:0]
	cs.cumW = cs.cumW[:0]
	cs.cumP = cs.cumP[:0]

	// Depth K: empty suffix.
	cs.segOff[K] = 0
	cs.segCnt[K] = 0
	cs.cumOff[K] = 0
	cs.cumW = append(cs.cumW, 0)
	cs.cumP = append(cs.cumP, 0)
	kStop := K
	for k := K - 1; k >= 0; k-- {
		ci := cs.coreIdx[k]
		clsUps := len(s.classes[ci].lpFront) - 1
		newCnt := cs.segCnt[k+1] + clsUps
		if len(cs.rawDW)+newCnt > maxSuffixEntries {
			break
		}
		off := len(cs.rawDW)
		prevOff, prevCnt := cs.segOff[k+1], cs.segCnt[k+1]
		j := 1
		cu, hasCu := s.classUpgradeAt(ci, j)
		pi := 0
		for pi < prevCnt || hasCu {
			if hasCu && (pi >= prevCnt || cu.eff > cs.rawEff[prevOff+pi]) {
				cs.rawDW = append(cs.rawDW, cu.dw)
				cs.rawDP = append(cs.rawDP, cu.dp)
				cs.rawEff = append(cs.rawEff, cu.eff)
				j++
				cu, hasCu = s.classUpgradeAt(ci, j)
			} else {
				cs.rawDW = append(cs.rawDW, cs.rawDW[prevOff+pi])
				cs.rawDP = append(cs.rawDP, cs.rawDP[prevOff+pi])
				cs.rawEff = append(cs.rawEff, cs.rawEff[prevOff+pi])
				pi++
			}
		}
		cs.segOff[k] = off
		cs.segCnt[k] = newCnt
		cs.cumOff[k] = len(cs.cumW)
		cs.cumW = append(cs.cumW, 0)
		cs.cumP = append(cs.cumP, 0)
		accW, accP := 0.0, 0.0
		for t := 0; t < newCnt; t++ {
			accW += cs.rawDW[off+t]
			accP += cs.rawDP[off+t]
			cs.cumW = append(cs.cumW, accW)
			cs.cumP = append(cs.cumP, accP)
		}
		kStop = k
	}
	cs.kStop = kStop

	cs.fullCumW = append(cs.fullCumW[:0], 0)
	cs.fullCumP = append(cs.fullCumP[:0], 0)
	if kStop > 0 {
		accW, accP := 0.0, 0.0
		for _, u := range s.ups {
			if !cs.inCore[u.class] {
				continue
			}
			accW += u.dw
			accP += u.dp
			cs.fullCumW = append(cs.fullCumW, accW)
			cs.fullCumP = append(cs.fullCumP, accP)
		}
	}
}

// ubCore returns an upper bound on the profit attainable by core
// classes at depths ≥ k within residual capacity rem: every class at
// its lightest hull item plus the greedy fractional fill over the
// suffix upgrade list (exact for k ≥ kStop, superset otherwise).
func (cs *coreSearch) ubCore(k int, rem float64) float64 {
	rem -= cs.coreBaseW[k]
	if rem < 0 {
		return math.Inf(-1)
	}
	var cw, cp []float64
	if k >= cs.kStop {
		o, l := cs.cumOff[k], cs.segCnt[k]+1
		cw, cp = cs.cumW[o:o+l], cs.cumP[o:o+l]
	} else {
		cw, cp = cs.fullCumW, cs.fullCumP
	}
	lo, hi := 0, len(cw)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if cw[mid] <= rem {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	profit := cs.coreBaseP[k] + cp[lo]
	if lo+1 < len(cw) {
		dw := cw[lo+1] - cw[lo]
		dp := cp[lo+1] - cp[lo]
		if frac := rem - cw[lo]; frac > 0 && dw > 0 {
			profit += dp * frac / dw
		}
	}
	return profit
}

// sweepCore runs the dominance-based sweep over the core classes in
// ascending class order (Pisinger's MCKNAP scheme adapted to real
// weights): level k holds the Pareto-undominated canonical prefixes
// through every class before coreIdx[k]. Each level branches one core
// class over its IP frontier, extends each prefix element-wise through
// the fixed classes up to the next core class (canonical accumulation
// — identical float rounding on identical paths regardless of which
// classes happen to be in the core), prunes by the lightest-completion
// weight and the suffix LP bound against the incumbent floor ℓ, and
// collapses the survivors to the (weight, profit) skyline.
//
// Dominance keeps bit-identity intact: a state can only be discarded
// in favour of one with strictly higher canonical profit at no more
// weight (then the discarded state achieves less than the optimum
// wherever the keeper is feasible), equal profit at strictly less
// weight, or an identical (weight, profit) pair on a lexicographically
// earlier path — in every case the surviving choice is a function of
// the instance alone, not of the incumbent or the core composition.
func (s *Solver) sweepCore() {
	cs := &s.srch
	n := len(s.classes)
	K := len(cs.coreIdx)

	cs.stW = cs.stW[:0]
	cs.stP = cs.stP[:0]
	cs.stParent = cs.stParent[:0]
	cs.stItem = cs.stItem[:0]

	// Root: canonical prefix over the fixed classes before the first
	// core class.
	p0, w0 := 0.0, 0.0
	for c := 0; c < cs.coreIdx[0]; c++ {
		p0 += s.lp.lpP[c]
		w0 += s.lp.lpW[c]
	}
	cs.stW = append(cs.stW, w0)
	cs.stP = append(cs.stP, p0)
	cs.stParent = append(cs.stParent, -1)
	cs.stItem = append(cs.stItem, -1)

	// Progressive floor: any prefix whose all-dual-best completion
	// fits (with a margin dominating float slop) is a feasible integer
	// solution, so its math profit is a valid lower bound ≤ the
	// optimum; pruning against it can never cut an achiever. Seed it
	// with the root's completion.
	cs.floorLB = math.Inf(-1)
	if w0+cs.sufAllW[cs.coreIdx[0]] <= s.capacity-1e-9 {
		cs.floorLB = p0 + cs.sufAllP[cs.coreIdx[0]]
	}

	bestParent, bestItem := -1, -1
	lo, hi := 0, 1
	for k := 0; k < K; k++ {
		ci := cs.coreIdx[k]
		front := s.classes[ci].ipFront
		nci := n
		if k+1 < K {
			nci = cs.coreIdx[k+1]
		}
		last := k+1 == K

		cs.chW = cs.chW[:0]
		cs.chP = cs.chP[:0]
		cs.chParent = cs.chParent[:0]
		cs.chItem = cs.chItem[:0]
		for si := lo; si < hi; si++ {
			pw, pp := cs.stW[si], cs.stP[si]
			for fi := range front {
				it := &front[fi]
				w1 := pw + it.weight
				// Lightest-completion weight guard. The frontier is
				// weight-ascending, so the first failure ends the class.
				if w1+cs.fixedSufW[ci+1]+cs.coreBaseW[k+1] > s.capacity+1e-9 {
					break
				}
				p1 := pp + it.profit
				floor := cs.ell
				if cs.floorLB > floor {
					floor = cs.floorLB
				}
				if cs.bestProfit > floor {
					floor = cs.bestProfit
				}
				// Suffix LP bound against the floor (ℓ-slack pruning
				// never cuts an achiever of the final maximum).
				ub := cs.ubCore(k+1, s.capacity-w1-cs.fixedSufW[ci+1])
				if p1+cs.fixedSufP[ci+1]+ub < floor-cs.eps {
					continue
				}
				// Canonical element-wise extension through the fixed
				// classes before the next core class (or the tail).
				for c := ci + 1; c < nci; c++ {
					p1 += s.lp.lpP[c]
					w1 += s.lp.lpW[c]
				}
				if last {
					// Leaf: canonical acceptance, strict improvement
					// only, generation order = lexicographic order.
					if w1 <= s.capacity+1e-12 && p1 > cs.bestProfit {
						cs.bestProfit = p1
						cs.bestWeight = w1
						cs.found = true
						bestParent, bestItem = si, it.idx
					}
					continue
				}
				if w1+cs.sufAllW[nci] <= s.capacity-1e-9 {
					if lb := p1 + cs.sufAllP[nci]; lb > cs.floorLB {
						cs.floorLB = lb
					}
				}
				cs.chW = append(cs.chW, w1)
				cs.chP = append(cs.chP, p1)
				cs.chParent = append(cs.chParent, int32(si))
				cs.chItem = append(cs.chItem, int32(it.idx))
			}
		}
		if last {
			break
		}
		nCh := len(cs.chW)
		if cs.states+nCh > maxCoreStates {
			cs.aborted = true
			return
		}
		if nCh == 0 {
			// No feasible-looking extension survives; the incumbent
			// fallback in Solve covers this (it can only happen when
			// the floor already equals the optimum).
			return
		}
		// Dominance sweep: sort a permutation by (weight asc, profit
		// desc, generation asc) and keep the strict profit skyline.
		cs.chIdx = growInts(cs.chIdx, nCh)
		cs.chKeep = growBools(cs.chKeep, nCh)
		for i := 0; i < nCh; i++ {
			cs.chIdx[i] = i
			cs.chKeep[i] = false
		}
		sortChildren(cs)
		bestP := math.Inf(-1)
		for _, idx := range cs.chIdx {
			if cs.chP[idx] > bestP {
				cs.chKeep[idx] = true
				bestP = cs.chP[idx]
			}
		}
		// Append survivors in generation order, preserving the
		// lexicographic invariant for the next level.
		lo = len(cs.stW)
		for i := 0; i < nCh; i++ {
			if !cs.chKeep[i] {
				continue
			}
			cs.stW = append(cs.stW, cs.chW[i])
			cs.stP = append(cs.stP, cs.chP[i])
			cs.stParent = append(cs.stParent, cs.chParent[i])
			cs.stItem = append(cs.stItem, cs.chItem[i])
		}
		hi = len(cs.stW)
		cs.states = hi
	}

	if !cs.found {
		return
	}
	// Reconstruct the best leaf: fixed classes take their dual-best
	// item, core classes walk the parent chain.
	for c := 0; c < n; c++ {
		if !cs.inCore[c] {
			cs.bestChoice[c] = s.lp.lpItem[c]
		}
	}
	cs.bestChoice[cs.coreIdx[K-1]] = bestItem
	si := bestParent
	for level := K - 1; level > 0; level-- {
		cs.bestChoice[cs.coreIdx[level-1]] = int(cs.stItem[si])
		si = int(cs.stParent[si])
	}
}
