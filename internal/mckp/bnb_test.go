package mckp

import (
	"math"
	"testing"

	"rtoffload/internal/stats"
)

func TestSolveBnBMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(2718)
	for trial := 0; trial < 400; trial++ {
		in := randInstance(rng, 7, 6)
		bf, errBF := SolveBruteForce(in)
		bnb, errBnB := SolveBnB(in)
		if (errBF == nil) != (errBnB == nil) {
			t.Fatalf("trial %d: feasibility disagrees: brute=%v bnb=%v", trial, errBF, errBnB)
		}
		if errBF != nil {
			continue
		}
		// BnB is exact (no quantization): profits must match.
		if math.Abs(bnb.Profit-bf.Profit) > 1e-9 {
			t.Fatalf("trial %d: BnB %g ≠ optimum %g", trial, bnb.Profit, bf.Profit)
		}
		if !bnb.FitsCapacity(in) {
			t.Fatalf("trial %d: BnB overweight %g", trial, bnb.Weight)
		}
	}
}

func TestSolveBnBNeverBelowHEU(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 200; trial++ {
		in := randInstance(rng, 12, 8)
		if !in.Feasible() {
			continue
		}
		heu, err := SolveHEU(in)
		if err != nil {
			t.Fatal(err)
		}
		bnb, err := SolveBnB(in)
		if err != nil {
			t.Fatal(err)
		}
		if bnb.Profit < heu.Profit-1e-9 {
			t.Fatalf("trial %d: BnB %g below its HEU seed %g", trial, bnb.Profit, heu.Profit)
		}
	}
}

func TestSolveBnBExactOnHairlineWeights(t *testing.T) {
	// Weights the DP grid cannot represent exactly: BnB accepts the
	// exact-fit solution, quantized DP may conservatively reject the
	// top item.
	in := inst(1,
		[][2]float64{{1.0 / 3, 1}, {2.0 / 3, 5}},
		[][2]float64{{1.0 / 3, 1}},
	)
	s, err := SolveBnB(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Profit != 6 {
		t.Fatalf("profit %g, want 6 (exact fit 2/3 + 1/3)", s.Profit)
	}
}

func TestSolveBnBInfeasible(t *testing.T) {
	in := inst(1, [][2]float64{{0.7, 1}}, [][2]float64{{0.7, 1}})
	if _, err := SolveBnB(in); err != ErrInfeasible {
		t.Fatalf("err = %v", err)
	}
	if _, err := SolveBnB(&Instance{Capacity: 1}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func BenchmarkSolveBnB30x10(b *testing.B) {
	rng := stats.NewRNG(1)
	in := &Instance{Capacity: 1}
	for i := 0; i < 30; i++ {
		c := Class{}
		for j := 0; j < 10; j++ {
			c.Items = append(c.Items, Item{Weight: rng.Uniform(0, 0.2), Profit: rng.Uniform(0, 1)})
		}
		in.Classes = append(in.Classes, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveBnB(in); err != nil {
			b.Fatal(err)
		}
	}
}
