package mckp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Solver is a persistent, incremental, exact MCKP solver implementing
// the Dudzinski–Walukiewicz core method the paper cites for its
// offloading decision manager:
//
//  1. per class, the IP-dominance frontier and LP frontier (upper
//     convex hull) are cached and recomputed only for classes that
//     change — mirroring dbf.Analyzer's O(1) swap pattern;
//  2. every Solve runs the LP relaxation by the Zemel/Dyer greedy over
//     a globally efficiency-sorted upgrade pool (maintained
//     incrementally across class edits by filtered merges), yielding
//     the dual multiplier λ and dual bound D;
//  3. classes whose pseudo-profit gap φ̂ᵢ − φᵢ(second best) exceeds
//     the optimality gap D − incumbent are *fixed* to their dual-best
//     item (reduced-cost fixing); the rest form the core;
//  4. a dominance-based sweep restricted to the core (Pisinger's
//     MCKNAP scheme adapted to real-valued weights) finds the
//     optimum: core classes are merged one at a time into a Pareto
//     frontier of (weight, profit) prefixes, pruned by suffix LP
//     bounds over merged core upgrade lists. All search state lives
//     in reused arenas, so steady-state re-solves are allocation-free.
//
// The sweep is *canonical*: core classes are processed in ascending
// class order with profit and weight accumulated element-wise in
// class-index order along each path (identical float rounding on
// identical paths, however the core is composed), the best leaf is
// replaced only on strictly greater canonical profit, pruning
// thresholds carry an eps slack scaled to the instance's profit mass
// so no potential achiever of the final maximum is ever cut, and
// dominance discards a prefix only for a strictly better one, a
// lighter equal-profit one, or an identical (weight, profit) pair on
// a lexicographically earlier path. The previous optimum is used
// purely as a warm-start lower bound for pruning, which cannot change
// the returned argmax — so an incremental re-solve returns a Solution
// bit-identical to a from-scratch solve of the same instance (choice
// vector, profit, and weight), as the differential fuzz target
// FuzzMCKPSolverAgreement checks. The lone exception is a sweep that
// overruns maxCoreStates, which falls back to the best solution seen;
// real offloading instances stay orders of magnitude below the cap.
//
// A Solver is not safe for concurrent use.
type Solver struct {
	capacity float64
	classes  []solverClass

	// Materialized instance view and per-class LP-frontier views,
	// refreshed on every mutation; handed to the cold solvers
	// (SolveBnB and friends) and the cached HEU.
	view   Instance
	fronts [][]frontierItem

	// Global upgrade pool sorted by (eff desc, class asc, pos asc),
	// built lazily on the first Solve and maintained incrementally by
	// O(|ups|) filtered merges on class edits. ups and upsTmp are a
	// double buffer: merges write into the spare and swap.
	//
	//rtlint:arena
	ups []solverUpgrade
	//rtlint:arena
	upsTmp   []solverUpgrade
	upsValid bool

	// Warm-start hint: the choice vector of the previous optimum,
	// index-adjusted across structural edits. Used only as an initial
	// pruning bound, never as the returned answer.
	prevChoice []int
	prevValid  bool

	//rtlint:arena
	lp lpScratch
	//rtlint:arena
	srch coreSearch
	//rtlint:arena
	heu heuScratch
	//rtlint:arena
	dp dpArena

	solChoice []int // storage behind the returned Solution.Choice
}

// solverClass caches the per-class preprocessing.
type solverClass struct {
	label   string
	items   []Item
	ipFront []frontierItem // IP-dominance frontier (weight asc)
	lpFront []frontierItem // convex-hull subset of ipFront
	minW    float64        // lightest item weight (= lpFront[0].weight)
	maxAbsP float64        // max |profit| over items, for eps scaling
}

// solverUpgrade is one hull step of one class in the global pool.
type solverUpgrade struct {
	class, pos int
	dw, dp     float64
	eff        float64
}

func upLess(a, b solverUpgrade) bool {
	if a.eff != b.eff {
		return a.eff > b.eff
	}
	if a.class != b.class {
		return a.class < b.class
	}
	return a.pos < b.pos
}

type upSlice []solverUpgrade

func (s upSlice) Len() int           { return len(s) }
func (s upSlice) Less(i, j int) bool { return upLess(s[i], s[j]) }
func (s upSlice) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// lpScratch holds the per-solve LP/dual state (sized to the class
// count, reused).
type lpScratch struct {
	lpPos  []int     // greedy hull position per class
	lpItem []int     // dual-best item index per class (φ-argmax)
	lpW    []float64 // weight of that item
	lpP    []float64 // profit of that item
	phiGap []float64 // φ̂ − second-best φ; +Inf for single-item classes
}

// heuScratch holds the cached-frontier HEU state.
type heuScratch struct {
	pos    []int
	choice []int
	h      upgradeHeap
}

// NewSolver returns an empty Solver with the given capacity. Classes
// are added with Append/Insert.
func NewSolver(capacity float64) (*Solver, error) {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("mckp: invalid capacity %g", capacity)
	}
	return &Solver{capacity: capacity}, nil
}

// NewSolverFrom builds a Solver preloaded with in's classes. The items
// are copied; in is not retained.
func NewSolverFrom(in *Instance) (*Solver, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	s := &Solver{capacity: in.Capacity}
	s.classes = make([]solverClass, len(in.Classes))
	for i, c := range in.Classes {
		s.classes[i].set(c.Label, c.Items)
	}
	s.refreshViews()
	return s, nil
}

// Len returns the number of classes.
func (s *Solver) Len() int { return len(s.classes) }

// Capacity returns the knapsack capacity.
func (s *Solver) Capacity() float64 { return s.capacity }

// Instance returns a read-only view of the solver's current instance.
// The view aliases internal buffers: it is valid until the next
// mutating call and must not be modified.
func (s *Solver) Instance() *Instance { return &s.view }

// Reset removes all classes, keeping allocated scratch for reuse.
func (s *Solver) Reset() {
	s.classes = s.classes[:0]
	s.ups = s.ups[:0]
	s.upsValid = false
	s.prevChoice = s.prevChoice[:0]
	s.prevValid = false
	s.refreshViews()
}

// Append adds a class at index Len().
func (s *Solver) Append(c Class) error {
	if err := validateClass(len(s.classes), c.Label, c.Items); err != nil {
		return err
	}
	if len(s.classes) < cap(s.classes) {
		// Reslice instead of append so a slot recycled by Remove keeps
		// its buffers for set() to reuse.
		s.classes = s.classes[:len(s.classes)+1]
	} else {
		s.classes = append(s.classes, solverClass{})
	}
	s.classes[len(s.classes)-1].set(c.Label, c.Items)
	if s.upsValid {
		s.mergeClassUps(len(s.classes) - 1)
	}
	if s.prevValid {
		// Extend the hint with the new class's lightest item.
		s.prevChoice = append(s.prevChoice, s.classes[len(s.classes)-1].ipFront[0].idx)
	}
	s.refreshViews()
	return nil
}

// Insert adds a class at index i, shifting later classes up.
func (s *Solver) Insert(i int, c Class) error {
	if i < 0 || i > len(s.classes) {
		return fmt.Errorf("mckp: insert index %d out of range [0,%d]", i, len(s.classes))
	}
	if err := validateClass(i, c.Label, c.Items); err != nil {
		return err
	}
	s.classes = append(s.classes, solverClass{})
	copy(s.classes[i+1:], s.classes[i:])
	s.classes[i] = solverClass{}
	s.classes[i].set(c.Label, c.Items)
	if s.upsValid {
		s.insertClassUps(i)
	}
	if s.prevValid {
		s.prevChoice = append(s.prevChoice, 0)
		copy(s.prevChoice[i+1:], s.prevChoice[i:])
		s.prevChoice[i] = s.classes[i].ipFront[0].idx
	}
	s.refreshViews()
	return nil
}

// Remove deletes class i, shifting later classes down.
func (s *Solver) Remove(i int) error {
	if i < 0 || i >= len(s.classes) {
		return fmt.Errorf("mckp: remove index %d out of range [0,%d)", i, len(s.classes))
	}
	// Recycle the removed class's buffers at the tail slot.
	removed := s.classes[i]
	copy(s.classes[i:], s.classes[i+1:])
	s.classes[len(s.classes)-1] = removed
	s.classes = s.classes[:len(s.classes)-1]
	if s.upsValid {
		s.removeClassUps(i)
	}
	if s.prevValid {
		s.prevChoice = append(s.prevChoice[:i], s.prevChoice[i+1:]...)
	}
	s.refreshViews()
	return nil
}

// Swap replaces class i wholesale (label and items).
func (s *Solver) Swap(i int, c Class) error {
	return s.replace(i, c.Label, c.Items)
}

// Update replaces class i's items, keeping its label.
func (s *Solver) Update(i int, items []Item) error {
	if i < 0 || i >= len(s.classes) {
		return fmt.Errorf("mckp: update index %d out of range [0,%d)", i, len(s.classes))
	}
	return s.replace(i, s.classes[i].label, items)
}

func (s *Solver) replace(i int, label string, items []Item) error {
	if i < 0 || i >= len(s.classes) {
		return fmt.Errorf("mckp: update index %d out of range [0,%d)", i, len(s.classes))
	}
	if err := validateClass(i, label, items); err != nil {
		return err
	}
	s.classes[i].set(label, items)
	if s.upsValid {
		s.mergeClassUps(i)
	}
	if s.prevValid && s.prevChoice[i] >= len(items) {
		s.prevChoice[i] = s.classes[i].ipFront[0].idx
	}
	s.refreshViews()
	return nil
}

// validateClass mirrors Instance.Validate's per-class checks.
func validateClass(i int, label string, items []Item) error {
	if len(items) == 0 {
		return fmt.Errorf("mckp: class %d (%s) has no items", i, label)
	}
	for j, it := range items {
		if it.Weight < 0 || math.IsNaN(it.Weight) || math.IsInf(it.Weight, 0) {
			return fmt.Errorf("mckp: class %d item %d has invalid weight %g", i, j, it.Weight)
		}
		if math.IsNaN(it.Profit) || math.IsInf(it.Profit, 0) {
			return fmt.Errorf("mckp: class %d item %d has invalid profit %g", i, j, it.Profit)
		}
	}
	return nil
}

// set recomputes the class's cached preprocessing from items, reusing
// the class's own buffers.
func (sc *solverClass) set(label string, items []Item) {
	sc.label = label
	sc.items = append(sc.items[:0], items...)
	sc.ipFront = ipFrontierInto(sc.ipFront, sc.items)
	sc.lpFront = lpFrontierInto(sc.lpFront[:0], sc.ipFront)
	sc.minW = sc.lpFront[0].weight
	maxAbs := 0.0
	for _, it := range sc.items {
		if a := math.Abs(it.Profit); a > maxAbs {
			maxAbs = a
		}
	}
	sc.maxAbsP = maxAbs
}

// refreshViews rebuilds the materialized Instance and frontier views
// (O(n) pointer copies, no allocation at steady state).
func (s *Solver) refreshViews() {
	s.view.Capacity = s.capacity
	s.view.Classes = s.view.Classes[:0]
	s.fronts = s.fronts[:0]
	for i := range s.classes {
		sc := &s.classes[i]
		s.view.Classes = append(s.view.Classes, Class{Label: sc.label, Items: sc.items})
		s.fronts = append(s.fronts, sc.lpFront)
	}
}

// classUpgradeAt returns class ci's j-th hull upgrade (j ≥ 1), with
// the same arithmetic as nextUpgrade so cached and cold frontiers
// agree bit-for-bit.
func (s *Solver) classUpgradeAt(ci, j int) (solverUpgrade, bool) {
	f := s.classes[ci].lpFront
	if j < 1 || j >= len(f) {
		return solverUpgrade{}, false
	}
	a, b := f[j-1], f[j]
	dw := b.weight - a.weight
	dp := b.profit - a.profit
	return solverUpgrade{class: ci, pos: j, dw: dw, dp: dp, eff: dp / dw}, true
}

// buildUps sorts the full upgrade pool from scratch (first Solve, or
// after Reset). The (eff desc, class asc, pos asc) key is a strict
// total order, so any comparison sort yields the same array the
// incremental merges maintain.
func (s *Solver) buildUps() {
	s.ups = s.ups[:0]
	for ci := range s.classes {
		for j := 1; ; j++ {
			u, ok := s.classUpgradeAt(ci, j)
			if !ok {
				break
			}
			s.ups = append(s.ups, u)
		}
	}
	sort.Sort(upSlice(s.ups))
	s.upsValid = true
}

// mergeClassUps rebuilds the pool after class ci's hull changed: one
// pass dropping ci's old entries while merging its new ones in order.
func (s *Solver) mergeClassUps(ci int) {
	tmp := s.upsTmp[:0]
	j := 1
	next, hasNext := s.classUpgradeAt(ci, j)
	for _, u := range s.ups {
		if u.class == ci {
			continue
		}
		for hasNext && upLess(next, u) {
			tmp = append(tmp, next)
			j++
			next, hasNext = s.classUpgradeAt(ci, j)
		}
		tmp = append(tmp, u)
	}
	for hasNext {
		tmp = append(tmp, next)
		j++
		next, hasNext = s.classUpgradeAt(ci, j)
	}
	s.ups, s.upsTmp = tmp, s.ups[:0]
}

// insertClassUps renumbers classes ≥ i up by one and merges the new
// class i's upgrades, in a single order-preserving pass (the renumber
// is monotone, so relative order of surviving entries is unchanged).
func (s *Solver) insertClassUps(i int) {
	tmp := s.upsTmp[:0]
	j := 1
	next, hasNext := s.classUpgradeAt(i, j)
	for _, u := range s.ups {
		if u.class >= i {
			u.class++
		}
		for hasNext && upLess(next, u) {
			tmp = append(tmp, next)
			j++
			next, hasNext = s.classUpgradeAt(i, j)
		}
		tmp = append(tmp, u)
	}
	for hasNext {
		tmp = append(tmp, next)
		j++
		next, hasNext = s.classUpgradeAt(i, j)
	}
	s.ups, s.upsTmp = tmp, s.ups[:0]
}

// removeClassUps drops class i's entries and renumbers later classes
// down, in place (write index never passes read index).
func (s *Solver) removeClassUps(i int) {
	out := s.ups[:0]
	for _, u := range s.ups {
		if u.class == i {
			continue
		}
		if u.class > i {
			u.class--
		}
		out = append(out, u)
	}
	s.ups = out
}

// evalInto computes the canonical class-order profit and weight of a
// full choice vector — the same accumulation order as
// Instance.Evaluate, without its allocation.
func (s *Solver) evalInto(choice []int) (profit, weight float64, err error) {
	if len(choice) != len(s.classes) {
		return 0, 0, fmt.Errorf("mckp: choice length %d, want %d", len(choice), len(s.classes)) //rtlint:allow hotalloc -- invalid-input diagnostic, not the steady state
	}
	for i, j := range choice {
		if j < 0 || j >= len(s.classes[i].items) {
			return 0, 0, fmt.Errorf("mckp: class %d choice %d out of range", i, j) //rtlint:allow hotalloc -- invalid-input diagnostic, not the steady state
		}
		it := s.classes[i].items[j]
		profit += it.Profit
		weight += it.Weight
	}
	return profit, weight, nil
}

// SolveHEU runs the HEU-OE greedy on the cached frontiers. The loop
// and tie-breaking replicate the package-level SolveHEU exactly, so
// the returned choice (and hence profit and weight) is bit-identical
// to SolveHEU on the equivalent instance — only the per-call frontier
// construction and allocations are gone. The returned Solution's
// Choice aliases solver scratch, valid until the next call.
func (s *Solver) SolveHEU() (Solution, error) {
	n := len(s.classes)
	if n == 0 {
		return Solution{}, errors.New("mckp: no classes")
	}
	s.heu.pos = growInts(s.heu.pos, n)
	s.heu.choice = growInts(s.heu.choice, n)
	if !heuRun(s.fronts, s.capacity, s.heu.pos, s.heu.choice, &s.heu.h) {
		return Solution{}, ErrInfeasible
	}
	profit, weight, err := s.evalInto(s.heu.choice)
	if err != nil {
		return Solution{}, err
	}
	s.solChoice = append(s.solChoice[:0], s.heu.choice...)
	return Solution{Choice: s.solChoice, Profit: profit, Weight: weight}, nil
}

// SolveDP runs the quantized dynamic program out of the solver's
// arena; the recurrence is identical to the package-level SolveDP, so
// answers match bit-for-bit while steady-state grid allocations drop
// to zero.
func (s *Solver) SolveDP(resolution int) (Solution, error) {
	if len(s.classes) == 0 {
		return Solution{}, errors.New("mckp: no classes")
	}
	sol, err := solveDPInto(&s.view, resolution, &s.dp)
	if err != nil {
		return Solution{}, err
	}
	// Re-home the choice into solver storage so callers see the same
	// aliasing contract as Solve/SolveHEU.
	s.solChoice = append(s.solChoice[:0], sol.Choice...)
	sol.Choice = s.solChoice
	return sol, nil
}
