package mckp

import (
	"math"
	"testing"

	"rtoffload/internal/stats"
)

// fuzzDPRes is the capacity grid used for the SolveDP cross-check.
const fuzzDPRes = 100000

// quantizeWeights returns a copy of in with every weight rounded up to
// the fuzzDPRes capacity grid — exactly the instance SolveDP solves.
// Profits are unchanged, so the DP's profit must match an exact solve
// of the quantized instance to float tolerance (no fudge factor: the
// quantization loss lives in the instance, not in the comparison).
func quantizeWeights(in *Instance) *Instance {
	q := &Instance{Capacity: in.Capacity, Classes: make([]Class, len(in.Classes))}
	for i, c := range in.Classes {
		items := make([]Item, len(c.Items))
		for j, it := range c.Items {
			cells := math.Ceil(it.Weight / in.Capacity * fuzzDPRes)
			items[j] = Item{Weight: cells / fuzzDPRes * in.Capacity, Profit: it.Profit}
		}
		q.Classes[i] = Class{Label: c.Label, Items: items}
	}
	return q
}

// fuzzInstance builds a deterministic random instance with exactly n
// classes of m items (capacity 1, the offloading shape).
func fuzzInstance(rng *stats.RNG, n, m int) *Instance {
	in := &Instance{Capacity: 1}
	for i := 0; i < n; i++ {
		c := Class{}
		for j := 0; j < m; j++ {
			c.Items = append(c.Items, Item{
				Weight: rng.Uniform(0, 0.8),
				Profit: rng.Uniform(0, 10),
			})
		}
		in.Classes = append(in.Classes, c)
	}
	return in
}

// FuzzMCKPSolverAgreement cross-checks every solver on one random
// instance — all agree on feasibility; the exact solvers (Solver,
// SolveBnB, SolveBruteForce when small) agree on profit to 1e-9;
// SolveDP agrees within its quantization tolerance; SolveHEU never
// exceeds the optimum — then drives the persistent Solver through a
// churn stream and requires every warm re-solve to be bit-identical
// to a cold from-scratch solve of the same instance.
func FuzzMCKPSolverAgreement(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(4), uint8(5))
	f.Add(uint64(7), uint8(1), uint8(1), uint8(0))
	f.Add(uint64(42), uint8(8), uint8(6), uint8(9))
	f.Add(uint64(1234), uint8(12), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, mRaw, churnRaw uint8) {
		n := int(nRaw)%10 + 1
		m := int(mRaw)%8 + 1
		churn := int(churnRaw) % 12
		rng := stats.NewRNG(stats.DeriveSeed(seed, 402))
		in := fuzzInstance(rng, n, m)

		warm, err := NewSolverFrom(in)
		if err != nil {
			t.Fatalf("NewSolverFrom: %v", err)
		}
		exact, errExact := warm.Solve()
		bnb, errBnB := SolveBnB(in)
		dp, errDP := SolveDP(in, fuzzDPRes)
		heu, errHEU := SolveHEU(in)
		if (errExact != nil) != (errBnB != nil) || (errExact != nil) != (errHEU != nil) {
			t.Fatalf("feasibility disagreement: solver=%v bnb=%v heu=%v", errExact, errBnB, errHEU)
		}
		// The DP sees up-rounded weights, so it may conservatively call
		// a knife-edge instance infeasible; it must never accept one
		// the exact solvers reject, and when it answers it must match
		// an exact solve of the quantized instance it actually solved.
		if errDP == nil && errExact != nil {
			t.Fatalf("dp feasible but exact solver infeasible: %v", errExact)
		}
		bnbQ, errBnBQ := SolveBnB(quantizeWeights(in))
		if (errDP != nil) != (errBnBQ != nil) {
			t.Fatalf("quantized feasibility disagreement: dp=%v bnbQ=%v", errDP, errBnBQ)
		}
		if errDP == nil && math.Abs(dp.Profit-bnbQ.Profit) > 1e-9 {
			t.Fatalf("dp %.12f vs exact-on-quantized %.12f", dp.Profit, bnbQ.Profit)
		}
		if errExact == nil {
			if math.Abs(exact.Profit-bnb.Profit) > 1e-9 {
				t.Fatalf("solver %.12f vs bnb %.12f", exact.Profit, bnb.Profit)
			}
			if errDP == nil && dp.Profit > exact.Profit+1e-9 {
				t.Fatalf("dp %.12f exceeds optimum %.12f", dp.Profit, exact.Profit)
			}
			if heu.Profit > exact.Profit+1e-9 {
				t.Fatalf("heu %.12f exceeds optimum %.12f", heu.Profit, exact.Profit)
			}
			if !exact.FitsCapacity(in) {
				t.Fatalf("solver solution weight %f over capacity", exact.Weight)
			}
			if n <= 5 && m <= 6 {
				bf, errBF := SolveBruteForce(in)
				if errBF != nil {
					t.Fatalf("brute force infeasible after solver succeeded: %v", errBF)
				}
				if math.Abs(exact.Profit-bf.Profit) > 1e-9 {
					t.Fatalf("solver %.12f vs brute %.12f", exact.Profit, bf.Profit)
				}
			}
		}

		randItems := func() []Item {
			k := rng.IntN(6) + 1
			items := make([]Item, k)
			for j := range items {
				items[j] = Item{Weight: rng.Uniform(0, 0.8), Profit: rng.Uniform(0, 10)}
			}
			return items
		}
		for step := 0; step < churn; step++ {
			cur := warm.Len()
			switch op := rng.IntN(5); {
			case op == 0 && cur > 0:
				if err := warm.Update(rng.IntN(cur), randItems()); err != nil {
					t.Fatalf("step %d update: %v", step, err)
				}
			case op == 1 && cur > 0:
				if err := warm.Swap(rng.IntN(cur), Class{Items: randItems()}); err != nil {
					t.Fatalf("step %d swap: %v", step, err)
				}
			case op == 2 || cur == 0:
				if err := warm.Append(Class{Items: randItems()}); err != nil {
					t.Fatalf("step %d append: %v", step, err)
				}
			case op == 3:
				if err := warm.Insert(rng.IntN(cur+1), Class{Items: randItems()}); err != nil {
					t.Fatalf("step %d insert: %v", step, err)
				}
			case cur > 1:
				if err := warm.Remove(rng.IntN(cur)); err != nil {
					t.Fatalf("step %d remove: %v", step, err)
				}
			}
			cold, err := NewSolverFrom(warm.Instance())
			if err != nil {
				t.Fatalf("step %d cold build: %v", step, err)
			}
			sw, errW := warm.Solve()
			sc, errC := cold.Solve()
			if (errW != nil) != (errC != nil) {
				t.Fatalf("step %d: warm err %v, cold err %v", step, errW, errC)
			}
			if errW != nil {
				continue
			}
			if len(sw.Choice) != len(sc.Choice) {
				t.Fatalf("step %d: choice lengths %d vs %d", step, len(sw.Choice), len(sc.Choice))
			}
			for i := range sw.Choice {
				if sw.Choice[i] != sc.Choice[i] {
					t.Fatalf("step %d: choice[%d] warm %d vs cold %d", step, i, sw.Choice[i], sc.Choice[i])
				}
			}
			if math.Float64bits(sw.Profit) != math.Float64bits(sc.Profit) || math.Float64bits(sw.Weight) != math.Float64bits(sc.Weight) {
				t.Fatalf("step %d: warm (%.17g, %.17g) vs cold (%.17g, %.17g)", step, sw.Profit, sw.Weight, sc.Profit, sc.Weight)
			}
		}
	})
}
