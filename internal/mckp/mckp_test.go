package mckp

import (
	"math"
	"testing"
	"testing/quick"

	"rtoffload/internal/stats"
)

// inst builds an instance from (weight, profit) pair lists.
func inst(capacity float64, classes ...[][2]float64) *Instance {
	in := &Instance{Capacity: capacity}
	for _, c := range classes {
		cl := Class{}
		for _, wp := range c {
			cl.Items = append(cl.Items, Item{Weight: wp[0], Profit: wp[1]})
		}
		in.Classes = append(in.Classes, cl)
	}
	return in
}

// randInstance generates a random feasible-or-not instance for
// cross-checking solvers.
func randInstance(rng *stats.RNG, maxClasses, maxItems int) *Instance {
	n := rng.IntN(maxClasses) + 1
	in := &Instance{Capacity: 1}
	for i := 0; i < n; i++ {
		m := rng.IntN(maxItems) + 1
		c := Class{}
		for j := 0; j < m; j++ {
			c.Items = append(c.Items, Item{
				Weight: rng.Uniform(0, 0.8),
				Profit: rng.Uniform(0, 10),
			})
		}
		in.Classes = append(in.Classes, c)
	}
	return in
}

func TestValidate(t *testing.T) {
	ok := inst(1, [][2]float64{{0.5, 1}})
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := []*Instance{
		{Capacity: 0, Classes: []Class{{Items: []Item{{}}}}},
		{Capacity: math.NaN(), Classes: []Class{{Items: []Item{{}}}}},
		{Capacity: 1},
		{Capacity: 1, Classes: []Class{{}}},
		inst(1, [][2]float64{{-0.1, 1}}),
		inst(1, [][2]float64{{math.NaN(), 1}}),
		inst(1, [][2]float64{{0.1, math.Inf(1)}}),
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestEvaluate(t *testing.T) {
	in := inst(1, [][2]float64{{0.2, 1}, {0.5, 3}}, [][2]float64{{0.3, 2}})
	s, err := in.Evaluate([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.Profit != 5 || math.Abs(s.Weight-0.8) > 1e-12 {
		t.Errorf("Evaluate = %+v", s)
	}
	if !s.FitsCapacity(in) {
		t.Error("0.8 should fit capacity 1")
	}
	if _, err := in.Evaluate([]int{0}); err == nil {
		t.Error("short choice accepted")
	}
	if _, err := in.Evaluate([]int{2, 0}); err == nil {
		t.Error("out-of-range choice accepted")
	}
}

func TestFrontiers(t *testing.T) {
	items := []Item{
		{Weight: 0.5, Profit: 5},   // on hull
		{Weight: 0.3, Profit: 1},   // on hull (lightest after pruning? see below)
		{Weight: 0.4, Profit: 0.5}, // IP-dominated by (0.3, 1)
		{Weight: 0.1, Profit: 1},   // dominates (0.3,1): lighter, equal profit
		{Weight: 0.45, Profit: 2},  // LP-dominated: below segment (0.1,1)-(0.5,5)
	}
	ip := ipFrontier(items)
	// Expect (0.1,1) then (0.45,2) then (0.5,5); (0.3,1) killed by equal
	// profit at lower weight, (0.4,0.5) killed outright.
	if len(ip) != 3 || ip[0].weight != 0.1 || ip[1].weight != 0.45 || ip[2].weight != 0.5 {
		t.Fatalf("ipFrontier = %+v", ip)
	}
	lp := lpFrontier(ip)
	if len(lp) != 2 || lp[0].weight != 0.1 || lp[1].weight != 0.5 {
		t.Fatalf("lpFrontier = %+v", lp)
	}
}

func TestFrontierEfficiencyDecreasesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		in := randInstance(rng, 1, 12)
		front := lpFrontier(ipFrontier(in.Classes[0].Items))
		prevEff := math.Inf(1)
		for k := 1; k < len(front); k++ {
			dw := front[k].weight - front[k-1].weight
			dp := front[k].profit - front[k-1].profit
			if dw <= 0 || dp <= 0 {
				return false
			}
			eff := dp / dw
			if eff >= prevEff+1e-12 {
				return false
			}
			prevEff = eff
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveDPKnownOptimum(t *testing.T) {
	// Class 0: local (0.3, 1) vs offload (0.6, 5).
	// Class 1: local (0.3, 1) vs offload (0.5, 4).
	// Capacity 1: cannot take both offloads (1.1); best is 0.6+0.3 → 6? vs 0.3+0.5 → 5; so choose class0 offload + class1 local = 6.
	in := inst(1,
		[][2]float64{{0.3, 1}, {0.6, 5}},
		[][2]float64{{0.3, 1}, {0.5, 4}},
	)
	s, err := SolveDP(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Profit != 6 {
		t.Fatalf("DP profit = %g, want 6 (choice %v)", s.Profit, s.Choice)
	}
	if s.Choice[0] != 1 || s.Choice[1] != 0 {
		t.Fatalf("DP choice = %v, want [1 0]", s.Choice)
	}
}

func TestSolveDPExactFit(t *testing.T) {
	// Weights summing exactly to capacity must be accepted.
	in := inst(1, [][2]float64{{0.5, 1}}, [][2]float64{{0.5, 2}})
	s, err := SolveDP(in, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Profit != 3 {
		t.Fatalf("profit = %g", s.Profit)
	}
}

func TestSolveDPInfeasible(t *testing.T) {
	in := inst(1, [][2]float64{{0.7, 1}}, [][2]float64{{0.7, 1}})
	if _, err := SolveDP(in, 0); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if _, err := SolveHEU(in); err != ErrInfeasible {
		t.Fatalf("HEU err = %v", err)
	}
	if _, err := SolveBruteForce(in); err != ErrInfeasible {
		t.Fatalf("brute err = %v", err)
	}
	if _, err := SolveGreedy(in); err != ErrInfeasible {
		t.Fatalf("greedy err = %v", err)
	}
	if _, err := UpperBoundLP(in); err != ErrInfeasible {
		t.Fatalf("LP err = %v", err)
	}
	if in.Feasible() {
		t.Error("Feasible() = true for infeasible instance")
	}
}

func TestSolveDPMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(1234)
	for trial := 0; trial < 300; trial++ {
		in := randInstance(rng, 6, 5)
		bf, errBF := SolveBruteForce(in)
		dp, errDP := SolveDP(in, 100000)
		if (errBF == nil) != (errDP == nil) {
			t.Fatalf("trial %d: feasibility disagrees: brute=%v dp=%v", trial, errBF, errDP)
		}
		if errBF != nil {
			continue
		}
		// DP quantization (rounding weights up at resolution 1e-5) may
		// lose a sliver of profit but never exceeds the optimum.
		if dp.Profit > bf.Profit+1e-9 {
			t.Fatalf("trial %d: DP profit %g exceeds optimum %g", trial, dp.Profit, bf.Profit)
		}
		if dp.Profit < bf.Profit-0.02*math.Max(1, bf.Profit) {
			t.Fatalf("trial %d: DP profit %g far below optimum %g", trial, dp.Profit, bf.Profit)
		}
		if !dp.FitsCapacity(in) {
			t.Fatalf("trial %d: DP solution overweight: %g", trial, dp.Weight)
		}
	}
}

func TestSolversSandwichedByLPBound(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 300; trial++ {
		in := randInstance(rng, 8, 6)
		if !in.Feasible() {
			continue
		}
		lp, err := UpperBoundLP(in)
		if err != nil {
			t.Fatal(err)
		}
		heu, err := SolveHEU(in)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := SolveDP(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := SolveGreedy(in)
		if err != nil {
			t.Fatal(err)
		}
		for name, s := range map[string]Solution{"HEU": heu, "DP": dp, "greedy": gr} {
			if s.Profit > lp+1e-9 {
				t.Fatalf("trial %d: %s profit %g exceeds LP bound %g", trial, name, s.Profit, lp)
			}
			if !s.FitsCapacity(in) {
				t.Fatalf("trial %d: %s solution overweight %g > %g", trial, name, s.Weight, in.Capacity)
			}
		}
		if dp.Profit < heu.Profit-1e-9 {
			// DP at default resolution may only lose O(n/resolution)
			// capacity worth of profit; a full HEU win signals a bug.
			gap := (heu.Profit - dp.Profit) / math.Max(1, heu.Profit)
			if gap > 0.02 {
				t.Fatalf("trial %d: DP %g clearly below HEU %g", trial, dp.Profit, heu.Profit)
			}
		}
	}
}

func TestHEUNearOptimalOnFrontierInstances(t *testing.T) {
	// For instances whose classes are already LP frontiers with one
	// heavy high-profit item, HEU's greedy matches brute force often;
	// just assert a quality floor of 80 % on random instances.
	rng := stats.NewRNG(7)
	worst := 1.0
	for trial := 0; trial < 200; trial++ {
		in := randInstance(rng, 5, 4)
		bf, err := SolveBruteForce(in)
		if err != nil {
			continue
		}
		heu, err := SolveHEU(in)
		if err != nil {
			t.Fatal(err)
		}
		if bf.Profit > 0 {
			q := heu.Profit / bf.Profit
			if q < worst {
				worst = q
			}
		}
	}
	if worst < 0.5 {
		t.Fatalf("HEU worst-case quality %g below 0.5 of optimum", worst)
	}
}

func TestSolveBruteForceTooLarge(t *testing.T) {
	in := &Instance{Capacity: 1}
	for i := 0; i < 30; i++ {
		c := Class{}
		for j := 0; j < 10; j++ {
			c.Items = append(c.Items, Item{Weight: 0.01, Profit: 1})
		}
		in.Classes = append(in.Classes, c)
	}
	if _, err := SolveBruteForce(in); err == nil {
		t.Fatal("10^30 assignments accepted")
	}
}

func TestDeterminism(t *testing.T) {
	rng := stats.NewRNG(55)
	in := randInstance(rng, 8, 6)
	if !in.Feasible() {
		t.Skip("unlucky instance")
	}
	a, _ := SolveHEU(in)
	b, _ := SolveHEU(in)
	for i := range a.Choice {
		if a.Choice[i] != b.Choice[i] {
			t.Fatalf("HEU non-deterministic at class %d", i)
		}
	}
	c, _ := SolveDP(in, 0)
	d, _ := SolveDP(in, 0)
	for i := range c.Choice {
		if c.Choice[i] != d.Choice[i] {
			t.Fatalf("DP non-deterministic at class %d", i)
		}
	}
}

func TestZeroWeightItems(t *testing.T) {
	// Items with zero weight (e.g. a free local choice) must work.
	in := inst(1,
		[][2]float64{{0, 1}, {0.9, 9}},
		[][2]float64{{0, 1}, {0.9, 2}},
	)
	s, err := SolveDP(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Profit != 10 {
		t.Fatalf("DP profit = %g, want 10", s.Profit)
	}
	h, err := SolveHEU(in)
	if err != nil {
		t.Fatal(err)
	}
	if h.Profit != 10 {
		t.Fatalf("HEU profit = %g, want 10", h.Profit)
	}
}

func TestSingleClassPicksBestFitting(t *testing.T) {
	in := inst(1, [][2]float64{{0.2, 1}, {0.8, 3}, {1.5, 99}})
	for name, solve := range map[string]func(*Instance) (Solution, error){
		"DP":     func(i *Instance) (Solution, error) { return SolveDP(i, 0) },
		"brute":  SolveBruteForce,
		"greedy": SolveGreedy,
	} {
		s, err := solve(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Choice[0] != 1 {
			t.Errorf("%s chose item %d, want 1", name, s.Choice[0])
		}
	}
	// HEU is allowed to miss this one: (0.8, 3) is LP-dominated by the
	// segment from (0.2, 1) to (1.5, 99), so the frontier greedy never
	// considers it — the documented weakness of the heuristic. It must
	// still return a feasible assignment.
	h, err := SolveHEU(in)
	if err != nil {
		t.Fatal(err)
	}
	if !h.FitsCapacity(in) {
		t.Fatalf("HEU overweight: %g", h.Weight)
	}
	if h.Choice[0] != 0 {
		t.Errorf("HEU chose item %d; expected the documented frontier pick 0", h.Choice[0])
	}
}

func TestLPBoundTightOnIntegralOptimum(t *testing.T) {
	// When the greedy fill exactly exhausts frontier upgrades without a
	// fractional item, the LP bound equals the integral optimum.
	in := inst(1,
		[][2]float64{{0.2, 1}, {0.5, 4}},
		[][2]float64{{0.2, 1}, {0.5, 3}},
	)
	lp, err := UpperBoundLP(in)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := SolveBruteForce(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lp-bf.Profit) > 1e-9 {
		t.Fatalf("LP bound %g, integral optimum %g", lp, bf.Profit)
	}
}

func BenchmarkSolveDP30x10(b *testing.B) {
	rng := stats.NewRNG(1)
	in := &Instance{Capacity: 1}
	for i := 0; i < 30; i++ {
		c := Class{}
		for j := 0; j < 10; j++ {
			c.Items = append(c.Items, Item{Weight: rng.Uniform(0, 0.2), Profit: rng.Uniform(0, 1)})
		}
		in.Classes = append(in.Classes, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveDP(in, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveHEU30x10(b *testing.B) {
	rng := stats.NewRNG(1)
	in := &Instance{Capacity: 1}
	for i := 0; i < 30; i++ {
		c := Class{}
		for j := 0; j < 10; j++ {
			c.Items = append(c.Items, Item{Weight: rng.Uniform(0, 0.2), Profit: rng.Uniform(0, 1)})
		}
		in.Classes = append(in.Classes, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveHEU(in); err != nil {
			b.Fatal(err)
		}
	}
}
