package mckp

// SolveHEU solves the instance approximately with the HEU-OE greedy
// heuristic (Khan 1998, ch. 4; the classic MCKP greedy of Zemel /
// Sinha–Zoltners):
//
//  1. per class, prune IP-dominated items and keep the LP frontier
//     (upper convex hull of weight→profit), along which incremental
//     efficiencies Δp/Δw strictly decrease;
//  2. start from each class's lightest frontier item;
//  3. repeatedly apply the single frontier upgrade with the globally
//     best incremental efficiency that still fits the residual
//     capacity, until no upgrade fits.
//
// The running time is O(Σ|items| log n). The result is feasible
// whenever the instance is feasible; otherwise ErrInfeasible.
func SolveHEU(in *Instance) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(in.Classes)
	fronts := make([][]frontierItem, n)
	for i, c := range in.Classes {
		fronts[i] = lpFrontier(ipFrontier(c.Items))
	}
	pos := make([]int, n) // current frontier position per class
	choice := make([]int, n)
	var h upgradeHeap
	if !heuRun(fronts, in.Capacity, pos, choice, &h) {
		return Solution{}, ErrInfeasible
	}
	return in.Evaluate(choice)
}

// heuRun executes the HEU-OE greedy loop over per-class LP frontiers.
// pos and choice must have one entry per class; h is reused as heap
// scratch. It reports false when even the all-lightest assignment does
// not fit. On success, choice holds the selected item index per class.
func heuRun(fronts [][]frontierItem, capacity float64, pos, choice []int, h *upgradeHeap) bool {
	weight := 0.0
	for i := range fronts {
		f0 := fronts[i][0]
		pos[i] = 0
		choice[i] = f0.idx
		weight += f0.weight
	}
	if weight > capacity+1e-12 {
		return false
	}

	// Max-heap of candidate upgrades, keyed by incremental efficiency.
	*h = (*h)[:0]
	for i := range fronts {
		if u, ok := nextUpgrade(fronts[i], pos[i], i); ok {
			h.push(u)
		}
	}
	for h.Len() > 0 {
		u := h.pop()
		if u.pos != pos[u.class]+1 {
			continue // stale entry
		}
		if weight+u.dw > capacity+1e-12 {
			// This upgrade does not fit. Because per-class efficiencies
			// decrease along the frontier, a later upgrade of the same
			// class is never better, but it can be *lighter only if
			// frontier weights increased* — they strictly increase, so
			// the whole class is exhausted. Drop it.
			continue
		}
		pos[u.class]++
		f := fronts[u.class][pos[u.class]]
		choice[u.class] = f.idx
		weight += u.dw
		if nu, ok := nextUpgrade(fronts[u.class], pos[u.class], u.class); ok {
			h.push(nu)
		}
	}
	return true
}

// upgrade moves class `class` from frontier position pos−1 to pos.
type upgrade struct {
	class, pos int
	dw, dp     float64
	eff        float64
}

func nextUpgrade(front []frontierItem, cur, class int) (upgrade, bool) {
	if cur+1 >= len(front) {
		return upgrade{}, false
	}
	a, b := front[cur], front[cur+1]
	dw := b.weight - a.weight
	dp := b.profit - a.profit
	eff := dp / dw // frontier weights strictly increase ⇒ dw > 0
	return upgrade{class: class, pos: cur + 1, dw: dw, dp: dp, eff: eff}, true
}

// upgradeHeap is a typed binary max-heap (by Less) over upgrades. The
// push/pop methods replicate container/heap's sift algorithms exactly
// — same swap sequence, hence bit-identical pop order to the previous
// container/heap implementation — without the per-Push interface
// boxing allocation, so heap scratch can live in a solver arena.
type upgradeHeap []upgrade

func (h upgradeHeap) Len() int { return len(h) }
func (h upgradeHeap) Less(i, j int) bool {
	if h[i].eff != h[j].eff {
		return h[i].eff > h[j].eff
	}
	return h[i].class < h[j].class // determinism on ties
}
func (h upgradeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *upgradeHeap) push(u upgrade) {
	*h = append(*h, u)
	h.up(len(*h) - 1)
}

func (h *upgradeHeap) pop() upgrade {
	n := len(*h) - 1
	h.Swap(0, n)
	h.down(0, n)
	u := (*h)[n]
	*h = (*h)[:n]
	return u
}

func (h upgradeHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		j = i
	}
}

func (h upgradeHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.Less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		i = j
	}
}

// UpperBoundLP returns the LP-relaxation optimum of the instance: the
// greedy fill as in SolveHEU but allowing the final, non-fitting
// upgrade fractionally. It is an upper bound on every integral
// solution's profit, used to sandwich solver answers in tests.
func UpperBoundLP(in *Instance) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	n := len(in.Classes)
	fronts := make([][]frontierItem, n)
	pos := make([]int, n)
	weight, profit := 0.0, 0.0
	for i, c := range in.Classes {
		fronts[i] = lpFrontier(ipFrontier(c.Items))
		weight += fronts[i][0].weight
		profit += fronts[i][0].profit
	}
	if weight > in.Capacity+1e-12 {
		return 0, ErrInfeasible
	}
	var h upgradeHeap
	for i := range fronts {
		if u, ok := nextUpgrade(fronts[i], pos[i], i); ok {
			h.push(u)
		}
	}
	for h.Len() > 0 {
		u := h.pop()
		if u.pos != pos[u.class]+1 {
			continue
		}
		rem := in.Capacity - weight
		if u.dw > rem {
			if rem > 0 {
				profit += u.eff * rem
			}
			// In the LP optimum at most one variable is fractional; the
			// greedy may stop at the first non-fitting upgrade because
			// efficiencies are globally sorted.
			return profit, nil
		}
		pos[u.class]++
		weight += u.dw
		profit += u.dp
		if nu, ok := nextUpgrade(fronts[u.class], pos[u.class], u.class); ok {
			h.push(nu)
		}
	}
	return profit, nil
}
