package mckp

import (
	"math"
	"sort"
)

// SolveBnB solves the instance exactly by depth-first branch-and-bound
// with LP-relaxation pruning. Unlike SolveDP it needs no capacity
// quantization — answers are exact for real-valued weights — and on
// typical offloading instances (strong LP bounds, few classes that
// matter) it visits a tiny fraction of the assignment tree. Classes
// are branched in decreasing order of their benefit spread, items
// within a class in decreasing profit, so good incumbents appear
// early.
//
// Worst-case time is exponential; MaxBnBNodes caps the search and the
// solver falls back to the best incumbent found. The incumbent is
// seeded with SolveHEU alone — near-optimal on offloading instances
// and far cheaper than the 10k-cell SolveDP grid this solver used to
// run unconditionally just to seed itself. SolveDP is consulted only
// when the node cap was actually hit (the incumbent is then unproven,
// whether or not it improved on the HEU seed), so a capped search
// still returns at least the quantized-DP answer; an uncapped search
// returns the true optimum without ever paying for the DP.
func SolveBnB(in *Instance) (Solution, error) {
	return solveBnBNodeCap(in, MaxBnBNodes)
}

// solveBnBNodeCap is SolveBnB with an explicit node budget, split out
// so tests can force the capped-search DP fallback.
func solveBnBNodeCap(in *Instance, nodeCap int) (Solution, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, err
	}
	if !in.Feasible() {
		return Solution{}, ErrInfeasible
	}

	// Seed the incumbent with HEU (feasible whenever the instance is).
	best, err := SolveHEU(in)
	if err != nil {
		return Solution{}, err
	}

	n := len(in.Classes)
	// Branch order: classes by decreasing profit spread.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	spread := make([]float64, n)
	for i, c := range in.Classes {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, it := range c.Items {
			if it.Profit < lo {
				lo = it.Profit
			}
			if it.Profit > hi {
				hi = it.Profit
			}
		}
		spread[i] = hi - lo
	}
	sort.SliceStable(order, func(a, b int) bool { return spread[order[a]] > spread[order[b]] })

	// Per-class item orders (decreasing profit) and suffix structures:
	// minimum weight and LP frontier of the remaining classes for
	// bounding.
	itemOrder := make([][]int, n)
	for i, c := range in.Classes {
		io := make([]int, len(c.Items))
		for j := range io {
			io[j] = j
		}
		items := c.Items
		sort.SliceStable(io, func(a, b int) bool {
			if items[io[a]].Profit != items[io[b]].Profit {
				return items[io[a]].Profit > items[io[b]].Profit
			}
			return items[io[a]].Weight < items[io[b]].Weight
		})
		itemOrder[i] = io
	}
	// suffixMinW[k] = Σ over order[k:] of each class's lightest item.
	suffixMinW := make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		minW := math.Inf(1)
		for _, it := range in.Classes[order[k]].Items {
			if it.Weight < minW {
				minW = it.Weight
			}
		}
		suffixMinW[k] = suffixMinW[k+1] + minW
	}
	// Suffix LP bound structures: for every depth k, the upgrades of
	// the remaining classes pre-sorted by efficiency with prefix sums,
	// so each bound evaluation is a binary search instead of a sort.
	fronts := make([][]frontierItem, n)
	for i, c := range in.Classes {
		fronts[i] = lpFrontier(ipFrontier(c.Items))
	}
	baseP := make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		baseP[k] = baseP[k+1] + fronts[order[k]][0].profit
	}
	type upg struct{ dw, dp float64 }
	suffixUps := make([][]upg, n+1)
	suffixCumW := make([][]float64, n+1)
	suffixCumP := make([][]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		f := fronts[order[k]]
		merged := append([]upg(nil), suffixUps[k+1]...)
		for j := 1; j < len(f); j++ {
			merged = append(merged, upg{dw: f[j].weight - f[j-1].weight, dp: f[j].profit - f[j-1].profit})
		}
		sort.Slice(merged, func(a, b int) bool { return merged[a].dp*merged[b].dw > merged[b].dp*merged[a].dw })
		suffixUps[k] = merged
		cw := make([]float64, len(merged)+1)
		cp := make([]float64, len(merged)+1)
		for i, u := range merged {
			cw[i+1] = cw[i] + u.dw
			cp[i+1] = cp[i] + u.dp
		}
		suffixCumW[k] = cw
		suffixCumP[k] = cp
	}

	bnb := &bnbState{
		in:         in,
		order:      order,
		itemOrder:  itemOrder,
		suffixMinW: suffixMinW,
		baseP:      baseP,
		cumW:       suffixCumW,
		cumP:       suffixCumP,
		nodeCap:    nodeCap,
		choice:     make([]int, n),
		bestChoice: append([]int(nil), best.Choice...),
		bestProfit: best.Profit,
	}
	copy(bnb.choice, best.Choice)
	bnb.search(0, 0, 0)

	// A capped search may have been cut off before reaching the good
	// subtrees, so its incumbent is unproven — even one that improved
	// on the HEU seed can trail the quantized DP. Only then pay for the
	// DP and keep whichever answer is better.
	if bnb.nodes >= bnb.nodeCap {
		if dp, err := SolveDP(in, 0); err == nil && dp.Profit > bnb.bestProfit {
			bnb.bestProfit = dp.Profit
			copy(bnb.bestChoice, dp.Choice)
		}
	}

	sol, err := in.Evaluate(bnb.bestChoice)
	if err != nil {
		return Solution{}, err
	}
	return sol, nil
}

// MaxBnBNodes caps the branch-and-bound search.
const MaxBnBNodes = 2_000_000

type bnbState struct {
	in         *Instance
	order      []int
	itemOrder  [][]int
	suffixMinW []float64
	baseP      []float64
	cumW, cumP [][]float64

	nodeCap    int
	choice     []int
	bestChoice []int
	bestProfit float64
	nodes      int
}

// suffixLPBound returns an upper bound on the profit attainable from
// classes order[k:] within the residual capacity: each class takes its
// lightest frontier item, then the pre-sorted fractional upgrades.
//
// The suffix upgrade list merges upgrades of *all* remaining classes
// in one global efficiency order; because per-class efficiencies
// decrease along LP frontiers, the greedy fill over this list is the
// true LP optimum of the suffix.
func (s *bnbState) suffixLPBound(k int, residual float64) float64 {
	rem := residual - s.suffixMinW[k]
	if rem < 0 {
		return math.Inf(1) // handled by the min-weight pruning at branch time
	}
	cw, cp := s.cumW[k], s.cumP[k]
	// Largest prefix of upgrades fitting rem.
	lo, hi := 0, len(cw)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if cw[mid] <= rem {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	profit := s.baseP[k] + cp[lo]
	if lo+1 < len(cw) {
		dw := cw[lo+1] - cw[lo]
		dp := cp[lo+1] - cp[lo]
		if frac := rem - cw[lo]; frac > 0 && dw > 0 {
			profit += dp * frac / dw
		}
	}
	return profit
}

func (s *bnbState) search(k int, weight, profit float64) {
	if s.nodes >= s.nodeCap {
		return
	}
	s.nodes++
	if k == len(s.order) {
		if profit > s.bestProfit {
			s.bestProfit = profit
			copy(s.bestChoice, s.choice)
		}
		return
	}
	// Bound: current profit + LP bound of the suffix.
	if profit+s.suffixLPBound(k, s.in.Capacity-weight+1e-12) <= s.bestProfit+1e-12 {
		return
	}
	ci := s.order[k]
	items := s.in.Classes[ci].Items
	for _, j := range s.itemOrder[ci] {
		w := weight + items[j].Weight
		if w+s.suffixMinW[k+1] > s.in.Capacity+1e-12 {
			continue
		}
		s.choice[ci] = j
		s.search(k+1, w, profit+items[j].Profit)
	}
}
