package mckp_test

import (
	"fmt"

	"rtoffload/internal/mckp"
)

// ExampleSolveDP solves a two-task offloading instance: each class
// holds the local choice and one offload level; capacity 1 is the
// Theorem-3 budget.
func ExampleSolveDP() {
	in := &mckp.Instance{
		Capacity: 1,
		Classes: []mckp.Class{
			{Label: "τ1", Items: []mckp.Item{
				{Weight: 0.3, Profit: 1}, // local
				{Weight: 0.6, Profit: 5}, // offload
			}},
			{Label: "τ2", Items: []mckp.Item{
				{Weight: 0.3, Profit: 1},
				{Weight: 0.5, Profit: 4},
			}},
		},
	}
	sol, err := mckp.SolveDP(in, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("choice=%v profit=%g weight=%.1f\n", sol.Choice, sol.Profit, sol.Weight)
	// Output:
	// choice=[1 0] profit=6 weight=0.9
}

// ExampleSolveHEU runs the paper's fast heuristic on the same
// instance. It takes the single most efficient upgrade (τ2) and then
// cannot fit τ1's — one unit below the DP optimum of 6, illustrating
// the quality/runtime trade-off of §5.2.
func ExampleSolveHEU() {
	in := &mckp.Instance{
		Capacity: 1,
		Classes: []mckp.Class{
			{Items: []mckp.Item{{Weight: 0.3, Profit: 1}, {Weight: 0.6, Profit: 5}}},
			{Items: []mckp.Item{{Weight: 0.3, Profit: 1}, {Weight: 0.5, Profit: 4}}},
		},
	}
	sol, err := mckp.SolveHEU(in)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("profit=%g\n", sol.Profit)
	// Output:
	// profit=5
}
