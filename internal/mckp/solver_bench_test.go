package mckp

import (
	"fmt"
	"math"
	"testing"

	"rtoffload/internal/stats"
)

// fleetWeightSlots is the bandwidth granularity of the benchmark
// fleet: item weights land on a dyadic 1/8192 grid, mirroring the
// paper's discrete offloading levels r_{i,j} (a reserved share of the
// communication medium comes in slots, not arbitrary reals). Dyadic
// weights also keep prefix sums exact, so the solver's dominance
// sweep collapses equal-weight prefixes instead of drowning in
// float-distinct near-ties.
const fleetWeightSlots = 1 << 13

// fleetInstance builds an offloading-shaped MCKP instance: n task
// classes whose local items consume ~60% of the unit capacity in
// total (per-task weight O(1/n)), each with an m-step ladder of
// offloading levels trading extra bandwidth weight for QoC profit.
// The aggregate upgrade demand exceeds the headroom, so the knapsack
// constraint binds and the solver has real work to do.
func fleetInstance(rng *stats.RNG, n, m int) *Instance {
	in := &Instance{Capacity: 1, Classes: make([]Class, n)}
	for i := 0; i < n; i++ {
		w := rng.Uniform(0.2, 1.0) * 0.6 / float64(n)
		p := rng.Uniform(0, 1)
		items := make([]Item, m)
		for j := 0; j < m; j++ {
			items[j] = Item{Weight: math.Ceil(w*fleetWeightSlots) / fleetWeightSlots, Profit: p}
			w += rng.Uniform(0, 2.4) / float64(n*m) // uniform step, O(1/(n·m))
			p += rng.Uniform(0, 2)
		}
		in.Classes[i] = Class{Label: fmt.Sprintf("task-%d", i), Items: items}
	}
	return in
}

var fleetSizes = []struct{ n, m int }{
	{100, 8},
	{1000, 32},
	{5000, 64},
}

// BenchmarkMCKPCoreSolve measures a cold build+solve of the core
// solver at fleet scale (the <100ms @ 5000×64 acceptance headline).
func BenchmarkMCKPCoreSolve(b *testing.B) {
	for _, sz := range fleetSizes {
		b.Run(fmt.Sprintf("n%d_m%d", sz.n, sz.m), func(b *testing.B) {
			in := fleetInstance(stats.NewRNG(stats.DeriveSeed(403, uint64(sz.n))), sz.n, sz.m)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := NewSolverFrom(in)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMCKPCoreResolve measures the steady-state incremental
// path: one class swapped, then a warm re-solve reusing every arena
// (the ≥5×-faster-than-cold, zero-allocation acceptance criterion).
func BenchmarkMCKPCoreResolve(b *testing.B) {
	for _, sz := range fleetSizes {
		b.Run(fmt.Sprintf("n%d_m%d", sz.n, sz.m), func(b *testing.B) {
			rng := stats.NewRNG(stats.DeriveSeed(403, uint64(sz.n)))
			in := fleetInstance(rng, sz.n, sz.m)
			s, err := NewSolverFrom(in)
			if err != nil {
				b.Fatal(err)
			}
			// Pre-generate replacement ladders so the loop allocates
			// nothing of its own. They come from a second instance of
			// the same shape so their weights are O(1/n)-scaled. The
			// loop oscillates 64 classes between their original and
			// alternate ladders rather than accumulating donor copies:
			// unbounded drift would turn the fleet into duplicated
			// ladders, a degenerate instance that no longer resembles
			// the cold-solve baseline it is compared against.
			const churned = 64
			donor := fleetInstance(rng, churned, sz.m)
			alts := make([][]Item, churned)
			orig := make([][]Item, churned)
			for a := range alts {
				for j := range donor.Classes[a].Items {
					w := donor.Classes[a].Items[j].Weight * churned / float64(sz.n)
					donor.Classes[a].Items[j].Weight = math.Ceil(w*fleetWeightSlots) / fleetWeightSlots
				}
				alts[a] = donor.Classes[a].Items
				orig[a] = append([]Item(nil), in.Classes[a%sz.n].Items...)
			}
			next := func(i int) []Item {
				if (i/churned)%2 == 0 {
					return alts[i%churned]
				}
				return orig[i%churned]
			}
			if _, err := s.Solve(); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 2*churned; i++ { // warm all arenas
				if err := s.Update(i%churned%sz.n, next(i)); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Update(i%churned%sz.n, next(i)); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMCKPBaselineBnB is the pre-existing exact solver on the
// same instances (the ≥10× @ 1000×32 comparison baseline). 5000×64 is
// omitted: SolveBnB's O(n²·m) suffix tables alone make it minutes.
func BenchmarkMCKPBaselineBnB(b *testing.B) {
	for _, sz := range fleetSizes[:2] {
		b.Run(fmt.Sprintf("n%d_m%d", sz.n, sz.m), func(b *testing.B) {
			in := fleetInstance(stats.NewRNG(stats.DeriveSeed(403, uint64(sz.n))), sz.n, sz.m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SolveBnB(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMCKPBaselineDP is the quantized DP on the same instances.
func BenchmarkMCKPBaselineDP(b *testing.B) {
	for _, sz := range fleetSizes[:2] {
		b.Run(fmt.Sprintf("n%d_m%d", sz.n, sz.m), func(b *testing.B) {
			in := fleetInstance(stats.NewRNG(stats.DeriveSeed(403, uint64(sz.n))), sz.n, sz.m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SolveDP(in, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestFleetInstanceSolvable pins the benchmark generator: feasible,
// binding (LP wants more than capacity), and exactly solvable by the
// core solver at the headline size.
func TestFleetInstanceSolvable(t *testing.T) {
	for _, sz := range fleetSizes {
		in := fleetInstance(stats.NewRNG(stats.DeriveSeed(403, uint64(sz.n))), sz.n, sz.m)
		if !in.Feasible() {
			t.Fatalf("n=%d m=%d: generator produced infeasible instance", sz.n, sz.m)
		}
		s, err := NewSolverFrom(in)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := s.Solve()
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", sz.n, sz.m, err)
		}
		if !sol.FitsCapacity(in) {
			t.Fatalf("n=%d m=%d: solution over capacity", sz.n, sz.m)
		}
		if sol.Weight < 0.9 {
			t.Fatalf("n=%d m=%d: constraint not binding (weight %.3f)", sz.n, sz.m, sol.Weight)
		}
	}
}
