package rtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUnits(t *testing.T) {
	if Millisecond != 1000 {
		t.Fatalf("Millisecond = %d µs, want 1000", int64(Millisecond))
	}
	if Second != 1_000_000 {
		t.Fatalf("Second = %d µs, want 1e6", int64(Second))
	}
	if Minute != 60*Second {
		t.Fatalf("Minute = %d", int64(Minute))
	}
}

func TestConversions(t *testing.T) {
	cases := []struct {
		d    Duration
		ms   float64
		sec  float64
		usec int64
	}{
		{0, 0, 0, 0},
		{FromMillis(100), 100, 0.1, 100_000},
		{FromMicros(1500), 1.5, 0.0015, 1500},
		{FromSeconds(2), 2000, 2, 2_000_000},
		{FromMillisF(0.25), 0.25, 0.00025, 250},
		{FromMillisF(195.2814), 195.281, 0.195281, 195_281},
	}
	for _, c := range cases {
		if got := c.d.Micros(); got != c.usec {
			t.Errorf("%v.Micros() = %d, want %d", c.d, got, c.usec)
		}
		if got := c.d.Millis(); math.Abs(got-c.ms) > 1e-3 {
			t.Errorf("%v.Millis() = %g, want %g", c.d, got, c.ms)
		}
		if got := c.d.Seconds(); math.Abs(got-c.sec) > 1e-6 {
			t.Errorf("%v.Seconds() = %g, want %g", c.d, got, c.sec)
		}
	}
}

func TestFromSecondsRounds(t *testing.T) {
	// 1.0000004 s → 1000000.4 µs → rounds to 1000000.
	if got := FromSeconds(1.0000004); got != Second {
		t.Fatalf("FromSeconds(1.0000004) = %d, want %d", got, Second)
	}
	// 1.0000006 s rounds up.
	if got := FromSeconds(1.0000006); got != Second+1 {
		t.Fatalf("FromSeconds(1.0000006) = %d, want %d", got, Second+1)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{Second, "1s"},
		{10 * Second, "10s"},
		{FromMillis(250), "250ms"},
		{FromMicros(42), "42µs"},
		{FromMillisF(1.5), "1.5ms"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%d µs) = %q, want %q", int64(c.d), got, c.want)
		}
	}
	if got := Forever.String(); got != "∞" {
		t.Errorf("Forever.String() = %q", got)
	}
	if got := Instant(Second).String(); got != "1s" {
		t.Errorf("Instant(1s).String() = %q", got)
	}
}

func TestInstantArithmetic(t *testing.T) {
	t0 := Instant(FromMillis(10))
	t1 := t0.Add(FromMillis(5))
	if t1 != Instant(FromMillis(15)) {
		t.Fatalf("Add: got %v", t1)
	}
	if d := t1.Sub(t0); d != FromMillis(5) {
		t.Fatalf("Sub: got %v", d)
	}
	if d := t0.Sub(t1); d != -FromMillis(5) {
		t.Fatalf("negative Sub: got %v", d)
	}
}

func TestMinMax(t *testing.T) {
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Error("Min broken")
	}
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Error("Max broken")
	}
	if MinInstant(3, 4) != 3 || MaxInstant(3, 4) != 4 {
		t.Error("instant min/max broken")
	}
}

func TestGCDLCM(t *testing.T) {
	if g := GCD(12, 18); g != 6 {
		t.Errorf("GCD(12,18) = %d", g)
	}
	if g := GCD(0, 7); g != 7 {
		t.Errorf("GCD(0,7) = %d", g)
	}
	if l, ok := LCM(4, 6); !ok || l != 12 {
		t.Errorf("LCM(4,6) = %d,%v", l, ok)
	}
	if _, ok := LCM(0, 6); ok {
		t.Error("LCM(0,6) should fail")
	}
	// Overflow: two large coprime values.
	if _, ok := LCM(Duration(math.MaxInt64/2), Duration(math.MaxInt64/2-1)); ok {
		t.Error("LCM overflow not detected")
	}
}

func TestGCDProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := Duration(a), Duration(b)
		g := GCD(x, y)
		if x == 0 && y == 0 {
			return g == 0
		}
		return g > 0 && x%g == 0 && y%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLCMProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := Duration(a)+1, Duration(b)+1
		l, ok := LCM(x, y)
		return ok && l%x == 0 && l%y == 0 && l <= x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilFloorDiv(t *testing.T) {
	if q := CeilDiv(10, 3); q != 4 {
		t.Errorf("CeilDiv(10,3) = %d", q)
	}
	if q := CeilDiv(9, 3); q != 3 {
		t.Errorf("CeilDiv(9,3) = %d", q)
	}
	if q := CeilDiv(0, 3); q != 0 {
		t.Errorf("CeilDiv(0,3) = %d", q)
	}
	if q := CeilDiv(-5, 3); q != 0 {
		t.Errorf("CeilDiv(-5,3) = %d", q)
	}
	if q := FloorDiv(10, 3); q != 3 {
		t.Errorf("FloorDiv(10,3) = %d", q)
	}
	if q := FloorDiv(-1, 3); q != -1 {
		t.Errorf("FloorDiv(-1,3) = %d", q)
	}
	if q := FloorDiv(-3, 3); q != -1 {
		t.Errorf("FloorDiv(-3,3) = %d", q)
	}
}

func TestCeilFloorDivProperty(t *testing.T) {
	f := func(a int16, b uint8) bool {
		d := Duration(b) + 1
		x := Duration(a)
		fl, cl := FloorDiv(x, d), CeilDiv(x, d)
		if Duration(fl)*d > x || Duration(fl+1)*d <= x {
			return false
		}
		if x > 0 {
			return Duration(cl)*d >= x && Duration(cl-1)*d < x
		}
		return cl == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CeilDiv(1,0) did not panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestRatio(t *testing.T) {
	r := Ratio(FromMillis(1), FromMillis(3))
	if r.Cmp(Ratio(1, 3)) != 0 {
		t.Errorf("Ratio(1ms,3ms) = %v, want 1/3", r)
	}
	if d := FromMillis(2).Rat(); d.Cmp(Ratio(2000, 1)) != 0 {
		t.Errorf("Rat() = %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Ratio with zero denominator did not panic")
		}
	}()
	Ratio(1, 0)
}
