// Package rtime provides exact integer time arithmetic for real-time
// scheduling analysis.
//
// All scheduling quantities in this repository — worst-case execution
// times, periods, deadlines, response-time budgets, simulation clocks —
// are expressed as Duration or Instant values with microsecond
// resolution. Using a fixed integer unit keeps demand-bound-function
// arithmetic and deadline comparisons exact: two schedulability runs on
// the same task set always return the same verdict, independent of
// floating-point rounding.
//
// Duration is a span of time; Instant is a point on the simulation
// timeline (microseconds since the start of the schedule). The types
// are distinct so that the compiler rejects category errors such as
// adding two absolute deadlines.
package rtime

import (
	"fmt"
	"math"
	"math/big"
)

// Duration is a span of time in integer microseconds.
//
// The zero value is a zero-length span. Negative durations are
// representable (differences can be negative) but most constructors and
// models reject them explicitly.
type Duration int64

// Instant is an absolute point on the simulation timeline, measured in
// microseconds from schedule start (time zero).
type Instant int64

// Common duration units.
const (
	Microsecond Duration = 1
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Forever is a sentinel Instant later than any event a simulation can
// produce. It is used as "no pending event".
const Forever Instant = math.MaxInt64

// FromMillis converts a millisecond count to a Duration.
func FromMillis(ms int64) Duration { return Duration(ms) * Millisecond }

// FromMicros converts a microsecond count to a Duration.
func FromMicros(us int64) Duration { return Duration(us) }

// FromSeconds converts a floating-point second count to a Duration,
// rounding to the nearest microsecond.
func FromSeconds(s float64) Duration {
	return Duration(math.Round(s * float64(Second)))
}

// FromMillisF converts a floating-point millisecond count to a
// Duration, rounding to the nearest microsecond.
func FromMillisF(ms float64) Duration {
	return Duration(math.Round(ms * float64(Millisecond)))
}

// Micros reports d as integer microseconds.
func (d Duration) Micros() int64 { return int64(d) }

// Millis reports d as (possibly fractional) milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports d as (possibly fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration with an adaptive unit, e.g. "1.5ms",
// "250µs", "2s".
func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d%Second == 0:
		return fmt.Sprintf("%ds", int64(d/Second))
	case d > -Second && d < Second && d%Millisecond == 0:
		return fmt.Sprintf("%dms", int64(d/Millisecond))
	case d > -Millisecond && d < Millisecond:
		return fmt.Sprintf("%dµs", int64(d))
	case d%Millisecond == 0 && d < 10*Second && d > -10*Second:
		return fmt.Sprintf("%gms", d.Millis())
	default:
		return fmt.Sprintf("%gms", d.Millis())
	}
}

// String formats the instant as a duration offset from time zero.
func (t Instant) String() string {
	if t == Forever {
		return "∞"
	}
	return Duration(t).String()
}

// Add offsets the instant by d.
func (t Instant) Add(d Duration) Instant { return t + Instant(d) }

// Sub returns the span from u to t (t − u).
func (t Instant) Sub(u Instant) Duration { return Duration(t - u) }

// Min returns the smaller of two durations.
func Min(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of two durations.
func Max(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MinInstant returns the earlier of two instants.
func MinInstant(a, b Instant) Instant {
	if a < b {
		return a
	}
	return b
}

// MaxInstant returns the later of two instants.
func MaxInstant(a, b Instant) Instant {
	if a > b {
		return a
	}
	return b
}

// Rat returns the duration as an exact rational number of microseconds,
// for use in exact schedulability arithmetic.
func (d Duration) Rat() *big.Rat { return new(big.Rat).SetInt64(int64(d)) }

// Ratio returns the exact rational num/den of two durations.
// It panics if den is zero.
func Ratio(num, den Duration) *big.Rat {
	if den == 0 {
		panic("rtime: Ratio with zero denominator")
	}
	return big.NewRat(int64(num), int64(den))
}

// GCD returns the greatest common divisor of two non-negative
// durations. GCD(0, b) = b.
func GCD(a, b Duration) Duration {
	if a < 0 || b < 0 {
		panic("rtime: GCD of negative duration")
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of two positive durations and
// reports whether the computation stayed within int64 range.
func LCM(a, b Duration) (Duration, bool) {
	if a <= 0 || b <= 0 {
		return 0, false
	}
	g := GCD(a, b)
	q := a / g
	if int64(q) > math.MaxInt64/int64(b) {
		return 0, false
	}
	return q * b, true
}

// CeilDiv returns ⌈a/b⌉ for positive b.
func CeilDiv(a, b Duration) int64 {
	if b <= 0 {
		panic("rtime: CeilDiv with non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (int64(a) + int64(b) - 1) / int64(b)
}

// FloorDiv returns ⌊a/b⌋ for positive b and non-negative a.
func FloorDiv(a, b Duration) int64 {
	if b <= 0 {
		panic("rtime: FloorDiv with non-positive divisor")
	}
	if a < 0 {
		// Round toward negative infinity.
		return -((-int64(a) + int64(b) - 1) / int64(b))
	}
	return int64(a) / int64(b)
}
