package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Annotations is the module-wide view of the declaration-binding
// directives: which functions are hot-path roots, which struct fields
// are lock-guarded or arena scratch, and which functions transfer lock
// ownership across their signature.
type Annotations struct {
	// Hotpath holds the //rtlint:hotpath root functions.
	Hotpath map[*types.Func]bool
	// Guarded maps a struct field to the sibling mutex field that must
	// be held to touch it (//rtlint:guardedby <mutex>).
	Guarded map[*types.Var]*types.Var
	// Arena marks scratch-arena struct fields (//rtlint:arena).
	Arena map[*types.Var]bool
	// Holds maps a function to the lock paths its caller must hold,
	// e.g. "tn.mu" where tn is a parameter (//rtlint:holds tn.mu).
	Holds map[*types.Func][]string
	// Acquires maps a function to the mutex field name of its first
	// result that is held when the function returns without error
	// (//rtlint:acquires <mutex>).
	Acquires map[*types.Func]string
}

func newAnnotations() *Annotations {
	return &Annotations{
		Hotpath:  map[*types.Func]bool{},
		Guarded:  map[*types.Var]*types.Var{},
		Arena:    map[*types.Var]bool{},
		Holds:    map[*types.Func][]string{},
		Acquires: map[*types.Func]string{},
	}
}

// bindPackage resolves the annotation directives of one package to the
// declarations they document, marking each bound directive used and
// reporting annotations whose target cannot carry them (unknown mutex
// sibling, non-mutex guard, holds path that names no parameter). An
// annotation that binds to nothing at all is reported later by
// DirectiveSet.Problems.
func (a *Annotations) bindPackage(pkg *Package, ds *DirectiveSet, sink func(Diagnostic)) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch decl := n.(type) {
			case *ast.FuncDecl:
				a.bindFunc(pkg, ds, sink, decl)
			case *ast.StructType:
				a.bindStruct(pkg, ds, sink, decl)
			}
			return true
		})
	}
}

// declDirectives finds the annotation directives with the given verb
// that document a declaration: covering its first line (written
// directly above or trailing on the same line) or written anywhere in
// its doc comment.
func declDirectives(ds *DirectiveSet, fset *token.FileSet, verb string, declPos token.Pos, doc *ast.CommentGroup) []*directive {
	seen := map[*directive]bool{}
	var out []*directive
	add := func(pos token.Position) {
		for _, d := range ds.annotationsAt(verb, pos.Filename, pos.Line) {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	add(fset.Position(declPos))
	if doc != nil {
		for _, c := range doc.List {
			add(fset.Position(c.Pos()))
		}
	}
	return out
}

func (a *Annotations) bindFunc(pkg *Package, ds *DirectiveSet, sink func(Diagnostic), decl *ast.FuncDecl) {
	fn, _ := pkg.Info.Defs[decl.Name].(*types.Func)
	if fn == nil {
		return
	}
	report := func(d *directive, format string, args ...any) {
		d.used = true
		sink(directiveDiag(d.pos, format, args...))
	}
	for _, d := range declDirectives(ds, pkg.Fset, "hotpath", decl.Pos(), decl.Doc) {
		if decl.Body == nil {
			report(d, "rtlint:hotpath root %s has no body to analyze", fn.Name())
			continue
		}
		d.used = true
		a.Hotpath[fn] = true
	}
	for _, d := range declDirectives(ds, pkg.Fset, "holds", decl.Pos(), decl.Doc) {
		path := d.args[0]
		if err := checkHoldsPath(fn, path); err != "" {
			report(d, "rtlint:holds %s: %s", path, err)
			continue
		}
		d.used = true
		a.Holds[fn] = append(a.Holds[fn], path)
	}
	for _, d := range declDirectives(ds, pkg.Fset, "acquires", decl.Pos(), decl.Doc) {
		mutex := d.args[0]
		if err := checkAcquiresResult(fn, mutex); err != "" {
			report(d, "rtlint:acquires %s: %s", mutex, err)
			continue
		}
		d.used = true
		a.Acquires[fn] = mutex
	}
}

// checkHoldsPath validates a holds path of the form <param>.<mutex>:
// the first segment must name a parameter (or the receiver) of fn and
// the second a mutex field of its struct type.
func checkHoldsPath(fn *types.Func, path string) string {
	base, mutex, ok := cutLast(path, ".")
	if !ok {
		return "path must be <param>.<mutex>"
	}
	sig := fn.Type().(*types.Signature)
	var owner *types.Var
	if recv := sig.Recv(); recv != nil && recv.Name() == base {
		owner = recv
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); p.Name() == base {
			owner = p
		}
	}
	if owner == nil {
		return base + " names no parameter of " + fn.Name()
	}
	return lookupMutexField(owner.Type(), mutex)
}

// checkAcquiresResult validates that fn's first result is a struct (or
// pointer to one) with the named mutex field.
func checkAcquiresResult(fn *types.Func, mutex string) string {
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() == 0 {
		return fn.Name() + " returns nothing"
	}
	return lookupMutexField(sig.Results().At(0).Type(), mutex)
}

// lookupMutexField checks that t (after pointer stripping) is a struct
// with a sync.Mutex/sync.RWMutex field of the given name; it returns a
// problem description or "".
func lookupMutexField(t types.Type, name string) string {
	st := structUnder(t)
	if st == nil {
		return types.TypeString(t, nil) + " is not a struct type"
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != name {
			continue
		}
		if !isMutexType(f.Type()) {
			return name + " is not a sync.Mutex or sync.RWMutex field"
		}
		return ""
	}
	return name + " names no field of " + types.TypeString(t, nil)
}

func (a *Annotations) bindStruct(pkg *Package, ds *DirectiveSet, sink func(Diagnostic), st *ast.StructType) {
	report := func(d *directive, format string, args ...any) {
		d.used = true
		sink(directiveDiag(d.pos, format, args...))
	}
	for _, field := range st.Fields.List {
		doc := field.Doc
		if doc == nil {
			doc = field.Comment
		}
		for _, name := range field.Names {
			fv, _ := pkg.Info.Defs[name].(*types.Var)
			if fv == nil {
				continue
			}
			for _, d := range declDirectives(ds, pkg.Fset, "arena", name.Pos(), doc) {
				d.used = true
				a.Arena[fv] = true
			}
			for _, d := range declDirectives(ds, pkg.Fset, "guardedby", name.Pos(), doc) {
				guard := findSiblingField(st, pkg, d.args[0])
				switch {
				case guard == nil:
					report(d, "rtlint:guardedby %s: %s names no sibling field of the struct", d.args[0], d.args[0])
				case !isMutexType(guard.Type()):
					report(d, "rtlint:guardedby %s: %s is not a sync.Mutex or sync.RWMutex field", d.args[0], d.args[0])
				default:
					d.used = true
					a.Guarded[fv] = guard
				}
			}
		}
	}
}

// findSiblingField resolves a field name inside the same struct
// literal the annotation sits in.
func findSiblingField(st *ast.StructType, pkg *Package, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				v, _ := pkg.Info.Defs[n].(*types.Var)
				return v
			}
		}
	}
	return nil
}

// structUnder strips pointers and returns the underlying struct type,
// or nil.
func structUnder(t types.Type) *types.Struct {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isRWMutexType reports whether t is sync.RWMutex specifically.
func isRWMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "RWMutex"
}

// cutLast splits s at the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	for i := len(s) - len(sep); i >= 0; i-- {
		if s[i:i+len(sep)] == sep {
			return s[:i], s[i+len(sep):], true
		}
	}
	return s, "", false
}

// directiveDiag builds a directive-analyzer diagnostic.
func directiveDiag(pos token.Position, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: pos, Analyzer: directiveAnalyzer, Message: fmt.Sprintf(format, args...)}
}
