// Package hot seeds every allocating construct the hotalloc analyzer
// flags, next to the sanctioned idioms it must stay silent on:
// self-append growth, stack composite values, pruned cold subtrees,
// and functions never reached from a hotpath root.
package hot

import (
	"sort"
	"strings"
)

type pair struct{ a, b int }

type ints []int

func (s ints) Len() int           { return len(s) }
func (s ints) Less(i, j int) bool { return s[i] < s[j] }
func (s ints) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

type buf struct {
	xs []int
}

//rtlint:hotpath -- steady-state kernel of the fake fast path
func (b *buf) Step(n int) {
	b.xs = append(b.xs, n)        // self-append growth: sanctioned
	b.xs = append(b.xs[:0], n, n) // reset-and-refill: sanctioned
	_ = pair{n, n}                // stack value: silent
	b.grow(n)                     // traversal descends into the callee
	b.setup(n)                    //rtlint:allow hotalloc -- one-time setup outside the steady state
}

func (b *buf) grow(n int) {
	b.xs = make([]int, n) // want "make allocates"
	p := new(int)         // want "new allocates"
	_ = p
	ys := append(b.xs, n) // want "append outside the self-append form"
	_ = ys
}

// setup allocates freely, but the allow directive on its call site in
// Step prunes the hotalloc traversal before it gets here.
func (b *buf) setup(n int) {
	b.xs = make([]int, n)
	m := map[int]int{n: n}
	_ = m
}

// coldInit is never reachable from a hotpath root: silent.
func coldInit() []int {
	return make([]int, 64)
}

//rtlint:hotpath
func literals(n int) {
	_ = []int{n}          // want "composite literal allocates"
	m := map[string]int{} // want "composite literal allocates"
	m["k"] = n            // want "map assignment may allocate"
	_ = &pair{n, n}       // want "&composite literal allocates"
}

//rtlint:hotpath
func bump(counts map[string]int, k string) {
	counts[k]++ // want "map update may allocate"
}

//rtlint:hotpath
func format(a, b string) int {
	c := a + b      // want "string concatenation allocates"
	bs := []byte(a) // want "conversion from string to \[\]byte copies"
	return len(c) + len(bs)
}

//rtlint:hotpath
func boxedReturn(n int) any {
	return n // want "implicit conversion of int to interface boxes"
}

//rtlint:hotpath
func boxedArg(xs ints) {
	sort.Sort(xs) // want "implicit conversion of .*ints to interface boxes"
}

//rtlint:hotpath
func external(s string) string {
	return strings.TrimSpace(s) // want "call to strings.TrimSpace outside the module may allocate"
}

//rtlint:hotpath
func dynamic(f func() int) int {
	return f() // want "unresolvable call"
}

func run(f func() int) { _ = f }

//rtlint:hotpath
func spawn(k int) func() int {
	f := func() int { return k } // want "closure captures k and allocates"
	go run(f)                    // want "go statement allocates a goroutine"
	return f
}

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

//rtlint:hotpath
func methodValue(c *counter) func() {
	return c.inc // want "method value c.inc allocates"
}

// Interface dispatch resolves by CHA: both implementations below are
// traversed, and only the allocating one is reported.
type stepper interface{ step(int) int }

type adder struct{ total int }

func (a *adder) step(n int) int { a.total += n; return a.total }

type boxer struct{ last any }

func (b *boxer) step(n int) int {
	b.last = n // want "implicit conversion of int to interface boxes"
	return n
}

//rtlint:hotpath
func drive(s stepper, k int) int {
	return s.step(k)
}

//rtlint:hotpath -- annotation misuse exercised below // want "annotates nothing"
const answer = 42
