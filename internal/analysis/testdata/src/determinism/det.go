// Package det seeds determinism violations and the allowed idioms
// next to them. The golden harness loads it as if it lived in
// internal/exp, an output-producing package.
package det

import (
	"math/rand"
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func nap() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func epoch() time.Time {
	return time.Unix(0, 0) // pure function of its inputs: allowed
}

func draw() int {
	return rand.Intn(6) // want "math/rand.Intn draws from the process-global random source"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "math/rand.Shuffle draws from the process-global random source"
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // explicitly seeded generator: allowed
	return r.Intn(6)
}

func leakOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order is nondeterministic"
		keys = append(keys, k)
	}
	return keys
}

func sortedOrder(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//rtlint:allow determinism -- keys are collected and sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sliceRange(xs []int) int {
	total := 0
	for _, x := range xs { // ranging a slice is ordered: allowed
		total += x
	}
	return total
}

func allowedClock() time.Time {
	//rtlint:allow determinism -- wall-clock timer in a demo
	return time.Now()
}
