// Package detscope contains only a map range. The golden harness
// loads it as internal/core — not an output-producing package — and
// expects silence: the map-range rule is scoped to packages whose
// results reach rendered output.
package detscope

func keys(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
