// Package guard seeds the lock-discipline patterns guardedby checks:
// plain lock/unlock windows, deferred unlocks, unlock-and-return error
// branches, loops, switches, //rtlint:holds call-site contracts, and
// //rtlint:acquires lock handoff — plus the annotation misuse cases
// the binder must reject.
package guard

import "sync"

type shard struct {
	mu sync.Mutex
	//rtlint:guardedby mu
	n int
}

func locked(s *shard) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func unlocked(s *shard) {
	s.n++ // want "access to guarded field s.n requires s.mu held"
}

func deferred(s *shard) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// errReturn is the unlock-and-return pattern: the terminating branch
// must not leak its unlock into the code below it.
func errReturn(s *shard, fail bool) {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
}

// branchLeak unlocks on one fall-through path only: the merge drops
// the lock and the access below is flagged.
func branchLeak(s *shard, early bool) {
	s.mu.Lock()
	if early {
		s.mu.Unlock()
	}
	s.n++ // want "access to guarded field s.n requires s.mu held"
}

// loopLocal locks per iteration: nothing is held after the loop.
func loopLocal(s *shard, rounds int) {
	for i := 0; i < rounds; i++ {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
	s.n-- // want "access to guarded field s.n requires s.mu held"
}

func switched(s *shard, mode int) {
	s.mu.Lock()
	switch mode {
	case 0:
		s.mu.Unlock()
	default:
		s.n++
		s.mu.Unlock()
	}
	s.n-- // want "access to guarded field s.n requires s.mu held"
}

// view requires the caller to pass s already locked.
//
//rtlint:holds s.mu
func view(s *shard) int {
	return s.n
}

func goodCaller(s *shard) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return view(s)
}

func badCaller(s *shard) int {
	return view(s) // want "call to view requires s.mu held"
}

type registry struct {
	mu sync.RWMutex
	//rtlint:guardedby mu
	shards map[string]*shard
}

// grab returns the shard with its lock held: lock handoff through the
// result, declared with //rtlint:acquires.
//
//rtlint:acquires mu
func (r *registry) grab(k string) *shard {
	r.mu.RLock()
	s := r.shards[k]
	r.mu.RUnlock()
	s.mu.Lock()
	return s
}

func handoff(r *registry) {
	s := r.grab("a")
	s.n++ // held via acquires
	s.mu.Unlock()
}

func writeSide(r *registry, k string, s *shard) {
	r.mu.Lock()
	r.shards[k] = s
	r.mu.Unlock()
}

func readBare(r *registry, k string) *shard {
	return r.shards[k] // want "access to guarded field r.shards requires r.mu held"
}

// Annotation misuse the binder must reject.
type misused struct {
	mu sync.Mutex
	//rtlint:guardedby lock // want "lock names no sibling field"
	a int
	//rtlint:guardedby b // want "b is not a sync.Mutex or sync.RWMutex field"
	c int
	b int
	//rtlint:guardedby mu extra // want "takes exactly one argument"
	d int
}

//rtlint:holds q.mu // want "q names no parameter of holdsBad"
func holdsBad(s *shard) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
