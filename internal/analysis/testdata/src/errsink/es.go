// Package es seeds errsink violations and the acknowledged or
// infallible idioms that must stay silent. The golden harness loads
// it as internal/exp (a library package).
package es

import (
	"bytes"
	"fmt"
	"io"
	"strings"
)

func unchecked(w io.Writer) {
	fmt.Fprintf(w, "x")    // want "error result of fmt.Fprintf discarded"
	fmt.Fprintln(w, "y")   // want "error result of fmt.Fprintln discarded"
	io.WriteString(w, "z") // want "error result of io.WriteString discarded"
	w.Write([]byte("w"))   // want "error result of \(io.Writer\).Write discarded"
}

func buffered(buf *bytes.Buffer, sb *strings.Builder) {
	buf.WriteString("ok") // bytes.Buffer never returns an error: allowed
	sb.WriteString("ok")  // strings.Builder never returns an error: allowed
}

func acknowledged(w io.Writer) {
	_, _ = fmt.Fprintf(w, "x") // explicit drop is visible intent: allowed
}

func propagated(w io.Writer) error {
	_, err := fmt.Fprintf(w, "x")
	return err
}

func allowed(w io.Writer) {
	//rtlint:allow errsink -- best-effort diagnostics on stderr
	fmt.Fprintln(w, "x")
}
