// Package og seeds overflowguard violations and the bounded idioms
// that must stay silent. The golden harness loads it as internal/dbf.
package og

import "rtoffload/internal/rtime"

func product(c rtime.Duration, n int64) rtime.Duration {
	return c * rtime.Duration(n) // want "rtime.Duration multiplication can wrap int64"
}

func rawMul(a, b int64) int64 {
	return a * b // want "int64 multiplication can wrap int64"
}

func scale(x int64) int64 {
	return x << 3 // want "int64 left shift can wrap int64"
}

func scaleAssign(x rtime.Duration) rtime.Duration {
	x *= 2 // want "rtime.Duration \*= can wrap int64"
	return x
}

func sumDerived(ds []rtime.Duration, t rtime.Duration) rtime.Duration {
	var sum rtime.Duration
	for range ds {
		sum += dbfOf(t) // want "rtime.Duration \+= of a derived demand value"
	}
	return sum
}

func addDerived(t rtime.Duration) rtime.Duration {
	return dbfOf(t) + dbfOf(t) // want "rtime.Duration addition of derived demand values"
}

func dbfOf(t rtime.Duration) rtime.Duration { return t }

func plainSum(c1, c2 rtime.Duration) rtime.Duration {
	return c1 + c2 // plain parameter sum, bounded by validation: allowed
}

func chainedPlainSum(t, d, d1, r rtime.Duration) rtime.Duration {
	return t - d + d1 + r // still no derived operand: allowed
}

func intIndex(i int) int {
	return 2*i + 1 // int (not int64) heap index arithmetic: allowed
}

const grid = 8 << 10 // constant-folded, checked by the compiler: allowed

func allowed(c rtime.Duration) rtime.Duration {
	//rtlint:allow overflowguard -- 20 spacings of validated config, far below the int64 horizon
	return 20 * c
}
