// Package arena seeds the escape patterns arenaescape flags — arena
// aliases returned from exported functions, stored outside the arena,
// sent on channels, captured by closures — and the sanctioned ones:
// internal borrowing between unexported helpers, growth written back
// into the arena, and snapshot copies into fresh memory.
package arena

type scratch struct {
	//rtlint:arena
	buf []int
	//rtlint:arena
	tmp []int
	out []int
}

var published []int

// grow is the amortized arena grower: its result aliases its first
// parameter, which the alias summaries record.
func grow(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	fresh := make([]int, n, 2*n)
	copy(fresh, s)
	return fresh
}

// fill borrows the arena internally: returning scratch from an
// unexported helper stays inside the owner.
func (s *scratch) fill(n int) []int {
	b := s.buf[:0]
	for i := 0; i < n; i++ {
		b = append(b, i)
	}
	return b
}

// Borrow leaks the borrowed scratch across the exported API.
func (s *scratch) Borrow(n int) []int {
	return s.fill(n) // want "arena-aliasing value returned from exported Borrow"
}

// Window leaks a direct reslice of the arena.
func (s *scratch) Window(i, j int) []int {
	return s.buf[i:j] // want "arena-aliasing value returned from exported Window"
}

// Snapshot copies into fresh memory: silent.
func (s *scratch) Snapshot(n int) []int {
	fresh := make([]int, n)
	copy(fresh, s.buf)
	return fresh
}

// Grow writes grown scratch back into the arena field: silent.
func (s *scratch) Grow(n int) {
	s.buf = grow(s.buf, n)
}

// Keep persists an arena alias in a non-arena field.
func (s *scratch) Keep(n int) {
	b := s.fill(n)
	s.out = b // want "arena-aliasing value stored into non-arena field s.out"
}

// Publish persists an arena alias in a package-level variable.
func (s *scratch) Publish() {
	published = s.tmp // want "arena-aliasing value stored into package-level published"
}

// Ship sends an arena alias to another goroutine.
func (s *scratch) Ship(ch chan []int) {
	ch <- s.buf // want "arena-aliasing value sent on a channel"
}

// Capture closes over an arena alias that may outlive the call.
func (s *scratch) Capture() func() int {
	b := s.buf
	return func() int { return len(b) } // want "closure captures arena-aliasing b"
}

// internal plumbing between unexported helpers is free to pass
// aliases around, including through grow.
func (s *scratch) shuffle(n int) []int {
	b := grow(s.buf, n)
	b = append(b, n)
	return b[:1]
}

// Sum reads scalars out of the arena: copies, not aliases — silent
// even from an exported function.
func (s *scratch) Sum() int {
	total := 0
	for _, v := range s.buf {
		total += v
	}
	return total + s.buf[0]
}
