// Package fe seeds floatexact violations and the exact idioms that
// must stay silent. The golden harness loads it as internal/dbf.
package fe

import "math/big"

func toFloat(x int64) float64 {
	return float64(x) // want "conversion to float64"
}

func toF32(x int) float32 {
	return float32(x) // want "conversion to float32"
}

func extract(r *big.Rat) float64 {
	f, _ := r.Float64() // want "extracts a rounded float"
	return f
}

func compare(a float64) bool {
	return a < 1.5 // want "float comparison in exact-arithmetic code"
}

func equal(a, b float64) bool {
	return a == b // want "float comparison in exact-arithmetic code"
}

func intCompare(a, b int64) bool {
	return a < b // exact comparison: allowed
}

func ratCompare(a, b *big.Rat) bool {
	return a.Cmp(b) < 0 // exact comparison: allowed
}

func allowed(x int64) float64 {
	//rtlint:allow floatexact -- reporting layer needs a display float
	return float64(x)
}
