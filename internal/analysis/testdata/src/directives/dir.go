// Package directives seeds malformed and stale rtlint directives.
// The golden harness loads it as internal/exp and runs the
// determinism analyzer; directive problems are reported regardless of
// which analyzers run.
package directives

import "time"

func missingReason() time.Time {
	//rtlint:allow determinism // want "needs a reason"
	return time.Now() // want "time.Now reads the wall clock"
}

func unknownAnalyzer() time.Time {
	//rtlint:allow nosuchcheck -- misspelled // want "unknown analyzer nosuchcheck"
	return time.Now() // want "time.Now reads the wall clock"
}

func unknownVerb() {
	//rtlint:deny determinism -- no such verb // want "unknown rtlint directive verb"
}

func stale(xs []int) int {
	//rtlint:allow determinism -- nothing nondeterministic below // want "suppresses nothing"
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
