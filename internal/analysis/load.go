package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis. Test files (_test.go) are excluded: the gate guards the
// shipped analysis code, and test-only helpers may legitimately use
// wall clocks or floats.
type Package struct {
	RelDir     string // module-relative directory; "" for the root package
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	FileBases  []string // base name of Files[i]'s source file
	Types      *types.Package
	Info       *types.Info
}

// Module is a fully loaded module: every package that contains
// non-test Go files, type-checked against the standard library.
type Module struct {
	Dir      string
	Path     string
	Fset     *token.FileSet
	Packages []*Package // sorted by RelDir
}

// loader type-checks module packages on demand, resolving in-module
// imports from source and everything else through the standard
// library's source importer. It is stdlib-only by design: rtlint must
// not add dependencies to the module it guards.
type loader struct {
	fset    *token.FileSet
	modDir  string
	modPath string
	std     types.ImporterFrom
	info    *types.Info
	pkgs    map[string]*Package // by RelDir
	loading map[string]bool     // import-cycle guard, by RelDir
}

func newLoader(modDir, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modDir:  modDir,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer for the checker: module-internal
// paths are loaded from source, "unsafe" is built in, and the rest is
// delegated to the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.moduleRel(path); ok {
		pkg, err := l.load(rel)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, "", 0)
}

// moduleRel maps an import path inside the module to its
// module-relative directory.
func (l *loader) moduleRel(path string) (string, bool) {
	if path == l.modPath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return rest, true
	}
	return "", false
}

// load parses and type-checks the package in the module-relative
// directory rel, memoized.
func (l *loader) load(rel string) (*Package, error) {
	if pkg, ok := l.pkgs[rel]; ok {
		return pkg, nil
	}
	if l.loading[rel] {
		return nil, fmt.Errorf("import cycle through %q", rel)
	}
	l.loading[rel] = true
	defer func() { l.loading[rel] = false }()
	pkg, err := l.check(filepath.Join(l.modDir, filepath.FromSlash(rel)), rel)
	if err != nil {
		return nil, err
	}
	l.pkgs[rel] = pkg
	return pkg, nil
}

// check does the actual parse + type-check of one directory.
func (l *loader) check(dir, rel string) (*Package, error) {
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	importPath := l.modPath
	if rel != "" {
		importPath = l.modPath + "/" + rel
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(typeErrs) < 10 {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	tpkg, err := conf.Check(importPath, l.fset, files, l.info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type errors in %s:\n\t%s", importPath, strings.Join(typeErrs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		RelDir:     rel,
		ImportPath: importPath,
		Fset:       l.fset,
		Files:      files,
		FileBases:  names,
		Types:      tpkg,
		Info:       l.info,
	}, nil
}

// goSources lists the non-test Go files of dir, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadModule parses and type-checks every package of the module
// rooted at dir (skipping testdata, vendor, hidden and underscore
// directories, and all _test.go files).
func LoadModule(dir string) (*Module, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(absDir)
	if err != nil {
		return nil, err
	}
	var rels []string
	err = filepath.WalkDir(absDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != absDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goSources(path)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(absDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			rel = ""
		}
		rels = append(rels, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(rels)
	l := newLoader(absDir, modPath)
	mod := &Module{Dir: absDir, Path: modPath, Fset: l.fset}
	for _, rel := range rels {
		pkg, err := l.load(rel)
		if err != nil {
			return nil, err
		}
		mod.Packages = append(mod.Packages, pkg)
	}
	return mod, nil
}

// LoadPackage parses and type-checks the single package in pkgDir
// (which may live under a testdata tree), resolving module-internal
// imports against the module rooted at modDir. relDir is the
// module-relative directory the package should pretend to live in, so
// scope-sensitive rules can be exercised from tests.
func LoadPackage(modDir, pkgDir, relDir string) (*Package, error) {
	absMod, err := filepath.Abs(modDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(absMod)
	if err != nil {
		return nil, err
	}
	l := newLoader(absMod, modPath)
	pkg, err := l.check(pkgDir, relDir)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// modulePath reads the module path from dir/go.mod.
func modulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("reading module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", dir)
}
