// Package analysis hosts rtlint's domain-specific static analyzers.
//
// The repository makes correctness promises that go vet cannot check:
// bit-identical experiment output at any worker count, and exact,
// overflow-detected demand arithmetic on the int64 → big.Int → big.Rat
// tier ladder. Each analyzer here turns one of those promises into a
// machine-checked gate rule:
//
//   - determinism:   no wall-clock reads, no global math/rand source,
//     no map-range iteration feeding ordered output.
//   - floatexact:    no float conversions or comparisons inside the
//     exact demand-analysis code.
//   - overflowguard: no raw *, <<, or derived + on Duration/int64
//     demand values outside the checked helpers in dbf/frac.go.
//   - errsink:       no silently discarded io.Writer / fmt.Fprintf
//     errors in library packages.
//
// A second, module-wide layer (AllInterprocedural) shares one call
// graph — static calls resolved exactly, interface calls by
// class-hierarchy analysis — and checks annotation-declared
// invariants across function boundaries:
//
//   - hotalloc:    no allocation reachable from an //rtlint:hotpath
//     root through any call chain.
//   - guardedby:   fields marked //rtlint:guardedby <mutex> are only
//     accessed with the lock held; //rtlint:holds and
//     //rtlint:acquires extend the protocol across calls.
//   - arenaescape: values aliasing an //rtlint:arena field never
//     escape their owner (exported returns, outside stores, channel
//     sends, closure captures).
//
// A finding can be exempted only by an explicit directive carrying a
// reason:
//
//	//rtlint:allow determinism -- wall-clock timer reported to stderr
//
// The directive covers its own source line and the line directly
// below it, and may name several analyzers separated by commas. A
// directive that is malformed, lacks a reason, names an unknown
// analyzer, or suppresses nothing is itself reported, so exemptions
// can never rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a violated invariant at a position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic as path:line:col: [analyzer] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one lint rule set.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All lists every analyzer, in report order.
var All = []*Analyzer{Determinism, FloatExact, OverflowGuard, ErrSink}

// Pass is the per-(analyzer, package) unit of work. Files holds only
// the files in the analyzer's scope; Info and Pkg cover the whole
// package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// RelDir is the package directory relative to the module root
	// ("internal/dbf", "cmd/rtlint", "" for the root package).
	RelDir string

	directives *DirectiveSet
	sink       func(Diagnostic)
}

// Reportf records a finding at pos unless an rtlint:allow directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.directives.Allows(p.Analyzer.Name, position) {
		return
	}
	p.sink(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Target binds an analyzer to the files it inspects. Match receives
// the package directory relative to the module root and the file base
// name.
type Target struct {
	Analyzer *Analyzer
	Match    func(relDir, base string) bool
}

// DefaultTargets is the repository's gate configuration: which
// analyzer guards which layer.
func DefaultTargets() []Target {
	return []Target{
		// Determinism is a repo-wide promise: library packages feed the
		// deterministic experiment engine, and cmd wall-clock timers must
		// carry explicit directives.
		{Determinism, func(relDir, base string) bool { return true }},
		// Exact-analysis code: the dbf tier ladder and every core file
		// that carries exact rationals — the exact upgrade pass, the
		// budget estimator whose Ri values feed it, the incremental
		// admission path, and the decision types and their round-trip
		// serialization (Theorem3Total must survive I/O bit-exactly).
		{FloatExact, func(relDir, base string) bool {
			if relDir == "internal/dbf" {
				return true
			}
			if relDir != "internal/core" {
				return false
			}
			switch base {
			case "exact.go", "estimator.go", "admission.go", "core.go", "decisionio.go":
				return true
			}
			return false
		}},
		// Demand arithmetic; frac.go hosts the checked helpers and is the
		// one file allowed to do raw int64 work.
		{OverflowGuard, func(relDir, base string) bool {
			return (relDir == "internal/dbf" && base != "frac.go") || relDir == "internal/core"
		}},
		// Library packages must not swallow writer errors; main packages
		// own their best-effort console output.
		{ErrSink, func(relDir, base string) bool {
			return relDir == "" || strings.HasPrefix(relDir, "internal/")
		}},
	}
}

// RunPackage applies every matching target to one loaded package and
// returns the findings, including directive problems (malformed,
// unknown analyzer, suppresses nothing).
func RunPackage(pkg *Package, targets []Target) []Diagnostic {
	var diags []Diagnostic
	sink := func(d Diagnostic) { diags = append(diags, d) }
	ds := ParseDirectives(pkg.Fset, pkg.Files)
	runTargets(pkg, targets, ds, sink)
	diags = append(diags, ds.Problems()...)
	SortDiagnostics(diags)
	return diags
}

// runTargets runs the matching per-package analyzers against pkg,
// reporting through sink.
func runTargets(pkg *Package, targets []Target, ds *DirectiveSet, sink func(Diagnostic)) {
	for _, tgt := range targets {
		var files []*ast.File
		for i, f := range pkg.Files {
			if tgt.Match(pkg.RelDir, pkg.FileBases[i]) {
				files = append(files, f)
			}
		}
		if len(files) == 0 {
			continue
		}
		pass := &Pass{
			Analyzer:   tgt.Analyzer,
			Fset:       pkg.Fset,
			Files:      files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			RelDir:     pkg.RelDir,
			directives: ds,
			sink:       sink,
		}
		tgt.Analyzer.Run(pass)
	}
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
