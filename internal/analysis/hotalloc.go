package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotAlloc proves the zero-allocation claim of the hot paths: every
// function reachable from an //rtlint:hotpath root must contain no
// allocating construct. The claim is structural (arena reuse,
// free-list recycling, self-append growth), so the analyzer flags the
// constructs that defeat it:
//
//   - make / new, slice, map and &T{} composite literals;
//   - append outside the sanctioned self-append form
//     x = append(x, ...) / x = append(x[:0], ...), the amortized-growth
//     idiom the arenas are built on;
//   - closures that capture variables, method values, go statements;
//   - implicit interface conversions that box non-pointer-shaped
//     values (constants are compiler-folded into static storage and
//     exempt);
//   - string concatenation, map writes, []byte/[]rune/string
//     conversions;
//   - calls that cannot be verified: func-value calls, and calls into
//     packages outside the module unless they are on the small
//     known-non-allocating list (sync lock ops, math, math/bits,
//     sync/atomic, sort.Sort/Stable/Search, big.Int read accessors).
//
// Traversal follows the call graph: static calls descend into the
// callee, interface calls descend into every CHA candidate. An
// //rtlint:allow hotalloc directive on a call-site line prunes the
// traversal into that callee — the stated reason then covers the whole
// subtree (used for cold setup paths like one-time init or error
// reporting).
//
// testing.AllocsPerRun gate tests back each root at runtime; the
// analyzer is the static half of the same contract.
var HotAlloc = &ModuleAnalyzer{
	Name: "hotalloc",
	Doc:  "functions reachable from //rtlint:hotpath roots must not allocate",
	Run:  runHotAlloc,
}

// noAllocPkgs are packages whose exported functions and methods do not
// allocate on any path rtlint cares about.
var noAllocPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// noAllocFuncs lists individually vetted non-allocating external
// functions and methods, keyed by types.Func.FullName.
var noAllocFuncs = map[string]bool{
	"sort.Sort":                true,
	"sort.Stable":              true,
	"sort.Search":              true,
	"(*sync.Mutex).Lock":       true,
	"(*sync.Mutex).Unlock":     true,
	"(*sync.Mutex).TryLock":    true,
	"(*sync.RWMutex).Lock":     true,
	"(*sync.RWMutex).Unlock":   true,
	"(*sync.RWMutex).RLock":    true,
	"(*sync.RWMutex).RUnlock":  true,
	"(*math/big.Int).Sign":     true,
	"(*math/big.Int).Cmp":      true,
	"(*math/big.Int).CmpAbs":   true,
	"(*math/big.Int).BitLen":   true,
	"(*math/big.Int).IsInt64":  true,
	"(*math/big.Int).IsUint64": true,
	"(*math/big.Int).Int64":    true,
	"(*math/big.Int).Uint64":   true,
	"(*math/big.Rat).Sign":     true,
	"(*math/big.Rat).Cmp":      true,
	"(*math/big.Rat).Num":      true,
	"(*math/big.Rat).Denom":    true,
	"(*math/big.Rat).IsInt":    true,
}

func isNoAllocExternal(fn *types.Func) bool {
	if fn.Pkg() != nil && noAllocPkgs[fn.Pkg().Path()] {
		return true
	}
	return noAllocFuncs[fn.FullName()]
}

// hotWork is one function to analyze plus the root it was reached
// from, for messages.
type hotWork struct {
	node *FuncNode
	root string
}

func runHotAlloc(pass *ModulePass) {
	// Deterministic root order: by source position.
	var roots []*FuncNode
	for fn := range pass.Ann.Hotpath {
		if node := pass.Graph.Node(fn); node != nil {
			roots = append(roots, node)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		pi := pass.Module.Fset.Position(roots[i].Decl.Pos())
		pj := pass.Module.Fset.Position(roots[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})

	visited := map[*types.Func]bool{}
	var queue []hotWork
	for _, r := range roots {
		queue = append(queue, hotWork{node: r, root: funcDisplayName(r.Fn)})
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if visited[w.node.Fn] {
			continue
		}
		visited[w.node.Fn] = true
		queue = append(queue, checkHotFunc(pass, w)...)
	}
}

// funcDisplayName renders fn as Type.Method or pkg.Func for messages.
func funcDisplayName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// checkHotFunc walks one function body, reports allocating constructs,
// and returns the in-module callees to visit next.
func checkHotFunc(pass *ModulePass, w hotWork) []hotWork {
	node := w.node
	info := node.Pkg.Info
	body := node.Decl.Body

	// Pre-pass: the expressions that are call operands (so a selector
	// used as a call's Fun is not a method value), the append calls in
	// sanctioned self-append form, and the func literals (whose return
	// statements belong to their own signatures).
	funExprs := map[ast.Expr]bool{}
	selfAppend := map[*ast.CallExpr]bool{}
	var funcLits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			funExprs[ast.Unparen(n.Fun)] = true
		case *ast.AssignStmt:
			markSelfAppends(info, n, selfAppend)
		case *ast.FuncLit:
			funcLits = append(funcLits, n)
		}
		return true
	})

	report := func(pos token.Pos, format string, args ...any) {
		args = append(args, w.root)
		pass.Reportf(pos, format+" (hot path from root %s)", args...)
	}

	var next []hotWork
	enqueue := func(callee *FuncNode) { next = append(next, hotWork{node: callee, root: w.root}) }

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, w, n, selfAppend, report, enqueue)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				report(n.Pos(), "%s composite literal allocates", types.ExprString(n.Type))
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.FuncLit:
			for _, captured := range capturedVars(info, n) {
				report(n.Pos(), "closure captures %s and allocates", captured)
				break // one finding per literal is enough
			}
		case *ast.SelectorExpr:
			if !funExprs[ast.Expr(n)] {
				if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					report(n.Pos(), "method value %s allocates", types.ExprString(n))
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && info.Types[n].Value == nil {
				if basic, ok := info.TypeOf(n).Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
					report(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.AssignStmt:
			checkHotAssign(info, n, report)
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
				report(n.Pos(), "map update may allocate")
			}
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.ReturnStmt:
			sig := enclosingSignature(info, node, funcLits, n.Pos())
			checkReturnBoxing(info, sig, n, report)
		case *ast.ValueSpec:
			if n.Type != nil {
				to := info.TypeOf(n.Type)
				for _, v := range n.Values {
					checkBoxing(info, v, to, report)
				}
			}
		}
		return true
	})
	return next
}

// checkHotCall classifies one call on the hot path.
func checkHotCall(pass *ModulePass, w hotWork, call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool, report func(token.Pos, string, ...any), enqueue func(*FuncNode)) {
	info := w.node.Pkg.Info
	targets := pass.Graph.Resolve(w.node.Pkg, call)
	switch {
	case targets.Builtin != "":
		switch targets.Builtin {
		case "make":
			report(call.Pos(), "make allocates")
		case "new":
			report(call.Pos(), "new allocates")
		case "append":
			if !selfAppend[call] {
				report(call.Pos(), "append outside the self-append form x = append(x, ...) may grow")
			}
		}
	case targets.Conversion:
		checkConversion(info, call, report)
	case targets.Static != nil:
		if pass.Allowed(call.Pos()) {
			return // justified cold subtree: prune traversal
		}
		checkCallBoxing(info, targets.Static.Fn, call, report)
		enqueue(targets.Static)
	case len(targets.Interface) > 0:
		if pass.Allowed(call.Pos()) {
			return
		}
		for _, cand := range targets.Interface {
			enqueue(cand)
		}
	case targets.External != nil:
		if isNoAllocExternal(targets.External) {
			checkCallBoxing(info, targets.External, call, report)
			return
		}
		report(call.Pos(), "call to %s outside the module may allocate", targets.External.FullName())
	default:
		// Dynamic, or an interface method with no in-module
		// implementation: no callee to verify.
		report(call.Pos(), "unresolvable call (func value or external interface) cannot be verified allocation-free")
	}
}

// markSelfAppends records append calls in the sanctioned
// x = append(x, ...) / x = append(x[:0], ...) form.
func markSelfAppends(info *types.Info, assign *ast.AssignStmt, out map[*ast.CallExpr]bool) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			continue
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		base := ast.Unparen(call.Args[0])
		if se, ok := base.(*ast.SliceExpr); ok {
			base = ast.Unparen(se.X)
		}
		if types.ExprString(ast.Unparen(assign.Lhs[i])) == types.ExprString(base) {
			out[call] = true
		}
	}
}

// checkConversion flags the conversions that copy their operand into a
// fresh allocation: string <-> []byte/[]rune, string(rune), and
// conversions to interface types (boxing).
func checkConversion(info *types.Info, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	if len(call.Args) != 1 {
		return
	}
	to := info.TypeOf(call.Fun)
	from := info.TypeOf(call.Args[0])
	if info.Types[call.Args[0]].Value != nil && !types.IsInterface(to.Underlying()) {
		return // constant-folded
	}
	toStr := isStringType(to)
	fromStr := isStringType(from)
	switch {
	case types.IsInterface(to.Underlying()):
		checkBoxing(info, call.Args[0], to, report)
	case toStr && !fromStr, fromStr && !toStr:
		report(call.Pos(), "conversion from %s to %s copies and allocates", types.TypeString(from, nil), types.TypeString(to, nil))
	}
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// checkHotAssign flags map writes and interface boxing on assignment.
func checkHotAssign(info *types.Info, assign *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	for _, lhs := range assign.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
			report(lhs.Pos(), "map assignment may allocate")
		}
	}
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		if to := info.TypeOf(lhs); to != nil {
			checkBoxing(info, assign.Rhs[i], to, report)
		}
	}
}

func isMapIndex(info *types.Info, idx *ast.IndexExpr) bool {
	t := info.TypeOf(idx.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkCallBoxing compares arguments against a known callee signature
// and flags implicit interface conversions that box.
func checkCallBoxing(info *types.Info, fn *types.Func, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var to types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			to = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			to = params.At(i).Type()
		default:
			continue
		}
		checkBoxing(info, arg, to, report)
	}
}

// checkReturnBoxing flags returns that box a concrete value into an
// interface result.
func checkReturnBoxing(info *types.Info, sig *types.Signature, ret *ast.ReturnStmt, report func(token.Pos, string, ...any)) {
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		checkBoxing(info, res, sig.Results().At(i).Type(), report)
	}
}

// checkBoxing reports expr if assigning it to type to would box a
// non-pointer-shaped concrete value into an interface. Constants are
// exempt: the compiler folds them into static storage.
func checkBoxing(info *types.Info, expr ast.Expr, to types.Type, report func(token.Pos, string, ...any)) {
	if to == nil || !types.IsInterface(to.Underlying()) {
		return
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Value != nil {
		return
	}
	from := tv.Type
	if from == nil || types.IsInterface(from.Underlying()) {
		return
	}
	if basic, ok := from.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	if isPointerShaped(from) {
		return
	}
	report(expr.Pos(), "implicit conversion of %s to interface boxes and allocates", types.TypeString(from, nil))
}

// isPointerShaped reports whether values of t fit in an interface word
// without allocation.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// enclosingSignature finds the signature governing a return statement:
// the innermost func literal containing pos, or the declared function.
func enclosingSignature(info *types.Info, node *FuncNode, lits []*ast.FuncLit, pos token.Pos) *types.Signature {
	var innermost *ast.FuncLit
	for _, lit := range lits {
		if lit.Pos() <= pos && pos < lit.End() {
			if innermost == nil || lit.Pos() > innermost.Pos() {
				innermost = lit
			}
		}
	}
	if innermost != nil {
		sig, _ := info.TypeOf(innermost).(*types.Signature)
		return sig
	}
	sig, _ := node.Pkg.Info.Defs[node.Decl.Name].(*types.Func).Type().(*types.Signature)
	return sig
}

// capturedVars lists the variables a func literal captures from its
// enclosing function, sorted by name. Package-level variables are free
// to reference; parameters and locals of enclosing scopes force a heap
// allocation for the closure.
func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	defined := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				defined[obj] = true
			}
		}
		return true
	})
	// Parameters and named results of the literal itself.
	if sig, ok := info.TypeOf(lit).(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			defined[sig.Params().At(i)] = true
		}
		for i := 0; i < sig.Results().Len(); i++ {
			defined[sig.Results().At(i)] = true
		}
	}
	captured := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || defined[v] || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level variable
		}
		captured[v.Name()] = true
		return true
	})
	names := make([]string, 0, len(captured))
	for name := range captured {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
