package analysis

import (
	"go/ast"
	"go/types"
)

// ErrSink flags discarded error returns from the fmt.Fprint family
// and io.Writer-style calls in library packages. A render function
// that drops a short-write error produces a silently truncated table
// or trace; library code must propagate the error (or acknowledge the
// drop with an explicit `_ =` assignment, which this analyzer
// deliberately accepts as visible intent). Writes to *strings.Builder
// and *bytes.Buffer are exempt: both are documented to never return a
// non-nil error.
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc:  "forbid silently discarded io.Writer / fmt.Fprint-family errors in library packages",
	Run:  runErrSink,
}

// sinkFuncs are the package-level writer functions whose error must
// not be dropped, keyed by package path then name.
var sinkFuncs = map[string]map[string]bool{
	"fmt": {"Fprint": true, "Fprintf": true, "Fprintln": true},
	"io":  {"WriteString": true, "Copy": true, "CopyN": true, "CopyBuffer": true},
}

// sinkMethods are writer-shaped method names whose error must not be
// dropped (when the method's last result is an error).
var sinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
	"Flush":       true,
}

// infallibleWriters never return a non-nil error, per their
// documentation; flagging them would force noise annotations on the
// pervasive Builder idiom.
var infallibleWriters = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

func runErrSink(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkDiscardedError(pass, call)
			return true
		})
	}
}

func checkDiscardedError(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return
	}
	if sig.Recv() == nil {
		if fn.Pkg() != nil && sinkFuncs[fn.Pkg().Path()][fn.Name()] {
			pass.Reportf(call.Pos(), "error result of %s.%s discarded in a library package; return it, check it, or assign to _ to acknowledge the drop (or annotate with //rtlint:allow errsink -- <reason>)", fn.Pkg().Name(), fn.Name())
		}
		return
	}
	if !sinkMethods[fn.Name()] {
		return
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if named, ok := recv.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && infallibleWriters[obj.Pkg().Name()+"."+obj.Name()] {
			return
		}
	}
	pass.Reportf(call.Pos(), "error result of (%s).%s discarded in a library package; return it, check it, or assign to _ to acknowledge the drop (or annotate with //rtlint:allow errsink -- <reason>)",
		types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg)), fn.Name())
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	t, ok := res.At(res.Len() - 1).Type().(*types.Named)
	return ok && t.Obj().Pkg() == nil && t.Obj().Name() == "error"
}
