package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestParseDirectiveForms covers the parser's accept/reject matrix:
// every verb's arity, the mandatory allow reason, and unknown names.
func TestParseDirectiveForms(t *testing.T) {
	cases := []struct {
		text    string
		verb    string
		problem string // substring; "" = well-formed
	}{
		{"allow determinism -- timer", "allow", ""},
		{"allow determinism,floatexact -- shared reason", "allow", ""},
		{"allow determinism", "allow", "needs a reason"},
		{"allow determinism --", "allow", "needs a reason"},
		{"allow -- reason only", "allow", "names no analyzer"},
		{"allow nosuch -- reason", "allow", "unknown analyzer nosuch"},
		{"allow hotalloc -- interprocedural analyzers are allowable too", "allow", ""},
		{"hotpath -- dispatch loop", "hotpath", ""},
		{"hotpath extra -- reason", "hotpath", "takes no arguments"},
		{"arena", "arena", ""},
		{"arena buf", "arena", "takes no arguments"},
		{"guardedby mu", "guardedby", ""},
		{"guardedby", "guardedby", "exactly one argument"},
		{"guardedby mu extra", "guardedby", "exactly one argument"},
		{"holds tn.mu", "holds", ""},
		{"acquires mu -- returns locked", "acquires", ""},
		{"frobnicate", "", "unknown rtlint directive verb"},
	}
	for _, tc := range cases {
		d := parseDirective(tc.text)
		if tc.problem == "" {
			if d.problem != "" {
				t.Errorf("parseDirective(%q): unexpected problem %q", tc.text, d.problem)
			}
			if d.verb != tc.verb {
				t.Errorf("parseDirective(%q): verb = %q, want %q", tc.text, d.verb, tc.verb)
			}
			continue
		}
		if !strings.Contains(d.problem, tc.problem) {
			t.Errorf("parseDirective(%q): problem = %q, want substring %q", tc.text, d.problem, tc.problem)
		}
	}
}

// TestParseDirectiveStripsWant asserts golden-test `// want`
// expectations never leak into payloads or satisfy the reason rule.
func TestParseDirectiveStripsWant(t *testing.T) {
	d := parseDirective(`allow determinism -- timer // want "ignored"`)
	if d.problem != "" || d.reason != "timer" {
		t.Errorf("trailing want not stripped: problem=%q reason=%q", d.problem, d.reason)
	}
	d = parseDirective(`allow determinism -- // want "ignored"`)
	if !strings.Contains(d.problem, "needs a reason") {
		t.Errorf("want-only reason accepted: problem=%q", d.problem)
	}
}

// TestDirectiveText covers the comment-marker stripping and the
// non-directive rejections.
func TestDirectiveText(t *testing.T) {
	if text, ok := directiveText("//rtlint:allow x -- y"); !ok || text != "allow x -- y" {
		t.Errorf("line comment: got %q, %v", text, ok)
	}
	if text, ok := directiveText("/*rtlint:arena*/"); !ok || text != "arena" {
		t.Errorf("block comment: got %q, %v", text, ok)
	}
	for _, c := range []string{"// rtlint:allow x -- y", "//lint:allow", "plain text"} {
		if _, ok := directiveText(c); ok {
			t.Errorf("directiveText(%q) accepted a non-directive", c)
		}
	}
}

// TestProblemsReportsRot parses a file holding one directive of each
// failure class — malformed, stale allow, unbound annotation — and
// asserts each is reported.
func TestProblemsReportsRot(t *testing.T) {
	const src = `package p

//rtlint:allow determinism
func a() {}

//rtlint:allow determinism -- suppresses nothing here
func b() {}

//rtlint:hotpath -- bound to nothing because nothing consumed it
var x int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ds := ParseDirectives(fset, []*ast.File{f})
	probs := ds.Problems()
	wants := []string{
		"needs a reason",
		"suppresses nothing",
		"annotates nothing",
	}
	if len(probs) != len(wants) {
		t.Fatalf("got %d problems, want %d: %v", len(probs), len(wants), probs)
	}
	for i, want := range wants {
		if !strings.Contains(probs[i].Message, want) {
			t.Errorf("problem %d = %q, want substring %q", i, probs[i].Message, want)
		}
		if probs[i].Analyzer != directiveAnalyzer {
			t.Errorf("problem %d attributed to %q, want %q", i, probs[i].Analyzer, directiveAnalyzer)
		}
	}
}

// TestAllowsMarksUsed asserts coverage spans the directive's line and
// the line below, and that a suppression retires the stale report.
func TestAllowsMarksUsed(t *testing.T) {
	const src = `package p

//rtlint:allow determinism -- line below
func a() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ds := ParseDirectives(fset, []*ast.File{f})
	if ds.Allows("floatexact", token.Position{Filename: "p.go", Line: 4}) {
		t.Error("allow covered an analyzer it does not name")
	}
	if ds.Allows("determinism", token.Position{Filename: "p.go", Line: 5}) {
		t.Error("allow covered a line outside its two-line span")
	}
	if !ds.Allows("determinism", token.Position{Filename: "p.go", Line: 4}) {
		t.Error("allow did not cover the line below it")
	}
	if probs := ds.Problems(); len(probs) != 0 {
		t.Errorf("used allow still reported: %v", probs)
	}
}
