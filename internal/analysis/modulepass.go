package analysis

import (
	"fmt"
	"go/token"

	"rtoffload/internal/parallel"
)

// ModuleAnalyzer is one interprocedural lint rule set: it sees the
// whole module through a shared call graph instead of one package at a
// time.
type ModuleAnalyzer struct {
	Name string
	Doc  string
	Run  func(*ModulePass)
}

// AllInterprocedural lists the interprocedural analyzers, in report
// order.
var AllInterprocedural = []*ModuleAnalyzer{HotAlloc, GuardedBy, ArenaEscape}

// ModulePass is the per-(module analyzer) unit of work.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Module   *Module
	Graph    *CallGraph
	Ann      *Annotations

	// directives maps filename -> owning package's directive set, so
	// module-wide findings honor per-package allow directives.
	directives map[string]*DirectiveSet
	sink       func(Diagnostic)
}

// Reportf records a finding at pos unless an rtlint:allow directive in
// the owning file covers it.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	if ds := p.directives[position.Filename]; ds != nil && ds.Allows(p.Analyzer.Name, position) {
		return
	}
	p.sink(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Allowed reports whether an allow directive for this analyzer covers
// pos, marking it used. Analyzers use it to prune traversal at
// justified call sites without emitting a finding.
func (p *ModulePass) Allowed(pos token.Pos) bool {
	position := p.Module.Fset.Position(pos)
	ds := p.directives[position.Filename]
	return ds != nil && ds.Allows(p.Analyzer.Name, position)
}

// ModuleOptions configures RunModule.
type ModuleOptions struct {
	// Targets are the per-package analyzers to run (DefaultTargets()
	// when nil).
	Targets []Target
	// Interprocedural lists the module analyzers to run
	// (AllInterprocedural when nil).
	Interprocedural []*ModuleAnalyzer
	// Workers bounds the per-package fan-out (GOMAXPROCS when 0).
	Workers int
}

// RunModule analyzes a loaded module: the per-package analyzers fan
// out over internal/parallel.Map (package analyses share no mutable
// state — each gets its own directive set and diagnostic slice), then
// the interprocedural analyzers run over the shared call graph, and
// finally every directive set reports its problems. The returned
// findings are fully sorted, so output is deterministic at any worker
// count.
func RunModule(mod *Module, opts ModuleOptions) ([]Diagnostic, error) {
	targets := opts.Targets
	if targets == nil {
		targets = DefaultTargets()
	}
	inter := opts.Interprocedural
	if inter == nil {
		inter = AllInterprocedural
	}

	type pkgResult struct {
		diags []Diagnostic
		ds    *DirectiveSet
	}
	results, err := parallel.Map(opts.Workers, len(mod.Packages), func(i int) (pkgResult, error) {
		pkg := mod.Packages[i]
		var diags []Diagnostic
		ds := ParseDirectives(pkg.Fset, pkg.Files)
		runTargets(pkg, targets, ds, func(d Diagnostic) { diags = append(diags, d) })
		return pkgResult{diags: diags, ds: ds}, nil
	})
	if err != nil {
		return nil, err
	}

	var diags []Diagnostic
	sink := func(d Diagnostic) { diags = append(diags, d) }
	for _, r := range results {
		diags = append(diags, r.diags...)
	}

	// Bind annotations and index directive sets by filename for the
	// module analyzers.
	ann := newAnnotations()
	byFile := map[string]*DirectiveSet{}
	for i, pkg := range mod.Packages {
		ds := results[i].ds
		ann.bindPackage(pkg, ds, sink)
		for fi := range pkg.Files {
			pos := pkg.Fset.Position(pkg.Files[fi].Pos())
			byFile[pos.Filename] = ds
		}
	}

	graph := BuildCallGraph(mod)
	for _, az := range inter {
		az.Run(&ModulePass{
			Analyzer:   az,
			Module:     mod,
			Graph:      graph,
			Ann:        ann,
			directives: byFile,
			sink:       sink,
		})
	}

	for _, r := range results {
		diags = append(diags, r.ds.Problems()...)
	}
	SortDiagnostics(diags)
	return diags, nil
}
