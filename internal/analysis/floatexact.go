package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatExact guards the exact demand-arithmetic tier ladder
// (int64 fracs → big.Int → big.Rat): a single float64 round-trip can
// flip a Theorem 1–3 schedulability verdict near the feasibility
// boundary, so exact-analysis code must not convert to, extract, or
// compare floating-point values. Benefit-objective code (weights are
// floats by design) lives outside this analyzer's scope or carries an
// explicit directive.
var FloatExact = &Analyzer{
	Name: "floatexact",
	Doc:  "forbid float conversions, math/big float extractions, and float comparisons in exact-analysis code",
	Run:  runFloatExact,
}

func runFloatExact(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkFloatConversion(pass, n)
				checkBigFloatExtraction(pass, n)
			case *ast.BinaryExpr:
				checkFloatComparison(pass, n)
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func checkFloatConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() || !isFloat(tv.Type) {
		return
	}
	pass.Reportf(call.Pos(), "conversion to %s in exact-arithmetic code loses exactness; stay on the int64/big.Int/big.Rat ladder, or annotate with //rtlint:allow floatexact -- <reason>",
		types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
}

func checkBigFloatExtraction(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math/big" {
		return
	}
	if name := fn.Name(); name == "Float64" || name == "Float32" {
		pass.Reportf(call.Pos(), "(%s).%s extracts a rounded float from an exact value; compare with Cmp or keep the big.Rat, or annotate with //rtlint:allow floatexact -- <reason>",
			types.TypeString(fn.Type().(*types.Signature).Recv().Type(), types.RelativeTo(pass.Pkg)), name)
	}
}

var comparisonOps = map[token.Token]bool{
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
}

func checkFloatComparison(pass *Pass, e *ast.BinaryExpr) {
	if !comparisonOps[e.Op] {
		return
	}
	tx, ty := pass.Info.TypeOf(e.X), pass.Info.TypeOf(e.Y)
	if tx == nil || ty == nil || (!isFloat(tx) && !isFloat(ty)) {
		return
	}
	pass.Reportf(e.OpPos, "float comparison in exact-arithmetic code (rounding near the feasibility boundary flips verdicts); compare exact values, or annotate with //rtlint:allow floatexact -- <reason>")
}
