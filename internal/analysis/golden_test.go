package analysis

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// expectation is one `// want "regex"` comment: a diagnostic that
// must be reported on that line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

var quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants extracts the `// want "..."` expectations of a package.
// The marker may sit inside another comment (directive testdata
// embeds it), and one marker may carry several quoted regexes.
func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range quotedRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: m[1]})
				}
			}
		}
	}
	return wants
}

// loadGolden loads one testdata package pretending to live at relDir.
func loadGolden(t *testing.T, dir, relDir string) *Package {
	t.Helper()
	root := repoRoot(t)
	pkgDir := filepath.Join(root, "internal", "analysis", "testdata", "src", dir)
	pkg, err := LoadPackage(root, pkgDir, relDir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	return pkg
}

// checkGolden runs one analyzer over a testdata package pretending to
// live at relDir and diffs the findings against the want comments.
func checkGolden(t *testing.T, az *Analyzer, dir, relDir string) {
	t.Helper()
	pkg := loadGolden(t, dir, relDir)
	diags := RunPackage(pkg, []Target{{az, func(string, string) bool { return true }}})
	diffGolden(t, pkg, diags)
}

// checkGoldenModule runs one interprocedural analyzer over a testdata
// package wrapped as a single-package module and diffs the findings
// (including annotation-binding problems) against the want comments.
func checkGoldenModule(t *testing.T, az *ModuleAnalyzer, dir, relDir string) {
	t.Helper()
	pkg := loadGolden(t, dir, relDir)
	mod := &Module{Dir: repoRoot(t), Path: "rtoffload", Fset: pkg.Fset, Packages: []*Package{pkg}}
	diags, err := RunModule(mod, ModuleOptions{
		Targets:         []Target{},
		Interprocedural: []*ModuleAnalyzer{az},
		Workers:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	diffGolden(t, pkg, diags)
}

// diffGolden matches reported diagnostics against the package's want
// comments, failing on both unexpected and missing findings.
func diffGolden(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := parseWants(t, pkg)

	matched := map[*expectation]bool{}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !matched[w] && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[w] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

func TestDeterminismGolden(t *testing.T) {
	checkGolden(t, Determinism, "determinism", "internal/exp")
}

// TestDeterminismMapRangeScope proves the map-range rule stays silent
// outside the output-producing packages.
func TestDeterminismMapRangeScope(t *testing.T) {
	checkGolden(t, Determinism, "detscope", "internal/core")
}

func TestFloatExactGolden(t *testing.T) {
	checkGolden(t, FloatExact, "floatexact", "internal/dbf")
}

func TestOverflowGuardGolden(t *testing.T) {
	checkGolden(t, OverflowGuard, "overflowguard", "internal/dbf")
}

func TestErrSinkGolden(t *testing.T) {
	checkGolden(t, ErrSink, "errsink", "internal/exp")
}

func TestDirectiveProblemsGolden(t *testing.T) {
	checkGolden(t, Determinism, "directives", "internal/exp")
}

func TestHotAllocGolden(t *testing.T) {
	checkGoldenModule(t, HotAlloc, "hotalloc", "internal/hot")
}

func TestGuardedByGolden(t *testing.T) {
	checkGoldenModule(t, GuardedBy, "guardedby", "internal/guard")
}

func TestArenaEscapeGolden(t *testing.T) {
	checkGoldenModule(t, ArenaEscape, "arenaescape", "internal/arena")
}

// TestFileScoping proves Target.Match filters per file: a violation
// in an out-of-scope file is not reported.
func TestFileScoping(t *testing.T) {
	root := repoRoot(t)
	pkgDir := filepath.Join(root, "internal", "analysis", "testdata", "src", "floatexact")
	pkg, err := LoadPackage(root, pkgDir, "internal/dbf")
	if err != nil {
		t.Fatal(err)
	}
	none := func(relDir, base string) bool { return false }
	diags := RunPackage(pkg, []Target{{FloatExact, none}})
	for _, d := range diags {
		if d.Analyzer == FloatExact.Name {
			t.Errorf("out-of-scope file reported: %s", d)
		}
	}
}

// TestLoadModuleRepo loads this repository end to end: the loader
// must resolve every package (including the main packages) without
// type errors.
func TestLoadModuleRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	mod, err := LoadModule(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	byRel := map[string]*Package{}
	for _, pkg := range mod.Packages {
		byRel[pkg.RelDir] = pkg
	}
	for _, rel := range []string{"", "internal/dbf", "internal/exp", "cmd/rtlint"} {
		if byRel[rel] == nil {
			t.Errorf("module load missed package %q", rel)
		}
	}
}

// TestDiagnosticString pins the rendering the Makefile gate and CI
// logs rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "errsink", Message: "m"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line, d.Pos.Column = 3, 7
	if got, want := d.String(), "a/b.go:3:7: [errsink] m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestSortDiagnostics pins the report order.
func TestSortDiagnostics(t *testing.T) {
	mk := func(file string, line int) Diagnostic {
		var d Diagnostic
		d.Pos.Filename, d.Pos.Line = file, line
		return d
	}
	diags := []Diagnostic{mk("b.go", 1), mk("a.go", 9), mk("a.go", 2)}
	SortDiagnostics(diags)
	got := fmt.Sprintf("%s:%d %s:%d %s:%d",
		diags[0].Pos.Filename, diags[0].Pos.Line,
		diags[1].Pos.Filename, diags[1].Pos.Line,
		diags[2].Pos.Filename, diags[2].Pos.Line)
	if want := "a.go:2 a.go:9 b.go:1"; got != want {
		t.Errorf("sorted order = %s, want %s", got, want)
	}
}

var _ = ast.Inspect // keep go/ast imported for doc references
