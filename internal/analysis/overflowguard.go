package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// OverflowGuard protects the int64 fast path of the demand
// aggregates. Demand values are microsecond counts multiplied by job
// counts over an analysis horizon — products and running sums approach
// int64 range on adversarial task sets, and a silent wrap turns an
// infeasible set into a "schedulable" verdict. All multiplication (and
// shifting) of Duration/int64 demand values, and any addition of
// *derived* demand values (call results or products), must go through
// the checked helpers in internal/dbf/frac.go, which detect overflow
// and fall back to the big.Int/big.Rat tiers or saturate
// conservatively.
var OverflowGuard = &Analyzer{
	Name: "overflowguard",
	Doc:  "forbid raw *, <<, and derived + on Duration/int64 demand values outside the checked helpers in frac.go",
	Run:  runOverflowGuard,
}

func runOverflowGuard(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinaryOverflow(pass, n)
			case *ast.AssignStmt:
				checkAssignOverflow(pass, n)
			}
			return true
		})
	}
}

// isInt64Like reports whether t's underlying type is int64 — this
// covers rtime.Duration, rtime.Instant, and raw int64 demand counts.
func isInt64Like(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// derived reports whether x is a computed demand value — a call
// result, a product, or a sum/difference containing one — rather
// than a plain parameter or field. Sums of plain task parameters are
// bounded by validation; sums of derived values are where running
// demand totals overflow.
func derived(x ast.Expr) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.CallExpr:
		return true
	case *ast.BinaryExpr:
		switch x.Op {
		case token.MUL, token.SHL:
			return true
		case token.ADD, token.SUB:
			return derived(x.X) || derived(x.Y)
		}
	}
	return false
}

func (p *Pass) typeNameOf(e ast.Expr) string {
	// Qualify by package name, not import path, so diagnostics read
	// "rtime.Duration" the way the source does.
	return types.TypeString(p.Info.TypeOf(e), func(other *types.Package) string {
		if other == p.Pkg {
			return ""
		}
		return other.Name()
	})
}

func checkBinaryOverflow(pass *Pass, e *ast.BinaryExpr) {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		return // folded constant, checked by the compiler
	}
	if !isInt64Like(pass.Info.TypeOf(e.X)) {
		return
	}
	switch e.Op {
	case token.MUL:
		pass.Reportf(e.OpPos, "unchecked %s multiplication can wrap int64 and flip a schedulability verdict; use mul64/mulDur from internal/dbf/frac.go, or annotate with //rtlint:allow overflowguard -- <reason>", pass.typeNameOf(e.X))
	case token.SHL:
		pass.Reportf(e.OpPos, "unchecked %s left shift can wrap int64; use the checked helpers in internal/dbf/frac.go, or annotate with //rtlint:allow overflowguard -- <reason>", pass.typeNameOf(e.X))
	case token.ADD:
		if derived(e.X) || derived(e.Y) {
			pass.Reportf(e.OpPos, "unchecked %s addition of derived demand values can wrap int64; use add64/addDur from internal/dbf/frac.go, or annotate with //rtlint:allow overflowguard -- <reason>", pass.typeNameOf(e.X))
		}
	}
}

func checkAssignOverflow(pass *Pass, s *ast.AssignStmt) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 || !isInt64Like(pass.Info.TypeOf(s.Lhs[0])) {
		return
	}
	switch s.Tok {
	case token.MUL_ASSIGN:
		pass.Reportf(s.TokPos, "unchecked %s *= can wrap int64; use mul64/mulDur from internal/dbf/frac.go, or annotate with //rtlint:allow overflowguard -- <reason>", pass.typeNameOf(s.Lhs[0]))
	case token.SHL_ASSIGN:
		pass.Reportf(s.TokPos, "unchecked %s <<= can wrap int64; use the checked helpers in internal/dbf/frac.go, or annotate with //rtlint:allow overflowguard -- <reason>", pass.typeNameOf(s.Lhs[0]))
	case token.ADD_ASSIGN:
		if derived(s.Rhs[0]) {
			pass.Reportf(s.TokPos, "unchecked %s += of a derived demand value can wrap int64; use add64/addDur from internal/dbf/frac.go, or annotate with //rtlint:allow overflowguard -- <reason>", pass.typeNameOf(s.Lhs[0]))
		}
	}
}
