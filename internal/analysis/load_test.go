package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadModuleMissingGoMod asserts a tree without go.mod fails with
// the module-root error, not a panic or an empty module.
func TestLoadModuleMissingGoMod(t *testing.T) {
	dir := writeTree(t, map[string]string{"a/a.go": "package a\n"})
	if _, err := LoadModule(dir); err == nil || !strings.Contains(err.Error(), "reading module root") {
		t.Fatalf("err = %v, want module-root error", err)
	}
}

// TestLoadModuleNoModuleLine asserts a go.mod without a module
// directive is rejected.
func TestLoadModuleNoModuleLine(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":  "go 1.22\n",
		"a/a.go":  "package a\n",
		"b/b.go":  "package b\n",
		".hid/.x": "",
	})
	if _, err := LoadModule(dir); err == nil || !strings.Contains(err.Error(), "no module line") {
		t.Fatalf("err = %v, want no-module-line error", err)
	}
}

// TestLoadModuleSyntaxError asserts parse failures surface with the
// offending position.
func TestLoadModuleSyntaxError(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc broken( {\n",
	})
	if _, err := LoadModule(dir); err == nil || !strings.Contains(err.Error(), "a.go") {
		t.Fatalf("err = %v, want parse error naming a.go", err)
	}
}

// TestLoadModuleTypeError asserts type-check failures are collected
// and reported per package.
func TestLoadModuleTypeError(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc f() int { return undefinedName }\n",
	})
	if _, err := LoadModule(dir); err == nil || !strings.Contains(err.Error(), "type errors in tmpmod/a") {
		t.Fatalf("err = %v, want type errors in tmpmod/a", err)
	}
}

// TestLoadModuleImportCycle asserts mutually importing packages fail
// with the cycle guard instead of recursing forever.
func TestLoadModuleImportCycle(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"tmpmod/b\"\n\nvar X = b.Y\n",
		"b/b.go": "package b\n\nimport \"tmpmod/a\"\n\nvar Y = a.X\n",
	})
	if _, err := LoadModule(dir); err == nil || !strings.Contains(err.Error(), "import cycle through") {
		t.Fatalf("err = %v, want import-cycle error", err)
	}
}

// TestLoadModuleSkipsNonCode asserts testdata, vendor, hidden and
// underscore directories, and _test.go files stay out of the load.
func TestLoadModuleSkipsNonCode(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":               "module tmpmod\n\ngo 1.22\n",
		"a/a.go":               "package a\n",
		"a/a_test.go":          "package a\n\nfunc helper() {}\n",
		"a/testdata/bad.go":    "this is not Go\n",
		"vendor/v/v.go":        "also not Go\n",
		".hidden/h.go":         "not Go either\n",
		"_skip/s.go":           "nor this\n",
		"a/_underscore.go":     "nor this\n",
		"a/.dotfile.go":        "nor this\n",
		"docs/readme.markdown": "prose\n",
	})
	mod, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Packages) != 1 || mod.Packages[0].RelDir != "a" {
		t.Fatalf("packages = %+v, want exactly [a]", mod.Packages)
	}
	if got := mod.Packages[0].FileBases; len(got) != 1 || got[0] != "a.go" {
		t.Fatalf("file bases = %v, want [a.go]", got)
	}
}

// TestLoadPackageEmptyDir asserts a directory without Go sources is an
// explicit error.
func TestLoadPackageEmptyDir(t *testing.T) {
	mod := writeTree(t, map[string]string{"go.mod": "module tmpmod\n\ngo 1.22\n"})
	empty := t.TempDir()
	if _, err := LoadPackage(mod, empty, "x"); err == nil || !strings.Contains(err.Error(), "no Go source files") {
		t.Fatalf("err = %v, want no-sources error", err)
	}
}

// TestModulePathQuoted asserts quoted module lines parse.
func TestModulePathQuoted(t *testing.T) {
	dir := writeTree(t, map[string]string{"go.mod": "module \"tmpmod\"\n"})
	path, err := modulePath(dir)
	if err != nil || path != "tmpmod" {
		t.Fatalf("modulePath = %q, %v; want tmpmod", path, err)
	}
}
