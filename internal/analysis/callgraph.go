package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// FuncNode is one module function with a body: the unit the
// interprocedural analyzers traverse.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// CallGraph resolves call sites across the module. It is stdlib-only
// and deliberately conservative:
//
//   - direct calls and method calls on concrete receivers resolve to
//     their single static callee;
//   - interface method calls resolve by class-hierarchy analysis to
//     every in-module named type implementing the interface (callers
//     must treat the edge as any of them);
//   - calls through func values resolve to nothing and are reported as
//     unverifiable by analyzers that need the callee.
type CallGraph struct {
	nodes map[*types.Func]*FuncNode
	// namedTypes lists every named (non-interface) type declared in the
	// module, the CHA candidate set for interface calls.
	namedTypes []*types.Named
	// chaCache memoizes interface-method resolution.
	chaCache map[*types.Func][]*FuncNode
}

// CallTargets is the resolution of one call expression.
type CallTargets struct {
	// Static is the single in-module callee of a direct call, if any.
	Static *FuncNode
	// Interface holds the CHA candidates of an interface method call
	// (in-module implementations only).
	Interface []*FuncNode
	// External is the named callee living outside the module (stdlib),
	// if any.
	External *types.Func
	// Dynamic marks a call through a func value: no callee is known.
	Dynamic bool
	// Builtin is the builtin's name ("make", "append", ...), if any.
	Builtin string
	// Conversion marks a type conversion T(x), not a call.
	Conversion bool
}

// BuildCallGraph indexes every function declaration of the module and
// the named types needed for interface resolution.
func BuildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{
		nodes:    map[*types.Func]*FuncNode{},
		chaCache: map[*types.Func][]*FuncNode{},
	}
	for _, pkg := range mod.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					g.nodes[fn] = &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			g.namedTypes = append(g.namedTypes, named)
		}
	}
	sort.Slice(g.namedTypes, func(i, j int) bool {
		return g.namedTypes[i].Obj().Id() < g.namedTypes[j].Obj().Id()
	})
	return g
}

// Node returns the module function node for fn, or nil when fn has no
// body in the module (external, or declared without a body).
func (g *CallGraph) Node(fn *types.Func) *FuncNode {
	return g.nodes[fn]
}

// Nodes returns every module function node, ordered by position.
func (g *CallGraph) Nodes() []*FuncNode {
	out := make([]*FuncNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		pi := out[i].Pkg.Fset.Position(out[i].Decl.Pos())
		pj := out[j].Pkg.Fset.Position(out[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	return out
}

// Resolve classifies one call expression seen in pkg.
func (g *CallGraph) Resolve(pkg *Package, call *ast.CallExpr) CallTargets {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return CallTargets{Conversion: true}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Builtin:
			return CallTargets{Builtin: obj.Name()}
		case *types.Func:
			return g.resolveNamed(obj)
		default:
			return CallTargets{Dynamic: true}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			// Method call through a receiver expression.
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return CallTargets{Dynamic: true} // func-typed field
			}
			if types.IsInterface(sel.Recv()) {
				return CallTargets{Interface: g.resolveInterfaceCall(fn)}
			}
			return g.resolveNamed(fn)
		}
		// Package-qualified identifier (pkg.Func).
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return g.resolveNamed(fn)
		}
		return CallTargets{Dynamic: true}
	default:
		// Call of a call result, an index expression, a func literal
		// invoked in place, ...: a func value either way.
		return CallTargets{Dynamic: true}
	}
}

func (g *CallGraph) resolveNamed(fn *types.Func) CallTargets {
	if node := g.nodes[fn]; node != nil {
		return CallTargets{Static: node}
	}
	return CallTargets{External: fn}
}

// resolveInterfaceCall returns every in-module method that an
// interface call to m may dispatch to: for each module named type
// implementing m's interface, the type's own method of that name.
// Implementations whose body lives outside the module (promoted stdlib
// methods) contribute no node — callers see them through the shrunken
// candidate list and must stay conservative.
func (g *CallGraph) resolveInterfaceCall(m *types.Func) []*FuncNode {
	if cached, ok := g.chaCache[m]; ok {
		return cached
	}
	var out []*FuncNode
	iface, _ := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		g.chaCache[m] = nil
		return nil
	}
	for _, named := range g.namedTypes {
		var impl types.Type
		switch {
		case types.Implements(named, iface):
			impl = named
		case types.Implements(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			if node := g.nodes[fn]; node != nil {
				out = append(out, node)
			}
		}
	}
	g.chaCache[m] = out
	return out
}
