package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ArenaEscape guards the aliasing hazard scratch arenas introduce:
// a value aliasing an //rtlint:arena field (solver scratch tables, the
// scheduler's job free-list) is only valid until its owner reuses the
// arena, so it must not outlive the call that borrowed it.
//
// Per function, a flow-insensitive taint analysis marks every local
// value derived from an arena field read — through selectors, index
// and slice expressions, address-of, conversions, append (which
// aliases its first argument's backing array), and calls to in-module
// helpers whose results alias their parameters (param-return alias
// summaries cover the growInts-style arena growers). Tainted values
// may circulate freely inside the owning package; the analyzer reports
// the escapes:
//
//   - returning a tainted value from an exported function or method
//     (unexported helpers returning scratch to their callers stay
//     inside the arena's ownership domain);
//   - storing a tainted value into a field of an untainted, non-arena
//     destination, or into a package-level variable;
//   - sending a tainted value on a channel;
//   - capturing a tainted variable in a func literal.
//
// Approximation boundaries (documented in DESIGN.md): taint only
// attaches to values whose type can hold a reference (scalar reads out
// of an arena are copies and stay clean), interface- and error-typed
// call results are never considered tainted, struct-typed results of
// callees are not tracked, and taint is per-variable rather than
// per-path — a variable tainted on any assignment is treated as
// tainted everywhere in the function.
var ArenaEscape = &ModuleAnalyzer{
	Name: "arenaescape",
	Doc:  "values aliasing //rtlint:arena scratch must not escape their owner",
	Run:  runArenaEscape,
}

func runArenaEscape(pass *ModulePass) {
	if len(pass.Ann.Arena) == 0 {
		return
	}
	summaries := buildAliasSummaries(pass)
	for _, node := range pass.Graph.Nodes() {
		w := &taintWalker{pass: pass, node: node, summaries: summaries, tainted: map[*types.Var]bool{}}
		w.propagate()
		w.reportEscapes()
	}
}

// aliasSummary describes what a function's slice/pointer results may
// alias: parameters (growInts returns its argument resliced) and, for
// one interprocedural level, the arena fields the function reads
// itself (a helper returning s.buf[:n] taints its callers' results).
type aliasSummary struct {
	params map[*types.Var]bool
	arena  bool
}

// buildAliasSummaries computes, for every module function returning a
// slice or pointer, which parameters or arena fields its results may
// alias. Derivation is tracked through local variables by a per-
// function fixpoint, but not through further calls — one summary
// level, enough for the arena growth and borrow helpers.
func buildAliasSummaries(pass *ModulePass) map[*types.Func]*aliasSummary {
	out := map[*types.Func]*aliasSummary{}
	for _, node := range pass.Graph.Nodes() {
		sig := node.Fn.Type().(*types.Signature)
		aliasable := false
		for i := 0; i < sig.Results().Len(); i++ {
			if isAliasType(sig.Results().At(i).Type()) {
				aliasable = true
			}
		}
		if !aliasable {
			continue
		}
		params := map[*types.Var]bool{}
		if recv := sig.Recv(); recv != nil {
			params[recv] = true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			params[sig.Params().At(i)] = true
		}
		info := node.Pkg.Info

		// derived maps each local to the parameters its value may
		// alias; derivedArena marks locals aliasing an arena field.
		derived := map[*types.Var]map[*types.Var]bool{}
		derivedArena := map[*types.Var]bool{}
		resolve := func(e ast.Expr) (map[*types.Var]bool, bool) {
			ps := map[*types.Var]bool{}
			arena := exprReadsArena(info, pass.Ann, e)
			for _, v := range baseVars(info, e) {
				if params[v] {
					ps[v] = true
				}
				for p := range derived[v] {
					ps[p] = true
				}
				arena = arena || derivedArena[v]
			}
			return ps, arena
		}
		for changed := true; changed; {
			changed = false
			ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
				assign, ok := n.(*ast.AssignStmt)
				if !ok || len(assign.Lhs) != len(assign.Rhs) {
					return true
				}
				for i, rhs := range assign.Rhs {
					id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
					if !ok {
						continue
					}
					v := lhsVar(info, id)
					if v == nil {
						continue
					}
					ps, arena := resolve(rhs)
					if arena && !derivedArena[v] {
						derivedArena[v] = true
						changed = true
					}
					for p := range ps {
						if derived[v] == nil {
							derived[v] = map[*types.Var]bool{}
						}
						if !derived[v][p] {
							derived[v][p] = true
							changed = true
						}
					}
				}
				return true
			})
		}

		summary := &aliasSummary{params: map[*types.Var]bool{}}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				ps, arena := resolve(res)
				summary.arena = summary.arena || arena
				for p := range ps {
					summary.params[p] = true
				}
			}
			return true
		})
		if summary.arena || len(summary.params) > 0 {
			out[node.Fn] = summary
		}
	}
	return out
}

// exprReadsArena reports whether expr itself dereferences an
// //rtlint:arena field (not counting derivation through locals).
func exprReadsArena(info *types.Info, ann *Annotations, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if f, ok := s.Obj().(*types.Var); ok && ann.Arena[f] {
				found = true
			}
		}
		return true
	})
	return found
}

// isAliasType reports whether values of t are direct aliases of arena
// memory: slices and pointers. Interfaces and structs are deliberately
// excluded (see the analyzer doc).
func isAliasType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer:
		return true
	}
	return false
}

// canCarryAlias reports whether values of t can hold a reference to
// arena memory at all. Pure value types — numbers, booleans, strings,
// and aggregates of them — are copied on assignment, so taint never
// flows through them.
func canCarryAlias(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if canCarryAlias(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return canCarryAlias(u.Elem())
	}
	return true // tuples and the like: stay conservative
}

// baseVars lists the variables at the root of expr's aliasing chains.
// append is the one call it sees through (the result aliases the first
// argument's backing array); other calls end the chain.
func baseVars(info *types.Info, expr ast.Expr) []*types.Var {
	var out []*types.Var
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok {
				out = append(out, v)
			}
		case *ast.SelectorExpr:
			walk(e.X)
		case *ast.IndexExpr:
			walk(e.X)
		case *ast.SliceExpr:
			walk(e.X)
		case *ast.StarExpr:
			walk(e.X)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				walk(e.X)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && len(e.Args) > 0 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					walk(e.Args[0])
				}
			}
		}
	}
	walk(expr)
	return out
}

type taintWalker struct {
	pass      *ModulePass
	node      *FuncNode
	summaries map[*types.Func]*aliasSummary
	tainted   map[*types.Var]bool
}

// propagate runs the assignment fixpoint: variables assigned from
// tainted expressions become tainted until the set stabilizes.
func (w *taintWalker) propagate() {
	info := w.node.Pkg.Info
	for changed := true; changed; {
		changed = false
		mark := func(v *types.Var) {
			if v != nil && !w.tainted[v] {
				w.tainted[v] = true
				changed = true
			}
		}
		ast.Inspect(w.node.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				w.propagateAssign(n, mark)
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if w.taintedExpr(v) && i < len(n.Names) {
						mark(defVar(info, n.Names[i]))
					}
				}
			case *ast.RangeStmt:
				if w.taintedExpr(n.X) && n.Value != nil {
					if id, ok := n.Value.(*ast.Ident); ok {
						if v := defVar(info, id); v != nil && isAliasType(v.Type()) {
							mark(v)
						}
					}
				}
			}
			return true
		})
	}
}

func (w *taintWalker) propagateAssign(assign *ast.AssignStmt, mark func(*types.Var)) {
	info := w.node.Pkg.Info
	if len(assign.Lhs) == len(assign.Rhs) {
		for i, rhs := range assign.Rhs {
			if !w.taintedExpr(rhs) {
				continue
			}
			if id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok {
				mark(lhsVar(info, id))
			}
		}
		return
	}
	// Tuple assignment from one call: taint the alias-typed targets
	// when the call is tainted.
	if len(assign.Rhs) == 1 && w.taintedExpr(assign.Rhs[0]) {
		for _, lhs := range assign.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if v := lhsVar(info, id); v != nil && isAliasType(v.Type()) {
					mark(v)
				}
			}
		}
	}
}

// lhsVar resolves an assignment target ident whether it defines (:=)
// or uses (=) the variable.
func lhsVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func defVar(info *types.Info, id *ast.Ident) *types.Var {
	v, _ := info.Defs[id].(*types.Var)
	return v
}

// taintedExpr reports whether expr may alias arena memory.
func (w *taintWalker) taintedExpr(expr ast.Expr) bool {
	info := w.node.Pkg.Info
	if t := info.TypeOf(expr); t != nil && !canCarryAlias(t) {
		// Scalar reads out of an arena (a job's remaining budget, a
		// cached profit) copy the value; they cannot alias its memory.
		return false
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		return ok && w.tainted[v]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if f, ok := sel.Obj().(*types.Var); ok && w.pass.Ann.Arena[f] {
				return true // source: arena field read
			}
		}
		return w.taintedExpr(e.X)
	case *ast.IndexExpr:
		return w.taintedExpr(e.X)
	case *ast.SliceExpr:
		return w.taintedExpr(e.X)
	case *ast.StarExpr:
		return w.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && w.taintedExpr(e.X)
	case *ast.CallExpr:
		return w.taintedCall(e)
	}
	return false
}

// taintedCall decides whether a call result may alias arena memory:
// append aliases its first argument, conversions their operand,
// summarized in-module helpers their recorded parameters, and unknown
// slice/pointer-returning callees any argument (conservatively).
// Interface- and error-typed results are never tainted.
func (w *taintWalker) taintedCall(call *ast.CallExpr) bool {
	info := w.node.Pkg.Info
	targets := w.pass.Graph.Resolve(w.node.Pkg, call)
	switch {
	case targets.Builtin == "append":
		return len(call.Args) > 0 && w.taintedExpr(call.Args[0])
	case targets.Builtin != "":
		return false
	case targets.Conversion:
		return len(call.Args) == 1 && isAliasType(info.TypeOf(call.Fun)) && w.taintedExpr(call.Args[0])
	}
	if t := info.TypeOf(call); t == nil || !isAliasType(t) {
		return false
	}
	if targets.Static != nil {
		summary, ok := w.summaries[targets.Static.Fn]
		if !ok {
			return false // returns fresh memory on every path
		}
		if summary.arena {
			return true // callee hands out its own arena
		}
		sig := targets.Static.Fn.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil && summary.params[recv] {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && w.taintedExpr(sel.X) {
				return true
			}
		}
		for i, arg := range call.Args {
			if i < sig.Params().Len() && summary.params[sig.Params().At(i)] && w.taintedExpr(arg) {
				return true
			}
		}
		return false
	}
	// External or dynamic slice/pointer-returning call: conservative.
	for _, arg := range call.Args {
		if w.taintedExpr(arg) {
			return true
		}
	}
	return false
}

// reportEscapes scans the function for taint sinks.
func (w *taintWalker) reportEscapes() {
	info := w.node.Pkg.Info
	exported := ast.IsExported(w.node.Decl.Name.Name)
	ast.Inspect(w.node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if !exported {
				return true
			}
			for _, res := range n.Results {
				if w.taintedExpr(res) {
					w.pass.Reportf(res.Pos(), "arena-aliasing value returned from exported %s escapes its owner", w.node.Decl.Name.Name)
				}
			}
		case *ast.AssignStmt:
			w.checkStores(n)
		case *ast.SendStmt:
			if w.taintedExpr(n.Value) {
				w.pass.Reportf(n.Value.Pos(), "arena-aliasing value sent on a channel escapes its owner")
			}
		case *ast.FuncLit:
			w.checkCapture(n)
			return false
		}
		return true
	})
	_ = info
}

// checkStores flags stores of tainted values into destinations outside
// the arena: a field of an untainted base that is not itself an arena
// field, or a package-level variable. Stores back into arena fields
// (the growth idiom s.dp.w = growInts(s.dp.w, n)) and into fields of
// already-tainted bases stay inside the owner.
func (w *taintWalker) checkStores(assign *ast.AssignStmt) {
	info := w.node.Pkg.Info
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		if !w.taintedExpr(assign.Rhs[i]) {
			continue
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if w.arenaRooted(l) || w.taintedExpr(l.X) {
				continue
			}
			w.pass.Reportf(l.Pos(), "arena-aliasing value stored into non-arena field %s escapes its owner", types.ExprString(l))
		case *ast.Ident:
			if v, ok := info.Uses[l].(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
				w.pass.Reportf(l.Pos(), "arena-aliasing value stored into package-level %s escapes its owner", l.Name)
			}
		}
	}
}

// arenaRooted reports whether the selector chain passes through an
// //rtlint:arena field — the destination lives inside the arena.
func (w *taintWalker) arenaRooted(expr ast.Expr) bool {
	info := w.node.Pkg.Info
	for {
		sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if f, ok := s.Obj().(*types.Var); ok && w.pass.Ann.Arena[f] {
				return true
			}
		}
		expr = sel.X
	}
}

// checkCapture flags func literals that capture tainted variables.
func (w *taintWalker) checkCapture(lit *ast.FuncLit) {
	info := w.node.Pkg.Info
	defined := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				defined[obj] = true
			}
		}
		return true
	})
	reported := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || defined[v] || !w.tainted[v] || reported[v] {
			return true
		}
		reported[v] = true
		w.pass.Reportf(id.Pos(), "closure captures arena-aliasing %s; the alias may outlive its owner", v.Name())
		return true
	})
}
