package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces an rtlint comment. The only verb is
// "allow":
//
//	//rtlint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// The reason is mandatory: an exemption must say why it is safe.
const directivePrefix = "rtlint:"

// directiveAnalyzer attributes directive problems in diagnostics.
const directiveAnalyzer = "directive"

type directive struct {
	pos       token.Position
	analyzers []string
	reason    string
	problem   string // non-empty: parse error, reported as a finding
	used      bool
}

// DirectiveSet holds the parsed rtlint directives of one package and
// tracks which of them actually suppressed a finding.
type DirectiveSet struct {
	// byLine maps filename -> line -> directives covering that line.
	// A directive covers its own line and the one directly below it.
	byLine map[string]map[int][]*directive
	all    []*directive
}

// ParseDirectives scans every comment in files for rtlint directives.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *DirectiveSet {
	s := &DirectiveSet{byLine: map[string]map[int][]*directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				d := parseDirective(text)
				d.pos = fset.Position(c.Pos())
				s.all = append(s.all, d)
				lines := s.byLine[d.pos.Filename]
				if lines == nil {
					lines = map[int][]*directive{}
					s.byLine[d.pos.Filename] = lines
				}
				lines[d.pos.Line] = append(lines[d.pos.Line], d)
				lines[d.pos.Line+1] = append(lines[d.pos.Line+1], d)
			}
		}
	}
	return s
}

// directiveText strips the comment markers and reports whether the
// comment is an rtlint directive.
func directiveText(comment string) (string, bool) {
	var body string
	switch {
	case strings.HasPrefix(comment, "//"):
		body = comment[2:]
	case strings.HasPrefix(comment, "/*"):
		body = strings.TrimSuffix(comment[2:], "*/")
	default:
		return "", false
	}
	if !strings.HasPrefix(body, directivePrefix) {
		return "", false
	}
	return strings.TrimPrefix(body, directivePrefix), true
}

func parseDirective(text string) *directive {
	d := &directive{}
	rest, ok := strings.CutPrefix(text, "allow")
	if !ok {
		d.problem = "unknown rtlint directive verb; only //rtlint:allow is defined"
		return d
	}
	names, reason, found := strings.Cut(rest, "--")
	if !found || strings.TrimSpace(reason) == "" {
		d.problem = "rtlint:allow directive needs a reason: //rtlint:allow <analyzer> -- <reason>"
		return d
	}
	// Golden-test files embed "// want" expectations in the same line
	// comment; they are not part of the reason.
	if want := strings.Index(reason, "// want"); want >= 0 {
		reason = reason[:want]
	}
	d.reason = strings.TrimSpace(reason)
	known := map[string]bool{}
	for _, a := range All {
		known[a.Name] = true
	}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			d.problem = "rtlint:allow names unknown analyzer " + name
			return d
		}
		d.analyzers = append(d.analyzers, name)
	}
	if len(d.analyzers) == 0 {
		d.problem = "rtlint:allow directive names no analyzer"
	}
	return d
}

// Allows reports whether a directive covers (analyzer, pos), marking
// the directive used.
func (s *DirectiveSet) Allows(analyzer string, pos token.Position) bool {
	allowed := false
	for _, d := range s.byLine[pos.Filename][pos.Line] {
		if d.problem != "" {
			continue
		}
		for _, name := range d.analyzers {
			if name == analyzer {
				d.used = true
				allowed = true
			}
		}
	}
	return allowed
}

// Problems reports malformed directives and directives that
// suppressed nothing, so no exemption can outlive the code it
// excused.
func (s *DirectiveSet) Problems() []Diagnostic {
	var diags []Diagnostic
	for _, d := range s.all {
		switch {
		case d.problem != "":
			diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: directiveAnalyzer, Message: d.problem})
		case !d.used:
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: directiveAnalyzer,
				Message:  "rtlint:allow " + strings.Join(d.analyzers, ",") + " suppresses nothing; delete the stale directive",
			})
		}
	}
	return diags
}
