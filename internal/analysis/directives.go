package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces an rtlint comment. Two families exist:
//
// Exemptions:
//
//	//rtlint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// The reason is mandatory: an exemption must say why it is safe. An
// allow directive covers its own source line and the line directly
// below it.
//
// Annotations, which declare the invariants the interprocedural
// analyzers enforce (see hotalloc.go, guardedby.go, arenaescape.go):
//
//	//rtlint:hotpath            (on a function: hot-path root)
//	//rtlint:guardedby <mutex>  (on a struct field: held-lock discipline)
//	//rtlint:arena              (on a struct field: scratch must not escape)
//	//rtlint:holds <x>.<mutex>  (on a function: caller passes the lock held)
//	//rtlint:acquires <mutex>   (on a function: returns with the result's lock held)
//
// An annotation binds to the declaration it documents (the line below
// it, or its own line when trailing). A directive that is malformed,
// names an unknown analyzer or verb, suppresses nothing, or annotates
// nothing is itself reported, so neither exemptions nor annotations
// can rot silently.
const directivePrefix = "rtlint:"

// directiveAnalyzer attributes directive problems in diagnostics.
const directiveAnalyzer = "directive"

type directive struct {
	pos       token.Position
	verb      string   // "allow" or an annotation verb
	analyzers []string // allow: the exempted analyzers
	args      []string // annotations: verb arguments
	reason    string
	problem   string // non-empty: parse error, reported as a finding
	used      bool
}

// annotationVerbs lists the declaration-binding verbs and whether they
// take exactly one argument.
var annotationVerbs = map[string]bool{
	"hotpath":   false,
	"arena":     false,
	"guardedby": true,
	"holds":     true,
	"acquires":  true,
}

// DirectiveSet holds the parsed rtlint directives of one package and
// tracks which of them actually suppressed a finding or bound to a
// declaration.
type DirectiveSet struct {
	// byLine maps filename -> line -> directives covering that line.
	// A directive covers its own line and the one directly below it.
	byLine map[string]map[int][]*directive
	all    []*directive
}

// ParseDirectives scans every comment in files for rtlint directives.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *DirectiveSet {
	s := &DirectiveSet{byLine: map[string]map[int][]*directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				d := parseDirective(text)
				d.pos = fset.Position(c.Pos())
				s.all = append(s.all, d)
				lines := s.byLine[d.pos.Filename]
				if lines == nil {
					lines = map[int][]*directive{}
					s.byLine[d.pos.Filename] = lines
				}
				lines[d.pos.Line] = append(lines[d.pos.Line], d)
				lines[d.pos.Line+1] = append(lines[d.pos.Line+1], d)
			}
		}
	}
	return s
}

// directiveText strips the comment markers and reports whether the
// comment is an rtlint directive.
func directiveText(comment string) (string, bool) {
	var body string
	switch {
	case strings.HasPrefix(comment, "//"):
		body = comment[2:]
	case strings.HasPrefix(comment, "/*"):
		body = strings.TrimSuffix(comment[2:], "*/")
	default:
		return "", false
	}
	if !strings.HasPrefix(body, directivePrefix) {
		return "", false
	}
	return strings.TrimPrefix(body, directivePrefix), true
}

// stripWant drops an embedded golden-test `// want` expectation; it is
// not part of the directive's payload.
func stripWant(s string) string {
	if want := strings.Index(s, "// want"); want >= 0 {
		s = s[:want]
	}
	return s
}

func parseDirective(text string) *directive {
	d := &directive{}
	if rest, ok := strings.CutPrefix(text, "allow"); ok {
		parseAllow(d, rest)
		return d
	}
	verb := text
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		verb = text[:i]
	}
	if wantArg, ok := annotationVerbs[verb]; ok {
		parseAnnotation(d, verb, wantArg, strings.TrimPrefix(text, verb))
		return d
	}
	d.problem = "unknown rtlint directive verb; known verbs: allow, hotpath, guardedby, arena, holds, acquires"
	return d
}

// parseAllow parses the exemption form: analyzers, then a mandatory
// reason after "--".
func parseAllow(d *directive, rest string) {
	d.verb = "allow"
	names, reason, found := strings.Cut(rest, "--")
	if !found || strings.TrimSpace(stripWant(reason)) == "" {
		d.problem = "rtlint:allow directive needs a reason: //rtlint:allow <analyzer> -- <reason>"
		return
	}
	d.reason = strings.TrimSpace(stripWant(reason))
	known := knownAnalyzerNames()
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			d.problem = "rtlint:allow names unknown analyzer " + name
			return
		}
		d.analyzers = append(d.analyzers, name)
	}
	if len(d.analyzers) == 0 {
		d.problem = "rtlint:allow directive names no analyzer"
	}
}

// parseAnnotation parses the declaration-binding verbs. An optional
// "-- reason" tail is tolerated (and encouraged on hotpath roots).
func parseAnnotation(d *directive, verb string, wantArg bool, rest string) {
	d.verb = verb
	args, reason, _ := strings.Cut(rest, "--")
	d.reason = strings.TrimSpace(stripWant(reason))
	fields := strings.Fields(stripWant(args))
	switch {
	case wantArg && len(fields) != 1:
		d.problem = "rtlint:" + verb + " takes exactly one argument: //rtlint:" + verb + " <name>"
	case !wantArg && len(fields) != 0:
		d.problem = "rtlint:" + verb + " takes no arguments"
	default:
		d.args = fields
	}
}

// knownAnalyzerNames collects every analyzer an allow directive may
// name: the per-package analyzers plus the interprocedural ones.
func knownAnalyzerNames() map[string]bool {
	known := map[string]bool{}
	for _, a := range All {
		known[a.Name] = true
	}
	for _, a := range AllInterprocedural {
		known[a.Name] = true
	}
	return known
}

// Allows reports whether an allow directive covers (analyzer, pos),
// marking the directive used.
func (s *DirectiveSet) Allows(analyzer string, pos token.Position) bool {
	allowed := false
	for _, d := range s.byLine[pos.Filename][pos.Line] {
		if d.problem != "" || d.verb != "allow" {
			continue
		}
		for _, name := range d.analyzers {
			if name == analyzer {
				d.used = true
				allowed = true
			}
		}
	}
	return allowed
}

// annotationsAt returns the well-formed annotation directives with the
// given verb covering (filename, line) — i.e. written on that line or
// the line directly above it.
func (s *DirectiveSet) annotationsAt(verb, filename string, line int) []*directive {
	var out []*directive
	for _, d := range s.byLine[filename][line] {
		if d.problem == "" && d.verb == verb {
			out = append(out, d)
		}
	}
	return out
}

// Problems reports malformed directives, allow directives that
// suppressed nothing, and annotations that bound to no declaration, so
// no exemption or annotation can outlive the code it describes.
func (s *DirectiveSet) Problems() []Diagnostic {
	var diags []Diagnostic
	for _, d := range s.all {
		switch {
		case d.problem != "":
			diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: directiveAnalyzer, Message: d.problem})
		case d.used:
		case d.verb == "allow":
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: directiveAnalyzer,
				Message:  "rtlint:allow " + strings.Join(d.analyzers, ",") + " suppresses nothing; delete the stale directive",
			})
		default:
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: directiveAnalyzer,
				Message:  "rtlint:" + d.verb + " annotates nothing; attach it to a " + annotationTarget(d.verb) + " or delete it",
			})
		}
	}
	return diags
}

// annotationTarget names the declaration kind a verb must document,
// for the annotates-nothing diagnostic.
func annotationTarget(verb string) string {
	switch verb {
	case "guardedby", "arena":
		return "struct field"
	default:
		return "function declaration"
	}
}
