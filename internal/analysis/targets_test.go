package analysis

import "testing"

// TestDefaultTargetsScope pins the repository gate configuration:
// which analyzer inspects which (directory, file) — in particular the
// floatexact scope over the exact-rational core files and the
// overflowguard carve-out for the checked helpers in frac.go.
func TestDefaultTargetsScope(t *testing.T) {
	byName := map[string]func(relDir, base string) bool{}
	for _, tgt := range DefaultTargets() {
		byName[tgt.Analyzer.Name] = tgt.Match
	}
	cases := []struct {
		analyzer, relDir, base string
		want                   bool
	}{
		{"determinism", "internal/exp", "tables.go", true},
		{"determinism", "cmd/casestudy", "main.go", true},

		{"floatexact", "internal/dbf", "analyzer.go", true},
		{"floatexact", "internal/core", "exact.go", true},
		{"floatexact", "internal/core", "estimator.go", true},
		{"floatexact", "internal/core", "admission.go", true},
		{"floatexact", "internal/core", "core.go", true},
		{"floatexact", "internal/core", "decisionio.go", true},
		{"floatexact", "internal/core", "baseline.go", false},
		{"floatexact", "internal/mckp", "solver.go", false},

		{"overflowguard", "internal/dbf", "analyzer.go", true},
		{"overflowguard", "internal/dbf", "frac.go", false},
		{"overflowguard", "internal/core", "core.go", true},
		{"overflowguard", "internal/sched", "engine.go", false},

		{"errsink", "internal/trace", "render.go", true},
		{"errsink", "", "root.go", true},
		{"errsink", "cmd/casestudy", "main.go", false},
	}
	for _, tc := range cases {
		match, ok := byName[tc.analyzer]
		if !ok {
			t.Fatalf("no target for analyzer %q", tc.analyzer)
		}
		if got := match(tc.relDir, tc.base); got != tc.want {
			t.Errorf("%s match(%q, %q) = %v, want %v", tc.analyzer, tc.relDir, tc.base, got, tc.want)
		}
	}
}
