package analysis

import (
	"go/ast"
	"go/types"
)

// GuardedBy enforces lock discipline on fields annotated
// //rtlint:guardedby <mutex>: every access must happen while the
// sibling mutex is held on the same base path (tn.adm needs tn.mu,
// s.tenants needs s.mu).
//
// Held locks are tracked per function by a small branch-aware abstract
// interpretation over the statement tree:
//
//   - x.Lock() / x.RLock() add the lock path, x.Unlock() / x.RUnlock()
//     remove it; deferred unlocks keep the lock held to function end;
//   - if/switch/select branches are walked on copies of the held set,
//     and a branch that terminates (return, break, continue, panic)
//     does not leak its lock effects into the code after the branch —
//     the unlock-and-return error pattern stays precise;
//   - loop bodies are walked on a copy: a lock acquired inside an
//     iteration is not assumed held after the loop;
//   - //rtlint:holds p.mu on a function seeds its entry state, and the
//     analyzer checks every call site passes a locked value;
//   - //rtlint:acquires mu on a function marks lock handoff through
//     its first result: callers hold result.mu after the call.
//
// Approximations (documented in DESIGN.md): lock paths are compared
// textually (types.ExprString), func literals inherit the ambient held
// set, and RLock counts as held without distinguishing read from write
// access.
var GuardedBy = &ModuleAnalyzer{
	Name: "guardedby",
	Doc:  "fields annotated //rtlint:guardedby may only be accessed with the lock held",
	Run:  runGuardedBy,
}

func runGuardedBy(pass *ModulePass) {
	if len(pass.Ann.Guarded) == 0 {
		return
	}
	for _, node := range pass.Graph.Nodes() {
		held := map[string]bool{}
		for _, path := range pass.Ann.Holds[node.Fn] {
			held[path] = true
		}
		w := &lockWalker{pass: pass, node: node}
		w.walkStmts(node.Decl.Body.List, held)
	}
}

type lockWalker struct {
	pass *ModulePass
	node *FuncNode
}

// mutexOps classifies the sync lock/unlock methods by FullName.
var mutexOps = map[string]int{
	"(*sync.Mutex).Lock":      opLock,
	"(*sync.Mutex).TryLock":   opNone, // result-dependent; not tracked
	"(*sync.Mutex).Unlock":    opUnlock,
	"(*sync.RWMutex).Lock":    opLock,
	"(*sync.RWMutex).Unlock":  opUnlock,
	"(*sync.RWMutex).RLock":   opLock,
	"(*sync.RWMutex).RUnlock": opUnlock,
}

const (
	opNone = iota
	opLock
	opUnlock
)

// lockOp classifies call as a mutex operation and returns the lock
// path ("s.mu") it applies to.
func (w *lockWalker) lockOp(call *ast.CallExpr) (string, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	fn, ok := w.node.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", opNone
	}
	op, ok := mutexOps[fn.FullName()]
	if !ok || op == opNone {
		return "", opNone
	}
	return types.ExprString(ast.Unparen(sel.X)), op
}

// walkStmts interprets a statement list against the held-lock set,
// mutating held in place. It reports whether the list always
// terminates the enclosing flow (return/branch/panic), in which case
// its lock effects must not leak to the code after it.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]bool) bool {
	for _, stmt := range stmts {
		if w.walkStmt(stmt, held) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held map[string]bool) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if w.applyCall(call, held) {
				return true // panic()
			}
			return false
		}
		w.checkExpr(s.X, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.checkExpr(rhs, held)
		}
		for _, lhs := range s.Lhs {
			w.checkExpr(lhs, held)
		}
		w.applyAcquires(s, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.applyDefer(s, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, held)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IfStmt:
		return w.walkIf(s, held)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		body := copyHeld(held)
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		body := copyHeld(held)
		w.walkStmts(s.Body.List, body)
	case *ast.SwitchStmt:
		return w.walkCases(s.Init, s.Tag, s.Body, held)
	case *ast.TypeSwitchStmt:
		return w.walkCases(s.Init, nil, s.Body, held)
	case *ast.SelectStmt:
		return w.walkCases(nil, nil, s.Body, held)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.GoStmt:
		w.checkExpr(s.Call, held)
	case *ast.SendStmt:
		w.checkExpr(s.Chan, held)
		w.checkExpr(s.Value, held)
	case *ast.IncDecStmt:
		w.checkExpr(s.X, held)
	}
	return false
}

// applyCall handles a call in statement position: lock-set effects,
// panic termination, and the usual access checks.
func (w *lockWalker) applyCall(call *ast.CallExpr, held map[string]bool) (terminates bool) {
	if path, op := w.lockOp(call); op != opNone {
		switch op {
		case opLock:
			held[path] = true
		case opUnlock:
			delete(held, path)
		}
		return false
	}
	w.checkExpr(call, held)
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.node.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	return false
}

// applyDefer interprets a defer: a deferred unlock keeps the lock held
// for the rest of the function (it releases after every access we will
// check); any other deferred call is checked against the current held
// set as an approximation of the at-return state.
func (w *lockWalker) applyDefer(s *ast.DeferStmt, held map[string]bool) {
	if _, op := w.lockOp(s.Call); op == opUnlock {
		return
	}
	w.checkExpr(s.Call, held)
}

// walkIf interprets an if statement: each branch runs on its own copy
// of the held set, and only the branches that fall through contribute
// to the state after the statement.
func (w *lockWalker) walkIf(s *ast.IfStmt, held map[string]bool) bool {
	if s.Init != nil {
		w.walkStmt(s.Init, held)
	}
	w.checkExpr(s.Cond, held)
	thenHeld := copyHeld(held)
	thenTerm := w.walkStmts(s.Body.List, thenHeld)
	elseHeld := copyHeld(held)
	elseTerm := false
	if s.Else != nil {
		elseTerm = w.walkStmt(s.Else, elseHeld)
	}
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		replaceHeld(held, elseHeld)
	case elseTerm:
		replaceHeld(held, thenHeld)
	default:
		replaceHeld(held, intersectHeld(thenHeld, elseHeld))
	}
	return false
}

// walkCases interprets switch/type-switch/select bodies: every clause
// runs on a copy, and the state after the statement is the
// intersection of the fall-through outcomes (plus the entry state when
// no default clause exists).
func (w *lockWalker) walkCases(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, held map[string]bool) bool {
	if init != nil {
		w.walkStmt(init, held)
	}
	if tag != nil {
		w.checkExpr(tag, held)
	}
	var outcomes []map[string]bool
	hasDefault := false
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.checkExpr(e, held)
			}
			hasDefault = hasDefault || c.List == nil
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm, held)
			}
			hasDefault = hasDefault || c.Comm == nil
			stmts = c.Body
		}
		ch := copyHeld(held)
		if !w.walkStmts(stmts, ch) {
			outcomes = append(outcomes, ch)
		}
	}
	if !hasDefault {
		outcomes = append(outcomes, copyHeld(held))
	}
	if len(outcomes) == 0 {
		return true
	}
	merged := outcomes[0]
	for _, o := range outcomes[1:] {
		merged = intersectHeld(merged, o)
	}
	replaceHeld(held, merged)
	return false
}

// applyAcquires handles lock handoff: tn, err := s.grab(...) where
// grab is annotated //rtlint:acquires mu leaves tn.mu held.
func (w *lockWalker) applyAcquires(assign *ast.AssignStmt, held map[string]bool) {
	if len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	targets := w.pass.Graph.Resolve(w.node.Pkg, call)
	if targets.Static == nil {
		return
	}
	mutex, ok := w.pass.Ann.Acquires[targets.Static.Fn]
	if !ok {
		return
	}
	lhs := ast.Unparen(assign.Lhs[0])
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	held[types.ExprString(lhs)+"."+mutex] = true
}

// checkExpr reports guarded-field accesses in expr that lack their
// lock, and enforces //rtlint:holds contracts at call sites. Func
// literals are walked with the ambient held set.
func (w *lockWalker) checkExpr(expr ast.Expr, held map[string]bool) {
	if expr == nil {
		return
	}
	info := w.node.Pkg.Info
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			sel, ok := info.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			field, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			guard, ok := w.pass.Ann.Guarded[field]
			if !ok {
				return true
			}
			path := types.ExprString(ast.Unparen(n.X)) + "." + guard.Name()
			if !held[path] {
				w.pass.Reportf(n.Sel.Pos(), "access to guarded field %s requires %s held", types.ExprString(n), path)
			}
		case *ast.CallExpr:
			w.checkHoldsContract(n, held)
		case *ast.FuncLit:
			w.walkStmts(n.Body.List, copyHeld(held))
			return false
		}
		return true
	})
}

// checkHoldsContract verifies that a call to a //rtlint:holds-annotated
// function passes its locked parameter with the lock actually held.
func (w *lockWalker) checkHoldsContract(call *ast.CallExpr, held map[string]bool) {
	targets := w.pass.Graph.Resolve(w.node.Pkg, call)
	if targets.Static == nil {
		return
	}
	fn := targets.Static.Fn
	paths := w.pass.Ann.Holds[fn]
	if len(paths) == 0 {
		return
	}
	sig := fn.Type().(*types.Signature)
	for _, path := range paths {
		base, mutex, _ := cutLast(path, ".")
		arg := w.argForParam(call, sig, base)
		if arg == nil {
			continue
		}
		need := types.ExprString(ast.Unparen(arg)) + "." + mutex
		if !held[need] {
			w.pass.Reportf(call.Pos(), "call to %s requires %s held (declared //rtlint:holds %s)", fn.Name(), need, path)
		}
	}
}

// argForParam maps a callee parameter (or receiver) name to the
// argument expression at this call site.
func (w *lockWalker) argForParam(call *ast.CallExpr, sig *types.Signature, name string) ast.Expr {
	if recv := sig.Recv(); recv != nil && recv.Name() == name {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == name && i < len(call.Args) {
			return call.Args[i]
		}
	}
	return nil
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func replaceHeld(dst, src map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func intersectHeld(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}
