package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the parallel experiment engine's promise:
// bit-identical output at any worker count, on any machine, on any Go
// release. Three things break that silently — wall-clock reads, the
// process-global math/rand source, and map iteration order reaching
// rendered output — so all three are banned from analysis and
// experiment code. The legitimate wall-clock timers in cmd/* carry
// explicit //rtlint:allow determinism directives.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, the global math/rand source, and map-range iteration in output-producing packages",
	Run:  runDeterminism,
}

// clockFuncs are the package time functions that read the wall clock
// (directly or via the runtime timer); everything else in package time
// (Date, Unix, ParseDuration, …) is a pure function of its inputs.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// randConstructors are the package-level math/rand functions that
// build an explicitly seeded generator; they are the sanctioned way
// to hold randomness (the repo's own stats.RNG is preferred). Every
// other package-level function draws from the shared global source,
// whose stream depends on whatever else the process consumed.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// orderedOutputDirs are the packages whose results reach rendered
// tables, charts, and traces: any map-range order leak here shows up
// as a diff between two identical runs. Elsewhere map ranges are
// allowed (their results must not feed output).
var orderedOutputDirs = map[string]bool{
	"internal/exp":   true,
	"internal/stats": true,
	"internal/trace": true,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkClockAndRand(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
}

func checkClockAndRand(pass *Pass, id *ast.Ident) {
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods are fine; only package-level functions matter here
	}
	switch fn.Pkg().Path() {
	case "time":
		if clockFuncs[fn.Name()] {
			pass.Reportf(id.Pos(), "time.%s reads the wall clock and breaks run-to-run determinism; thread an explicit timestamp, or annotate with //rtlint:allow determinism -- <reason>", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(id.Pos(), "%s.%s draws from the process-global random source; use stats.RNG (or an explicitly seeded rand.New), or annotate with //rtlint:allow determinism -- <reason>", fn.Pkg().Path(), fn.Name())
		}
	}
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt) {
	if !orderedOutputDirs[pass.RelDir] {
		return
	}
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	pass.Reportf(rs.Pos(), "map iteration order is nondeterministic and this package feeds rendered output; collect keys and sort them first, or annotate with //rtlint:allow determinism -- <reason>")
}
