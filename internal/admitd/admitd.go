// Package admitd implements the online admission-control service
// fronting the Offloading Decision Manager: tenants stream
// admit/update/evict requests, each tenant's task system is an
// independent shard, and every re-decision rides the incremental
// core.Admission path — cached per-task MCKP classes and a persistent
// dbf.Analyzer advanced by O(1) deltas — instead of a from-scratch
// Decide.
//
// Concurrency model: Service.mu guards only the tenant map; each
// tenant's admission state is guarded by the shard's own mutex, so
// decisions for different tenants proceed in parallel while each
// tenant's operation stream is serialized. That serialization is what
// makes per-tenant decisions bit-identical to a serial replay of the
// same churn log (TestServiceMatchesSerialReplay). Lock order is
// Service.mu → tenant.mu, taken together only by the reaper;
// operation paths release Service.mu before taking the shard lock and
// retry when the shard was reaped in the gap.
package admitd

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"rtoffload/internal/core"
	"rtoffload/internal/rtime"
	"rtoffload/internal/task"
)

// ErrUnknownTenant reports an operation against a tenant that has no
// admitted tasks.
var ErrUnknownTenant = errors.New("admitd: unknown tenant")

// Service is the concurrent, tenant-sharded admission server.
type Service struct {
	opts core.Options

	mu sync.RWMutex
	//rtlint:guardedby mu
	tenants map[string]*tenant
}

// tenant is one shard: a single-tenant task system with its own
// serialized operation stream.
type tenant struct {
	mu sync.Mutex
	// adm holds the shard's admitted set, caches, and persistent exact
	// analyzer; every mutation goes through its atomic operations.
	//
	//rtlint:guardedby mu
	adm *core.Admission
	// seq counts committed operations; every successful mutation bumps
	// it, so a DecisionView's seq identifies the churn-log position it
	// reflects.
	//
	//rtlint:guardedby mu
	seq uint64
	// dead marks a reaped shard: it is no longer in the map, and any
	// goroutine that raced the reaper must re-lookup.
	//
	//rtlint:guardedby mu
	dead bool
}

// New creates an empty service; every tenant decision uses opts.
func New(opts core.Options) *Service {
	return &Service{opts: opts, tenants: map[string]*tenant{}}
}

// grab returns the named shard with its lock held, creating it when
// create is set. It retries when the shard is reaped between the map
// lookup and the shard lock.
//
//rtlint:hotpath -- per-request shard lookup; the existing-tenant path must not allocate
//rtlint:acquires mu
func (s *Service) grab(name string, create bool) (*tenant, bool) {
	for {
		s.mu.RLock()
		tn := s.tenants[name]
		s.mu.RUnlock()
		if tn == nil {
			if !create {
				return nil, false
			}
			s.mu.Lock()
			tn = s.tenants[name]
			if tn == nil {
				tn = &tenant{adm: core.NewAdmission(s.opts)} //rtlint:allow hotalloc -- first-admit shard creation, the one cold branch of the lookup
				s.tenants[name] = tn                         //rtlint:allow hotalloc -- first-admit shard registration, the one cold branch of the lookup
			}
			s.mu.Unlock()
		}
		tn.mu.Lock()
		if tn.dead {
			tn.mu.Unlock()
			continue
		}
		return tn, true
	}
}

// reap removes the shard from the map if it is still registered and
// still empty. Taking both locks here — map before shard, the one
// place they nest — is what lets grab detect the race via dead.
func (s *Service) reap(name string, tn *tenant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tn.mu.Lock()
	defer tn.mu.Unlock()
	if tn.dead || tn.adm.Len() != 0 || s.tenants[name] != tn {
		return
	}
	tn.dead = true
	delete(s.tenants, name)
}

// Admit adds a task to the tenant's system if the grown system stays
// schedulable; the first admit creates the tenant. On rejection the
// tenant's previous configuration is untouched (an empty tenant
// created by a rejected first admit is discarded).
func (s *Service) Admit(name string, t *task.Task) (*DecisionView, error) {
	tn, _ := s.grab(name, true)
	err := tn.adm.Add(t)
	var view *DecisionView
	if err == nil {
		tn.seq++
		view = viewLocked(name, tn)
	}
	empty := tn.adm.Len() == 0
	tn.mu.Unlock()
	if empty {
		s.reap(name, tn)
	}
	if err != nil {
		return nil, err
	}
	return view, nil
}

// Update atomically replaces the admitted task carrying t's ID and
// re-decides; rejections leave the shard untouched.
func (s *Service) Update(name string, t *task.Task) (*DecisionView, error) {
	tn, ok := s.grab(name, false)
	if !ok {
		return nil, ErrUnknownTenant
	}
	defer tn.mu.Unlock()
	if err := tn.adm.Update(t); err != nil {
		return nil, err
	}
	tn.seq++
	return viewLocked(name, tn), nil
}

// Evict removes a task and re-decides over the shrunk system. The last
// task's eviction dissolves the tenant. A failed re-decision keeps the
// task admitted (see core.Admission.Remove) and returns the error.
func (s *Service) Evict(name string, id int) (*DecisionView, error) {
	tn, ok := s.grab(name, false)
	if !ok {
		return nil, ErrUnknownTenant
	}
	removed, err := tn.adm.Remove(id)
	if err != nil || !removed {
		tn.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("admitd: task %d %w", id, core.ErrNotAdmitted)
	}
	tn.seq++
	view := viewLocked(name, tn)
	empty := tn.adm.Len() == 0
	tn.mu.Unlock()
	if empty {
		s.reap(name, tn)
	}
	return view, nil
}

// Decision returns the tenant's current decision.
func (s *Service) Decision(name string) (*DecisionView, error) {
	tn, ok := s.grab(name, false)
	if !ok {
		return nil, ErrUnknownTenant
	}
	defer tn.mu.Unlock()
	return viewLocked(name, tn), nil
}

// Tenants lists the tenant names in sorted order.
func (s *Service) Tenants() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// DecisionView is the wire form of one tenant's current decision: the
// choice vector plus the exact certificates, resolved to plain values
// so it serializes without task pointers or big rationals. Expected
// and TotalExpected round-trip bit-exactly through JSON (encoding/json
// uses the shortest representation that parses back to the same
// float64), which the serial-replay differential test relies on.
type DecisionView struct {
	Tenant string `json:"tenant"`
	// Seq is the number of committed operations this view reflects.
	Seq   uint64 `json:"seq"`
	Tasks int    `json:"tasks"`

	Solver        string  `json:"solver"`
	TotalExpected float64 `json:"totalExpected"`
	// Theorem3 is the exact left-hand side of test (3) as a rational
	// string; with ExactVerified it may legitimately exceed 1.
	Theorem3      string       `json:"theorem3"`
	ExactVerified bool         `json:"exactVerified"`
	Repaired      int          `json:"repaired"`
	Offloaded     int          `json:"offloaded"`
	Choices       []ChoiceView `json:"choices"`
}

// ChoiceView is one task's decision in wire form.
type ChoiceView struct {
	TaskID  int  `json:"taskID"`
	Offload bool `json:"offload"`
	Level   int  `json:"level"`
	// Budget is the chosen response-time budget Ri in microseconds
	// (0 for local execution).
	Budget   rtime.Duration `json:"budget"`
	Expected float64        `json:"expected"`
	// Server is the fleet server this choice routes to; empty for
	// local execution and for single-server (non-fleet) services.
	Server string `json:"server,omitempty"`
}

// viewLocked renders the shard's current decision; the caller holds
// tn.mu.
//
//rtlint:holds tn.mu
func viewLocked(name string, tn *tenant) *DecisionView {
	return ViewOf(name, tn.seq, tn.adm.Decision(), tn.adm.Len())
}

// ViewOf renders a decision snapshot. A nil decision (empty system)
// yields a view with zero tasks and no choices; it is exported so the
// differential replay harness can render reference decisions through
// the identical code path.
func ViewOf(name string, seq uint64, dec *core.Decision, n int) *DecisionView {
	v := &DecisionView{Tenant: name, Seq: seq, Tasks: n}
	if dec == nil {
		return v
	}
	v.Solver = dec.Solver.String()
	v.TotalExpected = dec.TotalExpected
	v.Theorem3 = dec.Theorem3Total.RatString()
	v.ExactVerified = dec.ExactVerified
	v.Repaired = dec.Repaired
	v.Offloaded = dec.OffloadedCount()
	v.Choices = make([]ChoiceView, len(dec.Choices))
	for i, c := range dec.Choices {
		v.Choices[i] = ChoiceView{
			TaskID:   c.Task.ID,
			Offload:  c.Offload,
			Level:    c.Level,
			Budget:   c.Budget(),
			Expected: c.Expected,
		}
		if c.Offload {
			v.Choices[i].Server = c.Task.Levels[c.Level].ServerID
		}
	}
	return v
}
