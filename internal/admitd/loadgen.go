package admitd

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// OpKind enumerates the churn operations a tenant streams at the
// service.
type OpKind int

const (
	// OpAdmit adds a fresh task.
	OpAdmit OpKind = iota
	// OpUpdate replaces an admitted task's parameters in place.
	OpUpdate
	// OpEvict removes an admitted task.
	OpEvict
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpAdmit:
		return "admit"
	case OpUpdate:
		return "update"
	case OpEvict:
		return "evict"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one step of a churn stream.
type Op struct {
	Kind OpKind
	// Task carries the payload of OpAdmit and OpUpdate.
	Task *task.Task
	// ID identifies the target of OpEvict (and mirrors Task.ID for the
	// other kinds).
	ID int
}

// Stream generates a deterministic churn log: the same seed yields
// the same operation sequence no matter who applies it, provided the
// applier reports every operation's outcome through Commit — the
// stream picks update/evict targets from the set of committed
// admissions, so its evolution depends only on the seed and the
// outcome sequence. This is what lets the differential harness replay
// a concurrent service run serially, op for op.
type Stream struct {
	rng     *stats.RNG
	nextID  int
	live    []int
	maxLive int
}

// streamSalt separates the churn-stream draws from every other
// DeriveSeed consumer.
const streamSalt uint64 = 0xad317d

// NewStream creates a churn stream. maxLive caps the number of
// admitted tasks (≥ 2; smaller values are raised to 8).
func NewStream(seed uint64, maxLive int) *Stream {
	if maxLive < 2 {
		maxLive = 8
	}
	return &Stream{rng: stats.NewRNG(stats.DeriveSeed(seed, streamSalt)), maxLive: maxLive}
}

// Next draws the next operation. The stream never evicts the last
// admitted task, so a tenant driven by one stream exists for the
// stream's whole lifetime.
func (st *Stream) Next() Op {
	admitP := 0.45
	if len(st.live) >= st.maxLive {
		admitP = 0
	}
	if len(st.live) == 0 || st.rng.Bool(admitP) {
		id := st.nextID
		st.nextID++
		return Op{Kind: OpAdmit, Task: st.newTask(id), ID: id}
	}
	if len(st.live) == 1 || st.rng.Bool(0.6) {
		id := st.live[st.rng.IntN(len(st.live))]
		return Op{Kind: OpUpdate, Task: st.newTask(id), ID: id}
	}
	return Op{Kind: OpEvict, ID: st.live[st.rng.IntN(len(st.live))]}
}

// Commit reports whether the applier committed the operation, keeping
// the stream's view of the admitted set in sync.
func (st *Stream) Commit(op Op, committed bool) {
	if !committed {
		return
	}
	switch op.Kind {
	case OpAdmit:
		st.live = append(st.live, op.ID)
	case OpEvict:
		for i, id := range st.live {
			if id == op.ID {
				st.live = append(st.live[:i], st.live[i+1:]...)
				return
			}
		}
	}
}

// newTask draws one valid offloadable task: implicit or constrained
// deadline, light enough that a lone task is always schedulable, with
// one to three offloading levels of increasing budget and benefit.
func (st *Stream) newTask(id int) *task.Task {
	rng := st.rng
	for {
		period := rtime.FromMillis(rng.UniformInt(20, 800))
		deadline := period
		if rng.Bool(0.25) {
			deadline = period/2 + rtime.Duration(rng.Int64N(int64(period/2)))
		}
		c := rtime.Duration(rng.Int64N(int64(deadline/3))) + 1
		tk := &task.Task{
			ID: id, Period: period, Deadline: deadline,
			LocalWCET: c, Setup: c/4 + 1, Compensation: c,
			PostProcess:  c / 4,
			LocalBenefit: rng.Uniform(0, 3),
			Weight:       rng.Uniform(0.5, 3),
		}
		nlv := rng.IntN(3) + 1
		prevR, prevB := rtime.Duration(0), tk.LocalBenefit
		for j := 0; j < nlv; j++ {
			r := prevR + rtime.Duration(rng.Int64N(int64(deadline)))/rtime.Duration(nlv+1) + 1
			b := prevB + rng.Uniform(0.1, 2)
			tk.Levels = append(tk.Levels, task.Level{Response: r, Benefit: b})
			prevR, prevB = r, b
		}
		if tk.Validate() == nil {
			return tk
		}
	}
}

// LoadConfig parameterizes a sustained-load run.
type LoadConfig struct {
	// Tenants is the number of concurrent churn streams.
	Tenants int
	// Ops per tenant.
	Ops int
	// Seed derives every stream (stats.DeriveSeed(Seed, tenant+1)).
	Seed uint64
	// MaxLive caps each tenant's admitted set (0 = stream default).
	MaxLive int
}

// Validate checks the configuration.
func (c LoadConfig) Validate() error {
	if c.Tenants <= 0 {
		return fmt.Errorf("admitd: load needs tenants > 0")
	}
	if c.Ops <= 0 {
		return fmt.Errorf("admitd: load needs ops > 0")
	}
	return nil
}

// LoadReport aggregates one sustained-load run.
type LoadReport struct {
	Tenants, Ops                int // configuration echo; Ops is per tenant
	Committed, Rejected         int
	Admits, Updates, Evicts     int // committed ops by kind
	LiveTasks                   int // Σ admitted tasks at the end
	Elapsed                     time.Duration
	OpsPerSec                   float64
	P50, P99                    time.Duration // per-operation decision latency
	BytesPerOp                  uint64        // allocation rate over the run
	DecisionsExact, DecisionsT3 int           // committed decisions by certificate
}

// now reads the wall clock for latency measurement only; every churn
// draw is derived from the configured seed.
//
//rtlint:allow determinism -- wall-clock latency measurement in the load harness; churn content stays seed-derived
func now() time.Time { return time.Now() }

// RunLoad drives cfg.Tenants concurrent churn streams at the service
// and reports throughput, latency quantiles, and allocation rate. The
// operation sequence is deterministic per seed; only the timing varies
// between runs.
func RunLoad(s *Service, cfg LoadConfig) (*LoadReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	type workerOut struct {
		lat                     []float64
		committed, rejected     int
		admits, updates, evicts int
		live                    int
		exact, t3               int
	}
	outs := make([]workerOut, cfg.Tenants)
	var wg sync.WaitGroup
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := now()
	for i := 0; i < cfg.Tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := &outs[i]
			name := fmt.Sprintf("tenant-%02d", i)
			st := NewStream(stats.DeriveSeed(cfg.Seed, uint64(i)+1), cfg.MaxLive)
			out.lat = make([]float64, 0, cfg.Ops)
			for op := 0; op < cfg.Ops; op++ {
				o := st.Next()
				var view *DecisionView
				var err error
				t0 := now()
				switch o.Kind {
				case OpAdmit:
					view, err = s.Admit(name, o.Task)
				case OpUpdate:
					view, err = s.Update(name, o.Task)
				default:
					view, err = s.Evict(name, o.ID)
				}
				out.lat = append(out.lat, float64(now().Sub(t0)))
				st.Commit(o, err == nil)
				if err != nil {
					out.rejected++
					continue
				}
				out.committed++
				switch o.Kind {
				case OpAdmit:
					out.admits++
				case OpUpdate:
					out.updates++
				default:
					out.evicts++
				}
				out.live = view.Tasks
				if view.ExactVerified {
					out.exact++
				} else {
					out.t3++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := now().Sub(start)
	runtime.ReadMemStats(&m1)

	rep := &LoadReport{Tenants: cfg.Tenants, Ops: cfg.Ops, Elapsed: elapsed}
	var lat []float64
	for i := range outs {
		o := &outs[i]
		lat = append(lat, o.lat...)
		rep.Committed += o.committed
		rep.Rejected += o.rejected
		rep.Admits += o.admits
		rep.Updates += o.updates
		rep.Evicts += o.evicts
		rep.LiveTasks += o.live
		rep.DecisionsExact += o.exact
		rep.DecisionsT3 += o.t3
	}
	total := len(lat)
	if sec := elapsed.Seconds(); sec > 0 {
		rep.OpsPerSec = float64(total) / sec
	}
	rep.P50 = time.Duration(stats.Percentile(lat, 50))
	rep.P99 = time.Duration(stats.Percentile(lat, 99))
	if total > 0 {
		rep.BytesPerOp = (m1.TotalAlloc - m0.TotalAlloc) / uint64(total)
	}
	return rep, nil
}

// String renders the report as an aligned key/value block.
func (r *LoadReport) String() string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("tenants          %d\n", r.Tenants))
	b.WriteString(fmt.Sprintf("ops/tenant       %d\n", r.Ops))
	b.WriteString(fmt.Sprintf("committed        %d (admit %d, update %d, evict %d)\n",
		r.Committed, r.Admits, r.Updates, r.Evicts))
	b.WriteString(fmt.Sprintf("rejected         %d\n", r.Rejected))
	b.WriteString(fmt.Sprintf("live tasks       %d\n", r.LiveTasks))
	b.WriteString(fmt.Sprintf("decisions        exact=%d theorem3=%d\n", r.DecisionsExact, r.DecisionsT3))
	b.WriteString(fmt.Sprintf("elapsed          %v\n", r.Elapsed))
	b.WriteString(fmt.Sprintf("ops/sec          %.0f\n", r.OpsPerSec))
	b.WriteString(fmt.Sprintf("latency p50      %v\n", r.P50))
	b.WriteString(fmt.Sprintf("latency p99      %v\n", r.P99))
	b.WriteString(fmt.Sprintf("alloc/op         %d B\n", r.BytesPerOp))
	return b.String()
}
