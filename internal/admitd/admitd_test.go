package admitd

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"rtoffload/internal/core"
	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

func ms(v int64) rtime.Duration { return rtime.FromMillis(v) }

// wireTask builds a small schedulable task with one offloading level.
func wireTask(id int) *task.Task {
	return &task.Task{
		ID: id, Period: ms(100), Deadline: ms(100),
		LocalWCET: ms(10), Setup: ms(5), Compensation: ms(10),
		LocalBenefit: 1,
		Levels:       []task.Level{{Response: ms(20), Benefit: 2}},
	}
}

// heavyTask is local-only and consumes frac permille of its period.
func heavyTask(id int, permille int64) *task.Task {
	return &task.Task{
		ID: id, Period: ms(1000), Deadline: ms(1000),
		LocalWCET: ms(permille), LocalBenefit: 1,
	}
}

func TestServiceLifecycle(t *testing.T) {
	s := New(core.Options{Solver: core.SolverDP, ExactUpgrade: true})

	if _, err := s.Decision("edge"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("decision of unknown tenant: %v", err)
	}
	view, err := s.Admit("edge", wireTask(1))
	if err != nil {
		t.Fatal(err)
	}
	if view.Tenant != "edge" || view.Tasks != 1 || view.Seq != 1 || len(view.Choices) != 1 {
		t.Fatalf("admit view %+v", view)
	}
	if _, err := s.Admit("edge", wireTask(1)); !errors.Is(err, core.ErrAlreadyAdmitted) {
		t.Fatalf("duplicate admit: %v", err)
	}
	if got := s.Tenants(); len(got) != 1 || got[0] != "edge" {
		t.Fatalf("tenants %v", got)
	}

	up := wireTask(1)
	up.LocalBenefit = 1.5
	view, err = s.Update("edge", up)
	if err != nil {
		t.Fatal(err)
	}
	if view.Seq != 2 {
		t.Fatalf("update view seq %d", view.Seq)
	}
	if _, err := s.Update("edge", wireTask(9)); !errors.Is(err, core.ErrNotAdmitted) {
		t.Fatalf("update of unknown task: %v", err)
	}
	if _, err := s.Update("cloud", wireTask(1)); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("update of unknown tenant: %v", err)
	}

	if _, err := s.Evict("edge", 9); !errors.Is(err, core.ErrNotAdmitted) {
		t.Fatalf("evict of unknown task: %v", err)
	}
	view, err = s.Evict("edge", 1)
	if err != nil {
		t.Fatal(err)
	}
	if view.Tasks != 0 || len(view.Choices) != 0 {
		t.Fatalf("evict-to-empty view %+v", view)
	}
	// The emptied tenant dissolves.
	if got := s.Tenants(); len(got) != 0 {
		t.Fatalf("tenants after dissolve: %v", got)
	}
	if _, err := s.Evict("edge", 1); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("evict on dissolved tenant: %v", err)
	}
}

func TestServiceRejectedFirstAdmitLeavesNoTenant(t *testing.T) {
	s := New(core.Options{Solver: core.SolverDP})
	bad := &task.Task{ID: 1} // zero period: invalid
	if _, err := s.Admit("edge", bad); err == nil {
		t.Fatal("invalid task admitted")
	}
	if got := s.Tenants(); len(got) != 0 {
		t.Fatalf("rejected first admit left tenant: %v", got)
	}
}

func TestServiceInfeasibleAdmitKeepsState(t *testing.T) {
	s := New(core.Options{Solver: core.SolverDP})
	if _, err := s.Admit("edge", heavyTask(1, 990)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit("edge", heavyTask(2, 500)); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("overloading admit: %v", err)
	}
	view, err := s.Decision("edge")
	if err != nil {
		t.Fatal(err)
	}
	if view.Tasks != 1 || view.Seq != 1 {
		t.Fatalf("state after rejected admit: %+v", view)
	}
}

// TestServiceMatchesSerialReplay is the concurrency differential: many
// tenants stream churn at one service in parallel, and every committed
// decision view must be bit-identical (floats compared exactly) to a
// serial replay of that tenant's churn log through a bare
// core.Admission. Run with -race this also proves the sharding locks
// sound.
func TestServiceMatchesSerialReplay(t *testing.T) {
	opts := core.Options{Solver: core.SolverDP, ExactUpgrade: true}
	const tenants, ops = 8, 60
	s := New(opts)

	type rec struct {
		committed bool
		view      *DecisionView
	}
	logs := make([][]rec, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant-%02d", i)
			st := NewStream(uint64(i)+1, 6)
			for op := 0; op < ops; op++ {
				o := st.Next()
				var view *DecisionView
				var err error
				switch o.Kind {
				case OpAdmit:
					view, err = s.Admit(name, o.Task)
				case OpUpdate:
					view, err = s.Update(name, o.Task)
				default:
					view, err = s.Evict(name, o.ID)
				}
				st.Commit(o, err == nil)
				logs[i] = append(logs[i], rec{committed: err == nil, view: view})
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("tenant-%02d", i)
		st := NewStream(uint64(i)+1, 6)
		adm := core.NewAdmission(opts)
		seq := uint64(0)
		for op := 0; op < ops; op++ {
			o := st.Next()
			var err error
			switch o.Kind {
			case OpAdmit:
				err = adm.Add(o.Task)
			case OpUpdate:
				err = adm.Update(o.Task)
			default:
				_, err = adm.Remove(o.ID)
			}
			st.Commit(o, err == nil)
			got := logs[i][op]
			if got.committed != (err == nil) {
				t.Fatalf("tenant %d op %d: service committed=%v, replay err=%v", i, op, got.committed, err)
			}
			if err != nil {
				continue
			}
			seq++
			want := ViewOf(name, seq, adm.Decision(), adm.Len())
			if !reflect.DeepEqual(got.view, want) {
				t.Fatalf("tenant %d op %d: view diverges from serial replay\n got %+v\nwant %+v",
					i, op, got.view, want)
			}
		}
	}
}

// TestServiceConcurrentSameTenant hammers one tenant from many
// goroutines (admits, updates, evicts of disjoint ID ranges) and then
// checks the shard is coherent: the admitted set matches the decision,
// and a reference Decide agrees bit-for-bit.
func TestServiceConcurrentSameTenant(t *testing.T) {
	s := New(core.Options{Solver: core.SolverDP})
	const workers, perWorker = 6, 15
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := stats.NewRNG(stats.DeriveSeed(77, uint64(wkr)))
			base := wkr * perWorker
			for j := 0; j < perWorker; j++ {
				id := base + j
				if _, err := s.Admit("shared", wireTask(id)); err != nil {
					continue
				}
				if rng.Bool(0.5) {
					up := wireTask(id)
					up.LocalBenefit = rng.Uniform(0.5, 2)
					_, _ = s.Update("shared", up)
				}
				if rng.Bool(0.3) {
					_, _ = s.Evict("shared", id)
				}
			}
		}(wkr)
	}
	wg.Wait()
	view, err := s.Decision("shared")
	if err != nil {
		t.Fatal(err)
	}
	if view.Tasks != len(view.Choices) {
		t.Fatalf("view tasks %d vs %d choices", view.Tasks, len(view.Choices))
	}
	if view.Tasks == 0 {
		t.Fatal("concurrent churn left no tasks (evicts are only 30% of admits)")
	}
}

func TestViewOfEmpty(t *testing.T) {
	v := ViewOf("x", 3, nil, 0)
	if v.Tenant != "x" || v.Seq != 3 || v.Tasks != 0 || v.Choices != nil {
		t.Fatalf("empty view %+v", v)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(42, 5), NewStream(42, 5)
	for i := 0; i < 200; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Kind != ob.Kind || oa.ID != ob.ID {
			t.Fatalf("op %d: %v/%d vs %v/%d", i, oa.Kind, oa.ID, ob.Kind, ob.ID)
		}
		if (oa.Task == nil) != (ob.Task == nil) {
			t.Fatalf("op %d: task presence differs", i)
		}
		if oa.Task != nil && !reflect.DeepEqual(oa.Task, ob.Task) {
			t.Fatalf("op %d: tasks differ", i)
		}
		// Same outcome feedback on both sides.
		committed := i%3 != 0
		a.Commit(oa, committed)
		b.Commit(ob, committed)
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{OpAdmit: "admit", OpUpdate: "update", OpEvict: "evict", OpKind(9): "OpKind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("%d: %q, want %q", int(k), got, want)
		}
	}
}
