package admitd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rtoffload/internal/core"
	"rtoffload/internal/task"
)

// do runs one request through the service handler and decodes the
// JSON response into out (when non-nil).
func do(t *testing.T, h http.Handler, method, path string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("%s %s: status %d (want %d), body %s", method, path, rec.Code, wantStatus, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s %s: content type %q", method, path, ct)
	}
	if out != nil {
		if err := json.NewDecoder(rec.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
}

func TestHandlerLifecycle(t *testing.T) {
	s := New(core.Options{Solver: core.SolverDP, ExactUpgrade: true})
	h := s.Handler()

	do(t, h, "GET", "/healthz", nil, http.StatusOK, nil)

	var view DecisionView
	do(t, h, "POST", "/v1/tenants/edge/tasks", wireTask(1), http.StatusCreated, &view)
	if view.Tenant != "edge" || view.Tasks != 1 || view.Seq != 1 {
		t.Fatalf("admit view %+v", view)
	}
	if len(view.Choices) != 1 || view.Choices[0].TaskID != 1 {
		t.Fatalf("admit choices %+v", view.Choices)
	}

	// The offloaded choice carries its budget on the wire.
	if view.Choices[0].Offload && view.Choices[0].Budget != ms(20) {
		t.Fatalf("budget %v", view.Choices[0].Budget)
	}

	do(t, h, "POST", "/v1/tenants/edge/tasks", wireTask(2), http.StatusCreated, nil)

	var tl struct {
		Tenants []string `json:"tenants"`
	}
	do(t, h, "GET", "/v1/tenants", nil, http.StatusOK, &tl)
	if len(tl.Tenants) != 1 || tl.Tenants[0] != "edge" {
		t.Fatalf("tenant list %v", tl.Tenants)
	}

	up := wireTask(2)
	up.LocalBenefit = 1.7
	do(t, h, "PUT", "/v1/tenants/edge/tasks/2", up, http.StatusOK, &view)
	if view.Seq != 3 || view.Tasks != 2 {
		t.Fatalf("update view %+v", view)
	}

	do(t, h, "GET", "/v1/tenants/edge/decision", nil, http.StatusOK, &view)
	if view.Tasks != 2 || view.Theorem3 == "" {
		t.Fatalf("decision view %+v", view)
	}

	do(t, h, "DELETE", "/v1/tenants/edge/tasks/1", nil, http.StatusOK, &view)
	if view.Tasks != 1 {
		t.Fatalf("evict view %+v", view)
	}
	do(t, h, "DELETE", "/v1/tenants/edge/tasks/2", nil, http.StatusOK, &view)
	if view.Tasks != 0 {
		t.Fatalf("final evict view %+v", view)
	}
	// Tenant dissolved: decision now 404s.
	do(t, h, "GET", "/v1/tenants/edge/decision", nil, http.StatusNotFound, nil)
}

func TestHandlerErrors(t *testing.T) {
	s := New(core.Options{Solver: core.SolverDP})
	h := s.Handler()

	// Malformed body.
	req := httptest.NewRequest("POST", "/v1/tenants/edge/tasks", strings.NewReader("{"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", rec.Code)
	}

	// Unknown JSON field.
	req = httptest.NewRequest("POST", "/v1/tenants/edge/tasks", strings.NewReader(`{"id":1,"bogus":3}`))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", rec.Code)
	}

	// Invalid task (zero period).
	do(t, h, "POST", "/v1/tenants/edge/tasks", &task.Task{ID: 1}, http.StatusBadRequest, nil)

	// Valid admissions to set the stage.
	do(t, h, "POST", "/v1/tenants/edge/tasks", heavyTask(1, 990), http.StatusCreated, nil)

	// Duplicate ID conflicts.
	do(t, h, "POST", "/v1/tenants/edge/tasks", heavyTask(1, 100), http.StatusConflict, nil)

	// Infeasible grown system conflicts.
	do(t, h, "POST", "/v1/tenants/edge/tasks", heavyTask(2, 500), http.StatusConflict, nil)

	// Unknown tenant / unknown task ID.
	do(t, h, "PUT", "/v1/tenants/cloud/tasks/1", heavyTask(1, 10), http.StatusNotFound, nil)
	do(t, h, "PUT", "/v1/tenants/edge/tasks/9", heavyTask(9, 10), http.StatusNotFound, nil)
	do(t, h, "DELETE", "/v1/tenants/cloud/tasks/1", nil, http.StatusNotFound, nil)
	do(t, h, "DELETE", "/v1/tenants/edge/tasks/9", nil, http.StatusNotFound, nil)
	do(t, h, "GET", "/v1/tenants/cloud/decision", nil, http.StatusNotFound, nil)

	// Path/body ID mismatch and non-numeric ID.
	do(t, h, "PUT", "/v1/tenants/edge/tasks/2", heavyTask(1, 10), http.StatusBadRequest, nil)
	do(t, h, "PUT", "/v1/tenants/edge/tasks/abc", heavyTask(1, 10), http.StatusBadRequest, nil)
	do(t, h, "DELETE", "/v1/tenants/edge/tasks/abc", nil, http.StatusBadRequest, nil)

	// An invalid update (WCET past the deadline) is a bad request — and
	// must keep prior state.
	do(t, h, "PUT", "/v1/tenants/edge/tasks/1", heavyTask(1, 1001), http.StatusBadRequest, nil)
	var view DecisionView
	do(t, h, "GET", "/v1/tenants/edge/decision", nil, http.StatusOK, &view)
	if view.Tasks != 1 || view.Seq != 1 {
		t.Fatalf("state after rejected update: %+v", view)
	}
}
