package admitd

import (
	"testing"

	"rtoffload/internal/core"
	"rtoffload/internal/fleet"
	"rtoffload/internal/task"
)

// fleetOpts is a two-server service configuration: a capacity-capped
// edge box next to a slower, discounted cloud.
func fleetOpts() core.Options {
	return core.Options{
		Solver: core.SolverCore,
		Fleet: fleet.Fleet{
			Servers: []fleet.Server{
				{ID: "edge", CapNum: 1, CapDen: 2},
				{ID: "cloud", ScaleNum: 3, ScaleDen: 2, Reliability: 0.9},
			},
		},
	}
}

// TestFleetServiceRoutesChoices drives the service with a fleet and
// checks the wire views: offloaded choices name a fleet server, local
// choices stay unrouted, and the view's tasks are the originals (one
// level as admitted, not the expanded cross product).
func TestFleetServiceRoutesChoices(t *testing.T) {
	s := New(fleetOpts())
	view, err := s.Admit("t", wireTask(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit("t", heavyTask(2, 100)); err != nil {
		t.Fatal(err)
	}
	view, err = s.Decision("t")
	if err != nil {
		t.Fatal(err)
	}
	if view.Tasks != 2 || len(view.Choices) != 2 {
		t.Fatalf("fleet view %+v", view)
	}
	for _, c := range view.Choices {
		if c.Offload {
			if c.Server != "edge" && c.Server != "cloud" {
				t.Fatalf("choice %+v routed to unknown server", c)
			}
			if c.Budget <= 0 {
				t.Fatalf("offloaded choice %+v has no budget", c)
			}
		} else if c.Server != "" {
			t.Fatalf("local choice %+v carries a server", c)
		}
	}

	// The wire task must keep its admitted shape after eviction churn.
	if _, err := s.Evict("t", 2); err != nil {
		t.Fatal(err)
	}
	view, err = s.Decision("t")
	if err != nil {
		t.Fatal(err)
	}
	if view.Tasks != 1 {
		t.Fatalf("post-evict view %+v", view)
	}
}

// TestFleetServiceMatchesPlainOnSoloFleet pins the degenerate case at
// the service layer: a 1-server neutral fleet yields choice vectors
// identical to the plain single-server service (modulo the Server
// attribution the fleet view adds).
func TestFleetServiceMatchesPlainOnSoloFleet(t *testing.T) {
	solo := New(core.Options{
		Solver: core.SolverCore,
		Fleet:  fleet.Fleet{Servers: []fleet.Server{{ID: "solo"}}},
	})
	plain := New(core.Options{Solver: core.SolverCore})
	tasks := []*task.Task{wireTask(1), heavyTask(2, 200), wireTask(3)}
	for _, tk := range tasks {
		if _, err := solo.Admit("t", tk); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.Admit("t", tk); err != nil {
			t.Fatal(err)
		}
	}
	sv, err := solo.Decision("t")
	if err != nil {
		t.Fatal(err)
	}
	pv, err := plain.Decision("t")
	if err != nil {
		t.Fatal(err)
	}
	if sv.TotalExpected != pv.TotalExpected || sv.Theorem3 != pv.Theorem3 {
		t.Fatalf("solo fleet differs from plain service:\n%+v\nvs\n%+v", sv, pv)
	}
	for i := range sv.Choices {
		sc, pc := sv.Choices[i], pv.Choices[i]
		if sc.Offload && sc.Server != "solo" {
			t.Fatalf("solo choice %+v not attributed", sc)
		}
		sc.Server = ""
		if sc != pc {
			t.Fatalf("choice %d differs: %+v vs %+v", i, sc, pc)
		}
	}
}
