package admitd

import (
	"testing"

	"rtoffload/internal/chaos"
	"rtoffload/internal/core"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
)

// rawDecision exposes the shard's underlying decision for simulation
// (white-box: the wire view has no task pointers).
func rawDecision(s *Service, name string) *core.Decision {
	tn, ok := s.grab(name, false)
	if !ok {
		return nil
	}
	defer tn.mu.Unlock()
	return tn.adm.Decision()
}

// drawChaos samples a fault configuration spanning drop, duplication,
// reordering, latency spikes, hangs, and Gilbert-Elliott bursts, with
// delay bounds scaled to the task periods (mirroring the invariant
// harness's generator).
func drawChaos(rng *stats.RNG, period rtime.Duration) chaos.Config {
	dur := func(frac float64) rtime.Duration {
		max := int64(frac * float64(period))
		if max < 1 {
			max = 1
		}
		return rtime.Duration(rng.Int64N(max) + 1)
	}
	cfg := chaos.Config{}
	if rng.Bool(0.6) {
		cfg.Drop = rng.Float64()
	}
	if rng.Bool(0.4) {
		cfg.Dup = rng.Float64()
		cfg.DupDelayMax = dur(0.5)
	}
	if rng.Bool(0.4) {
		cfg.Reorder = rng.Float64()
		cfg.ReorderDelayMax = dur(0.5)
	}
	if rng.Bool(0.5) {
		cfg.Spike = rng.Float64()
		cfg.SpikeMax = dur(1.0)
	}
	if rng.Bool(0.3) {
		cfg.Hang = 0.2 * rng.Float64()
		cfg.HangMax = dur(1.5)
	}
	if rng.Bool(0.4) {
		cfg.GE = chaos.GilbertElliott{
			PGoodBad:    rng.Float64(),
			PBadGood:    0.05 + 0.95*rng.Float64(),
			BadLoss:     rng.Float64(),
			BadDelayMax: dur(0.5),
		}
	}
	return cfg
}

// TestServiceChaosNeverMisses composes the admission service with the
// chaos fault injector: a tenant churns through admits, updates, and
// evictions, and after every few operations the then-current admitted
// configuration is simulated under a random fault schedule. Invariant
// I1 — an admitted set never misses a deadline, whatever the server
// does — must hold at every churn position.
func TestServiceChaosNeverMisses(t *testing.T) {
	const tenant = "edge"
	for seed := uint64(1); seed <= 4; seed++ {
		rng := stats.NewRNG(stats.DeriveSeed(seed, 101))
		s := New(core.Options{Solver: core.SolverDP, ExactUpgrade: true})
		st := NewStream(seed, 6)
		for op := 0; op < 30; op++ {
			o := st.Next()
			var err error
			switch o.Kind {
			case OpAdmit:
				_, err = s.Admit(tenant, o.Task)
			case OpUpdate:
				_, err = s.Update(tenant, o.Task)
			default:
				_, err = s.Evict(tenant, o.ID)
			}
			st.Commit(o, err == nil)
			if op%5 != 4 {
				continue
			}
			dec := rawDecision(s, tenant)
			if dec == nil || len(dec.Choices) == 0 {
				continue
			}
			maxPeriod := rtime.Duration(0)
			for _, c := range dec.Choices {
				if c.Task.Period > maxPeriod {
					maxPeriod = c.Task.Period
				}
			}
			inner := server.Fixed{Latency: rtime.Duration(rng.Int64N(int64(maxPeriod)) + 1)}
			inj, err := chaos.New(inner, drawChaos(rng, maxPeriod), stats.NewRNG(stats.DeriveSeed(seed, 102, uint64(op))))
			if err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
			res, err := sched.Run(sched.Config{
				Assignments: dec.Assignments(),
				Server:      inj,
				Horizon:     3 * maxPeriod,
				Policy:      sched.SplitEDF,
				RNG:         stats.NewRNG(stats.DeriveSeed(seed, 103, uint64(op))),
			})
			if err != nil {
				t.Fatalf("seed %d op %d: sim: %v", seed, op, err)
			}
			if res.Misses != 0 {
				t.Fatalf("seed %d op %d: I1 violated — %d deadline misses under faults", seed, op, res.Misses)
			}
			for i := range res.Jobs {
				j := &res.Jobs[i]
				if j.Missed || !j.Finished {
					t.Fatalf("seed %d op %d: I1 violated — job τ%d#%d missed (finished=%v)",
						seed, op, j.TaskID, j.Seq, j.Finished)
				}
			}
		}
	}
}
