package admitd

import (
	"testing"

	"rtoffload/internal/core"
)

// TestGrabWarmZeroAlloc gates the //rtlint:hotpath contract on
// Service.grab: after the first admit has created a tenant shard, the
// per-request lookup of an existing shard must not allocate.
func TestGrabWarmZeroAlloc(t *testing.T) {
	s := New(core.Options{})
	tn, ok := s.grab("edge-0", true)
	if !ok {
		t.Fatal("grab(create) failed")
	}
	tn.mu.Unlock()
	allocs := testing.AllocsPerRun(100, func() {
		tn, ok := s.grab("edge-0", false)
		if !ok {
			t.Error("existing tenant not found")
			return
		}
		tn.mu.Unlock()
	})
	if allocs != 0 {
		t.Fatalf("warm grab allocates %.1f times per run; the hotpath contract is 0", allocs)
	}
}
