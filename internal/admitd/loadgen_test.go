package admitd

import (
	"strings"
	"testing"

	"rtoffload/internal/core"
)

func TestRunLoadSmoke(t *testing.T) {
	s := New(core.Options{Solver: core.SolverDP, ExactUpgrade: true})
	rep, err := RunLoad(s, LoadConfig{Tenants: 3, Ops: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Committed+rep.Rejected != 3*40 {
		t.Fatalf("ops %d+%d do not partition %d", rep.Committed, rep.Rejected, 3*40)
	}
	if rep.Admits == 0 || rep.Committed == 0 {
		t.Fatalf("no committed work: %+v", rep)
	}
	if rep.Admits+rep.Updates+rep.Evicts != rep.Committed {
		t.Fatalf("kinds %d+%d+%d do not partition %d committed",
			rep.Admits, rep.Updates, rep.Evicts, rep.Committed)
	}
	if rep.DecisionsExact+rep.DecisionsT3 != rep.Committed {
		t.Fatalf("certificates %d+%d vs %d committed", rep.DecisionsExact, rep.DecisionsT3, rep.Committed)
	}
	if rep.LiveTasks <= 0 {
		t.Fatalf("live tasks %d", rep.LiveTasks)
	}
	if rep.P99 < rep.P50 {
		t.Fatalf("p99 %v below p50 %v", rep.P99, rep.P50)
	}
	// The service must still be serving the load's tenants.
	if got := len(s.Tenants()); got != 3 {
		t.Fatalf("%d tenants after load", got)
	}

	out := rep.String()
	for _, want := range []string{"ops/sec", "latency p50", "latency p99", "alloc/op", "committed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunLoadDeterministicChurn(t *testing.T) {
	// Two runs with the same seed commit the identical operation mix
	// (timing differs; the churn content must not).
	a, err := RunLoad(New(core.Options{Solver: core.SolverDP}), LoadConfig{Tenants: 2, Ops: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLoad(New(core.Options{Solver: core.SolverDP}), LoadConfig{Tenants: 2, Ops: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Committed != b.Committed || a.Admits != b.Admits || a.Updates != b.Updates ||
		a.Evicts != b.Evicts || a.LiveTasks != b.LiveTasks {
		t.Fatalf("same seed, different churn:\n%+v\n%+v", a, b)
	}
}

func TestRunLoadBadConfig(t *testing.T) {
	s := New(core.Options{Solver: core.SolverDP})
	if _, err := RunLoad(s, LoadConfig{Tenants: 0, Ops: 10}); err == nil {
		t.Error("zero tenants accepted")
	}
	if _, err := RunLoad(s, LoadConfig{Tenants: 1, Ops: 0}); err == nil {
		t.Error("zero ops accepted")
	}
}
