package admitd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"rtoffload/internal/core"
	"rtoffload/internal/task"
)

// Handler exposes the service over HTTP/JSON:
//
//	POST   /v1/tenants/{tenant}/tasks       admit (body: task JSON)
//	PUT    /v1/tenants/{tenant}/tasks/{id}  update (body: task JSON)
//	DELETE /v1/tenants/{tenant}/tasks/{id}  evict
//	GET    /v1/tenants/{tenant}/decision    current decision
//	GET    /v1/tenants                      tenant listing
//	GET    /healthz                         liveness
//
// Every mutation answers with the tenant's fresh DecisionView, so a
// client streaming churn always knows the configuration its request
// produced. Rejections map schedulability conflicts to 409, unknown
// tenants or task IDs to 404, and malformed requests to 400.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"tenants": s.Tenants()})
	})
	mux.HandleFunc("POST /v1/tenants/{tenant}/tasks", s.handleAdmit)
	mux.HandleFunc("PUT /v1/tenants/{tenant}/tasks/{id}", s.handleUpdate)
	mux.HandleFunc("DELETE /v1/tenants/{tenant}/tasks/{id}", s.handleEvict)
	mux.HandleFunc("GET /v1/tenants/{tenant}/decision", s.handleDecision)
	return mux
}

func (s *Service) handleAdmit(w http.ResponseWriter, r *http.Request) {
	t, ok := decodeTask(w, r)
	if !ok {
		return
	}
	view, err := s.Admit(r.PathValue("tenant"), t)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, view)
}

func (s *Service) handleUpdate(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	t, ok := decodeTask(w, r)
	if !ok {
		return
	}
	if t.ID != id {
		writeJSON(w, http.StatusBadRequest, errorBody(
			fmt.Errorf("admitd: path task %d but body task %d", id, t.ID)))
		return
	}
	view, err := s.Update(r.PathValue("tenant"), t)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleEvict(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	view, err := s.Evict(r.PathValue("tenant"), id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleDecision(w http.ResponseWriter, r *http.Request) {
	view, err := s.Decision(r.PathValue("tenant"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// decodeTask parses the request body as one task; it rejects unknown
// fields so schema typos fail loudly instead of admitting a default.
func decodeTask(w http.ResponseWriter, r *http.Request) (*task.Task, bool) {
	var t task.Task
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Errorf("admitd: decoding task: %w", err)))
		return nil, false
	}
	return &t, true
}

// pathID parses the {id} path segment.
func pathID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Errorf("admitd: task id %q: %w", r.PathValue("id"), err)))
		return 0, false
	}
	return id, true
}

// writeError maps service errors to transport status codes: missing
// tenants and task IDs are 404, schedulability conflicts (infeasible
// grown system, duplicate admission, failed shrink re-decision) are
// 409, anything else — validation failures foremost — is 400.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrUnknownTenant), errors.Is(err, core.ErrNotAdmitted):
		status = http.StatusNotFound
	case errors.Is(err, core.ErrInfeasible), errors.Is(err, core.ErrAlreadyAdmitted):
		status = http.StatusConflict
	}
	writeJSON(w, status, errorBody(err))
}

func errorBody(err error) map[string]string {
	return map[string]string{"error": err.Error()}
}

// writeJSON renders one response. An encode failure at this point
// means the client hung up mid-body; the status line is already out,
// so there is nothing useful left to send.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
