// Package stats provides the deterministic randomness and descriptive
// statistics used by the generators, server models, and experiment
// harness.
//
// All stochastic components in this repository draw from stats.RNG, a
// small self-contained SplitMix64/xoshiro256** generator. Keeping the
// generator in-repo (rather than math/rand) guarantees bit-identical
// experiment outputs across Go releases, and Fork gives each simulated
// entity an independent deterministic stream so that adding a new
// random draw in one component does not perturb the others.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator
// (xoshiro256** seeded via SplitMix64). It is not safe for concurrent
// use; Fork child generators for concurrent components.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed. Any seed,
// including zero, produces a well-mixed state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += goldenGamma
		r.s[i] = mix64(sm)
	}
	return r
}

// goldenGamma is the SplitMix64 increment (2⁶⁴/φ).
const goldenGamma = 0x9E3779B97F4A7C15

// mix64 is the SplitMix64 finalizer: a full-avalanche 64-bit mixer in
// which every input bit affects every output bit.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// DeriveSeed derives an independent seed from a base seed and a stream
// path (experiment stream id, trial index, …). The derivation is a
// pure function of (base, stream...): it never depends on call order,
// which is what lets parallel experiment trials reproduce sequential
// output bit for bit.
//
// Unlike the additive offsets it replaces (base + k·index), the
// SplitMix64 avalanche keeps adjacent bases and indices in unrelated
// streams: DeriveSeed(7919, 0) and DeriveSeed(0, 1) are distinct,
// whereas 7919 + 0·7919 == 0 + 1·7919 collides. Paths of different
// lengths are separated by folding each element with a fresh mix
// round, so (a) and (a, 0) differ as well; the fold multiplies the
// accumulator before combining, so it is not commutative and
// (a, b, …) never collides with (b, a, …).
func DeriveSeed(base uint64, stream ...uint64) uint64 {
	x := mix64(base + goldenGamma)
	for _, s := range stream {
		x = mix64(x*goldenGamma ^ mix64(s+goldenGamma))
	}
	return x
}

// Fork derives an independent generator from r's stream. The child's
// sequence is unrelated to r's subsequent outputs.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xD1B54A32D192ED03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("stats: IntN with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// modulo bias is negligible for the n values used (< 2^32).
	return int(r.Uint64() % uint64(n))
}

// Int64N returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Int64N(n int64) int64 {
	if n <= 0 {
		panic("stats: Int64N with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// UniformInt returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *RNG) UniformInt(lo, hi int64) int64 {
	if hi < lo {
		panic("stats: UniformInt with hi < lo")
	}
	return lo + r.Int64N(hi-lo+1)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	// Reject u1 == 0 to avoid log(0).
	var u1 float64
	for {
		u1 = r.Float64()
		if u1 > 0 {
			break
		}
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value where the
// underlying normal has parameters mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed value with the
// given mean (= 1/rate).
func (r *RNG) Exponential(mean float64) float64 {
	var u float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	return -mean * math.Log(u)
}

// Shuffle permutes the first n elements using swap, Fisher–Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// UUniFast generates n task utilizations that sum to total, uniformly
// distributed over the simplex (Bini & Buttazzo's UUniFast). It is the
// standard generator for synthetic schedulability experiments.
func (r *RNG) UUniFast(n int, total float64) []float64 {
	if n <= 0 {
		return nil
	}
	u := make([]float64, n)
	sum := total
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(r.Float64(), 1/float64(n-i-1))
		u[i] = sum - next
		sum = next
	}
	u[n-1] = sum
	return u
}

// SortedUniform returns n uniform values in [lo, hi), sorted
// ascending. Used for generating increasing response-time points.
func (r *RNG) SortedUniform(n int, lo, hi float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Uniform(lo, hi)
	}
	// Insertion sort: n is small (≤ tens) in all call sites.
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	return v
}
