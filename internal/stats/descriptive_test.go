package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("Mean = %g", m)
	}
	if s := StdDev([]float64{5}); s != 0 {
		t.Errorf("StdDev single = %g", s)
	}
	if s := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(s-2.13809) > 1e-4 {
		t.Errorf("StdDev = %g, want ≈2.138", s)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %g,%g", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(empty) did not panic")
		}
	}()
	MinMax(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-sample percentile = %g", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40})
	cases := []struct{ x, want float64 }{
		{5, 0}, {10, 0.25}, {15, 0.25}, {40, 1}, {50, 1}, {25, 0.5},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if q := e.Quantile(0.5); q != 20 {
		t.Errorf("Quantile(0.5) = %g, want 20", q)
	}
	if q := e.Quantile(0); q != 10 {
		t.Errorf("Quantile(0) = %g", q)
	}
	if q := e.Quantile(1); q != 40 {
		t.Errorf("Quantile(1) = %g", q)
	}
	if q := e.Quantile(0.75); q != 30 {
		t.Errorf("Quantile(0.75) = %g", q)
	}
}

func TestECDFDuplicates(t *testing.T) {
	e := NewECDF([]float64{1, 1, 1, 2})
	if got := e.At(1); got != 0.75 {
		t.Errorf("At(1) with duplicates = %g, want 0.75", got)
	}
	if got := e.At(0.99); got != 0 {
		t.Errorf("At(0.99) = %g, want 0", got)
	}
}

func TestECDFSample(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3})
	r := NewRNG(11)
	seen := map[float64]int{}
	for i := 0; i < 30000; i++ {
		seen[e.Sample(r)]++
	}
	for _, v := range []float64{1, 2, 3} {
		if c := seen[v]; c < 9000 || c > 11000 {
			t.Errorf("sample %g drawn %d times, want ≈10000", v, c)
		}
	}
	if len(seen) != 3 {
		t.Errorf("unexpected sample values: %v", seen)
	}
}

func TestECDFPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewECDF(empty) did not panic")
		}
	}()
	NewECDF(nil)
}

// Property: ECDF.At is a valid right-continuous CDF and Quantile is
// its generalized inverse: At(Quantile(q)) ≥ q.
func TestECDFInverseProperty(t *testing.T) {
	f := func(seed uint64, qRaw uint16) bool {
		r := NewRNG(seed)
		n := r.IntN(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Uniform(0, 100)
		}
		e := NewECDF(xs)
		q := float64(qRaw%1000)/1000 + 0.001
		return e.At(e.Quantile(q)) >= q-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: At is monotone non-decreasing.
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(seed uint64, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		r := NewRNG(seed)
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = r.Uniform(-50, 50)
		}
		e := NewECDF(xs)
		x, y := a, b
		if x > y {
			x, y = y, x
		}
		return e.At(x) <= e.At(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 1, 2, 3, 9.9, -5, 15}, 10, 0, 10)
	// 0 and -5 (clamped) land in bin 0; 9.9 and 15 (clamped) in bin 9.
	if h[0] != 2 || h[1] != 1 || h[2] != 1 || h[3] != 1 || h[9] != 2 {
		t.Errorf("histogram = %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 7 {
		t.Errorf("histogram total = %d, want 7", total)
	}
}

func TestMeanCI(t *testing.T) {
	m, h := MeanCI(nil, 1.96)
	if m != 0 || h != 0 {
		t.Errorf("empty MeanCI = %g±%g", m, h)
	}
	m, h = MeanCI([]float64{5}, 1.96)
	if m != 5 || h != 0 {
		t.Errorf("single MeanCI = %g±%g", m, h)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, h = MeanCI(xs, 1.96)
	if m != 5 {
		t.Errorf("mean = %g", m)
	}
	// half = 1.96·s/√n with s ≈ 2.138, n = 8 → ≈1.4816.
	if math.Abs(h-1.4816) > 1e-3 {
		t.Errorf("half = %g, want ≈1.4816", h)
	}
	// Wider z → wider interval.
	_, h99 := MeanCI(xs, 2.58)
	if h99 <= h {
		t.Errorf("z=2.58 interval %g not wider than %g", h99, h)
	}
}

func TestTCritical95(t *testing.T) {
	// Spot checks against the published table.
	cases := map[int]float64{
		2:  12.706, // df = 1
		3:  4.303,  // the default multi-seed run
		5:  2.776,
		10: 2.262,
		30: 2.045,
	}
	for n, want := range cases {
		if got := TCritical95(n); math.Abs(got-want) > 1e-9 {
			t.Errorf("TCritical95(%d) = %g, want %g", n, got, want)
		}
	}
	// Undefined below two samples.
	if TCritical95(0) != 0 || TCritical95(1) != 0 {
		t.Error("TCritical95 below n=2 must be 0")
	}
	// Falls back to z above 30 and never increases with n.
	if got := TCritical95(31); got != 1.96 {
		t.Errorf("TCritical95(31) = %g, want 1.96", got)
	}
	prev := math.Inf(1)
	for n := 2; n <= 40; n++ {
		v := TCritical95(n)
		if v > prev {
			t.Fatalf("TCritical95 not monotone at n=%d: %g > %g", n, v, prev)
		}
		prev = v
	}
}
