package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical 64-bit draws", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	// Zero seed must still be well mixed: first draws non-zero and distinct.
	x, y := r.Uint64(), r.Uint64()
	if x == 0 || y == 0 || x == y {
		t.Fatalf("zero seed poorly mixed: %x %x", x, y)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Fork()
	// Child stream should differ from a re-seeded parent's stream.
	p2 := NewRNG(7)
	p2.Uint64() // consume the draw Fork used
	diff := false
	for i := 0; i < 100; i++ {
		if child.Uint64() != p2.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("forked child replays parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(2)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if m := sum / float64(n); math.Abs(m-0.5) > 0.01 {
		t.Fatalf("uniform mean = %g, want ≈0.5", m)
	}
}

func TestIntN(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.IntN(10)]++
	}
	for d, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("digit %d drawn %d times, want ≈10000", d, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	r.IntN(0)
}

func TestUniformInt(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		v := r.UniformInt(600, 700)
		if v < 600 || v > 700 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
	}
	// Both endpoints must be reachable.
	lo, hi := false, false
	for i := 0; i < 100000 && !(lo && hi); i++ {
		switch r.UniformInt(0, 3) {
		case 0:
			lo = true
		case 3:
			hi = true
		}
	}
	if !lo || !hi {
		t.Fatal("UniformInt endpoints unreachable")
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(5)
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(10, 2)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.05 {
		t.Errorf("normal mean = %g, want ≈10", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 0.05 {
		t.Errorf("normal stddev = %g, want ≈2", s)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(6)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(3)
		if v < 0 {
			t.Fatalf("negative exponential draw %g", v)
		}
		sum += v
	}
	if m := sum / float64(n); math.Abs(m-3) > 0.05 {
		t.Errorf("exponential mean = %g, want ≈3", m)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("non-positive lognormal draw %g", v)
		}
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(8)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestUUniFast(t *testing.T) {
	r := NewRNG(9)
	for trial := 0; trial < 100; trial++ {
		u := r.UUniFast(8, 0.9)
		sum := 0.0
		for _, x := range u {
			if x < 0 {
				t.Fatalf("negative utilization %g", x)
			}
			sum += x
		}
		if math.Abs(sum-0.9) > 1e-9 {
			t.Fatalf("UUniFast sum = %g, want 0.9", sum)
		}
	}
	if u := r.UUniFast(0, 1); u != nil {
		t.Errorf("UUniFast(0) = %v, want nil", u)
	}
	if u := r.UUniFast(1, 0.5); len(u) != 1 || u[0] != 0.5 {
		t.Errorf("UUniFast(1, 0.5) = %v", u)
	}
}

func TestSortedUniform(t *testing.T) {
	r := NewRNG(10)
	v := r.SortedUniform(50, 100, 200)
	for i, x := range v {
		if x < 100 || x >= 200 {
			t.Fatalf("value out of range: %g", x)
		}
		if i > 0 && v[i-1] > x {
			t.Fatalf("not sorted at %d: %v", i, v)
		}
	}
}

// The regression the multi-seed experiments hit: with additive
// offsets (base + run·7919), base 7919/run 0 and base 0/run 1 are the
// same stream. DeriveSeed must keep adjacent bases and runs apart.
func TestDeriveSeedNoAdditiveCollisions(t *testing.T) {
	if DeriveSeed(7919, 0) == DeriveSeed(0, 1) {
		t.Fatal("DeriveSeed reproduces the additive-offset collision")
	}
	// Streams of adjacent base seeds must diverge immediately.
	for base := uint64(0); base < 8; base++ {
		a := NewRNG(DeriveSeed(base, 3))
		b := NewRNG(DeriveSeed(base+1, 3))
		if a.Uint64() == b.Uint64() {
			t.Fatalf("base %d and %d share a stream", base, base+1)
		}
	}
	// No collisions across a (base, stream, index) grid.
	seen := map[uint64][3]uint64{}
	for base := uint64(0); base < 20; base++ {
		for stream := uint64(0); stream < 12; stream++ {
			for idx := uint64(0); idx < 20; idx++ {
				s := DeriveSeed(base, stream, idx)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) vs %v", base, stream, idx, prev)
				}
				seen[s] = [3]uint64{base, stream, idx}
			}
		}
	}
}

func TestDeriveSeedPureAndPathSensitive(t *testing.T) {
	if DeriveSeed(5, 1, 2) != DeriveSeed(5, 1, 2) {
		t.Fatal("DeriveSeed not a pure function")
	}
	if DeriveSeed(5, 1, 2) == DeriveSeed(5, 2, 1) {
		t.Fatal("DeriveSeed ignores path order")
	}
	if DeriveSeed(5) == DeriveSeed(5, 0) {
		t.Fatal("DeriveSeed ignores path length")
	}
	if DeriveSeed(5) == NewRNG(5).Uint64() {
		t.Fatal("derived seed trivially equals the base stream")
	}
}

func TestUUniFastProperty(t *testing.T) {
	f := func(seed uint64, n uint8, tot uint8) bool {
		k := int(n%16) + 1
		total := float64(tot%100)/100 + 0.01
		u := NewRNG(seed).UUniFast(k, total)
		sum := 0.0
		for _, x := range u {
			if x < -1e-12 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-total) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
