package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator) of
// xs, or 0 when fewer than two samples are given.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MinMax returns the smallest and largest values of xs. It panics on
// an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks. It panics on an empty
// slice or out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of range", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// ECDF is an empirical cumulative distribution function built from
// observed samples. It supports both evaluation (fraction of samples
// ≤ x) and inverse evaluation (quantiles), which the server models use
// to turn measured response times into samplable distributions.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples. The input is copied.
// It panics on an empty sample set.
func NewECDF(samples []float64) *ECDF {
	if len(samples) == 0 {
		panic("stats: NewECDF with no samples")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len reports the number of samples.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns P(X ≤ x), the fraction of samples ≤ x.
func (e *ECDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x;
	// scan forward over equal values to make the CDF right-continuous.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the smallest sample x with P(X ≤ x) ≥ q, for
// q in (0, 1]. Quantile(0) returns the smallest sample.
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx]
}

// Sample draws a value distributed according to the ECDF.
func (e *ECDF) Sample(r *RNG) float64 {
	return e.sorted[r.IntN(len(e.sorted))]
}

// MeanCI returns the sample mean and the half-width of its normal
// -approximation confidence interval at the given z value (1.96 ≈ 95 %).
// With fewer than two samples the half-width is 0.
func MeanCI(xs []float64, z float64) (mean, half float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	half = z * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, half
}

// tCrit95 holds the two-sided Student-t critical values at 95 %
// confidence for 1…29 degrees of freedom (Fisher & Yates table).
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
}

// TCritical95 returns the critical value for a two-sided 95 %
// confidence interval of the mean of n samples: the Student-t quantile
// at n−1 degrees of freedom for n ≤ 30 (at n = 3 that is 4.303, more
// than twice the normal 1.96 — the difference between honest and
// overconfident error bars at small n), falling back to the normal
// z = 1.96 above, where t is within 2 % of z. For n < 2, where no
// interval exists, it returns 0.
func TCritical95(n int) float64 {
	if n < 2 {
		return 0
	}
	if n-2 < len(tCrit95) {
		return tCrit95[n-2]
	}
	return 1.96
}

// Histogram counts xs into n equal-width bins over [lo, hi]. Values
// outside the range are clamped into the first/last bin. It panics if
// n ≤ 0 or hi ≤ lo.
func Histogram(xs []float64, n int, lo, hi float64) []int {
	if n <= 0 || hi <= lo {
		panic("stats: bad Histogram parameters")
	}
	bins := make([]int, n)
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins
}
