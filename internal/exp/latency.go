package exp

import (
	"fmt"
	"io"

	"rtoffload/internal/core"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
)

// LatencyRow profiles one task's job response times under one server
// scenario.
type LatencyRow struct {
	Scenario server.Scenario
	Task     string
	Deadline rtime.Duration
	P50      rtime.Duration
	P95      rtime.Duration
	Worst    rtime.Duration
	Hits     int
	Jobs     int
}

// LatencyStudy runs the case-study configuration under the three
// scenarios with latency collection and reports per-task response-time
// percentiles — the timing headroom behind the "zero misses" headline:
// even in the busy scenario every worst case stays below its deadline,
// because the compensation path bounds it by construction.
func LatencyStudy(cfg CaseStudyConfig) ([]LatencyRow, error) {
	set, err := CaseTasks(cfg)
	if err != nil {
		return nil, err
	}
	dec, err := core.Decide(set, core.Options{Solver: cfg.Solver})
	if err != nil {
		return nil, err
	}
	horizon := rtime.FromSeconds(cfg.HorizonSeconds * 6) // more jobs for stable percentiles
	var rows []LatencyRow
	for _, scenario := range []server.Scenario{server.Busy, server.NotBusy, server.Idle} {
		srvCfg, err := CaseServerConfig(scenario)
		if err != nil {
			return nil, err
		}
		srv, err := server.NewQueue(stats.NewRNG(stats.DeriveSeed(cfg.Seed, streamLatency, uint64(scenario))), srvCfg)
		if err != nil {
			return nil, err
		}
		res, err := sched.Run(sched.Config{
			Assignments:      dec.Assignments(),
			Server:           srv,
			Horizon:          horizon,
			CollectLatencies: true,
		})
		if err != nil {
			return nil, err
		}
		if res.Misses != 0 {
			return nil, fmt.Errorf("exp: latency study missed %d deadlines", res.Misses)
		}
		for _, t := range set {
			st := res.PerTask[t.ID]
			p50, ok1 := res.LatencyPercentile(t.ID, 50)
			p95, ok2 := res.LatencyPercentile(t.ID, 95)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("exp: no latencies for task %d", t.ID)
			}
			rows = append(rows, LatencyRow{
				Scenario: scenario,
				Task:     t.Name,
				Deadline: t.Deadline,
				P50:      p50,
				P95:      p95,
				Worst:    st.WorstLatency,
				Hits:     st.Hits,
				Jobs:     st.Finished,
			})
		}
	}
	return rows, nil
}

// RenderLatency prints the latency profile table.
func RenderLatency(w io.Writer, rows []LatencyRow) error {
	headers := []string{"Scenario", "Task", "P50", "P95", "Worst", "Deadline", "Hits"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Scenario.String(),
			r.Task,
			fmt.Sprintf("%.1fms", r.P50.Millis()),
			fmt.Sprintf("%.1fms", r.P95.Millis()),
			fmt.Sprintf("%.1fms", r.Worst.Millis()),
			fmt.Sprintf("%.0fms", r.Deadline.Millis()),
			fmt.Sprintf("%d/%d", r.Hits, r.Jobs),
		})
	}
	return WriteTable(w, headers, out)
}
