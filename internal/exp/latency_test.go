package exp

import (
	"bytes"
	"strings"
	"testing"

	"rtoffload/internal/server"
)

func TestLatencyStudy(t *testing.T) {
	rows, err := LatencyStudy(testCaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 4 tasks × 3 scenarios
		t.Fatalf("%d rows", len(rows))
	}
	perScenario := map[server.Scenario][]LatencyRow{}
	for _, r := range rows {
		perScenario[r.Scenario] = append(perScenario[r.Scenario], r)
		if !(r.P50 <= r.P95 && r.P95 <= r.Worst) {
			t.Fatalf("percentile ordering broken: %+v", r)
		}
		// The hard guarantee: worst observed response ≤ deadline.
		if r.Worst > r.Deadline {
			t.Fatalf("worst %v beyond deadline %v", r.Worst, r.Deadline)
		}
		if r.Jobs == 0 {
			t.Fatalf("no jobs for %s", r.Task)
		}
	}
	// Busy P95s push toward the compensation-bounded worst case;
	// idle P95s sit near the fast-path latency. Compare totals.
	sum := func(s server.Scenario) (p95 float64) {
		for _, r := range perScenario[s] {
			p95 += r.P95.Millis()
		}
		return p95
	}
	if sum(server.Idle) >= sum(server.Busy) {
		t.Fatalf("idle P95 total (%.0f) not below busy (%.0f)", sum(server.Idle), sum(server.Busy))
	}

	var buf bytes.Buffer
	if err := RenderLatency(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "P95") || !strings.Contains(buf.String(), "Stereo Vision") {
		t.Fatalf("render output:\n%s", buf.String())
	}
}
