package exp

import (
	"fmt"
	"math"

	"rtoffload/internal/benefit"
	"rtoffload/internal/core"
	"rtoffload/internal/parallel"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// Figure3Config parameterizes the §6.2 simulation study.
type Figure3Config struct {
	Seed uint64
	// Parallel bounds the worker pool the trials fan out on
	// (0 = GOMAXPROCS, 1 = sequential). The sweep is bit-identical for
	// every value: per-trial randomness is derived from (Seed, trial),
	// not from a shared sequential generator.
	Parallel int
	// Ratios are the estimation-accuracy ratios x; the paper sweeps
	// −0.4 … +0.4 in steps of 0.1.
	Ratios []float64
	// Trials is the number of random 30-task sets averaged per ratio.
	Trials int
	// TaskParams generates each trial's set (paper defaults).
	TaskParams task.Figure3Params
	// Simulate additionally runs each decision through the EDF
	// simulator against the true response-time distributions and
	// reports the observed in-time fractions (slower; used to validate
	// the analytic scores).
	Simulate       bool
	SimHorizonSecs float64
	// Interpretation selects how the estimator's error "uses
	// G((1+x)·ri)" (the paper's phrasing admits two readings; see the
	// constants).
	Interpretation Interpretation
}

// Interpretation disambiguates the paper's estimation-error model.
type Interpretation int

const (
	// BudgetShift (default): the estimator's response-time samples are
	// off by the factor (1+x), so every discrete point of Gi moves to
	// (1+x)·ri and the system sets its timers to the shifted budgets.
	// This matches the paper's causal narrative — under-estimated
	// response times make "the local compensation more frequently
	// adopted" — and produces the steep optimistic side.
	BudgetShift Interpretation = iota
	// ValueShift: the decision evaluates the benefit of budget ri by
	// reading the true function at (1+x)·ri (the formula verbatim)
	// while timers stay at the true ri. Only the *selection* can be
	// wrong, never the timer, so degradation is mild — an upper curve
	// on what the paper could have measured.
	ValueShift
)

// String implements fmt.Stringer.
func (i Interpretation) String() string {
	switch i {
	case BudgetShift:
		return "budget-shift"
	case ValueShift:
		return "value-shift"
	default:
		return fmt.Sprintf("Interpretation(%d)", int(i))
	}
}

// DefaultFigure3Config returns the paper's sweep.
func DefaultFigure3Config() Figure3Config {
	return Figure3Config{
		Seed:       1,
		Ratios:     []float64{-0.4, -0.3, -0.2, -0.1, 0, 0.1, 0.2, 0.3, 0.4},
		Trials:     20,
		TaskParams: task.DefaultFigure3Params(),
	}
}

// Figure3Point is one plotted point: solver × accuracy ratio →
// normalized total benefit.
type Figure3Point struct {
	Ratio  float64
	Solver core.Solver
	// Normalized is the realized total benefit (true success
	// probability of each chosen budget) divided by the perfect-
	// estimation DP value, averaged over trials.
	Normalized float64
	// SimNormalized is the simulation-measured counterpart (0 when
	// Simulate is off): in-time results per offloaded job, weighted
	// like the analytic score.
	SimNormalized float64
}

// Figure3Result is the full sweep.
type Figure3Result struct {
	Points []Figure3Point
}

// Series extracts one solver's normalized values in ratio order.
func (r *Figure3Result) Series(s core.Solver) []float64 {
	var out []float64
	for _, p := range r.Points {
		if p.Solver == s {
			out = append(out, p.Normalized)
		}
	}
	return out
}

// Figure3 reproduces the estimation-error study: the Benefit and
// Response Time Estimator sees G((1+x)·ri) — i.e. the discrete points
// shifted by the accuracy ratio — while the true success probabilities
// stay put. Decisions are made by the DP and HEU-OE solvers on the
// erroneous view; the realized benefit of a decision is the *true*
// Gi at each chosen budget. Values are normalized to DP at x = 0.
func Figure3(cfg Figure3Config) (*Figure3Result, error) {
	if len(cfg.Ratios) == 0 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("exp: figure 3 needs ratios and trials")
	}
	type acc struct{ analytic, sim, denom float64 }
	solvers := []core.Solver{core.SolverDP, core.SolverHEU}
	// One independent accumulator grid per trial; trials fan out on the
	// worker pool and the grids are folded in trial order afterwards,
	// so float summation order is fixed whatever the worker count.
	// (The old sequential loop ranged over a solver map while forking a
	// shared RNG for the simulation, so with -simulate even *it* was
	// not reproducible; per-(trial,ratio,solver) derived streams are.)
	trials, err := parallel.Map(cfg.Parallel, cfg.Trials, func(trial int) (map[core.Solver][]acc, error) {
		rng := stats.NewRNG(stats.DeriveSeed(cfg.Seed, streamFigure3Trial, uint64(trial)))
		trueSet, err := task.GenerateFigure3(rng, cfg.TaskParams)
		if err != nil {
			return nil, err
		}
		// Per-trial normalization: DP at perfect estimation.
		perfect, err := core.Decide(trueSet, core.Options{Solver: core.SolverDP})
		if err != nil {
			return nil, err
		}
		denom, err := core.RealizedBenefit(perfect, trueSet)
		if err != nil {
			return nil, err
		}
		if denom <= 0 {
			return nil, fmt.Errorf("exp: degenerate trial %d: zero benefit at perfect estimation", trial)
		}
		grid := map[core.Solver][]acc{
			core.SolverDP:  make([]acc, len(cfg.Ratios)),
			core.SolverHEU: make([]acc, len(cfg.Ratios)),
		}
		for ri, x := range cfg.Ratios {
			estSet, err := perturbFor(cfg.Interpretation, trueSet, x)
			if err != nil {
				return nil, err
			}
			for si, solver := range solvers {
				dec, err := core.Decide(estSet, core.Options{Solver: solver})
				if err != nil {
					return nil, fmt.Errorf("exp: trial %d x=%g %v: %w", trial, x, solver, err)
				}
				realized, err := core.RealizedBenefit(dec, trueSet)
				if err != nil {
					return nil, err
				}
				a := &grid[solver][ri]
				a.analytic += realized
				a.denom += denom
				if cfg.Simulate {
					simRNG := stats.NewRNG(stats.DeriveSeed(cfg.Seed, streamFigure3Sim,
						uint64(trial), uint64(ri), uint64(si)))
					frac, err := simulateHitBenefit(dec, trueSet, simRNG, cfg.SimHorizonSecs)
					if err != nil {
						return nil, err
					}
					a.sim += frac
				}
			}
		}
		return grid, nil
	})
	if err != nil {
		return nil, err
	}
	sums := map[core.Solver][]acc{
		core.SolverDP:  make([]acc, len(cfg.Ratios)),
		core.SolverHEU: make([]acc, len(cfg.Ratios)),
	}
	for _, grid := range trials {
		for _, solver := range solvers {
			for ri := range grid[solver] {
				a := &sums[solver][ri]
				a.analytic += grid[solver][ri].analytic
				a.sim += grid[solver][ri].sim
				a.denom += grid[solver][ri].denom
			}
		}
	}
	res := &Figure3Result{}
	for _, solver := range solvers {
		for ri, x := range cfg.Ratios {
			a := sums[solver][ri]
			p := Figure3Point{Ratio: x, Solver: solver, Normalized: a.analytic / a.denom}
			if cfg.Simulate {
				p.SimNormalized = a.sim / a.denom
			}
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}

// perturbFor builds the estimator's view of the set under the chosen
// interpretation of G((1+x)·ri).
func perturbFor(interp Interpretation, trueSet task.Set, x float64) (task.Set, error) {
	switch interp {
	case BudgetShift:
		return core.PerturbSet(trueSet, x)
	case ValueShift:
		out := trueSet.Clone()
		for _, t := range out {
			f := benefit.FromTask(trueSet.ByID(t.ID))
			prev := t.LocalBenefit
			for j := range t.Levels {
				v := f.At(rtime.Duration(math.Round((1 + x) * float64(t.Levels[j].Response))))
				// Keep the ladder non-decreasing after sampling the
				// step function at shifted abscissae.
				if v < prev {
					v = prev
				}
				t.Levels[j].Benefit = v
				prev = v
			}
			if err := t.Validate(); err != nil {
				return nil, fmt.Errorf("exp: value-shift produced invalid task: %w", err)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("exp: unknown interpretation %d", int(interp))
	}
}

// simulateHitBenefit runs the decision against a CDF server drawn from
// the true benefit functions and scores each offloaded job 1 when its
// result arrives within the chosen budget — the simulation counterpart
// of the analytic realized benefit (per-job average × job-count
// normalization cancels out across tasks with near-equal periods, so
// the score is the per-release expected value summed over tasks).
func simulateHitBenefit(dec *core.Decision, trueSet task.Set, rng *stats.RNG, horizonSecs float64) (float64, error) {
	if horizonSecs <= 0 {
		horizonSecs = 10
	}
	samplers := map[int]server.ResponseSampler{}
	asgs := dec.Assignments()
	// The simulator must time out according to the *decided* budgets
	// (already inside the assignments) while latencies follow the true
	// CDFs.
	for _, c := range dec.Choices {
		if c.Offload {
			tt := trueSet.ByID(c.Task.ID)
			if tt == nil {
				return 0, fmt.Errorf("exp: true set misses task %d", c.Task.ID)
			}
			samplers[c.Task.ID] = benefit.FromTask(tt)
		}
	}
	res, err := sched.Run(sched.Config{
		Assignments: asgs,
		Server:      server.NewCDF(rng, samplers),
		Horizon:     rtime.FromSeconds(horizonSecs),
	})
	if err != nil {
		return 0, err
	}
	if res.Misses != 0 {
		return 0, fmt.Errorf("exp: figure-3 simulation missed %d deadlines", res.Misses)
	}
	total := 0.0
	for _, c := range dec.Choices {
		st := res.PerTask[c.Task.ID]
		if st == nil || st.Finished == 0 {
			continue
		}
		if c.Offload {
			total += c.Task.EffectiveWeight() * float64(st.Hits) / float64(st.Finished)
		} else {
			total += c.Task.EffectiveWeight() * c.Task.LocalBenefit
		}
	}
	return total, nil
}
