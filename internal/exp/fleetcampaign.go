package exp

// Fleet campaign cells (DESIGN.md §5.9): the campaign's scenario axis
// becomes named multi-server stress shapes. Unlike single-server
// cells — whose assignments are constructed directly — a fleet cell
// admits its drawn system through the fleet-aware decision manager
// (core.Decide with Options.Fleet), so capacity pools, reliability
// discounts, and response scaling shape the routing, then simulates
// the routed system with one independently seeded fault injector per
// server.

import (
	"fmt"

	"rtoffload/internal/chaos"
	"rtoffload/internal/core"
	"rtoffload/internal/fleet"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
	"rtoffload/internal/trace"
)

// FleetScenarioNames lists the fleet stress shapes, in table order:
//
//	uniform   three healthy servers (edge, mid, cloud), no caps
//	hot       the attractive edge server has a tight capacity pool,
//	          coupled to mid through a shared radio group
//	skew      strongly asymmetric response scaling: a fast edge next
//	          to a cloud that doubles every budget
//	degrade   uniform fleet, but the edge's channel runs a hostile
//	          Gilbert–Elliott overlay on top of the fault axis
//	failover  uniform fleet whose edge server stops responding at
//	          mid-horizon (server.FailAfter)
func FleetScenarioNames() []string {
	return []string{"uniform", "hot", "skew", "degrade", "failover"}
}

// fleetFor resolves a scenario name to its fleet shape. The degrade
// and failover scenarios share the uniform shape — their stress lives
// in the cell's server construction, not the admission-side model.
func fleetFor(name string) (fleet.Fleet, error) {
	edge := fleet.Server{ID: "edge"}
	mid := fleet.Server{ID: "mid", Extra: rtime.FromMillis(1)}
	cloud := fleet.Server{ID: "cloud", ScaleNum: 3, ScaleDen: 2,
		Extra: rtime.FromMillis(2), Reliability: 0.9, WeightNum: 1, WeightDen: 2}
	f := fleet.Fleet{}
	switch name {
	case "uniform", "degrade", "failover":
	case "hot":
		edge.CapNum, edge.CapDen = 1, 4
		edge.Group, mid.Group = "radio", "radio"
		f.Groups = []fleet.Group{{ID: "radio", CapNum: 1, CapDen: 2}}
	case "skew":
		edge.ScaleNum, edge.ScaleDen = 1, 2
		cloud.ScaleNum, cloud.ScaleDen = 2, 1
	default:
		return fleet.Fleet{}, fmt.Errorf("exp: unknown fleet scenario %q", name)
	}
	f.Servers = []fleet.Server{edge, mid, cloud}
	return f, nil
}

// runFleetCell simulates one fleet cell in bounded memory, mirroring
// runCell: job log discarded, trace streamed through the one-pass
// checker. Every RNG stream derives from (Seed, ts, si, fi), never
// from execution order, so cells are order- and worker-independent.
func (c CampaignConfig) runFleetCell(cell int, base chaos.Config) (CellResult, error) {
	nf, ns := len(c.FaultScales), len(c.FleetScenarios)
	fi := cell % nf
	si := (cell / nf) % ns
	ts := cell / (nf * ns)
	name := c.FleetScenarios[si]
	fl, err := fleetFor(name)
	if err != nil {
		return CellResult{}, err
	}

	key := func(stream uint64) uint64 {
		return stats.DeriveSeed(c.Seed, streamCampaign,
			uint64(ts), uint64(si), uint64(fi), stream)
	}
	set := campaignFleetSet(stats.NewRNG(key(1)), c.Tasks)
	dec, err := core.Decide(set, core.Options{Solver: core.SolverDP, Fleet: fl})
	if err != nil {
		return CellResult{}, fmt.Errorf("exp: fleet cell %d (%s): %w", cell, name, err)
	}

	// One component and one fault injector per server: edge is idle,
	// mid lightly loaded, cloud busy; the chaos axis scales all three
	// identically, then the scenario applies its per-server twist.
	kinds := []server.Scenario{server.Idle, server.NotBusy, server.Busy}
	servers := make(map[string]server.Server, len(fl.Servers))
	for i, s := range fl.Servers {
		inner, err := server.NewScenario(stats.NewRNG(key(uint64(10+i))), kinds[i%len(kinds)])
		if err != nil {
			return CellResult{}, err
		}
		cfg := base.Scale(c.FaultScales[fi])
		if name == "degrade" && i == 0 {
			cfg.GE = chaos.GilbertElliott{
				PGoodBad: 0.6, PBadGood: 0.1, BadLoss: 0.9, BadDelayMax: c.Horizon / 8,
			}
		}
		inj, err := chaos.New(inner, cfg, stats.NewRNG(key(uint64(20+i))))
		if err != nil {
			return CellResult{}, err
		}
		srv := server.Server(inj)
		if name == "failover" && i == 0 {
			srv = server.FailAfter{Inner: inj, At: rtime.Instant(c.Horizon / 2)}
		}
		servers[s.ID] = srv
	}

	res, err := sched.Run(sched.Config{
		Assignments:       dec.Assignments(),
		Servers:           servers,
		Horizon:           c.Horizon,
		Policy:            sched.SplitEDF,
		EventQueue:        sched.AutoQueue,
		DiscardJobResults: true,
		TraceSink:         trace.NewStreamChecker(),
	})
	if err != nil {
		return CellResult{}, fmt.Errorf("exp: fleet cell %d (%s): %w", cell, name, err)
	}
	out := CellResult{
		Cell:     cell,
		TaskSet:  ts,
		Scenario: name,
		Fault:    c.FaultScales[fi],
		Misses:   res.Misses,
		Benefit:  res.NormalizedBenefit(),
		CPUBusy:  int64(res.CPUBusy),
		Makespan: int64(res.Makespan),
	}
	for _, ch := range dec.Choices {
		if ch.Offload {
			out.Offloaded++
		}
	}
	for id := 0; id < c.Tasks; id++ {
		if st := res.PerTask[id]; st != nil {
			out.Jobs += st.Released
			out.Finished += st.Finished
		}
	}
	return out, nil
}

// campaignFleetSet draws the fleet twin of campaignSystem: light
// per-task load, every third task offloadable with two service
// levels, handed to the decision manager as a task set (the fleet
// expansion and routing happen inside core.Decide).
func campaignFleetSet(rng *stats.RNG, n int) task.Set {
	shares := rng.UUniFast(n, 0.6)
	set := make(task.Set, 0, n)
	for i := 0; i < n; i++ {
		period := rtime.FromMillis(rng.UniformInt(20, 400))
		cwc := rtime.Duration(shares[i] * float64(period))
		if cwc < 2 {
			cwc = 2
		}
		tk := &task.Task{ID: i, Period: period, Deadline: period, LocalWCET: cwc, LocalBenefit: 1}
		if i%3 == 0 {
			tk.Setup = cwc/4 + 1
			tk.Compensation = cwc
			tk.PostProcess = cwc / 6
			tk.Levels = []task.Level{
				{Response: rtime.Duration(float64(period) * 0.35), Benefit: 2},
				{Response: rtime.Duration(float64(period) * 0.6), Benefit: 2.5},
			}
		}
		set = append(set, tk)
	}
	return set
}
