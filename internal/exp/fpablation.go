package exp

import (
	"fmt"

	"rtoffload/internal/dbf"
	"rtoffload/internal/rta"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// FPAblationRow compares admission rates of four tests at one nominal
// load level: the two FP analyses (suspension-oblivious and
// suspension-jitter) against the paper's EDF deadline-splitting
// Theorem 3 and the exact EDF QPA test.
type FPAblationRow struct {
	TargetLoad  float64
	Systems     int
	FPOblivious int
	FPJitter    int
	EDFTheorem3 int
	EDFExact    int
}

// FPAblation sweeps load levels over random mixed systems (half
// offloaded with random budgets, half local) and counts acceptances
// per test. The load parameter is the generated execution utilization
// Σ(C1+C2)/T — suspensions come on top, which is what separates the
// tests.
func FPAblation(seed uint64, loads []float64, perLoad int) ([]FPAblationRow, error) {
	if len(loads) == 0 || perLoad <= 0 {
		return nil, fmt.Errorf("exp: loads and perLoad must be non-empty")
	}
	rng := stats.NewRNG(seed)
	rows := make([]FPAblationRow, 0, len(loads))
	for _, load := range loads {
		if load <= 0 || load > 1 {
			return nil, fmt.Errorf("exp: load %g out of (0,1]", load)
		}
		row := FPAblationRow{TargetLoad: load}
		for sysi := 0; sysi < perLoad; sysi++ {
			asgs, ok := genMixedSystem(rng, load)
			if !ok {
				continue
			}
			row.Systems++

			model, err := rta.FromAssignments(asgs)
			if err != nil {
				return nil, err
			}
			if r, err := rta.Analyze(model, rta.Oblivious); err == nil && r.Schedulable {
				row.FPOblivious++
			}
			if r, err := rta.Analyze(model, rta.Jitter); err == nil && r.Schedulable {
				row.FPJitter++
			}

			var off []dbf.Offloaded
			var loc []dbf.Sporadic
			var ds []dbf.Demand
			feasible := true
			for _, a := range asgs {
				t := a.Task
				if a.Offload {
					o, err := dbf.NewOffloaded(t.SetupAt(a.Level), t.SecondPhaseAt(a.Level),
						t.Deadline, t.Period, a.Budget())
					if err != nil {
						feasible = false
						break
					}
					off = append(off, o)
					ds = append(ds, o)
				} else {
					s, err := dbf.NewSporadic(t.LocalWCET, t.Deadline, t.Period)
					if err != nil {
						feasible = false
						break
					}
					loc = append(loc, s)
					ds = append(ds, s)
				}
			}
			if !feasible {
				continue
			}
			if _, ok := dbf.Theorem3(off, loc); ok {
				row.EDFTheorem3++
			}
			if err := dbf.QPA(ds); err == nil {
				row.EDFExact++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// genMixedSystem draws a system whose execution utilization is load,
// with random suspensions on the offloaded half.
func genMixedSystem(rng *stats.RNG, load float64) ([]sched.Assignment, bool) {
	n := rng.IntN(5) + 3
	shares := rng.UUniFast(n, load)
	var asgs []sched.Assignment
	for i := 0; i < n; i++ {
		period := rtime.FromMillis(rng.UniformInt(50, 400))
		c := rtime.Duration(shares[i] * float64(period))
		if c < 2 {
			c = 2
		}
		if i%2 == 0 {
			asgs = append(asgs, sched.Assignment{Task: &task.Task{
				ID: i, Period: period, Deadline: period, LocalWCET: c, LocalBenefit: 1,
			}})
			continue
		}
		c1 := c / 4
		if c1 < 1 {
			c1 = 1
		}
		c2 := c - c1
		r := rtime.Duration(rng.Int64N(int64(period / 2)))
		tk := &task.Task{
			ID: i, Period: period, Deadline: period,
			LocalWCET: c2, Setup: c1, Compensation: c2, LocalBenefit: 1,
			Levels: []task.Level{{Response: r + 1, Benefit: 2}},
		}
		if tk.Validate() != nil {
			return nil, false
		}
		asgs = append(asgs, sched.Assignment{Task: tk, Offload: true})
	}
	return asgs, true
}
