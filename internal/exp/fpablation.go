package exp

import (
	"fmt"

	"rtoffload/internal/dbf"
	"rtoffload/internal/parallel"
	"rtoffload/internal/rta"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// FPAblationRow compares admission rates of four tests at one nominal
// load level: the two FP analyses (suspension-oblivious and
// suspension-jitter) against the paper's EDF deadline-splitting
// Theorem 3 and the exact EDF QPA test.
type FPAblationRow struct {
	TargetLoad  float64
	Systems     int
	FPOblivious int
	FPJitter    int
	EDFTheorem3 int
	EDFExact    int
}

// FPAblation sweeps load levels over random mixed systems (half
// offloaded with random budgets, half local) and counts acceptances
// per test. The load parameter is the generated execution utilization
// Σ(C1+C2)/T — suspensions come on top, which is what separates the
// tests. Systems fan out on `workers` goroutines (0 = GOMAXPROCS).
func FPAblation(seed uint64, loads []float64, perLoad, workers int) ([]FPAblationRow, error) {
	if len(loads) == 0 || perLoad <= 0 {
		return nil, fmt.Errorf("exp: loads and perLoad must be non-empty")
	}
	for _, load := range loads {
		if load <= 0 || load > 1 {
			return nil, fmt.Errorf("exp: load %g out of (0,1]", load)
		}
	}
	type sysResult struct {
		ok, fpObl, fpJit bool
		// feasible marks systems whose split dbf objects could be
		// built; only those count toward the EDF columns (the FP
		// columns still count them, mirroring the sequential loop).
		feasible, thm3, exact bool
	}
	results, err := parallel.Map(workers, len(loads)*perLoad, func(i int) (sysResult, error) {
		li, sysi := i/perLoad, i%perLoad
		rng := stats.NewRNG(stats.DeriveSeed(seed, streamFPAblation, uint64(li), uint64(sysi)))
		asgs, ok := genMixedSystem(rng, loads[li])
		if !ok {
			return sysResult{}, nil
		}
		res := sysResult{ok: true}

		model, err := rta.FromAssignments(asgs)
		if err != nil {
			return sysResult{}, err
		}
		if r, err := rta.Analyze(model, rta.Oblivious); err == nil && r.Schedulable {
			res.fpObl = true
		}
		if r, err := rta.Analyze(model, rta.Jitter); err == nil && r.Schedulable {
			res.fpJit = true
		}

		var off []dbf.Offloaded
		var loc []dbf.Sporadic
		var ds []dbf.Demand
		res.feasible = true
		for _, a := range asgs {
			t := a.Task
			if a.Offload {
				o, err := dbf.NewOffloaded(t.SetupAt(a.Level), t.SecondPhaseAt(a.Level),
					t.Deadline, t.Period, a.Budget())
				if err != nil {
					res.feasible = false
					break
				}
				off = append(off, o)
				ds = append(ds, o)
			} else {
				s, err := dbf.NewSporadic(t.LocalWCET, t.Deadline, t.Period)
				if err != nil {
					res.feasible = false
					break
				}
				loc = append(loc, s)
				ds = append(ds, s)
			}
		}
		if !res.feasible {
			return res, nil
		}
		if _, ok := dbf.Theorem3(off, loc); ok {
			res.thm3 = true
		}
		az, err := dbf.NewAnalyzer(ds)
		if err != nil {
			return sysResult{}, err
		}
		if az.Feasible() == nil {
			res.exact = true
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]FPAblationRow, 0, len(loads))
	for li, load := range loads {
		row := FPAblationRow{TargetLoad: load}
		for _, r := range results[li*perLoad : (li+1)*perLoad] {
			if !r.ok {
				continue
			}
			row.Systems++
			if r.fpObl {
				row.FPOblivious++
			}
			if r.fpJit {
				row.FPJitter++
			}
			if !r.feasible {
				continue
			}
			if r.thm3 {
				row.EDFTheorem3++
			}
			if r.exact {
				row.EDFExact++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// genMixedSystem draws a system whose execution utilization is load,
// with random suspensions on the offloaded half.
func genMixedSystem(rng *stats.RNG, load float64) ([]sched.Assignment, bool) {
	n := rng.IntN(5) + 3
	shares := rng.UUniFast(n, load)
	var asgs []sched.Assignment
	for i := 0; i < n; i++ {
		period := rtime.FromMillis(rng.UniformInt(50, 400))
		c := rtime.Duration(shares[i] * float64(period))
		if c < 2 {
			c = 2
		}
		if i%2 == 0 {
			asgs = append(asgs, sched.Assignment{Task: &task.Task{
				ID: i, Period: period, Deadline: period, LocalWCET: c, LocalBenefit: 1,
			}})
			continue
		}
		c1 := c / 4
		if c1 < 1 {
			c1 = 1
		}
		c2 := c - c1
		r := rtime.Duration(rng.Int64N(int64(period / 2)))
		tk := &task.Task{
			ID: i, Period: period, Deadline: period,
			LocalWCET: c2, Setup: c1, Compensation: c2, LocalBenefit: 1,
			Levels: []task.Level{{Response: r + 1, Benefit: 2}},
		}
		if tk.Validate() != nil {
			return nil, false
		}
		asgs = append(asgs, sched.Assignment{Task: tk, Offload: true})
	}
	return asgs, true
}
