package exp

import (
	"testing"

	"rtoffload/internal/core"
)

func TestSolverAblation(t *testing.T) {
	rows, err := SolverAblation(5, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[core.Solver]SolverAblationRow{}
	for _, r := range rows {
		byName[r.Solver] = r
		if r.MeanQuality <= 0 || r.MeanQuality > 1.001 {
			t.Errorf("%v: mean quality %g", r.Solver, r.MeanQuality)
		}
		if r.WorstQuality > r.MeanQuality+1e-9 {
			t.Errorf("%v: worst %g above mean %g", r.Solver, r.WorstQuality, r.MeanQuality)
		}
	}
	if byName[core.SolverDP].MeanQuality != 1 {
		t.Errorf("DP mean %g, want 1 (self-normalized)", byName[core.SolverDP].MeanQuality)
	}
	// HEU-OE should be near-optimal on these instances; greedy clearly
	// worse or equal.
	if byName[core.SolverHEU].MeanQuality < 0.9 {
		t.Errorf("HEU mean quality %g surprisingly poor", byName[core.SolverHEU].MeanQuality)
	}
	if byName[core.SolverGreedy].MeanQuality > byName[core.SolverHEU].MeanQuality+0.05 {
		t.Errorf("greedy (%g) clearly beats HEU (%g)?", byName[core.SolverGreedy].MeanQuality, byName[core.SolverHEU].MeanQuality)
	}
	if _, err := SolverAblation(1, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

// Ablation A: the paper's deadline splitting keeps every Theorem-3
// feasible system miss-free; naive EDF starts missing deadlines as the
// load grows.
func TestNaiveEDFAblation(t *testing.T) {
	rows, err := NaiveEDFAblation(7, []float64{0.5, 0.8, 0.95}, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	sawNaiveMiss := false
	for _, r := range rows {
		if r.Systems == 0 {
			t.Fatalf("load %g: no systems generated", r.TargetLoad)
		}
		if r.SplitMissRate != 0 {
			t.Fatalf("load %g: split EDF missed deadlines (%g)", r.TargetLoad, r.SplitMissRate)
		}
		if r.NaiveMissRate > 0 {
			sawNaiveMiss = true
		}
	}
	// At 95 % Theorem-3 load, naive EDF must be failing regularly.
	last := rows[len(rows)-1]
	if last.NaiveMissRate < 0.3 {
		t.Errorf("naive miss rate %g at load %g suspiciously low", last.NaiveMissRate, last.TargetLoad)
	}
	if !sawNaiveMiss {
		t.Error("naive EDF never missed — ablation shows nothing")
	}
	if _, err := NaiveEDFAblation(1, nil, 5, 1); err == nil {
		t.Error("empty loads accepted")
	}
	if _, err := NaiveEDFAblation(1, []float64{1.5}, 5, 1); err == nil {
		t.Error("load > 1 accepted")
	}
}

// Ablation C: the exact dbf test dominates Theorem 3 — it accepts at
// least as many systems at every load and strictly more beyond
// capacity 1.
func TestDBFAblation(t *testing.T) {
	rows, err := DBFAblation(11, []float64{0.6, 0.9, 1.1, 1.3}, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	strictly := false
	for _, r := range rows {
		if r.Systems == 0 {
			continue
		}
		if r.ExactAccepted < r.Theorem3Accepted {
			t.Fatalf("load %g: exact test accepted fewer (%d) than Theorem 3 (%d)",
				r.TargetLoad, r.ExactAccepted, r.Theorem3Accepted)
		}
		if r.ExactAccepted > r.Theorem3Accepted {
			strictly = true
		}
		if r.TargetLoad > 1 && r.Theorem3Accepted > 0 {
			t.Fatalf("load %g: Theorem 3 accepted an over-unit system", r.TargetLoad)
		}
	}
	if !strictly {
		t.Error("exact test never strictly better — ablation shows nothing")
	}
	if _, err := DBFAblation(1, nil, 5, 1); err == nil {
		t.Error("empty loads accepted")
	}
}
