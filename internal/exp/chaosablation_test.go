package exp

import "testing"

// TestChaosAblationShape checks the robustness story: with no faults
// the two policies are indistinguishable, and at full intensity the
// admitted systems still never miss under deadline splitting while the
// naive assignment starts missing.
func TestChaosAblationShape(t *testing.T) {
	rows, err := ChaosAblation(7, []float64{0, 1}, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	calm, hostile := rows[0], rows[1]
	if calm.Systems == 0 || hostile.Systems == 0 {
		t.Fatalf("no systems admitted: %+v", rows)
	}
	if calm.SplitMissRate != 0 || calm.NaiveMissRate != 0 {
		t.Errorf("miss rates at intensity 0: split=%g naive=%g, want 0",
			calm.SplitMissRate, calm.NaiveMissRate)
	}
	if calm.SplitBenefit != calm.NaiveBenefit {
		t.Errorf("benefits at intensity 0 diverge: split=%g naive=%g",
			calm.SplitBenefit, calm.NaiveBenefit)
	}
	if hostile.SplitMissRate != 0 {
		t.Errorf("split-EDF missed under chaos: rate %g", hostile.SplitMissRate)
	}
	if hostile.NaiveMissRate <= 0 {
		t.Errorf("naive EDF never missed at full intensity across %d systems", hostile.Systems)
	}
	if hostile.SplitBenefit >= calm.SplitBenefit {
		t.Errorf("split benefit did not degrade under chaos: %g vs %g",
			hostile.SplitBenefit, calm.SplitBenefit)
	}
}

// TestChaosAblationValidation covers the argument guards.
func TestChaosAblationValidation(t *testing.T) {
	if _, err := ChaosAblation(1, nil, 5, 0); err == nil {
		t.Error("empty intensities accepted")
	}
	if _, err := ChaosAblation(1, []float64{0.5}, 0, 0); err == nil {
		t.Error("zero perLevel accepted")
	}
	if _, err := ChaosAblation(1, []float64{1.5}, 5, 0); err == nil {
		t.Error("out-of-range intensity accepted")
	}
}
