package exp

import (
	"fmt"
	"io"
	"strings"

	"rtoffload/internal/core"
	"rtoffload/internal/server"
)

// WriteTable renders an aligned text table.
func WriteTable(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len([]rune(c)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := line(headers); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := io.WriteString(w, strings.Repeat("-", total)+"\n"); err != nil {
		return err
	}
	for _, r := range rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders rows as comma-separated values (no quoting; the
// harness emits only numbers and simple labels).
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	if _, err := io.WriteString(w, strings.Join(headers, ",")+"\n"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := io.WriteString(w, strings.Join(r, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// RenderTable1 prints the regenerated Table 1 in the paper's layout.
func RenderTable1(w io.Writer, rows []Table1Row) error {
	headers := []string{"Task", "Gi(0)"}
	if len(rows) > 0 {
		for j := range rows[0].Budgets {
			headers = append(headers, fmt.Sprintf("ri,%d", j+2), fmt.Sprintf("Gi(ri,%d)", j+2))
		}
	}
	var out [][]string
	for _, r := range rows {
		cells := []string{r.Task, fmt.Sprintf("%.4f", r.LocalPSNR)}
		for j := range r.Budgets {
			cells = append(cells, fmt.Sprintf("%.1f ms", r.Budgets[j].Millis()),
				fmt.Sprintf("%.4f", r.PSNRs[j]))
		}
		out = append(out, cells)
	}
	return WriteTable(w, headers, out)
}

// RenderFigure2 prints the case-study series, one row per work set.
func RenderFigure2(w io.Writer, res *Figure2Result) error {
	busy := res.Series(server.Busy)
	notBusy := res.Series(server.NotBusy)
	idle := res.Series(server.Idle)
	headers := []string{"WorkSet", "Weights", "Busy", "NotBusy", "Idle"}
	var rows [][]string
	for i := range busy {
		p := res.Points[i]
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%v", p.Weights),
			fmt.Sprintf("%.3f", busy[i]),
			fmt.Sprintf("%.3f", notBusy[i]),
			fmt.Sprintf("%.3f", idle[i]),
		})
	}
	return WriteTable(w, headers, rows)
}

// RenderFigure3 prints the sweep, one row per accuracy ratio.
func RenderFigure3(w io.Writer, res *Figure3Result) error {
	dp := map[float64]Figure3Point{}
	heu := map[float64]Figure3Point{}
	var order []float64
	for _, p := range res.Points {
		switch p.Solver {
		case core.SolverDP:
			dp[p.Ratio] = p
			order = append(order, p.Ratio)
		case core.SolverHEU:
			heu[p.Ratio] = p
		}
	}
	headers := []string{"x (%)", "DP", "HEU-OE"}
	var rows [][]string
	for _, x := range order {
		rows = append(rows, []string{
			fmt.Sprintf("%+.0f", x*100),
			fmt.Sprintf("%.4f", dp[x].Normalized),
			fmt.Sprintf("%.4f", heu[x].Normalized),
		})
	}
	return WriteTable(w, headers, rows)
}
