package exp

import (
	"fmt"

	"rtoffload/internal/chaos"
	"rtoffload/internal/parallel"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
)

// ChaosAblationRow compares the two deadline-assignment policies at
// one fault intensity (robustness ablation, DESIGN.md §5.4).
type ChaosAblationRow struct {
	// Intensity scales the heavy chaos preset: 0 is a fault-free
	// network, 1 the full hostile profile.
	Intensity float64
	Systems   int
	// SplitMissRate / NaiveMissRate: fraction of systems with at least
	// one deadline miss under the faulted server.
	SplitMissRate float64
	NaiveMissRate float64
	// SplitBenefit / NaiveBenefit: mean normalized benefit
	// (1.0 = all-local baseline).
	SplitBenefit float64
	NaiveBenefit float64
}

// ChaosAblation sweeps fault intensity and simulates Theorem-3
// admitted offload-heavy systems under both deadline-assignment
// policies against a responsive server wrapped in the chaos injector
// (the heavy preset scaled by the intensity). With no faults both
// policies ride the hit path; as faults force compensation runs, naive
// EDF's unsplit setup deadlines start missing while deadline splitting
// holds the hard guarantee and sheds only benefit. Systems fan out on
// `workers` goroutines (0 = GOMAXPROCS).
func ChaosAblation(seed uint64, intensities []float64, perLevel, workers int) ([]ChaosAblationRow, error) {
	if len(intensities) == 0 || perLevel <= 0 {
		return nil, fmt.Errorf("exp: intensities and perLevel must be non-empty")
	}
	for _, x := range intensities {
		if x < 0 || x > 1 {
			return nil, fmt.Errorf("exp: intensity %g out of [0,1]", x)
		}
	}
	heavy, err := chaos.Preset("heavy")
	if err != nil {
		return nil, err
	}
	type sysResult struct {
		ok                   bool
		splitMiss, naiveMiss bool
		splitBen, naiveBen   float64
	}
	results, err := parallel.Map(workers, len(intensities)*perLevel, func(i int) (sysResult, error) {
		li, sysi := i/perLevel, i%perLevel
		rng := stats.NewRNG(stats.DeriveSeed(seed, streamChaosAblation, uint64(li), uint64(sysi)))
		asgs, ok := genOffloadSystem(rng, rng.Uniform(0.5, 0.75))
		if !ok {
			return sysResult{}, nil
		}
		res := sysResult{ok: true}
		cfg := heavy.Scale(intensities[li])
		for pi, policy := range []sched.Policy{sched.SplitEDF, sched.NaiveEDF} {
			sim, err := runUnderChaos(asgs, policy, cfg,
				stats.DeriveSeed(seed, streamChaosAblation, uint64(li), uint64(sysi), uint64(pi+1)))
			if err != nil {
				return sysResult{}, err
			}
			if pi == 0 {
				res.splitMiss = sim.Misses > 0
				res.splitBen = sim.NormalizedBenefit()
			} else {
				res.naiveMiss = sim.Misses > 0
				res.naiveBen = sim.NormalizedBenefit()
			}
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ChaosAblationRow, 0, len(intensities))
	for li, x := range intensities {
		row := ChaosAblationRow{Intensity: x}
		for _, r := range results[li*perLevel : (li+1)*perLevel] {
			if !r.ok {
				continue
			}
			row.Systems++
			if r.splitMiss {
				row.SplitMissRate++
			}
			if r.naiveMiss {
				row.NaiveMissRate++
			}
			row.SplitBenefit += r.splitBen
			row.NaiveBenefit += r.naiveBen
		}
		if row.Systems > 0 {
			n := float64(row.Systems)
			row.SplitMissRate /= n
			row.NaiveMissRate /= n
			row.SplitBenefit /= n
			row.NaiveBenefit /= n
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runUnderChaos simulates one admitted system under a policy against a
// deterministic in-budget server wrapped in the fault injector: absent
// faults every offload request returns at half its budget (the hit
// path); every injected loss or delay beyond the budget forces the
// compensation path.
func runUnderChaos(asgs []sched.Assignment, p sched.Policy, cfg chaos.Config, seed uint64) (*sched.Result, error) {
	maxT := rtime.Duration(0)
	var budget rtime.Duration
	for _, a := range asgs {
		if a.Task.Period > maxT {
			maxT = a.Task.Period
		}
		if a.Offload {
			budget = a.Task.Levels[a.Level].Response
		}
	}
	srv, err := chaos.New(server.Fixed{Latency: budget / 2}, cfg, stats.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	return sched.Run(sched.Config{
		Assignments: asgs,
		Server:      srv,
		Horizon:     10 * maxT,
		Policy:      p,
	})
}
