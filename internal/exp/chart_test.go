package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderChart(t *testing.T) {
	var buf bytes.Buffer
	err := RenderChart(&buf, "demo", []string{"a", "b", "c"}, []Series{
		{Name: "up", Glyph: 'u', Values: []float64{1, 2, 3}},
		{Name: "down", Glyph: 'd', Values: []float64{3, 2, 1}},
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "u=up", "d=down", "+--", "a", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The middle column is a collision (both series at 2) → '*'.
	lines := strings.Split(out, "\n")
	// 'u' must appear above... locate rows containing glyphs.
	uRow, dRow := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "u") && strings.Contains(l, "|") {
			uRow = i
		}
		if strings.Contains(l, "d") && strings.Contains(l, "|") && dRow == -1 {
			dRow = i
		}
	}
	if uRow == -1 || dRow == -1 {
		t.Fatalf("glyphs not rendered:\n%s", out)
	}
}

func TestRenderChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderChart(&buf, "t", []string{"a"}, []Series{{Values: []float64{1}}}, 2); err == nil {
		t.Error("tiny height accepted")
	}
	if err := RenderChart(&buf, "t", nil, nil, 5); err == nil {
		t.Error("no series accepted")
	}
	if err := RenderChart(&buf, "t", []string{"a"}, []Series{{Values: nil}}, 5); err == nil {
		t.Error("empty series accepted")
	}
	if err := RenderChart(&buf, "t", []string{"a"}, []Series{
		{Values: []float64{1}}, {Values: []float64{1, 2}},
	}, 5); err == nil {
		t.Error("ragged series accepted")
	}
	if err := RenderChart(&buf, "t", []string{"a", "b"}, []Series{{Values: []float64{1}}}, 5); err == nil {
		t.Error("label mismatch accepted")
	}
	if err := RenderChart(&buf, "t", []string{"a"}, []Series{{Values: []float64{math.NaN()}}}, 5); err == nil {
		t.Error("NaN accepted")
	}
}

// Long x labels (wider than the default 3-char column) used to bleed
// into the neighboring column; the columns must now widen to the
// longest label so every label survives verbatim and stays disjoint.
func TestRenderChartLongLabels(t *testing.T) {
	var buf bytes.Buffer
	labels := []string{"+100", "-100", "+50"}
	if err := RenderChart(&buf, "wide", labels, []Series{
		{Name: "s", Glyph: 's', Values: []float64{1, 2, 3}},
	}, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// The label row is the line right after the axis ("+----").
	labRow := ""
	for i, l := range lines {
		if strings.Contains(l, "+--") && i+1 < len(lines) {
			labRow = lines[i+1]
			break
		}
	}
	if labRow == "" {
		t.Fatalf("no label row:\n%s", out)
	}
	for _, l := range labels {
		if !strings.Contains(labRow, l) {
			t.Errorf("label %q truncated or overwritten in %q", l, labRow)
		}
	}
	// Columns are 4 wide (longest label); each label must stay within
	// its own column of the label row.
	body := labRow[strings.IndexFunc(labRow, func(r rune) bool { return r == '+' || r == '-' }):]
	for i, l := range labels {
		col := strings.TrimSpace(body[i*4 : min(len(body), (i+1)*4)])
		if col != l {
			t.Errorf("column %d holds %q, want %q (row %q)", i, col, l, labRow)
		}
	}
}

func TestRenderChartFlatSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderChart(&buf, "flat", []string{"x", "y"}, []Series{
		{Name: "c", Glyph: 'c', Values: []float64{2, 2}},
	}, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "c") {
		t.Fatalf("flat series not rendered:\n%s", buf.String())
	}
}

func TestChartFigure3(t *testing.T) {
	cfg := DefaultFigure3Config()
	cfg.Trials = 1
	cfg.Ratios = []float64{-0.2, 0, 0.2}
	res, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ChartFigure3(&buf, res, cfg.Ratios, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "D=DP") || !strings.Contains(out, "+0") {
		t.Fatalf("figure 3 chart:\n%s", out)
	}
}
