package exp

import (
	"fmt"

	"rtoffload/internal/parallel"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
)

// Figure2Stats summarizes one scenario across independent seeds.
type Figure2Stats struct {
	Scenario server.Scenario
	// Mean and CI95 describe the distribution of per-run scenario
	// means (each run averages its 24 work sets). CI95 is the
	// half-width of the Student-t interval — at small run counts the
	// t critical value (4.30 at 3 runs) is what keeps the error bars
	// honest; the normal 1.96 would understate them by half.
	Mean float64
	CI95 float64
	Runs int
}

// Figure2Multi repeats the Figure-2 case study across `seeds`
// independent seeds and reports the scenario means with 95 %
// confidence intervals — the error bars the paper's single 10 s run
// cannot show. The scenario ordering claim (busy < not-busy < idle) is
// only meaningful when the intervals separate; the test suite asserts
// exactly that.
//
// Runs fan out on cfg.Parallel workers; each run's seed is derived
// from (cfg.Seed, run index), so the table is identical for any worker
// count, and distinct base seeds can never share a run stream (the old
// additive offset `seed + run·7919` collided, e.g. base 7919 run 0
// with base 0 run 1).
func Figure2Multi(cfg CaseStudyConfig, seeds int) ([]Figure2Stats, error) {
	if seeds <= 0 {
		return nil, fmt.Errorf("exp: seeds must be positive")
	}
	scenarios := []server.Scenario{server.Busy, server.NotBusy, server.Idle}
	runs, err := parallel.Map(cfg.Parallel, seeds, func(s int) (map[server.Scenario]float64, error) {
		c := cfg
		c.Seed = stats.DeriveSeed(cfg.Seed, streamMultiSeed, uint64(s))
		c.Parallel = 1 // the fan-out is per run; don't oversubscribe
		res, err := Figure2(c)
		if err != nil {
			return nil, fmt.Errorf("exp: seed %d: %w", s, err)
		}
		means := make(map[server.Scenario]float64, len(scenarios))
		for _, scenario := range scenarios {
			means[scenario] = stats.Mean(res.Series(scenario))
		}
		return means, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Figure2Stats, 0, len(scenarios))
	for _, scenario := range scenarios {
		vals := make([]float64, len(runs))
		for i, r := range runs {
			vals[i] = r[scenario]
		}
		mean, half := stats.MeanCI(vals, stats.TCritical95(len(vals)))
		out = append(out, Figure2Stats{
			Scenario: scenario, Mean: mean, CI95: half, Runs: seeds,
		})
	}
	return out, nil
}
