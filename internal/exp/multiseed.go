package exp

import (
	"fmt"

	"rtoffload/internal/server"
	"rtoffload/internal/stats"
)

// Figure2Stats summarizes one scenario across independent seeds.
type Figure2Stats struct {
	Scenario server.Scenario
	// Mean and CI95 describe the distribution of per-run scenario
	// means (each run averages its 24 work sets).
	Mean float64
	CI95 float64
	Runs int
}

// Figure2Multi repeats the Figure-2 case study across `seeds`
// independent seeds and reports the scenario means with 95 %
// confidence intervals — the error bars the paper's single 10 s run
// cannot show. The scenario ordering claim (busy < not-busy < idle) is
// only meaningful when the intervals separate; the test suite asserts
// exactly that.
func Figure2Multi(cfg CaseStudyConfig, seeds int) ([]Figure2Stats, error) {
	if seeds <= 0 {
		return nil, fmt.Errorf("exp: seeds must be positive")
	}
	perScenario := map[server.Scenario][]float64{}
	for s := 0; s < seeds; s++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(s)*7919
		res, err := Figure2(c)
		if err != nil {
			return nil, fmt.Errorf("exp: seed %d: %w", s, err)
		}
		for _, scenario := range []server.Scenario{server.Busy, server.NotBusy, server.Idle} {
			vals := res.Series(scenario)
			perScenario[scenario] = append(perScenario[scenario], stats.Mean(vals))
		}
	}
	out := make([]Figure2Stats, 0, 3)
	for _, scenario := range []server.Scenario{server.Busy, server.NotBusy, server.Idle} {
		mean, half := stats.MeanCI(perScenario[scenario], 1.96)
		out = append(out, Figure2Stats{
			Scenario: scenario, Mean: mean, CI95: half, Runs: seeds,
		})
	}
	return out, nil
}
