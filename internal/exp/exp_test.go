package exp

import (
	"bytes"
	"strings"
	"testing"

	"rtoffload/internal/core"
	"rtoffload/internal/imgproc"
	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
)

// testCaseConfig shrinks the case study for fast unit tests while
// keeping the calibration shape.
func testCaseConfig() CaseStudyConfig {
	cfg := DefaultCaseStudyConfig()
	cfg.Probes = 120
	cfg.HorizonSeconds = 10
	return cfg
}

func TestCaseTasksStructure(t *testing.T) {
	set, err := CaseTasks(testCaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 {
		t.Fatalf("%d tasks, want 4", len(set))
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, tk := range set {
		names[tk.Name] = true
		if len(tk.Levels) != 4 {
			t.Fatalf("%s: %d levels", tk.Name, len(tk.Levels))
		}
		// Top level is the full-resolution frame → PSNR cap.
		if top := tk.Levels[3].Benefit; top != imgproc.PSNRCap {
			t.Errorf("%s: top benefit %g", tk.Name, top)
		}
		if tk.LocalBenefit >= tk.Levels[0].Benefit {
			t.Errorf("%s: local PSNR %g not below first level %g", tk.Name, tk.LocalBenefit, tk.Levels[0].Benefit)
		}
		// Deadlines per the paper: 1.8s / 2s.
		if tk.Deadline != rtimeMS(1800) && tk.Deadline != rtimeMS(2000) {
			t.Errorf("%s: deadline %v", tk.Name, tk.Deadline)
		}
		// Probed budgets must be usable: below the deadline.
		for j, lv := range tk.Levels {
			if lv.Response <= 0 || lv.Response >= tk.Deadline {
				t.Errorf("%s level %d: budget %v", tk.Name, j, lv.Response)
			}
		}
		// Local utilization near the configured target.
		u, _ := tk.Utilization().Float64()
		if u < 0.1 || u > 0.25 {
			t.Errorf("%s: local utilization %g", tk.Name, u)
		}
	}
	for _, want := range []string{"Stereo Vision", "Edge Detection", "Object recognition", "Motion Detection"} {
		if !names[want] {
			t.Errorf("missing task %q", want)
		}
	}
}

func TestCaseTasksBadConfig(t *testing.T) {
	cfg := testCaseConfig()
	cfg.LocalUtil = 0.3 // 4×0.3 ≥ 1
	if _, err := CaseTasks(cfg); err == nil {
		t.Error("over-utilized config accepted")
	}
	cfg = testCaseConfig()
	cfg.FrameW = 0
	if _, err := CaseTasks(cfg); err == nil {
		t.Error("zero frame accepted")
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(testCaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Budgets) != 4 || len(r.PSNRs) != 4 {
			t.Fatalf("%s: ragged row", r.Task)
		}
		prevB, prevP := rtimeMS(0), r.LocalPSNR
		for j := range r.Budgets {
			if r.Budgets[j] <= prevB {
				t.Errorf("%s: budgets not increasing at %d", r.Task, j)
			}
			if r.PSNRs[j] <= prevP {
				t.Errorf("%s: PSNR not increasing at %d", r.Task, j)
			}
			prevB, prevP = r.Budgets[j], r.PSNRs[j]
		}
		if r.PSNRs[3] != imgproc.PSNRCap {
			t.Errorf("%s: top PSNR %g", r.Task, r.PSNRs[3])
		}
	}
}

func TestPermutations4(t *testing.T) {
	perms := permutations4()
	if len(perms) != 24 {
		t.Fatalf("%d permutations", len(perms))
	}
	seen := map[[4]float64]bool{}
	for _, p := range perms {
		if seen[p] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[p] = true
		sum := p[0] + p[1] + p[2] + p[3]
		if sum != 10 {
			t.Fatalf("bad permutation %v", p)
		}
	}
}

// The headline case-study property (paper Figure 2): scenario means
// order busy < not-busy < idle, the busy scenario stays near the
// baseline, the idle scenario clearly improves on it, and no run ever
// misses a deadline.
func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("case-study sweep is slow")
	}
	res, err := Figure2(testCaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 72 {
		t.Fatalf("%d points, want 72", len(res.Points))
	}
	mean := func(s server.Scenario) float64 {
		vals := res.Series(s)
		if len(vals) != 24 {
			t.Fatalf("scenario %v: %d values", s, len(vals))
		}
		sum := 0.0
		for _, v := range vals {
			if v < 0.999 { // quality can never drop below the baseline
				t.Fatalf("scenario %v: normalized %g below 1", s, v)
			}
			sum += v
		}
		return sum / 24
	}
	busy, notBusy, idle := mean(server.Busy), mean(server.NotBusy), mean(server.Idle)
	t.Logf("means: busy=%.3f notBusy=%.3f idle=%.3f", busy, notBusy, idle)
	if !(busy < notBusy && notBusy < idle) {
		t.Fatalf("scenario ordering violated: %g %g %g", busy, notBusy, idle)
	}
	if busy > 1.4 {
		t.Errorf("busy mean %g too high — compensation should dominate", busy)
	}
	if idle < 1.8 {
		t.Errorf("idle mean %g too low — offloading should pay off", idle)
	}
	for _, p := range res.Points {
		if p.Misses != 0 {
			t.Fatalf("work set %d scenario %v: %d misses", p.WorkSet, p.Scenario, p.Misses)
		}
		if p.Offloaded == 0 {
			t.Errorf("work set %d: decision offloads nothing", p.WorkSet)
		}
	}
}

// The headline simulation property (paper Figure 3): perfect
// estimation is optimal for DP; both solvers degrade away from x = 0;
// under-estimated response times (x < 0) hurt more than
// over-estimated ones.
func TestFigure3Shape(t *testing.T) {
	cfg := DefaultFigure3Config()
	cfg.Trials = 4
	res, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dp := res.Series(core.SolverDP)
	heu := res.Series(core.SolverHEU)
	if len(dp) != len(cfg.Ratios) || len(heu) != len(cfg.Ratios) {
		t.Fatalf("series lengths %d/%d", len(dp), len(heu))
	}
	zero := 4 // index of x = 0
	if cfg.Ratios[zero] != 0 {
		t.Fatal("ratio layout changed")
	}
	if dp[zero] < 0.999 || dp[zero] > 1.001 {
		t.Fatalf("DP at perfect estimation = %g, want 1", dp[zero])
	}
	if heu[zero] > dp[zero]+1e-9 {
		t.Fatalf("HEU %g beats DP %g at x=0", heu[zero], dp[zero])
	}
	for i := range dp {
		if i == zero {
			continue
		}
		if dp[i] > dp[zero]+1e-9 {
			t.Fatalf("DP at x=%g (%g) above perfect estimation", cfg.Ratios[i], dp[i])
		}
		if dp[i] <= 0 || dp[i] > 1 || heu[i] <= 0 || heu[i] > 1.05 {
			t.Fatalf("implausible normalized value at x=%g: dp=%g heu=%g", cfg.Ratios[i], dp[i], heu[i])
		}
	}
	// Asymmetry: the optimistic side (x = −0.4) realizes less than the
	// pessimistic side (x = +0.4).
	if dp[0] >= dp[len(dp)-1] {
		t.Fatalf("under-estimation (%g) should hurt more than over-estimation (%g)", dp[0], dp[len(dp)-1])
	}
	// Both extremes lose a meaningful amount.
	if dp[0] > 0.7 || dp[len(dp)-1] > 0.98 {
		t.Errorf("extremes too flat: %g / %g", dp[0], dp[len(dp)-1])
	}
}

func TestFigure3Simulated(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed sweep is slow")
	}
	cfg := DefaultFigure3Config()
	cfg.Trials = 2
	cfg.Ratios = []float64{-0.2, 0, 0.2}
	cfg.Simulate = true
	cfg.SimHorizonSecs = 30
	res, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.SimNormalized <= 0 {
			t.Fatalf("missing simulated value at x=%g %v", p.Ratio, p.Solver)
		}
		// The simulated score tracks the analytic one (both count
		// in-time result fractions; sampling noise allowed).
		diff := p.SimNormalized - p.Normalized
		if diff < -0.12 || diff > 0.12 {
			t.Fatalf("x=%g %v: simulated %g vs analytic %g", p.Ratio, p.Solver, p.SimNormalized, p.Normalized)
		}
	}
}

func TestFigure3BadConfig(t *testing.T) {
	cfg := DefaultFigure3Config()
	cfg.Trials = 0
	if _, err := Figure3(cfg); err == nil {
		t.Error("zero trials accepted")
	}
	cfg = DefaultFigure3Config()
	cfg.Ratios = nil
	if _, err := Figure3(cfg); err == nil {
		t.Error("no ratios accepted")
	}
}

func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table1(testCaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Stereo Vision", "Gi(0)", "ri,5", "99.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}

	buf.Reset()
	if err := WriteCSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,2\n3,4\n" {
		t.Errorf("CSV output %q", got)
	}

	buf.Reset()
	if err := WriteTable(&buf, []string{"col", "x"}, [][]string{{"value", "1"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "value") || !strings.Contains(buf.String(), "---") {
		t.Errorf("table output %q", buf.String())
	}

	// Figure 3 renderer.
	cfg := DefaultFigure3Config()
	cfg.Trials = 1
	cfg.Ratios = []float64{-0.1, 0, 0.1}
	res3, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := RenderFigure3(&buf, res3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HEU-OE") || !strings.Contains(buf.String(), "+0") {
		t.Errorf("figure 3 output %q", buf.String())
	}
}

func rtimeMS(v int64) rtime.Duration { return rtime.FromMillis(v) }

// The two readings of §6.2's G((1+x)·ri): budget-shift (timers move,
// compensations fire) degrades far more steeply on the optimistic side
// than value-shift (only the selection can err). The paper's published
// curve lies between them.
func TestFigure3Interpretations(t *testing.T) {
	mk := func(interp Interpretation) *Figure3Result {
		cfg := DefaultFigure3Config()
		cfg.Trials = 3
		cfg.Ratios = []float64{-0.4, 0, 0.4}
		cfg.Interpretation = interp
		res, err := Figure3(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	budget := mk(BudgetShift).Series(core.SolverDP)
	value := mk(ValueShift).Series(core.SolverDP)
	// Both peak at x = 0.
	if budget[1] < 0.999 || value[1] < 0.999 {
		t.Fatalf("peaks: budget %g, value %g", budget[1], value[1])
	}
	// Optimistic side: budget-shift collapses, value-shift stays mild.
	if budget[0] >= value[0] {
		t.Fatalf("budget-shift at x=-0.4 (%g) not below value-shift (%g)", budget[0], value[0])
	}
	if value[0] < 0.7 {
		t.Fatalf("value-shift at x=-0.4 implausibly low: %g", value[0])
	}
	if budget[0] > 0.5 {
		t.Fatalf("budget-shift at x=-0.4 implausibly high: %g", budget[0])
	}
	// Unknown interpretation rejected.
	cfg := DefaultFigure3Config()
	cfg.Interpretation = Interpretation(9)
	if _, err := Figure3(cfg); err == nil {
		t.Error("unknown interpretation accepted")
	}
	if BudgetShift.String() == "" || ValueShift.String() == "" || Interpretation(9).String() == "" {
		t.Error("interpretation names")
	}
}
