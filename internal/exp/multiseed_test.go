package exp

import (
	"testing"

	"rtoffload/internal/server"
)

func TestFigure2MultiSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep is slow")
	}
	cfg := testCaseConfig()
	cfg.Probes = 80
	rows, err := Figure2Multi(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	by := map[server.Scenario]Figure2Stats{}
	for _, r := range rows {
		by[r.Scenario] = r
		if r.Runs != 3 || r.Mean <= 0 {
			t.Fatalf("bad row %+v", r)
		}
		if r.CI95 < 0 {
			t.Fatalf("negative CI %+v", r)
		}
	}
	busy, notBusy, idle := by[server.Busy], by[server.NotBusy], by[server.Idle]
	t.Logf("busy %.3f±%.3f  not-busy %.3f±%.3f  idle %.3f±%.3f",
		busy.Mean, busy.CI95, notBusy.Mean, notBusy.CI95, idle.Mean, idle.CI95)
	// The paper's ordering claim must hold beyond the error bars:
	// adjacent intervals must not overlap.
	if busy.Mean+busy.CI95 >= notBusy.Mean-notBusy.CI95 {
		t.Fatalf("busy and not-busy intervals overlap")
	}
	if notBusy.Mean+notBusy.CI95 >= idle.Mean-idle.CI95 {
		t.Fatalf("not-busy and idle intervals overlap")
	}
	if _, err := Figure2Multi(cfg, 0); err == nil {
		t.Error("zero seeds accepted")
	}
}
