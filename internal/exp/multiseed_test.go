package exp

import (
	"testing"

	"rtoffload/internal/server"
)

func TestFigure2MultiSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep is slow")
	}
	cfg := testCaseConfig()
	cfg.Probes = 80
	rows, err := Figure2Multi(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	by := map[server.Scenario]Figure2Stats{}
	for _, r := range rows {
		by[r.Scenario] = r
		if r.Runs != 3 || r.Mean <= 0 {
			t.Fatalf("bad row %+v", r)
		}
		if r.CI95 < 0 {
			t.Fatalf("negative CI %+v", r)
		}
	}
	busy, notBusy, idle := by[server.Busy], by[server.NotBusy], by[server.Idle]
	t.Logf("busy %.3f±%.3f  not-busy %.3f±%.3f  idle %.3f±%.3f",
		busy.Mean, busy.CI95, notBusy.Mean, notBusy.CI95, idle.Mean, idle.CI95)
	// The paper's ordering claim must hold beyond the error bars —
	// and these are the honest Student-t intervals (t=4.303 at 3 runs,
	// 2.2× wider than the z=1.96 the old code used), so the separation
	// is a much stronger statement than before.
	if busy.Mean+busy.CI95 >= notBusy.Mean-notBusy.CI95 {
		t.Fatalf("busy and not-busy intervals overlap")
	}
	if notBusy.Mean+notBusy.CI95 >= idle.Mean-idle.CI95 {
		t.Fatalf("not-busy and idle intervals overlap")
	}
	if _, err := Figure2Multi(cfg, 0); err == nil {
		t.Error("zero seeds accepted")
	}
}

// The multiseed aggregation must be schedule-independent: per-seed
// runs fan out on the pool, and every statistic (mean, CI) must come
// out bit-identical whatever the worker count.
func TestFigure2MultiParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep is slow")
	}
	cfg := testCaseConfig()
	cfg.Probes = 60
	cfg.HorizonSeconds = 5
	run := func(workers int) []Figure2Stats {
		c := cfg
		c.Parallel = workers
		rows, err := Figure2Multi(c, 4)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rows
	}
	sequential := run(1)
	parallel := run(4)
	if len(sequential) != len(parallel) {
		t.Fatalf("row count differs: %d vs %d", len(sequential), len(parallel))
	}
	for i := range sequential {
		if sequential[i] != parallel[i] {
			t.Fatalf("row %d differs:\nsequential %+v\nparallel   %+v", i, sequential[i], parallel[i])
		}
	}
}
