// Package exp contains the experiment harness that regenerates every
// table and figure of the paper's evaluation (§6) plus the ablations
// called out in DESIGN.md:
//
//   - Table 1: the benefit functions Gi(ri) of the four robot-vision
//     tasks (PSNR per scaling level, probed response budgets).
//   - Figure 2: the case study — normalized total weighted image
//     quality over 24 task-weight permutations under three
//     server-load scenarios.
//   - Figure 3: the simulation study — normalized total benefit of the
//     DP and HEU-OE deciders under estimation-accuracy ratios in
//     [−40 %, +40 %].
//   - Ablations: deadline splitting vs naive EDF, solver quality and
//     runtime, and Theorem-3 vs exact-dbf admission.
//
// Absolute numbers differ from the paper (its testbed was physical);
// the harness reproduces the shapes: who wins, by what factor, and
// where the curves bend.
package exp

import (
	"fmt"
	"math"

	"rtoffload/internal/chaos"
	"rtoffload/internal/core"
	"rtoffload/internal/imgproc"
	"rtoffload/internal/parallel"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// CaseStudyConfig parameterizes the §6.1 reproduction.
type CaseStudyConfig struct {
	Seed uint64
	// Parallel bounds the worker pool the sweeps fan out on
	// (0 = GOMAXPROCS, 1 = sequential). Results are bit-identical for
	// every value: all randomness is derived per work item with
	// stats.DeriveSeed, independent of execution order.
	Parallel int
	// FrameW/H is the camera resolution the robot captures.
	FrameW, FrameH int
	// LocalUtil is the per-task local utilization Ci/Ti the image
	// ladder is sized for (paper: the four tasks are locally feasible,
	// so 4·LocalUtil must stay below 1).
	LocalUtil float64
	// Fractions is the offload scaling ladder (strictly increasing,
	// ending at 1.0 for the full-resolution level).
	Fractions []float64
	// Probes/Quantile drive the Benefit and Response Time Estimator.
	Probes   int
	Quantile float64
	// HorizonSeconds is the measurement window (paper: 10 s).
	HorizonSeconds float64
	// Solver used by the Offloading Decision Manager.
	Solver core.Solver
	// Chaos, when enabled, wraps every simulated server in the fault
	// injector (the zero value is the all-pass config and leaves the
	// sweep bit-identical to an unwrapped run).
	Chaos chaos.Config
}

// DefaultCaseStudyConfig returns the calibrated configuration
// described in EXPERIMENTS.md.
func DefaultCaseStudyConfig() CaseStudyConfig {
	return CaseStudyConfig{
		Seed:      1,
		FrameW:    800,
		FrameH:    600,
		LocalUtil: 0.2,
		Fractions: []float64{0.55, 0.7, 0.85, 1.0},
		Probes:    400,
		// Budgets are the *median* latency of the nominal (not-busy)
		// server: the three scenarios then land on sharply different
		// regions of their latency distributions — busy mostly misses
		// the budget, not-busy hits about half, idle nearly always
		// hits — which is exactly the paper's "small number / a part /
		// a large number of offloaded tasks get results".
		Quantile:       0.55,
		HorizonSeconds: 10,
		Solver:         core.SolverDP,
	}
}

// caseApp describes one of the four applications: the vision kernel it
// runs, the computational density of its full pipeline (the kernel is
// the inner loop of a multi-stage pipeline — multi-baseline stereo,
// multi-scale edge extraction, descriptor matching, dense motion), and
// its relative deadline.
type caseApp struct {
	name     string
	kernel   imgproc.Kernel
	opsPerPx float64
	deadline rtime.Duration
}

func caseApps() []caseApp {
	return []caseApp{
		{"Stereo Vision", imgproc.KernelStereo, 3400, rtime.FromMillis(1800)},
		{"Edge Detection", imgproc.KernelEdge, 3000, rtime.FromMillis(1800)},
		{"Object recognition", imgproc.KernelRecognition, 4200, rtime.FromMillis(2000)},
		{"Motion Detection", imgproc.KernelMotion, 2600, rtime.FromMillis(2000)},
	}
}

// caseServerConfig returns the queueing-server configuration of the
// case study for a load scenario. Compared to the generic presets it
// models a slower wireless link (raw frames are large) and service
// times matched to the pipeline densities.
func CaseServerConfig(s server.Scenario) (server.QueueConfig, error) {
	cfg, err := server.ScenarioConfig(s)
	if err != nil {
		return server.QueueConfig{}, err
	}
	cfg.BandwidthBytesPerSec = 2_500_000 // ≈20 Mbit/s effective
	cfg.ServiceMean = rtime.FromMillis(12)
	cfg.ServiceRefBytes = 300 * 200
	// Sharpen the load contrast relative to the generic presets: the
	// busy server is saturated enough that offloaded frames rarely
	// return within a median-of-nominal budget, while the not-busy
	// server queues them behind a ~60 % background load.
	switch s {
	case server.Busy:
		cfg.BackgroundRatePerSec = 42
		cfg.BackgroundServiceMean = rtime.FromMillis(85)
		cfg.LossProbability = 0.12
	case server.NotBusy:
		cfg.BackgroundRatePerSec = 20
		cfg.BackgroundServiceMean = rtime.FromMillis(60)
	}
	return cfg, nil
}

// CaseTasks builds the four case-study tasks: the local image size is
// set so each task's local utilization is cfg.LocalUtil; each offload
// level ships a larger frame whose PSNR (measured by the real scaling
// round trip) is the benefit value; response budgets are probed
// against the nominal (not-busy) server.
func CaseTasks(cfg CaseStudyConfig) (task.Set, error) {
	if cfg.FrameW <= 0 || cfg.FrameH <= 0 || cfg.LocalUtil <= 0 || cfg.LocalUtil*4 >= 1 {
		return nil, fmt.Errorf("exp: invalid case-study config")
	}
	rng := stats.NewRNG(cfg.Seed)
	model := imgproc.DefaultCostModel()
	set := make(task.Set, 0, 4)
	for i, app := range caseApps() {
		frame := imgproc.Synthetic(rng.Fork(), cfg.FrameW, cfg.FrameH)
		// Local fraction: CPU time at f equals LocalUtil·D.
		fullOps := app.opsPerPx * float64(cfg.FrameW) * float64(cfg.FrameH)
		fullCPU := fullOps / model.CPUOpsPerSec // seconds
		fLocal := math.Sqrt(cfg.LocalUtil * app.deadline.Seconds() / fullCPU)
		if fLocal >= cfg.Fractions[0] {
			fLocal = cfg.Fractions[0] * 0.9
		}
		lw := int(float64(cfg.FrameW)*fLocal + 0.5)
		lh := int(float64(cfg.FrameH)*fLocal + 0.5)
		if lw < 1 || lh < 1 {
			return nil, fmt.Errorf("exp: local frame for %s degenerate", app.name)
		}
		localCPU := rtime.FromSeconds(fullCPU * fLocal * fLocal)
		down := frame.Resize(lw, lh)
		localPSNR := imgproc.PSNR(frame, down.Resize(cfg.FrameW, cfg.FrameH))

		specs, err := imgproc.BuildLevels(model, app.kernel, frame, cfg.Fractions)
		if err != nil {
			return nil, err
		}
		t := &task.Task{
			ID:           i + 1,
			Name:         app.name,
			Period:       app.deadline,
			Deadline:     app.deadline,
			LocalWCET:    localCPU,
			Setup:        model.SetupTime(lw, lh), // overridden per level below
			Compensation: localCPU,
			LocalBenefit: localPSNR,
			Weight:       1,
		}
		prevR := rtime.Duration(0)
		prevB := localPSNR
		for j, sp := range specs {
			// Pipeline CPU time at this level (for documentation the
			// spec's kernel CPU time scales with the pipeline density).
			b := sp.PSNR
			if b <= prevB {
				b = prevB + 0.01 // measured PSNR ladder is strictly increasing in practice
			}
			prevB = b
			// Placeholder budgets; EstimateBudgets overwrites them.
			r := rtime.FromMillis(int64(100 * (j + 1)))
			if r <= prevR {
				r = prevR + 1
			}
			prevR = r
			t.Levels = append(t.Levels, task.Level{
				Label:        fmt.Sprintf("%dx%d", sp.W, sp.H),
				Response:     r,
				Benefit:      b,
				Setup:        sp.Setup,
				PayloadBytes: sp.Payload,
			})
		}
		set = append(set, t)
	}
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("exp: case tasks invalid: %w", err)
	}
	// Probe the nominal server for response budgets (§6.1.2's
	// coarse-grained statistic estimation).
	nominal, err := CaseServerConfig(server.NotBusy)
	if err != nil {
		return nil, err
	}
	probeSrv, err := server.NewQueue(stats.NewRNG(cfg.Seed+1000), nominal)
	if err != nil {
		return nil, err
	}
	est := core.EstimatorConfig{Probes: cfg.Probes, Spacing: rtime.FromMillis(500), Quantile: cfg.Quantile}
	if err := core.EstimateBudgets(probeSrv, set, est); err != nil {
		return nil, err
	}
	return set, nil
}

// Table1Row is one row of the regenerated Table 1.
type Table1Row struct {
	Task      string
	LocalPSNR float64
	Budgets   []rtime.Duration
	PSNRs     []float64
}

// Table1 regenerates the paper's Table 1: per task, Gi(0) and the
// (ri,j, Gi(ri,j)) ladder.
func Table1(cfg CaseStudyConfig) ([]Table1Row, error) {
	set, err := CaseTasks(cfg)
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(set))
	for _, t := range set {
		r := Table1Row{Task: t.Name, LocalPSNR: t.LocalBenefit}
		for _, lv := range t.Levels {
			r.Budgets = append(r.Budgets, lv.Response)
			r.PSNRs = append(r.PSNRs, lv.Benefit)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Figure2Point is one bar of Figure 2: work set × scenario →
// normalized total weighted image quality.
type Figure2Point struct {
	WorkSet  int
	Weights  [4]float64
	Scenario server.Scenario
	// Normalized is Σ weight·quality achieved over the horizon divided
	// by the all-local baseline Σ weight·Gi(0).
	Normalized float64
	Offloaded  int
	Misses     int
}

// Figure2Result holds the full case-study sweep.
type Figure2Result struct {
	Tasks  task.Set
	Points []Figure2Point
}

// Series extracts the normalized values of one scenario in work-set
// order.
func (r *Figure2Result) Series(s server.Scenario) []float64 {
	var out []float64
	for _, p := range r.Points {
		if p.Scenario == s {
			out = append(out, p.Normalized)
		}
	}
	return out
}

// permutations4 enumerates the 24 orderings of {1,2,3,4}.
func permutations4() [][4]float64 {
	base := []float64{1, 2, 3, 4}
	var out [][4]float64
	var rec func(cur []float64, rest []float64)
	rec = func(cur, rest []float64) {
		if len(rest) == 0 {
			var w [4]float64
			copy(w[:], cur)
			out = append(out, w)
			return
		}
		for i, v := range rest {
			nr := append(append([]float64{}, rest[:i]...), rest[i+1:]...)
			rec(append(cur, v), nr)
		}
	}
	rec(nil, base)
	return out
}

// Figure2 runs the case study: for each of the 24 weight permutations
// ("work sets") the Offloading Decision Manager picks levels and
// budgets via MCKP; the resulting configuration runs for the horizon
// under each of the three server scenarios; qualities are normalized
// to the all-local baseline of the same weights.
func Figure2(cfg CaseStudyConfig) (*Figure2Result, error) {
	set, err := CaseTasks(cfg)
	if err != nil {
		return nil, err
	}
	scenarios := []server.Scenario{server.Busy, server.NotBusy, server.Idle}
	perms := permutations4()
	horizon := rtime.FromSeconds(cfg.HorizonSeconds)
	points, err := parallel.Map(cfg.Parallel, len(scenarios)*len(perms), func(i int) (Figure2Point, error) {
		scenario := scenarios[i/len(perms)]
		wi := i % len(perms)
		weights := perms[wi]
		srvCfg, err := CaseServerConfig(scenario)
		if err != nil {
			return Figure2Point{}, err
		}
		ws := set.Clone()
		for k := range ws {
			ws[k].Weight = weights[k]
		}
		dec, err := core.Decide(ws, core.Options{Solver: cfg.Solver})
		if err != nil {
			return Figure2Point{}, fmt.Errorf("exp: work set %d: %w", wi+1, err)
		}
		seed := stats.DeriveSeed(cfg.Seed, streamFigure2, uint64(scenario), uint64(wi))
		var srv server.Server
		srv, err = server.NewQueue(stats.NewRNG(seed), srvCfg)
		if err != nil {
			return Figure2Point{}, err
		}
		if cfg.Chaos.Enabled() {
			wrapSeed := stats.DeriveSeed(cfg.Seed, streamChaosWrap, uint64(scenario), uint64(wi))
			srv, err = chaos.New(srv, cfg.Chaos, stats.NewRNG(wrapSeed))
			if err != nil {
				return Figure2Point{}, err
			}
		}
		sim, err := sched.Run(sched.Config{
			Assignments: dec.Assignments(),
			Server:      srv,
			Horizon:     horizon,
		})
		if err != nil {
			return Figure2Point{}, err
		}
		return Figure2Point{
			WorkSet:    wi + 1,
			Weights:    weights,
			Scenario:   scenario,
			Normalized: sim.NormalizedBenefit(),
			Offloaded:  dec.OffloadedCount(),
			Misses:     sim.Misses,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure2Result{Tasks: set, Points: points}, nil
}
